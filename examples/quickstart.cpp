// Quickstart: a wait-free replicated set shared by four simulated
// processes (the paper's running example).
//
//   $ ./quickstart [--processes=4] [--seed=1]
//
// Walks through the core promise of update consistency: operations never
// wait for the network, every replica applies every update, and once the
// traffic drains all replicas agree on the state of one common
// linearization of the updates — even though they disagreed transiently.
#include <iostream>
#include <memory>

#include "core/wrappers.hpp"
#include "net/scheduler.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ucw;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("processes", 4));
  const std::uint64_t seed = flags.get_int("seed", 1);

  SimScheduler scheduler;
  SimNetwork<UcSet<int>::Message>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::exponential(1'000.0);  // ~1 ms WAN-ish
  cfg.seed = seed;
  SimNetwork<UcSet<int>::Message> net(scheduler, cfg);

  std::vector<std::unique_ptr<UcSet<int>>> replicas;
  for (ProcessId p = 0; p < n; ++p) {
    replicas.push_back(std::make_unique<UcSet<int>>(p, net));
  }

  std::cout << "== update-consistent shared set, " << n
            << " wait-free replicas ==\n\n";

  // Every process updates concurrently; no operation waits.
  replicas[0]->insert(1);
  replicas[1 % n]->insert(2);
  replicas[2 % n]->remove(1);  // concurrent with the insert of 1!
  replicas[3 % n]->insert(3);

  std::cout << "immediately after the (wait-free) calls:\n";
  for (ProcessId p = 0; p < n; ++p) {
    std::cout << "  replica " << p << " reads "
              << format_value(replicas[p]->read()) << '\n';
  }

  scheduler.run();  // drain the network

  std::cout << "\nafter the network drains (t=" << scheduler.now()
            << " virtual µs):\n";
  for (ProcessId p = 0; p < n; ++p) {
    std::cout << "  replica " << p << " reads "
              << format_value(replicas[p]->read()) << '\n';
  }

  std::cout << "\nThe common state is the result of replaying all updates "
               "in (Lamport clock, pid) order\n"
            << "— the agreed linearization of Algorithm 1. Messages "
               "broadcast: "
            << net.stats().broadcasts << ", delivered: "
            << net.stats().messages_delivered << ".\n";
  return 0;
}
