// Life of a partition, as a Chrome trace: the CI acceptance scenario
// for the observability subsystem.
//
//   $ ./partition_trace --trace-out=partition.json
//                       [--metrics-out=partition-metrics.json]
//
// Three replicas run a keyed counter workload; replica 2 is cut away
// mid-run (drop-mode partition — cross-group envelopes are *lost*, so
// the majority side's streams grow real gaps at replica 2 and vice
// versa), then the partition heals and the gap-triggered anti-entropy
// pulls reconcile both sides. With tracing on, the exported trace shows
// the whole story on per-process tracks:
//
//   * partition_cut / partition_drop / partition_heal on the replicas
//     the topology change actually affected,
//   * ae_request / ae_serve / ae_adopt as the heal repairs the gaps,
//   * replication_lag / view_staleness counter tracks spiking while the
//     split starves replica 2 of the majority's updates, then recovering
//     after the heal —
//
// which is exactly what tools/check_trace.py asserts in CI (schema,
// B/E span pairing, and the required event names). The metrics snapshot
// makes the same run machine-checkable: every message the partition ate
// is in `net.dropped_messages_partition`, and any trace-ring overwrite
// would show as `dropped_trace_events`.
#include <iostream>

#include "adt/counter.hpp"
#include "runtime/store_harness.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ucw;
  using C = CounterAdt;
  const Flags flags = Flags::parse(argc, argv);

  StoreRunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = flags.get_int("seed", 7);
  cfg.fifo_links = true;  // coverage tracking + stability need FIFO
  cfg.n_keys = 32;
  cfg.skew = 0.8;
  cfg.ops_per_process = flags.get_int("ops", 400);
  cfg.update_ratio = 0.95;
  cfg.store.batch_window = 4;
  cfg.store.shard_count = 8;
  cfg.store.gc = true;
  cfg.flush_period = 1'000.0;
  // Cut {0,1} | {2} for 60 virtual ms mid-workload, then heal. The heal
  // plan's anti-entropy pulls (plus the gap-triggered retries on the
  // flush tick) repair the divergence the drop-mode split created.
  cfg.partitions.push_back({/*at=*/20'000.0, {0, 0, 1}});
  cfg.partitions.push_back({/*at=*/80'000.0, {0, 0, 0}});
  cfg.trace_out = flags.get("trace-out", "partition.json");
  cfg.metrics_out = flags.get("metrics-out", "partition-metrics.json");

  const auto out = run_store_simulation(C{}, cfg, [](Rng& rng) {
    return C::add(rng.uniform_int(1, 3));
  });

  std::cout << "== partition/heal trace scenario: 3 replicas, drop-mode "
               "split {0,1}|{2} ==\n\n";
  obs::print_observability(std::cout, out.report);
  std::cout << "\nchrome trace written to " << cfg.trace_out
            << " (open in chrome://tracing)\nmetrics snapshot written to "
            << cfg.metrics_out << '\n';

  if (!out.converged) {
    std::cout << "DIVERGED on " << out.diverged_keys.size() << " keys\n";
    return 1;
  }
  return 0;
}
