// Collaborative editing on an update-consistent document.
//
//   $ ./collaborative_editing [--seed=7]
//
// The paper's introduction motivates weak consistency with collaborative
// editors: users must type without waiting for the network (wait-free),
// yet all copies of the document must converge. Here three editors type
// concurrently into a replicated DocumentAdt driven by Algorithm 1:
// every replica converges to the document produced by the agreed
// linearization of the edits. Concurrent edits may interleave in a
// surprising order — update consistency promises convergence to *a*
// sequential explanation, not the one any single user saw live (the
// "intention preservation" refinement the paper cites is a concurrent
// specification, strictly beyond sequential specs).
#include <iostream>

#include "core/wrappers.hpp"
#include "net/scheduler.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ucw;
  const Flags flags = Flags::parse(argc, argv);
  const std::uint64_t seed = flags.get_int("seed", 7);

  SimScheduler scheduler;
  SimNetwork<UcDocument::Message>::Config cfg;
  cfg.n_processes = 3;
  cfg.latency = LatencyModel::lognormal(6.0, 0.8);  // ~400µs median, tail
  cfg.seed = seed;
  SimNetwork<UcDocument::Message> net(scheduler, cfg);

  UcDocument alice(0, net), bob(1, net), carol(2, net);

  std::cout << "== three editors, one update-consistent document ==\n\n";

  // Alice drafts a sentence; let it propagate.
  alice.insert(0, "consistency is hard");
  scheduler.run();
  std::cout << "alice drafts:          \"" << alice.text() << "\"\n";

  // Now everyone edits at once, without coordination.
  bob.insert(0, "update ");             // prepend
  carol.insert(19 + 7, "!");            // append at her view's end
  alice.erase(12, 3);                   // drop "har" from "hard"
  alice.insert(12, "eventually eas");   // ... "eventually easd"? no: "easd"

  std::cout << "\nmid-flight (each replica sees only its own edit):\n";
  std::cout << "  alice: \"" << alice.text() << "\"\n";
  std::cout << "  bob:   \"" << bob.text() << "\"\n";
  std::cout << "  carol: \"" << carol.text() << "\"\n";

  scheduler.run();

  std::cout << "\nconverged (t=" << scheduler.now() << " virtual µs):\n";
  std::cout << "  alice: \"" << alice.text() << "\"\n";
  std::cout << "  bob:   \"" << bob.text() << "\"\n";
  std::cout << "  carol: \"" << carol.text() << "\"\n";

  const bool same =
      alice.text() == bob.text() && bob.text() == carol.text();
  std::cout << "\nall replicas identical: " << (same ? "yes" : "NO — BUG")
            << '\n';
  std::cout << "replays on alice's replica: "
            << alice.object().replica().stats().transitions
            << " transitions over "
            << alice.object().replica().log().size() << " logged edits\n";
  return same ? 0 : 1;
}
