// cluster_node — one replica of a real multi-process UCStore cluster.
//
//   $ ./cluster_node --pid=0 --peers=127.0.0.1:9000,127.0.0.1:9001,...
//                    [--ops=120] [--keys=16] [--seed=7] [--window=4]
//                    [--drop=0.0] [--reorder=0.0]
//                    [--history-out=hist-0.jsonl] [--timeout-ms=20000]
//
// Each invocation is one OS process running one ThreadUcStore over a
// UdpTransport: N of these on localhost are the paper's system for
// real — separate address spaces, real datagrams, real loss. The node
// issues a seeded randomized write load against a shared keyspace,
// then drains: it keeps polling, flushing (which drives gap-triggered
// anti-entropy), and running periodic rotating anti-entropy rounds
// until its view of the keyspace is stable, no peer stream has a
// detected gap, and the wire has gone quiet — the rotating rounds are
// what repairs *tail* losses, which leave no seq gap for the automatic
// repair to notice. Finally it records one final read per key and
// exports its op history as JSONL; the launcher merges the per-node
// files and `ucaudit check` certifies update consistency offline.
//
// Exit codes: 0 = converged + history written; 2 = usage error;
// 3 = could not bind the UDP port (launchers retry with fresh ports);
// 4 = no convergence before --timeout-ms.
//
// Values are written as (pid+1)*1e6 + i, so every update in the merged
// history is globally unique — the strongest certification regime for
// the offline auditor.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adt/register.hpp"
#include "audit/recorder.hpp"
#include "history/jsonl.hpp"
#include "store/udp_store.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using namespace ucw;
using Reg = RegisterAdt<std::int64_t>;  // the history interchange ADT
using Transport = UdpTransport<Reg>;
using Store = UdpUcStore<Reg>;

bool parse_peers(const std::string& spec, std::vector<UdpEndpoint>* out) {
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon + 1 >= item.size()) return false;
    UdpEndpoint ep;
    ep.host = item.substr(0, colon);
    try {
      const unsigned long port = std::stoul(item.substr(colon + 1));
      if (port == 0 || port > 0xFFFF) return false;
      ep.port = static_cast<std::uint16_t>(port);
    } catch (...) {
      return false;
    }
    out->push_back(std::move(ep));
  }
  return out->size() >= 2;
}

/// Order-insensitive digest of the whole keyspace view (value per key).
/// Stability of this across sweeps — plus no gapped streams, nothing
/// pending, and a quiet wire — is the node's convergence heuristic;
/// the *guarantee* is the offline audit of the merged histories.
std::uint64_t keyspace_fingerprint(Store& store, std::size_t keys) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t k = 0; k < keys; ++k) {
    const std::int64_t v = store.state_of("k" + std::to_string(k));
    h ^= splitmix64(static_cast<std::uint64_t>(v) + k * 0x9E3779B9ULL);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  const ProcessId pid = static_cast<ProcessId>(flags.get_int("pid", 0));
  std::vector<UdpEndpoint> peers;
  if (!parse_peers(flags.get("peers", ""), &peers) || pid >= peers.size()) {
    std::cerr << "cluster_node: need --pid=N and --peers=host:port,... "
                 "(>= 2 peers, pid in range)\n";
    return 2;
  }
  const std::size_t ops =
      static_cast<std::size_t>(std::max<std::int64_t>(0, flags.get_int("ops", 120)));
  const std::size_t keys =
      static_cast<std::size_t>(std::max<std::int64_t>(1, flags.get_int("keys", 16)));
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string history_out = flags.get("history-out", "");
  const auto timeout =
      std::chrono::milliseconds(flags.get_int("timeout-ms", 20000));
  const auto quiet_for = std::chrono::milliseconds(
      flags.get_int("quiet-ms", 250));

  UdpTransportOptions topt;
  topt.drop = flags.get_double("drop", 0.0);
  topt.reorder = flags.get_double("reorder", 0.0);
  topt.fault_seed = splitmix64(seed ^ (0xFA010ULL + pid));
  Transport net(pid, peers, topt);
  if (!net.bound()) {
    std::cerr << "cluster_node: pid " << pid << " cannot bind "
              << peers[pid].host << ":" << peers[pid].port << "\n";
    return 3;
  }

  StoreConfig cfg;
  cfg.batch_window = static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("window", 4)));
  cfg.gc = true;                 // stability acks + heartbeats on the wire
  cfg.auto_anti_entropy = true;  // seq gaps repair themselves
  Store store(Reg{}, pid, net, cfg);

  audit::OpRecorder<Reg> recorder(pid, /*threads=*/1,
                                  /*capacity=*/ops + keys + 64);
  store.set_recorder(&recorder);

  // ---- load phase: seeded writes against the shared keyspace --------
  Rng rng = Rng(seed).fork(0x10AD + pid);
  for (std::size_t i = 0; i < ops; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_int(
                                      0, static_cast<std::int64_t>(keys) - 1));
    const std::int64_t value =
        static_cast<std::int64_t>(pid + 1) * 1000000 +
        static_cast<std::int64_t>(i);
    (void)store.update(key, Reg::write(value));
    if (i % 8 == 7) {
      (void)store.flush();
      // Yield so the peers' receiver threads interleave with the load —
      // pure back-to-back sends would serialize the whole experiment.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  (void)store.flush();

  // ---- drain phase: converge under (possibly injected) real loss ----
  const auto started = std::chrono::steady_clock::now();
  std::uint64_t last_fp = 0;
  std::size_t stable_sweeps = 0;
  std::uint64_t quiet_rx_mark = 0;
  auto quiet_since = std::chrono::steady_clock::now();
  ProcessId rotate = (pid + 1) % static_cast<ProcessId>(peers.size());
  std::size_t iter = 0;
  bool converged = false;
  while (std::chrono::steady_clock::now() - started < timeout) {
    (void)store.poll();
    (void)store.flush();  // drives auto anti-entropy + ack heartbeats

    bool gapped = false;
    for (ProcessId q = 0; q < peers.size(); ++q) {
      gapped = gapped || (q != pid && store.stream_gapped(q));
    }
    const std::uint64_t fp = keyspace_fingerprint(store, keys);
    const bool locally_stable =
        fp == last_fp && !gapped && store.pending() == 0;
    stable_sweeps = locally_stable ? stable_sweeps + 1 : 0;
    last_fp = fp;

    // Rotating anti-entropy while unstable: tail losses leave no seq
    // gap, so only an explicit round can surface them. Incremental
    // snapshots make a no-change round nearly free. Stop initiating
    // once stable, or the cluster never goes quiet.
    if (!locally_stable && ++iter % 25 == 0 && peers.size() > 1) {
      if (rotate == pid) rotate = (rotate + 1) % peers.size();
      (void)store.anti_entropy_round(rotate, /*reciprocate=*/true);
      rotate = (rotate + 1) % static_cast<ProcessId>(peers.size());
    }

    // Quiet wire: no datagram received for `quiet_for`. Keeps this
    // node alive as an anti-entropy donor while any peer still pulls.
    const std::uint64_t rx = net.stats().datagrams_received;
    if (rx != quiet_rx_mark) {
      quiet_rx_mark = rx;
      quiet_since = std::chrono::steady_clock::now();
    }
    if (stable_sweeps >= 10 &&
        std::chrono::steady_clock::now() - quiet_since >= quiet_for) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // ---- final reads + history export ---------------------------------
  for (std::size_t k = 0; k < keys; ++k) {
    const std::string key = "k" + std::to_string(k);
    recorder.record_final_read(key, store.state_of(key));
  }
  if (!history_out.empty()) {
    HistoryMeta meta;
    meta.n_processes = peers.size();
    meta.captured = recorder.captured();
    meta.dropped = recorder.dropped();
    meta.final_reads = recorder.final_reads_recorded();
    meta.seed = seed;
    meta.fault = "none";
    std::vector<HistoryLine> lines;
    append_history_lines(recorder, &lines);
    std::ofstream out(history_out);
    if (!out.good()) {
      std::cerr << "cluster_node: cannot write " << history_out << "\n";
      return 2;
    }
    write_history_jsonl(out, meta, lines);
  }

  const UdpTransportStats ns = net.stats();
  const StoreStats ss = store.stats();
  std::cout << "node " << pid << ": " << ops << " ops | wire "
            << ns.datagrams_sent << " dgrams out / " << ns.datagrams_received
            << " in, " << ns.bytes_sent << " B out | injected drops "
            << ns.injected_drops << ", reorders " << ns.injected_reorders
            << " | gaps " << ss.stream_gaps_detected << ", ae completed "
            << ss.ae_rounds_completed << " | converged="
            << (converged ? "yes" : "no") << "\n";

  store.set_recorder(nullptr);
  net.close_all();
  if (!converged) {
    std::cerr << "cluster_node: pid " << pid
              << " did not converge before timeout\n";
    return 4;
  }
  return 0;
}
