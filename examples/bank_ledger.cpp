// A replicated bank ledger: wait-free tellers on an update-consistent
// counter and append log.
//
//   $ ./bank_ledger [--branches=3] [--seed=11]
//
// Section VII-C uses banking as the motivation for keeping the whole
// update log ("banks keep track of all the operations made on an account
// for years"). Each branch records deposits/withdrawals without any
// coordination; the balance converges on every branch, and the full
// audit log — the agreed linearization of all transactions — is
// identical everywhere, which is exactly what an auditor wants.
#include <iomanip>
#include <iostream>
#include <memory>

#include "adt/log.hpp"
#include "core/uc_object.hpp"
#include "core/wrappers.hpp"
#include "net/scheduler.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace ucw;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t branches =
      static_cast<std::size_t>(flags.get_int("branches", 3));
  const std::uint64_t seed = flags.get_int("seed", 11);

  SimScheduler scheduler;

  // Balance: UC counter. Audit log: UC append log of signed amounts.
  SimNetwork<UcCounter::Message>::Config ccfg;
  ccfg.n_processes = branches;
  ccfg.latency = LatencyModel::exponential(1'200.0);
  ccfg.seed = seed;
  SimNetwork<UcCounter::Message> cnet(scheduler, ccfg);

  using LogAdt = AppendLogAdt<int>;
  SimNetwork<UpdateMessage<LogAdt>>::Config lcfg;
  lcfg.n_processes = branches;
  lcfg.latency = LatencyModel::exponential(1'200.0);
  lcfg.seed = seed + 1;
  SimNetwork<UpdateMessage<LogAdt>> lnet(scheduler, lcfg);

  std::vector<std::unique_ptr<UcCounter>> balance;
  std::vector<std::unique_ptr<SimUcObject<LogAdt>>> ledger;
  for (ProcessId p = 0; p < branches; ++p) {
    balance.push_back(std::make_unique<UcCounter>(p, cnet));
    ledger.push_back(
        std::make_unique<SimUcObject<LogAdt>>(LogAdt{}, p, lnet));
  }

  std::cout << "== replicated bank ledger, " << branches
            << " branches, wait-free tellers ==\n\n";

  Rng rng(seed);
  std::int64_t expected = 0;
  int txns = 0;
  for (int round = 0; round < 6; ++round) {
    for (ProcessId p = 0; p < branches; ++p) {
      const int amount = static_cast<int>(rng.uniform_int(-40, 80));
      if (amount == 0) continue;
      balance[p]->add(amount);
      (void)ledger[p]->update(LogAdt::append(amount));
      expected += amount;
      ++txns;
      std::cout << "  branch " << p << (amount > 0 ? " deposit  " : " withdraw ")
                << std::setw(4) << std::abs(amount)
                << "   (local balance view: " << balance[p]->value()
                << ")\n";
    }
    // Some traffic drains between rounds, some doesn't — tellers never
    // wait either way.
    scheduler.run_until(scheduler.now() + rng.uniform_real(500.0, 3'000.0));
  }

  scheduler.run();

  std::cout << "\nafter settlement (" << txns << " transactions):\n";
  bool ok = true;
  for (ProcessId p = 0; p < branches; ++p) {
    const auto bal = balance[p]->value();
    const auto entries = ledger[p]->query(LogAdt::read());
    std::int64_t from_log = 0;
    for (int a : entries) from_log += a;
    std::cout << "  branch " << p << ": balance=" << bal
              << " audit-log-sum=" << from_log
              << " entries=" << entries.size() << '\n';
    ok &= bal == expected && from_log == expected &&
          entries.size() == static_cast<std::size_t>(txns);
  }
  std::cout << "\nexpected balance " << expected << ": "
            << (ok ? "all branches agree, audit log is the agreed "
                     "linearization of every transaction"
                   : "MISMATCH — BUG")
            << '\n';
  return ok ? 0 : 1;
}
