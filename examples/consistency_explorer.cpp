// Consistency explorer: classify set histories under the five criteria.
//
//   $ ./consistency_explorer                 # the paper's five figures
//   $ ./consistency_explorer fig1b fig2      # a subset
//   $ ./consistency_explorer --spec "I1 R:2 | I2 W:"   # your own history
//
// Spec mini-language (one process per '|'-separated segment):
//   I<v>   insert v              D<v>   delete v
//   R:<vs> read returning {vs}   W:<vs> read returning {vs} forever (ω)
//   <vs> is a comma-separated list of ints, possibly empty: R:1,2  R:
//
// The explorer runs the exact checkers of Definitions 5-9 and prints the
// verdict matrix — the tool version of the paper's Figure 1.
#include <algorithm>
#include <iostream>

#include "criteria/all.hpp"
#include "history/figures.hpp"
#include "history/spec.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

void classify(const std::string& name, const History<S>& h,
              TextTable& table) {
  const auto row = check_all_criteria(h);
  const auto sc = check_sc(h);
  table.add(name, to_string(row.ec.verdict), to_string(row.sec.verdict),
            to_string(row.pc.verdict), to_string(row.uc.verdict),
            to_string(row.suc.verdict), to_string(sc.verdict));
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  TextTable table({"history", "EC", "SEC", "PC", "UC", "SUC", "SC"});

  if (flags.has("spec")) {
    const auto h = parse_set_history_spec(flags.get("spec", ""));
    std::cout << "history:\n" << h.to_string() << '\n';
    classify("spec", h, table);
  } else {
    std::vector<std::string> wanted = flags.positional();
    for (const auto& [h, expect] : paper_figures()) {
      if (!wanted.empty() &&
          std::find(wanted.begin(), wanted.end(), expect.label) ==
              wanted.end()) {
        continue;
      }
      std::cout << expect.label << " (\"" << expect.caption << "\"):\n"
                << h.to_string() << '\n';
      classify(expect.label, h, table);
    }
  }

  table.print(std::cout);
  std::cout << "\nEC=eventual, SEC=strong eventual, PC=pipelined, "
               "UC=update, SUC=strong update consistency\n";
  return 0;
}
