// A replicated key-value store on the UCStore, surviving crashes and a
// network partition.
//
//   $ ./distributed_kv_store [--replicas=5 (min 5)] [--seed=3] [--window=4]
//
// Each key is an independent update-consistent register (Algorithm 1
// applied per key; last-writer-wins falls out of the (clock, pid)
// arbitration order). The UCStore hosts the whole keyspace behind one
// endpoint per process and coalesces updates into batch envelopes — one
// broadcast carries many keyed writes. This example runs a 5-replica
// store, partitions it Dynamo-style (both sides keep accepting writes —
// no quorum, no unavailability), heals the partition, crashes a
// replica, *restarts* it — the rejoin catches up from a snapshot of
// compacted base states plus the unstable log suffix instead of
// replaying history — and shows every replica (including the rejoined
// one) converges to the same last-writer-wins state, plus what batching
// saved on the wire and what the recovery subsystem did.
//
// `--trace-out=kv.json` captures the whole scenario as a Chrome trace
// (open in chrome://tracing or Perfetto: one process track per replica,
// with the partition cut/heal, the crash-era drops, and the rejoin's
// sync exchange on replica 1's own timeline). `--metrics-out=kv-m.json`
// writes the metrics snapshot, where every silent loss shows up as an
// explicit dropped_* counter.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>

#include "adt/register.hpp"
#include "net/scheduler.hpp"
#include "obs/report.hpp"
#include "obs/trace_export.hpp"
#include "store/uc_store.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ucw;
  using Reg = RegisterAdt<std::string>;
  using Store = SimUcStore<Reg>;
  const Flags flags = Flags::parse(argc, argv);
  // The scenario scripts writes on replicas 0-4 and partitions {0,1}
  // against the rest, so it needs at least 5 processes.
  const std::size_t n = std::max<std::int64_t>(
      5, flags.get_int("replicas", 5));
  const std::uint64_t seed = flags.get_int("seed", 3);
  const std::size_t window = std::max<std::int64_t>(
      1, flags.get_int("window", 4));
  const std::string trace_out = flags.get("trace-out", "");
  const std::string metrics_out = flags.get("metrics-out", "");

  SimScheduler scheduler;
  SimNetwork<Store::Envelope>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::exponential(800.0);
  cfg.fifo_links = true;  // stability tracking + catch-up need FIFO
  cfg.seed = seed;
  SimNetwork<Store::Envelope> net(scheduler, cfg);

  // Tracers outlive the stores (replica 1 is rebuilt on restart but
  // keeps appending to its own track), on the virtual-time clock.
  const bool obs_on = !trace_out.empty() || !metrics_out.empty();
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  if (obs_on) {
    std::vector<obs::Tracer*> raw(n, nullptr);
    for (ProcessId p = 0; p < n; ++p) {
      tracers.push_back(std::make_unique<obs::Tracer>(
          static_cast<std::uint32_t>(p), /*tracks=*/1,
          /*ring_capacity_pow2=*/std::size_t{1} << 14,
          +[](void* s) { return static_cast<SimScheduler*>(s)->now(); },
          &scheduler));
      raw[p] = tracers.back().get();
    }
    net.set_tracers(std::move(raw));
  }

  StoreConfig store_cfg;
  store_cfg.batch_window = window;
  store_cfg.shard_count = 8;
  store_cfg.gc = true;  // store-level log compaction on every flush
  auto config_for = [&](ProcessId p) {
    StoreConfig sc = store_cfg;
    if (obs_on) {
      sc.tracing = true;
      sc.tracer = tracers[p].get();
      // A handful of scripted writes: sample nothing out, so every
      // update's stamp/apply appears in the captured trace.
      sc.trace_sample_every = 1;
    }
    return sc;
  };
  std::vector<std::unique_ptr<Store>> store;
  for (ProcessId p = 0; p < n; ++p) {
    store.push_back(
        std::make_unique<Store>(Reg{"<unset>"}, p, net, config_for(p)));
  }
  // Ship whatever is buffered on every store, then drain the network.
  auto sync = [&] {
    for (auto& s : store) (void)s->flush();
    scheduler.run();
  };
  auto read = [&](ProcessId p, const std::string& key) {
    return store[p]->query(key, Reg::read());
  };

  std::cout << "== update-consistent KV store over UCStore, " << n
            << " replicas, batch window " << window << " ==\n\n";

  // Bulk load: eight catalog keys from one replica coalesce into two
  // full envelopes (window 4) instead of eight separate broadcasts.
  for (int i = 0; i < 8; ++i) {
    store[0]->update("catalog/item" + std::to_string(i),
                     Reg::write("sku-" + std::to_string(1000 + i)));
  }
  sync();
  std::cout << "bulk load: 8 keyed writes shipped in "
            << store[0]->stats().envelopes_sent << " envelopes\n\n";

  store[0]->update("user:42/name", Reg::write("Ada"));
  store[1]->update("user:42/plan", Reg::write("free"));
  sync();
  std::cout << "after initial writes: name=" << read(2, "user:42/name")
            << " plan=" << read(2, "user:42/plan") << "\n\n";

  // Partition {0,1} | {2,3,4} for 50 ms; both sides keep writing — the
  // store stays available on both sides of the split.
  std::vector<std::size_t> groups(n, 0);
  for (ProcessId p = 2; p < n; ++p) groups[p] = 1;
  net.partition(groups, scheduler.now() + 50'000.0);

  store[0]->update("user:42/plan", Reg::write("pro"));  // side A upgrades
  store[2]->update("user:42/plan",
                   Reg::write("enterprise"));  // side B upgrades harder
  store[3]->update("user:42/quota", Reg::write("100GB"));
  for (auto& s : store) (void)s->flush();

  scheduler.run_until(scheduler.now() + 10'000.0);
  std::cout << "during the partition (split brain, both available):\n"
            << "  side A reads plan=" << read(0, "user:42/plan")
            << "\n  side B reads plan=" << read(2, "user:42/plan")
            << "\n\n";

  sync();  // heal + drain

  std::cout << "after healing, every replica agrees:\n";
  for (ProcessId p = 0; p < n; ++p) {
    std::cout << "  replica " << p << ": plan=" << read(p, "user:42/plan")
              << " quota=" << read(p, "user:42/quota") << '\n';
  }
  std::cout << "(the winner is the write with the largest (clock, pid) "
               "stamp — deterministic, no coordination)\n\n";

  // Crash a replica; the rest never notice operationally.
  net.crash(1);
  store[4]->update("user:42/name", Reg::write("Ada Lovelace"));
  sync();

  bool agree = true;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 1) continue;
    agree &= read(p, "user:42/name") == "Ada Lovelace";
  }
  std::cout << "replica 1 crashed; survivors converged on name="
            << read(0, "user:42/name") << (agree ? "" : "  (DIVERGED — BUG)")
            << '\n';

  // ... and comes back. The rejoin ships per-key compacted bases plus
  // the unstable log suffix from a live donor (O(live state), not
  // O(history)), then resumes live delivery.
  sync();  // drain the old incarnation's traffic (failure detection)
  net.restart(1);
  store[1] = std::make_unique<Store>(Reg{"<unset>"}, 1, net, config_for(1));
  (void)store[1]->request_sync(0);
  sync();
  sync();  // one more tick: acks flow, the catch-up session retires
  const StoreStats& rejoined = store[1]->stats();
  std::cout << "replica 1 restarted: " << rejoined.snapshots_installed
            << " shard snapshots, " << rejoined.catchup_keys
            << " keys, " << rejoined.catchup_entries
            << " suffix entries transferred; reads name="
            << read(1, "user:42/name") << " plan="
            << read(1, "user:42/plan") << '\n';
  agree &= read(1, "user:42/name") == "Ada Lovelace";

  std::cout << "keys live per replica: " << store[0]->keys_live()
            << " (lazily materialized; bounded by keys touched, not "
               "writes)\n\n";
  // One call renders every table the run's counters justify: store,
  // recovery, anti-entropy, convergence lag, and the loss summary.
  obs::Report report;
  for (const auto& s : store) {
    report.processes.push_back(obs::make_process_report(*s));
  }
  report.net = net.stats();
  obs::print_observability(std::cout, report);

  if (!trace_out.empty()) {
    std::vector<const obs::Tracer*> views;
    for (const auto& t : tracers) views.push_back(t.get());
    std::ofstream f(trace_out);
    obs::write_chrome_trace(f, views);
    std::cout << "\nchrome trace written to " << trace_out
              << " (open in chrome://tracing)\n";
  }
  if (!metrics_out.empty()) {
    std::ofstream f(metrics_out);
    obs::export_metrics_json(f, report);
    std::cout << "metrics snapshot written to " << metrics_out << '\n';
  }
  return agree ? 0 : 1;
}
