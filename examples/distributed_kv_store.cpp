// A replicated key-value store on Algorithm 2, surviving crashes and a
// network partition.
//
//   $ ./distributed_kv_store [--replicas=5] [--seed=3]
//
// Algorithm 2 is the paper's practical payoff: an update-consistent
// shared memory with constant-time reads and writes and memory bounded
// by the number of registers. This example runs a 5-replica store,
// partitions it Dynamo-style (both sides keep accepting writes — no
// quorum, no unavailability), heals the partition, crashes a replica,
// and shows the survivors converge to the same last-writer-wins state.
#include <iostream>
#include <memory>

#include "core/memory_object.hpp"
#include "net/scheduler.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace ucw;
  using KV = SimUcMemory<std::string, std::string>;
  const Flags flags = Flags::parse(argc, argv);
  const std::size_t n =
      static_cast<std::size_t>(flags.get_int("replicas", 5));
  const std::uint64_t seed = flags.get_int("seed", 3);

  SimScheduler scheduler;
  SimNetwork<KV::Message>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::exponential(800.0);
  cfg.seed = seed;
  SimNetwork<KV::Message> net(scheduler, cfg);

  std::vector<std::unique_ptr<KV>> store;
  for (ProcessId p = 0; p < n; ++p) {
    store.push_back(std::make_unique<KV>(p, std::string("<unset>"), net));
  }

  std::cout << "== update-consistent KV store, " << n << " replicas ==\n\n";

  store[0]->write("user:42/name", "Ada");
  store[1]->write("user:42/plan", "free");
  scheduler.run();
  std::cout << "after initial writes: name="
            << store[2]->read("user:42/name")
            << " plan=" << store[2]->read("user:42/plan") << "\n\n";

  // Partition {0,1} | {2,3,4} for 50 ms; both sides keep writing — the
  // store stays available on both sides of the split.
  std::vector<std::size_t> groups(n, 0);
  for (ProcessId p = 2; p < n; ++p) groups[p] = 1;
  net.partition(groups, scheduler.now() + 50'000.0);

  store[0]->write("user:42/plan", "pro");       // side A upgrades
  store[2]->write("user:42/plan", "enterprise");  // side B upgrades harder
  store[3]->write("user:42/quota", "100GB");

  scheduler.run_until(scheduler.now() + 10'000.0);
  std::cout << "during the partition (split brain, both available):\n"
            << "  side A reads plan=" << store[0]->read("user:42/plan")
            << "\n  side B reads plan=" << store[2]->read("user:42/plan")
            << "\n\n";

  scheduler.run();  // heal + drain

  std::cout << "after healing, every replica agrees:\n";
  for (ProcessId p = 0; p < n; ++p) {
    std::cout << "  replica " << p << ": plan="
              << store[p]->read("user:42/plan")
              << " quota=" << store[p]->read("user:42/quota") << '\n';
  }
  std::cout << "(the winner is the write with the largest (clock, pid) "
               "stamp — deterministic, no coordination)\n\n";

  // Crash a replica; the rest never notice operationally.
  net.crash(1);
  store[4]->write("user:42/name", "Ada Lovelace");
  scheduler.run();

  bool agree = true;
  for (ProcessId p = 0; p < n; ++p) {
    if (p == 1) continue;
    agree &= store[p]->read("user:42/name") == "Ada Lovelace";
  }
  std::cout << "replica 1 crashed; survivors converged on name="
            << store[0]->read("user:42/name")
            << (agree ? "" : "  (DIVERGED — BUG)") << '\n';
  std::cout << "cells per replica: " << store[0]->replica().cell_count()
            << " (bounded by live keys, not by " << net.stats().broadcasts
            << " total writes)\n";
  return agree ? 0 : 1;
}
