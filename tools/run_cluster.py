#!/usr/bin/env python3
"""Launch a real multi-process UCStore cluster on localhost UDP.

Spawns N `cluster_node` processes (one store each, talking over real
datagrams), waits for every node to converge and export its op history,
merges the per-node histories with `ucaudit merge`, and gates on
`ucaudit check` — the offline update-consistency certification of the
whole cluster run. With --drop/--reorder the transport injects real
packet loss and inversions, so the run exercises SeqCoverage gap
detection and anti-entropy repair over actual sockets.

Usage:
  run_cluster.py --bin=build/cluster_node --ucaudit=build/ucaudit
                 [--nodes=3] [--ops=120] [--keys=16] [--seed=7]
                 [--drop=0.0] [--reorder=0.0] [--out-dir=.]
                 [--timeout=60]

Exit: 0 when every node converges AND the merged history certifies;
nonzero otherwise. Port collisions (another process grabbed the range)
are retried with a fresh base port up to 5 times.

stdlib only — no pip installs in CI.
"""

import argparse
import os
import random
import subprocess
import sys


BIND_FAILED = 3  # cluster_node's "could not bind" exit code


def launch_once(args, base_port, out_dir):
    """One attempt at a full cluster run. Returns (ok, bind_clash)."""
    peers = ",".join(f"127.0.0.1:{base_port + i}" for i in range(args.nodes))
    procs = []
    hist = []
    for pid in range(args.nodes):
        h = os.path.join(out_dir, f"cluster-hist-{pid}.jsonl")
        hist.append(h)
        cmd = [
            args.bin,
            f"--pid={pid}",
            f"--peers={peers}",
            f"--ops={args.ops}",
            f"--keys={args.keys}",
            f"--seed={args.seed}",
            f"--drop={args.drop}",
            f"--reorder={args.reorder}",
            f"--history-out={h}",
            f"--timeout-ms={args.timeout * 1000}",
        ]
        procs.append(subprocess.Popen(cmd))
    codes = []
    for p in procs:
        try:
            codes.append(p.wait(timeout=args.timeout + 30))
        except subprocess.TimeoutExpired:
            p.kill()
            codes.append(-9)
    if BIND_FAILED in codes:
        for p in procs:
            if p.poll() is None:
                p.kill()
        return False, True
    if any(c != 0 for c in codes):
        print(f"run_cluster: node exit codes {codes}", file=sys.stderr)
        return False, False

    merged = os.path.join(out_dir, "cluster-merged.jsonl")
    merge = subprocess.run(
        [args.ucaudit, "merge", f"--out={merged}"] + hist)
    if merge.returncode != 0:
        print("run_cluster: history merge failed", file=sys.stderr)
        return False, False
    check = subprocess.run([args.ucaudit, "check", merged])
    if check.returncode != 0:
        print(f"run_cluster: ucaudit check exited {check.returncode} — "
              "the merged history did NOT certify", file=sys.stderr)
        return False, False
    print(f"run_cluster: {args.nodes} nodes, {args.ops} ops/node, "
          f"drop={args.drop} reorder={args.reorder}: certified "
          f"({merged})")
    return True, False


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bin", required=True, help="path to cluster_node")
    ap.add_argument("--ucaudit", required=True, help="path to ucaudit")
    ap.add_argument("--nodes", type=int, default=3)
    ap.add_argument("--ops", type=int, default=120)
    ap.add_argument("--keys", type=int, default=16)
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--drop", type=float, default=0.0)
    ap.add_argument("--reorder", type=float, default=0.0)
    ap.add_argument("--out-dir", default=".")
    ap.add_argument("--timeout", type=int, default=60,
                    help="per-node convergence timeout, seconds")
    args = ap.parse_args()

    os.makedirs(args.out_dir, exist_ok=True)
    # Deterministic-ish base port per invocation, re-rolled on a clash.
    rng = random.Random(os.getpid() * 2654435761 % 2**32)
    for attempt in range(5):
        base_port = rng.randrange(20000, 60000 - args.nodes)
        ok, clash = launch_once(args, base_port, args.out_dir)
        if ok:
            return 0
        if not clash:
            return 1
        print(f"run_cluster: port clash at base {base_port}, retrying "
              f"({attempt + 1}/5)", file=sys.stderr)
    print("run_cluster: could not find a free port range", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
