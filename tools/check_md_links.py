#!/usr/bin/env python3
"""Check that relative markdown links point at files that exist.

ARCHITECTURE.md (and the README) deliberately link into the source tree
(`src/store/thread_store.hpp`, …); as files move in refactors those
pointers rot silently. This walks every *.md in the repo (skipping
build trees), extracts inline links and bare relative references in
backticked tables, and fails with a list of dead targets.

Checked:
  [text](relative/path)        -> path must exist (anchors stripped)
  [text](relative/path#frag)   -> path must exist (fragment ignored)
Skipped:
  http(s)://, mailto:, #in-page anchors, <angle-bracket autolinks>

stdlib only — no pip installs in CI.
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", "build-tsan", "build-asan", ".git", ".claude"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def md_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def check_file(md: Path, root: Path):
    dead = []
    text = md.read_text(encoding="utf-8")
    # Strip fenced code blocks: ASCII diagrams legitimately contain
    # bracket-paren sequences that are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (md.parent / path_part).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            dead.append((target, "escapes the repository"))
            continue
        if not resolved.exists():
            dead.append((target, "missing"))
    return dead


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    failures = 0
    checked = 0
    for md in md_files(root):
        checked += 1
        for target, why in check_file(md, root):
            failures += 1
            print(f"{md.relative_to(root)}: dead link -> {target} ({why})")
    print(f"checked {checked} markdown files, {failures} dead links")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
