#!/usr/bin/env python3
"""Validate an exported op-history JSONL file (the ucaudit interchange).

CI records a randomized fault scenario with `ucaudit record` and feeds
the artifact through this script before gating on `ucaudit check`, so a
refactor that breaks the wire format — or silently stops recording a
class of ops — fails the build on the *format* level with a readable
message, separately from the consistency verdict.

Checked:
  * line 1 is the meta header: {"meta": {"format": "ucw-history-v1",
    "adt", "processes", "captured", "dropped", "final_reads"}};
  * every data line carries p/t/op/key/ts, with clock+val on updates,
    clock+val on queries, val (no clock) on final reads, and nothing
    else for an op kind;
  * pids fit the meta process count; op is one of u/q/f;
  * per (p, t) stream, update stamps are strictly increasing — the
    recorder captures program order, and per-chain Lamport stamps grow
    along it (a violation means recording corruption, and the offline
    auditor would refuse the chain as "unordered-chain");
  * the meta counters match the file: captured = #u + #q lines,
    final_reads = #f lines;
  * --require-complete: dropped must be 0 (ring never overflowed) — a
    certification gate is meaningless on a truncated history;
  * --min-ops N: at least N data lines (the smoke really ran);
  * provenance: when the meta carries `seed` (non-negative int) and
    `fault` (mutation-corpus wire name or "none") they must be
    well-typed, and --require-provenance demands they are present — a
    fuzz-campaign artifact without them cannot be replayed.

Usage:
  check_history.py HISTORY.jsonl [--require-complete] [--min-ops N]
                   [--require-provenance]

stdlib only — no pip installs in CI.
"""

import argparse
import json
import sys

META_FIELDS = ("format", "adt", "processes", "captured", "dropped",
               "final_reads")
LINE_FIELDS = ("p", "t", "op", "key", "ts")
OPS = {"u", "q", "f"}


def fail(failures):
    for f in failures:
        print(f"FAIL: {f}")
    print(f"{len(failures)} check(s) failed")
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("history")
    ap.add_argument("--require-complete", action="store_true",
                    help="fail if the recorder dropped any records")
    ap.add_argument("--min-ops", type=int, default=1,
                    help="minimum number of data lines")
    ap.add_argument("--require-provenance", action="store_true",
                    help="fail unless the meta names its seed and fault")
    args = ap.parse_args()

    failures = []
    with open(args.history, "r", encoding="utf-8") as f:
        raw_lines = [ln for ln in (l.strip() for l in f) if ln]
    if not raw_lines:
        fail(["empty history file"])

    try:
        head = json.loads(raw_lines[0])
    except json.JSONDecodeError as e:
        fail([f"line 1 is not JSON: {e}"])
    meta = head.get("meta")
    if not isinstance(meta, dict):
        fail(["line 1 is not a meta header"])
    for field in META_FIELDS:
        if field not in meta:
            failures.append(f"meta is missing '{field}'")
    if meta.get("format") != "ucw-history-v1":
        failures.append(f"unknown format {meta.get('format')!r}")
    # Provenance fields (seed + injected fault) arrived after v1 shipped,
    # so they are validated when present and only *required* on demand.
    if "seed" in meta and (not isinstance(meta["seed"], int)
                           or meta["seed"] < 0):
        failures.append(f"meta.seed {meta['seed']!r} is not a "
                        "non-negative integer")
    if "fault" in meta and (not isinstance(meta["fault"], str)
                            or not meta["fault"]):
        failures.append(f"meta.fault {meta['fault']!r} is not a non-empty "
                        "string (expect a corpus wire name or 'none')")
    if args.require_provenance:
        for field in ("seed", "fault"):
            if field not in meta:
                failures.append(
                    f"meta is missing '{field}' but --require-provenance "
                    "was given — the artifact cannot be replayed")
    if failures:
        fail(failures)

    n_processes = meta["processes"]
    counts = {"u": 0, "q": 0, "f": 0}
    last_update_clock = {}  # (p, t) -> last 'u' clock
    for i, raw in enumerate(raw_lines[1:], start=2):
        try:
            line = json.loads(raw)
        except json.JSONDecodeError as e:
            failures.append(f"line {i}: not JSON: {e}")
            continue
        for field in LINE_FIELDS:
            if field not in line:
                failures.append(f"line {i}: missing '{field}'")
        op = line.get("op")
        if op not in OPS:
            failures.append(f"line {i}: unknown op {op!r}")
            continue
        counts[op] += 1
        if not isinstance(line.get("p"), int) or not (
                0 <= line["p"] < n_processes):
            failures.append(
                f"line {i}: pid {line.get('p')!r} outside 0..{n_processes - 1}")
        if op in ("u", "q") and "clock" not in line:
            failures.append(f"line {i}: '{op}' line without clock")
        if op == "f" and "clock" in line:
            failures.append(f"line {i}: final read carries a clock")
        if "val" not in line:
            failures.append(f"line {i}: no val")
        if op == "u" and isinstance(line.get("clock"), int):
            chain = (line.get("p"), line.get("t"))
            prev = last_update_clock.get(chain)
            if prev is not None and line["clock"] <= prev:
                failures.append(
                    f"line {i}: chain p{chain[0]}/t{chain[1]} update clock "
                    f"{line['clock']} not above previous {prev} — "
                    "program-order stamps must be strictly increasing")
            last_update_clock[chain] = line["clock"]
        if len(failures) > 20:
            failures.append("too many failures; stopping early")
            break

    data_lines = counts["u"] + counts["q"] + counts["f"]
    if data_lines < args.min_ops:
        failures.append(
            f"only {data_lines} data lines; --min-ops {args.min_ops}")
    if meta["captured"] != counts["u"] + counts["q"]:
        failures.append(
            f"meta.captured={meta['captured']} but file has "
            f"{counts['u'] + counts['q']} update/query lines")
    if meta["final_reads"] != counts["f"]:
        failures.append(
            f"meta.final_reads={meta['final_reads']} but file has "
            f"{counts['f']} final-read lines")
    if args.require_complete and meta["dropped"] != 0:
        failures.append(
            f"meta.dropped={meta['dropped']}: the recorder overflowed, "
            "certification of this history would be withheld")

    if failures:
        fail(failures)
    provenance = ""
    if "seed" in meta or "fault" in meta:
        provenance = (f", seed={meta.get('seed', '?')}"
                      f", fault={meta.get('fault', '?')}")
    print(f"OK: {data_lines} ops ({counts['u']} updates, {counts['q']} "
          f"queries, {counts['f']} final reads) over {n_processes} "
          f"processes, dropped={meta['dropped']}{provenance}")


if __name__ == "__main__":
    main()
