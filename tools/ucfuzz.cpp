// ucfuzz — mutation-corpus fuzz harness that certifies the certifier.
//
//   ucfuzz list
//       Print the mutation corpus (mutant → violated invariant).
//   ucfuzz sweep --fault=NAME|all --seeds=A-B|a,b,c [--ops=N]
//                [--processes=N]
//       Per-seed detection sweep for curating gated seed sets: runs the
//       mutant on each seed (schedule shaped per its FaultInfo) and
//       prints the verdict per seed plus the detecting-seed list.
//   ucfuzz campaign [--seeds=A-B] [--faults=a,b|all] [--ops=N]
//                   [--processes=N] [--no-shrink] [--max-evals=N]
//                   [--shrink-cap=N] [--out=report.json] [--gate]
//       The full matrix: seeds × corpus mutants × a clean control arm,
//       each run record→certify→(on refute) shrink. Emits a
//       machine-readable campaign report: per-mutant detection rate,
//       clean-arm false-positive rate (must be 0), mean ops / fault
//       events / evaluations of the shrunk counterexamples, and wall
//       time per arm. With --gate, additionally runs every mutant on
//       its curated gated seeds and exits nonzero on any missed
//       detection there, any clean-arm refutation, or any refutation
//       the shrinker could not drive to 1-minimality.
//
// Exit codes: 0 ok / gate passed, 1 gate failed, 2 usage error.
//
// Deterministic end to end: scenarios run under the DES, so a report is
// reproducible from its seed list alone.
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "audit/scenario.hpp"
#include "audit/shrink.hpp"
#include "faults/fault_spec.hpp"
#include "util/flags.hpp"
#include "util/json.hpp"

namespace {

using namespace ucw;
using namespace ucw::audit;

constexpr int kOk = 0;
constexpr int kGateFailed = 1;
constexpr int kUsage = 2;

int usage() {
  std::cerr
      << "usage:\n"
         "  ucfuzz list\n"
         "  ucfuzz sweep --fault=NAME|all --seeds=A-B|a,b,c [--ops=N]\n"
         "               [--processes=N]\n"
         "  ucfuzz campaign [--seeds=A-B] [--faults=a,b|all] [--ops=N]\n"
         "                  [--processes=N] [--no-shrink] [--max-evals=N]\n"
         "                  [--shrink-cap=N] [--out=report.json] [--gate]\n"
         "exit: 0 ok, 1 gate failed, 2 usage error\n";
  return kUsage;
}

/// "3", "1,4,9", and "1-20" (inclusive) all parse; combinations of
/// comma-separated atoms may mix singletons and ranges.
bool parse_seed_list(const std::string& s, std::vector<std::uint64_t>* out) {
  out->clear();
  std::stringstream ss(s);
  std::string atom;
  while (std::getline(ss, atom, ',')) {
    if (atom.empty()) return false;
    const std::size_t dash = atom.find('-');
    try {
      if (dash == std::string::npos) {
        out->push_back(std::stoull(atom));
      } else {
        const std::uint64_t lo = std::stoull(atom.substr(0, dash));
        const std::uint64_t hi = std::stoull(atom.substr(dash + 1));
        if (hi < lo || hi - lo > 10'000) return false;
        for (std::uint64_t v = lo; v <= hi; ++v) out->push_back(v);
      }
    } catch (...) {
      return false;
    }
  }
  return !out->empty();
}

/// The corpus subset a --faults/--fault value names ("all" / "" = all).
bool select_mutants(const std::string& names,
                    std::vector<const FaultInfo*>* out) {
  out->clear();
  if (names.empty() || names == "all") {
    for (const FaultInfo& info : fault_corpus()) out->push_back(&info);
    return true;
  }
  std::stringstream ss(names);
  std::string name;
  while (std::getline(ss, name, ',')) {
    Fault f = Fault::kNone;
    if (!fault_from_name(name, &f) || f == Fault::kNone) {
      std::cerr << "ucfuzz: unknown fault name: " << name << "\n";
      return false;
    }
    out->push_back(fault_info(f));
  }
  return !out->empty();
}

ScenarioSpec shaped_scenario(std::uint64_t seed, const FaultInfo* mutant,
                             std::size_t processes, std::size_t ops) {
  ScenarioShape shape;
  shape.n_processes = processes;
  shape.ops_per_process = ops;
  if (mutant != nullptr) {
    shape.fault = mutant->name;
    shape.force_crash_restart = mutant->wants_restart;
    shape.three_way = mutant->wants_three_way;
  }
  return random_fault_scenario(seed, shape);
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ----- sweep -----------------------------------------------------------

int cmd_sweep(const Flags& flags) {
  std::vector<std::uint64_t> seeds;
  if (!parse_seed_list(flags.get("seeds", "1-20"), &seeds)) return usage();
  std::vector<const FaultInfo*> mutants;
  if (!select_mutants(flags.get("fault", "all"), &mutants)) return kUsage;
  const auto processes =
      static_cast<std::size_t>(flags.get_int("processes", 3));
  const auto ops = static_cast<std::size_t>(flags.get_int("ops", 120));
  for (const FaultInfo* m : mutants) {
    std::vector<std::uint64_t> detecting;
    std::vector<std::uint64_t> confounded;
    std::cout << m->name << ":";
    for (const std::uint64_t seed : seeds) {
      const ScenarioSpec spec = shaped_scenario(seed, m, processes, ops);
      const ScenarioResult r = run_scenario(spec);
      char mark = r.audit.refuted() ? 'R'
                  : r.audit.certified() ? '.'
                                        : '?';
      if (!r.audit.certified()) {
        // Clean twin: the same shaped schedule with the fault switched
        // off. If it also refutes, the verdict is schedule-induced (a
        // crash can destroy a recorded-but-unreplicated update), not
        // mutant-induced — such a seed must not be gated.
        ScenarioSpec clean = spec;
        clean.fault = "none";
        if (run_scenario(clean).audit.refuted()) {
          mark = 'C';
          confounded.push_back(seed);
        } else {
          detecting.push_back(seed);
        }
      }
      std::cout << ' ' << seed << mark << std::flush;
    }
    std::cout << "\n  detecting:";
    for (const std::uint64_t s : detecting) std::cout << ' ' << s;
    std::cout << "  (" << detecting.size() << "/" << seeds.size() << ")";
    if (!confounded.empty()) {
      std::cout << "  confounded:";
      for (const std::uint64_t s : confounded) std::cout << ' ' << s;
    }
    std::cout << "\n";
  }
  return kOk;
}

// ----- campaign --------------------------------------------------------

struct ShrinkStats {
  std::size_t count = 0;       ///< refutations shrunk
  std::size_t minimal = 0;     ///< reached 1-minimality within budget
  double sum_ops = 0;          ///< total ops across shrunk specs
  double sum_fault_events = 0; ///< partitions+crashes+restarts across them
  double sum_evaluations = 0;  ///< replays the shrinker spent
};

struct ArmTally {
  std::size_t runs = 0;
  std::size_t certified = 0;
  std::size_t refuted = 0;
  std::size_t unknown = 0;
  double ms = 0;
  ShrinkStats shrunk;

  [[nodiscard]] std::size_t detected() const { return refuted + unknown; }
};

/// One record→certify→(on refute) shrink pipeline run. `shrink_budget`
/// (nullable = unlimited) is decremented per shrink: a capped campaign
/// shrinks the first N refutations of each mutant and only tallies the
/// rest — the minimality gate applies to what was shrunk.
void run_arm(const ScenarioSpec& spec, bool shrink, std::size_t max_evals,
             std::size_t* shrink_budget, ArmTally* tally,
             std::vector<std::string>* gate_failures,
             const char* gate_label) {
  const double t0 = now_ms();
  const ScenarioResult r = run_scenario(spec);
  ++tally->runs;
  if (r.audit.certified()) {
    ++tally->certified;
  } else if (r.audit.refuted()) {
    ++tally->refuted;
  } else {
    ++tally->unknown;
  }
  if (r.audit.refuted() && shrink &&
      (shrink_budget == nullptr || *shrink_budget > 0)) {
    if (shrink_budget != nullptr) --*shrink_budget;
    ShrinkOptions opt;
    opt.max_evaluations = max_evals;
    const auto is_failing = [](const ScenarioSpec& s) {
      return run_scenario(s).audit.refuted();
    };
    const ShrinkResult sres = shrink_scenario(spec, is_failing, opt);
    ShrinkStats& st = tally->shrunk;
    ++st.count;
    if (sres.minimal) ++st.minimal;
    st.sum_ops += static_cast<double>(sres.spec.total_ops());
    st.sum_fault_events += static_cast<double>(sres.spec.fault_events());
    st.sum_evaluations += static_cast<double>(sres.evaluations);
    if (!sres.minimal && gate_failures != nullptr) {
      gate_failures->push_back(std::string(gate_label) + " seed " +
                               std::to_string(spec.seed) +
                               ": shrink exhausted its budget before "
                               "1-minimality");
    }
  }
  tally->ms += now_ms() - t0;
}

JsonValue shrink_json(const ShrinkStats& st) {
  JsonValue::Object o;
  o.emplace("count", JsonValue(static_cast<double>(st.count)));
  o.emplace("minimal", JsonValue(static_cast<double>(st.minimal)));
  const double n = st.count > 0 ? static_cast<double>(st.count) : 1.0;
  o.emplace("mean_ops", JsonValue(st.sum_ops / n));
  o.emplace("mean_fault_events", JsonValue(st.sum_fault_events / n));
  o.emplace("mean_evaluations", JsonValue(st.sum_evaluations / n));
  return JsonValue(std::move(o));
}

int cmd_campaign(const Flags& flags) {
  std::vector<std::uint64_t> seeds;
  if (!parse_seed_list(flags.get("seeds", "1-10"), &seeds)) return usage();
  std::vector<const FaultInfo*> mutants;
  if (!select_mutants(flags.get("faults", "all"), &mutants)) return kUsage;
  const auto processes =
      static_cast<std::size_t>(flags.get_int("processes", 3));
  const auto ops = static_cast<std::size_t>(flags.get_int("ops", 120));
  const bool shrink = !flags.get_bool("no-shrink", false);
  const auto max_evals =
      static_cast<std::size_t>(flags.get_int("max-evals", 400));
  // --shrink-cap=N: shrink at most N refutations per mutant (0 = all).
  // A full report shrinks everything; the CI smoke caps at 1 so its
  // wall clock is bounded by runs, not by ddmin replays.
  const auto shrink_cap =
      static_cast<std::size_t>(flags.get_int("shrink-cap", 0));
  const bool gate = flags.get_bool("gate", false);
  std::vector<std::string> gate_failures;
  const double campaign_t0 = now_ms();

  // Clean control arm: every seed, no mutant, unshaped schedule. Any
  // refutation here is a false positive of the auditor itself.
  ArmTally clean;
  for (const std::uint64_t seed : seeds) {
    run_arm(shaped_scenario(seed, nullptr, processes, ops), shrink,
            max_evals, nullptr, &clean, nullptr, "");
  }
  if (clean.refuted > 0) {
    gate_failures.push_back("clean arm refuted on " +
                            std::to_string(clean.refuted) + "/" +
                            std::to_string(clean.runs) + " seeds");
  }
  std::cout << "clean: " << clean.certified << "/" << clean.runs
            << " certified, " << clean.refuted << " refuted (must be 0), "
            << clean.unknown << " unknown\n";

  JsonValue::Array mutant_rows;
  for (const FaultInfo* m : mutants) {
    // Exploration arm: the shared seed list, shaped for this mutant.
    // Reported (detection_rate) but not gated — random schedules need
    // not all tickle the bug.
    std::size_t budget =
        shrink_cap > 0 ? shrink_cap : std::numeric_limits<std::size_t>::max();
    // Gated arm first: those refutations are the ones the gate demands
    // be reproducible, so a capped budget spends itself there.
    ArmTally gated;
    std::size_t confounded = 0;
    for (const std::uint64_t seed : m->gated_seeds) {
      const ScenarioSpec spec = shaped_scenario(seed, m, processes, ops);
      run_arm(spec, shrink, max_evals, &budget, &gated,
              gate ? &gate_failures : nullptr, m->name);
      // Clean twin of the gated schedule: the same shape with the fault
      // off must NOT refute, or the gated detection is schedule-induced
      // (e.g. a crash destroying an unreplicated update) rather than
      // mutant-induced — and it doubles as the shaped-schedule false-
      // positive gate on the auditor.
      ScenarioSpec twin = spec;
      twin.fault = "none";
      if (run_scenario(twin).audit.refuted()) ++confounded;
    }
    if (confounded > 0) {
      gate_failures.push_back(std::string(m->name) +
                              ": clean twin refuted on " +
                              std::to_string(confounded) + "/" +
                              std::to_string(gated.runs) +
                              " gated schedules");
    }
    ArmTally arm;
    for (const std::uint64_t seed : seeds) {
      run_arm(shaped_scenario(seed, m, processes, ops), shrink, max_evals,
              &budget, &arm, nullptr, "");
    }
    if (gated.certified > 0) {
      gate_failures.push_back(std::string(m->name) + ": missed on " +
                              std::to_string(gated.certified) + "/" +
                              std::to_string(gated.runs) +
                              " gated seeds");
    }
    const double rate =
        arm.runs > 0
            ? static_cast<double>(arm.detected()) / static_cast<double>(arm.runs)
            : 0.0;
    std::cout << m->name << ": " << arm.detected() << "/" << arm.runs
              << " detected (rate " << rate << "), gated "
              << gated.detected() << "/" << gated.runs << "\n";

    JsonValue::Object row;
    row.emplace("fault", JsonValue(std::string(m->name)));
    row.emplace("invariant", JsonValue(std::string(m->invariant)));
    row.emplace("runs", JsonValue(static_cast<double>(arm.runs)));
    row.emplace("detected", JsonValue(static_cast<double>(arm.detected())));
    row.emplace("refuted", JsonValue(static_cast<double>(arm.refuted)));
    row.emplace("unknown", JsonValue(static_cast<double>(arm.unknown)));
    row.emplace("detection_rate", JsonValue(rate));
    JsonValue::Array gs;
    for (const std::uint64_t s : m->gated_seeds) {
      gs.push_back(JsonValue(static_cast<double>(s)));
    }
    row.emplace("gated_seeds", JsonValue(std::move(gs)));
    row.emplace("gated_runs", JsonValue(static_cast<double>(gated.runs)));
    row.emplace("gated_detected",
                JsonValue(static_cast<double>(gated.detected())));
    row.emplace("gated_clean_refuted",
                JsonValue(static_cast<double>(confounded)));
    ShrinkStats merged = arm.shrunk;
    merged.count += gated.shrunk.count;
    merged.minimal += gated.shrunk.minimal;
    merged.sum_ops += gated.shrunk.sum_ops;
    merged.sum_fault_events += gated.shrunk.sum_fault_events;
    merged.sum_evaluations += gated.shrunk.sum_evaluations;
    row.emplace("shrunk", shrink_json(merged));
    row.emplace("ms", JsonValue(arm.ms + gated.ms));
    mutant_rows.push_back(JsonValue(std::move(row)));
  }

  JsonValue::Object report;
  report.emplace("format", JsonValue(std::string("ucw-fuzz-campaign-v1")));
  JsonValue::Array seed_arr;
  for (const std::uint64_t s : seeds) {
    seed_arr.push_back(JsonValue(static_cast<double>(s)));
  }
  report.emplace("seeds", JsonValue(std::move(seed_arr)));
  report.emplace("processes", JsonValue(static_cast<double>(processes)));
  report.emplace("ops_per_process", JsonValue(static_cast<double>(ops)));
  report.emplace("shrink", JsonValue(shrink));
  {
    JsonValue::Object c;
    c.emplace("runs", JsonValue(static_cast<double>(clean.runs)));
    c.emplace("certified", JsonValue(static_cast<double>(clean.certified)));
    c.emplace("refuted", JsonValue(static_cast<double>(clean.refuted)));
    c.emplace("unknown", JsonValue(static_cast<double>(clean.unknown)));
    c.emplace("false_positive_rate",
              JsonValue(clean.runs > 0
                            ? static_cast<double>(clean.refuted) /
                                  static_cast<double>(clean.runs)
                            : 0.0));
    c.emplace("ms", JsonValue(clean.ms));
    report.emplace("clean", JsonValue(std::move(c)));
  }
  report.emplace("mutants", JsonValue(std::move(mutant_rows)));
  {
    JsonValue::Object g;
    g.emplace("enabled", JsonValue(gate));
    g.emplace("passed", JsonValue(gate_failures.empty()));
    JsonValue::Array fa;
    for (const std::string& f : gate_failures) {
      fa.push_back(JsonValue(f));
    }
    g.emplace("failures", JsonValue(std::move(fa)));
    report.emplace("gate", JsonValue(std::move(g)));
  }
  report.emplace("elapsed_ms", JsonValue(now_ms() - campaign_t0));

  const std::string out = flags.get("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    if (!f.good()) {
      std::cerr << "ucfuzz: cannot open " << out << " for writing\n";
      return kUsage;
    }
    f << JsonValue(std::move(report)).dump() << "\n";
    std::cout << "report: " << out << "\n";
  } else {
    std::cout << JsonValue(std::move(report)).dump() << "\n";
  }

  if (!gate_failures.empty()) {
    for (const std::string& f : gate_failures) {
      std::cerr << "ucfuzz: GATE FAIL: " << f << "\n";
    }
    if (gate) return kGateFailed;
  }
  return kOk;
}

int cmd_list() {
  for (const FaultInfo& m : fault_corpus()) {
    std::cout << m.name << "\n  invariant: " << m.invariant
              << "\n  perversion: " << m.summary << "\n  shape:"
              << (m.wants_restart ? " crash-restart" : "")
              << (m.wants_three_way ? " three-way" : "")
              << ((m.wants_restart || m.wants_three_way) ? "" : " default")
              << "\n  gated seeds:";
    for (const std::uint64_t s : m.gated_seeds) std::cout << ' ' << s;
    std::cout << "\n";
  }
  return kOk;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags = Flags::parse(argc, argv);
  if (flags.positional().empty()) return usage();
  const std::string& cmd = flags.positional()[0];
  if (cmd == "list") return cmd_list();
  if (cmd == "sweep") return cmd_sweep(flags);
  if (cmd == "campaign") return cmd_campaign(flags);
  return usage();
}
