// ucaudit — black-box consistency auditor for recorded op histories.
//
//   ucaudit check <history.jsonl> [--dot-dir=DIR]
//       Load a JSONL history and certify update consistency per key.
//   ucaudit record --out=H.jsonl [--scenario=S.json | --random-faults]
//       Run a simulated scenario, record its history, audit it.
//   ucaudit replay <scenario.json> [--out=H.jsonl] [--dot-dir=DIR]
//       Re-run a saved scenario deterministically and re-audit.
//   ucaudit shrink <scenario.json> --out=MIN.json [--max-evals=N]
//       Reduce a failing scenario to a 1-minimal still-failing one.
//   ucaudit merge --out=MERGED.jsonl <part.jsonl> [<part.jsonl>...]
//       Merge per-process histories (a multi-process cluster records
//       one file per node) into one globally auditable history.
//
// Exit codes: 0 = UC certified, 1 = UC refuted, 2 = usage/IO error,
// 3 = verdict unknown (incomplete recording or no certificate found).
// `merge` exits 0 on success, 2 on any load/validate/write failure.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "audit/auditor.hpp"
#include "audit/scenario.hpp"
#include "audit/shrink.hpp"
#include "history/jsonl.hpp"
#include "history/merge.hpp"
#include "util/flags.hpp"

namespace {

using namespace ucw;
using namespace ucw::audit;

constexpr int kCertified = 0;
constexpr int kRefuted = 1;
constexpr int kUsage = 2;
constexpr int kUnknown = 3;

int usage() {
  std::cerr
      << "usage:\n"
         "  ucaudit check <history.jsonl> [--dot-dir=DIR]\n"
         "  ucaudit record --out=H.jsonl [--scenario=S.json]\n"
         "                 [--random-faults --seed=N --processes=N --ops=N\n"
         "                  --inject-bug | --fault=NAME]\n"
         "                 [--scenario-out=S.json]\n"
         "  ucaudit replay <scenario.json> [--out=H.jsonl] [--dot-dir=DIR]\n"
         "  ucaudit shrink <scenario.json> --out=MIN.json [--max-evals=N]\n"
         "                 [--verbose]\n"
         "  ucaudit merge --out=MERGED.jsonl <part.jsonl> [<part.jsonl>..]\n"
         "exit: 0 certified, 1 refuted, 2 usage/io error, 3 unknown\n";
  return kUsage;
}

int verdict_exit(const AuditReport& report) {
  if (report.certified()) return kCertified;
  if (report.refuted()) return kRefuted;
  return kUnknown;
}

void print_report(const AuditReport& report) {
  std::cout << report.summary() << "\n";
  for (const KeyAudit& ka : report.problems) {
    std::cout << "  key " << ka.key << ": uc=" << to_string(ka.uc)
              << " (" << ka.method << ")"
              << (ka.detail.empty() ? "" : " — " + ka.detail) << "\n";
  }
  for (const std::string& f : report.dot_files) {
    std::cout << "  witness: " << f << "\n";
  }
}

bool load_spec(const std::string& path, ScenarioSpec* spec) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "ucaudit: cannot open scenario " << path << "\n";
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue v;
  std::string err;
  if (!JsonParser::parse(buf.str(), &v, &err)) {
    std::cerr << "ucaudit: bad scenario JSON in " << path << ": " << err
              << "\n";
    return false;
  }
  if (!ScenarioSpec::from_json(v, spec, &err)) {
    std::cerr << "ucaudit: invalid scenario " << path << ": " << err << "\n";
    return false;
  }
  return true;
}

bool save_spec(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "ucaudit: cannot write " << path << "\n";
    return false;
  }
  spec.to_json().write(out);
  out << "\n";
  return out.good();
}

int cmd_check(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  const std::string path = flags.positional()[1];
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "ucaudit: cannot open history " << path << "\n";
    return kUsage;
  }
  HistoryFile h;
  std::string err;
  if (!read_history_jsonl(in, &h, &err)) {
    std::cerr << "ucaudit: " << path << ": " << err << "\n";
    return kUsage;
  }
  AuditOptions opt;
  opt.dot_dir = flags.get("dot-dir", "");
  const AuditReport report = audit_history(h, opt);
  print_report(report);
  return verdict_exit(report);
}

int run_and_report(const ScenarioSpec& spec, const Flags& flags,
                   const std::string& history_out) {
  AuditOptions opt;
  opt.dot_dir = flags.get("dot-dir", "");
  const ScenarioResult result = run_scenario(spec, history_out, opt);
  std::cout << "run: " << result.total_updates << " updates over "
            << spec.n_processes << " processes in " << result.duration_us
            << " virtual us | converged=" << (result.converged ? "yes" : "no")
            << "\n";
  print_report(result.audit);
  return verdict_exit(result.audit);
}

int cmd_record(const Flags& flags) {
  if (flags.get("out", "").empty()) return usage();
  ScenarioSpec spec;
  if (const std::string sp = flags.get("scenario", ""); !sp.empty()) {
    if (!load_spec(sp, &spec)) return kUsage;
  } else {
    // --random-faults is the CI smoke's entry point; a fixed default
    // scenario otherwise.
    spec = random_fault_scenario(
        static_cast<std::uint64_t>(flags.get_int("seed", 1)),
        static_cast<std::size_t>(flags.get_int("processes", 3)),
        static_cast<std::size_t>(flags.get_int("ops", 120)),
        flags.get_bool("inject-bug", false));
    if (!flags.get_bool("random-faults", false)) {
      spec.crashes.clear();
      spec.restarts.clear();
    }
    // --fault=NAME selects a mutation-corpus mutant by wire name
    // (supersedes --inject-bug, which remains as the legacy spelling of
    // --fault=fold_acks_across_gaps).
    if (const std::string fname = flags.get("fault", ""); !fname.empty()) {
      Fault f = Fault::kNone;
      if (!fault_from_name(fname, &f)) {
        std::cerr << "ucaudit: unknown fault name: " << fname << "\n";
        return kUsage;
      }
      spec.fault = fname;
    }
  }
  if (const std::string so = flags.get("scenario-out", ""); !so.empty()) {
    if (!save_spec(spec, so)) return kUsage;
    std::cout << "scenario: " << so << "\n";
  }
  return run_and_report(spec, flags, flags.get("out", ""));
}

int cmd_replay(const Flags& flags) {
  if (flags.positional().size() < 2) return usage();
  ScenarioSpec spec;
  if (!load_spec(flags.positional()[1], &spec)) return kUsage;
  return run_and_report(spec, flags, flags.get("out", ""));
}

int cmd_shrink(const Flags& flags) {
  if (flags.positional().size() < 2 || flags.get("out", "").empty()) {
    return usage();
  }
  ScenarioSpec spec;
  if (!load_spec(flags.positional()[1], &spec)) return kUsage;

  const auto is_failing = [](const ScenarioSpec& s) {
    return run_scenario(s).audit.refuted();
  };
  if (!is_failing(spec)) {
    std::cerr << "ucaudit: scenario does not refute UC; nothing to shrink\n";
    return kUsage;
  }

  ShrinkOptions opt;
  opt.max_evaluations =
      static_cast<std::size_t>(flags.get_int("max-evals", 400));
  if (flags.get_bool("verbose", false)) {
    opt.progress = [](std::size_t evals, std::size_t ops,
                      std::size_t faults) {
      std::cerr << "\r  shrink: " << evals << " replays, " << ops
                << " ops, " << faults << " fault events" << std::flush;
    };
  }
  const ShrinkResult result = shrink_scenario(spec, is_failing, opt);
  if (flags.get_bool("verbose", false)) std::cerr << "\n";

  if (!save_spec(result.spec, flags.get("out", ""))) return kUsage;
  std::cout << "shrunk: " << spec.total_ops() << " ops/"
            << spec.fault_events() << " faults -> "
            << result.spec.total_ops() << " ops/"
            << result.spec.fault_events() << " faults in "
            << result.evaluations << " replays ("
            << (result.minimal ? "1-minimal" : "budget exhausted") << ")\n";
  std::cout << "minimal scenario: " << flags.get("out", "") << "\n";
  // --out here is the shrunk *scenario*; the confirming replay keeps
  // its history in memory (use `ucaudit replay` to export it).
  return run_and_report(result.spec, flags, "");
}

int cmd_merge(const Flags& flags) {
  const std::string out_path = flags.get("out", "");
  if (out_path.empty() || flags.positional().size() < 2) return usage();
  std::vector<HistoryFile> parts;
  for (std::size_t i = 1; i < flags.positional().size(); ++i) {
    const std::string& path = flags.positional()[i];
    std::ifstream in(path);
    if (!in.good()) {
      std::cerr << "ucaudit: cannot open history " << path << "\n";
      return kUsage;
    }
    HistoryFile h;
    std::string err;
    if (!read_history_jsonl(in, &h, &err)) {
      std::cerr << "ucaudit: " << path << ": " << err << "\n";
      return kUsage;
    }
    parts.push_back(std::move(h));
  }
  HistoryFile merged;
  std::string err;
  if (!merge_histories(parts, &merged, &err)) {
    std::cerr << "ucaudit: merge: " << err << "\n";
    return kUsage;
  }
  std::ofstream out(out_path);
  if (!out.good()) {
    std::cerr << "ucaudit: cannot write " << out_path << "\n";
    return kUsage;
  }
  write_history_jsonl(out, merged.meta, merged.lines);
  if (!out.good()) {
    std::cerr << "ucaudit: write failed for " << out_path << "\n";
    return kUsage;
  }
  std::cout << "merged: " << parts.size() << " parts, "
            << merged.lines.size() << " lines, "
            << merged.meta.n_processes << " processes -> " << out_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ucw::Flags flags = ucw::Flags::parse(argc, argv);
  if (flags.positional().empty()) return usage();
  const std::string& cmd = flags.positional().front();
  if (cmd == "check") return cmd_check(flags);
  if (cmd == "record") return cmd_record(flags);
  if (cmd == "replay") return cmd_replay(flags);
  if (cmd == "shrink") return cmd_shrink(flags);
  if (cmd == "merge") return cmd_merge(flags);
  return usage();
}
