#!/usr/bin/env python3
"""Validate an exported Chrome trace (and optional metrics snapshot).

CI runs the observability demos (`partition_trace`, the KV example, the
E10e bench arm) with `--trace-out=`/`--metrics-out=` and feeds the
artifacts through this script, so a refactor that silently stops
emitting spans — or breaks the JSON shape chrome://tracing expects —
fails the build instead of rotting quietly.

Checked on the trace:
  * top level is {"traceEvents": [...]} and every event carries the
    trace_event fields (name, ph, ts, pid, tid) with a known phase
    (B, E, i, C, M);
  * B/E spans pair up per (pid, tid) track in stack order — the
    exporter promises matched pairs, so any orphan is a bug;
  * --require NAME[@PID] names must appear (e.g. partition_heal@2:
    the heal event must sit on process 2's own track).

Checked on the metrics snapshot (--metrics FILE):
  * shape is {"processes": [{"pid", "metrics": {...}}...], "net": {...}};
  * every per-process counter set carries the canonical loss counters
    (dropped_*_crash, dropped_trace_events) and the net section the
    partition/crash drop counters — silent loss must stay reportable;
  * --require-counter NAME names must appear in at least one process's
    counter set (e.g. inbox_deliveries after the sharded-delivery
    rework: a refactor that stops exporting the counter fails CI).

Usage:
  check_trace.py [TRACE.json] [--metrics METRICS.json]
                 [--require name[@pid] ...]
                 [--require-counter name ...]

stdlib only — no pip installs in CI.
"""

import json
import sys

KNOWN_PHASES = {"B", "E", "i", "C", "M"}
EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")
PROCESS_LOSS_COUNTERS = (
    "dropped_entries_crash",
    "dropped_envelopes_crash",
    "dropped_acks_crash",
    "dropped_trace_events",
)
NET_LOSS_COUNTERS = (
    "dropped_messages_crash",
    "dropped_messages_partition",
)


def check_trace(path, required):
    failures = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON ({e})"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: top level must be {{'traceEvents': [...]}}"]

    stacks = {}  # (pid, tid) -> list of open Begin names
    seen = set()  # name and (name, pid) pairs present
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            failures.append(f"{path}: event #{i} unknown phase '{ph}'")
            continue
        # Metadata events (process_name/thread_name) carry no timestamp.
        fields = ("name", "ph", "pid") if ph == "M" else EVENT_FIELDS
        for field in fields:
            if field not in e:
                failures.append(f"{path}: event #{i} missing '{field}': {e}")
                break
        else:
            if ph == "M":
                continue
            seen.add(e["name"])
            seen.add((e["name"], e["pid"]))
            track = (e["pid"], e["tid"])
            if ph == "B":
                stacks.setdefault(track, []).append(e["name"])
            elif ph == "E":
                stack = stacks.setdefault(track, [])
                if not stack:
                    failures.append(
                        f"{path}: event #{i} End '{e['name']}' on track "
                        f"{track} with no open Begin")
                elif stack[-1] != e["name"]:
                    failures.append(
                        f"{path}: event #{i} End '{e['name']}' on track "
                        f"{track} but open span is '{stack[-1]}'")
                else:
                    stack.pop()
    for track, stack in sorted(stacks.items()):
        for name in stack:
            failures.append(
                f"{path}: unclosed Begin '{name}' on track {track}")

    for req in required:
        if "@" in req:
            name, pid = req.rsplit("@", 1)
            if (name, int(pid)) not in seen:
                failures.append(
                    f"{path}: required event '{name}' missing on pid {pid}")
        elif req not in seen:
            failures.append(f"{path}: required event '{req}' missing")

    n_spans = sum(1 for e in events if e.get("ph") == "B")
    print(f"{path}: {len(events)} events, {n_spans} spans, "
          f"{len([e for e in events if e.get('ph') == 'i'])} instants")
    return failures


def check_metrics(path, required_counters=()):
    failures = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path}: unreadable or invalid JSON ({e})"]
    processes = doc.get("processes")
    if not isinstance(processes, list) or not processes:
        failures.append(f"{path}: 'processes' must be a non-empty list")
        processes = []
    for proc in processes:
        pid = proc.get("pid", "?")
        counters = proc.get("metrics", {}).get("counters", {})
        for name in PROCESS_LOSS_COUNTERS:
            if name not in counters:
                failures.append(
                    f"{path}: process {pid} missing loss counter '{name}'")
    # A required counter only needs to show up in SOME process's
    # counter set — what matters is that the store still exports it,
    # not which processes happened to exercise it in this run.
    for name in required_counters:
        if not any(name in p.get("metrics", {}).get("counters", {})
                   for p in processes):
            failures.append(
                f"{path}: required counter '{name}' missing from "
                f"every process")
    net = doc.get("net")
    if not isinstance(net, dict):
        failures.append(f"{path}: missing 'net' section")
    else:
        for name in NET_LOSS_COUNTERS:
            if name not in net.get("counters", {}):
                failures.append(
                    f"{path}: net section missing loss counter '{name}'")
    if not failures:
        print(f"{path}: {len(processes)} processes, loss counters present")
    return failures


def main() -> int:
    args = sys.argv[1:]
    if not args:
        print(__doc__)
        return 2
    trace_path = None
    metrics_path = None
    required = []
    required_counters = []
    i = 0
    while i < len(args):
        if args[i] == "--metrics":
            i += 1
            metrics_path = args[i]
        elif args[i] == "--require":
            i += 1
            while i < len(args) and not args[i].startswith("--"):
                required.append(args[i])
                i += 1
            continue
        elif args[i] == "--require-counter":
            i += 1
            while i < len(args) and not args[i].startswith("--"):
                required_counters.append(args[i])
                i += 1
            continue
        elif trace_path is None:
            trace_path = args[i]
        else:
            print(f"unexpected argument: {args[i]}")
            return 2
        i += 1

    failures = []
    if trace_path is not None:
        failures += check_trace(trace_path, required)
    if metrics_path is not None:
        failures += check_metrics(metrics_path, required_counters)
    elif required_counters:
        print("--require-counter needs --metrics")
        return 2
    for f in failures:
        print(f)
    print(f"{len(failures)} problems")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
