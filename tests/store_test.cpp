#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "adt/all.hpp"
#include "net/scheduler.hpp"
#include "runtime/store_harness.hpp"
#include "store/all.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using Env = SimUcStore<S>::Envelope;

SimNetwork<Env>::Config net_config(std::size_t n,
                                   double duplicate_probability = 0.0) {
  SimNetwork<Env>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::constant(10.0);
  cfg.duplicate_probability = duplicate_probability;
  cfg.seed = 7;
  return cfg;
}

TEST(StoreShardTest, LazyInstantiation) {
  StoreShard<S> shard(S{}, 0, {});
  EXPECT_EQ(shard.keys_live(), 0u);
  EXPECT_EQ(shard.find("a"), nullptr);
  shard.replica("a");
  EXPECT_EQ(shard.keys_live(), 1u);
  EXPECT_NE(shard.find("a"), nullptr);
  shard.replica("a");  // idempotent
  EXPECT_EQ(shard.keys_live(), 1u);
}

TEST(SimUcStoreTest, ShardRoutingIsStable) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(1));
  SimUcStore<S> store(S{}, 0, net);
  for (int i = 0; i < 100; ++i) {
    const std::string k = "key" + std::to_string(i);
    const std::size_t s = store.shard_index(k);
    EXPECT_EQ(s, store.shard_index(k));
    EXPECT_LT(s, store.shard_count());
  }
}

TEST(SimUcStoreTest, SelfDeliveryIsSynchronous) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.batch_window = 64;  // nothing ships on its own
  SimUcStore<S> store(S{}, 0, net, cfg);
  store.update("a", S::insert(1));
  // No scheduler.run(): the sender must already see its own write.
  EXPECT_EQ(store.query("a", S::read()), (std::set<int>{1}));
  EXPECT_EQ(store.pending(), 1u);
  EXPECT_EQ(net.stats().broadcasts, 0u);
}

TEST(SimUcStoreTest, WindowFillTriggersFlush) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.batch_window = 4;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  for (int i = 0; i < 3; ++i) a.update("k", S::insert(i));
  EXPECT_EQ(net.stats().broadcasts, 0u);
  EXPECT_EQ(a.pending(), 3u);
  a.update("k", S::insert(3));  // fills the window
  EXPECT_EQ(net.stats().broadcasts, 1u);
  EXPECT_EQ(a.pending(), 0u);
  sched.run();
  EXPECT_EQ(b.query("k", S::read()), (std::set<int>{0, 1, 2, 3}));
  EXPECT_EQ(b.stats().remote_entries, 4u);
  EXPECT_EQ(a.stats().flushes_full, 1u);
}

TEST(SimUcStoreTest, ManualFlushShipsPartialBatch) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.batch_window = 100;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  a.update("x", S::insert(5));
  a.update("y", S::insert(6));
  EXPECT_EQ(a.flush(), 2u);
  EXPECT_EQ(a.flush(), 0u);  // nothing left
  sched.run();
  EXPECT_EQ(b.query("x", S::read()), (std::set<int>{5}));
  EXPECT_EQ(b.query("y", S::read()), (std::set<int>{6}));
  EXPECT_EQ(a.stats().flushes_manual, 1u);
}

TEST(SimUcStoreTest, WindowOneIsUnbatched) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(3));
  StoreConfig cfg;
  cfg.batch_window = 1;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  SimUcStore<S> c(S{}, 2, net, cfg);
  for (int i = 0; i < 10; ++i) a.update("k", S::insert(i));
  EXPECT_EQ(net.stats().broadcasts, 10u);  // one per update, as Alg. 1
  EXPECT_EQ(a.stats().entries_sent, 10u);
  EXPECT_EQ(a.stats().envelopes_sent, 10u);
  sched.run();
  EXPECT_EQ(b.state_of("k"), c.state_of("k"));
}

TEST(SimUcStoreTest, DemuxRoutesEntriesToTheirKeys) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.batch_window = 6;
  cfg.shard_count = 4;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  a.update("red", S::insert(1));
  a.update("green", S::insert(2));
  a.update("red", S::insert(3));
  a.update("blue", S::insert(4));
  a.update("green", S::remove(2));
  a.update("blue", S::insert(5));  // fills window of 6: one envelope
  EXPECT_EQ(net.stats().broadcasts, 1u);
  sched.run();
  EXPECT_EQ(b.query("red", S::read()), (std::set<int>{1, 3}));
  EXPECT_EQ(b.query("green", S::read()), (std::set<int>{}));
  EXPECT_EQ(b.query("blue", S::read()), (std::set<int>{4, 5}));
  EXPECT_EQ(b.keys_live(), 3u);
}

TEST(SimUcStoreTest, UntouchedKeyAnswersInitialWithoutMaterializing) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(1));
  SimUcStore<S> store(S{}, 0, net);
  EXPECT_EQ(store.query("ghost", S::read()), (std::set<int>{}));
  EXPECT_EQ(store.keys_live(), 0u);
  EXPECT_EQ(store.state_of("ghost"), (std::set<int>{}));
}

TEST(SimUcStoreTest, DuplicateEnvelopesAreAbsorbed) {
  SimScheduler sched;
  // Every p2p message is delivered twice.
  SimNetwork<Env> net(sched, net_config(2, /*duplicate_probability=*/1.0));
  StoreConfig cfg;
  cfg.batch_window = 2;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  a.update("k", S::insert(1));
  a.update("k", S::insert(2));
  sched.run();
  EXPECT_GT(net.stats().messages_duplicated, 0u);
  EXPECT_EQ(b.query("k", S::read()), (std::set<int>{1, 2}));
  // The per-key log counted the replayed entries as duplicates, and the
  // store distinguishes them from distinct applies (drain barriers rely
  // on the distinct count under at-least-once delivery).
  EXPECT_EQ(b.shard_of("k").stats().duplicate_updates, 2u);
  EXPECT_EQ(b.stats().remote_entries, 4u);
  EXPECT_EQ(b.stats().duplicate_entries, 2u);
}

TEST(SimUcStoreTest, BytesAccountingFavorsBatching) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.batch_window = 8;
  SimUcStore<S> a(S{}, 0, net, cfg);
  for (int i = 0; i < 8; ++i) a.update("k", S::insert(i));
  const StoreStats& s = a.stats();
  EXPECT_EQ(s.envelopes_sent, 1u);
  EXPECT_EQ(s.entries_sent, 8u);
  EXPECT_DOUBLE_EQ(s.batch_occupancy(), 8.0);
  EXPECT_LT(s.bytes_batched, s.bytes_unbatched);
  EXPECT_GT(s.bytes_saved_ratio(), 0.0);
}

TEST(SimUcStoreTest, CrashedSenderShipsNothingButStaysLocallyUsable) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.batch_window = 1;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  net.crash(0);
  a.update("k", S::insert(1));
  sched.run();
  EXPECT_EQ(net.stats().broadcasts, 0u);
  // The dropped flush is not counted as sent: stats reflect the wire.
  EXPECT_EQ(a.stats().envelopes_sent, 0u);
  EXPECT_EQ(a.stats().entries_sent, 0u);
  EXPECT_EQ(a.pending(), 0u);  // buffered updates died with the sender
  EXPECT_EQ(a.stats().envelopes_dropped_crash, 1u);
  EXPECT_EQ(a.stats().entries_dropped_crash, 1u);
  EXPECT_EQ(a.flush(), 0u);  // dropped entries are not "flushed" either
  EXPECT_EQ(b.query("k", S::read()), (std::set<int>{}));
  // The crashed process's *local* object still works (crash-stop models
  // it as silent, not corrupted).
  EXPECT_EQ(a.query("k", S::read()), (std::set<int>{1}));
}

TEST(SimUcStoreTest, AdaptiveWindowTracksPerShardRate) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(2));
  StoreConfig cfg;
  cfg.adaptive_window = true;
  cfg.batch_window = 64;  // the cap the per-engine windows adapt under
  cfg.shard_count = 4;
  SimUcStore<S> a(S{}, 0, net, cfg);
  SimUcStore<S> b(S{}, 1, net, cfg);
  const std::size_t hot_shard = a.shard_index("hot");

  // Cold phase: one update per flush tick. The EWMA sees ~1 update per
  // latency bound, so the engine's window shrinks to 1 — the lone
  // update ships immediately instead of waiting out the tick.
  for (int t = 0; t < 40; ++t) {
    a.update("hot", S::insert(t));
    (void)a.flush();
    sched.run();
  }
  EXPECT_EQ(a.shard_stats()[hot_shard].batch_window, 1u);
  const auto full_before = a.stats().flushes_full;
  a.update("hot", S::insert(1000));
  EXPECT_EQ(a.pending(), 0u);  // window 1: shipped on the spot
  EXPECT_EQ(a.stats().flushes_full, full_before + 1);

  // Hot phase: 64 updates per tick. The EWMA climbs and the window
  // grows back toward the cap, restoring batching where it pays.
  for (int t = 0; t < 30; ++t) {
    for (int i = 0; i < 64; ++i) a.update("hot", S::insert(i));
    (void)a.flush();
    sched.run();
  }
  EXPECT_GT(a.shard_stats()[hot_shard].batch_window, 16u);
  EXPECT_LE(a.shard_stats()[hot_shard].batch_window, 64u);
  // Convergence is never window-dependent.
  EXPECT_EQ(a.state_of("hot"), b.state_of("hot"));
}

TEST(SimUcStoreTest, PerKeyStatsAggregateAcrossShards) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, net_config(1));
  StoreConfig cfg;
  cfg.shard_count = 4;
  cfg.batch_window = 64;
  SimUcStore<S> store(S{}, 0, net, cfg);
  for (int i = 0; i < 20; ++i) {
    store.update("key" + std::to_string(i % 10), S::insert(i));
  }
  std::uint64_t local = 0;
  std::size_t keys = 0;
  for (const auto& ss : store.shard_stats()) {
    local += ss.local_updates;
    keys += ss.keys_live;
  }
  EXPECT_EQ(local, 20u);
  EXPECT_EQ(keys, 10u);
  EXPECT_EQ(store.keys_live(), 10u);
  EXPECT_EQ(store.keys().size(), 10u);
}

TEST(StoreHarnessTest, BatchingReducesBroadcastsAtLeastTwofold) {
  // The acceptance bar: ≥ 2x fewer broadcasts/op at window ≥ 4 on a
  // 1000-key zipfian workload (bench/store_throughput.cpp reports the
  // full sweep; this pins the claim in CI).
  auto run = [](std::size_t window) {
    StoreRunConfig cfg;
    cfg.n_processes = 4;
    cfg.seed = 42;
    cfg.n_keys = 1000;
    cfg.skew = 0.99;
    cfg.ops_per_process = 150;
    cfg.update_ratio = 0.9;
    cfg.store.batch_window = window;
    cfg.flush_period = 2'000.0;
    return run_store_simulation(S{}, cfg, [](Rng& rng) {
      WorkloadConfig w;
      w.value_range = 64;
      return random_set_update(rng, w);
    });
  };
  const auto unbatched = run(1);
  const auto batched = run(4);
  ASSERT_TRUE(unbatched.converged);
  ASSERT_TRUE(batched.converged);
  ASSERT_GT(unbatched.total_updates, 0u);
  ASSERT_GT(batched.total_updates, 0u);
  const double base = static_cast<double>(unbatched.net.broadcasts) /
                      static_cast<double>(unbatched.total_updates);
  const double opt = static_cast<double>(batched.net.broadcasts) /
                     static_cast<double>(batched.total_updates);
  EXPECT_GE(base / opt, 2.0) << "batching factor " << base / opt;
}

TEST(ThreadUcStoreTest, ConvergesUnderRealConcurrency) {
  using C = CounterAdt;
  using TEnv = ThreadUcStore<C>::Envelope;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kOpsPerThread = 200;
  ThreadNetwork<TEnv> net(kThreads);
  std::vector<std::unique_ptr<ThreadUcStore<C>>> stores;
  StoreConfig cfg;
  cfg.batch_window = 8;
  for (ProcessId p = 0; p < kThreads; ++p) {
    stores.push_back(std::make_unique<ThreadUcStore<C>>(C{}, p, net, cfg));
  }
  std::vector<std::thread> threads;
  for (ProcessId p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(100 + p);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(rng.uniform_int(0, 9));
        stores[p]->update(key, C::add(1));
      }
      stores[p]->flush();
    });
  }
  for (auto& t : threads) t.join();
  constexpr std::uint64_t kTotal = kThreads * kOpsPerThread;
  for (auto& s : stores) s->drain_until(kTotal);
  std::int64_t sum0 = 0;
  for (int k = 0; k < 10; ++k) {
    sum0 += stores[0]->state_of("k" + std::to_string(k));
  }
  EXPECT_EQ(sum0, static_cast<std::int64_t>(kTotal));
  for (ProcessId p = 1; p < kThreads; ++p) {
    for (int k = 0; k < 10; ++k) {
      const std::string key = "k" + std::to_string(k);
      EXPECT_EQ(stores[p]->state_of(key), stores[0]->state_of(key))
          << "replica " << p << " diverged on " << key;
    }
  }
  net.close_all();
}

TEST(ZipfianKeysTest, SkewConcentratesOnHotKeys) {
  ZipfianKeys keys(1000, 0.99);
  Rng rng(3);
  std::size_t hot = 0;
  constexpr std::size_t kDraws = 10'000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    if (keys.sample_index(rng) < 10) ++hot;
  }
  // Top-1% of a zipf(0.99) keyspace draws ~40% of the traffic.
  EXPECT_GT(hot, kDraws / 4);
  ZipfianKeys uniform(1000, 0.0);
  std::size_t uniform_hot = 0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    if (uniform.sample_index(rng) < 10) ++uniform_hot;
  }
  EXPECT_LT(uniform_hot, kDraws / 20);  // ~1% expected
  EXPECT_EQ(ZipfianKeys::key_name(17), "k17");
}

TEST(EnvelopeTest, WireSizeAccountsFrameOncePerEnvelope) {
  BatchEnvelope<S> e;
  e.entries.push_back({"alpha", UpdateMessage<S>{{1, 0}, S::insert(1), {}}});
  e.entries.push_back({"beta", UpdateMessage<S>{{2, 0}, S::insert(2), {}}});
  e.entries.push_back({"gamma", UpdateMessage<S>{{3, 0}, S::insert(3), {}}});
  const auto batched = static_cast<std::int64_t>(wire_size(e));
  const auto unbatched = static_cast<std::int64_t>(unbatched_wire_size(e));
  EXPECT_LT(batched, unbatched);
  // The frame is paid once per envelope instead of once per entry; the
  // envelope header (kind, epoch, seq, ack clock) is paid once total.
  EXPECT_EQ(unbatched - batched,
            static_cast<std::int64_t>(
                kFrameOverheadBytes * (e.entries.size() - 1)) -
                static_cast<std::int64_t>(kEnvelopeHeaderBytes));
}

}  // namespace
}  // namespace ucw
