// Observability-layer tests: the trace ring's overflow contract, the
// metrics registry under concurrent writers, the log-bucketed histogram
// math, and a golden end-to-end trace/metrics export from a simulated
// store run (the same artifacts tools/check_trace.py validates in CI).
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "adt/counter.hpp"
#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/store_harness.hpp"

namespace ucw {
namespace {

using obs::LogHistogram;
using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TracePhase;
using obs::Tracer;
using obs::TraceRing;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ----- TraceRing ------------------------------------------------------

TEST(TraceRing, OverflowDropsOldestAndCounts) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent e;
    e.ts_us = static_cast<double>(i);
    e.a = i;
    e.kind = TraceEventKind::kUpdateStamp;
    e.phase = TracePhase::kInstant;
    ring.push(e);  // never blocks, never fails
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  EXPECT_EQ(ring.capacity(), 8u);
  const std::vector<TraceEvent> survivors = ring.snapshot();
  ASSERT_EQ(survivors.size(), 8u);
  // The survivors are the newest 8, oldest-first.
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(survivors[i].a, 12 + i);
  }
}

TEST(TraceRing, UnderfilledSnapshotIsEverything) {
  TraceRing ring(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    TraceEvent e;
    e.a = i;
    ring.push(e);
  }
  EXPECT_EQ(ring.dropped(), 0u);
  const auto survivors = ring.snapshot();
  ASSERT_EQ(survivors.size(), 5u);
  EXPECT_EQ(survivors.front().a, 0u);
  EXPECT_EQ(survivors.back().a, 4u);
}

// Concurrent writers each land in a private slot (fetch_add); with the
// total below capacity no slot is ever shared, so this is exact — and
// a clean TSan target for the multi-writer claim.
TEST(TraceRing, ConcurrentWritersNeverBlockOrMiscount) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 1000;
  Tracer tracer(0, /*tracks=*/1, /*ring_capacity_pow2=*/1 << 14);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        tracer.instant(0, TraceEventKind::kUpdateStamp, t * kPerThread + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.ring(0).recorded(), kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped_total(), 0u);
  EXPECT_EQ(tracer.ring(0).snapshot().size(), kThreads * kPerThread);
}

// ----- MetricsRegistry ------------------------------------------------

TEST(MetricsRegistry, ConcurrentWritersAreExact) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 10'000;
  obs::MetricsRegistry reg;
  // Handles resolved once (the find-or-create takes the registry lock);
  // recording through them is lock-free.
  obs::Counter& hits = reg.counter("hits");
  LogHistogram& lat = reg.histogram("latency");
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hits.add(1);
        lat.record(i % 128);
        // Concurrent find-or-create of the same names must converge on
        // the same instruments.
        reg.counter("hits").add(0);
        reg.gauge("last").set(static_cast<std::int64_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hits.value(), kThreads * kPerThread);
  EXPECT_EQ(lat.count(), kThreads * kPerThread);
  EXPECT_EQ(&reg.counter("hits"), &hits);
  std::ostringstream os;
  reg.write_json(os);
  EXPECT_NE(os.str().find("\"hits\": 40000"), std::string::npos);
}

// ----- LogHistogram ---------------------------------------------------

TEST(LogHistogram, BucketsAndPercentiles) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500'500u);
  const auto snap = h.snapshot();
  // Bucket-interpolated: exact to within the power-of-two bucket.
  EXPECT_GE(snap.percentile(50), 256.0);
  EXPECT_LE(snap.percentile(50), 512.0);
  EXPECT_GE(snap.percentile(99), 512.0);
  EXPECT_LE(snap.percentile(99), 1024.0);
  EXPECT_EQ(snap.max_bound(), 1023u);  // inclusive: values <= 2^10 - 1
  EXPECT_NEAR(snap.mean(), 500.5, 0.001);
}

TEST(LogHistogram, ZeroBucketAndMerge) {
  LogHistogram h;
  for (int i = 0; i < 10; ++i) h.record(0);
  EXPECT_EQ(h.percentile(99), 0.0);
  LogHistogram other;
  other.record(100);
  other.merge(h.snapshot());
  EXPECT_EQ(other.count(), 11u);
  EXPECT_EQ(other.snapshot().max_bound(), 127u);
}

TEST(LatencySummary, DelegatesPercentileMath) {
  obs::LatencySummary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1.0);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
}

// ----- golden end-to-end export ---------------------------------------

// One simulated partition/heal run with tracing on: the exported trace
// must be a parseable Chrome trace with exactly matched B/E pairs and
// the expected event vocabulary, the metrics snapshot must surface the
// loss counters, and the report must carry real replication-lag
// samples. (tools/check_trace.py re-checks the same artifacts in CI
// against the real binaries.)
TEST(ObsEndToEnd, GoldenTraceAndMetricsExport) {
  const std::string trace_path = testing::TempDir() + "obs_trace.json";
  const std::string metrics_path = testing::TempDir() + "obs_metrics.json";
  StoreRunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = 11;
  cfg.fifo_links = true;
  cfg.n_keys = 16;
  cfg.ops_per_process = 150;
  cfg.store.batch_window = 4;
  cfg.store.gc = true;
  cfg.store.trace_sample_every = 1;  // full fidelity for the golden run
  cfg.flush_period = 1'000.0;
  cfg.partitions.push_back({/*at=*/10'000.0, {0, 0, 1}});
  cfg.partitions.push_back({/*at=*/40'000.0, {0, 0, 0}});
  cfg.trace_out = trace_path;
  cfg.metrics_out = metrics_path;
  const auto out = run_store_simulation(
      CounterAdt{}, cfg, [](Rng& rng) {
        return CounterAdt::add(rng.uniform_int(1, 3));
      });
  ASSERT_TRUE(out.converged);

  const std::string trace = slurp(trace_path);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(trace.find('\0'), std::string::npos);
  // Matched span pairs, by construction of the exporter.
  EXPECT_GT(count_occurrences(trace, "\"ph\":\"B\""), 0u);
  EXPECT_EQ(count_occurrences(trace, "\"ph\":\"B\""),
            count_occurrences(trace, "\"ph\":\"E\""));
  // The life-of-an-update vocabulary and the partition story.
  for (const char* name :
       {"update_stamp", "apply_remote", "batch_flush", "deliver",
        "partition_cut", "partition_drop", "partition_heal", "ae_request",
        "replication_lag", "process_name"}) {
    EXPECT_GT(count_occurrences(trace, std::string{"\""} + name + "\""), 0u)
        << "missing trace event: " << name;
  }
  // Per-process tracks: every pid appears as a metadata-named process.
  for (const char* proc : {"proc 0", "proc 1", "proc 2"}) {
    EXPECT_NE(trace.find(proc), std::string::npos);
  }

  const std::string metrics = slurp(metrics_path);
  ASSERT_FALSE(metrics.empty());
  for (const char* key :
       {"\"processes\"", "\"net\"", "\"dropped_trace_events\"",
        "\"dropped_envelopes_crash\"", "\"dropped_messages_partition\"",
        "\"replication_lag\""}) {
    EXPECT_NE(metrics.find(key), std::string::npos)
        << "missing metrics key: " << key;
  }

  // The report the harness returns carries the derived convergence
  // metrics directly.
  ASSERT_EQ(out.report.processes.size(), 3u);
  std::uint64_t lag_samples = 0;
  for (const auto& p : out.report.processes) {
    lag_samples += p.replication_lag.count;
    EXPECT_EQ(p.trace_events_dropped, 0u);
    EXPECT_GT(p.trace_events_recorded, 0u);
  }
  EXPECT_GT(lag_samples, 0u);
  EXPECT_GT(out.report.net.messages_dropped_partition, 0u);
}

// Tracing off must leave no obs state behind (the null-pointer branch).
TEST(ObsEndToEnd, TracingOffHasNoObsState) {
  StoreRunConfig cfg;
  cfg.n_processes = 2;
  cfg.ops_per_process = 20;
  const auto out = run_store_simulation(
      CounterAdt{}, cfg, [](Rng&) { return CounterAdt::add(1); });
  ASSERT_TRUE(out.converged);
  ASSERT_EQ(out.report.processes.size(), 2u);
  for (const auto& p : out.report.processes) {
    EXPECT_EQ(p.replication_lag.count, 0u);
    EXPECT_EQ(p.trace_events_recorded, 0u);
  }
}

// Pooled stores put worker apply events on worker tracks: track 0 is
// the router, tracks 1..W the workers.
TEST(ObsEndToEnd, PooledWorkerTracks) {
  using TC = ThreadUcStore<CounterAdt>;
  constexpr std::size_t kWorkers = 2;
  ThreadNetwork<TC::Envelope> net(2);
  std::vector<std::unique_ptr<Tracer>> tracers;
  std::vector<std::unique_ptr<TC>> stores;
  for (ProcessId p = 0; p < 2; ++p) {
    tracers.push_back(std::make_unique<Tracer>(
        static_cast<std::uint32_t>(p), /*tracks=*/kWorkers + 1));
    StoreConfig sc;
    sc.workers = kWorkers;
    sc.batch_window = 8;
    sc.tracing = true;
    sc.tracer = tracers.back().get();
    sc.trace_sample_every = 1;
    stores.push_back(std::make_unique<TC>(CounterAdt{}, p, net, sc));
  }
  constexpr std::size_t kOps = 200;
  for (std::size_t i = 0; i < kOps; ++i) {
    stores[0]->update("k" + std::to_string(i % 16), CounterAdt::add(1));
  }
  for (auto& s : stores) (void)s->flush();
  for (auto& s : stores) s->drain_until(kOps);
  // Stamps land on the issuing process's router track; applies land on
  // the owning workers' tracks of both processes.
  EXPECT_GT(tracers[0]->ring(0).recorded(), 0u);
  std::uint64_t worker_events = 0;
  for (std::size_t t = 1; t <= kWorkers; ++t) {
    worker_events += tracers[0]->ring(t).recorded();
    worker_events += tracers[1]->ring(t).recorded();
  }
  EXPECT_GT(worker_events, 0u);
  std::ostringstream os;
  obs::write_chrome_trace(os, {tracers[0].get(), tracers[1].get()});
  const std::string trace = os.str();
  EXPECT_NE(trace.find("worker 1"), std::string::npos);
  EXPECT_NE(trace.find("apply_local"), std::string::npos);
  EXPECT_NE(trace.find("apply_remote"), std::string::npos);
  net.close_all();
}

}  // namespace
}  // namespace ucw
