// Acceptance tests: the checkers must classify the paper's Figures 1–2
// exactly as the captions do (PC column derived; see DESIGN.md).
#include <gtest/gtest.h>

#include "criteria/all.hpp"
#include "history/figures.hpp"

namespace ucw {
namespace {

struct FigureCase {
  FigureHistory history;
  FigureExpectation expect;
};

class FigureClassification
    : public ::testing::TestWithParam<FigureExpectation> {};

FigureHistory history_for(const std::string& label) {
  if (label == "fig1a") return figure_1a();
  if (label == "fig1b") return figure_1b();
  if (label == "fig1c") return figure_1c();
  if (label == "fig1d") return figure_1d();
  return figure_2();
}

TEST_P(FigureClassification, MatchesPaper) {
  const FigureExpectation& expect = GetParam();
  const FigureHistory h = history_for(expect.label);
  const CriteriaMatrixRow row = check_all_criteria(h);

  EXPECT_EQ(row.ec.verdict, expect.ec ? Verdict::Yes : Verdict::No)
      << "EC mismatch for " << expect.label << ": " << row.ec.explanation;
  EXPECT_EQ(row.sec.verdict, expect.sec ? Verdict::Yes : Verdict::No)
      << "SEC mismatch for " << expect.label << ": " << row.sec.explanation;
  EXPECT_EQ(row.pc.verdict, expect.pc ? Verdict::Yes : Verdict::No)
      << "PC mismatch for " << expect.label << ": " << row.pc.explanation;
  EXPECT_EQ(row.uc.verdict, expect.uc ? Verdict::Yes : Verdict::No)
      << "UC mismatch for " << expect.label << ": " << row.uc.explanation;
  EXPECT_EQ(row.suc.verdict, expect.suc ? Verdict::Yes : Verdict::No)
      << "SUC mismatch for " << expect.label << ": " << row.suc.explanation;
}

std::vector<FigureExpectation> all_expectations() {
  std::vector<FigureExpectation> out;
  for (auto& [h, e] : paper_figures()) out.push_back(e);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, FigureClassification, ::testing::ValuesIn(all_expectations()),
    [](const ::testing::TestParamInfo<FigureExpectation>& info) {
      return info.param.label;
    });

// Proposition 2 on the figures: SUC ⇒ SEC ∧ UC; UC ⇒ EC.
TEST(Proposition2, InclusionsHoldOnFigures) {
  for (const auto& [h, expect] : paper_figures()) {
    const CriteriaMatrixRow row = check_all_criteria(h);
    if (row.suc.yes()) {
      EXPECT_TRUE(row.sec.yes()) << expect.label;
      EXPECT_TRUE(row.uc.yes()) << expect.label;
    }
    if (row.uc.yes()) {
      EXPECT_TRUE(row.ec.yes()) << expect.label;
    }
  }
}

// Definition 10 sanity on the figures: fig1b is the OR-Set's signature
// history — it must be insert-wins consistent (concurrent I/D pairs, the
// inserts win, both replicas converge to {1,2}) while not being UC.
TEST(InsertWins, Fig1bIsInsertWinsButNotUC) {
  const auto h = figure_1b();
  EXPECT_EQ(check_sec_insert_wins(h).verdict, Verdict::Yes);
  EXPECT_EQ(check_uc(h).verdict, Verdict::No);
}

// Proposition 3 direction: fig1d is SUC, hence must also be insert-wins
// SEC (a strong update consistent set can replace an OR-Set).
TEST(InsertWins, SucHistoryIsInsertWinsSec) {
  const auto h = figure_1d();
  EXPECT_EQ(check_suc(h).verdict, Verdict::Yes);
  EXPECT_EQ(check_sec_insert_wins(h).verdict, Verdict::Yes);
}

}  // namespace
}  // namespace ucw
