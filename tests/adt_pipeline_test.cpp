// Every bundled UQ-ADT through the full pipeline: simulate N replicas
// under Algorithm 1, record the history, validate the Definition-9
// certificate, and confirm convergence — the "universal" in universal
// construction, exercised type by type (typed gtest suite).
#include <gtest/gtest.h>

#include "criteria/all.hpp"
#include "runtime/sim_harness.hpp"

namespace ucw {
namespace {

/// Per-ADT workload trait: how to draw a random update.
template <typename A>
struct PipelineTraits;

template <>
struct PipelineTraits<SetAdt<int>> {
  static SetAdt<int> adt() { return {}; }
  static SetAdt<int>::Update gen(Rng& rng) {
    const int v = static_cast<int>(rng.uniform_int(0, 5));
    return rng.chance(0.6) ? SetAdt<int>::insert(v) : SetAdt<int>::remove(v);
  }
};

template <>
struct PipelineTraits<GSetAdt<int>> {
  static GSetAdt<int> adt() { return {}; }
  static GSetAdt<int>::Update gen(Rng& rng) {
    return GSetAdt<int>::insert(static_cast<int>(rng.uniform_int(0, 9)));
  }
};

template <>
struct PipelineTraits<CounterAdt> {
  static CounterAdt adt() { return {}; }
  static CounterAdt::Update gen(Rng& rng) {
    return CounterAdt::add(rng.uniform_int(-4, 6));
  }
};

template <>
struct PipelineTraits<RegisterAdt<int>> {
  static RegisterAdt<int> adt() { return RegisterAdt<int>{-1}; }
  static RegisterAdt<int>::Update gen(Rng& rng) {
    return RegisterAdt<int>::write(static_cast<int>(rng.uniform_int(0, 99)));
  }
};

template <>
struct PipelineTraits<AppendLogAdt<int>> {
  static AppendLogAdt<int> adt() { return {}; }
  static AppendLogAdt<int>::Update gen(Rng& rng) {
    return AppendLogAdt<int>::append(static_cast<int>(rng.uniform_int(0, 99)));
  }
};

template <>
struct PipelineTraits<QueueAdt<int>> {
  static QueueAdt<int> adt() { return {}; }
  static QueueAdt<int>::Update gen(Rng& rng) {
    if (rng.chance(0.65)) {
      return QueueAdt<int>::enqueue(static_cast<int>(rng.uniform_int(0, 9)));
    }
    return QueueAdt<int>::dequeue();
  }
};

template <>
struct PipelineTraits<StackAdt<int>> {
  static StackAdt<int> adt() { return {}; }
  static StackAdt<int>::Update gen(Rng& rng) {
    if (rng.chance(0.65)) {
      return StackAdt<int>::push(static_cast<int>(rng.uniform_int(0, 9)));
    }
    return StackAdt<int>::pop();
  }
};

template <>
struct PipelineTraits<DocumentAdt> {
  static DocumentAdt adt() { return {}; }
  static DocumentAdt::Update gen(Rng& rng) {
    return random_doc_update(rng, 12);
  }
};

template <typename A>
class AdtPipeline : public ::testing::Test {};

using PipelineAdts =
    ::testing::Types<SetAdt<int>, GSetAdt<int>, CounterAdt,
                     RegisterAdt<int>, AppendLogAdt<int>, QueueAdt<int>,
                     StackAdt<int>, DocumentAdt>;

class PipelineNames {
 public:
  template <typename A>
  static std::string GetName(int) {
    return PipelineTraits<A>::adt().name();
  }
};

TYPED_TEST_SUITE(AdtPipeline, PipelineAdts, PipelineNames);

TYPED_TEST(AdtPipeline, ConvergesAndCertifiesAcrossSeeds) {
  using A = TypeParam;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    RunConfig cfg;
    cfg.n_processes = 3;
    cfg.seed = seed * 31;
    cfg.latency = LatencyModel::exponential(600.0);
    cfg.workload.ops_per_process = 20;
    cfg.workload.update_ratio = 0.75;
    auto out = run_uc_simulation(PipelineTraits<A>::adt(), cfg,
                                 [](Rng& rng) {
                                   return PipelineTraits<A>::gen(rng);
                                 });
    EXPECT_TRUE(out.converged)
        << PipelineTraits<A>::adt().name() << " seed " << seed;
    const auto cert =
        validate_suc_certificate(out.history, out.certificate);
    EXPECT_EQ(cert.verdict, Verdict::Yes)
        << PipelineTraits<A>::adt().name() << " seed " << seed << ": "
        << cert.explanation;
  }
}

TYPED_TEST(AdtPipeline, SurvivesCrashesAndHeavyTails) {
  using A = TypeParam;
  RunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = 9;
  cfg.latency = LatencyModel::pareto(150.0, 1.4);
  cfg.workload.ops_per_process = 15;
  cfg.crashes = {CrashPlan{2, 3'000.0}};
  auto out = run_uc_simulation(PipelineTraits<A>::adt(), cfg,
                               [](Rng& rng) {
                                 return PipelineTraits<A>::gen(rng);
                               });
  EXPECT_TRUE(out.converged) << PipelineTraits<A>::adt().name();
  EXPECT_EQ(out.final_states.size(), 3u);
}

TYPED_TEST(AdtPipeline, AllPoliciesReachTheSameState) {
  using A = TypeParam;
  typename A::State states[3];
  int i = 0;
  for (ReplayPolicy policy :
       {ReplayPolicy::NaiveReplay, ReplayPolicy::CachedPrefix,
        ReplayPolicy::Snapshot}) {
    RunConfig cfg;
    cfg.n_processes = 3;
    cfg.seed = 1234;  // identical seed: identical message schedule
    cfg.policy = policy;
    cfg.snapshot_interval = 8;
    cfg.workload.ops_per_process = 15;
    auto out = run_uc_simulation(PipelineTraits<A>::adt(), cfg,
                                 [](Rng& rng) {
                                   return PipelineTraits<A>::gen(rng);
                                 });
    ASSERT_TRUE(out.converged);
    states[i++] = out.final_states.front();
  }
  EXPECT_TRUE(states[0] == states[1]);
  EXPECT_TRUE(states[1] == states[2]);
}

}  // namespace
}  // namespace ucw
