#include <gtest/gtest.h>

#include "clock/lamport.hpp"
#include "clock/matrix_clock.hpp"
#include "clock/vector_clock.hpp"
#include "util/assert.hpp"

namespace ucw {
namespace {

TEST(Stamp, LexicographicTotalOrder) {
  EXPECT_LT((Stamp{1, 5}), (Stamp{2, 0}));
  EXPECT_LT((Stamp{2, 0}), (Stamp{2, 1}));
  EXPECT_EQ((Stamp{3, 3}), (Stamp{3, 3}));
  EXPECT_GT((Stamp{4, 0}), (Stamp{3, 9}));
}

TEST(LamportClock, TickIncreasesMonotonically) {
  LamportClock c(2);
  const Stamp a = c.tick();
  const Stamp b = c.tick();
  EXPECT_LT(a, b);
  EXPECT_EQ(a.pid, 2u);
  EXPECT_EQ(b.clock, a.clock + 1);
}

TEST(LamportClock, ObserveJumpsForward) {
  LamportClock c(0);
  (void)c.tick();  // now=1
  c.observe(10);
  EXPECT_EQ(c.now(), 10u);
  EXPECT_EQ(c.tick().clock, 11u);
  c.observe(5);  // stale, no effect
  EXPECT_EQ(c.now(), 11u);
}

TEST(LamportClock, HappenedBeforeImpliesSmallerStamp) {
  // Classic property: if e1 → e2 (message from p0 to p1), stamp(e1) <
  // stamp(e2).
  LamportClock p0(0), p1(1);
  const Stamp send = p0.tick();
  p1.observe(send);
  const Stamp recv_side = p1.tick();
  EXPECT_LT(send, recv_side);
}

TEST(VectorClock, TickAndCompare) {
  VectorClock a(2), b(2);
  a.tick(0);
  EXPECT_TRUE(b.before(a));
  EXPECT_FALSE(a.before(b));
  b.tick(1);
  EXPECT_TRUE(a.concurrent_with(b));
}

TEST(VectorClock, MergeIsComponentwiseMax) {
  VectorClock a(3), b(3);
  a.tick(0);
  a.tick(0);
  b.tick(1);
  a.merge(b);
  EXPECT_EQ(a.at(0), 2u);
  EXPECT_EQ(a.at(1), 1u);
  EXPECT_EQ(a.at(2), 0u);
  EXPECT_TRUE(b.leq(a));
}

TEST(VectorClock, GrowsDynamically) {
  VectorClock a;
  a.tick(4);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a.at(4), 1u);
  EXPECT_EQ(a.at(9), 0u);  // reads past the end are zero
}

TEST(VectorClock, EqualityIgnoresTrailingZeros) {
  VectorClock a(2), b(5);
  a.tick(0);
  b.tick(0);
  EXPECT_TRUE(a == b);
}

TEST(MatrixClock, StabilityFloorIsMinimum) {
  MatrixClock m(0, 3);
  m.advance_self(10);
  m.observe_direct(1, 7);
  m.observe_direct(2, 5);
  EXPECT_EQ(m.stability_floor(), 5u);
  m.observe_direct(2, 20);
  EXPECT_EQ(m.stability_floor(), 7u);
}

TEST(MatrixClock, MergeRowsGossips) {
  MatrixClock a(0, 3), b(1, 3);
  a.advance_self(4);
  b.advance_self(9);
  b.observe_direct(2, 6);
  a.merge_rows(b.rows());
  EXPECT_EQ(a.rows()[1], 9u);
  EXPECT_EQ(a.rows()[2], 6u);
  EXPECT_EQ(a.stability_floor(), 4u);
}

TEST(MatrixClock, CrashedProcessExcludedFromFloor) {
  MatrixClock m(0, 3);
  m.advance_self(10);
  m.observe_direct(1, 8);
  // Process 2 never acknowledged anything; floor pinned at 0.
  EXPECT_EQ(m.stability_floor(), 0u);
  m.mark_crashed(2);
  EXPECT_EQ(m.stability_floor(), 8u);
}

TEST(MatrixClock, SelfCannotCrash) {
  MatrixClock m(0, 2);
  EXPECT_THROW(m.mark_crashed(0), contract_error);
}

}  // namespace
}  // namespace ucw
