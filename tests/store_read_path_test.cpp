// The wait-free read path: seqlock-published views and get().
//
// Four properties, bottom-up:
//
//  1. SeqlockView itself never serves a torn value: readers hammering a
//     view while a writer republishes must only ever see states that
//     were published whole, and must observe versions monotonically.
//     (Run under TSan in CI — the view is the one piece of the store
//     that is read under *full* concurrency, no quiesce barrier.)
//  2. Promotion: a key turns hot on its first ring query; from then on
//     get() answers from the view — asserted via the published_reads /
//     ring_reads counters, which is exactly the "no ring enqueue"
//     acceptance check (a published read never touches a ring, so the
//     ring op accounting cannot move).
//  3. get() through the store under concurrency: a producer keeps
//     inserting a monotone prefix into one hot key while readers get()
//     it — every read must be a whole prefix {0..k}, never a gappy or
//     partial set, and successive reads on one thread must be monotone
//     (the view only ever moves forward).
//  4. Freshness at quiescence: once producers stop and the store
//     drains, get() agrees with state_of() exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adt/all.hpp"
#include "store/all.hpp"
#include "util/seqlock_view.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using TS = ThreadUcStore<S>;

TEST(SeqlockViewTest, UnpublishedReadsEmpty) {
  SeqlockView<int> view;
  EXPECT_FALSE(view.try_read().has_value());
  EXPECT_EQ(view.version(), 0u);
  view.publish(41);
  ASSERT_TRUE(view.try_read().has_value());
  EXPECT_EQ(*view.try_read(), 41);
  EXPECT_EQ(view.version(), 2u);  // publish #n leaves version at 2n
}

TEST(SeqlockViewTest, NoTornReadsUnderConcurrentPublish) {
  // The writer publishes vectors whose content is an internally
  // consistent pattern (length n, every element == n). A torn read —
  // bytes of two publications mixed — would break the pattern. Readers
  // also check version monotonicity across their own reads.
  SeqlockView<std::vector<std::uint64_t>> view;
  constexpr std::uint64_t kPublishes = 20'000;
  constexpr int kReaders = 3;
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      std::uint64_t last_len = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t v0 = view.version();
        const auto got = view.try_read();
        if (!got.has_value()) continue;  // not yet published, or racing
        for (const std::uint64_t x : *got) {
          ASSERT_EQ(x, got->size()) << "torn read: mixed publications";
        }
        // Views only move forward: a reader can never see an older
        // state after a newer one, nor the version counter go back.
        ASSERT_GE(v0, last_version);
        ASSERT_GE(got->size(), last_len);
        last_version = v0;
        last_len = got->size();
      }
    });
  }
  for (std::uint64_t n = 1; n <= kPublishes; ++n) {
    view.publish(std::vector<std::uint64_t>(n, n));
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(view.version(), 2 * kPublishes);
  ASSERT_TRUE(view.try_read().has_value());
  EXPECT_EQ(view.try_read()->size(), kPublishes);
}

TEST(ReadPathTest, HotKeyGetBypassesRings) {
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 64;  // nothing ships on its own
  TS store(S{}, 0, net, cfg);
  store.update("hot", S::insert(1));
  store.update("hot", S::insert(2));

  // Cold key: the first get() pays the ring round trip — and promotes.
  const auto first = store.get("hot", S::read());
  EXPECT_EQ(first, (std::set<int>{1, 2}));
  {
    const StoreStats s = store.stats();
    EXPECT_EQ(s.published_reads, 0u);
    EXPECT_EQ(s.ring_reads, 1u);
  }

  // Hot key: every subsequent get() answers from the published view,
  // touching no ring — the published_reads counter moves one-for-one
  // and the ring fallback counter stays frozen.
  constexpr std::uint64_t kReads = 100;
  for (std::uint64_t i = 0; i < kReads; ++i) {
    EXPECT_EQ(store.get("hot", S::read()), (std::set<int>{1, 2}));
  }
  {
    const StoreStats s = store.stats();
    EXPECT_EQ(s.published_reads, kReads);
    EXPECT_EQ(s.ring_reads, 1u);
    // The engine did real work only for the one promoting query.
    EXPECT_EQ(s.queries, 1u);
  }

  // The view tracks applies: a new update republishes, get() sees it
  // without ever leaving the published path.
  store.update("hot", S::insert(3));
  (void)store.query("hot", S::read());  // ring barrier: apply landed
  EXPECT_EQ(store.get("hot", S::read()), (std::set<int>{1, 2, 3}));
  EXPECT_EQ(store.stats().ring_reads, 1u);
  net.close_all();
}

TEST(ReadPathTest, PromotionIsVisibleInShardStats) {
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.shard_count = 4;
  TS store(S{}, 0, net, cfg);
  for (int i = 0; i < 8; ++i) {
    const std::string k = "k" + std::to_string(i);
    store.update(k, S::insert(i));
    (void)store.get(k, S::read());    // cold get: promotes
    (void)store.query(k, S::read());  // query never promotes
  }
  std::size_t published = 0;
  for (const ShardStats& s : store.shard_stats()) {
    published += s.published_keys;
  }
  EXPECT_EQ(published, 8u);
  // Promotion is get-driven: the 8 query() calls added no views, and
  // every get() after its key's promoting fallback stayed published.
  const StoreStats st = store.stats();
  EXPECT_EQ(st.ring_reads, 8u);
  net.close_all();
}

TEST(ReadPathTest, NoTornReadsThroughStoreUnderTsan) {
  // One producer inserts 0,1,2,… into a single hot key of a pooled
  // store while reader threads get() it continuously. Every read must
  // be a whole prefix {0..k} — arbitration for a single process is
  // insertion order, each published state is a prefix, and the seqlock
  // view forbids mixing two of them. Reader-side monotonicity comes
  // free from the view. This is the suite TSan gets its money's worth
  // on: get() runs with *no* quiesce barrier against the worker.
  constexpr int kUpdates = 2'000;
  constexpr int kReaders = 2;
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 8;
  TS store(S{}, 0, net, cfg);
  store.update("seq", S::insert(0));
  (void)store.get("seq", S::read());  // cold get: promotes
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      std::size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto got = store.get("seq", S::read());
        ASSERT_FALSE(got.empty());
        // Whole prefix: max element pins the size, no gaps possible.
        ASSERT_EQ(static_cast<std::size_t>(*got.rbegin()) + 1, got.size())
            << "torn or gappy read";
        ASSERT_GE(got.size(), last_size) << "view went backwards";
        last_size = got.size();
      }
    });
  }
  for (int i = 1; i < kUpdates; ++i) {
    store.update("seq", S::insert(i));
  }
  (void)store.flush();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  // Freshness at quiescence: drained, get() == state_of() == full set.
  store.drain_until(kUpdates);
  const auto final = store.get("seq", S::read());
  EXPECT_EQ(final.size(), static_cast<std::size_t>(kUpdates));
  EXPECT_EQ(final, store.state_of("seq"));
  net.close_all();
}

TEST(ReadPathTest, HotGetsAreZeroCopyAndSnapshotsAreImmutable) {
  // The acceptance check for the zero-copy read path: every hot-key
  // get() answers from the immutable shared snapshot without copying
  // the state (zero_copy_reads moves one-for-one with the reads), and
  // the snapshot a reader holds NEVER changes — later applies publish
  // new snapshots, they don't mutate pinned ones.
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 64;
  TS store(S{}, 0, net, cfg);
  store.update("hot", S::insert(1));
  store.update("hot", S::insert(2));
  (void)store.get("hot", S::read());  // cold get: ring read, promotes
  EXPECT_EQ(store.stats().zero_copy_reads, 0u);

  const auto snap = store.try_get_snapshot("hot");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(*snap, (std::set<int>{1, 2}));

  constexpr std::uint64_t kReads = 200;
  for (std::uint64_t i = 0; i < kReads; ++i) {
    EXPECT_EQ(store.get("hot", S::read()), (std::set<int>{1, 2}));
  }
  EXPECT_EQ(store.stats().zero_copy_reads, kReads);

  // A new apply republishes: get() sees the new state through a NEW
  // snapshot object, while the pinned one still holds the old version
  // byte for byte.
  store.update("hot", S::insert(3));
  (void)store.query("hot", S::read());  // ring barrier: apply landed
  EXPECT_EQ(store.get("hot", S::read()), (std::set<int>{1, 2, 3}));
  const auto snap2 = store.try_get_snapshot("hot");
  ASSERT_NE(snap2, nullptr);
  EXPECT_NE(snap2, snap) << "republish must swap snapshots, not mutate";
  EXPECT_EQ(*snap2, (std::set<int>{1, 2, 3}));
  EXPECT_EQ(*snap, (std::set<int>{1, 2}))
      << "a pinned snapshot changed under a reader";
  net.close_all();
}

TEST(ReadPathTest, PromotionRepublishIsLinearInLiveViews) {
  // Promoting N keys republishes the key→view registry as it grows.
  // A naive copy-per-promotion is quadratic (1+2+…+N ≈ N²/2 keys
  // copied — 524k for N=1024); the geometric schedule (copy on
  // doubling, catch-up on the flush tick) keeps the total linear.
  // The 6N bound leaves slack for flush-tick catch-up publishes while
  // sitting three orders of magnitude under quadratic.
  constexpr int kN = 1024;
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.shard_count = 4;
  cfg.batch_window = 8;
  TS store(S{}, 0, net, cfg);
  for (int i = 0; i < kN; ++i) {
    const std::string k = "k" + std::to_string(i);
    store.update(k, S::insert(i));
    (void)store.get(k, S::read());  // cold get: promotes
  }
  std::uint64_t copied = 0, publishes = 0, published = 0;
  for (const ShardStats& s : store.shard_stats()) {
    copied += s.view_registry_keys_copied;
    publishes += s.view_registry_publishes;
    published += s.published_keys;
  }
  EXPECT_EQ(published, static_cast<std::size_t>(kN));
  EXPECT_GT(publishes, 0u);
  EXPECT_LE(copied, 6u * kN)
      << "registry republish went superlinear (" << copied
      << " keys copied for " << kN << " promotions)";
  net.close_all();
}

TEST(ReadPathTest, UnpooledGetIsQuery) {
  // workers == 1: no rings, no views — get() is exactly the wait-free
  // local query, and the pooled counters stay zero.
  ThreadNetwork<TS::Envelope> net(1);
  TS store(S{}, 0, net, StoreConfig{});
  store.update("k", S::insert(7));
  EXPECT_EQ(store.get("k", S::read()), (std::set<int>{7}));
  const StoreStats s = store.stats();
  EXPECT_EQ(s.published_reads, 0u);
  EXPECT_EQ(s.ring_reads, 0u);
  EXPECT_EQ(s.queries, 1u);
  net.close_all();
}

}  // namespace
}  // namespace ucw
