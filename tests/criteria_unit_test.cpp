// Targeted unit tests for the checkers beyond the paper's figures:
// hand-built histories isolating each definitional clause, the SC
// checker, budget behavior, and the certificate validator's rejection of
// every class of malformed witness.
#include <gtest/gtest.h>

#include "adt/all.hpp"
#include "criteria/all.hpp"
#include "history/builder.hpp"
#include "history/figures.hpp"
#include "util/rng.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

// ---------------------------------------------------------------- EC --

TEST(EcChecker, FiniteHistoriesTriviallyEc) {
  HistoryBuilder<S> b{S{}, 1};
  b.update(0, S::insert(1)).query(0, S::read(), IntSet{9});  // nonsense read
  EXPECT_EQ(check_ec(b.build()).verdict, Verdict::Yes);
}

TEST(EcChecker, OmegaDisagreementRefutesEc) {
  HistoryBuilder<S> b{S{}, 2};
  b.query_omega(0, S::read(), IntSet{1});
  b.query_omega(1, S::read(), IntSet{2});
  EXPECT_EQ(check_ec(b.build()).verdict, Verdict::No);
}

TEST(EcChecker, OmegaStateNeedNotBeReachable) {
  // Nothing was ever inserted, yet both processes forever read {7}: EC
  // accepts any state s ∈ S, reachable or not (the paper's point that EC
  // ignores the sequential specification).
  HistoryBuilder<S> b{S{}, 2};
  b.query_omega(0, S::read(), IntSet{7});
  b.query_omega(1, S::read(), IntSet{7});
  EXPECT_EQ(check_ec(b.build()).verdict, Verdict::Yes);
}

// ---------------------------------------------------------------- UC --

TEST(UcChecker, OmegaMustMatchSomeLinearization) {
  // I(1) ‖ D(1): finals are {} (I then D? no — D removes only if last)…
  // reachable finals: {1} (D·I) and {} (I·D). Forever-{1} is fine,
  // forever-{2} is not.
  HistoryBuilder<S> ok{S{}, 2};
  ok.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1});
  ok.update(1, S::remove(1)).query_omega(1, S::read(), IntSet{1});
  EXPECT_EQ(check_uc(ok.build()).verdict, Verdict::Yes);

  HistoryBuilder<S> bad{S{}, 2};
  bad.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{2});
  bad.update(1, S::remove(1)).query_omega(1, S::read(), IntSet{2});
  EXPECT_EQ(check_uc(bad.build()).verdict, Verdict::No);
}

TEST(UcChecker, RespectsProgramOrderBetweenUpdates) {
  // Chain forces I(1) ↦ D(1): the only final is {}; forever-{1} fails —
  // with independent processes it would succeed.
  HistoryBuilder<S> chained{S{}, 1};
  chained.update(0, S::insert(1))
      .update(0, S::remove(1))
      .query_omega(0, S::read(), IntSet{1});
  EXPECT_EQ(check_uc(chained.build()).verdict, Verdict::No);

  HistoryBuilder<S> split{S{}, 2};
  split.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1});
  split.update(1, S::remove(1));
  EXPECT_EQ(check_uc(split.build()).verdict, Verdict::Yes);
}

TEST(UcChecker, FinalStateHelperAgreesWithReachability) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).update(0, S::remove(2));
  b.update(1, S::insert(2)).update(1, S::remove(1));
  const auto h = b.build();
  EXPECT_EQ(check_uc_final_state(h, IntSet{}).verdict, Verdict::Yes);
  EXPECT_EQ(check_uc_final_state(h, IntSet{1}).verdict, Verdict::Yes);
  EXPECT_EQ(check_uc_final_state(h, IntSet{2}).verdict, Verdict::Yes);
  EXPECT_EQ(check_uc_final_state(h, IntSet{1, 2}).verdict, Verdict::No);
}

TEST(UcChecker, BudgetExhaustionIsUnknownNotNo) {
  HistoryBuilder<AppendLogAdt<int>> b{AppendLogAdt<int>{}, 5};
  int v = 0;
  for (ProcessId p = 0; p < 5; ++p) {
    for (int i = 0; i < 4; ++i) {
      b.update(p, AppendLogAdt<int>::append(v++));
    }
    b.query_omega(p, AppendLogAdt<int>::read(), {});
  }
  const auto h = b.build();
  const auto result = check_uc(h, ExploreBudget{.max_states = 100});
  EXPECT_EQ(result.verdict, Verdict::Unknown);
  EXPECT_TRUE(result.stats.budget_exceeded);
}

// ---------------------------------------------------------------- SEC --

TEST(SecChecker, IgnoringAllUpdatesIsSec) {
  // Both processes forever read ∅ despite updates: visibility may simply
  // never deliver the updates to the finite queries, and the ω-queries
  // seeing everything can still be "answered" by the state ∅? No —
  // strong convergence requires *some* state consistent with the reads;
  // ∅ is a state of S. (SEC does not tie the state to the visible set.)
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{});
  b.update(1, S::insert(2)).query_omega(1, S::read(), IntSet{});
  EXPECT_EQ(check_sec(b.build()).verdict, Verdict::Yes);
}

TEST(SecChecker, SameVisibilityForcesSameAnswer) {
  // One process, two successive reads with different values and no
  // update in between: both reads have identical visible sets under any
  // admissible visibility (growth + ↦), so SEC must fail.
  HistoryBuilder<S> b{S{}, 1};
  b.update(0, S::insert(1))
      .query(0, S::read(), IntSet{1})
      .query(0, S::read(), IntSet{2});
  EXPECT_EQ(check_sec(b.build()).verdict, Verdict::No);
}

TEST(SecChecker, ConcurrentUpdateCanSplitVisibility) {
  // Same two reads, but another process's update may become visible
  // between them: now the answers may differ.
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1))
      .query(0, S::read(), IntSet{1})
      .query(0, S::read(), IntSet{1, 2});
  b.update(1, S::insert(2));
  EXPECT_EQ(check_sec(b.build()).verdict, Verdict::Yes);
}

TEST(SecChecker, OwnUpdateAlwaysVisible) {
  // vis ⊇ ↦: a process cannot un-see its own insert.
  HistoryBuilder<S> b{S{}, 1};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{});
  // ω-query must see I(1); but SEC's state is arbitrary — ∅ is a state
  // satisfying R/∅ regardless of what is visible. SEC says yes!
  EXPECT_EQ(check_sec(b.build()).verdict, Verdict::Yes);
  // …which is precisely why the paper needed update consistency:
  EXPECT_EQ(check_uc(b.build()).verdict, Verdict::No);
}

// ---------------------------------------------------------------- SUC --

TEST(SucChecker, TiesVisibleSetToExecutedState) {
  // The SEC-accepted "ignore the updates" history must fail SUC: the
  // ω-query sees I(1) and executing {I(1)} yields {1} ≠ ∅.
  HistoryBuilder<S> b{S{}, 1};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{});
  EXPECT_EQ(check_suc(b.build()).verdict, Verdict::No);
}

TEST(SucChecker, WitnessOrderRespectsQueryThroughConstraint) {
  // p0: R/{2} ↦ I(1); p1: I(2). The read sees I(2), so ≤ must place
  // I(2) before everything the read precedes — in particular before
  // I(1). A witness exists (I(2) < I(1)); flipping the read's value to
  // {1,2} is impossible since I(1) cannot precede the read it follows.
  HistoryBuilder<S> ok{S{}, 2};
  ok.query(0, S::read(), IntSet{2}).update(0, S::insert(1));
  ok.update(1, S::insert(2));
  EXPECT_EQ(check_suc(ok.build()).verdict, Verdict::Yes);

  HistoryBuilder<S> bad{S{}, 2};
  bad.query(0, S::read(), IntSet{1, 2}).update(0, S::insert(1));
  bad.update(1, S::insert(2));
  EXPECT_EQ(check_suc(bad.build()).verdict, Verdict::No);
}

TEST(SucChecker, ReportsWitnessOrder) {
  const auto h = figure_1d();
  const auto result = check_suc(h);
  ASSERT_EQ(result.verdict, Verdict::Yes);
  EXPECT_NE(result.explanation.find("witness update order"),
            std::string::npos);
}

// ---------------------------------------------------------------- SC --

TEST(ScChecker, AcceptsGenuinelySequentialHistory) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query(0, S::read(), IntSet{1});
  b.query(1, S::read(), IntSet{1, 2}).update(1, S::insert(2));
  // wait: the p1 read precedes its insert; value {1,2} impossible.
  EXPECT_EQ(check_sc(b.build()).verdict, Verdict::No);

  HistoryBuilder<S> b2{S{}, 2};
  b2.update(0, S::insert(1)).query(0, S::read(), IntSet{1});
  b2.update(1, S::insert(2)).query(1, S::read(), IntSet{1, 2});
  EXPECT_EQ(check_sc(b2.build()).verdict, Verdict::Yes);
}

TEST(ScChecker, FiguresAreNotSc) {
  // SC is the top of the hierarchy: every paper figure violates it
  // (fig1d is SUC yet not SC — its R/{2} read cannot be linearized after
  // I(1) ↦ I(2)).
  for (const auto& [h, expect] : paper_figures()) {
    EXPECT_EQ(check_sc(h).verdict, Verdict::No) << expect.label;
  }
}

TEST(ScChecker, ScImpliesSucUcEcOnSamples) {
  // On every history we can build quickly: SC ⇒ SUC ⇒ UC ⇒ EC.
  for (std::uint64_t seed = 900; seed < 940; ++seed) {
    Rng rng(seed);
    HistoryBuilder<S> b{S{}, 2};
    for (ProcessId p = 0; p < 2; ++p) {
      for (int i = 0; i < 2; ++i) {
        const int v = static_cast<int>(rng.uniform_int(1, 2));
        if (rng.chance(0.5)) {
          b.update(p, rng.chance(0.6) ? S::insert(v) : S::remove(v));
        } else {
          IntSet out;
          if (rng.chance(0.5)) out.insert(1);
          b.query(p, S::read(), out);
        }
      }
      IntSet fin;
      if (rng.chance(0.5)) fin.insert(1);
      b.query_omega(p, S::read(), fin);
    }
    const auto h = b.build();
    if (check_sc(h).verdict == Verdict::Yes) {
      EXPECT_EQ(check_suc(h).verdict, Verdict::Yes) << h.to_string();
      EXPECT_EQ(check_uc(h).verdict, Verdict::Yes) << h.to_string();
      EXPECT_EQ(check_ec(h).verdict, Verdict::Yes) << h.to_string();
    }
  }
}

TEST(ScChecker, OmegaCheckedAtFinalState) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1, 2});
  b.update(1, S::insert(2)).query_omega(1, S::read(), IntSet{1, 2});
  EXPECT_EQ(check_sc(b.build()).verdict, Verdict::Yes);

  HistoryBuilder<S> b2{S{}, 2};
  b2.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1});
  b2.update(1, S::insert(2)).query_omega(1, S::read(), IntSet{1, 2});
  EXPECT_EQ(check_sc(b2.build()).verdict, Verdict::No);
}

// ------------------------------------------------------ insert-wins --

TEST(InsertWinsChecker, RejectsDeleteWinsOutcome) {
  // Concurrent I(1) and D(1) where D(1) did NOT observe the insert, yet
  // the converged reads drop 1: that is delete-wins, not insert-wins.
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{});
  b.update(1, S::remove(1)).query_omega(1, S::read(), IntSet{});
  // For Def. 10 the delete would have to see the insert (u vis u'), but
  // then the insert precedes it in any admissible vis… that is allowed!
  // D observing I and winning IS insert-wins-consistent (the insert is
  // superseded, not concurrent). So this history is OK:
  EXPECT_EQ(check_sec_insert_wins(b.build()).verdict, Verdict::Yes);

  // But a value present without any visible insert is not:
  HistoryBuilder<S> b2{S{}, 1};
  b2.update(0, S::remove(1)).query_omega(0, S::read(), IntSet{1});
  EXPECT_EQ(check_sec_insert_wins(b2.build()).verdict, Verdict::No);
}

TEST(InsertWinsChecker, ConcurrentInsertSurvivesObservedDelete) {
  // fig1b shape for one value: I(1) at p0; p1 deletes 1 *without* its
  // insert being visible — both converge to {1}: insert wins.
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1});
  b.update(1, S::remove(1)).query_omega(1, S::read(), IntSet{1});
  EXPECT_EQ(check_sec_insert_wins(b.build()).verdict, Verdict::Yes);
}

// ------------------------------------------------------ certificates --

class CertificateNegative : public ::testing::Test {
 protected:
  // A valid 2-process run: p0 inserts 1 (stamp (1,0)), p1 inserts 2
  // (stamp (1,1)), both read {1,2} forever.
  void SetUp() override {
    HistoryBuilder<S> b{S{}, 2};
    b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1, 2});
    b.update(1, S::insert(2)).query_omega(1, S::read(), IntSet{1, 2});
    history_ = std::make_unique<History<S>>(b.build());
    // events: 0=I(1)@p0, 1=Rω@p0, 2=I(2)@p1, 3=Rω@p1
    cert_.stamps = {Stamp{1, 0}, Stamp{3, 0}, Stamp{1, 1}, Stamp{3, 1}};
    cert_.visible = {{0}, {0, 2}, {2}, {0, 2}};
  }

  std::unique_ptr<History<S>> history_;
  RunCertificate cert_;
};

TEST_F(CertificateNegative, ValidCertificateAccepted) {
  EXPECT_EQ(validate_suc_certificate(*history_, cert_).verdict,
            Verdict::Yes);
}

TEST_F(CertificateNegative, DuplicateStampsRejected) {
  cert_.stamps[2] = Stamp{1, 0};  // collides with event 0
  const auto r = validate_suc_certificate(*history_, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
  EXPECT_NE(r.explanation.find("duplicate"), std::string::npos);
}

TEST_F(CertificateNegative, NonMonotoneChainStampsRejected) {
  cert_.stamps[1] = Stamp{0, 0};  // query stamped before its own insert
  const auto r = validate_suc_certificate(*history_, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
}

TEST_F(CertificateNegative, SelfInvisibleUpdateRejected) {
  cert_.visible[0] = {};  // update does not see itself
  const auto r = validate_suc_certificate(*history_, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
  EXPECT_NE(r.explanation.find("see itself"), std::string::npos);
}

TEST_F(CertificateNegative, ShrinkingVisibilityRejected) {
  cert_.visible[1] = {2};  // drops program-order predecessor 0
  const auto r = validate_suc_certificate(*history_, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
}

TEST_F(CertificateNegative, OmegaMissingUpdateRejected) {
  cert_.visible[3] = {2};  // ω-read missed update 0: eventual delivery
  const auto r = validate_suc_certificate(*history_, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
}

TEST_F(CertificateNegative, VisSeesFutureStampRejected) {
  // Event 1 (stamp (3,0)) claims to see event 2 re-stamped after it.
  cert_.stamps[2] = Stamp{9, 1};
  cert_.stamps[3] = Stamp{10, 1};
  const auto r = validate_suc_certificate(*history_, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
}

TEST_F(CertificateNegative, WrongReplayValueRejected) {
  // Make p1's ω-read return something its visible log cannot produce.
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1, 2});
  b.update(1, S::insert(2)).query_omega(1, S::read(), IntSet{1});
  const auto h = b.build();
  const auto r = validate_suc_certificate(h, cert_);
  EXPECT_EQ(r.verdict, Verdict::No);
  EXPECT_NE(r.explanation.find("replays to"), std::string::npos);
}

TEST_F(CertificateNegative, ArityMismatchRejected) {
  cert_.stamps.pop_back();
  EXPECT_EQ(validate_suc_certificate(*history_, cert_).verdict,
            Verdict::No);
}

TEST_F(CertificateNegative, InsertWinsValidatorChecksMembershipRule) {
  // p1's *finite* read sees only its own I(2) yet returns {1}: value 1
  // is present without any visible insert (and 2 is missing despite an
  // unsuperseded visible insert) — only the membership rule can refute
  // this; the visible sets are all distinct, so strong convergence
  // cannot.
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1, 2});
  b.update(1, S::insert(2)).query(1, S::read(), IntSet{1});
  const auto h = b.build();
  RunCertificate cert;
  cert.stamps = {Stamp{1, 0}, Stamp{3, 0}, Stamp{1, 1}, Stamp{3, 1}};
  cert.visible = {{0}, {0, 2}, {2}, {2}};
  const auto r = validate_insert_wins_certificate(h, cert);
  EXPECT_EQ(r.verdict, Verdict::No);
  EXPECT_NE(r.explanation.find("insert-wins"), std::string::npos);
}

}  // namespace
}  // namespace ucw
