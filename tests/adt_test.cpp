#include <gtest/gtest.h>

#include "adt/all.hpp"

namespace ucw {
namespace {

using IntSet = std::set<int>;

TEST(SetAdt, TransitionsMatchExampleOne) {
  SetAdt<int> s;
  auto st = s.initial();
  EXPECT_TRUE(st.empty());
  st = s.transition(st, SetAdt<int>::insert(1));
  st = s.transition(st, SetAdt<int>::insert(2));
  EXPECT_EQ(st, (IntSet{1, 2}));
  st = s.transition(st, SetAdt<int>::remove(1));
  EXPECT_EQ(st, (IntSet{2}));
  st = s.transition(st, SetAdt<int>::remove(7));  // delete absent: no-op
  EXPECT_EQ(st, (IntSet{2}));
  EXPECT_EQ(s.output(st, SetAdt<int>::read()), (IntSet{2}));
}

TEST(SetAdt, InsertIsIdempotent) {
  SetAdt<int> s;
  auto st = s.transition(s.initial(), SetAdt<int>::insert(1));
  st = s.transition(st, SetAdt<int>::insert(1));
  EXPECT_EQ(st, (IntSet{1}));
}

TEST(SetAdt, SatisfyingStateRequiresAgreement) {
  SetAdt<int> s;
  using Obs = QueryObservation<SetAdt<int>>;
  std::vector<Obs> agree{{SetRead{}, IntSet{1}}, {SetRead{}, IntSet{1}}};
  EXPECT_EQ(s.satisfying_state(agree), (IntSet{1}));
  std::vector<Obs> conflict{{SetRead{}, IntSet{1}}, {SetRead{}, IntSet{2}}};
  EXPECT_FALSE(s.satisfying_state(conflict).has_value());
  EXPECT_EQ(s.satisfying_state({}), IntSet{});
}

TEST(SetAdt, Formatting) {
  SetAdt<int> s;
  EXPECT_EQ(s.format_update(SetAdt<int>::insert(3)), "I(3)");
  EXPECT_EQ(s.format_update(SetAdt<int>::remove(4)), "D(4)");
  EXPECT_EQ(s.format_query(SetRead{}, IntSet{1, 2}), "R/{1, 2}");
}

TEST(GSetAdt, GrowOnly) {
  GSetAdt<int> g;
  auto st = g.transition(g.initial(), SetInsert<int>{5});
  st = g.transition(st, SetInsert<int>{6});
  EXPECT_EQ(st, (IntSet{5, 6}));
}

TEST(CounterAdt, AddCommutes) {
  CounterAdt c;
  auto a = c.transition(c.transition(0, CounterAdd{3}), CounterAdd{-5});
  auto b = c.transition(c.transition(0, CounterAdd{-5}), CounterAdd{3});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, -2);
}

TEST(RegisterAdt, LastWriteDefines) {
  RegisterAdt<int> r{42};
  EXPECT_EQ(r.initial(), 42);
  auto st = r.transition(r.initial(), RegWrite<int>{7});
  EXPECT_EQ(r.output(st, RegRead{}), 7);
}

TEST(MemoryAdt, ReadsDefaultToInitialValue) {
  MemoryAdt<std::string, int> m{.v0 = -1};
  auto st = m.initial();
  EXPECT_EQ(m.output(st, MemoryAdt<std::string, int>::read("x")), -1);
  st = m.transition(st, MemoryAdt<std::string, int>::write("x", 5));
  EXPECT_EQ(m.output(st, MemoryAdt<std::string, int>::read("x")), 5);
  EXPECT_EQ(m.output(st, MemoryAdt<std::string, int>::read("y")), -1);
}

TEST(MemoryAdt, SatisfyingStateJoinsDisjointReads) {
  MemoryAdt<std::string, int> m;
  using Obs = QueryObservation<MemoryAdt<std::string, int>>;
  std::vector<Obs> obs{{MemRead<std::string>{"x"}, 1},
                       {MemRead<std::string>{"y"}, 2}};
  auto s = m.satisfying_state(obs);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ((*s)["x"], 1);
  EXPECT_EQ((*s)["y"], 2);
  std::vector<Obs> clash{{MemRead<std::string>{"x"}, 1},
                         {MemRead<std::string>{"x"}, 2}};
  EXPECT_FALSE(m.satisfying_state(clash).has_value());
}

TEST(AppendLogAdt, OrderSensitive) {
  AppendLogAdt<int> l;
  auto ab = l.transition(l.transition(l.initial(), LogAppend<int>{1}),
                         LogAppend<int>{2});
  auto ba = l.transition(l.transition(l.initial(), LogAppend<int>{2}),
                         LogAppend<int>{1});
  EXPECT_NE(ab, ba);
}

TEST(QueueAdt, FifoWithSplitOps) {
  QueueAdt<int> q;
  auto st = q.initial();
  EXPECT_EQ(q.output(st, QueueFront{}), std::nullopt);
  st = q.transition(st, QueueAdt<int>::enqueue(1));
  st = q.transition(st, QueueAdt<int>::enqueue(2));
  EXPECT_EQ(q.output(st, QueueFront{}), std::optional<int>(1));
  st = q.transition(st, QueueAdt<int>::dequeue());
  EXPECT_EQ(q.output(st, QueueFront{}), std::optional<int>(2));
  st = q.transition(st, QueueAdt<int>::dequeue());
  st = q.transition(st, QueueAdt<int>::dequeue());  // empty: no-op
  EXPECT_EQ(q.output(st, QueueFront{}), std::nullopt);
}

TEST(StackAdt, LookupTopDeleteTopSplit) {
  StackAdt<int> s;
  auto st = s.initial();
  st = s.transition(st, StackAdt<int>::push(1));
  st = s.transition(st, StackAdt<int>::push(2));
  EXPECT_EQ(s.output(st, StackTop{}), std::optional<int>(2));
  st = s.transition(st, StackAdt<int>::pop());
  EXPECT_EQ(s.output(st, StackTop{}), std::optional<int>(1));
}

TEST(DocumentAdt, PositionsClampToBounds) {
  DocumentAdt d;
  auto st = d.transition(d.initial(), DocumentAdt::insert_at(100, "abc"));
  EXPECT_EQ(st, "abc");
  st = d.transition(st, DocumentAdt::insert_at(1, "X"));
  EXPECT_EQ(st, "aXbc");
  st = d.transition(st, DocumentAdt::erase_at(2, 50));
  EXPECT_EQ(st, "aX");
  st = d.transition(st, DocumentAdt::erase_at(9, 1));  // no-op
  EXPECT_EQ(st, "aX");
}

TEST(Replayer, RecognizesValidWords) {
  using S = SetAdt<int>;
  SequentialReplayer<S> r{S{}};
  std::vector<SeqOp<S>> word;
  word.emplace_back(std::in_place_index<0>, S::insert(1));
  word.emplace_back(std::in_place_index<1>,
                    QueryObservation<S>{SetRead{}, IntSet{1}});
  word.emplace_back(std::in_place_index<0>, S::remove(1));
  word.emplace_back(std::in_place_index<1>,
                    QueryObservation<S>{SetRead{}, IntSet{}});
  auto res = r.replay(word);
  ASSERT_TRUE(res.recognized());
  EXPECT_EQ(*res.final_state, IntSet{});
}

TEST(Replayer, RejectsContradictedQuery) {
  using S = SetAdt<int>;
  SequentialReplayer<S> r{S{}};
  std::vector<SeqOp<S>> word;
  word.emplace_back(std::in_place_index<0>, S::insert(1));
  word.emplace_back(std::in_place_index<1>,
                    QueryObservation<S>{SetRead{}, IntSet{2}});
  auto res = r.replay(word);
  EXPECT_FALSE(res.recognized());
  EXPECT_EQ(res.failed_at, 1u);
}

TEST(Replayer, FormatWordReadable) {
  using S = SetAdt<int>;
  SequentialReplayer<S> r{S{}};
  std::vector<SeqOp<S>> word;
  word.emplace_back(std::in_place_index<0>, S::insert(1));
  word.emplace_back(std::in_place_index<1>,
                    QueryObservation<S>{SetRead{}, IntSet{1}});
  EXPECT_EQ(r.format_word(word), "I(1)·R/{1}");
}

TEST(Replayer, ApplyUpdatesPureSequence) {
  using S = SetAdt<int>;
  SequentialReplayer<S> r{S{}};
  EXPECT_EQ(r.apply_updates({S::insert(1), S::insert(2), S::remove(1)}),
            (IntSet{2}));
}

}  // namespace
}  // namespace ucw
