#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "util/bitset64.hpp"
#include "util/flags.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ucw {
namespace {

TEST(Bitset64, BasicSetOperations) {
  Bitset64 b;
  EXPECT_TRUE(b.empty());
  b.set(3);
  b.set(10);
  EXPECT_EQ(b.count(), 2);
  EXPECT_TRUE(b.test(3));
  EXPECT_FALSE(b.test(4));
  b.reset(3);
  EXPECT_FALSE(b.test(3));
  EXPECT_EQ(b.count(), 1);
}

TEST(Bitset64, AllAndContains) {
  const auto all5 = Bitset64::all(5);
  EXPECT_EQ(all5.count(), 5);
  EXPECT_TRUE(all5.contains(Bitset64::single(4)));
  EXPECT_FALSE(all5.contains(Bitset64::single(5)));
  EXPECT_TRUE(all5.contains(Bitset64{}));
  EXPECT_EQ(Bitset64::all(64).count(), 64);
}

TEST(Bitset64, SetAlgebra) {
  Bitset64 a = Bitset64::single(1) | Bitset64::single(3);
  Bitset64 b = Bitset64::single(3) | Bitset64::single(5);
  EXPECT_EQ((a & b), Bitset64::single(3));
  EXPECT_EQ(a.minus(b), Bitset64::single(1));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.minus(b).intersects(b));
}

TEST(Bitset64, ForEachVisitsAscending) {
  Bitset64 b;
  b.set(0);
  b.set(7);
  b.set(63);
  std::vector<unsigned> seen;
  b.for_each([&](unsigned i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<unsigned>{0, 7, 63}));
  EXPECT_EQ(b.lowest(), 0u);
}

TEST(Bitset64, SubmaskEnumerationCoversPowerset) {
  const Bitset64 mask = Bitset64::all(4);
  std::set<std::uint64_t> seen;
  Bitset64 sub;
  while (true) {
    seen.insert(sub.raw());
    if (sub == mask) break;
    sub = Bitset64((sub.raw() - mask.raw()) & mask.raw());
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(Hash, CompositeTypesHashConsistently) {
  const std::set<int> s1{1, 2, 3};
  const std::set<int> s2{1, 2, 3};
  EXPECT_EQ(hash_value(s1), hash_value(s2));
  const std::vector<int> v1{1, 2};
  const std::vector<int> v2{2, 1};
  EXPECT_NE(hash_value(v1), hash_value(v2));
  const std::pair<int, std::string> p{1, "a"};
  EXPECT_EQ(hash_value(p), hash_value(std::pair<int, std::string>{1, "a"}));
}

TEST(Hash, EmptyContainersDiffer) {
  // Not a strict requirement, but the seeds keep common cases apart.
  EXPECT_NE(hash_value(std::set<int>{}), hash_value(std::set<int>{0}));
  EXPECT_NE(hash_value(std::vector<int>{}), hash_value(std::vector<int>{0}));
}

TEST(Rng, DeterministicReplay) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng root(7);
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkByNameIsStable) {
  Rng root(7);
  EXPECT_EQ(root.fork("latency").uniform_int(0, 1 << 30),
            root.fork("latency").uniform_int(0, 1 << 30));
  EXPECT_NE(root.fork("latency").seed(), root.fork("workload").seed());
}

TEST(Rng, DistributionsInRange) {
  Rng r(3);
  for (int i = 0; i < 200; ++i) {
    const double u = r.uniform_real(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    EXPECT_GT(r.exponential(4.0), 0.0);
    EXPECT_GE(r.pareto(1.0, 2.0), 1.0);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(11);
  std::vector<double> w{0.0, 1.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(r.weighted_index(w), 1u);
  }
}

TEST(Stats, MomentsAndPercentiles) {
  StatsAccumulator acc;
  for (int i = 1; i <= 100; ++i) acc.add(i);
  EXPECT_EQ(acc.count(), 100u);
  EXPECT_DOUBLE_EQ(acc.mean(), 50.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 100.0);
  EXPECT_NEAR(acc.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(acc.percentile(99), 99.01, 0.1);
  EXPECT_NEAR(acc.stddev(), 28.866, 0.01);
}

TEST(Stats, MergeCombinesSamples) {
  StatsAccumulator a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Stats, EmptyThrowsOnMoments) {
  StatsAccumulator acc;
  EXPECT_TRUE(acc.empty());
  EXPECT_THROW((void)acc.mean(), contract_error);
  EXPECT_EQ(acc.summary(), "n=0");
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog",       "--n=5",     "--rate", "0.5",
                        "positional", "--verbose", "--benchmark_filter=x"};
  Flags f = Flags::parse(7, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 0), 5);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.5);
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.has("benchmark_filter"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "positional");
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
}

TEST(Assert, CheckThrowsContractError) {
  EXPECT_THROW(UCW_CHECK(false), contract_error);
  EXPECT_NO_THROW(UCW_CHECK(true));
}

}  // namespace
}  // namespace ucw
