// Reproducibility helpers for randomized property tests.
//
// Every randomized schedule in the suite draws its seeds through here,
// so a red run always names the seed that broke it and a developer can
// replay exactly that schedule with
//
//   UCW_SEED=<n> ./store_property_test --gtest_filter=...
//
// UCW_SEED overrides the whole seed list with the single given seed —
// the test then runs its property once, on the schedule under
// investigation. Use SCOPED_TRACE(seed_trace(seed)) inside the per-seed
// loop so any assertion failure beneath it carries the seed.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace ucw::test {

/// The UCW_SEED env override, if set and parseable.
inline bool env_seed(std::uint64_t* out) {
  const char* s = std::getenv("UCW_SEED");
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

/// The seed list a property test iterates: the given defaults, or the
/// single UCW_SEED when the override is set.
inline std::vector<std::uint64_t> property_seeds(
    std::vector<std::uint64_t> defaults) {
  std::uint64_t s = 0;
  if (env_seed(&s)) return {s};
  return defaults;
}

/// One seed (fixed-schedule tests): the default, or UCW_SEED.
inline std::uint64_t seed_or(std::uint64_t def) {
  std::uint64_t s = 0;
  return env_seed(&s) ? s : def;
}

/// SCOPED_TRACE message naming the failing seed and how to replay it.
inline std::string seed_trace(std::uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (replay with UCW_SEED=" + std::to_string(seed) + ")";
}

}  // namespace ucw::test
