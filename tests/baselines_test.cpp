// The pipelined (apply-on-delivery) baseline: pipelined consistent over
// FIFO links, but not convergent — Section IV's impossibility made
// executable.
#include <gtest/gtest.h>

#include <memory>

#include "adt/replayer.hpp"
#include "baselines/pipelined.hpp"
#include "history/figures.hpp"
#include "net/scheduler.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;
using M = PipelinedReplica<S>::Message;

struct Cluster {
  SimScheduler scheduler;
  std::unique_ptr<SimNetwork<M>> net;
  std::vector<std::unique_ptr<PipelinedReplica<S>>> replicas;

  explicit Cluster(std::size_t n, LatencyModel latency, std::uint64_t seed) {
    SimNetwork<M>::Config cfg;
    cfg.n_processes = n;
    cfg.latency = latency;
    cfg.fifo_links = true;  // pipelined consistency needs FIFO reception
    cfg.seed = seed;
    net = std::make_unique<SimNetwork<M>>(scheduler, cfg);
    for (ProcessId p = 0; p < n; ++p) {
      replicas.push_back(std::make_unique<PipelinedReplica<S>>(S{}, p));
      auto* r = replicas.back().get();
      net->set_handler(p, [r](ProcessId from, const M& m) {
        r->apply(from, m);
      });
    }
  }

  void update(ProcessId p, typename S::Update u) {
    net->broadcast(p, replicas[p]->local_update(std::move(u)));
  }
};

TEST(Pipelined, CommutativeWorkloadsConverge) {
  Cluster c(3, LatencyModel::exponential(100.0), 5);
  for (int i = 0; i < 30; ++i) {
    c.update(static_cast<ProcessId>(i % 3), S::insert(i));
  }
  c.scheduler.run();
  for (auto& r : c.replicas) {
    EXPECT_EQ(r->state().size(), 30u);
  }
}

TEST(Pipelined, Figure2ScenarioDivergesForever) {
  // p0: I(1) · I(3);  p1: I(2) · D(3) — issued before any cross-traffic
  // arrives. p1 applies D(3) on an empty-of-3 state (no-op), then I(3)
  // lands later: p1 keeps 3. p0 applies I(3) then D(3): drops it.
  Cluster c(2, LatencyModel::constant(1000.0), 1);
  c.update(0, S::insert(1));
  c.update(0, S::insert(3));
  c.update(1, S::insert(2));
  c.update(1, S::remove(3));
  c.scheduler.run();

  EXPECT_EQ(c.replicas[0]->state(), (IntSet{1, 2}));
  EXPECT_EQ(c.replicas[1]->state(), (IntSet{1, 2, 3}));
  // All updates delivered everywhere, yet the states differ — eventual
  // consistency is violated while each local view stays pipelined
  // consistent (Proposition 1's obstruction).
  EXPECT_EQ(c.replicas[0]->applied(), 4u);
  EXPECT_EQ(c.replicas[1]->applied(), 4u);
}

TEST(Pipelined, DivergenceMatchesFigure2History) {
  // The recorded stable reads of the diverged run are exactly the ω-tail
  // of Figure 2, which the checkers classify PC-yes / EC-no.
  const auto h = figure_2();
  const auto expect_p0 = IntSet{1, 2};
  const auto expect_p1 = IntSet{1, 2, 3};

  Cluster c(2, LatencyModel::constant(1000.0), 1);
  c.update(0, S::insert(1));
  c.update(0, S::insert(3));
  c.update(1, S::insert(2));
  c.update(1, S::remove(3));
  c.scheduler.run();
  EXPECT_EQ(c.replicas[0]->query(S::read()), expect_p0);
  EXPECT_EQ(c.replicas[1]->query(S::read()), expect_p1);

  // Cross-check against the paper's figure: the ω-reads carry the same
  // two values.
  std::vector<IntSet> omega_reads;
  for (EventId q : h.query_ids()) {
    if (h.event(q).omega) omega_reads.push_back(h.event(q).query().second);
  }
  ASSERT_EQ(omega_reads.size(), 2u);
  EXPECT_EQ(omega_reads[0], expect_p0);
  EXPECT_EQ(omega_reads[1], expect_p1);
}

TEST(Pipelined, LocalViewIsAlwaysSequentiallyPlausible) {
  // Each replica's own state always equals replaying the updates in its
  // delivery order — the essence of pipelined consistency.
  Cluster c(2, LatencyModel::exponential(50.0), 9);
  SequentialReplayer<S> replayer{S{}};
  std::vector<typename S::Update> delivered;
  c.net->set_handler(0, [&](ProcessId from, const M& m) {
    c.replicas[0]->apply(from, m);
    delivered.push_back(m.update);
    EXPECT_EQ(c.replicas[0]->state(), replayer.apply_updates(delivered));
  });
  for (int i = 0; i < 20; ++i) {
    c.update(1, i % 2 == 0 ? S::insert(i) : S::remove(i - 1));
  }
  c.scheduler.run();
  EXPECT_EQ(delivered.size(), 20u);
}

}  // namespace
}  // namespace ucw
