#include <gtest/gtest.h>

#include "history/builder.hpp"
#include "history/figures.hpp"
#include "history/history.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

TEST(HistoryBuilder, BuildsChainsWithProgramOrder) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query(0, S::read(), IntSet{1});
  b.update(1, S::insert(2));
  const auto h = b.build();

  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.process_count(), 2u);
  EXPECT_EQ(h.update_ids().size(), 2u);
  EXPECT_EQ(h.query_ids().size(), 1u);
  EXPECT_TRUE(h.prog_before(0, 1));   // same chain
  EXPECT_FALSE(h.prog_before(1, 0));
  EXPECT_FALSE(h.prog_before(0, 2));  // cross chain, no edge
  EXPECT_FALSE(h.prog_before(2, 0));
}

TEST(HistoryBuilder, OmegaMustBeChainMaximal) {
  HistoryBuilder<S> b{S{}, 1};
  b.query_omega(0, S::read(), IntSet{});
  b.update(0, S::insert(1));  // after the omega event: invalid
  EXPECT_THROW(b.build(), contract_error);
}

TEST(HistoryBuilder, OmegaUpdatesRejected) {
  // The encoding reserves ω for queries; an infinite update set would
  // trivialize every criterion.
  HistoryBuilder<S> b{S{}, 1};
  Event<S> e;
  e.id = 0;
  e.pid = 0;
  e.seq = 0;
  e.label = EventLabel<S>(std::in_place_index<0>, S::insert(1));
  e.omega = true;
  EXPECT_THROW((History<S>{S{}, {e}, 1}), contract_error);
}

TEST(History, ExtraEdgesInduceCrossChainOrder) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1));
  const EventId u1 = b.last_id();
  b.update(1, S::insert(2));
  const EventId u2 = b.last_id();
  b.order_edge(u1, u2);
  const auto h = b.build();
  EXPECT_TRUE(h.prog_before(u1, u2));
  EXPECT_FALSE(h.prog_before(u2, u1));
}

TEST(History, CyclicExtraEdgesRejected) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1));
  const EventId a = b.last_id();
  b.update(1, S::insert(2));
  const EventId c = b.last_id();
  b.order_edge(a, c).order_edge(c, a);
  EXPECT_THROW(b.build(), contract_error);
}

TEST(History, TransitiveClosureThroughExtraEdges) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1));
  b.update(0, S::insert(2));
  const EventId mid = b.last_id();
  b.update(1, S::insert(3));
  const EventId tail = b.last_id();
  b.order_edge(mid, tail);
  const auto h = b.build();
  EXPECT_TRUE(h.prog_before(0, tail));  // 0 ↦ mid ↦ tail
}

TEST(History, RestrictionKeepsOrderAndRenumbers) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query(0, S::read(), IntSet{1});
  b.update(1, S::insert(2)).query(1, S::read(), IntSet{2});
  const auto h = b.build();

  const auto restricted = h.restricted_to({0, 1});  // p0 only
  EXPECT_EQ(restricted.size(), 2u);
  EXPECT_TRUE(restricted.prog_before(0, 1));
  EXPECT_EQ(restricted.update_ids().size(), 1u);
}

TEST(History, UpdateSlotsAreDense) {
  const auto h = figure_1b();
  EXPECT_EQ(h.update_ids().size(), 4u);
  std::set<std::size_t> slots;
  for (EventId id : h.update_ids()) slots.insert(h.update_slot(id));
  EXPECT_EQ(slots.size(), 4u);
  EXPECT_EQ(*slots.begin(), 0u);
  EXPECT_EQ(*slots.rbegin(), 3u);
}

TEST(History, ToStringShowsOmega) {
  const auto h = figure_1a();
  const std::string s = h.to_string();
  EXPECT_NE(s.find("I(1)"), std::string::npos);
  EXPECT_NE(s.find("^ω"), std::string::npos);
  EXPECT_NE(s.find("p1"), std::string::npos);
}

TEST(Figures, ShapesMatchPaper) {
  EXPECT_EQ(figure_1a().size(), 8u);
  EXPECT_EQ(figure_1a().update_ids().size(), 2u);
  EXPECT_EQ(figure_1b().size(), 6u);
  EXPECT_EQ(figure_1b().update_ids().size(), 4u);
  EXPECT_EQ(figure_1c().size(), 5u);
  EXPECT_EQ(figure_1d().size(), 6u);
  EXPECT_EQ(figure_2().size(), 10u);
  EXPECT_EQ(figure_2().update_ids().size(), 4u);
  EXPECT_EQ(paper_figures().size(), 5u);
}

TEST(Figures, OmegaTailsPresent) {
  for (const auto& [h, expect] : paper_figures()) {
    EXPECT_TRUE(h.has_omega()) << expect.label;
    EXPECT_EQ(h.omega_count(), 2u) << expect.label;
  }
}

}  // namespace
}  // namespace ucw
