// Cross-validation: the polynomial/DP engines against brute-force
// enumeration on populations of random small histories. Any disagreement
// is a checker bug; these suites are the safety net under the clever
// code.
#include <gtest/gtest.h>

#include "adt/all.hpp"
#include "criteria/all.hpp"
#include "util/rng.hpp"
#include "history/builder.hpp"
#include "lin/enumerate.hpp"
#include "lin/multichain.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

History<S> random_finite_history(std::uint64_t seed, std::size_t procs,
                                 int ops_per_proc, int values) {
  Rng rng(seed);
  HistoryBuilder<S> b{S{}, procs};
  for (ProcessId p = 0; p < procs; ++p) {
    for (int i = 0; i < ops_per_proc; ++i) {
      const int v = static_cast<int>(rng.uniform_int(1, values));
      const double dice = rng.uniform_real(0, 1);
      if (dice < 0.4) {
        b.update(p, S::insert(v));
      } else if (dice < 0.65) {
        b.update(p, S::remove(v));
      } else {
        IntSet out;
        for (int x = 1; x <= values; ++x) {
          if (rng.chance(0.4)) out.insert(x);
        }
        b.query(p, S::read(), out);
      }
    }
  }
  return b.build();
}

class RandomHistorySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomHistorySweep, ScEqualsBruteForceRecognition) {
  const auto h = random_finite_history(GetParam(), 2, 3, 2);
  const bool brute = exists_recognized_linearization(h);
  const auto sc = check_sc(h);
  ASSERT_NE(sc.verdict, Verdict::Unknown);
  EXPECT_EQ(sc.verdict == Verdict::Yes, brute) << h.to_string();
}

TEST_P(RandomHistorySweep, DownsetFinalStatesEqualBruteForce) {
  const auto h = random_finite_history(GetParam() + 5'000, 3, 2, 2);
  // Keep updates only.
  std::vector<EventId> keep = h.update_ids();
  const auto updates_only = h.restricted_to(keep);

  std::set<IntSet> brute;
  SequentialReplayer<S> replayer{S{}};
  for_each_linearization(updates_only,
                         [&](const std::vector<EventId>& word) {
                           std::vector<typename S::Update> ops;
                           for (EventId id : word) {
                             ops.push_back(updates_only.event(id).update());
                           }
                           brute.insert(replayer.apply_updates(ops));
                           return true;
                         });

  DownsetExplorer<S> explorer(updates_only);
  const auto& finals = explorer.final_states();
  const std::set<IntSet> dp(finals.begin(), finals.end());
  EXPECT_EQ(dp, brute) << updates_only.to_string();
}

TEST_P(RandomHistorySweep, ChainLinearizerEqualsBruteForceOnSubHistory) {
  const auto h = random_finite_history(GetParam() + 10'000, 2, 3, 2);
  ChainLinearizer<S> lin(h);
  for (ProcessId p = 0; p < 2; ++p) {
    // Definition 7's sub-history: all updates plus p's events.
    std::vector<EventId> keep;
    for (EventId id = 0; id < h.size(); ++id) {
      if (h.event(id).is_update() || h.event(id).pid == p) {
        keep.push_back(id);
      }
    }
    const auto sub = h.restricted_to(keep);
    const bool brute = exists_recognized_linearization(sub);
    const auto dp = lin.chain_has_linearization(p);
    ASSERT_TRUE(dp.has_value());
    EXPECT_EQ(*dp, brute) << "chain p" << p << "\n" << h.to_string();
  }
}

TEST_P(RandomHistorySweep, MultiChainAgreesWithChainOnSingleProcess) {
  // A single-process history: PC, SC and brute force must coincide.
  const auto h = random_finite_history(GetParam() + 20'000, 1, 5, 2);
  const bool brute = exists_recognized_linearization(h);
  const auto sc = check_sc(h);
  const auto pc = check_pc(h);
  EXPECT_EQ(sc.verdict == Verdict::Yes, brute) << h.to_string();
  EXPECT_EQ(pc.verdict == Verdict::Yes, brute) << h.to_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHistorySweep,
                         ::testing::Range<std::uint64_t>(1, 61));

TEST(CrossValidation, SucImpliesScOnUpdateOnlyHistories) {
  // With no queries at all, UC/SUC/SC all reduce to "some linearization
  // of the updates exists" — always true. Sanity-check the reduction.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    HistoryBuilder<S> b{S{}, 3};
    for (ProcessId p = 0; p < 3; ++p) {
      const int n = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < n; ++i) {
        const int v = static_cast<int>(rng.uniform_int(1, 3));
        b.update(p, rng.chance(0.5) ? S::insert(v) : S::remove(v));
      }
    }
    const auto h = b.build();
    EXPECT_EQ(check_sc(h).verdict, Verdict::Yes);
    EXPECT_EQ(check_suc(h).verdict, Verdict::Yes);
    EXPECT_EQ(check_uc(h).verdict, Verdict::Yes);
    EXPECT_EQ(check_pc(h).verdict, Verdict::Yes);
  }
}

TEST(CrossValidation, ExtraEdgesRespectedByAllEngines) {
  // Force I(2) ↦ I(1) across processes; then R/{1} on a third chain can
  // never be explained: when 1 is present, 2 is too (no deletes).
  HistoryBuilder<S> b{S{}, 3};
  b.update(0, S::insert(1));
  const EventId i1 = b.last_id();
  b.update(1, S::insert(2));
  const EventId i2 = b.last_id();
  b.query(2, S::read(), IntSet{1});
  b.order_edge(i2, i1);
  const auto h = b.build();
  EXPECT_FALSE(exists_recognized_linearization(h));
  EXPECT_EQ(check_sc(h).verdict, Verdict::No);
  EXPECT_EQ(check_pc(h).verdict, Verdict::No);

  // Flip the read to {2}: linearize I(2) · R/{2} · I(1).
  HistoryBuilder<S> b2{S{}, 3};
  b2.update(0, S::insert(1));
  const EventId j1 = b2.last_id();
  b2.update(1, S::insert(2));
  const EventId j2 = b2.last_id();
  b2.query(2, S::read(), IntSet{2});
  b2.order_edge(j2, j1);
  const auto h2 = b2.build();
  EXPECT_TRUE(exists_recognized_linearization(h2));
  EXPECT_EQ(check_sc(h2).verdict, Verdict::Yes);
  EXPECT_EQ(check_pc(h2).verdict, Verdict::Yes);
}

TEST(CrossValidation, CounterHistoriesCollapseToOneFinal) {
  // Commuting updates: the DP must find exactly one final state and the
  // brute force must agree, for any poset shape.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    HistoryBuilder<CounterAdt> b{CounterAdt{}, 3};
    std::int64_t sum = 0;
    for (ProcessId p = 0; p < 3; ++p) {
      const int n = static_cast<int>(rng.uniform_int(1, 4));
      for (int i = 0; i < n; ++i) {
        const std::int64_t d = rng.uniform_int(-5, 5);
        b.update(p, CounterAdt::add(d));
        sum += d;
      }
    }
    const auto h = b.build();
    DownsetExplorer<CounterAdt> explorer(h);
    const auto& finals = explorer.final_states();
    ASSERT_EQ(finals.size(), 1u);
    EXPECT_EQ(*finals.begin(), sum);
  }
}

}  // namespace
}  // namespace ucw
