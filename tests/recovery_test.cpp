// Recovery subsystem: store-level stability, log compaction, snapshot
// shipping and crash-restart catch-up.
//
// Layered like the subsystem itself: tracker and log primitives first,
// then the snapshot codec round trip, then live StoreCore clusters on
// the simulated network — GC folding across the keyspace, a full
// crash → restart → request_sync → converge cycle, and the bootstrap
// guard that keeps a rejoining replica from reusing pre-crash stamps.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/all.hpp"
#include "net/scheduler.hpp"
#include "recovery/all.hpp"
#include "runtime/store_harness.hpp"
#include "store/all.hpp"
#include "util/assert.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using Store = SimUcStore<S>;
using Env = Store::Envelope;

SimNetwork<Env>::Config fifo_net_config(std::size_t n,
                                        double duplicate_probability = 0.0) {
  SimNetwork<Env>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::constant(10.0);
  cfg.fifo_links = true;
  cfg.duplicate_probability = duplicate_probability;
  cfg.seed = 9;
  return cfg;
}

StoreConfig gc_store_config(std::size_t window = 4) {
  StoreConfig cfg;
  cfg.batch_window = window;
  cfg.shard_count = 4;
  cfg.gc = true;
  return cfg;
}

// ----- stability tracker ----------------------------------------------

TEST(StoreStabilityTrackerTest, FloorIsMinOverLiveRows) {
  StoreStabilityTracker t(0, 3);
  EXPECT_EQ(t.floor(), 0u);
  t.advance_self(10);
  EXPECT_EQ(t.floor(), 0u);  // silent peers pin the floor
  t.observe_ack(1, 7);
  t.observe_ack(2, 4);
  EXPECT_EQ(t.floor(), 4u);
  EXPECT_EQ(t.lag(), 6u);  // own clock 10 − floor 4
  t.observe_ack(2, 9);
  EXPECT_EQ(t.floor(), 7u);
}

TEST(StoreStabilityTrackerTest, CrashUnpinsAndRestartRepins) {
  StoreStabilityTracker t(0, 3);
  t.advance_self(8);
  t.observe_ack(1, 6);
  EXPECT_EQ(t.floor(), 0u);  // process 2 never acked
  t.set_crashed(2, true);
  EXPECT_EQ(t.floor(), 6u);  // crashed rows stop counting
  t.set_crashed(2, false);   // restarted incarnation
  EXPECT_EQ(t.floor(), 0u);
  t.observe_ack(2, 12);      // hearing from it also marks it alive
  t.set_crashed(2, true);
  t.observe_ack(2, 12);
  EXPECT_FALSE(t.crashed(2));
  EXPECT_EQ(t.floor(), 6u);
}

TEST(StoreStabilityTrackerTest, AdoptMergesDonorRows) {
  StoreStabilityTracker t(1, 3);
  t.observe_ack(0, 2);
  t.adopt({5, 3, 9});
  t.advance_self(4);
  EXPECT_EQ(t.rows(), (std::vector<LogicalTime>{5, 4, 9}));
  EXPECT_EQ(t.floor(), 4u);
}

// ----- log install ----------------------------------------------------

TEST(StampedLogTest, InstallBaseDropsCoveredEntriesAndRaisesFloor) {
  StampedLog<S> log{S{}};
  (void)log.insert(Stamp{1, 0}, S::insert(1));
  (void)log.insert(Stamp{3, 1}, S::insert(3));
  (void)log.insert(Stamp{5, 0}, S::insert(5));
  // Donor base covering stamps <= 3: {1, 3} plus an entry we never saw.
  EXPECT_TRUE(log.install_base(std::set<int>{1, 2, 3}, 3));
  EXPECT_EQ(log.floor(), 3u);
  EXPECT_EQ(log.size(), 1u);  // only (5,0) survives
  EXPECT_EQ(log.base_state(), (std::set<int>{1, 2, 3}));
  // A snapshot covering less than we already folded is refused.
  EXPECT_FALSE(log.install_base(std::set<int>{}, 2));
  EXPECT_EQ(log.base_state(), (std::set<int>{1, 2, 3}));
}

TEST(ReplicaTest, AbsorbBelowFloorTurnsStragglersIntoDuplicates) {
  ReplayReplica<S>::Config cfg;
  cfg.absorb_below_floor = true;
  ReplayReplica<S> rep(S{}, 0, cfg);
  rep.apply(1, UpdateMessage<S>{{2, 1}, S::insert(2), {}});
  ASSERT_TRUE(rep.install_base(std::set<int>{1, 2}, 4));
  // Redelivery of a folded entry: absorbed, not a contract violation.
  rep.apply(1, UpdateMessage<S>{{2, 1}, S::insert(2), {}});
  EXPECT_EQ(rep.stats().absorbed_below_floor, 1u);
  EXPECT_EQ(rep.current_state(), (std::set<int>{1, 2}));
  rep.apply(1, UpdateMessage<S>{{6, 1}, S::insert(6), {}});
  EXPECT_EQ(rep.current_state(), (std::set<int>{1, 2, 6}));
}

// ----- snapshot codec -------------------------------------------------

TEST(SnapshotCodecTest, RoundTripCompactedStatePlusSuffix) {
  ReplayReplica<S>::Config rep_cfg;
  rep_cfg.absorb_below_floor = true;
  StoreShard<S> donor(S{}, 0, rep_cfg);
  // Two keys, interleaved stamps; fold the prefix <= 4 on both.
  for (int c = 1; c <= 8; ++c) {
    donor.replica("a").apply(1, UpdateMessage<S>{
        {static_cast<LogicalTime>(c), 1}, S::insert(c), {}});
    donor.replica("b").apply(2, UpdateMessage<S>{
        {static_cast<LogicalTime>(c), 2}, S::insert(100 + c), {}});
  }
  donor.for_each([](const std::string&, ReplayReplica<S>& r) {
    (void)r.fold_to(4);
  });
  auto snap = encode_shard_snapshot(donor, 0, 1);
  ASSERT_EQ(snap.keys.size(), 2u);
  EXPECT_EQ(snap.suffix_entries(), 8u);  // 4 unstable entries per key
  for (const auto& ks : snap.keys) {
    EXPECT_EQ(ks.floor, 4u);
    EXPECT_EQ(ks.suffix.size(), 4u);
  }

  // Install into a joiner that raced ahead on one key, then replay the
  // donor's full history as stale redelivery: identical states.
  StoreShard<S> joiner(S{}, 3, rep_cfg);
  joiner.replica("a").apply(1, UpdateMessage<S>{{7, 1}, S::insert(7), {}});
  for (const auto& ks : snap.keys) {
    (void)install_key_snapshot(joiner.replica(ks.key), ks);
  }
  for (int c = 1; c <= 8; ++c) {
    joiner.replica("a").apply(1, UpdateMessage<S>{
        {static_cast<LogicalTime>(c), 1}, S::insert(c), {}});
  }
  EXPECT_EQ(joiner.replica("a").current_state(),
            donor.replica("a").current_state());
  EXPECT_EQ(joiner.replica("b").current_state(),
            donor.replica("b").current_state());
  EXPECT_GT(joiner.replica("a").stats().absorbed_below_floor, 0u);
  EXPECT_EQ(donor.stats().snapshots_exported, 1u);
}

// ----- live clusters --------------------------------------------------

/// Drives `rounds` rounds of one keyed update per store + flush + drain.
template <typename Stores>
void drive_rounds(SimScheduler& sched, Stores& stores, SimNetwork<Env>& net,
                  int rounds, int base) {
  for (int r = 0; r < rounds; ++r) {
    for (auto& s : stores) {
      if (net.crashed(s->pid())) continue;
      const int v = base + r * 10 + static_cast<int>(s->pid());
      s->update("k" + std::to_string(v % 7), S::insert(v));
    }
    for (auto& s : stores) (void)s->flush();
    sched.run();
  }
}

TEST(StoreGcTest, StabilityFloorFoldsLogsAcrossTheKeyspace) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 3; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, gc_store_config()));
  }
  drive_rounds(sched, stores, net, 12, 0);
  // One more ack + GC round so the last deliveries reach the floor.
  for (int i = 0; i < 3; ++i) {
    for (auto& s : stores) (void)s->flush();
    sched.run();
  }
  for (auto& s : stores) {
    EXPECT_GT(s->stats().gc_folded, 0u) << "store " << s->pid();
    EXPECT_GT(s->stats().stability_floor, 0u);
    // The resident logs hold only the unstable window, not the history.
    EXPECT_LT(s->log_entries_resident(), 12u * 3u) << "store " << s->pid();
  }
  // Folding must not disturb convergence.
  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    const auto want = stores[0]->state_of(key);
    EXPECT_EQ(stores[1]->state_of(key), want) << key;
    EXPECT_EQ(stores[2]->state_of(key), want) << key;
  }
}

TEST(StoreGcTest, SilentReaderHeartbeatsUnpinTheFloor) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  Store a(S{}, 0, net, gc_store_config());
  Store b(S{}, 1, net, gc_store_config());  // never updates: read-only
  for (int r = 0; r < 6; ++r) {
    a.update("k", S::insert(r));
    (void)a.flush();
    sched.run();
    // b has nothing to batch, but its clock advanced on delivery: the
    // flush tick ships an ack heartbeat instead of pinning a's floor.
    (void)b.flush();
    sched.run();
    (void)a.flush();  // a hears the ack and folds
    sched.run();
  }
  EXPECT_EQ(b.stats().local_updates, 0u);
  EXPECT_GT(b.stats().acks_sent, 0u);
  EXPECT_GT(a.stats().gc_folded, 0u);
  EXPECT_GT(a.stats().stability_floor, 0u);
  // The reader folds too: self-delivery is synchronous, so its own row
  // follows its clock — a replica that never updates must not pin its
  // *own* floor at zero and keep O(history) logs.
  EXPECT_GT(b.stats().gc_folded, 0u);
  EXPECT_LT(b.log_entries_resident(), 6u);
  EXPECT_EQ(a.state_of("k"), b.state_of("k"));
}

TEST(StoreGcTest, CrashedSenderHeartbeatsAreCountedAsDropped) {
  // Mirror of the flush-path crash accounting: a crashed store's ack
  // heartbeat dies with it (crash-stop), is counted as dropped — never
  // as sent — and consumes no seq, so a restarted incarnation's stream
  // starts clean on the heartbeat path too.
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  Store a(S{}, 0, net, gc_store_config());
  Store b(S{}, 1, net, gc_store_config());
  a.update("k", S::insert(1));  // the clock moved: a heartbeat is due
  sched.run();
  net.crash(0);
  const auto sent_before = a.stats().envelopes_sent;
  (void)a.flush();
  sched.run();
  EXPECT_GT(a.stats().acks_dropped_crash, 0u);
  EXPECT_EQ(a.stats().acks_sent, 0u);
  // Nothing hit the wire after the crash: the buffered entry died in
  // the flush path (counted there), the heartbeat died here.
  EXPECT_EQ(a.stats().envelopes_sent, sent_before);
  EXPECT_EQ(a.stats().entries_dropped_crash, 1u);
  EXPECT_EQ(b.stats().remote_entries, 0u);
}

TEST(StoreGcTest, IncrementalSweepBudgetStillDrainsEveryShard) {
  // The per-engine GC cursor: with a budget of 1 engine per sweep, each
  // flush tick folds only one dirty shard, but repeated ticks cover the
  // keyspace round-robin and end at the same compaction a full sweep
  // reaches (clean engines are skipped in O(1)).
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  StoreConfig cfg = gc_store_config(/*window=*/2);
  cfg.gc_engines_per_sweep = 1;
  Store a(S{}, 0, net, cfg);
  Store b(S{}, 1, net, cfg);
  for (int r = 0; r < 12; ++r) {
    // Touch many keys so several shards hold foldable entries.
    a.update("k" + std::to_string(r % 8), S::insert(r));
    (void)a.flush();
    sched.run();
    (void)b.flush();
    sched.run();
    (void)a.flush();
    sched.run();
  }
  // Extra ticks with no new updates: the cursor finishes the backlog.
  for (int r = 0; r < 8; ++r) {
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  EXPECT_GT(a.stats().gc_folded, 0u);
  // Every entry at or below the floor is folded on every shard: the
  // resident logs hold only the unstable window.
  EXPECT_LE(a.log_entries_resident(),
            static_cast<std::uint64_t>(a.stats().stability_floor_lag));
  for (int k = 0; k < 8; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(a.state_of(key), b.state_of(key)) << key;
  }
}

TEST(StoreGcTest, ThreadTransportFoldsWithPiggybackedAcks) {
  // ThreadNetwork inboxes are FIFO per sender, so store-level stability
  // works there too; catch-up (p2p + epochs) stays compile-time off.
  ThreadNetwork<ThreadUcStore<S>::Envelope> net(2);
  const StoreConfig cfg = gc_store_config();
  ThreadUcStore<S> a(S{}, 0, net, cfg);
  ThreadUcStore<S> b(S{}, 1, net, cfg);
  EXPECT_FALSE(b.request_sync(0));  // no p2p transport: gated off
  for (int r = 0; r < 8; ++r) {
    a.update("k", S::insert(r));
    (void)a.flush();
    (void)b.poll();
    (void)b.flush();  // ack heartbeat back to the updater
    (void)a.poll();
    (void)a.flush();  // hears the ack, folds
  }
  EXPECT_GT(a.stats().gc_folded, 0u);
  EXPECT_GT(b.stats().acks_sent, 0u);
  EXPECT_EQ(a.state_of("k"), b.state_of("k"));
  net.close_all();
}

TEST(CatchupTest, CrashRestartRejoinsViaSnapshotsAndConverges) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  const StoreConfig scfg = gc_store_config();
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 3; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  drive_rounds(sched, stores, net, 10, 0);
  const std::uint64_t history_before =
      stores[0]->stats().entries_sent + stores[1]->stats().entries_sent +
      stores[2]->stats().entries_sent;
  ASSERT_GT(history_before, 0u);

  net.crash(2);
  drive_rounds(sched, stores, net, 6, 1000);  // history grows while 2 is down
  ASSERT_TRUE(net.can_restart(2));
  net.restart(2);
  EXPECT_EQ(net.epoch(2), 1u);
  stores[2] = std::make_unique<Store>(S{}, 2, net, scfg);
  ASSERT_TRUE(stores[2]->request_sync(0));
  EXPECT_EQ(stores[2]->sync_state(), Store::SyncState::kSyncing);
  sched.run();  // request → serve → install

  EXPECT_EQ(stores[2]->stats().snapshots_installed, scfg.shard_count);
  EXPECT_FALSE(stores[2]->bootstrapping());
  // Live traffic from both survivors verifies their streams gap-free.
  drive_rounds(sched, stores, net, 4, 2000);
  EXPECT_EQ(stores[2]->sync_state(), Store::SyncState::kLive);
  EXPECT_EQ(stores[2]->stats().syncs_completed, 1u);

  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    const auto want = stores[0]->state_of(key);
    EXPECT_EQ(stores[1]->state_of(key), want) << key;
    EXPECT_EQ(stores[2]->state_of(key), want) << key;
  }
  // The donor compacted before serving: the catch-up replayed an
  // unstable suffix, not the whole pre-crash history.
  EXPECT_GT(stores[2]->stats().catchup_keys, 0u);
  EXPECT_LT(stores[2]->stats().catchup_entries, history_before);
}

TEST(CatchupTest, BootstrappingStoreRefusesUpdatesUntilFirstSnapshot) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  const StoreConfig scfg = gc_store_config();
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 2; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  drive_rounds(sched, stores, net, 4, 0);
  net.crash(1);
  sched.run();
  net.restart(1);
  stores[1] = std::make_unique<Store>(S{}, 1, net, scfg);
  ASSERT_TRUE(stores[1]->request_sync(0));
  EXPECT_TRUE(stores[1]->bootstrapping());
  // A fresh incarnation's clock would reuse pre-crash stamps.
  EXPECT_THROW((void)stores[1]->update("k0", S::insert(1)), contract_error);
  // Reads stay wait-free (answer from the partial state).
  EXPECT_EQ(stores[1]->query("k0", S::read()), (std::set<int>{}));
  sched.run();  // snapshots install, clock re-based
  EXPECT_FALSE(stores[1]->bootstrapping());
  (void)stores[1]->update("k0", S::insert(1));
  for (auto& s : stores) (void)s->flush();
  sched.run();
  EXPECT_EQ(stores[0]->state_of("k0"), stores[1]->state_of("k0"));
}

TEST(CatchupTest, SessionRetiresInQuietClusterWithoutLiveTraffic) {
  // Nobody updates after the serve: the donor's own stream is settled by
  // construction and the other peers' by the in-flight check, so the
  // session retires on the first batch instead of re-requesting forever
  // (and GC resumes at the joiner).
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  const StoreConfig scfg = gc_store_config();
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 2; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  drive_rounds(sched, stores, net, 5, 0);
  net.crash(1);
  sched.run();
  net.restart(1);
  stores[1] = std::make_unique<Store>(S{}, 1, net, scfg);
  ASSERT_TRUE(stores[1]->request_sync(0));
  sched.run();
  EXPECT_EQ(stores[1]->sync_state(), Store::SyncState::kLive);
  EXPECT_EQ(stores[1]->stats().syncs_completed, 1u);
  const std::uint64_t requests = stores[1]->stats().sync_requests_sent;
  for (int i = 0; i < 10; ++i) {
    for (auto& s : stores) (void)s->flush();
    sched.run();
  }
  EXPECT_EQ(stores[1]->stats().sync_requests_sent, requests);
  EXPECT_EQ(stores[1]->state_of("k0"), stores[0]->state_of("k0"));
}

TEST(CatchupTest, GcFreeJoinerAbsorbsBelowFloorAfterCompactedSnapshot) {
  // Heterogeneous configs: the donors compact, the joiner runs gc=false.
  // Its installed bases still carry positive floors, so a stale live
  // envelope overlapping the snapshot must be absorbed as a redelivery,
  // not rejected as a below-floor protocol violation.
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  const StoreConfig gc_cfg = gc_store_config();
  StoreConfig plain_cfg = gc_store_config();
  plain_cfg.gc = false;
  std::vector<std::unique_ptr<Store>> stores;
  stores.push_back(std::make_unique<Store>(S{}, 0, net, gc_cfg));
  stores.push_back(std::make_unique<Store>(S{}, 1, net, gc_cfg));
  stores.push_back(std::make_unique<Store>(S{}, 2, net, plain_cfg));
  // The gc=false store still piggybacks acks on its envelopes, so the
  // compacting stores fold even while it participates.
  drive_rounds(sched, stores, net, 6, 5000);
  EXPECT_GT(stores[0]->stats().gc_folded, 0u);
  net.crash(2);
  drive_rounds(sched, stores, net, 10, 0);
  ASSERT_GT(stores[0]->stats().stability_floor, 1u);

  net.restart(2);
  stores[2] = std::make_unique<Store>(S{}, 2, net, plain_cfg);
  ASSERT_TRUE(stores[2]->request_sync(0));
  sched.run();
  ASSERT_GT(stores[2]->stats().snapshots_installed, 0u);
  const auto* rep = stores[2]->shard_of("k0").find("k0");
  ASSERT_NE(rep, nullptr);
  ASSERT_GT(rep->log().floor(), 1u);

  // Redelivery of an entry the snapshot already folded (stamp (1, 0) is
  // below the installed floor): absorbed, never a contract violation.
  const auto before = stores[2]->state_of("k0");
  Env stale;
  stale.entries.push_back(
      {"k0", UpdateMessage<S>{{1, 0}, S::insert(0), {}}});
  net.send(0, 2, stale);
  sched.run();
  EXPECT_EQ(stores[2]->state_of("k0"), before);
  drive_rounds(sched, stores, net, 3, 900);
  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(stores[2]->state_of(key), stores[0]->state_of(key)) << key;
  }
}

TEST(CatchupTest, RequestSyncRetriesWhenDonorCrashes) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  StoreConfig scfg = gc_store_config();
  scfg.sync_patience_ticks = 1;  // the test drives ticks by hand
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 3; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  drive_rounds(sched, stores, net, 6, 0);
  net.crash(2);
  sched.run();
  net.restart(2);
  stores[2] = std::make_unique<Store>(S{}, 2, net, scfg);
  // The chosen donor is already dead: the request evaporates; the next
  // flush tick re-targets a live donor.
  net.crash(1);
  ASSERT_TRUE(stores[2]->request_sync(1));
  sched.run();
  EXPECT_EQ(stores[2]->stats().snapshots_installed, 0u);
  (void)stores[2]->flush();  // housekeeping: stalled → retarget to 0
  sched.run();
  EXPECT_GT(stores[2]->stats().sync_retries, 0u);
  EXPECT_EQ(stores[2]->stats().snapshots_installed, scfg.shard_count);
  drive_rounds(sched, stores, net, 3, 500);
  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(stores[2]->state_of(key), stores[0]->state_of(key)) << key;
  }
}

TEST(CatchupTest, SecondSyncRoundShipsDeltaNotEveryShardInFull) {
  // The incremental-snapshot fix for the retry path: a second round to
  // the same donor echoes the markers the first round installed, so the
  // donor re-ships only the keys that advanced since — not every shard
  // in full. Asserted the way the ROADMAP item was phrased: second-round
  // bytes strictly below first-round bytes (and clean keys skipped).
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  const StoreConfig scfg = gc_store_config();
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 3; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  // A wide keyspace, so "what advanced between rounds" is a small
  // fraction of "everything".
  auto touch = [&](int base, int n) {
    for (int i = 0; i < n; ++i) {
      for (auto& s : stores) {
        if (net.crashed(s->pid())) continue;
        s->update("d" + std::to_string((base + i) % 30),
                  S::insert(base + i + static_cast<int>(s->pid())));
      }
      for (auto& s : stores) (void)s->flush();
      sched.run();
    }
  };
  touch(0, 30);
  net.crash(2);
  touch(1000, 8);
  ASSERT_TRUE(net.can_restart(2));
  net.restart(2);
  stores[2] = std::make_unique<Store>(S{}, 2, net, scfg);
  ASSERT_TRUE(stores[2]->request_sync(0));
  sched.run();
  touch(2000, 2);
  ASSERT_EQ(stores[2]->sync_state(), Store::SyncState::kLive);
  const std::uint64_t bytes_round1 = stores[0]->stats().snapshot_bytes_served;
  const std::uint64_t keys_round1 = stores[0]->stats().snapshot_keys_served;
  ASSERT_GT(bytes_round1, 0u);

  // A couple of keys move, then a second round from the same donor —
  // exactly what a gap/stall retry issues on the wire.
  touch(3000, 2);
  ASSERT_TRUE(stores[2]->request_sync(0));
  sched.run();
  touch(4000, 2);
  EXPECT_EQ(stores[2]->sync_state(), Store::SyncState::kLive);
  EXPECT_EQ(stores[2]->stats().syncs_completed, 2u);
  const std::uint64_t bytes_round2 =
      stores[0]->stats().snapshot_bytes_served - bytes_round1;
  const std::uint64_t keys_round2 =
      stores[0]->stats().snapshot_keys_served - keys_round1;
  EXPECT_LT(bytes_round2, bytes_round1 / 2);
  EXPECT_LT(keys_round2, keys_round1 / 2);
  EXPECT_GT(stores[0]->stats().snapshot_keys_skipped_delta, 0u);
  for (int k = 0; k < 30; ++k) {
    const std::string key = "d" + std::to_string(k);
    EXPECT_EQ(stores[2]->state_of(key), stores[0]->state_of(key)) << key;
  }
}

TEST(CatchupHarnessTest, RestartPlanRejoinsAndConverges) {
  StoreRunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = 33;
  cfg.fifo_links = true;
  cfg.n_keys = 30;
  cfg.ops_per_process = 60;
  cfg.update_ratio = 0.9;
  cfg.store = gc_store_config();
  cfg.flush_period = 1'000.0;
  cfg.crashes = {CrashPlan{2, 6'000.0}};
  cfg.restarts = {RestartPlan{2, 12'000.0, /*resume_ops=*/25}};
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    w.value_range = 32;
    return random_set_update(rng, w);
  });
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.net.restarts, 1u);
  // The rejoined store really went through snapshot install.
  EXPECT_GT(out.store_stats[2].snapshots_installed, 0u);
  EXPECT_GT(out.store_stats[2].catchup_keys, 0u);
  // Someone served it.
  std::uint64_t served = 0;
  for (const auto& s : out.store_stats) served += s.snapshots_served;
  EXPECT_GT(served, 0u);
  // GC kept the resident logs bounded on top of all that.
  std::uint64_t folded = 0;
  for (const auto& s : out.store_stats) folded += s.gc_folded;
  EXPECT_GT(folded, 0u);
}

}  // namespace
}  // namespace ucw
