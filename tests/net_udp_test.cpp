// UdpTransport over real localhost sockets: delivery, fragmentation,
// hostile datagrams, and — the point of the whole layer — a 3-node
// in-process cluster of ThreadUcStore-over-UDP converging under
// injected loss and reorder.
//
// All tests bind ephemeral ports (two-phase setup: bind everyone on
// port 0, exchange the learned ports via set_peers) so parallel ctest
// runs never collide. The loss test mirrors examples/cluster_node.cpp:
// real datagrams are really dropped, SeqCoverage detects the seq gaps,
// auto + rotating anti-entropy repairs them, and the stores' final
// per-key states must agree exactly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adt/register.hpp"
#include "store/udp_store.hpp"
#include "test_seeds.hpp"
#include "util/rng.hpp"

namespace ucw {
namespace {

using Reg = RegisterAdt<std::int64_t>;
using Transport = UdpTransport<Reg>;
using Env = Transport::Envelope;

/// Binds `n` transports on ephemeral ports and exchanges the learned
/// addresses — the in-process analogue of a launcher handing out ports.
std::vector<std::unique_ptr<Transport>> make_cluster(
    std::size_t n, const std::vector<UdpTransportOptions>& opts) {
  std::vector<std::unique_ptr<Transport>> ts;
  std::vector<UdpEndpoint> blank(n);  // all port 0
  for (std::size_t p = 0; p < n; ++p) {
    ts.push_back(std::make_unique<Transport>(static_cast<ProcessId>(p),
                                             blank, opts[p]));
    EXPECT_TRUE(ts.back()->bound());
  }
  std::vector<UdpEndpoint> real(n);
  for (std::size_t p = 0; p < n; ++p) real[p].port = ts[p]->local_port();
  for (std::size_t p = 0; p < n; ++p) {
    std::vector<UdpEndpoint> table = real;
    table[p].port = ts[p]->local_port();
    ts[p]->set_peers(std::move(table));
  }
  return ts;
}

/// Polls `inbox` until an envelope arrives or ~2s elapse.
std::optional<Env> recv_one(Transport& t, ProcessId self) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto e = t.inbox(self).try_pop()) return e;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

TEST(UdpTransportTest, PointToPointAndBroadcastDeliver) {
  auto ts = make_cluster(3, std::vector<UdpTransportOptions>(3));

  BatchEnvelope<Reg, std::string> payload;
  payload.kind = EnvelopeKind::kBatch;
  payload.epoch = 1;
  payload.seq = 1;
  KeyedUpdate<Reg, std::string> ku;
  ku.key = "hello";
  ku.msg.stamp = Stamp{42, 0};
  ku.msg.update = Reg::write(1234);
  payload.entries.push_back(ku);

  ts[0]->send(0, 1, payload);
  const auto got = recv_one(*ts[1], 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 0u);
  ASSERT_EQ(got->payload.entries.size(), 1u);
  EXPECT_EQ(got->payload.entries[0].key, "hello");
  EXPECT_EQ(got->payload.entries[0].msg.update.value, 1234);

  ts[2]->broadcast_others(2, payload);
  EXPECT_TRUE(recv_one(*ts[0], 0).has_value());
  EXPECT_TRUE(recv_one(*ts[1], 1).has_value());
  // The broadcaster must not hear its own broadcast.
  EXPECT_EQ(ts[2]->stats().envelopes_received, 0u);

  for (auto& t : ts) t->close_all();
}

TEST(UdpTransportTest, LargeSnapshotFragmentsAndReassembles) {
  std::vector<UdpTransportOptions> opts(2);
  opts[0].max_frame_payload = 512;  // force multi-fragment messages
  opts[1].max_frame_payload = 512;
  auto ts = make_cluster(2, opts);

  BatchEnvelope<Reg, std::string> payload;
  payload.kind = EnvelopeKind::kShardSnapshot;
  auto snap = std::make_shared<ShardSnapshot<Reg, std::string>>();
  snap->shard_count = 1;
  snap->donor_clock = 9;
  for (int i = 0; i < 200; ++i) {  // ~20+ fragments at 512 B each
    KeySnapshot<Reg, std::string> k;
    k.key = "snapshot-key-" + std::to_string(i);
    k.base = i;
    k.floor = static_cast<LogicalTime>(i);
    k.suffix.push_back(SnapshotLogEntry<Reg>{
        Stamp{static_cast<LogicalTime>(i), 0}, Reg::write(i * 7)});
    snap->keys.push_back(std::move(k));
  }
  payload.snapshot = snap;

  ts[0]->send(0, 1, payload);
  const auto got = recv_one(*ts[1], 1);
  ASSERT_TRUE(got.has_value());
  ASSERT_NE(got->payload.snapshot, nullptr);
  ASSERT_EQ(got->payload.snapshot->keys.size(), 200u);
  EXPECT_EQ(got->payload.snapshot->keys[137].key, "snapshot-key-137");
  EXPECT_EQ(got->payload.snapshot->keys[137].suffix[0].update.value,
            137 * 7);
  const UdpTransportStats rs = ts[1]->stats();
  EXPECT_GE(rs.reassemblies_completed, 1u);
  EXPECT_GT(rs.datagrams_received, 1u);  // really went out in pieces

  for (auto& t : ts) t->close_all();
}

TEST(UdpTransportTest, HostileDatagramsAreCountedNotCrashed) {
  auto ts = make_cluster(2, std::vector<UdpTransportOptions>(2));

  // A raw attacker socket, not part of the cluster.
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(ts[1]->local_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &to.sin_addr), 1);

  Rng rng(ucw::test::seed_or(5));
  // Garbage bytes: no magic, short frames, truncated headers.
  for (int i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 100)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    (void)::sendto(fd, junk.data(), junk.size(), 0,
                   reinterpret_cast<sockaddr*>(&to), sizeof(to));
  }
  // A well-framed datagram claiming a sender outside the peer table.
  {
    std::vector<std::uint8_t> payload = {1, 2, 3};
    std::vector<std::vector<std::uint8_t>> frames;
    wire::encode_frames(payload.data(), payload.size(), /*sender=*/7,
                        /*msg_id=*/1, &frames);
    (void)::sendto(fd, frames[0].data(), frames[0].size(), 0,
                   reinterpret_cast<sockaddr*>(&to), sizeof(to));
  }
  ::close(fd);

  // A legitimate envelope must still get through afterwards.
  BatchEnvelope<Reg, std::string> ok;
  ok.kind = EnvelopeKind::kBatch;
  ok.ack_clock = 3;
  ts[0]->send(0, 1, ok);
  ASSERT_TRUE(recv_one(*ts[1], 1).has_value());

  const UdpTransportStats s = ts[1]->stats();
  EXPECT_GE(s.frames_rejected, 1u);
  EXPECT_GE(s.bad_sender, 1u);
  EXPECT_EQ(s.envelopes_received, 1u);  // only the legitimate one queued

  for (auto& t : ts) t->close_all();
}

// ------------------------------------------- stores over lossy sockets

/// Drains a set of UDP-backed stores until their keyspace views agree
/// and stabilize, mirroring cluster_node's protocol: poll+flush drives
/// gap-triggered anti-entropy; rotating explicit rounds catch tail
/// losses (dropped stream suffixes leave no seq gap to detect).
template <typename Store>
bool drain_until_converged(std::vector<std::unique_ptr<Store>>& stores,
                           std::size_t keys, int max_iters) {
  const std::size_t n = stores.size();
  int stable = 0;
  std::vector<std::int64_t> last;
  for (int iter = 0; iter < max_iters; ++iter) {
    for (auto& s : stores) {
      (void)s->poll();
      (void)s->flush();
    }
    bool gapped = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = 0; q < n; ++q) {
        gapped = gapped || (q != p && stores[p]->stream_gapped(
                                          static_cast<ProcessId>(q)));
      }
    }
    if (iter % 20 == 19) {
      for (std::size_t p = 0; p < n; ++p) {
        std::size_t peer = (p + 1 + static_cast<std::size_t>(iter) / 20) % n;
        if (peer == p) peer = (p + 1) % n;
        (void)stores[p]->anti_entropy_round(static_cast<ProcessId>(peer),
                                            /*reciprocate=*/true);
      }
    }
    std::vector<std::int64_t> now;
    now.reserve(n * keys);
    bool agree = true;
    for (std::size_t k = 0; k < keys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const std::int64_t v0 = stores[0]->state_of(key);
      now.push_back(v0);
      for (std::size_t p = 1; p < n; ++p) {
        const std::int64_t vp = stores[p]->state_of(key);
        now.push_back(vp);
        agree = agree && vp == v0;
      }
    }
    bool pending = false;
    for (auto& s : stores) pending = pending || s->pending() != 0;
    stable = (agree && !gapped && !pending && now == last) ? stable + 1 : 0;
    last = std::move(now);
    if (stable >= 5) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

struct LossRunOutcome {
  std::uint64_t drops = 0;
  std::uint64_t reorders = 0;
  std::uint64_t gaps = 0;
  std::uint64_t ae_completed = 0;
  std::uint64_t installed_or_skipped = 0;
  bool converged = false;
};

/// One full load+drain run of a 3-node UDP store cluster with the given
/// sender-side fault rates. Convergence requires gap-free streams, so a
/// run that really lost a datagram cannot finish without repairing it.
LossRunOutcome run_lossy_cluster(std::uint64_t seed, double drop,
                                 double reorder) {
  using Store = UdpUcStore<Reg>;
  constexpr std::size_t kN = 3;
  constexpr std::size_t kKeys = 12;
  constexpr std::size_t kOps = 90;

  std::vector<UdpTransportOptions> topts(kN);
  for (std::size_t p = 0; p < kN; ++p) {
    topts[p].drop = drop;
    topts[p].reorder = reorder;
    topts[p].fault_seed = splitmix64(seed ^ (0xFA110ULL + p));
  }
  auto nets = make_cluster(kN, topts);

  StoreConfig cfg;
  cfg.batch_window = 4;
  cfg.gc = true;
  cfg.auto_anti_entropy = true;
  std::vector<std::unique_ptr<Store>> stores;
  for (std::size_t p = 0; p < kN; ++p) {
    stores.push_back(std::make_unique<Store>(
        Reg{}, static_cast<ProcessId>(p), *nets[p], cfg));
  }

  // Seeded interleaved load: the frontends are driven single-threaded;
  // the *receiver threads* are the concurrent part.
  Rng rng(seed);
  for (std::size_t i = 0; i < kOps; ++i) {
    for (std::size_t p = 0; p < kN; ++p) {
      const std::string key = "k" + std::to_string(rng.uniform_int(
                                        0, static_cast<int>(kKeys) - 1));
      const std::int64_t value =
          static_cast<std::int64_t>(p + 1) * 1000000 +
          static_cast<std::int64_t>(i);
      (void)stores[p]->update(key, Reg::write(value));
    }
    if (i % 8 == 7) {
      for (auto& s : stores) (void)s->flush();
    }
  }
  for (auto& s : stores) (void)s->flush();

  LossRunOutcome out;
  out.converged = drain_until_converged(stores, kKeys, /*max_iters=*/4000);
  for (std::size_t p = 0; p < kN; ++p) {
    out.drops += nets[p]->stats().injected_drops;
    out.reorders += nets[p]->stats().injected_reorders;
    const StoreStats ss = stores[p]->stats();
    out.gaps += ss.stream_gaps_detected;
    out.ae_completed += ss.ae_rounds_completed;
    out.installed_or_skipped += ss.ae_entries_installed +
                               ss.ae_snapshots_installed +
                               ss.ae_entries_skipped_covered;
  }
  for (auto& n : nets) n->close_all();
  return out;
}

TEST(UdpStoreTest, ThreeNodesRepairRealLossViaAntiEntropy) {
  // Drop-only arm: every detected gap is a real lost datagram (no
  // reordering to transiently fake one), and UDP never retransmits —
  // so the only way the cluster can reach a gap-free converged state
  // is through anti-entropy. 10% drop over hundreds of datagrams makes
  // real mid-stream loss certain for the pinned seeds.
  const auto seeds = ucw::test::property_seeds({3, 17});
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(ucw::test::seed_trace(seed));
    const LossRunOutcome out =
        run_lossy_cluster(seed, /*drop=*/0.10, /*reorder=*/0.0);
    ASSERT_TRUE(out.converged)
        << "stores did not converge under drop=0.10";
    EXPECT_GT(out.drops, 0u)
        << "fault injection never fired — test is vacuous";
    EXPECT_GT(out.gaps, 0u)
        << "10% loss but SeqCoverage never saw a gap";
    EXPECT_GT(out.ae_completed, 0u)
        << "gaps were repaired without anti-entropy?";
    EXPECT_GT(out.installed_or_skipped, 0u)
        << "anti-entropy completed but exchanged nothing";
  }
}

TEST(UdpStoreTest, ThreeNodesConvergeUnderLossAndReorder) {
  // Combined-faults arm: drops and adjacent-pair inversions together.
  // Reorder-induced gaps may self-heal on arrival, so only convergence
  // and non-vacuous injection are asserted here; the repair-path
  // assertions live in the drop-only arm above.
  const auto seeds = ucw::test::property_seeds({5, 23});
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(ucw::test::seed_trace(seed));
    const LossRunOutcome out =
        run_lossy_cluster(seed, /*drop=*/0.05, /*reorder=*/0.05);
    ASSERT_TRUE(out.converged)
        << "stores did not converge under drop=0.05 reorder=0.05";
    EXPECT_GT(out.drops + out.reorders, 0u)
        << "fault injection never fired — test is vacuous";
  }
}

TEST(UdpStoreTest, CleanWireUsesNoRepair) {
  using Store = UdpUcStore<Reg>;
  constexpr std::size_t kN = 2;
  auto nets = make_cluster(kN, std::vector<UdpTransportOptions>(kN));
  StoreConfig cfg;
  cfg.batch_window = 1;  // ship every update immediately
  std::vector<std::unique_ptr<Store>> stores;
  for (std::size_t p = 0; p < kN; ++p) {
    stores.push_back(std::make_unique<Store>(
        Reg{}, static_cast<ProcessId>(p), *nets[p], cfg));
  }
  for (int i = 0; i < 20; ++i) {
    (void)stores[0]->update("x", Reg::write(i));
  }
  (void)stores[0]->flush();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    (void)stores[1]->poll();
    if (stores[1]->state_of("x") == 19) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(stores[1]->state_of("x"), 19);
  // No loss, in-order localhost delivery: the repair path must be idle.
  EXPECT_EQ(stores[1]->stats().stream_gaps_detected, 0u);
  for (auto& n : nets) n->close_all();
}

}  // namespace
}  // namespace ucw
