// The runtime harness itself: recorder fidelity, workload determinism,
// crash/partition plumbing, and the set-implementation family.
#include <gtest/gtest.h>

#include "criteria/all.hpp"
#include "runtime/set_family.hpp"
#include "runtime/sim_harness.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

TEST(HistoryRecorder, BuildsChainAndCertificate) {
  HistoryRecorder<S> rec(S{}, 2);
  rec.record_update(0, Stamp{1, 0}, S::insert(1), {Stamp{1, 0}});
  rec.record_query(0, Stamp{2, 0}, S::read(), IntSet{1}, {Stamp{1, 0}});
  rec.record_update(1, Stamp{1, 1}, S::insert(2), {Stamp{1, 1}});
  rec.record_query(1, Stamp{2, 1}, S::read(), IntSet{2}, {Stamp{1, 1}},
                   /*final_read=*/false);
  const auto out = rec.build();
  EXPECT_EQ(out.history.size(), 4u);
  EXPECT_EQ(out.history.update_ids().size(), 2u);
  EXPECT_EQ(out.certificate.stamps.size(), 4u);
  // Visible stamps resolved to event ids.
  EXPECT_EQ(out.certificate.visible[1], std::vector<EventId>{0});
  EXPECT_EQ(out.certificate.visible[3], std::vector<EventId>{2});
}

TEST(HistoryRecorder, UnknownVisibleStampThrows) {
  HistoryRecorder<S> rec(S{}, 1);
  rec.record_query(0, Stamp{1, 0}, S::read(), IntSet{}, {Stamp{9, 9}});
  EXPECT_THROW(rec.build(), contract_error);
}

TEST(HistoryRecorder, FinalReadsBecomeOmega) {
  HistoryRecorder<S> rec(S{}, 1);
  rec.record_update(0, Stamp{1, 0}, S::insert(1), {Stamp{1, 0}});
  rec.record_query(0, Stamp{2, 0}, S::read(), IntSet{1}, {Stamp{1, 0}},
                   /*final_read=*/true);
  const auto out = rec.build();
  EXPECT_TRUE(out.history.has_omega());
  EXPECT_TRUE(out.history.event(1).omega);
}

TEST(SimHarness, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    RunConfig cfg;
    cfg.n_processes = 3;
    cfg.seed = seed;
    cfg.workload.ops_per_process = 15;
    auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
      return random_set_update<int>(rng, cfg.workload);
    });
    return std::make_tuple(out.history.size(), out.final_states.front(),
                           out.net.messages_delivered);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimHarness, CrashedProcessIssuesNoFurtherOps) {
  RunConfig cfg;
  cfg.n_processes = 2;
  cfg.seed = 5;
  cfg.workload.ops_per_process = 50;
  cfg.workload.think_time = LatencyModel::constant(100.0);
  cfg.crashes = {CrashPlan{1, 500.0}};  // p1 dies after ~4 ops
  auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  std::size_t p1_events = out.history.chain(1).size();
  EXPECT_LT(p1_events, 10u);
  EXPECT_EQ(out.final_states.size(), 1u);  // only p0 does the final read
  EXPECT_TRUE(out.converged);
}

TEST(SimHarness, GcRequiresFifo) {
  RunConfig cfg;
  cfg.enable_gc = true;
  cfg.fifo_links = false;
  EXPECT_THROW(
      (void)run_uc_simulation(S{}, cfg,
                              [](Rng&) { return S::insert(1); }),
      contract_error);
}

TEST(SimHarness, HistoryPassesExactCheckersOnTinyRuns) {
  RunConfig cfg;
  cfg.n_processes = 2;
  cfg.seed = 77;
  cfg.workload.ops_per_process = 3;
  cfg.workload.value_range = 2;
  auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  EXPECT_EQ(check_uc(out.history).verdict, Verdict::Yes);
  EXPECT_EQ(check_ec(out.history).verdict, Verdict::Yes);
}

TEST(SetFamily, NamesAndFactoryCoverAllKinds) {
  SimScheduler scheduler;
  for (SetImplKind kind : kAllSetImpls) {
    EXPECT_FALSE(to_string(kind).empty());
    auto cluster = SetCluster::make(kind, scheduler, 2, 1,
                                    LatencyModel::constant(10.0));
    ASSERT_NE(cluster, nullptr);
    EXPECT_EQ(cluster->size(), 2u);
    cluster->node(0).insert(5);
    scheduler.run();
    EXPECT_EQ(cluster->node(1).read(), IntSet{5}) << to_string(kind);
  }
}

TEST(SetFamily, ApproxBytesGrowWithContent) {
  SimScheduler scheduler;
  auto cluster = SetCluster::make(SetImplKind::UcSet, scheduler, 2, 1,
                                  LatencyModel::constant(10.0));
  const auto before = cluster->approx_bytes(0);
  for (int i = 0; i < 50; ++i) cluster->node(0).insert(i);
  scheduler.run();
  EXPECT_GT(cluster->approx_bytes(0), before);
}

TEST(Workload, GeneratorsAreDeterministicPerSeed) {
  WorkloadConfig cfg;
  Rng a(3), b(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(random_set_update<int>(a, cfg) ==
                random_set_update<int>(b, cfg));
  }
  Rng c(4);
  int diff = 0;
  Rng a2(3);
  for (int i = 0; i < 50; ++i) {
    if (!(random_set_update<int>(a2, cfg) == random_set_update<int>(c, cfg))) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 5);
}

TEST(Workload, CounterUpdatesNeverZero) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(random_counter_update(rng).delta, 0);
  }
}

TEST(Workload, DocUpdatesStayInHintRange) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    const auto u = random_doc_update(rng, 10);
    if (const auto* ins = std::get_if<DocInsert>(&u)) {
      EXPECT_LE(ins->pos, 10u);
      EXPECT_EQ(ins->text.size(), 1u);
    } else {
      EXPECT_LE(std::get<DocErase>(u).pos, 10u);
    }
  }
}

}  // namespace
}  // namespace ucw
