#include <gtest/gtest.h>

#include "criteria/all.hpp"
#include "history/figures.hpp"
#include "history/spec.hpp"

namespace ucw {
namespace {

using IntSet = std::set<int>;

TEST(SpecParser, ParsesOpsAndProcesses) {
  const auto h = parse_set_history_spec("I1 R:1 D1 | I2 W:1,2");
  EXPECT_EQ(h.process_count(), 2u);
  EXPECT_EQ(h.size(), 5u);
  EXPECT_EQ(h.update_ids().size(), 3u);
  EXPECT_TRUE(h.has_omega());
  EXPECT_EQ(h.event(1).query().second, IntSet{1});
  EXPECT_EQ(h.event(4).query().second, (IntSet{1, 2}));
  EXPECT_TRUE(h.event(4).omega);
}

TEST(SpecParser, EmptyValueListsAllowed) {
  const auto h = parse_set_history_spec("R: | W:");
  EXPECT_EQ(h.event(0).query().second, IntSet{});
  EXPECT_EQ(h.event(1).query().second, IntSet{});
  EXPECT_TRUE(h.event(1).omega);
}

TEST(SpecParser, RejectsGarbage) {
  EXPECT_THROW((void)parse_set_history_spec("X5"), contract_error);
  EXPECT_THROW((void)parse_set_history_spec("I"), contract_error);
  EXPECT_THROW((void)parse_set_history_spec("Iabc"), contract_error);
  EXPECT_THROW((void)parse_set_history_spec("R:1,x"), contract_error);
}

TEST(SpecParser, RoundTripsThroughToSpec) {
  const std::string spec = "I1 R:1 D1 W: | I2 W:1,2";
  const auto h = parse_set_history_spec(spec);
  EXPECT_EQ(to_spec(h), spec);
}

TEST(SpecParser, FiguresRoundTrip) {
  for (const auto& [h, expect] : paper_figures()) {
    const auto reparsed = parse_set_history_spec(to_spec(h));
    ASSERT_EQ(reparsed.size(), h.size()) << expect.label;
    // Same classification after the round trip.
    const auto a = check_all_criteria(h);
    const auto b = check_all_criteria(reparsed);
    for (Criterion c : kAllCriteria) {
      EXPECT_EQ(a.get(c).verdict, b.get(c).verdict)
          << expect.label << " " << to_string(c);
    }
  }
}

TEST(SpecParser, SpecHistoriesClassifyAsExpected) {
  // A pocket Fig. 1b via the spec language.
  const auto h = parse_set_history_spec("I1 D2 W:1,2 | I2 D1 W:1,2");
  EXPECT_EQ(check_sec(h).verdict, Verdict::Yes);
  EXPECT_EQ(check_uc(h).verdict, Verdict::No);
}

TEST(SolverWitness, AssignmentSatisfiesItsOwnConstraints) {
  // The SUC witness for fig1d must itself be a valid certificate-like
  // assignment: monotone along chains, reflexive on updates, full at ω.
  const auto h = figure_1d();
  typename VisibilitySolver<SetAdt<int>>::Options opt;
  opt.require_suc = true;
  VisibilitySolver<SetAdt<int>> solver(h, opt);
  ASSERT_EQ(solver.solve(), std::optional<bool>(true));
  const auto& vis = solver.witness().visible;
  ASSERT_EQ(vis.size(), h.size());

  const Bitset64 full = Bitset64::all(
      static_cast<unsigned>(h.update_ids().size()));
  for (EventId e = 0; e < h.size(); ++e) {
    if (h.event(e).omega) {
      EXPECT_EQ(vis[e], full) << "omega event " << e;
    }
    if (h.event(e).is_update()) {
      EXPECT_TRUE(vis[e].test(
          static_cast<unsigned>(h.update_slot(e))));
    }
    for (EventId d = 0; d < h.size(); ++d) {
      if (d != e && h.prog_before(d, e)) {
        EXPECT_TRUE(vis[e].contains(vis[d]))
            << "growth violated between " << d << " and " << e;
      }
    }
  }
  // The witness order is a permutation of the update slots.
  auto order = solver.witness_order();
  std::sort(order.begin(), order.end());
  for (unsigned i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

}  // namespace
}  // namespace ucw
