// Batched and unbatched delivery are indistinguishable to the UCStore.
//
// Two layers of evidence, matching the two things that could go wrong:
//
//  1. Delivery-transform equivalence (the theorem): given one fixed
//     stream of stamped keyed updates, applying it one-message-per-
//     update versus coalesced into arbitrary envelopes — under random
//     per-replica orders and duplicate delivery — drives every replica
//     to *identical* per-key state. Algorithm 1's replay depends only
//     on the set of (stamp, update) pairs per key, never on arrival
//     grouping; batching is a pure delivery-layer transform.
//
//  2. End-to-end convergence (the system): full simulations with
//     random schedules, latency, crashes and duplicate delivery
//     converge every surviving store to identical per-key state, for
//     every batch window, and identically-seeded runs replay
//     bit-for-bit.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "adt/all.hpp"
#include "runtime/store_harness.hpp"
#include "store/all.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using Entry = KeyedUpdate<S>;
using Env = BatchEnvelope<S>;

/// A fixed stream of stamped keyed updates, as n_processes sequential
/// senders with distinct (clock, pid) stamps would have produced it.
std::vector<Entry> make_stream(Rng& rng, std::size_t n_processes,
                               std::size_t ops, std::size_t n_keys,
                               double skew) {
  ZipfianKeys keyspace(n_keys, skew);
  std::vector<LogicalTime> clocks(n_processes, 0);
  std::vector<Entry> stream;
  stream.reserve(ops);
  WorkloadConfig w;
  w.value_range = 16;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_processes) - 1));
    // Jump the clock occasionally, as merges with remote stamps would.
    clocks[p] += static_cast<LogicalTime>(rng.uniform_int(1, 3));
    stream.push_back(Entry{
        keyspace.sample(rng),
        UpdateMessage<S>{Stamp{clocks[p], p}, random_set_update(rng, w), {}}});
  }
  return stream;
}

/// One receiving replica of the keyspace: a single shard is enough (the
/// shard split is local structure; delivery semantics are per key).
struct KeyspaceReplica {
  StoreShard<S> shard{S{}, 0, {}};

  void apply(const Entry& e) { shard.replica(e.key).apply(e.msg.stamp.pid, e.msg); }

  [[nodiscard]] std::map<std::string, std::set<int>> final_states() {
    std::map<std::string, std::set<int>> out;
    shard.for_each([&](const std::string& k, ReplayReplica<S>& r) {
      out[k] = r.current_state();
    });
    return out;
  }
};

/// Delivers the stream unbatched: per-replica random order, each entry
/// its own message, duplicated with probability dup_p.
std::map<std::string, std::set<int>> deliver_unbatched(
    const std::vector<Entry>& stream, Rng& rng, double dup_p) {
  std::vector<Entry> order = stream;
  rng.shuffle(order);
  KeyspaceReplica rep;
  for (const Entry& e : order) {
    rep.apply(e);
    if (rng.chance(dup_p)) rep.apply(e);
  }
  return rep.final_states();
}

/// Delivers the stream batched: random partition into envelopes of
/// random sizes, envelopes shuffled, some envelopes delivered twice.
std::map<std::string, std::set<int>> deliver_batched(
    const std::vector<Entry>& stream, Rng& rng, double dup_p) {
  std::vector<Env> envelopes;
  std::size_t i = 0;
  while (i < stream.size()) {
    const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 9));
    Env e;
    for (std::size_t j = 0; j < batch && i < stream.size(); ++j, ++i) {
      e.entries.push_back(stream[i]);
    }
    envelopes.push_back(std::move(e));
  }
  rng.shuffle(envelopes);
  KeyspaceReplica rep;
  for (const Env& e : envelopes) {
    for (const Entry& entry : e.entries) rep.apply(entry);
    if (rng.chance(dup_p)) {
      for (const Entry& entry : e.entries) rep.apply(entry);
    }
  }
  return rep.final_states();
}

TEST(StorePropertyTest, BatchedAndUnbatchedDeliveryAgreeExactly) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const auto stream = make_stream(rng, /*n_processes=*/5, /*ops=*/400,
                                    /*n_keys=*/40, /*skew=*/0.99);
    // Reference: timestamp-order replay is what every correct replica
    // must converge to, however delivery grouped or reordered things.
    const auto reference = deliver_unbatched(stream, rng, 0.0);
    for (int trial = 0; trial < 4; ++trial) {
      auto u = deliver_unbatched(stream, rng, /*dup_p=*/0.3);
      auto b = deliver_batched(stream, rng, /*dup_p=*/0.3);
      EXPECT_EQ(u, reference) << "unbatched replica diverged, seed " << seed;
      EXPECT_EQ(b, reference) << "batched replica diverged, seed " << seed;
    }
  }
}

TEST(StorePropertyTest, EndToEndConvergesForEveryWindow) {
  for (std::uint64_t seed : {3u, 11u, 27u}) {
    for (std::size_t window : {1u, 4u, 16u}) {
      StoreRunConfig cfg;
      cfg.n_processes = 5;
      cfg.seed = seed;
      cfg.n_keys = 50;
      cfg.skew = 0.99;
      cfg.ops_per_process = 60;
      cfg.update_ratio = 0.85;
      cfg.duplicate_probability = 0.2;
      cfg.store.batch_window = window;
      cfg.flush_period = 1'500.0;
      cfg.crashes = {CrashPlan{1, 8'000.0}};
      const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
        WorkloadConfig w;
        w.value_range = 16;
        return random_set_update(rng, w);
      });
      EXPECT_TRUE(out.converged)
          << "seed " << seed << " window " << window << " diverged";
      EXPECT_GT(out.net.messages_duplicated, 0u);
      EXPECT_GT(out.keys_touched, 0u);
    }
  }
}

TEST(StorePropertyTest, IdenticallySeededRunsReplayBitForBit) {
  auto run = [] {
    StoreRunConfig cfg;
    cfg.n_processes = 4;
    cfg.seed = 99;
    cfg.n_keys = 30;
    cfg.ops_per_process = 50;
    cfg.store.batch_window = 4;
    cfg.duplicate_probability = 0.1;
    return run_store_simulation(S{}, cfg, [](Rng& rng) {
      WorkloadConfig w;
      return random_set_update(rng, w);
    });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.final_states, b.final_states);
  EXPECT_EQ(a.net.broadcasts, b.net.broadcasts);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
}

TEST(StorePropertyTest, CrashedMajorityStillConvergesSurvivors) {
  StoreRunConfig cfg;
  cfg.n_processes = 5;
  cfg.seed = 17;
  cfg.n_keys = 25;
  cfg.ops_per_process = 50;
  cfg.store.batch_window = 8;
  cfg.flush_period = 1'000.0;
  cfg.crashes = {CrashPlan{0, 5'000.0}, CrashPlan{2, 6'000.0},
                 CrashPlan{4, 7'000.0}};
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    return random_set_update(rng, w);
  });
  // Availability does not degrade with failures: the two survivors kept
  // accepting updates and agree on every key.
  EXPECT_TRUE(out.converged);
}

}  // namespace
}  // namespace ucw
