// Batched and unbatched delivery are indistinguishable to the UCStore.
//
// Two layers of evidence, matching the two things that could go wrong:
//
//  1. Delivery-transform equivalence (the theorem): given one fixed
//     stream of stamped keyed updates, applying it one-message-per-
//     update versus coalesced into arbitrary envelopes — under random
//     per-replica orders and duplicate delivery — drives every replica
//     to *identical* per-key state. Algorithm 1's replay depends only
//     on the set of (stamp, update) pairs per key, never on arrival
//     grouping; batching is a pure delivery-layer transform.
//
//  2. End-to-end convergence (the system): full simulations with
//     random schedules, latency, crashes and duplicate delivery
//     converge every surviving store to identical per-key state, for
//     every batch window, and identically-seeded runs replay
//     bit-for-bit.
//  3. Recovery interleavings (the subsystem): a snapshot install
//     overlapped by stale and duplicated live redelivery is absorbed
//     exactly; full simulations with crashes *and restarts* converge the
//     rejoined replica to the same per-key state as replicas that never
//     crashed; and a catch-up after a long history transfers the
//     unstable suffix, not the history (asserted via the GC/snapshot
//     counters).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "adt/all.hpp"
#include "recovery/all.hpp"
#include "runtime/store_harness.hpp"
#include "store/all.hpp"
#include "test_seeds.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using Entry = KeyedUpdate<S>;
using Env = BatchEnvelope<S>;

/// A fixed stream of stamped keyed updates, as n_processes sequential
/// senders with distinct (clock, pid) stamps would have produced it.
std::vector<Entry> make_stream(Rng& rng, std::size_t n_processes,
                               std::size_t ops, std::size_t n_keys,
                               double skew) {
  ZipfianKeys keyspace(n_keys, skew);
  std::vector<LogicalTime> clocks(n_processes, 0);
  std::vector<Entry> stream;
  stream.reserve(ops);
  WorkloadConfig w;
  w.value_range = 16;
  for (std::size_t i = 0; i < ops; ++i) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_processes) - 1));
    // Jump the clock occasionally, as merges with remote stamps would.
    clocks[p] += static_cast<LogicalTime>(rng.uniform_int(1, 3));
    stream.push_back(Entry{
        keyspace.sample(rng),
        UpdateMessage<S>{Stamp{clocks[p], p}, random_set_update(rng, w), {}}});
  }
  return stream;
}

/// One receiving replica of the keyspace: a single shard is enough (the
/// shard split is local structure; delivery semantics are per key).
struct KeyspaceReplica {
  StoreShard<S> shard{S{}, 0, {}};

  void apply(const Entry& e) { shard.replica(e.key).apply(e.msg.stamp.pid, e.msg); }

  [[nodiscard]] std::map<std::string, std::set<int>> final_states() {
    std::map<std::string, std::set<int>> out;
    shard.for_each([&](const std::string& k, ReplayReplica<S>& r) {
      out[k] = r.current_state();
    });
    return out;
  }
};

/// Delivers the stream unbatched: per-replica random order, each entry
/// its own message, duplicated with probability dup_p.
std::map<std::string, std::set<int>> deliver_unbatched(
    const std::vector<Entry>& stream, Rng& rng, double dup_p) {
  std::vector<Entry> order = stream;
  rng.shuffle(order);
  KeyspaceReplica rep;
  for (const Entry& e : order) {
    rep.apply(e);
    if (rng.chance(dup_p)) rep.apply(e);
  }
  return rep.final_states();
}

/// Delivers the stream batched: random partition into envelopes of
/// random sizes, envelopes shuffled, some envelopes delivered twice.
std::map<std::string, std::set<int>> deliver_batched(
    const std::vector<Entry>& stream, Rng& rng, double dup_p) {
  std::vector<Env> envelopes;
  std::size_t i = 0;
  while (i < stream.size()) {
    const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 9));
    Env e;
    for (std::size_t j = 0; j < batch && i < stream.size(); ++j, ++i) {
      e.entries.push_back(stream[i]);
    }
    envelopes.push_back(std::move(e));
  }
  rng.shuffle(envelopes);
  KeyspaceReplica rep;
  for (const Env& e : envelopes) {
    for (const Entry& entry : e.entries) rep.apply(entry);
    if (rng.chance(dup_p)) {
      for (const Entry& entry : e.entries) rep.apply(entry);
    }
  }
  return rep.final_states();
}

TEST(StorePropertyTest, BatchedAndUnbatchedDeliveryAgreeExactly) {
  for (std::uint64_t seed : test::property_seeds(
           {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
            19, 20})) {
    SCOPED_TRACE(test::seed_trace(seed));
    Rng rng(seed);
    const auto stream = make_stream(rng, /*n_processes=*/5, /*ops=*/400,
                                    /*n_keys=*/40, /*skew=*/0.99);
    // Reference: timestamp-order replay is what every correct replica
    // must converge to, however delivery grouped or reordered things.
    const auto reference = deliver_unbatched(stream, rng, 0.0);
    for (int trial = 0; trial < 4; ++trial) {
      auto u = deliver_unbatched(stream, rng, /*dup_p=*/0.3);
      auto b = deliver_batched(stream, rng, /*dup_p=*/0.3);
      EXPECT_EQ(u, reference) << "unbatched replica diverged, seed " << seed;
      EXPECT_EQ(b, reference) << "batched replica diverged, seed " << seed;
    }
  }
}

TEST(StorePropertyTest, EndToEndConvergesForEveryWindow) {
  for (std::uint64_t seed : test::property_seeds({3, 11, 27})) {
    SCOPED_TRACE(test::seed_trace(seed));
    for (std::size_t window : {1u, 4u, 16u}) {
      StoreRunConfig cfg;
      cfg.n_processes = 5;
      cfg.seed = seed;
      cfg.n_keys = 50;
      cfg.skew = 0.99;
      cfg.ops_per_process = 60;
      cfg.update_ratio = 0.85;
      cfg.duplicate_probability = 0.2;
      cfg.store.batch_window = window;
      cfg.flush_period = 1'500.0;
      cfg.crashes = {CrashPlan{1, 8'000.0}};
      const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
        WorkloadConfig w;
        w.value_range = 16;
        return random_set_update(rng, w);
      });
      EXPECT_TRUE(out.converged)
          << "seed " << seed << " window " << window << " diverged";
      EXPECT_GT(out.net.messages_duplicated, 0u);
      EXPECT_GT(out.keys_touched, 0u);
    }
  }
}

TEST(StorePropertyTest, IdenticallySeededRunsReplayBitForBit) {
  auto run = [] {
    StoreRunConfig cfg;
    cfg.n_processes = 4;
    cfg.seed = 99;
    cfg.n_keys = 30;
    cfg.ops_per_process = 50;
    cfg.store.batch_window = 4;
    cfg.duplicate_probability = 0.1;
    return run_store_simulation(S{}, cfg, [](Rng& rng) {
      WorkloadConfig w;
      return random_set_update(rng, w);
    });
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.final_states, b.final_states);
  EXPECT_EQ(a.net.broadcasts, b.net.broadcasts);
  EXPECT_EQ(a.net.messages_sent, b.net.messages_sent);
  EXPECT_EQ(a.total_updates, b.total_updates);
  EXPECT_DOUBLE_EQ(a.duration, b.duration);
}

TEST(StorePropertyTest, SnapshotInstallAbsorbsStaleAndDuplicateRedelivery) {
  ReplayReplica<S>::Config absorb_cfg;
  absorb_cfg.absorb_below_floor = true;
  for (std::uint64_t seed :
       test::property_seeds({1, 2, 3, 4, 5, 6, 7, 8, 9, 10})) {
    SCOPED_TRACE(test::seed_trace(seed));
    Rng rng(seed);
    const auto stream = make_stream(rng, /*n_processes=*/5, /*ops=*/300,
                                    /*n_keys=*/25, /*skew=*/0.99);
    // Donor: receives everything, folds the median-clock prefix.
    StoreShard<S> donor(S{}, 0, absorb_cfg);
    for (const Entry& e : stream) {
      donor.replica(e.key).apply(e.msg.stamp.pid, e.msg);
    }
    std::vector<LogicalTime> clocks;
    for (const Entry& e : stream) clocks.push_back(e.msg.stamp.clock);
    std::nth_element(clocks.begin(), clocks.begin() + clocks.size() / 2,
                     clocks.end());
    const LogicalTime floor = clocks[clocks.size() / 2];
    donor.for_each([&](const std::string&, ReplayReplica<S>& r) {
      (void)r.fold_to(floor);
    });
    const auto snap = encode_shard_snapshot(donor, 0, 1);

    // Joiner: a random 30% of the stream raced ahead of the snapshot,
    // then the snapshot installs, then the *whole* stream is redelivered
    // shuffled and duplicated (stale envelopes it already covers).
    StoreShard<S> joiner(S{}, 9, absorb_cfg);
    for (const Entry& e : stream) {
      if (rng.chance(0.3)) joiner.replica(e.key).apply(e.msg.stamp.pid, e.msg);
    }
    for (const auto& ks : snap.keys) {
      (void)install_key_snapshot(joiner.replica(ks.key), ks);
    }
    std::vector<Entry> order = stream;
    rng.shuffle(order);
    for (const Entry& e : order) {
      joiner.replica(e.key).apply(e.msg.stamp.pid, e.msg);
      if (rng.chance(0.3)) joiner.replica(e.key).apply(e.msg.stamp.pid, e.msg);
    }

    std::map<std::string, std::set<int>> donor_states, joiner_states;
    donor.for_each([&](const std::string& k, ReplayReplica<S>& r) {
      donor_states[k] = r.current_state();
    });
    joiner.for_each([&](const std::string& k, ReplayReplica<S>& r) {
      joiner_states[k] = r.current_state();
    });
    EXPECT_EQ(joiner_states, donor_states) << "seed " << seed;
  }
}

TEST(StorePropertyTest, ConvergesThroughCrashRestartInterleavings) {
  for (std::uint64_t seed : test::property_seeds({5, 21, 42})) {
    SCOPED_TRACE(test::seed_trace(seed));
    StoreRunConfig cfg;
    cfg.n_processes = 5;
    cfg.seed = seed;
    cfg.fifo_links = true;
    cfg.n_keys = 40;
    cfg.skew = 0.99;
    cfg.ops_per_process = 70;
    cfg.update_ratio = 0.85;
    cfg.duplicate_probability = 0.15;
    cfg.store.batch_window = 4;
    cfg.store.gc = true;
    cfg.flush_period = 1'200.0;
    cfg.crashes = {CrashPlan{1, 6'000.0}, CrashPlan{3, 9'000.0}};
    cfg.restarts = {RestartPlan{1, 14'000.0, /*resume_ops=*/30}};
    const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
      WorkloadConfig w;
      w.value_range = 16;
      return random_set_update(rng, w);
    });
    // The rejoined replica must agree with replicas that never crashed —
    // i.e. the run is indistinguishable, per key, from an uninterrupted
    // one — even under at-least-once delivery of both live envelopes and
    // snapshots.
    EXPECT_TRUE(out.converged)
        << "seed " << seed << " diverged on "
        << (out.diverged_keys.empty() ? "?" : out.diverged_keys.front());
    EXPECT_EQ(out.net.restarts, 1u);
    EXPECT_GT(out.net.messages_duplicated, 0u);
    EXPECT_GT(out.store_stats[1].snapshots_installed, 0u);
  }
}

TEST(StorePropertyTest, CatchUpTransfersSuffixNotHistory) {
  // The acceptance sweep: ~10k keyed updates over 1000 zipfian keys,
  // then a crash + rejoin. With GC on, the catch-up replays the
  // unstable suffix; with GC off it replays (nearly) the full history.
  auto run = [](bool gc) {
    StoreRunConfig cfg;
    cfg.n_processes = 4;
    cfg.seed = 7;
    cfg.fifo_links = true;
    cfg.n_keys = 1000;
    cfg.skew = 0.99;
    cfg.ops_per_process = 2'600;
    cfg.update_ratio = 1.0;
    cfg.think_time = LatencyModel::exponential(100.0);
    cfg.store.batch_window = 8;
    cfg.store.gc = gc;
    cfg.flush_period = 1'000.0;
    cfg.crashes = {CrashPlan{3, 150'000.0}};
    cfg.restarts = {RestartPlan{3, 170'000.0, /*resume_ops=*/40}};
    return run_store_simulation(S{}, cfg, [](Rng& rng) {
      WorkloadConfig w;
      w.value_range = 64;
      return random_set_update(rng, w);
    });
  };
  const auto compacted = run(true);
  const auto full = run(false);
  ASSERT_TRUE(compacted.converged);
  ASSERT_TRUE(full.converged);
  ASSERT_GT(compacted.total_updates, 9'000u);
  const StoreStats& joiner = compacted.store_stats[3];
  const StoreStats& joiner_full = full.store_stats[3];
  ASSERT_GT(joiner.snapshots_installed, 0u);
  ASSERT_GT(joiner_full.snapshots_installed, 0u);
  // GC'd catch-up ships the unstable suffix only: a small fraction of
  // the history, and far less than the uncompacted control transfers.
  EXPECT_LT(joiner.catchup_entries * 5, compacted.total_updates);
  EXPECT_GT(joiner_full.catchup_entries, joiner.catchup_entries * 5);
  // And the steady-state logs stay bounded cluster-wide.
  EXPECT_LT(compacted.log_entries_resident * 2, full.log_entries_resident);
}

TEST(StorePropertyTest, RandomPartitionCrashScheduleStillConverges) {
  // Seeded random schedules of drop-mode partition/heal events (plus a
  // crash + rejoin) interleaved with zipfian updates: both sides of
  // every split keep writing, heal-time anti-entropy reconciles, and
  // every surviving store ends identical per key. The schedule itself
  // is drawn from the seed, so a failure names its reproduction.
  for (const std::uint64_t seed : test::property_seeds({13, 29, 57})) {
    SCOPED_TRACE(test::seed_trace(seed));
    Rng rng(seed);
    StoreRunConfig cfg;
    cfg.n_processes = 5;
    cfg.seed = seed;
    cfg.fifo_links = true;
    cfg.n_keys = 40;
    cfg.skew = 0.99;
    cfg.ops_per_process = 80;
    cfg.update_ratio = 0.9;
    cfg.store.batch_window = 4;
    cfg.store.gc = true;
    cfg.flush_period = 1'000.0;
    SimTime at = 4'000.0;
    for (int cut = 0; cut < 3; ++cut) {
      std::vector<std::size_t> groups;
      for (std::size_t p = 0; p < cfg.n_processes; ++p) {
        groups.push_back(static_cast<std::size_t>(rng.uniform_int(0, 1)));
      }
      cfg.partitions.push_back(PartitionPlan{at, groups});
      at += 3'000.0 + 1'000.0 * static_cast<SimTime>(rng.uniform_int(0, 2));
      cfg.partitions.push_back(
          PartitionPlan{at, std::vector<std::size_t>(cfg.n_processes, 0)});
      at += 3'000.0;
    }
    cfg.crashes = {CrashPlan{2, 6'500.0}};
    cfg.restarts = {RestartPlan{2, at + 2'000.0, /*resume_ops=*/20}};
    const auto out = run_store_simulation(S{}, cfg, [](Rng& r) {
      WorkloadConfig w;
      w.value_range = 16;
      return random_set_update(r, w);
    });
    EXPECT_TRUE(out.converged)
        << "seed " << seed << " diverged on "
        << (out.diverged_keys.empty() ? "?" : out.diverged_keys.front());
    EXPECT_GT(out.net.messages_dropped_partition, 0u) << "seed " << seed;
    std::uint64_t ae_completed = 0;
    for (const auto& s : out.store_stats) ae_completed += s.ae_rounds_completed;
    EXPECT_GT(ae_completed, 0u) << "seed " << seed;
  }
}

TEST(StorePropertyTest, DeltaSnapshotsShipStrictlyLessThanFullOnReheal) {
  // Two split/heal episodes between the same groups. The second heal's
  // anti-entropy can serve deltas only when incremental snapshots are
  // on (the first episode's installs left markers behind); the control
  // run re-ships every shard in full both times. Same seed, same
  // schedule — the delta run must ship strictly fewer keyed snapshots.
  auto run = [](bool incremental) {
    StoreRunConfig cfg;
    cfg.n_processes = 4;
    cfg.seed = 71;
    cfg.fifo_links = true;
    cfg.n_keys = 60;
    cfg.skew = 0.99;
    cfg.ops_per_process = 90;
    cfg.update_ratio = 0.95;
    cfg.store.batch_window = 4;
    cfg.store.gc = true;
    cfg.store.incremental_snapshots = incremental;
    cfg.flush_period = 1'000.0;
    cfg.partitions = {
        PartitionPlan{4'000.0, {0, 0, 1, 1}},
        PartitionPlan{8'000.0, {0, 0, 0, 0}},
        PartitionPlan{12'000.0, {0, 0, 1, 1}},
        PartitionPlan{16'000.0, {0, 0, 0, 0}},
    };
    return run_store_simulation(S{}, cfg, [](Rng& r) {
      WorkloadConfig w;
      w.value_range = 32;
      return random_set_update(r, w);
    });
  };
  const auto delta = run(true);
  const auto full = run(false);
  ASSERT_TRUE(delta.converged);
  ASSERT_TRUE(full.converged);
  auto served = [](const StoreRunOutput<S>& out) {
    std::uint64_t keys = 0, skipped = 0, entries = 0;
    for (const auto& s : out.store_stats) {
      keys += s.snapshot_keys_served;
      skipped += s.snapshot_keys_skipped_delta;
      entries += s.ae_entries_served;
    }
    return std::tuple{keys, skipped, entries};
  };
  const auto [delta_keys, delta_skipped, delta_entries] = served(delta);
  const auto [full_keys, full_skipped, full_entries] = served(full);
  EXPECT_LT(delta_keys, full_keys);
  EXPECT_GT(delta_skipped, 0u);
  EXPECT_EQ(full_skipped, 0u);
  EXPECT_LE(delta_entries, full_entries);
}

TEST(StorePropertyTest, CrashedMajorityStillConvergesSurvivors) {
  StoreRunConfig cfg;
  cfg.n_processes = 5;
  cfg.seed = 17;
  cfg.n_keys = 25;
  cfg.ops_per_process = 50;
  cfg.store.batch_window = 8;
  cfg.flush_period = 1'000.0;
  cfg.crashes = {CrashPlan{0, 5'000.0}, CrashPlan{2, 6'000.0},
                 CrashPlan{4, 7'000.0}};
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    return random_set_update(rng, w);
  });
  // Availability does not degrade with failures: the two survivors kept
  // accepting updates and agree on every key.
  EXPECT_TRUE(out.converged);
}

}  // namespace
}  // namespace ucw
