// The consistency-auditor pipeline end to end: recorder capture and
// drop accounting, the JSONL interchange format, per-key certification
// (including its honest refusals), the per-key decomposition's scaling
// edge over the whole-history solver, scenario replay determinism, the
// injected-bug refutation with its DOT witness, and the failing-
// schedule shrinker's 1-minimality guarantee — plus the pooled
// thread-store frontend feeding the same pipeline through per-producer
// recorder rings and a real ThreadNetwork partition.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "adt/all.hpp"
#include "audit/auditor.hpp"
#include "audit/recorder.hpp"
#include "audit/scenario.hpp"
#include "audit/shrink.hpp"
#include "criteria/all.hpp"
#include "history/builder.hpp"
#include "history/jsonl.hpp"
#include "net/scheduler.hpp"
#include "store/all.hpp"

namespace ucw {
namespace {

using Reg = RegisterAdt<std::int64_t>;
using audit::audit_history;
using audit::AuditOptions;
using audit::AuditReport;
using audit::OpRecorder;
using audit::ScenarioSpec;

// ----- recorder -------------------------------------------------------

TEST(OpRecorderTest, DrainIsProgramOrderPerThread) {
  OpRecorder<Reg, std::string> rec(/*pid=*/2, /*threads=*/2,
                                   /*capacity=*/16);
  rec.record_update(0, "a", Stamp{1, 2}, Reg::write(10));
  rec.record_update(1, "b", Stamp{2, 2}, Reg::write(20));
  rec.record_update(0, "a", Stamp{3, 2}, Reg::write(30));
  rec.record_query(1, "a", /*clock=*/3, /*out=*/30);
  rec.record_final_read("a", 30);
  EXPECT_EQ(rec.captured(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.final_reads_recorded(), 1u);

  const auto records = rec.drain();
  ASSERT_EQ(records.size(), 5u);
  // Thread-major: thread 0's records first, in issue order.
  EXPECT_EQ(records[0].key, "a");
  EXPECT_EQ(records[0].stamp.clock, 1u);
  EXPECT_EQ(records[1].stamp.clock, 3u);
  EXPECT_EQ(records[2].key, "b");
  EXPECT_EQ(records[3].kind, audit::OpKind::kQuery);
  EXPECT_EQ(records[4].kind, audit::OpKind::kFinalRead);
  for (const auto& r : records) EXPECT_EQ(r.pid, 2u);
}

TEST(OpRecorderTest, OverflowDropsNewestAndCounts) {
  // Drop-newest keeps a contiguous program-order *prefix* per thread —
  // the truncation is at the tail, where the auditor can detect it via
  // the meta drop count rather than by a hole mid-stream.
  OpRecorder<Reg, std::string> rec(0, 1, /*capacity=*/4);
  for (std::int64_t i = 0; i < 10; ++i) {
    rec.record_update(0, "k", Stamp{static_cast<LogicalTime>(i + 1), 0},
                      Reg::write(i));
  }
  EXPECT_EQ(rec.captured(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto records = rec.drain();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].stamp.clock, i + 1);  // the prefix, not the tail
  }
}

// ----- JSONL interchange ----------------------------------------------

TEST(HistoryJsonlTest, RoundTripPreservesEverything) {
  OpRecorder<Reg, std::string> rec(1, 1, 8);
  rec.record_update(0, "x", Stamp{5, 1}, Reg::write(42));
  rec.record_query(0, "x", 5, 42);
  rec.record_final_read("x", 42);

  HistoryFile out;
  out.meta.n_processes = 2;
  out.meta.captured = rec.captured();
  out.meta.dropped = rec.dropped();
  out.meta.final_reads = rec.final_reads_recorded();
  append_history_lines(rec, &out.lines);

  std::stringstream ss;
  write_history_jsonl(ss, out.meta, out.lines);

  HistoryFile in;
  std::string err;
  ASSERT_TRUE(read_history_jsonl(ss, &in, &err)) << err;
  EXPECT_EQ(in.meta.n_processes, 2u);
  EXPECT_EQ(in.meta.captured, 2u);
  EXPECT_EQ(in.meta.final_reads, 1u);
  ASSERT_EQ(in.lines.size(), 3u);
  EXPECT_EQ(in.lines[0].op, 'u');
  EXPECT_EQ(in.lines[0].key, "x");
  EXPECT_EQ(in.lines[0].clock, 5u);
  EXPECT_EQ(in.lines[0].value, 42);
  EXPECT_EQ(in.lines[1].op, 'q');
  EXPECT_EQ(in.lines[2].op, 'f');
}

TEST(HistoryJsonlTest, MalformedLineIsAHardError) {
  std::stringstream ss;
  ss << R"({"p":0,"t":0,"op":"u","key":"k","clock":1,"val":3,"ts":0})"
     << "\nnot json\n";
  HistoryFile in;
  std::string err;
  EXPECT_FALSE(read_history_jsonl(ss, &in, &err));
  EXPECT_FALSE(err.empty());
}

// ----- auditor verdicts -----------------------------------------------

HistoryLine update_line(ProcessId p, const std::string& key,
                        LogicalTime clock, std::int64_t v) {
  HistoryLine l;
  l.pid = p;
  l.op = 'u';
  l.key = key;
  l.clock = clock;
  l.value = v;
  return l;
}

HistoryLine final_line(ProcessId p, const std::string& key, std::int64_t v) {
  HistoryLine l;
  l.pid = p;
  l.op = 'f';
  l.key = key;
  l.value = v;
  return l;
}

TEST(AuditorTest, StampReplayCertifiesAgreementOnTheLwwValue) {
  HistoryFile h;
  h.meta.n_processes = 2;
  h.lines = {update_line(0, "k", 1, 10), update_line(1, "k", 2, 20),
             final_line(0, "k", 20), final_line(1, "k", 20)};
  const AuditReport r = audit_history(h);
  EXPECT_EQ(r.uc, Verdict::Yes);
  EXPECT_EQ(r.ec, Verdict::Yes);
  EXPECT_EQ(r.keys_certified, 1u);
  EXPECT_TRUE(r.certified());
}

TEST(AuditorTest, DivergentFinalReadsRefute) {
  HistoryFile h;
  h.meta.n_processes = 2;
  h.lines = {update_line(0, "k", 1, 10), update_line(1, "k", 2, 20),
             final_line(0, "k", 10), final_line(1, "k", 20)};
  const AuditReport r = audit_history(h);
  EXPECT_EQ(r.uc, Verdict::No);
  EXPECT_EQ(r.ec, Verdict::No);
  ASSERT_EQ(r.problems.size(), 1u);
  EXPECT_EQ(r.problems[0].method, "divergent");
  EXPECT_TRUE(r.refuted());
}

TEST(AuditorTest, DroppedRecordsVoidCertification) {
  // Identical to the certifying history above, but the recorder lost a
  // record: a Yes would be unsound (the hole could hide anything), so
  // the whole-report verdict degrades to Unknown. Satellite: every
  // silent drop must be *visible* in the verdict, not just in a
  // counter.
  HistoryFile h;
  h.meta.n_processes = 2;
  h.meta.dropped = 1;
  h.lines = {update_line(0, "k", 1, 10), update_line(1, "k", 2, 20),
             final_line(0, "k", 20), final_line(1, "k", 20)};
  const AuditReport r = audit_history(h);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(r.uc, Verdict::Unknown);
  EXPECT_FALSE(r.certified());

  // Divergence refutations survive incompleteness: the disagreeing
  // responses really happened, no matter what was dropped.
  h.lines.back().value = 10;
  const AuditReport r2 = audit_history(h);
  EXPECT_EQ(r2.uc, Verdict::No);
}

TEST(AuditorTest, UnexplainedValueBecomesUnknownWhenIncomplete) {
  HistoryFile h;
  h.meta.n_processes = 1;
  h.lines = {update_line(0, "k", 1, 10), final_line(0, "k", 99)};
  EXPECT_EQ(audit_history(h).uc, Verdict::No);  // complete: refuted
  h.meta.dropped = 3;  // the write of 99 may be in the hole
  EXPECT_EQ(audit_history(h).uc, Verdict::Unknown);
}

// ----- per-key decomposition (satellite: scaling test) ----------------

TEST(PerKeyDecompositionTest, CertifiesWhereTheWholeHistorySolverCannot) {
  // 6 processes × 10 updates, each on its own register: the joint
  // downset lattice has ~11^6 ≈ 1.8M antichains, so a budgeted
  // whole-history check_uc gives up — while the per-key decomposition
  // certifies each single-chain register in linear time and joins the
  // witnesses with one toposort.
  using M = MemoryAdt<std::string, int>;
  HistoryBuilder<M> b{M{}, 6};
  for (ProcessId p = 0; p < 6; ++p) {
    const std::string key = "k" + std::to_string(p);
    for (int i = 1; i <= 10; ++i) b.update(p, M::write(key, i));
    b.query_omega(p, M::read(key), 10);
  }
  const History<M> h = b.build();

  const CheckResult whole = check_uc(h, ExploreBudget{.max_states = 2'000});
  EXPECT_EQ(whole.verdict, Verdict::Unknown);

  const CheckResult per_key = check_uc_per_key(h);
  EXPECT_EQ(per_key.verdict, Verdict::Yes) << per_key.explanation;
}

TEST(PerKeyDecompositionTest, RefutationComposesAcrossKeys) {
  using M = MemoryAdt<std::string, int>;
  HistoryBuilder<M> b{M{}, 2};
  b.update(0, M::write("a", 1));
  b.update(0, M::write("b", 2));
  b.query_omega(1, M::read("b"), 7);  // never written anywhere
  EXPECT_EQ(check_uc_per_key(b.build()).verdict, Verdict::No);
}

// ----- incremental certificate ----------------------------------------

TEST(IncrementalCertificateTest, StampReplayThenDownsetFallback) {
  IncrementalKeyCertificate<Reg> fast;
  fast.add_update(0, Stamp{1, 0}, Reg::write(1));
  fast.add_update(1, Stamp{2, 1}, Reg::write(2));
  fast.add_omega(Reg::read(), 2);
  const auto cert = fast.finalize();
  EXPECT_EQ(cert.uc, Verdict::Yes);
  EXPECT_EQ(cert.method, "stamp-replay");
  EXPECT_EQ(cert.ec, Verdict::Yes);

  // Forever reading the *non*-LWW value: the replay certificate fails,
  // but the exact solver finds the linearization [2, 1].
  IncrementalKeyCertificate<Reg> slow;
  slow.add_update(0, Stamp{1, 0}, Reg::write(1));
  slow.add_update(1, Stamp{2, 1}, Reg::write(2));
  slow.add_omega(Reg::read(), 1);
  const auto cert2 = slow.finalize();
  EXPECT_EQ(cert2.uc, Verdict::Yes);
  EXPECT_EQ(cert2.method, "downset");

  IncrementalKeyCertificate<Reg> split;
  split.add_omega(Reg::read(), 1);
  split.add_omega(Reg::read(), 2);  // ω-reads disagree: no common state
  EXPECT_EQ(split.finalize().ec, Verdict::No);
}

// ----- scenarios: replay, bug injection, shrinking --------------------

TEST(ScenarioTest, SpecSurvivesJsonRoundTrip) {
  const ScenarioSpec spec = audit::random_fault_scenario(
      /*seed=*/9, /*n_processes=*/4, /*ops_per_process=*/80,
      /*inject_bug=*/true);
  EXPECT_FALSE(spec.partitions.empty());
  ScenarioSpec back;
  std::string err;
  ASSERT_TRUE(ScenarioSpec::from_json(spec.to_json(), &back, &err)) << err;
  EXPECT_EQ(back.to_json().dump(), spec.to_json().dump());
}

TEST(ScenarioTest, CleanRandomFaultRunCertifies) {
  const ScenarioSpec spec = audit::random_fault_scenario(7, 3, 120);
  const auto result = audit::run_scenario(spec);
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.audit.complete);
  EXPECT_EQ(result.audit.uc, Verdict::Yes) << result.audit.summary();
  EXPECT_GT(result.audit.final_reads, 0u);
}

TEST(ScenarioTest, ReplayIsDeterministic) {
  const ScenarioSpec spec = audit::random_fault_scenario(11, 3, 60);
  const auto a = audit::run_scenario(spec);
  const auto b = audit::run_scenario(spec);
  ASSERT_EQ(a.history.lines.size(), b.history.lines.size());
  for (std::size_t i = 0; i < a.history.lines.size(); ++i) {
    EXPECT_EQ(a.history.lines[i].key, b.history.lines[i].key);
    EXPECT_EQ(a.history.lines[i].value, b.history.lines[i].value);
    EXPECT_EQ(a.history.lines[i].clock, b.history.lines[i].clock);
  }
  EXPECT_EQ(a.audit.uc, b.audit.uc);
}

/// Seed chosen (and pinned) so the folded-ack bug actually bites:
/// premature GC under the partition makes replicas install diverging
/// snapshots, and the final reads disagree.
ScenarioSpec refuting_spec() {
  return audit::random_fault_scenario(/*seed=*/6, /*n_processes=*/3,
                                      /*ops_per_process=*/200,
                                      /*inject_bug=*/true);
}

TEST(ScenarioTest, InjectedBugIsRefutedWithDotWitness) {
  const std::string dir = ::testing::TempDir();
  AuditOptions opt;
  opt.dot_dir = dir;
  const auto result = audit::run_scenario(refuting_spec(), "", opt);
  EXPECT_FALSE(result.converged);
  EXPECT_TRUE(result.audit.refuted()) << result.audit.summary();
  ASSERT_FALSE(result.audit.problems.empty());
  EXPECT_EQ(result.audit.problems[0].method, "divergent");
  ASSERT_FALSE(result.audit.dot_files.empty());
  std::ifstream dot(result.audit.dot_files[0]);
  ASSERT_TRUE(dot.good()) << result.audit.dot_files[0];
  std::stringstream ss;
  ss << dot.rdbuf();
  EXPECT_NE(ss.str().find("digraph history"), std::string::npos);
}

TEST(ShrinkTest, ShrunkScenarioIsMinimalAndStillFailing) {
  const ScenarioSpec original = refuting_spec();
  const auto is_failing = [](const ScenarioSpec& s) {
    return audit::run_scenario(s).audit.refuted();
  };
  ASSERT_TRUE(is_failing(original));

  const auto result = audit::shrink_scenario(original, is_failing);
  EXPECT_TRUE(result.minimal);
  EXPECT_LT(result.spec.total_ops(), original.total_ops());
  EXPECT_LE(result.spec.fault_events(), original.fault_events());

  // The shrunk schedule still reproduces on replay…
  EXPECT_TRUE(is_failing(result.spec));

  // …and is 1-minimal: dropping any remaining fault event, or removing
  // one more op from any process, makes the failure vanish. This is an
  // independent re-verification of the fixpoint the shrinker claims.
  for (std::size_t i = 0; i < result.spec.partitions.size(); ++i) {
    ScenarioSpec cand = result.spec;
    cand.partitions.erase(cand.partitions.begin() +
                          static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(is_failing(cand)) << "partition " << i << " removable";
  }
  for (std::size_t i = 0; i < result.spec.restarts.size(); ++i) {
    ScenarioSpec cand = result.spec;
    cand.restarts.erase(cand.restarts.begin() +
                        static_cast<std::ptrdiff_t>(i));
    EXPECT_FALSE(is_failing(cand)) << "restart " << i << " removable";
  }
  for (std::size_t p = 0; p < result.spec.ops_per_process.size(); ++p) {
    if (result.spec.ops_per_process[p] == 0) continue;
    ScenarioSpec cand = result.spec;
    --cand.ops_per_process[p];
    EXPECT_FALSE(is_failing(cand)) << "op of process " << p << " removable";
  }
}

// ----- pooled thread-store frontend ------------------------------------

TEST(ThreadStoreAuditTest, PooledRunThroughPartitionCertifies) {
  // Two pooled stores, two producer threads each, a mid-run hold-mode
  // ThreadNetwork partition, then heal + drain: per-producer recorder
  // rings capture every op concurrently, and the exported history must
  // certify — the live frontend feeding the same offline pipeline as
  // the DES harness.
  using TS = ThreadUcStore<Reg>;
  constexpr std::size_t kProducers = 2;
  constexpr std::size_t kOpsPerProducer = 150;
  constexpr std::size_t kKeys = 8;

  ThreadNetwork<TS::Envelope> net(2);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 4;
  cfg.shard_count = 8;
  std::vector<std::unique_ptr<TS>> stores;
  std::vector<std::unique_ptr<OpRecorder<Reg, std::string>>> recorders;
  for (ProcessId p = 0; p < 2; ++p) {
    stores.push_back(std::make_unique<TS>(Reg{}, p, net, cfg));
    recorders.push_back(std::make_unique<OpRecorder<Reg, std::string>>(
        p, kProducers, /*capacity=*/4096));
    stores[p]->set_recorder(recorders[p].get());
  }

  net.partition({0, 1});  // cross-process traffic held, not dropped
  std::vector<std::thread> producers;
  for (ProcessId p = 0; p < 2; ++p) {
    for (std::size_t c = 0; c < kProducers; ++c) {
      producers.emplace_back([&, p, c] {
        for (std::size_t i = 0; i < kOpsPerProducer; ++i) {
          const std::string k =
              "k" + std::to_string((i + c) % kKeys);
          const std::int64_t v = static_cast<std::int64_t>(
              (p * kProducers + c) * kOpsPerProducer + i + 1);
          stores[p]->update(k, Reg::write(v));
          if (i % 16 == 0) (void)stores[p]->query(k, Reg::read());
        }
        stores[p]->flush();
      });
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_GT(net.held_messages(), 0u);
  net.heal();  // held cross-group traffic released in FIFO order
  EXPECT_EQ(net.held_messages(), 0u);
  for (auto& s : stores) {
    s->drain_until(2 * kProducers * kOpsPerProducer);
  }

  HistoryFile h;
  h.meta.n_processes = 2;
  for (ProcessId p = 0; p < 2; ++p) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      const std::string key = "k" + std::to_string(k);
      recorders[p]->record_final_read(
          key, stores[p]->adt().output(stores[p]->state_of(key),
                                       Reg::read()));
    }
    h.meta.captured += recorders[p]->captured();
    h.meta.dropped += recorders[p]->dropped();
    h.meta.final_reads += recorders[p]->final_reads_recorded();
    append_history_lines(*recorders[p], &h.lines);
  }
  net.close_all();

  EXPECT_EQ(h.meta.dropped, 0u);
  const AuditReport report = audit_history(h);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.uc, Verdict::Yes) << report.summary();
  EXPECT_EQ(report.final_reads, 2 * kKeys);
}

}  // namespace
}  // namespace ucw
