// Loopback integration: a real multi-process cluster, certified.
//
// fork/execs 3 `cluster_node` processes (separate address spaces, real
// UDP datagrams on 127.0.0.1), waits for all of them to converge and
// export their op histories, merges the per-process files in-process,
// and gates on the offline auditor: uc=yes for every key of the merged
// global history. A second case injects real packet loss and reorder so
// the certified run includes gap detection and anti-entropy repair over
// actual sockets.
//
// The cluster_node binary path arrives via the UCW_CLUSTER_NODE_BIN
// compile definition, set only when examples are built — sanitizer CI
// configures -DUCW_BUILD_EXAMPLES=OFF, so these tests GTEST_SKIP there
// (the in-process equivalents in net_udp_test.cpp still run).
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "history/jsonl.hpp"
#include "history/merge.hpp"
#include "test_seeds.hpp"
#include "util/rng.hpp"

namespace ucw {
namespace {

#ifndef UCW_CLUSTER_NODE_BIN

TEST(NetClusterTest, SkippedWithoutExamples) {
  GTEST_SKIP() << "cluster_node not built (UCW_BUILD_EXAMPLES=OFF)";
}

#else

constexpr int kBindFailed = 3;  // cluster_node's "could not bind"

struct NodeSpec {
  int pid = 0;
  std::string history;
};

/// Spawns one cluster_node. Returns the child pid or -1.
pid_t spawn_node(const std::string& bin, const NodeSpec& node,
                 const std::string& peers, std::uint64_t seed, int ops,
                 int keys, double drop, double reorder) {
  const pid_t child = ::fork();
  if (child != 0) return child;
  // Child: exec the node; inherit stdout/stderr (shows in --output-on-failure).
  const std::string a_pid = "--pid=" + std::to_string(node.pid);
  const std::string a_peers = "--peers=" + peers;
  const std::string a_ops = "--ops=" + std::to_string(ops);
  const std::string a_keys = "--keys=" + std::to_string(keys);
  const std::string a_seed = "--seed=" + std::to_string(seed);
  const std::string a_drop = "--drop=" + std::to_string(drop);
  const std::string a_reorder = "--reorder=" + std::to_string(reorder);
  const std::string a_hist = "--history-out=" + node.history;
  ::execl(bin.c_str(), bin.c_str(), a_pid.c_str(), a_peers.c_str(),
          a_ops.c_str(), a_keys.c_str(), a_seed.c_str(), a_drop.c_str(),
          a_reorder.c_str(), a_hist.c_str(), "--timeout-ms=30000",
          static_cast<char*>(nullptr));
  ::_exit(127);  // exec failed
}

/// One cluster attempt at a given base port. Returns the per-node exit
/// codes (empty on spawn failure).
std::vector<int> run_cluster_once(const std::string& bin, int n,
                                  std::uint16_t base_port,
                                  std::vector<NodeSpec>* nodes,
                                  std::uint64_t seed, int ops, int keys,
                                  double drop, double reorder) {
  std::string peers;
  for (int p = 0; p < n; ++p) {
    if (p > 0) peers += ",";
    peers += "127.0.0.1:" + std::to_string(base_port + p);
  }
  std::vector<pid_t> children;
  for (const NodeSpec& node : *nodes) {
    const pid_t c =
        spawn_node(bin, node, peers, seed, ops, keys, drop, reorder);
    if (c < 0) {
      for (const pid_t k : children) ::kill(k, SIGKILL);
      return {};
    }
    children.push_back(c);
  }
  std::vector<int> codes;
  for (const pid_t c : children) {
    int status = 0;
    ::waitpid(c, &status, 0);
    codes.push_back(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
  }
  return codes;
}

/// Full run with port-clash retry; returns true once every node exits 0.
bool run_cluster(const std::string& bin, int n, std::vector<NodeSpec>* nodes,
                 std::uint64_t seed, int ops, int keys, double drop,
                 double reorder) {
  // Different ctest shards pick different bases; retry on bind failure.
  Rng port_rng(static_cast<std::uint64_t>(::getpid()) * 2654435761u + seed);
  for (int attempt = 0; attempt < 5; ++attempt) {
    const auto base = static_cast<std::uint16_t>(
        port_rng.uniform_int(20000, 59000));
    const std::vector<int> codes = run_cluster_once(
        bin, n, base, nodes, seed, ops, keys, drop, reorder);
    if (codes.empty()) return false;
    bool clash = false, all_ok = true;
    for (const int c : codes) {
      clash = clash || c == kBindFailed;
      all_ok = all_ok && c == 0;
    }
    if (all_ok) return true;
    if (!clash) {
      ADD_FAILURE() << "cluster_node exit codes: "
                    << ::testing::PrintToString(codes);
      return false;
    }
  }
  ADD_FAILURE() << "no free port range after 5 attempts";
  return false;
}

/// Loads, merges, and audits the per-node histories.
void merge_and_certify(const std::vector<NodeSpec>& nodes, int n, int ops,
                       int keys) {
  std::vector<HistoryFile> parts;
  for (const NodeSpec& node : nodes) {
    std::ifstream in(node.history);
    ASSERT_TRUE(in.good()) << "missing history " << node.history;
    HistoryFile h;
    std::string err;
    ASSERT_TRUE(read_history_jsonl(in, &h, &err))
        << node.history << ": " << err;
    EXPECT_EQ(h.meta.dropped, 0u) << "recorder overflowed on node "
                                  << node.pid;
    parts.push_back(std::move(h));
  }
  HistoryFile merged;
  std::string err;
  ASSERT_TRUE(merge_histories(parts, &merged, &err)) << err;
  EXPECT_EQ(merged.meta.n_processes, static_cast<std::size_t>(n));
  EXPECT_EQ(merged.meta.captured, static_cast<std::uint64_t>(n) * ops);
  EXPECT_EQ(merged.meta.final_reads,
            static_cast<std::uint64_t>(n) * keys);

  const audit::AuditReport report = audit::audit_history(merged, {});
  EXPECT_TRUE(report.certified())
      << "merged cluster history did not certify: " << report.summary();
}

void cluster_case(std::uint64_t seed, double drop, double reorder) {
  const std::string bin = UCW_CLUSTER_NODE_BIN;
  if (::access(bin.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "cluster_node binary not found at " << bin;
  }
  constexpr int kN = 3;
  constexpr int kOps = 100;
  constexpr int kKeys = 12;
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::vector<NodeSpec> nodes;
  for (int p = 0; p < kN; ++p) {
    nodes.push_back(NodeSpec{
        p, ::testing::TempDir() + "ucw-" + info->name() + "-hist-" +
               std::to_string(p) + "-" + std::to_string(::getpid()) +
               ".jsonl"});
  }
  ASSERT_TRUE(
      run_cluster(bin, kN, &nodes, seed, kOps, kKeys, drop, reorder));
  merge_and_certify(nodes, kN, kOps, kKeys);
  for (const NodeSpec& node : nodes) {
    (void)::unlink(node.history.c_str());
  }
}

TEST(NetClusterTest, ThreeProcessesCleanWireCertifies) {
  const std::uint64_t seed = ucw::test::seed_or(7);
  SCOPED_TRACE(ucw::test::seed_trace(seed));
  cluster_case(seed, /*drop=*/0.0, /*reorder=*/0.0);
}

TEST(NetClusterTest, ThreeProcessesUnderLossCertify) {
  const std::uint64_t seed = ucw::test::seed_or(13);
  SCOPED_TRACE(ucw::test::seed_trace(seed));
  cluster_case(seed, /*drop=*/0.03, /*reorder=*/0.02);
}

#endif  // UCW_CLUSTER_NODE_BIN

}  // namespace
}  // namespace ucw
