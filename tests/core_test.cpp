#include <gtest/gtest.h>

#include <memory>

#include "core/all.hpp"
#include "net/scheduler.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

struct SetCluster {
  SimScheduler scheduler;
  std::unique_ptr<SimNetwork<UpdateMessage<S>>> net;
  std::vector<std::unique_ptr<SimUcObject<S>>> objs;

  explicit SetCluster(std::size_t n, ReplayPolicy policy,
                      LatencyModel latency = LatencyModel::exponential(100.0),
                      std::uint64_t seed = 1, bool fifo = false) {
    typename SimNetwork<UpdateMessage<S>>::Config cfg;
    cfg.n_processes = n;
    cfg.latency = latency;
    cfg.seed = seed;
    cfg.fifo_links = fifo;
    net = std::make_unique<SimNetwork<UpdateMessage<S>>>(scheduler, cfg);
    typename ReplayReplica<S>::Config rcfg;
    rcfg.policy = policy;
    rcfg.snapshot_interval = 4;
    for (ProcessId p = 0; p < n; ++p) {
      objs.push_back(std::make_unique<SimUcObject<S>>(S{}, p, *net, rcfg));
    }
  }
};

class ReplicaPolicyTest : public ::testing::TestWithParam<ReplayPolicy> {};

TEST_P(ReplicaPolicyTest, ConvergesToSameStateOnAllReplicas) {
  SetCluster c(4, GetParam());
  c.objs[0]->update(S::insert(1));
  c.objs[1]->update(S::insert(2));
  c.objs[2]->update(S::remove(1));
  c.objs[3]->update(S::insert(3));
  c.scheduler.run();
  const auto expected = c.objs[0]->query(S::read());
  for (auto& o : c.objs) {
    EXPECT_EQ(o->query(S::read()), expected);
  }
}

TEST_P(ReplicaPolicyTest, LocalUpdateVisibleImmediately) {
  SetCluster c(3, GetParam());
  c.objs[0]->update(S::insert(7));
  // Before the network delivers anywhere: wait-free read sees own write.
  EXPECT_EQ(c.objs[0]->query(S::read()), (IntSet{7}));
  EXPECT_EQ(c.objs[1]->query(S::read()), IntSet{});
}

TEST_P(ReplicaPolicyTest, AgreedOrderIsTimestampOrderNotArrival) {
  // Two concurrent writes; whatever the delivery order, all replicas
  // converge to the state of the (clock, pid)-lexicographic execution.
  SetCluster c(2, GetParam(), LatencyModel::uniform(50.0, 500.0), 42);
  c.objs[0]->update(S::insert(5));
  c.objs[1]->update(S::remove(5));
  c.scheduler.run();
  // Both stamped clock=1; pid 0 < pid 1, so I(5) then D(5): {} wins.
  EXPECT_EQ(c.objs[0]->query(S::read()), IntSet{});
  EXPECT_EQ(c.objs[1]->query(S::read()), IntSet{});
}

TEST_P(ReplicaPolicyTest, ManyRandomOpsAllPoliciesAgree) {
  Rng rng(99);
  SetCluster c(3, GetParam(), LatencyModel::exponential(200.0), 7);
  for (int i = 0; i < 200; ++i) {
    const ProcessId p = static_cast<ProcessId>(rng.uniform_int(0, 2));
    const int v = static_cast<int>(rng.uniform_int(0, 9));
    if (rng.chance(0.6)) {
      c.objs[p]->update(S::insert(v));
    } else {
      c.objs[p]->update(S::remove(v));
    }
    if (rng.chance(0.3)) (void)c.objs[p]->query(S::read());
    c.scheduler.run_until(c.scheduler.now() + 50.0);
  }
  c.scheduler.run();
  const auto expected = c.objs[0]->query(S::read());
  for (auto& o : c.objs) EXPECT_EQ(o->query(S::read()), expected);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplicaPolicyTest,
                         ::testing::Values(ReplayPolicy::NaiveReplay,
                                           ReplayPolicy::CachedPrefix,
                                           ReplayPolicy::Snapshot),
                         [](const auto& info) {
                           return to_string(info.param) == "naive-replay"
                                      ? std::string("Naive")
                                  : to_string(info.param) == "cached-prefix"
                                      ? std::string("Cached")
                                      : std::string("Snapshot");
                         });

TEST(ReplayReplica, PoliciesProduceIdenticalStatesUnderLateMessages) {
  // Same message sequence fed to three replicas differing only in
  // policy; states must agree after every step.
  typename ReplayReplica<S>::Config naive{ReplayPolicy::NaiveReplay, 4};
  typename ReplayReplica<S>::Config cached{ReplayPolicy::CachedPrefix, 4};
  typename ReplayReplica<S>::Config snap{ReplayPolicy::Snapshot, 4};
  ReplayReplica<S> a(S{}, 0, naive), b(S{}, 0, cached), d(S{}, 0, snap);

  Rng rng(5);
  std::vector<UpdateMessage<S>> messages;
  for (int i = 0; i < 60; ++i) {
    const auto stamp = Stamp{static_cast<LogicalTime>(rng.uniform_int(1, 40)),
                             static_cast<ProcessId>(rng.uniform_int(1, 3))};
    const int v = static_cast<int>(rng.uniform_int(0, 5));
    const auto u = rng.chance(0.5) ? S::insert(v) : S::remove(v);
    messages.push_back(UpdateMessage<S>{stamp, u, {}});
  }
  for (const auto& m : messages) {
    a.apply(m.stamp.pid, m);
    b.apply(m.stamp.pid, m);
    d.apply(m.stamp.pid, m);
    EXPECT_EQ(a.query(S::read()), b.query(S::read()));
    EXPECT_EQ(a.query(S::read()), d.query(S::read()));
  }
  EXPECT_GT(b.stats().late_insertions, 0u);
}

TEST(ReplayReplica, NaiveReplaysEveryQuery) {
  ReplayReplica<S> r(S{}, 0, {ReplayPolicy::NaiveReplay, 64});
  auto m1 = r.local_update(S::insert(1));
  r.apply(0, m1);
  (void)r.query(S::read());
  (void)r.query(S::read());
  EXPECT_EQ(r.stats().full_replays, 2u);
  EXPECT_EQ(r.stats().transitions, 2u);
}

TEST(ReplayReplica, CachedPrefixAppliesEachUpdateOnce) {
  ReplayReplica<S> r(S{}, 0, {ReplayPolicy::CachedPrefix, 64});
  for (int i = 0; i < 10; ++i) {
    auto m = r.local_update(S::insert(i));
    r.apply(0, m);
    (void)r.query(S::read());
  }
  // In-order arrivals: exactly one transition per update.
  EXPECT_EQ(r.stats().transitions, 10u);
  EXPECT_EQ(r.stats().late_insertions, 0u);
}

TEST(ReplayReplica, SnapshotRestoreBoundsLateCost) {
  ReplayReplica<S> r(S{}, 5, {ReplayPolicy::Snapshot, 4});
  // 20 in-order updates from a remote peer, then query to build cache.
  for (int i = 1; i <= 20; ++i) {
    r.apply(1, UpdateMessage<S>{Stamp{static_cast<LogicalTime>(10 * i), 1},
                                S::insert(i), {}});
  }
  (void)r.query(S::read());
  const auto before = r.stats().transitions;
  // A straggler lands near the tail (between 18th and 19th update).
  r.apply(2, UpdateMessage<S>{Stamp{185, 2}, S::insert(99), {}});
  (void)r.query(S::read());
  const auto replayed = r.stats().transitions - before;
  // Snapshot every 4: restore at applied=16, replay ≤ 5 + the straggler.
  EXPECT_LE(replayed, 6u);
  EXPECT_EQ(r.stats().snapshot_restores, 1u);
  auto state = r.query(S::read());
  EXPECT_EQ(state.count(99), 1u);
}

TEST(ReplayReplica, DuplicateStampsIgnored) {
  ReplayReplica<S> r(S{}, 0);
  UpdateMessage<S> m{Stamp{5, 1}, S::insert(1), {}};
  r.apply(1, m);
  r.apply(1, m);
  EXPECT_EQ(r.stats().duplicate_updates, 1u);
  EXPECT_EQ(r.log().size(), 1u);
}

TEST(StampedLog, InsertKeepsStampOrder) {
  StampedLog<S> log{S{}};
  EXPECT_EQ(log.insert(Stamp{3, 0}, S::insert(3)), std::optional<std::size_t>(0));
  EXPECT_EQ(log.insert(Stamp{1, 0}, S::insert(1)), std::optional<std::size_t>(0));
  EXPECT_EQ(log.insert(Stamp{2, 0}, S::insert(2)), std::optional<std::size_t>(1));
  EXPECT_EQ(log.insert(Stamp{2, 0}, S::insert(9)), std::nullopt);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.at(0).stamp, (Stamp{1, 0}));
  EXPECT_EQ(log.at(2).stamp, (Stamp{3, 0}));
}

TEST(StampedLog, FoldMovesPrefixIntoBaseState) {
  StampedLog<S> log{S{}};
  (void)log.insert(Stamp{1, 0}, S::insert(1));
  (void)log.insert(Stamp{2, 1}, S::insert(2));
  (void)log.insert(Stamp{5, 0}, S::remove(1));
  EXPECT_EQ(log.fold(S{}, 2), 2u);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.base_state(), (IntSet{1, 2}));
  EXPECT_EQ(log.floor(), 2u);
  // Below-floor arrivals are a protocol violation.
  EXPECT_THROW((void)log.insert(Stamp{1, 1}, S::insert(9)), contract_error);
}

TEST(GarbageCollection, StableLogPrefixFoldsAndStateSurvives) {
  SetCluster c(3, ReplayPolicy::CachedPrefix,
               LatencyModel::constant(10.0), 3, /*fifo=*/true);
  for (auto& o : c.objs) o->replica().enable_stability(3);
  for (int round = 0; round < 10; ++round) {
    for (ProcessId p = 0; p < 3; ++p) {
      c.objs[p]->update(S::insert(round * 3 + static_cast<int>(p)));
    }
    c.scheduler.run();
  }
  std::size_t folded = 0;
  for (auto& o : c.objs) folded += o->replica().collect_garbage();
  EXPECT_GT(folded, 0u);
  // Convergence must survive folding.
  const auto expected = c.objs[0]->query(S::read());
  EXPECT_EQ(expected.size(), 30u);
  for (auto& o : c.objs) {
    EXPECT_EQ(o->query(S::read()), expected);
    EXPECT_LT(o->replica().log().size(), 30u);
  }
}

TEST(GarbageCollection, CrashedProcessBlocksFloorUntilMarked) {
  SetCluster c(3, ReplayPolicy::CachedPrefix,
               LatencyModel::constant(10.0), 3, /*fifo=*/true);
  for (auto& o : c.objs) o->replica().enable_stability(3);
  c.net->crash(2);  // process 2 never acknowledges anything
  for (int i = 0; i < 5; ++i) c.objs[0]->update(S::insert(i));
  c.scheduler.run();
  // Process 1 speaks (stability needs to hear from every live peer —
  // a silent peer pins the floor exactly like a suspected-crashed one).
  c.objs[1]->update(S::insert(99));
  c.scheduler.run();
  EXPECT_EQ(c.objs[0]->replica().collect_garbage(), 0u);
  c.objs[0]->replica().mark_crashed(2);
  c.objs[1]->replica().mark_crashed(2);
  EXPECT_GT(c.objs[0]->replica().collect_garbage(), 0u);
}

TEST(UcMemory, Algorithm2LastWriterWins) {
  SimScheduler sched;
  SimNetwork<MemWriteMessage<std::string, int>>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::uniform(10.0, 100.0);
  cfg.seed = 11;
  SimNetwork<MemWriteMessage<std::string, int>> net(sched, cfg);
  SimUcMemory<std::string, int> m0(0, -1, net), m1(1, -1, net);

  EXPECT_EQ(m0.read("x"), -1);  // initial value
  m0.write("x", 10);
  m1.write("x", 20);  // same clock, higher pid: wins arbitration
  m1.write("y", 7);
  sched.run();
  EXPECT_EQ(m0.read("x"), 20);
  EXPECT_EQ(m1.read("x"), 20);
  EXPECT_EQ(m0.read("y"), 7);
  EXPECT_EQ(m0.replica().cell_count(), 2u);
}

TEST(UcMemory, MemoryBoundedByRegisterCount) {
  SimScheduler sched;
  SimNetwork<MemWriteMessage<std::string, int>>::Config cfg;
  cfg.n_processes = 1;
  SimNetwork<MemWriteMessage<std::string, int>> net(sched, cfg);
  SimUcMemory<std::string, int> m(0, 0, net);
  for (int i = 0; i < 1000; ++i) {
    m.write("r" + std::to_string(i % 4), i);
  }
  sched.run();
  EXPECT_EQ(m.replica().cell_count(), 4u);
  EXPECT_EQ(m.replica().stats().writes, 1000u);
}

TEST(QuorumRegister, WriteThenReadLinearizes) {
  SimScheduler sched;
  SimNetwork<QuorumMessage<int>>::Config cfg;
  cfg.n_processes = 3;
  cfg.latency = LatencyModel::constant(50.0);
  SimNetwork<QuorumMessage<int>> net(sched, cfg);
  std::vector<std::unique_ptr<QuorumRegister<int>>> regs;
  for (ProcessId p = 0; p < 3; ++p) {
    regs.push_back(std::make_unique<QuorumRegister<int>>(p, 0, net));
  }
  double write_done_at = -1;
  regs[0]->write(42, [&] { write_done_at = sched.now(); });
  sched.run();
  // One round trip of 50µs each way.
  EXPECT_GE(write_done_at, 100.0);

  int read_value = -1;
  double read_done_at = -1;
  regs[1]->read([&](int v) {
    read_value = v;
    read_done_at = sched.now();
  });
  sched.run();
  EXPECT_EQ(read_value, 42);
  // Read has two phases: at least two round trips.
  EXPECT_GE(read_done_at - write_done_at, 200.0);
}

TEST(QuorumRegister, OperationLatencyScalesWithNetworkLatency) {
  auto measure = [](double lat) {
    SimScheduler sched;
    SimNetwork<QuorumMessage<int>>::Config cfg;
    cfg.n_processes = 3;
    cfg.latency = LatencyModel::constant(lat);
    SimNetwork<QuorumMessage<int>> net(sched, cfg);
    std::vector<std::unique_ptr<QuorumRegister<int>>> regs;
    for (ProcessId p = 0; p < 3; ++p) {
      regs.push_back(std::make_unique<QuorumRegister<int>>(p, 0, net));
    }
    double done = -1;
    regs[0]->write(1, [&] { done = sched.now(); });
    sched.run();
    return done;
  };
  // Attiya–Welch in action: halving latency halves operation time, while
  // the UC object's operations stay at zero simulated time regardless.
  EXPECT_NEAR(measure(100.0) / measure(50.0), 2.0, 0.01);
}

TEST(Wrappers, UcSetCounterRegisterDocument) {
  SimScheduler sched;

  SimNetwork<UcSet<int>::Message>::Config scfg;
  scfg.n_processes = 2;
  scfg.latency = LatencyModel::constant(5.0);
  SimNetwork<UcSet<int>::Message> snet(sched, scfg);
  UcSet<int> s0(0, snet), s1(1, snet);
  s0.insert(1);
  s1.insert(2);
  sched.run();
  EXPECT_EQ(s0.read(), (IntSet{1, 2}));
  EXPECT_TRUE(s1.contains(1));
  s0.remove(1);
  sched.run();
  EXPECT_FALSE(s1.contains(1));

  SimNetwork<UcCounter::Message>::Config ccfg;
  ccfg.n_processes = 2;
  ccfg.latency = LatencyModel::constant(5.0);
  SimNetwork<UcCounter::Message> cnet(sched, ccfg);
  UcCounter c0(0, cnet), c1(1, cnet);
  c0.increment();
  c1.add(10);
  c1.decrement();
  sched.run();
  EXPECT_EQ(c0.value(), 10);
  EXPECT_EQ(c1.value(), 10);

  SimNetwork<UcRegister<int>::Message>::Config rcfg;
  rcfg.n_processes = 2;
  rcfg.latency = LatencyModel::constant(5.0);
  SimNetwork<UcRegister<int>::Message> rnet(sched, rcfg);
  UcRegister<int> r0(0, rnet, -1), r1(1, rnet, -1);
  EXPECT_EQ(r0.read(), -1);
  r0.write(5);
  r1.write(9);
  sched.run();
  EXPECT_EQ(r0.read(), r1.read());

  SimNetwork<UcDocument::Message>::Config dcfg;
  dcfg.n_processes = 2;
  dcfg.latency = LatencyModel::constant(5.0);
  SimNetwork<UcDocument::Message> dnet(sched, dcfg);
  UcDocument d0(0, dnet), d1(1, dnet);
  d0.insert(0, "hello");
  sched.run();
  d1.insert(5, " world");
  sched.run();
  EXPECT_EQ(d0.text(), "hello world");
  EXPECT_EQ(d1.text(), "hello world");
}

}  // namespace
}  // namespace ucw
