// Failure injection beyond crashes: at-least-once delivery and
// partitions, against both Algorithm 1 (which must absorb everything)
// and the op-based baselines (which visibly cannot absorb duplicates —
// the reason Algorithm 1 keys its log by stamp).
#include <gtest/gtest.h>

#include <memory>

#include "core/all.hpp"
#include "crdt/pn_set.hpp"
#include "crdt/sim_object.hpp"
#include "net/scheduler.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

TEST(AtLeastOnce, Algorithm1AbsorbsDuplicates) {
  SimScheduler scheduler;
  SimNetwork<UpdateMessage<S>>::Config cfg;
  cfg.n_processes = 3;
  cfg.latency = LatencyModel::exponential(150.0);
  cfg.duplicate_probability = 0.5;
  cfg.seed = 8;
  SimNetwork<UpdateMessage<S>> net(scheduler, cfg);
  std::vector<std::unique_ptr<SimUcObject<S>>> objs;
  for (ProcessId p = 0; p < 3; ++p) {
    objs.push_back(std::make_unique<SimUcObject<S>>(S{}, p, net));
  }
  Rng rng(8);
  for (int i = 0; i < 120; ++i) {
    const auto p = static_cast<ProcessId>(rng.uniform_int(0, 2));
    const int v = static_cast<int>(rng.uniform_int(0, 7));
    objs[p]->update(rng.chance(0.6) ? S::insert(v) : S::remove(v));
    scheduler.run_until(scheduler.now() + 30.0);
  }
  scheduler.run();
  EXPECT_GT(net.stats().messages_duplicated, 0u);
  const auto expected = objs[0]->query(S::read());
  std::uint64_t dups = 0;
  for (auto& o : objs) {
    EXPECT_EQ(o->query(S::read()), expected);
    dups += o->replica().stats().duplicate_updates;
  }
  EXPECT_GT(dups, 0u);  // the log-as-set actually did the absorbing
}

TEST(AtLeastOnce, PnSetCountersAreCorruptedByDuplicates) {
  // The PN-Set applies every delivery blindly: a duplicated delta skews
  // the counter at the receiving replica only (self-delivery is never
  // duplicated), so under partial duplication replicas drift apart —
  // demonstrating why op-based CRDTs require exactly-once delivery while
  // Algorithm 1 only needs at-least-once. Across seeds, divergence must
  // occur with duplication on and never without.
  auto diverged = [](double dup, std::uint64_t seed) {
    SimScheduler scheduler;
    SimNetwork<PnSetReplica<int>::Message>::Config cfg;
    cfg.n_processes = 2;
    cfg.latency = LatencyModel::constant(50.0);
    cfg.duplicate_probability = dup;
    cfg.seed = seed;
    SimNetwork<PnSetReplica<int>::Message> net(scheduler, cfg);
    SimCrdtObject<PnSetReplica<int>> a(net, 0), b(net, 1);
    Rng rng(seed);
    for (int i = 0; i < 30; ++i) {
      auto& n = rng.chance(0.5) ? a : b;
      const int v = static_cast<int>(rng.uniform_int(0, 2));
      if (rng.chance(0.55)) {
        n.emit(n->local_insert(v));
      } else {
        n.emit(n->local_remove(v));
      }
    }
    scheduler.run();
    return !(a->read() == b->read());
  };
  int clean_divergences = 0, dup_divergences = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    if (diverged(0.0, seed)) ++clean_divergences;
    if (diverged(0.5, seed)) ++dup_divergences;
  }
  EXPECT_EQ(clean_divergences, 0);
  EXPECT_GT(dup_divergences, 0);
}

TEST(AtLeastOnce, MemoryObjectIdempotentByConstruction) {
  // Algorithm 2's apply keeps the max-stamp cell: naturally idempotent.
  SimScheduler scheduler;
  SimNetwork<MemWriteMessage<std::string, int>>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(20.0);
  cfg.duplicate_probability = 0.8;
  cfg.seed = 2;
  SimNetwork<MemWriteMessage<std::string, int>> net(scheduler, cfg);
  SimUcMemory<std::string, int> a(0, 0, net), b(1, 0, net);
  for (int i = 0; i < 50; ++i) {
    (i % 2 == 0 ? a : b).write("x", i);
    scheduler.run_until(scheduler.now() + 10.0);
  }
  scheduler.run();
  EXPECT_EQ(a.read("x"), b.read("x"));
}

TEST(Partition, BothSidesStayAvailableAndMergeDeterministically) {
  SimScheduler scheduler;
  SimNetwork<UpdateMessage<S>>::Config cfg;
  cfg.n_processes = 4;
  cfg.latency = LatencyModel::constant(100.0);
  cfg.seed = 6;
  SimNetwork<UpdateMessage<S>> net(scheduler, cfg);
  std::vector<std::unique_ptr<SimUcObject<S>>> objs;
  for (ProcessId p = 0; p < 4; ++p) {
    objs.push_back(std::make_unique<SimUcObject<S>>(S{}, p, net));
  }
  net.partition({0, 0, 1, 1}, /*heal_at=*/10'000.0);
  objs[0]->update(S::insert(1));
  objs[2]->update(S::insert(2));
  objs[3]->update(S::remove(1));
  scheduler.run_until(5'000.0);
  // Split brain: each side only sees its own updates — and never blocks.
  EXPECT_EQ(objs[0]->query(S::read()), IntSet{1});
  EXPECT_EQ(objs[2]->query(S::read()), IntSet{2});
  scheduler.run();  // heal + drain
  const auto merged = objs[0]->query(S::read());
  for (auto& o : objs) EXPECT_EQ(o->query(S::read()), merged);
  // D(1) has stamp (1,3) > I(1)'s (1,0): 1 is deleted in the agreed order.
  EXPECT_EQ(merged, IntSet{2});
}

TEST(Partition, QuorumSideWithMinorityBlocksUntilHeal) {
  // The flip side of availability: the linearizable register's minority
  // partition cannot complete operations until the partition heals.
  SimScheduler scheduler;
  SimNetwork<QuorumMessage<int>>::Config cfg;
  cfg.n_processes = 3;
  cfg.latency = LatencyModel::constant(50.0);
  SimNetwork<QuorumMessage<int>> net(scheduler, cfg);
  std::vector<std::unique_ptr<QuorumRegister<int>>> regs;
  for (ProcessId p = 0; p < 3; ++p) {
    regs.push_back(std::make_unique<QuorumRegister<int>>(p, 0, net));
  }
  net.partition({0, 1, 1}, /*heal_at=*/50'000.0);
  double write_done = -1.0;
  regs[0]->write(7, [&] { write_done = scheduler.now(); });  // minority!
  scheduler.run_until(40'000.0);
  EXPECT_LT(write_done, 0.0) << "minority write completed inside partition";
  scheduler.run();
  EXPECT_GE(write_done, 50'000.0);  // only after heal
}

}  // namespace
}  // namespace ucw
