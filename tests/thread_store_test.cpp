// Worker-pool correctness: a pooled ThreadUcStore must be
// indistinguishable, per key, from the single-owner store and from the
// Sim transport. Four layers:
//
//  1. The rings themselves: SPSC (FIFO, wraparound, cross-thread
//     handoff) and MPSC (per-producer FIFO under producer contention,
//     back-pressure when full) — the MPSC per-producer guarantee is
//     what read-your-writes and the stream guard lean on.
//  2. The shard→worker assignment: a pure function of key and config,
//     disjoint across workers and stable across restarts — what lets a
//     restarted process (or any replica of the config) route a key to
//     the same single owner every time.
//  3. Convergence: with insert-only updates the converged per-key state
//     is the set union of everything issued — independent of
//     arbitration order — so a 4-worker cluster, a 1-worker cluster and
//     a Sim cluster fed the *same scripts* must agree exactly, key by
//     key, while the 4-worker run exercises real cross-thread routing,
//     concurrent per-worker flushes and the shared atomic clock.
//  4. The multi-producer frontend: several client threads feeding one
//     pooled store concurrently — per-key states must still match the
//     single-producer and Sim runs, every thread must read its own
//     writes through query(), and a driver thread may tick flush()
//     *while* producers update (the honest-ack barrier at work).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adt/all.hpp"
#include "net/scheduler.hpp"
#include "runtime/keyspace.hpp"
#include "store/all.hpp"
#include "util/mpsc_ring.hpp"
#include "util/rng.hpp"
#include "util/spsc_ring.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using TS = ThreadUcStore<S>;

TEST(SpscRingTest, FifoAndWraparound) {
  SpscRing<int> ring(8);
  for (int round = 0; round < 5; ++round) {  // wraps the index mask
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(ring.try_push(round * 8 + i));
    }
    int overflow = 999;
    EXPECT_FALSE(ring.try_push(std::move(overflow)));  // full: back-pressure
    for (int i = 0; i < 8; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 8 + i);
    }
    EXPECT_FALSE(ring.try_pop().has_value());
    EXPECT_TRUE(ring.empty());
  }
}

TEST(SpscRingTest, CrossThreadHandoffKeepsOrder) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kN = 20'000;
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < kN) {
      if (auto v = ring.try_pop()) {
        ASSERT_EQ(*v, expect);
        ++expect;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::uint64_t i = 0; i < kN; ++i) {
    std::uint64_t v = i;
    while (!ring.try_push(std::move(v))) std::this_thread::yield();
  }
  consumer.join();
}

TEST(MpscRingTest, FifoAndBackpressureSingleProducer) {
  // Degenerate single-producer use behaves like the SPSC ring.
  MpscRing<int> ring(8);
  for (int round = 0; round < 5; ++round) {  // wraps the slot sequences
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(ring.try_push(round * 8 + i));
    }
    int overflow = 999;
    EXPECT_FALSE(ring.try_push(std::move(overflow)));  // full: back-pressure
    for (int i = 0; i < 8; ++i) {
      auto v = ring.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, round * 8 + i);
    }
    EXPECT_FALSE(ring.try_pop().has_value());
    EXPECT_TRUE(ring.empty());
  }
}

TEST(MpscRingTest, PerProducerFifoUnderContention) {
  // 4 producers race pushes of (producer, seq) pairs through a small
  // ring (forcing wraparound and back-pressure); the consumer must see
  // each producer's sequence strictly in order — the property the
  // pooled store's read-your-writes and stream-guard reasoning rest on.
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 10'000;
  MpscRing<std::uint64_t> ring(64);
  std::thread consumer([&] {
    std::vector<std::uint64_t> next(kProducers, 0);
    std::uint64_t popped = 0;
    while (popped < kProducers * kPerProducer) {
      if (auto v = ring.try_pop()) {
        const std::uint64_t p = *v >> 32;
        const std::uint64_t seq = *v & 0xffffffffu;
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
        ++next[p];
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        std::uint64_t v = (p << 32) | i;
        while (!ring.try_push(std::move(v))) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(ring.pushed(), kProducers * kPerProducer);
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRingTest, PushNIsAllOrNothing) {
  // A multi-slot claim either lands whole or not at all: with 5 of 8
  // slots taken, a 4-slot push must fail without writing anything, and
  // the ring must still drain exactly the 5 singles in order.
  MpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  std::vector<int> batch = {100, 101, 102, 103};
  EXPECT_FALSE(ring.try_push_n(batch.data(), batch.size()));
  std::vector<int> out;
  EXPECT_EQ(ring.try_pop_n(out, 8), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(ring.empty());
  // With room, the same batch lands whole and in order.
  EXPECT_TRUE(ring.try_push_n(batch.data(), batch.size()));
  out.clear();
  EXPECT_EQ(ring.try_pop_n(out, 8), 4u);
  EXPECT_EQ(out, (std::vector<int>{100, 101, 102, 103}));
}

TEST(MpscRingTest, MultiSlotClaimsKeepPerProducerFifo) {
  // 3 producers race a mix of single pushes and 4-slot batched claims
  // of (producer, seq) pairs through a small ring (wraparound + back-
  // pressure); the consumer drains in blocks with try_pop_n. Each
  // producer's sequence must still come out strictly in order — the
  // multi-slot extension of the per-producer FIFO guarantee that
  // read-your-writes and the ack-honesty protocol lean on.
  constexpr std::uint64_t kProducers = 3;
  constexpr std::uint64_t kPerProducer = 12'000;
  constexpr std::size_t kBatch = 4;
  MpscRing<std::uint64_t> ring(64);
  std::thread consumer([&] {
    std::vector<std::uint64_t> next(kProducers, 0);
    std::uint64_t popped = 0;
    std::vector<std::uint64_t> block;
    while (popped < kProducers * kPerProducer) {
      block.clear();
      const std::size_t got = ring.try_pop_n(block, 32);
      if (got == 0) {
        std::this_thread::yield();
        continue;
      }
      for (const std::uint64_t v : block) {
        const std::uint64_t p = v >> 32;
        const std::uint64_t seq = v & 0xffffffffu;
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(seq, next[p]) << "producer " << p << " reordered";
        ++next[p];
      }
      popped += got;
    }
  });
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::uint64_t seq = 0;
      while (seq < kPerProducer) {
        if (seq % (2 * kBatch) < kBatch &&
            seq + kBatch <= kPerProducer) {
          std::uint64_t vals[kBatch];
          for (std::size_t i = 0; i < kBatch; ++i) {
            vals[i] = (p << 32) | (seq + i);
          }
          // A failed claim takes no slots and moves nothing — the
          // same vals retry untouched.
          while (!ring.try_push_n(vals, kBatch)) {
            std::this_thread::yield();
          }
          seq += kBatch;
        } else {
          std::uint64_t v = (p << 32) | seq;
          while (!ring.try_push(std::move(v))) std::this_thread::yield();
          ++seq;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(ring.pushed(), kProducers * kPerProducer);
  EXPECT_TRUE(ring.empty());
}

TEST(WorkerPoolTest, ShardToWorkerAssignmentIsStableAcrossRestarts) {
  StoreConfig cfg;
  cfg.workers = 4;
  cfg.shard_count = 16;
  std::vector<std::size_t> first;
  {
    ThreadNetwork<TS::Envelope> net(1);
    TS store(S{}, 0, net, cfg);
    for (int i = 0; i < 200; ++i) {
      first.push_back(store.worker_of("key" + std::to_string(i)));
    }
    net.close_all();
  }
  // A "restarted" process: fresh network, fresh store, same config —
  // every key must land on the same worker as before the restart.
  {
    ThreadNetwork<TS::Envelope> net(1);
    TS store(S{}, 0, net, cfg);
    std::set<std::size_t> workers_used;
    for (int i = 0; i < 200; ++i) {
      const std::string k = "key" + std::to_string(i);
      EXPECT_EQ(store.worker_of(k), first[static_cast<std::size_t>(i)]) << k;
      EXPECT_EQ(store.worker_of(k), store.shard_index(k) % cfg.workers);
      workers_used.insert(store.worker_of(k));
    }
    // 200 keys over 16 shards: every worker owns some of the traffic.
    EXPECT_EQ(workers_used.size(), cfg.workers);
    net.close_all();
  }
}

TEST(WorkerPoolTest, PooledStoreReadsItsOwnWrites) {
  StoreConfig cfg;
  cfg.workers = 4;
  cfg.batch_window = 64;  // nothing ships on its own
  ThreadNetwork<TS::Envelope> net(1);
  TS store(S{}, 0, net, cfg);
  // Ring FIFO per worker: the query enqueues behind the update, so the
  // owner still reads its own writes even though apply is asynchronous.
  for (int i = 0; i < 32; ++i) {
    const std::string k = "k" + std::to_string(i % 8);
    store.update(k, S::insert(i));
    const auto got = store.query(k, S::read());
    EXPECT_TRUE(got.count(i)) << "update " << i << " not visible to owner";
  }
  net.close_all();
}

// ----- the convergence property ---------------------------------------

struct ScriptOp {
  std::string key;
  int value;
};

/// Fixed per-process op scripts (zipfian keys, globally distinct
/// values): insert-only, so every correct run converges to the same
/// per-key union regardless of transport, worker count, or timing.
std::vector<std::vector<ScriptOp>> make_scripts(std::size_t n_procs,
                                                std::size_t ops) {
  ZipfianKeys keyspace(64, 0.99);
  std::vector<std::vector<ScriptOp>> scripts(n_procs);
  for (ProcessId p = 0; p < n_procs; ++p) {
    Rng rng(1000 + p);
    for (std::size_t i = 0; i < ops; ++i) {
      scripts[p].push_back(ScriptOp{
          keyspace.sample(rng), static_cast<int>(p * ops + i)});
    }
  }
  return scripts;
}

std::set<std::string> script_keys(
    const std::vector<std::vector<ScriptOp>>& scripts) {
  std::set<std::string> keys;
  for (const auto& s : scripts) {
    for (const auto& op : s) keys.insert(op.key);
  }
  return keys;
}

using KeyStates = std::map<std::string, std::set<int>>;

/// Runs the scripts on a thread-transport cluster and returns the
/// converged states — asserting every store agrees before returning
/// store 0's view. `producers` client threads per store split that
/// store's script round-robin (producers == 1 is the classic one owner
/// thread per process); with several producers the run exercises
/// concurrent stamping from the atomic clock, racing MPSC pushes, and
/// a flush() ticking *while* producers update. `batched` routes each
/// producer's ops through update_batch() in groups of 5 instead of
/// one update() per op — same scripts, so the converged states must be
/// identical whether ops rode single ring claims or multi-slot ones.
KeyStates run_thread_cluster(const std::vector<std::vector<ScriptOp>>& scripts,
                             std::size_t workers, std::size_t producers = 1,
                             bool batched = false) {
  const std::size_t n = scripts.size();
  ThreadNetwork<TS::Envelope> net(n);
  StoreConfig cfg;
  cfg.workers = workers;
  cfg.batch_window = 8;
  cfg.shard_count = 16;
  std::vector<std::unique_ptr<TS>> stores;
  std::uint64_t total = 0;
  for (ProcessId p = 0; p < n; ++p) {
    stores.push_back(std::make_unique<TS>(S{}, p, net, cfg));
    total += scripts[p].size();
  }
  std::vector<std::thread> owners;
  for (ProcessId p = 0; p < n; ++p) {
    for (std::size_t c = 0; c < producers; ++c) {
      owners.emplace_back([&, p, c] {
        std::vector<std::pair<std::string, S::Update>> ops;
        for (std::size_t i = c; i < scripts[p].size(); i += producers) {
          if (batched) {
            ops.emplace_back(scripts[p][i].key,
                             S::insert(scripts[p][i].value));
            if (ops.size() == 5) (void)stores[p]->update_batch(ops);
          } else {
            stores[p]->update(scripts[p][i].key,
                              S::insert(scripts[p][i].value));
          }
        }
        if (!ops.empty()) (void)stores[p]->update_batch(ops);
        stores[p]->flush();
      });
    }
  }
  for (auto& t : owners) t.join();
  for (auto& s : stores) s->drain_until(total);
  KeyStates out;
  for (const std::string& k : script_keys(scripts)) {
    out[k] = stores[0]->state_of(k);
    for (ProcessId p = 1; p < n; ++p) {
      EXPECT_EQ(stores[p]->state_of(k), out[k])
          << "store " << p << " diverged on " << k << " at " << workers
          << " workers / " << producers << " producers";
    }
  }
  net.close_all();
  return out;
}

/// The same scripts on the deterministic Sim transport.
KeyStates run_sim_cluster(const std::vector<std::vector<ScriptOp>>& scripts) {
  const std::size_t n = scripts.size();
  SimScheduler sched;
  typename SimNetwork<SimUcStore<S>::Envelope>::Config net_cfg;
  net_cfg.n_processes = n;
  net_cfg.latency = LatencyModel::constant(10.0);
  net_cfg.seed = 7;
  SimNetwork<SimUcStore<S>::Envelope> net(sched, net_cfg);
  StoreConfig cfg;
  cfg.batch_window = 8;
  cfg.shard_count = 16;
  std::vector<std::unique_ptr<SimUcStore<S>>> stores;
  for (ProcessId p = 0; p < n; ++p) {
    stores.push_back(std::make_unique<SimUcStore<S>>(S{}, p, net, cfg));
  }
  std::size_t longest = 0;
  for (const auto& s : scripts) longest = std::max(longest, s.size());
  for (std::size_t i = 0; i < longest; ++i) {
    for (ProcessId p = 0; p < n; ++p) {
      if (i < scripts[p].size()) {
        stores[p]->update(scripts[p][i].key,
                          S::insert(scripts[p][i].value));
      }
    }
  }
  for (auto& s : stores) (void)s->flush();
  sched.run();
  KeyStates out;
  for (const std::string& k : script_keys(scripts)) {
    out[k] = stores[0]->state_of(k);
    for (ProcessId p = 1; p < n; ++p) {
      EXPECT_EQ(stores[p]->state_of(k), out[k])
          << "sim store " << p << " diverged on " << k;
    }
  }
  return out;
}

TEST(WorkerPoolTest, FourWorkerRunMatchesSingleWorkerAndSim) {
  const auto scripts = make_scripts(/*n_procs=*/3, /*ops=*/150);
  const KeyStates four = run_thread_cluster(scripts, /*workers=*/4);
  const KeyStates one = run_thread_cluster(scripts, /*workers=*/1);
  const KeyStates sim = run_sim_cluster(scripts);
  EXPECT_EQ(four, one) << "4-worker pool diverged from single-owner";
  EXPECT_EQ(four, sim) << "4-worker pool diverged from Sim baseline";
}

TEST(MultiProducerTest, FourProducersMatchSingleProducerAndSim) {
  // The multi-producer acceptance property: 4 client threads × 4
  // workers per store — concurrent stamping, racing MPSC pushes, four
  // concurrent flush() ticks at script end — must land every replica in
  // exactly the per-key states of the 1-producer × 1-worker run and the
  // deterministic Sim run of the same scripts.
  const auto scripts = make_scripts(/*n_procs=*/3, /*ops=*/200);
  const KeyStates multi =
      run_thread_cluster(scripts, /*workers=*/4, /*producers=*/4);
  const KeyStates single =
      run_thread_cluster(scripts, /*workers=*/1, /*producers=*/1);
  const KeyStates sim = run_sim_cluster(scripts);
  EXPECT_EQ(multi, single)
      << "4-producer/4-worker frontend diverged from single-owner";
  EXPECT_EQ(multi, sim)
      << "4-producer/4-worker frontend diverged from Sim baseline";
}

TEST(MultiProducerTest, EveryProducerThreadReadsItsOwnWrites) {
  // query() rides the owning worker's ring FIFO behind the calling
  // thread's own updates, so read-your-writes holds *per client
  // thread* even while other producers hammer the same keys and a
  // driver thread ticks flush() concurrently.
  constexpr std::size_t kProducers = 4;
  constexpr int kOpsPerProducer = 200;
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 4;
  cfg.batch_window = 16;
  cfg.shard_count = 8;
  TS store(S{}, 0, net, cfg);
  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    while (!stop_flusher.load(std::memory_order_acquire)) {
      (void)store.flush();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> producers;
  for (std::size_t c = 0; c < kProducers; ++c) {
    producers.emplace_back([&, c] {
      for (int i = 0; i < kOpsPerProducer; ++i) {
        const std::string k = "k" + std::to_string(i % 8);
        const int v = static_cast<int>(c) * kOpsPerProducer + i;
        store.update(k, S::insert(v));
        const auto got = store.query(k, S::read());
        EXPECT_TRUE(got.count(v))
            << "producer " << c << " lost its own write " << v;
      }
    });
  }
  for (auto& t : producers) t.join();
  stop_flusher.store(true, std::memory_order_release);
  flusher.join();
  net.close_all();
}

TEST(WorkerPoolTest, PooledCountersConvergeUnderConcurrency) {
  // The counter twin of the set test: total across keys must equal the
  // number of updates issued (no entry lost or double-applied on any
  // replica), with per-worker flushes racing the owner threads.
  using C = CounterAdt;
  using TC = ThreadUcStore<C>;
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kOpsPerThread = 300;
  ThreadNetwork<TC::Envelope> net(kThreads);
  StoreConfig cfg;
  cfg.workers = 4;
  cfg.batch_window = 8;
  std::vector<std::unique_ptr<TC>> stores;
  for (ProcessId p = 0; p < kThreads; ++p) {
    stores.push_back(std::make_unique<TC>(C{}, p, net, cfg));
  }
  std::vector<std::thread> owners;
  for (ProcessId p = 0; p < kThreads; ++p) {
    owners.emplace_back([&, p] {
      Rng rng(100 + p);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        stores[p]->update("k" + std::to_string(rng.uniform_int(0, 9)),
                          C::add(1));
      }
      stores[p]->flush();
    });
  }
  for (auto& t : owners) t.join();
  constexpr std::uint64_t kTotal = kThreads * kOpsPerThread;
  for (auto& s : stores) s->drain_until(kTotal);
  std::int64_t sum0 = 0;
  for (int k = 0; k < 10; ++k) {
    sum0 += stores[0]->state_of("k" + std::to_string(k));
  }
  EXPECT_EQ(sum0, static_cast<std::int64_t>(kTotal));
  for (ProcessId p = 1; p < kThreads; ++p) {
    for (int k = 0; k < 10; ++k) {
      const std::string key = "k" + std::to_string(k);
      EXPECT_EQ(stores[p]->state_of(key), stores[0]->state_of(key))
          << "replica " << p << " diverged on " << key;
    }
  }
  net.close_all();
}

TEST(WorkerPoolTest, PooledStoreFoldsWithStabilityOnTheRouter) {
  // GC on a pooled store: acks and the floor stay router-side, the fold
  // runs against quiesced engines on the flush tick — the pooled twin
  // of StoreGcTest.ThreadTransportFoldsWithPiggybackedAcks. Keys spread
  // across shards owned by *different* workers, because that is where
  // the FIFO-honesty of acks is at stake: one worker's window-full
  // envelope must never vouch for a stamp still buffered in the other
  // worker (pooled envelopes ship ack_clock = 0; only the router
  // heartbeat — issued after flush_all + quiesce — carries the ack),
  // or the receiver would fold past the in-flight entry and absorb it
  // below the floor.
  ThreadNetwork<TS::Envelope> net(2);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 2;  // small windows: workers flush independently
  cfg.shard_count = 8;
  cfg.gc = true;
  TS a(S{}, 0, net, cfg);
  TS b(S{}, 1, net, cfg);
  constexpr int kRounds = 12;
  constexpr int kKeys = 8;
  for (int r = 0; r < kRounds; ++r) {
    for (int k = 0; k < kKeys; ++k) {
      a.update("k" + std::to_string(k), S::insert(r));
    }
    (void)a.flush();
    (void)b.poll();
    (void)b.flush();  // ack heartbeat back to the updater
    (void)a.poll();
    (void)a.flush();  // hears the ack, folds its engines
  }
  // Quiescence barriers before reading: drain everything in flight.
  a.drain_until(kRounds * kKeys);
  b.drain_until(kRounds * kKeys);
  EXPECT_GT(a.stats().gc_folded, 0u);
  EXPECT_GT(b.stats().acks_sent, 0u);
  // No entry was folded over while in flight: every key converged.
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(a.state_of(key), b.state_of(key)) << key;
  }
  net.close_all();
}

TEST(MultiProducerTest, BatchedUpdatesMatchSinglesAndSim) {
  // update_batch() is a transparent accelerant: the same scripts pushed
  // through multi-slot ring claims (4 producers × 4 workers, groups of
  // 5 spanning worker boundaries) must converge to exactly the states
  // of the single-update run and the deterministic Sim run.
  const auto scripts = make_scripts(/*n_procs=*/3, /*ops=*/200);
  const KeyStates batched = run_thread_cluster(
      scripts, /*workers=*/4, /*producers=*/4, /*batched=*/true);
  const KeyStates singles =
      run_thread_cluster(scripts, /*workers=*/4, /*producers=*/4);
  const KeyStates sim = run_sim_cluster(scripts);
  EXPECT_EQ(batched, singles)
      << "batched claims diverged from single-claim updates";
  EXPECT_EQ(batched, sim) << "batched claims diverged from Sim baseline";
}

TEST(WorkerPoolTest, ShardedDeliveryBypassesTheRouterLock) {
  // The delivery-rework acceptance check: on the default path every
  // remote entry reaches its owning worker through that worker's
  // remote inbox (inbox_deliveries) and the router-locked fan-out is
  // never taken (router_deliveries == 0). The comparison arm flips
  // both counters — and both arms converge to the same states.
  auto run = [](bool router_delivery) {
    ThreadNetwork<TS::Envelope> net(2);
    StoreConfig cfg;
    cfg.workers = 2;
    cfg.batch_window = 4;
    cfg.shard_count = 8;
    cfg.router_delivery = router_delivery;
    TS a(S{}, 0, net, cfg);
    TS b(S{}, 1, net, cfg);
    constexpr int kOps = 200;
    for (int i = 0; i < kOps; ++i) {
      a.update("k" + std::to_string(i % 16), S::insert(i));
      b.update("k" + std::to_string(i % 16), S::insert(kOps + i));
    }
    (void)a.flush();
    (void)b.flush();
    a.drain_until(2 * kOps);
    b.drain_until(2 * kOps);
    KeyStates out;
    for (int k = 0; k < 16; ++k) {
      const std::string key = "k" + std::to_string(k);
      EXPECT_EQ(a.state_of(key), b.state_of(key)) << key;
      out[key] = a.state_of(key);
    }
    const StoreStats sa = a.stats();
    if (router_delivery) {
      EXPECT_GT(sa.router_deliveries, 0u);
      EXPECT_EQ(sa.inbox_deliveries, 0u);
    } else {
      EXPECT_GT(sa.inbox_deliveries, 0u);
      EXPECT_EQ(sa.router_deliveries, 0u);
    }
    net.close_all();
    return out;
  };
  EXPECT_EQ(run(false), run(true))
      << "sharded and router-locked delivery disagreed on final states";
}

TEST(WorkerPoolTest, BatchedClaimsKeepAcksHonestUnderGc) {
  // The batched twin of PooledStoreFoldsWithStabilityOnTheRouter: a
  // multi-slot claim holds the batch's smallest stamp in the claim
  // slot from before the first push until every op lands, so a
  // concurrent flush's ack can never vouch for a stamp still sitting
  // in a half-landed batch. If the barrier lied, the receiver would
  // fold its floor past an in-flight entry and the replicas would
  // diverge permanently — exactly what this asserts cannot happen.
  ThreadNetwork<TS::Envelope> net(2);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 2;
  cfg.shard_count = 8;
  cfg.gc = true;
  TS a(S{}, 0, net, cfg);
  TS b(S{}, 1, net, cfg);
  constexpr int kRounds = 12;
  constexpr int kKeys = 8;
  std::vector<std::pair<std::string, S::Update>> batch;
  for (int r = 0; r < kRounds; ++r) {
    // One batch spanning all keys — it straddles both workers, so the
    // claim-slot barrier is what keeps the concurrent per-worker
    // flushes from acking ahead of the unlanded remainder.
    for (int k = 0; k < kKeys; ++k) {
      batch.emplace_back("k" + std::to_string(k), S::insert(r));
    }
    (void)a.update_batch(batch);
    (void)a.flush();
    (void)b.poll();
    (void)b.flush();  // ack heartbeat back to the updater
    (void)a.poll();
    (void)a.flush();  // hears the ack, folds its engines
  }
  a.drain_until(kRounds * kKeys);
  b.drain_until(kRounds * kKeys);
  EXPECT_GT(a.stats().gc_folded, 0u);
  EXPECT_GT(a.stats().ring_batch_claims, 0u);
  EXPECT_EQ(a.stats().ring_batch_ops,
            static_cast<std::uint64_t>(kRounds * kKeys));
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(a.state_of(key), b.state_of(key)) << key;
  }
  net.close_all();
}

TEST(MultiProducerTest, GetHonorsReadYourWritesViaTickets) {
  // get() must never serve a published view that is missing the
  // calling thread's own writes: the per-producer ring-position ticket
  // gates the fast path, and a view that has not caught up falls back
  // to the ring round trip (counted in ryw_ring_fallbacks). The loop
  // alternates update/get on one hot key — every get must contain the
  // value written the line before, no matter which path answered.
  ThreadNetwork<TS::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 64;  // nothing ships on its own
  TS store(S{}, 0, net, cfg);
  store.update("hot", S::insert(-1));
  (void)store.get("hot", S::read());  // cold get: promotes
  constexpr int kOps = 2'000;
  for (int i = 0; i < kOps; ++i) {
    store.update("hot", S::insert(i));
    const auto got = store.get("hot", S::read());
    ASSERT_TRUE(got.count(i)) << "get() served a stale view at op " << i;
  }
  const StoreStats s = store.stats();
  // Both paths answered some reads: ticket-gated published fast paths
  // and ring fallbacks for views that lagged the caller's ticket. (A
  // scheduler that always lets the worker win would zero the
  // fallbacks, but over 2000 immediate update→get pairs at least one
  // lagging view is a practical certainty on any host.)
  EXPECT_GT(s.ryw_ring_fallbacks, 0u);
  EXPECT_EQ(s.published_reads + s.ring_reads,
            static_cast<std::uint64_t>(kOps) + 1);
  net.close_all();
}

}  // namespace
}  // namespace ucw
