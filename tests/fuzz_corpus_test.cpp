// Certify the certifier: every mutation-corpus mutant — a deliberately
// broken store variant perverting one documented invariant — must be
// caught by the black-box auditor on its gated seeds, the clean control
// must never be refuted on those same schedules, and every refuted
// run's shrunk counterexample must be 1-minimal when re-verified
// atom-by-atom (drop any fault event or any single op and the failure
// vanishes). This is the in-tree half of the ucfuzz campaign gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "audit/scenario.hpp"
#include "audit/shrink.hpp"
#include "faults/fault_spec.hpp"

namespace ucw {
namespace {

using audit::ScenarioShape;
using audit::ScenarioSpec;
using audit::ShrinkOptions;

/// The schedule shape a mutant's FaultInfo asks for (same mapping the
/// ucfuzz driver uses): recovery mutants get a guaranteed
/// crash/restart, relay mutants a three-way cut.
ScenarioSpec shaped_scenario(std::uint64_t seed, const FaultInfo& info) {
  ScenarioShape shape;
  shape.fault = info.name;
  shape.force_crash_restart = info.wants_restart;
  shape.three_way = info.wants_three_way;
  return audit::random_fault_scenario(seed, shape);
}

bool is_failing(const ScenarioSpec& s) {
  return audit::run_scenario(s).audit.refuted();
}

TEST(FaultCorpusTest, CorpusIsDocumentedAndRoundTrips) {
  const auto& corpus = fault_corpus();
  ASSERT_GE(corpus.size(), 8u);
  for (const FaultInfo& info : corpus) {
    const std::string name = info.name;
    EXPECT_NE(info.fault, Fault::kNone) << name;
    EXPECT_FALSE(name.empty());
    EXPECT_FALSE(std::string(info.invariant).empty()) << name;
    EXPECT_FALSE(std::string(info.summary).empty()) << name;
    EXPECT_FALSE(info.gated_seeds.empty())
        << name << ": every mutant needs curated gated seeds";
    // Wire name round-trip: the name in a scenario/history file resolves
    // back to the same fault.
    Fault parsed = Fault::kNone;
    ASSERT_TRUE(fault_from_name(name, &parsed)) << name;
    EXPECT_EQ(parsed, info.fault);
    EXPECT_EQ(to_string(info.fault), name);
    // Names are unique.
    for (const FaultInfo& other : corpus) {
      if (&other != &info) {
        EXPECT_NE(std::string(other.name), name);
      }
    }
  }
  Fault none = Fault::kLwwTieSkew;
  EXPECT_TRUE(fault_from_name("none", &none));
  EXPECT_EQ(none, Fault::kNone);
  EXPECT_FALSE(fault_from_name("no_such_mutant", &none));
}

TEST(FaultCorpusTest, EveryGatedSeedDetectsItsMutant) {
  for (const FaultInfo& info : fault_corpus()) {
    for (const std::uint64_t seed : info.gated_seeds) {
      SCOPED_TRACE(std::string(info.name) + " seed " +
                   std::to_string(seed));
      const auto result = audit::run_scenario(shaped_scenario(seed, info));
      // Detection = the auditor does NOT certify (refuted, or an honest
      // "unknown" refusal); a certified broken store is a missed bug.
      EXPECT_FALSE(result.audit.certified())
          << "mutant survived certification";
    }
  }
}

TEST(FaultCorpusTest, CleanControlIsNeverRefutedOnGatedSchedules) {
  // The same shaped schedules with the fault switched off: a refutation
  // here is a false positive of the auditor itself, and the fuzz
  // campaign's clean-arm gate demands exactly zero of them.
  for (const FaultInfo& info : fault_corpus()) {
    for (const std::uint64_t seed : info.gated_seeds) {
      SCOPED_TRACE(std::string(info.name) + " seed " +
                   std::to_string(seed) + " (clean control)");
      ScenarioSpec spec = shaped_scenario(seed, info);
      spec.fault = "none";
      const auto result = audit::run_scenario(spec);
      EXPECT_FALSE(result.audit.refuted())
          << "clean store refuted — auditor false positive";
    }
  }
}

TEST(FaultCorpusTest, ShrunkCounterexamplesAreOneMinimalForEveryMutant) {
  // For each mutant that refutes (not merely "unknown") on a gated
  // seed: shrink it, then re-verify 1-minimality atom by atom — the
  // independent fixpoint check, run across the whole corpus rather
  // than the single hand-built scenario of audit_test.
  std::size_t shrunk = 0;
  for (const FaultInfo& info : fault_corpus()) {
    ScenarioSpec failing;
    bool found = false;
    for (const std::uint64_t seed : info.gated_seeds) {
      ScenarioSpec cand = shaped_scenario(seed, info);
      if (is_failing(cand)) {
        failing = cand;
        found = true;
        break;
      }
    }
    if (!found) continue;  // detected via "unknown" only — nothing to shrink
    SCOPED_TRACE(std::string(info.name) + " seed " +
                 std::to_string(failing.seed));

    ShrinkOptions opt;
    const auto result = audit::shrink_scenario(failing, is_failing, opt);
    EXPECT_TRUE(result.minimal) << "shrink budget exhausted";
    EXPECT_TRUE(is_failing(result.spec)) << "shrunk spec no longer fails";
    ++shrunk;

    for (std::size_t i = 0; i < result.spec.partitions.size(); ++i) {
      ScenarioSpec cand = result.spec;
      cand.partitions.erase(cand.partitions.begin() +
                            static_cast<std::ptrdiff_t>(i));
      EXPECT_FALSE(is_failing(cand)) << "partition " << i << " removable";
    }
    for (std::size_t i = 0; i < result.spec.crashes.size(); ++i) {
      ScenarioSpec cand = result.spec;
      cand.crashes.erase(cand.crashes.begin() +
                         static_cast<std::ptrdiff_t>(i));
      EXPECT_FALSE(is_failing(cand)) << "crash " << i << " removable";
    }
    for (std::size_t i = 0; i < result.spec.restarts.size(); ++i) {
      ScenarioSpec cand = result.spec;
      cand.restarts.erase(cand.restarts.begin() +
                          static_cast<std::ptrdiff_t>(i));
      EXPECT_FALSE(is_failing(cand)) << "restart " << i << " removable";
    }
    for (std::size_t p = 0; p < result.spec.ops_per_process.size(); ++p) {
      if (result.spec.ops_per_process[p] == 0) continue;
      ScenarioSpec cand = result.spec;
      --cand.ops_per_process[p];
      EXPECT_FALSE(is_failing(cand)) << "op of process " << p
                                     << " removable";
    }
  }
  // At least one mutant in the corpus refutes outright (the corpus
  // would be toothless if every detection were an "unknown" refusal).
  EXPECT_GT(shrunk, 0u);
}

}  // namespace
}  // namespace ucw
