#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/scheduler.hpp"
#include "net/sim_network.hpp"
#include "net/thread_network.hpp"

namespace ucw {
namespace {

TEST(SimScheduler, ExecutesInTimeOrder) {
  SimScheduler s;
  std::vector<int> order;
  s.at(30.0, [&] { order.push_back(3); });
  s.at(10.0, [&] { order.push_back(1); });
  s.at(20.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 30.0);
}

TEST(SimScheduler, TiesBreakByInsertionOrder) {
  SimScheduler s;
  std::vector<int> order;
  s.at(5.0, [&] { order.push_back(1); });
  s.at(5.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimScheduler, ActionsMayScheduleMore) {
  SimScheduler s;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) s.after(1.0, chain);
  };
  s.after(1.0, chain);
  s.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(SimScheduler, RunUntilStopsAtBoundary) {
  SimScheduler s;
  int fired = 0;
  s.at(1.0, [&] { ++fired; });
  s.at(2.0, [&] { ++fired; });
  s.at(3.0, [&] { ++fired; });
  EXPECT_EQ(s.run_until(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SimScheduler, RejectsPastScheduling) {
  SimScheduler s;
  s.at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.at(1.0, [] {}), contract_error);
}

TEST(LatencyModel, SamplesWithinBounds) {
  Rng rng(1);
  auto m = LatencyModel::uniform(10.0, 20.0);
  for (int i = 0; i < 100; ++i) {
    const double v = m.sample(rng);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
  }
  EXPECT_DOUBLE_EQ(LatencyModel::constant(7.0).sample(rng), 7.0);
  EXPECT_DOUBLE_EQ(LatencyModel::constant(7.0).mean(), 7.0);
  EXPECT_NEAR(LatencyModel::uniform(0, 10).mean(), 5.0, 1e-9);
}

TEST(SimNetwork, BroadcastReachesEveryoneOnce) {
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 4;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<int> net(sched, cfg);
  std::vector<int> received(4, 0);
  for (ProcessId p = 0; p < 4; ++p) {
    net.set_handler(p, [&received, p](ProcessId, const int&) {
      ++received[p];
    });
  }
  net.broadcast(0, 42);
  EXPECT_EQ(received[0], 1);  // self-delivery is synchronous
  sched.run();
  EXPECT_EQ(received, (std::vector<int>{1, 1, 1, 1}));
  EXPECT_EQ(net.stats().broadcasts, 1u);
  EXPECT_EQ(net.stats().messages_sent, 3u);
  EXPECT_EQ(net.stats().messages_delivered, 4u);
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    SimScheduler sched;
    SimNetwork<int>::Config cfg;
    cfg.n_processes = 3;
    cfg.latency = LatencyModel::exponential(100.0);
    cfg.seed = seed;
    SimNetwork<int> net(sched, cfg);
    std::vector<std::pair<double, int>> log;
    for (ProcessId p = 0; p < 3; ++p) {
      net.set_handler(p, [&](ProcessId, const int& m) {
        log.emplace_back(sched.now(), m);
      });
    }
    for (int i = 0; i < 10; ++i) net.broadcast(0, i);
    sched.run();
    return log;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(SimNetwork, FifoLinksPreserveOrder) {
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 2;
  // Heavy-tailed latency would reorder without the FIFO clamp.
  cfg.latency = LatencyModel::pareto(5.0, 1.1);
  cfg.fifo_links = true;
  cfg.seed = 3;
  SimNetwork<int> net(sched, cfg);
  std::vector<int> received;
  net.set_handler(1, [&](ProcessId, const int& m) { received.push_back(m); });
  for (int i = 0; i < 50; ++i) net.send(0, 1, i);
  sched.run();
  ASSERT_EQ(received.size(), 50u);
  EXPECT_TRUE(std::is_sorted(received.begin(), received.end()));
}

TEST(SimNetwork, NonFifoCanReorder) {
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::pareto(5.0, 1.1);
  cfg.fifo_links = false;
  cfg.seed = 3;
  SimNetwork<int> net(sched, cfg);
  std::vector<int> received;
  net.set_handler(1, [&](ProcessId, const int& m) { received.push_back(m); });
  for (int i = 0; i < 50; ++i) net.send(0, 1, i);
  sched.run();
  ASSERT_EQ(received.size(), 50u);
  EXPECT_FALSE(std::is_sorted(received.begin(), received.end()));
}

TEST(SimNetwork, CrashedProcessReceivesNothing) {
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<int> net(sched, cfg);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const int&) { ++received; });
  net.broadcast(0, 1);
  net.crash(1);
  net.broadcast(0, 2);
  sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().messages_dropped_crash, 2u);
  EXPECT_TRUE(net.crashed(1));
  EXPECT_EQ(net.crashed_count(), 1u);
}

TEST(SimNetwork, CrashedProcessSendsNothing) {
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<int> net(sched, cfg);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const int&) { ++received; });
  net.crash(0);
  net.broadcast(0, 1);
  sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats().broadcasts, 0u);
}

TEST(SimNetwork, InFlightMessagesSurviveSenderCrash) {
  // Crash-stop happens between operations: a completed broadcast is
  // all-or-nothing even if the sender crashes before delivery.
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<int> net(sched, cfg);
  int received = 0;
  net.set_handler(1, [&](ProcessId, const int&) { ++received; });
  net.broadcast(0, 1);
  sched.at(5.0, [&] { net.crash(0); });
  sched.run();
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, PartitionHoldsCrossGroupTraffic) {
  SimScheduler sched;
  SimNetwork<int>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<int> net(sched, cfg);
  std::vector<double> delivery_times;
  net.set_handler(1, [&](ProcessId, const int&) {
    delivery_times.push_back(sched.now());
  });
  net.partition({0, 1}, /*heal_at=*/1000.0);
  net.broadcast(0, 1);
  sched.run();
  ASSERT_EQ(delivery_times.size(), 1u);
  EXPECT_GE(delivery_times[0], 1000.0);
}

TEST(Inbox, PushPopAcrossThreads) {
  Inbox<int> inbox;
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) inbox.push(i);
    inbox.close();
  });
  int count = 0;
  int last = -1;
  while (auto v = inbox.pop_wait()) {
    EXPECT_EQ(*v, last + 1);  // single producer: FIFO
    last = *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, 1000);
}

TEST(ThreadNetwork, BroadcastOthersSkipsSelf) {
  ThreadNetwork<std::string> net(3);
  net.broadcast_others(0, "hello");
  EXPECT_EQ(net.inbox(0).size(), 0u);
  EXPECT_EQ(net.inbox(1).size(), 1u);
  EXPECT_EQ(net.inbox(2).size(), 1u);
  auto env = net.inbox(1).try_pop();
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->from, 0u);
  EXPECT_EQ(env->payload, "hello");
  EXPECT_FALSE(net.inbox(0).try_pop().has_value());
}

}  // namespace
}  // namespace ucw
