// Wire codec properties: every envelope kind round-trips exactly, and
// the decoder survives hostile bytes.
//
// The round-trip half builds one representative envelope per
// EnvelopeKind (populated fields, not defaults), encodes, decodes, and
// compares field by field. The fuzz half mutates well-formed frames —
// truncation, bit flips, bad magic/version/length/checksum — and
// asserts the asymmetric contract: decode returns an error, never
// crashes (run under ASan/UBSan in CI), and never accepts a frame
// whose CRC-protected bytes changed. Failing seeds print via
// test_seeds.hpp and replay with UCW_SEED=<n>.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "adt/register.hpp"
#include "net/wire.hpp"
#include "store/envelope.hpp"
#include "test_seeds.hpp"
#include "util/rng.hpp"

namespace ucw {
namespace {

using Reg = RegisterAdt<std::int64_t>;
using Env = BatchEnvelope<Reg, std::string>;
namespace w = ucw::wire;

std::vector<std::uint8_t> encode(const Env& e) {
  std::vector<std::uint8_t> bytes;
  w::encode_envelope(e, &bytes);
  return bytes;
}

Env decode_ok(const std::vector<std::uint8_t>& bytes) {
  Env out;
  const char* err = nullptr;
  EXPECT_TRUE(w::decode_envelope(bytes.data(), bytes.size(), &out, &err))
      << (err ? err : "(no error set)");
  return out;
}

void expect_same_entries(const Env& a, const Env& b) {
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (std::size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_EQ(a.entries[i].key, b.entries[i].key);
    EXPECT_EQ(a.entries[i].msg.stamp.clock, b.entries[i].msg.stamp.clock);
    EXPECT_EQ(a.entries[i].msg.stamp.pid, b.entries[i].msg.stamp.pid);
    EXPECT_EQ(a.entries[i].msg.update.value, b.entries[i].msg.update.value);
    EXPECT_EQ(a.entries[i].msg.known, b.entries[i].msg.known);
  }
}

void expect_same_header(const Env& a, const Env& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.ack_clock, b.ack_clock);
  EXPECT_EQ(a.sync_markers, b.sync_markers);
  EXPECT_EQ(a.sync_markers_epoch, b.sync_markers_epoch);
  EXPECT_EQ(a.ae_reciprocate, b.ae_reciprocate);
  EXPECT_EQ(a.ae_floors, b.ae_floors);
}

// ------------------------------------------------- per-kind round trips

TEST(WireCodecTest, BatchRoundTrip) {
  Env e;
  e.kind = EnvelopeKind::kBatch;
  e.epoch = 3;
  e.seq = 41;
  e.ack_clock = 17;
  for (int i = 0; i < 5; ++i) {
    KeyedUpdate<Reg, std::string> ku;
    ku.key = "key-" + std::to_string(i);
    ku.msg.stamp = Stamp{static_cast<LogicalTime>(100 + i),
                         static_cast<ProcessId>(i % 3)};
    ku.msg.update = Reg::write(1000000 + i);
    ku.msg.known = {static_cast<LogicalTime>(90 + i),
                    static_cast<LogicalTime>(95 + i), 0};
    e.entries.push_back(std::move(ku));
  }
  const Env d = decode_ok(encode(e));
  expect_same_header(e, d);
  expect_same_entries(e, d);
  EXPECT_EQ(d.snapshot, nullptr);
}

TEST(WireCodecTest, HeartbeatRoundTrip) {
  // Empty kBatch: pure piggybacked-ack carrier (gc heartbeats).
  Env e;
  e.kind = EnvelopeKind::kBatch;
  e.epoch = 1;
  e.seq = 0;
  e.ack_clock = 777;
  const Env d = decode_ok(encode(e));
  expect_same_header(e, d);
  EXPECT_TRUE(d.entries.empty());
}

TEST(WireCodecTest, SyncRequestRoundTrip) {
  Env e;
  e.kind = EnvelopeKind::kSyncRequest;
  e.epoch = 9;
  e.sync_markers = {5, 0, 12, 3};
  e.sync_markers_epoch = 8;
  const Env d = decode_ok(encode(e));
  expect_same_header(e, d);
}

Env snapshot_envelope(EnvelopeKind kind) {
  Env e;
  e.kind = kind;
  e.epoch = 2;
  auto snap = std::make_shared<ShardSnapshot<Reg, std::string>>();
  snap->shard_index = 3;
  snap->shard_count = 8;
  snap->donor_clock = 400;
  snap->delta_marker = 377;
  snap->delta_since = kind == EnvelopeKind::kAntiEntropyDelta ? 201 : 0;
  snap->keys_total = 2;
  snap->donor_rows = {11, 0, 42};
  snap->coverage = {StreamCoverage{true, 1, 37, false},
                    StreamCoverage{false, 0, 0, false},
                    StreamCoverage{true, 2, 5, true}};
  KeySnapshot<Reg, std::string> k0;
  k0.key = "alpha";
  k0.base = -7;
  k0.floor = 390;
  k0.suffix.push_back(
      SnapshotLogEntry<Reg>{Stamp{395, 1}, Reg::write(123456789)});
  k0.suffix.push_back(
      SnapshotLogEntry<Reg>{Stamp{399, 0}, Reg::write(-42)});
  snap->keys.push_back(std::move(k0));
  KeySnapshot<Reg, std::string> k1;
  k1.key = "";  // empty key must survive the trip too
  k1.base = 0;
  k1.floor = 0;
  snap->keys.push_back(std::move(k1));
  e.snapshot = std::move(snap);
  return e;
}

void expect_same_snapshot(const Env& a, const Env& b) {
  ASSERT_NE(a.snapshot, nullptr);
  ASSERT_NE(b.snapshot, nullptr);
  const auto& s = *a.snapshot;
  const auto& d = *b.snapshot;
  EXPECT_EQ(s.shard_index, d.shard_index);
  EXPECT_EQ(s.shard_count, d.shard_count);
  EXPECT_EQ(s.donor_clock, d.donor_clock);
  EXPECT_EQ(s.delta_marker, d.delta_marker);
  EXPECT_EQ(s.delta_since, d.delta_since);
  EXPECT_EQ(s.keys_total, d.keys_total);
  EXPECT_EQ(s.donor_rows, d.donor_rows);
  ASSERT_EQ(s.coverage.size(), d.coverage.size());
  for (std::size_t i = 0; i < s.coverage.size(); ++i) {
    EXPECT_EQ(s.coverage[i].any, d.coverage[i].any);
    EXPECT_EQ(s.coverage[i].epoch, d.coverage[i].epoch);
    EXPECT_EQ(s.coverage[i].seq, d.coverage[i].seq);
    EXPECT_EQ(s.coverage[i].drained, d.coverage[i].drained);
  }
  ASSERT_EQ(s.keys.size(), d.keys.size());
  for (std::size_t i = 0; i < s.keys.size(); ++i) {
    EXPECT_EQ(s.keys[i].key, d.keys[i].key);
    EXPECT_EQ(s.keys[i].base, d.keys[i].base);
    EXPECT_EQ(s.keys[i].floor, d.keys[i].floor);
    ASSERT_EQ(s.keys[i].suffix.size(), d.keys[i].suffix.size());
    for (std::size_t j = 0; j < s.keys[i].suffix.size(); ++j) {
      EXPECT_EQ(s.keys[i].suffix[j].stamp.clock,
                d.keys[i].suffix[j].stamp.clock);
      EXPECT_EQ(s.keys[i].suffix[j].stamp.pid,
                d.keys[i].suffix[j].stamp.pid);
      EXPECT_EQ(s.keys[i].suffix[j].update.value,
                d.keys[i].suffix[j].update.value);
    }
  }
}

TEST(WireCodecTest, ShardSnapshotRoundTrip) {
  const Env e = snapshot_envelope(EnvelopeKind::kShardSnapshot);
  const Env d = decode_ok(encode(e));
  expect_same_header(e, d);
  expect_same_snapshot(e, d);
}

TEST(WireCodecTest, AntiEntropyRequestRoundTrip) {
  Env e;
  e.kind = EnvelopeKind::kAntiEntropyRequest;
  e.epoch = 4;
  e.ae_reciprocate = true;
  e.ae_floors = {100, 0, 250};
  const Env d = decode_ok(encode(e));
  expect_same_header(e, d);
}

TEST(WireCodecTest, AntiEntropyDeltaRoundTrip) {
  const Env e = snapshot_envelope(EnvelopeKind::kAntiEntropyDelta);
  const Env d = decode_ok(encode(e));
  expect_same_header(e, d);
  expect_same_snapshot(e, d);
  EXPECT_EQ(d.snapshot->delta_since, 201u);  // delta marker survives
}

// ------------------------------------------------- structural rejection

TEST(WireCodecTest, RejectsTrailingBytes) {
  Env e;
  e.kind = EnvelopeKind::kBatch;
  std::vector<std::uint8_t> bytes = encode(e);
  bytes.push_back(0);
  Env out;
  const char* err = nullptr;
  EXPECT_FALSE(w::decode_envelope(bytes.data(), bytes.size(), &out, &err));
  EXPECT_STREQ(err, "trailing bytes after envelope");
}

TEST(WireCodecTest, RejectsInvalidKind) {
  Env e;
  e.kind = EnvelopeKind::kBatch;
  std::vector<std::uint8_t> bytes = encode(e);
  bytes[0] = 0xEE;
  Env out;
  EXPECT_FALSE(w::decode_envelope(bytes.data(), bytes.size(), &out));
}

TEST(WireCodecTest, RejectsOverclaimedEntryCount) {
  // kind + epoch/seq/ack + a count claiming 2^31 entries, then nothing.
  std::vector<std::uint8_t> bytes;
  w::Writer wr(&bytes);
  wr.u8(0);
  wr.u64(1);
  wr.u64(1);
  wr.u64(0);
  wr.u32(0x80000000u);
  Env out;
  const char* err = nullptr;
  EXPECT_FALSE(w::decode_envelope(bytes.data(), bytes.size(), &out, &err));
  EXPECT_STREQ(err, "entry count exceeds payload");
}

TEST(WireCodecTest, RejectsEveryTruncation) {
  const Env e = snapshot_envelope(EnvelopeKind::kShardSnapshot);
  const std::vector<std::uint8_t> bytes = encode(e);
  Env out;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(w::decode_envelope(bytes.data(), n, &out))
        << "accepted a " << n << "-byte prefix of " << bytes.size();
  }
}

// ------------------------------------------------------------- framing

TEST(WireFrameTest, SingleFrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<std::vector<std::uint8_t>> frames;
  w::encode_frames(payload.data(), payload.size(), /*sender=*/2,
                   /*msg_id=*/99, &frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].size(), w::kFrameHeaderBytes + payload.size());
  w::FrameHeader h;
  const std::uint8_t* body = nullptr;
  const char* err = nullptr;
  ASSERT_TRUE(
      w::decode_frame(frames[0].data(), frames[0].size(), &h, &body, &err))
      << err;
  EXPECT_EQ(h.version, w::kWireVersion);
  EXPECT_EQ(h.sender, 2);
  EXPECT_EQ(h.msg_id, 99u);
  EXPECT_EQ(h.frag_index, 0);
  EXPECT_EQ(h.frag_count, 1);
  ASSERT_EQ(h.payload_len, payload.size());
  EXPECT_EQ(std::vector<std::uint8_t>(body, body + h.payload_len), payload);
}

TEST(WireFrameTest, FragmentationSplitsAndReassembles) {
  Rng rng(ucw::test::seed_or(11));
  std::vector<std::uint8_t> payload(2500);
  for (auto& b : payload) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  std::vector<std::vector<std::uint8_t>> frames;
  w::encode_frames(payload.data(), payload.size(), 1, 7, &frames,
                   /*max_payload=*/1000);
  ASSERT_EQ(frames.size(), 3u);  // 1000 + 1000 + 500
  std::vector<std::uint8_t> reassembled;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    w::FrameHeader h;
    const std::uint8_t* body = nullptr;
    ASSERT_TRUE(w::decode_frame(frames[i].data(), frames[i].size(), &h,
                                &body));
    EXPECT_EQ(h.frag_index, i);
    EXPECT_EQ(h.frag_count, frames.size());
    EXPECT_EQ(h.msg_id, 7u);
    reassembled.insert(reassembled.end(), body, body + h.payload_len);
  }
  EXPECT_EQ(reassembled, payload);
}

TEST(WireFrameTest, EmptyPayloadStillFrames) {
  std::vector<std::vector<std::uint8_t>> frames;
  w::encode_frames(nullptr, 0, 0, 1, &frames);
  ASSERT_EQ(frames.size(), 1u);
  w::FrameHeader h;
  const std::uint8_t* body = nullptr;
  ASSERT_TRUE(w::decode_frame(frames[0].data(), frames[0].size(), &h, &body));
  EXPECT_EQ(h.payload_len, 0u);
}

TEST(WireFrameTest, RejectsBadMagicVersionLengthChecksum) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  std::vector<std::vector<std::uint8_t>> frames;
  w::encode_frames(payload.data(), payload.size(), 0, 5, &frames);
  const std::vector<std::uint8_t>& good = frames[0];
  w::FrameHeader h;
  const std::uint8_t* body = nullptr;
  const char* err = nullptr;

  auto mutated = good;
  mutated[0] ^= 0xFF;  // magic
  EXPECT_FALSE(w::decode_frame(mutated.data(), mutated.size(), &h, &body,
                               &err));
  EXPECT_STREQ(err, "bad magic");

  mutated = good;
  mutated[4] = 0x7F;  // version
  EXPECT_FALSE(w::decode_frame(mutated.data(), mutated.size(), &h, &body,
                               &err));
  EXPECT_STREQ(err, "unsupported version");

  mutated = good;
  mutated[16] = 0xFF;  // payload_len no longer matches datagram size
  EXPECT_FALSE(w::decode_frame(mutated.data(), mutated.size(), &h, &body,
                               &err));
  EXPECT_STREQ(err, "length mismatch");

  mutated = good;
  mutated[20] ^= 0x01;  // crc
  EXPECT_FALSE(w::decode_frame(mutated.data(), mutated.size(), &h, &body,
                               &err));
  EXPECT_STREQ(err, "bad checksum");

  mutated = good;
  mutated.back() ^= 0x01;  // payload bit flip -> crc catches it
  EXPECT_FALSE(w::decode_frame(mutated.data(), mutated.size(), &h, &body,
                               &err));
  EXPECT_STREQ(err, "bad checksum");
}

// ------------------------------------------------------------ fuzz loop

/// A random well-formed envelope: fuzz corpus element.
Env random_envelope(Rng& rng) {
  Env e;
  e.kind = static_cast<EnvelopeKind>(rng.uniform_int(0, 4));
  e.epoch = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  e.seq = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  e.ack_clock = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  const int n_entries = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < n_entries; ++i) {
    KeyedUpdate<Reg, std::string> ku;
    ku.key = "k" + std::to_string(rng.uniform_int(0, 30));
    ku.msg.stamp = Stamp{static_cast<LogicalTime>(rng.uniform_int(0, 1000)),
                         static_cast<ProcessId>(rng.uniform_int(0, 7))};
    ku.msg.update = Reg::write(rng.uniform_int(-1000000, 1000000));
    const int n_known = static_cast<int>(rng.uniform_int(0, 4));
    for (int j = 0; j < n_known; ++j) {
      ku.msg.known.push_back(
          static_cast<LogicalTime>(rng.uniform_int(0, 1000)));
    }
    e.entries.push_back(std::move(ku));
  }
  if (rng.chance(0.3)) {
    auto snap = std::make_shared<ShardSnapshot<Reg, std::string>>();
    snap->shard_index = static_cast<std::size_t>(rng.uniform_int(0, 15));
    snap->shard_count = 16;
    snap->donor_clock = static_cast<LogicalTime>(rng.uniform_int(0, 5000));
    const int n_keys = static_cast<int>(rng.uniform_int(0, 4));
    for (int i = 0; i < n_keys; ++i) {
      KeySnapshot<Reg, std::string> k;
      k.key = "s" + std::to_string(i);
      k.base = rng.uniform_int(-100, 100);
      k.floor = static_cast<LogicalTime>(rng.uniform_int(0, 100));
      const int n_suffix = static_cast<int>(rng.uniform_int(0, 3));
      for (int j = 0; j < n_suffix; ++j) {
        k.suffix.push_back(SnapshotLogEntry<Reg>{
            Stamp{static_cast<LogicalTime>(rng.uniform_int(0, 500)),
                  static_cast<ProcessId>(rng.uniform_int(0, 7))},
            Reg::write(rng.uniform_int(-99, 99))});
      }
      snap->keys.push_back(std::move(k));
    }
    e.snapshot = std::move(snap);
  }
  if (rng.chance(0.4)) e.sync_markers = {1, 2, 3};
  e.ae_reciprocate = rng.chance(0.5);
  if (rng.chance(0.4)) {
    e.ae_floors = {static_cast<LogicalTime>(rng.uniform_int(0, 99))};
  }
  return e;
}

/// >= 10k mutated frames against the full decode path (frame -> CRC ->
/// envelope). Mutations on CRC-protected bytes must be rejected at the
/// frame layer; mutations with the CRC *recomputed* (simulating a
/// malicious sender rather than line noise) push hostile-but-checksummed
/// payloads into decode_envelope, which must error out or accept — but
/// never crash, hang, or over-allocate. ASan/UBSan make "never crash"
/// a real assertion in CI.
TEST(WireFuzzTest, MutatedFramesNeverCrashNeverSilentlyAccept) {
  const auto seeds = ucw::test::property_seeds({1, 2, 3, 4});
  constexpr int kMutationsPerSeed = 3000;  // x4 seeds >= 10k frames
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(ucw::test::seed_trace(seed));
    Rng rng(seed);
    for (int round = 0; round < kMutationsPerSeed; ++round) {
      const Env e = random_envelope(rng);
      std::vector<std::uint8_t> payload;
      w::encode_envelope(e, &payload);
      std::vector<std::vector<std::uint8_t>> frames;
      w::encode_frames(payload.data(), payload.size(),
                       static_cast<std::uint16_t>(rng.uniform_int(0, 7)),
                       static_cast<std::uint32_t>(round), &frames);
      std::vector<std::uint8_t> frame = std::move(frames[0]);

      const int mode = static_cast<int>(rng.uniform_int(0, 3));
      bool crc_repaired = false;
      if (mode == 0) {
        // Truncate anywhere (header or payload).
        frame.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(frame.size()) - 1)));
      } else if (mode == 1) {
        // 1-8 random bit flips anywhere.
        const int flips = static_cast<int>(rng.uniform_int(1, 8));
        for (int f = 0; f < flips; ++f) {
          const auto at = static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(frame.size()) - 1));
          frame[at] ^= static_cast<std::uint8_t>(
              1u << rng.uniform_int(0, 7));
        }
      } else if (mode == 2) {
        // Malicious sender: corrupt the payload, then recompute the CRC
        // so the frame layer accepts and the envelope decoder faces the
        // hostile bytes itself.
        if (frame.size() > w::kFrameHeaderBytes) {
          const int flips = static_cast<int>(rng.uniform_int(1, 8));
          for (int f = 0; f < flips; ++f) {
            const auto at = static_cast<std::size_t>(rng.uniform_int(
                static_cast<std::int64_t>(w::kFrameHeaderBytes),
                static_cast<std::int64_t>(frame.size()) - 1));
            frame[at] ^= static_cast<std::uint8_t>(
                1u << rng.uniform_int(0, 7));
          }
          const std::uint32_t crc = w::crc32(
              frame.data() + w::kFrameHeaderBytes,
              frame.size() - w::kFrameHeaderBytes);
          frame[20] = static_cast<std::uint8_t>(crc);
          frame[21] = static_cast<std::uint8_t>(crc >> 8);
          frame[22] = static_cast<std::uint8_t>(crc >> 16);
          frame[23] = static_cast<std::uint8_t>(crc >> 24);
          crc_repaired = true;
        }
      } else {
        // Pure garbage of the same length.
        for (auto& b : frame) {
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
      }

      w::FrameHeader h;
      const std::uint8_t* body = nullptr;
      if (!w::decode_frame(frame.data(), frame.size(), &h, &body)) {
        continue;  // rejected at the frame layer: contract satisfied
      }
      // The frame layer accepted. Without a repaired CRC that means the
      // mutation happened to cancel out or missed the protected bytes —
      // verify the payload really is byte-identical before letting it
      // through as a "silent accept".
      if (!crc_repaired) {
        ASSERT_EQ(h.payload_len, payload.size())
            << "frame layer accepted a mutated length (round " << round
            << ")";
        ASSERT_EQ(0, std::memcmp(body, payload.data(), payload.size()))
            << "frame layer accepted mutated payload bytes (round "
            << round << ")";
      }
      // Hostile-but-checksummed payload: decode must not crash. Either
      // verdict is fine; a success must at least yield a valid kind.
      Env out;
      const char* err = nullptr;
      if (w::decode_envelope(body, h.payload_len, &out, &err)) {
        EXPECT_LE(static_cast<std::uint8_t>(out.kind),
                  static_cast<std::uint8_t>(EnvelopeKind::kAntiEntropyDelta));
      }
    }
  }
}

/// The honest path stays honest under the same seeds: whatever
/// random_envelope emits must round-trip unchanged.
TEST(WireFuzzTest, RandomEnvelopesAlwaysRoundTrip) {
  const auto seeds = ucw::test::property_seeds({21, 22});
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE(ucw::test::seed_trace(seed));
    Rng rng(seed);
    for (int round = 0; round < 500; ++round) {
      const Env e = random_envelope(rng);
      const Env d = decode_ok(encode(e));
      expect_same_header(e, d);
      expect_same_entries(e, d);
      EXPECT_EQ(e.snapshot != nullptr, d.snapshot != nullptr);
      if (e.snapshot && d.snapshot) expect_same_snapshot(e, d);
    }
  }
}

}  // namespace
}  // namespace ucw
