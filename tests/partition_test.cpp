// Partition scenarios: drop-mode splits, per-sender coverage tracking,
// and the heal-time anti-entropy exchange.
//
// Layered like the subsystem: the SeqCoverage primitive first, then the
// network's drop-mode partition semantics, then live StoreCore clusters
// — the acceptance split (≥ 100 diverged keys reconciled by deltas that
// ship measurably less than full shards), asymmetric three-way heals,
// the ack-gating soundness property (a gapped stream must freeze the GC
// floor until anti-entropy re-proves coverage), a partition crossing an
// open catch-up session, updates racing the heal exchange — and finally
// the harness-level PartitionPlan plumbing. Everything is seeded and
// virtual-time deterministic: a failure reproduces bit-for-bit.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "adt/all.hpp"
#include "net/scheduler.hpp"
#include "recovery/all.hpp"
#include "runtime/store_harness.hpp"
#include "store/all.hpp"
#include "test_seeds.hpp"
#include "util/assert.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using Store = SimUcStore<S>;
using Env = Store::Envelope;

SimNetwork<Env>::Config fifo_net_config(std::size_t n) {
  SimNetwork<Env>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::constant(10.0);
  cfg.fifo_links = true;
  cfg.seed = 5;
  return cfg;
}

StoreConfig gc_store_config(std::size_t window = 4) {
  StoreConfig cfg;
  cfg.batch_window = window;
  cfg.shard_count = 4;
  cfg.gc = true;
  return cfg;
}

/// One keyed update per store + flush + drain, `rounds` times, skipping
/// crashed stores (drive_rounds of the recovery suite, shared keyspace).
template <typename Stores>
void drive_rounds(SimScheduler& sched, Stores& stores, SimNetwork<Env>& net,
                  int rounds, int base, int n_keys = 7) {
  for (int r = 0; r < rounds; ++r) {
    for (auto& s : stores) {
      if (net.crashed(s->pid())) continue;
      const int v = base + r * 10 + static_cast<int>(s->pid());
      s->update("k" + std::to_string(v % n_keys), S::insert(v));
    }
    for (auto& s : stores) (void)s->flush();
    sched.run();
  }
}

// ----- SeqCoverage ----------------------------------------------------

TEST(SeqCoverageTest, InOrderArrivalsStayOneSegment) {
  SeqCoverage c;
  EXPECT_FALSE(c.any());
  EXPECT_TRUE(c.contiguous());
  for (std::uint64_t s = 0; s <= 5; ++s) c.add(s);
  EXPECT_TRUE(c.has_prefix());
  EXPECT_EQ(c.prefix(), 5u);
  EXPECT_EQ(c.segments(), 1u);
  EXPECT_TRUE(c.contiguous());
  c.add(3);  // at-least-once duplicate: absorbed
  EXPECT_EQ(c.segments(), 1u);
  EXPECT_EQ(c.prefix(), 5u);
}

TEST(SeqCoverageTest, DropsOpenSegmentsAndFillsClose) {
  SeqCoverage c;
  c.add(0);
  c.add(1);
  c.add(4);  // 2-3 dropped
  c.add(5);
  EXPECT_EQ(c.segments(), 2u);
  EXPECT_TRUE(c.has_prefix());
  EXPECT_EQ(c.prefix(), 1u);  // the honest claim, not last()
  EXPECT_EQ(c.last(), 5u);
  EXPECT_FALSE(c.contiguous());
  c.add(3);
  EXPECT_EQ(c.segments(), 2u);
  c.add(2);  // hole closed: segments join
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 5u);
}

TEST(SeqCoverageTest, MidStreamJoinHasNoPrefixUntilProven) {
  SeqCoverage c;
  c.add(12);
  c.add(13);
  EXPECT_TRUE(c.any());
  EXPECT_FALSE(c.has_prefix());
  EXPECT_FALSE(c.contiguous());
  c.add_prefix(11);  // the snapshot/AE proof of [0, 11]
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 13u);
}

TEST(SeqCoverageTest, AddPrefixSwallowsOnlyReachableSegments) {
  SeqCoverage c;
  c.add(4);
  c.add(9);
  c.add_prefix(5);  // touches {4} (and abuts 5), not {9}
  EXPECT_EQ(c.segments(), 2u);
  EXPECT_EQ(c.prefix(), 5u);
  EXPECT_FALSE(c.contiguous());
  c.add_prefix(8);  // abuts {9}: swallowed
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 9u);
}

TEST(SeqCoverageTest, AdjacentArrivalsCoalesceAtBothEnds) {
  SeqCoverage c;
  c.add(5);
  // Extend the segment's upper end, then its lower end: adjacency must
  // absorb into the existing segment, never open a new one.
  c.add(6);
  EXPECT_EQ(c.segments(), 1u);
  c.add(4);
  EXPECT_EQ(c.segments(), 1u);
  EXPECT_EQ(c.last(), 6u);
  // A fill that is adjacent to two segments at once bridges them into
  // exactly one.
  c.add(8);
  EXPECT_EQ(c.segments(), 2u);
  c.add(7);
  EXPECT_EQ(c.segments(), 1u);
  EXPECT_EQ(c.last(), 8u);
  EXPECT_FALSE(c.has_prefix());  // [4,8] still floats above seq 0
  c.add_prefix(3);
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 8u);
}

TEST(SeqCoverageTest, AddPrefixAfterGapClaimsOnlyTheProvenPrefix) {
  SeqCoverage c;
  // Live stream with a partition hole: [0,1] received, 2-6 dropped,
  // [7,8] received after the heal.
  c.add(0);
  c.add(1);
  c.add(7);
  c.add(8);
  EXPECT_EQ(c.segments(), 2u);
  EXPECT_EQ(c.prefix(), 1u);
  // An AE round proves [0,4]: the prefix advances, the floating segment
  // beyond the remaining hole must not be swallowed.
  c.add_prefix(4);
  EXPECT_EQ(c.segments(), 2u);
  EXPECT_EQ(c.prefix(), 4u);
  EXPECT_FALSE(c.contiguous());
  // A later round proves [0,6]: now adjacent to [7,8] — one segment.
  c.add_prefix(6);
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 8u);
}

TEST(SeqCoverageTest, RepeatedAdoptionOfTheSameClaimIsIdempotent) {
  // AE rounds are at-least-once: the same peer coverage claim can be
  // adopted on every repeated round (retries, duplicated completions).
  // Re-adoption must neither regress the prefix nor split segments.
  SeqCoverage c;
  c.add(10);
  c.add(11);
  c.add_prefix(9);
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 11u);
  for (int round = 0; round < 3; ++round) {
    c.add_prefix(9);  // the identical claim, re-adopted
    EXPECT_TRUE(c.contiguous());
    EXPECT_EQ(c.segments(), 1u);
    EXPECT_EQ(c.prefix(), 11u);
  }
  // A stale round's *older* claim is absorbed too — monotone, no split.
  c.add_prefix(2);
  EXPECT_TRUE(c.contiguous());
  EXPECT_EQ(c.prefix(), 11u);
}

// ----- SimNetwork drop-mode partitions --------------------------------

TEST(SimNetworkPartitionTest, DropModeDropsCrossGroupUntilHeal) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  std::vector<int> got(3, 0);
  for (ProcessId p = 0; p < 3; ++p) {
    net.set_handler(p, [&got, p](ProcessId, const Env&) { ++got[p]; });
  }
  net.partition({0, 0, 1});
  EXPECT_TRUE(net.partitioned());
  EXPECT_TRUE(net.same_partition(0, 1));
  EXPECT_FALSE(net.same_partition(0, 2));
  net.broadcast_others(0, Env{});
  sched.run();
  EXPECT_EQ(got[1], 1);  // same group: delivered
  EXPECT_EQ(got[2], 0);  // cross group: dropped, not held
  EXPECT_EQ(net.stats().messages_dropped_partition, 1u);
  EXPECT_EQ(net.stats().messages_held_partition, 0u);

  net.heal();
  EXPECT_FALSE(net.partitioned());
  EXPECT_TRUE(net.same_partition(0, 2));
  net.broadcast_others(0, Env{});
  sched.run();
  EXPECT_EQ(got[2], 1);  // traffic flows again; the dropped one is gone
  EXPECT_EQ(got[1], 2);
}

TEST(SimNetworkPartitionTest, RepartitionMergesGroupsAsymmetrically) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  net.partition({0, 1, 2});
  EXPECT_FALSE(net.same_partition(0, 1));
  net.partition({0, 0, 1});  // asymmetric heal: {0,1} merge, 2 stays out
  EXPECT_TRUE(net.same_partition(0, 1));
  EXPECT_FALSE(net.same_partition(1, 2));
  EXPECT_TRUE(net.partitioned());
  net.partition({0, 0, 0});  // all-zero map == heal
  EXPECT_FALSE(net.partitioned());
}

// ----- acceptance: split-write-heal with delta anti-entropy -----------

/// Counts keys on which the two stores currently disagree.
std::size_t diverged_keys(Store& a, Store& b, int n_keys) {
  std::size_t n = 0;
  for (int k = 0; k < n_keys; ++k) {
    const std::string key = "key" + std::to_string(k);
    if (!(a.state_of(key) == b.state_of(key))) ++n;
  }
  return n;
}

TEST(PartitionTest, SplitWriteHealConvergesAndSecondDeltaShipsLess) {
  constexpr int kKeys = 120;
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  StoreConfig scfg = gc_store_config(/*window=*/8);
  Store a(S{}, 0, net, scfg);
  Store b(S{}, 1, net, scfg);

  // Common history on all keys, fully delivered.
  for (int k = 0; k < kKeys; ++k) {
    a.update("key" + std::to_string(k), S::insert(k));
  }
  (void)a.flush();
  sched.run();
  (void)b.flush();
  sched.run();
  ASSERT_EQ(diverged_keys(a, b, kKeys), 0u);

  // Split. Both sides stay available and write disjoint values to every
  // key: ≥ 100 keys diverge.
  net.partition({0, 1});
  for (int k = 0; k < kKeys; ++k) {
    const std::string key = "key" + std::to_string(k);
    a.update(key, S::insert(1'000 + k));
    b.update(key, S::insert(2'000 + k));
  }
  for (auto* s : {&a, &b}) (void)s->flush();
  sched.run();
  ASSERT_GE(diverged_keys(a, b, kKeys), 100u);
  ASSERT_GT(net.stats().messages_dropped_partition, 0u);

  // Heal + one bidirectional anti-entropy round. First exchange between
  // this pair: no markers yet, so it ships full shards — and repairs
  // every key.
  net.heal();
  ASSERT_TRUE(a.anti_entropy_round(1, /*reciprocate=*/true));
  sched.run();
  for (int i = 0; i < 3; ++i) {
    for (auto* s : {&a, &b}) (void)s->flush();
    sched.run();
  }
  EXPECT_EQ(diverged_keys(a, b, kKeys), 0u);
  EXPECT_GE(a.stats().ae_rounds_completed, 1u);
  EXPECT_GE(b.stats().ae_rounds_completed, 1u);
  const std::uint64_t keys_served_round1 =
      a.stats().snapshot_keys_served + b.stats().snapshot_keys_served;
  const std::uint64_t entries_round1 =
      a.stats().ae_entries_served + b.stats().ae_entries_served;
  ASSERT_GT(keys_served_round1, 0u);

  // Split again; this time only a small fraction of the keyspace moves.
  net.partition({0, 1});
  for (int k = 0; k < 10; ++k) {
    a.update("key" + std::to_string(k), S::insert(3'000 + k));
    b.update("key" + std::to_string(k + 10), S::insert(4'000 + k));
  }
  for (auto* s : {&a, &b}) (void)s->flush();
  sched.run();
  ASSERT_GT(diverged_keys(a, b, kKeys), 0u);

  net.heal();
  ASSERT_TRUE(a.anti_entropy_round(1, /*reciprocate=*/true));
  sched.run();
  for (int i = 0; i < 3; ++i) {
    for (auto* s : {&a, &b}) (void)s->flush();
    sched.run();
  }
  EXPECT_EQ(diverged_keys(a, b, kKeys), 0u);

  // The second exchange was incremental: the markers installed in round
  // one let each donor skip every clean key, so round two shipped
  // measurably fewer keys and entries than a full ShardSnapshot batch
  // of the same shards (which is exactly what round one was).
  const std::uint64_t keys_served_round2 =
      a.stats().snapshot_keys_served + b.stats().snapshot_keys_served -
      keys_served_round1;
  const std::uint64_t entries_round2 = a.stats().ae_entries_served +
                                       b.stats().ae_entries_served -
                                       entries_round1;
  const std::uint64_t skipped =
      a.stats().snapshot_keys_skipped_delta +
      b.stats().snapshot_keys_skipped_delta;
  EXPECT_LT(keys_served_round2, keys_served_round1 / 2);
  EXPECT_LT(entries_round2, entries_round1);
  EXPECT_GT(skipped, keys_served_round2);
  EXPECT_EQ(a.stats().ae_rounds_completed, 2u);
}

// ----- three-way partition, asymmetric heal order ---------------------

TEST(PartitionTest, ThreeWayPartitionHealsAsymmetrically) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  const StoreConfig scfg = gc_store_config();
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 3; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  drive_rounds(sched, stores, net, 4, 0);

  // Full three-way split: every store writes alone.
  net.partition({0, 1, 2});
  drive_rounds(sched, stores, net, 4, 100);

  // First heal step: {0, 1} merge while 2 stays isolated.
  net.partition({0, 0, 1});
  ASSERT_TRUE(stores[0]->anti_entropy_round(1, /*reciprocate=*/true));
  sched.run();
  drive_rounds(sched, stores, net, 3, 200);
  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    EXPECT_EQ(stores[0]->state_of(key), stores[1]->state_of(key)) << key;
  }

  // Second heal step: 2 rejoins. 2's exchange with 0 relays everything
  // both ways (including what 0 learned from 1 second-hand — installs
  // dirty the donor's keys too); 1 then pulls from 0, which by now
  // holds 2's side as well. This mirrors the harness policy: every
  // process runs one pull per regained group.
  net.heal();
  ASSERT_TRUE(stores[2]->anti_entropy_round(0, /*reciprocate=*/true));
  sched.run();
  ASSERT_TRUE(stores[1]->anti_entropy_round(0, /*reciprocate=*/false));
  sched.run();
  drive_rounds(sched, stores, net, 3, 300);
  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    const auto want = stores[0]->state_of(key);
    EXPECT_EQ(stores[1]->state_of(key), want) << key;
    EXPECT_EQ(stores[2]->state_of(key), want) << key;
  }
}

// ----- soundness: gapped streams freeze the floor ---------------------

TEST(PartitionTest, GappedStreamAcksAreIgnoredUntilAntiEntropy) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  StoreConfig scfg = gc_store_config(/*window=*/2);
  // This test exercises the gating mechanics by hand: keep the
  // flush-tick auto anti-entropy out of the way so the gap stays open
  // until the explicit round below.
  scfg.auto_anti_entropy = false;
  Store a(S{}, 0, net, scfg);
  Store b(S{}, 1, net, scfg);
  for (int r = 0; r < 6; ++r) {
    a.update("k" + std::to_string(r % 5), S::insert(r));
    b.update("k" + std::to_string(r % 5), S::insert(100 + r));
    (void)a.flush();
    (void)b.flush();
    sched.run();
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  const LogicalTime floor_before = a.stats().stability_floor;
  ASSERT_GT(floor_before, 0u);

  // Split: b keeps broadcasting into the void towards a.
  net.partition({0, 1});
  for (int r = 0; r < 5; ++r) {
    b.update("p" + std::to_string(r), S::insert(r));
    (void)b.flush();
    sched.run();
  }
  net.heal();

  // Post-heal traffic WITHOUT anti-entropy: a detects the gap in b's
  // stream and must ignore b's acks — the dropped envelopes' entries
  // are still missing here, and folding past them would absorb their
  // eventual anti-entropy redelivery as "already folded". The floor
  // freezes at its pre-partition value.
  for (int r = 0; r < 6; ++r) {
    b.update("q" + std::to_string(r), S::insert(r));
    (void)b.flush();
    sched.run();
    (void)a.flush();
    sched.run();
  }
  EXPECT_TRUE(a.stream_gapped(1));
  EXPECT_GT(a.stats().stream_gaps_detected, 0u);
  EXPECT_LE(a.stats().stability_floor, floor_before);
  ASSERT_NE(a.state_of("p0"), b.state_of("p0"));  // genuinely diverged

  // Anti-entropy re-proves b's stream coverage (and ships the missing
  // entries); acks resume and the floor thaws past the frozen point.
  ASSERT_TRUE(a.anti_entropy_round(1, /*reciprocate=*/true));
  sched.run();
  EXPECT_FALSE(a.stream_gapped(1));
  for (int r = 0; r < 4; ++r) {
    a.update("k0", S::insert(500 + r));
    b.update("k1", S::insert(600 + r));
    (void)a.flush();
    (void)b.flush();
    sched.run();
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  EXPECT_GT(a.stats().stability_floor, floor_before);
  for (int r = 0; r < 5; ++r) {
    const std::string key = "p" + std::to_string(r);
    EXPECT_EQ(a.state_of(key), b.state_of(key)) << key;
  }
  EXPECT_EQ(a.state_of("k0"), b.state_of("k0"));
}

TEST(PartitionTest, AutoAntiEntropyRepairsGapsFromTheFlushTick) {
  // No explicit anti_entropy_round anywhere: the stores notice the
  // gapped streams themselves on the flush tick and pull from the
  // origin — a heal is self-repairing even when nobody orchestrates it
  // (and even for entries whose envelopes a one-shot heal-time exchange
  // would have missed in flight).
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  const StoreConfig scfg = gc_store_config();
  Store a(S{}, 0, net, scfg);
  Store b(S{}, 1, net, scfg);
  for (int r = 0; r < 4; ++r) {
    a.update("k" + std::to_string(r), S::insert(r));
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  net.partition({0, 1});
  a.update("s", S::insert(1));
  b.update("s", S::insert(2));
  (void)a.flush();
  (void)b.flush();
  sched.run();
  net.heal();
  // Live traffic resumes; its seq jump is the gap detection. The next
  // flush ticks run the anti-entropy pulls and the split reconciles.
  for (int r = 0; r < 6; ++r) {
    a.update("t", S::insert(10 + r));
    b.update("t", S::insert(20 + r));
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  EXPECT_GT(a.stats().ae_rounds_started + b.stats().ae_rounds_started, 0u);
  EXPECT_GT(a.stats().ae_rounds_completed + b.stats().ae_rounds_completed,
            0u);
  EXPECT_FALSE(a.stream_gapped(1));
  EXPECT_FALSE(b.stream_gapped(0));
  EXPECT_EQ(a.state_of("s"), (std::set<int>{1, 2}));
  EXPECT_EQ(b.state_of("s"), (std::set<int>{1, 2}));
  EXPECT_EQ(a.state_of("t"), b.state_of("t"));
}

// ----- partition across an open catch-up session ----------------------

TEST(PartitionTest, CatchupSessionSurvivesPartitionAndGcStaysPaused) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(3));
  StoreConfig scfg = gc_store_config();
  scfg.sync_patience_ticks = 1;  // ticks are driven by hand below
  std::vector<std::unique_ptr<Store>> stores;
  for (ProcessId p = 0; p < 3; ++p) {
    stores.push_back(std::make_unique<Store>(S{}, p, net, scfg));
  }
  drive_rounds(sched, stores, net, 8, 0);
  net.crash(2);
  drive_rounds(sched, stores, net, 4, 50);
  ASSERT_TRUE(net.can_restart(2));
  net.restart(2);
  stores[2] = std::make_unique<Store>(S{}, 2, net, scfg);

  // Isolate the joiner the instant it asks: the request is dropped
  // cross-group, every stall-retry rotation lands on an unreachable
  // donor, and the session stays open for the whole split. The joiner
  // is still bootstrapping (reads stay available, updates refused), so
  // only the majority side issues traffic.
  net.partition({0, 0, 1});
  ASSERT_TRUE(stores[2]->request_sync(0));
  sched.run();
  auto majority_round = [&](int base) {
    for (ProcessId p = 0; p < 2; ++p) {
      stores[p]->update("k" + std::to_string((base + p) % 7),
                        S::insert(base + static_cast<int>(p)));
    }
    for (auto& s : stores) (void)s->flush();
    sched.run();
  };
  for (int r = 0; r < 5; ++r) majority_round(100 + 10 * r);
  EXPECT_NE(stores[2]->sync_state(), Store::SyncState::kLive);
  EXPECT_EQ(stores[2]->stats().snapshots_installed, 0u);
  EXPECT_GT(stores[2]->stats().sync_retries, 0u);
  // GC is paused while the session is open — the load-bearing pause:
  // the joiner's floor must not move on untrusted rows.
  EXPECT_EQ(stores[2]->stats().stability_floor, 0u);
  EXPECT_EQ(stores[2]->stats().gc_folded, 0u);

  // Heal. The very next stall retry reaches a live donor; the session
  // completes through its own machinery (no anti-entropy involved —
  // anti_entropy_round is refused while the session owns recovery).
  net.heal();
  EXPECT_FALSE(stores[2]->anti_entropy_round(0));
  for (int r = 0; r < 6; ++r) majority_round(200 + 10 * r);
  ASSERT_EQ(stores[2]->sync_state(), Store::SyncState::kLive);
  drive_rounds(sched, stores, net, 3, 400);
  EXPECT_EQ(stores[2]->stats().syncs_completed, 1u);
  EXPECT_GT(stores[2]->stats().snapshots_installed, 0u);
  for (int k = 0; k < 7; ++k) {
    const std::string key = "k" + std::to_string(k);
    const auto want = stores[0]->state_of(key);
    EXPECT_EQ(stores[1]->state_of(key), want) << key;
    EXPECT_EQ(stores[2]->state_of(key), want) << key;
  }
  // And with the session retired, GC resumes at the rejoined store.
  EXPECT_GT(stores[2]->stats().stability_floor, 0u);
}

// ----- updates racing the heal exchange -------------------------------

TEST(PartitionTest, UpdatesIssuedDuringHealExchangeAreNotLost) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  const StoreConfig scfg = gc_store_config();
  Store a(S{}, 0, net, scfg);
  Store b(S{}, 1, net, scfg);
  for (int r = 0; r < 4; ++r) {
    a.update("k" + std::to_string(r), S::insert(r));
    b.update("k" + std::to_string(r), S::insert(100 + r));
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  net.partition({0, 1});
  a.update("split", S::insert(1));
  b.update("split", S::insert(2));
  (void)a.flush();
  (void)b.flush();
  sched.run();

  net.heal();
  ASSERT_TRUE(a.anti_entropy_round(1, /*reciprocate=*/true));
  // The exchange is now in flight (request at t+10, delta replies at
  // t+20, reciprocal pull behind them). Updates stamped *during* that
  // window ride the normal broadcast path and must not be lost or
  // double-applied when the deltas land around them.
  sched.run_until(sched.now() + 15.0);
  a.update("during", S::insert(10));
  b.update("during", S::insert(20));
  (void)a.flush();
  (void)b.flush();
  sched.run();
  for (int i = 0; i < 3; ++i) {
    (void)a.flush();
    (void)b.flush();
    sched.run();
  }
  EXPECT_EQ(a.state_of("split"), (std::set<int>{1, 2}));
  EXPECT_EQ(b.state_of("split"), (std::set<int>{1, 2}));
  EXPECT_EQ(a.state_of("during"), (std::set<int>{10, 20}));
  EXPECT_EQ(b.state_of("during"), (std::set<int>{10, 20}));
  EXPECT_GE(a.stats().ae_rounds_completed, 1u);
}

// ----- harness: PartitionPlan -----------------------------------------

TEST(PartitionHarnessTest, PartitionPlanSplitsHealsAndConverges) {
  StoreRunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = test::seed_or(21);
  SCOPED_TRACE(test::seed_trace(cfg.seed));
  cfg.fifo_links = true;
  cfg.n_keys = 40;
  cfg.ops_per_process = 80;
  cfg.update_ratio = 0.9;
  cfg.store = gc_store_config();
  cfg.flush_period = 1'000.0;
  cfg.partitions = {
      PartitionPlan{4'000.0, {0, 0, 1, 1}},
      PartitionPlan{11'000.0, {0, 0, 0, 0}},
  };
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    w.value_range = 32;
    return random_set_update(rng, w);
  });
  EXPECT_TRUE(out.converged) << (out.diverged_keys.empty()
                                     ? "?"
                                     : out.diverged_keys.front());
  EXPECT_GT(out.net.messages_dropped_partition, 0u);
  std::uint64_t ae_completed = 0, ae_served = 0, gaps = 0;
  for (const auto& s : out.store_stats) {
    ae_completed += s.ae_rounds_completed;
    ae_served += s.ae_rounds_served;
    gaps += s.stream_gaps_detected;
  }
  EXPECT_GT(ae_completed, 0u);
  EXPECT_GT(ae_served, 0u);
  EXPECT_GT(gaps, 0u);
}

TEST(PartitionHarnessTest, UnhealedFinalSplitIsHealedBeforeTheCheck) {
  StoreRunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = test::seed_or(9);
  SCOPED_TRACE(test::seed_trace(cfg.seed));
  cfg.fifo_links = true;
  cfg.n_keys = 20;
  cfg.ops_per_process = 50;
  cfg.store = gc_store_config();
  cfg.flush_period = 1'000.0;
  // Only a split — no heal plan. The harness heals (plus one AE sweep)
  // before the quiesce barrier so the check speaks for a connected
  // cluster instead of failing on a never-healed topology.
  cfg.partitions = {PartitionPlan{3'000.0, {0, 1, 1}}};
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    return random_set_update(rng, w);
  });
  EXPECT_TRUE(out.converged);
  EXPECT_GT(out.net.messages_dropped_partition, 0u);
  std::uint64_t ae_completed = 0;
  for (const auto& s : out.store_stats) ae_completed += s.ae_rounds_completed;
  EXPECT_GT(ae_completed, 0u);
}

// ----- hold→drop escalation -------------------------------------------

TEST(SimNetworkPartitionTest, EscalationHealWithinGraceOnlyDelays) {
  // A message sent into an escalating split is *held*; healing inside
  // its grace window releases it with fresh latency — delayed, never
  // lost, and nothing counts as a partition drop.
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  int got = 0;
  net.set_handler(0, [](ProcessId, const Env&) {});
  net.set_handler(1, [&got](ProcessId, const Env&) { ++got; });
  net.partition_escalating({0, 1}, /*grace=*/500.0);
  EXPECT_TRUE(net.escalating());
  net.broadcast_others(0, Env{});
  sched.run_until(100.0);
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.held_messages(), 1u);
  net.heal();
  sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.held_messages(), 0u);
  EXPECT_EQ(net.stats().messages_dropped_escalation, 0u);
  EXPECT_EQ(net.stats().messages_dropped_partition, 0u);
}

TEST(SimNetworkPartitionTest, EscalationDropsWhenGraceExpires) {
  SimScheduler sched;
  SimNetwork<Env> net(sched, fifo_net_config(2));
  int got = 0;
  net.set_handler(0, [](ProcessId, const Env&) {});
  net.set_handler(1, [&got](ProcessId, const Env&) { ++got; });
  net.partition_escalating({0, 1}, /*grace=*/500.0);
  net.broadcast_others(0, Env{});
  sched.run();  // past the deadline with the split still up
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.held_messages(), 0u);
  EXPECT_EQ(net.stats().messages_dropped_escalation, 1u);
  EXPECT_EQ(net.stats().messages_dropped_partition, 1u);
  net.heal();
  net.broadcast_others(0, Env{});
  sched.run();
  EXPECT_EQ(got, 1);  // post-heal traffic flows normally
}

TEST(PartitionHarnessTest, EscalatingPlanHealedInsideGraceLosesNothing) {
  // A short blip under a generous grace: every cross-group message
  // rides out the split in the hold buffer, so the run needs no gap
  // detection and no anti-entropy to converge.
  StoreRunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = test::seed_or(31);
  SCOPED_TRACE(test::seed_trace(cfg.seed));
  cfg.fifo_links = true;
  cfg.n_keys = 20;
  cfg.ops_per_process = 60;
  cfg.store = gc_store_config();
  cfg.flush_period = 1'000.0;
  cfg.partitions = {
      PartitionPlan{3'000.0, {0, 1, 1}, /*anti_entropy=*/true,
                    /*ae_delay=*/1.0, /*escalation_grace=*/6'000.0},
      PartitionPlan{5'000.0, {0, 0, 0}},
  };
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    return random_set_update(rng, w);
  });
  EXPECT_TRUE(out.converged);
  EXPECT_EQ(out.net.messages_dropped_escalation, 0u);
  EXPECT_EQ(out.net.messages_dropped_partition, 0u);
  EXPECT_GT(out.net.messages_held_partition, 0u);
}

TEST(PartitionHarnessTest, EscalationOutlivingGraceDropsAndAeRepairs) {
  // The split outlives the grace window: held messages expire into
  // drops (both the escalation and the partition counters move), the
  // receivers detect stream gaps, and the heal-time anti-entropy pull
  // reconciles — the drop-mode guarantees degrade to, not past, the
  // existing repair path.
  StoreRunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = test::seed_or(32);
  SCOPED_TRACE(test::seed_trace(cfg.seed));
  cfg.fifo_links = true;
  cfg.n_keys = 20;
  cfg.ops_per_process = 80;
  cfg.store = gc_store_config();
  cfg.flush_period = 1'000.0;
  cfg.partitions = {
      PartitionPlan{3'000.0, {0, 1, 1}, /*anti_entropy=*/true,
                    /*ae_delay=*/1.0, /*escalation_grace=*/1'500.0},
      PartitionPlan{12'000.0, {0, 0, 0}},
  };
  const auto out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    return random_set_update(rng, w);
  });
  EXPECT_TRUE(out.converged) << (out.diverged_keys.empty()
                                     ? "?"
                                     : out.diverged_keys.front());
  EXPECT_GT(out.net.messages_dropped_escalation, 0u);
  EXPECT_GE(out.net.messages_dropped_partition,
            out.net.messages_dropped_escalation);
  std::uint64_t ae_completed = 0, skipped = 0;
  for (const auto& s : out.store_stats) {
    ae_completed += s.ae_rounds_completed;
    skipped += s.ae_entries_skipped_covered;
  }
  EXPECT_GT(ae_completed, 0u);
  // Coverage summaries on the AE request: donors skip suffix entries
  // the requester provably held before the split.
  EXPECT_GT(skipped, 0u);
}

}  // namespace
}  // namespace ucw
