#include <gtest/gtest.h>

#include "criteria/visibility_solver.hpp"
#include "history/builder.hpp"
#include "history/export.hpp"
#include "history/figures.hpp"

namespace ucw {
namespace {

TEST(DotExport, ContainsEveryEventAndChainEdge) {
  const auto h = figure_1b();
  const std::string dot = to_dot(h);
  EXPECT_NE(dot.find("digraph history"), std::string::npos);
  EXPECT_NE(dot.find("I(1)"), std::string::npos);
  EXPECT_NE(dot.find("D(2)"), std::string::npos);
  EXPECT_NE(dot.find("R/{1, 2}^ω"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_p1"), std::string::npos);
  EXPECT_NE(dot.find("e0 -> e1"), std::string::npos);  // chain edge
}

TEST(DotExport, EventIdsOptional) {
  const auto h = figure_1c();
  DotOptions opt;
  opt.show_event_ids = true;
  const std::string dot = to_dot(h, opt);
  EXPECT_NE(dot.find("#0 "), std::string::npos);
  EXPECT_EQ(to_dot(h).find("#0 "), std::string::npos);
}

TEST(DotExport, VisibilityEdgesFromSolverWitness) {
  const auto h = figure_1d();
  typename VisibilitySolver<SetAdt<int>>::Options solver_opt;
  solver_opt.require_suc = true;
  VisibilitySolver<SetAdt<int>> solver(h, solver_opt);
  ASSERT_EQ(solver.solve(), std::optional<bool>(true));

  DotOptions opt;
  opt.visibility = solver.witness().visible;
  const std::string dot = to_dot(h, opt);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST(DotExport, ExtraEdgesDrawn) {
  using S = SetAdt<int>;
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1));
  const EventId a = b.last_id();
  b.update(1, S::insert(2));
  const EventId c = b.last_id();
  b.order_edge(a, c);
  const auto h = b.build();
  const std::string dot = to_dot(h);
  EXPECT_NE(dot.find("constraint=false"), std::string::npos);
}

}  // namespace
}  // namespace ucw
