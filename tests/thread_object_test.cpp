// ThreadUcObject under genuine concurrency: convergence, wait-freedom of
// the operation surface, and agreement with the DES semantics.
#include <gtest/gtest.h>

#include <thread>

#include "adt/all.hpp"
#include "core/thread_object.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

TEST(ThreadUcObject, TwoThreadsConvergeOnSet) {
  ThreadNetwork<UpdateMessage<S>> net(2);
  IntSet final0, final1;
  std::thread t0([&] {
    ThreadUcObject<S> obj(S{}, 0, net);
    for (int i = 0; i < 500; ++i) {
      obj.update(i % 2 == 0 ? S::insert(i % 20) : S::remove((i - 1) % 20));
    }
    obj.drain_until(1000);
    final0 = obj.query(S::read());
    net.inbox(0).close();
  });
  std::thread t1([&] {
    ThreadUcObject<S> obj(S{}, 1, net);
    for (int i = 0; i < 500; ++i) {
      obj.update(i % 3 == 0 ? S::insert(i % 20) : S::remove(i % 20));
    }
    obj.drain_until(1000);
    final1 = obj.query(S::read());
    net.inbox(1).close();
  });
  t0.join();
  t1.join();
  EXPECT_EQ(final0, final1);
}

TEST(ThreadUcObject, CounterSumsExactlyUnderContention) {
  constexpr std::size_t kThreads = 4;
  constexpr int kOps = 2'000;
  ThreadNetwork<UpdateMessage<CounterAdt>> net(kThreads);
  std::vector<std::int64_t> results(kThreads, -1);
  std::vector<std::thread> threads;
  for (ProcessId p = 0; p < kThreads; ++p) {
    threads.emplace_back([&, p] {
      ThreadUcObject<CounterAdt> obj(CounterAdt{}, p, net);
      for (int i = 0; i < kOps; ++i) {
        obj.update(CounterAdt::add(1));
      }
      obj.drain_until(kThreads * kOps);
      results[p] = obj.query(CounterAdt::read());
      net.inbox(p).close();
    });
  }
  for (auto& t : threads) t.join();
  for (ProcessId p = 0; p < kThreads; ++p) {
    EXPECT_EQ(results[p], kThreads * kOps) << "replica " << p;
  }
}

TEST(ThreadUcObject, QueriesNeverBlockWhilePeersAreSilent) {
  // A replica whose peer never sends anything must still answer
  // instantly — wait-freedom means no receive dependency.
  ThreadNetwork<UpdateMessage<S>> net(2);
  ThreadUcObject<S> obj(S{}, 0, net);
  obj.update(S::insert(7));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_EQ(obj.query(S::read()), IntSet{7});
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 1.0);
}

TEST(ThreadUcObject, StragglersReorderedByStampNotArrival) {
  // Deliver a peer's update with a *smaller* stamp after local ones:
  // the replica must arbitrate by stamp, like the DES version.
  ThreadNetwork<UpdateMessage<S>> net(2);
  ThreadUcObject<S> a(S{}, 0, net);
  a.update(S::insert(1));  // stamp (1,0)
  a.update(S::remove(2));  // stamp (2,0)
  // Peer's I(2) stamped (1,1): between (1,0) and (2,0).
  net.inbox(0).push({1, UpdateMessage<S>{Stamp{1, 1}, S::insert(2), {}}});
  // Arbitration: I(1) · I(2) · D(2) = {1}.
  EXPECT_EQ(a.query(S::read()), IntSet{1});
}

TEST(ThreadUcObject, ConvergesWithSnapshotPolicyToo) {
  ThreadNetwork<UpdateMessage<S>> net(2);
  typename ReplayReplica<S>::Config cfg{ReplayPolicy::Snapshot, 16};
  IntSet finals[2];
  std::thread t0([&] {
    ThreadUcObject<S> obj(S{}, 0, net, cfg);
    for (int i = 0; i < 300; ++i) obj.update(S::insert(i % 10));
    obj.drain_until(600);
    finals[0] = obj.query(S::read());
    net.inbox(0).close();
  });
  std::thread t1([&] {
    ThreadUcObject<S> obj(S{}, 1, net, cfg);
    for (int i = 0; i < 300; ++i) obj.update(S::remove(i % 10));
    obj.drain_until(600);
    finals[1] = obj.query(S::read());
    net.inbox(1).close();
  });
  t0.join();
  t1.join();
  EXPECT_EQ(finals[0], finals[1]);
}

}  // namespace
}  // namespace ucw
