#include <gtest/gtest.h>

#include "adt/log.hpp"
#include "history/builder.hpp"
#include "history/figures.hpp"
#include "lin/chain.hpp"
#include "lin/downset.hpp"
#include "lin/enumerate.hpp"
#include "lin/update_poset.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

History<S> two_by_two() {
  // p0: I(1) · D(2)    p1: I(2) · D(1)   (figure 1b without the reads)
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).update(0, S::remove(2));
  b.update(1, S::insert(2)).update(1, S::remove(1));
  return b.build();
}

TEST(UpdatePoset, PredMasksFollowChains) {
  const auto h = two_by_two();
  UpdatePoset<S> poset(h);
  ASSERT_EQ(poset.count(), 4u);
  // Slot order matches event-id order: I(1), D(2), I(2), D(1).
  EXPECT_EQ(poset.pred_mask(0), Bitset64{});
  EXPECT_EQ(poset.pred_mask(1), Bitset64::single(0));
  EXPECT_EQ(poset.pred_mask(2), Bitset64{});
  EXPECT_EQ(poset.pred_mask(3), Bitset64::single(2));
}

TEST(UpdatePoset, EnabledRespectsPredecessors) {
  const auto h = two_by_two();
  UpdatePoset<S> poset(h);
  EXPECT_EQ(poset.enabled(Bitset64{}),
            (Bitset64::single(0) | Bitset64::single(2)));
  EXPECT_EQ(poset.enabled(Bitset64::single(0)),
            (Bitset64::single(1) | Bitset64::single(2)));
  EXPECT_TRUE(poset.enabled(Bitset64::all(4)).empty());
}

TEST(DownsetExplorer, FinalStatesOfTwoByTwo) {
  // The paper (discussion of Fig. 1b) derives exactly three reachable
  // final states: ∅, {1}, {2} — and crucially never {1,2}.
  const auto h = two_by_two();
  DownsetExplorer<S> explorer(h);
  const auto& finals = explorer.final_states();
  std::set<IntSet> got(finals.begin(), finals.end());
  EXPECT_EQ(got, (std::set<IntSet>{{}, {1}, {2}}));
}

TEST(DownsetExplorer, MatchesBruteForceEnumeration) {
  const auto h = two_by_two();
  // Brute force: every linearization of the 4 updates.
  std::set<IntSet> brute;
  SequentialReplayer<S> replayer{S{}};
  for_each_linearization(h, [&](const std::vector<EventId>& word) {
    std::vector<typename S::Update> ups;
    for (EventId id : word) ups.push_back(h.event(id).update());
    brute.insert(replayer.apply_updates(ups));
    return true;
  });
  DownsetExplorer<S> explorer(h);
  const auto& finals = explorer.final_states();
  const std::set<IntSet> dp(finals.begin(), finals.end());
  EXPECT_EQ(dp, brute);
}

TEST(DownsetExplorer, CommutingUpdatesCollapseToOneState) {
  HistoryBuilder<S> b{S{}, 3};
  for (ProcessId p = 0; p < 3; ++p) {
    b.update(p, S::insert(static_cast<int>(p)));
    b.update(p, S::insert(static_cast<int>(p) + 10));
  }
  const auto h = b.build();
  DownsetExplorer<S> explorer(h);
  EXPECT_EQ(explorer.final_states().size(), 1u);
  EXPECT_EQ(*explorer.final_states().begin(),
            (IntSet{0, 1, 2, 10, 11, 12}));
}

TEST(DownsetExplorer, IntermediateDownsets) {
  const auto h = two_by_two();
  DownsetExplorer<S> explorer(h);
  // After only I(1) (slot 0): exactly {1}.
  const auto& states = explorer.states_for(Bitset64::single(0));
  ASSERT_EQ(states.size(), 1u);
  EXPECT_EQ(*states.begin(), (IntSet{1}));
}

TEST(DownsetExplorer, BudgetExhaustionReported) {
  HistoryBuilder<AppendLogAdt<int>> b{AppendLogAdt<int>{}, 6};
  // Appends never commute: states explode combinatorially.
  int v = 0;
  for (ProcessId p = 0; p < 6; ++p) {
    for (int i = 0; i < 3; ++i) {
      b.update(p, AppendLogAdt<int>::append(v++));
    }
  }
  const auto h = b.build();
  DownsetExplorer<AppendLogAdt<int>> explorer(h, ExploreBudget{.max_states = 500});
  (void)explorer.final_states();
  EXPECT_TRUE(explorer.stats().budget_exceeded);
}

TEST(Enumerate, CountsInterleavings) {
  // Two chains of length 2 → C(4,2) = 6 interleavings.
  const auto h = two_by_two();
  EXPECT_EQ(count_linearizations(h), 6u);
}

TEST(Enumerate, SingleChainHasOneLinearization) {
  HistoryBuilder<S> b{S{}, 1};
  b.update(0, S::insert(1)).update(0, S::insert(2)).update(0, S::insert(3));
  EXPECT_EQ(count_linearizations(b.build()), 1u);
}

TEST(Enumerate, RecognitionAgreesWithReplay) {
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query(0, S::read(), IntSet{1, 2});
  b.update(1, S::insert(2));
  const auto h = b.build();
  // I(1) · I(2) · R/{1,2} is recognized.
  EXPECT_TRUE(exists_recognized_linearization(h));

  HistoryBuilder<S> b2{S{}, 2};
  b2.update(0, S::insert(1)).query(0, S::read(), IntSet{2});
  b2.update(1, S::insert(2));
  // R follows I(1), so 1 must be in the read value: unsatisfiable.
  EXPECT_FALSE(exists_recognized_linearization(b2.build()));
}

TEST(ChainLinearizer, Figure2BothChainsLinearize) {
  const auto h = figure_2();
  ChainLinearizer<S> lin(h);
  EXPECT_EQ(lin.chain_has_linearization(0), std::optional<bool>(true));
  EXPECT_EQ(lin.chain_has_linearization(1), std::optional<bool>(true));
}

TEST(ChainLinearizer, Figure1aChainFails) {
  const auto h = figure_1a();
  ChainLinearizer<S> lin(h);
  // R/{2} after I(1) with no deletion available: impossible.
  EXPECT_EQ(lin.chain_has_linearization(0), std::optional<bool>(false));
}

TEST(ChainLinearizer, OmegaMustHoldAtFinalState) {
  // p0: I(1) · R/{1}^ω with p1: I(2) — ω-read misses 2, so no
  // linearization of the chain against *all* updates exists.
  HistoryBuilder<S> b{S{}, 2};
  b.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1});
  b.update(1, S::insert(2));
  const auto h = b.build();
  ChainLinearizer<S> lin(h);
  EXPECT_EQ(lin.chain_has_linearization(0), std::optional<bool>(false));

  HistoryBuilder<S> b2{S{}, 2};
  b2.update(0, S::insert(1)).query_omega(0, S::read(), IntSet{1, 2});
  b2.update(1, S::insert(2));
  const auto h2 = b2.build();
  ChainLinearizer<S> lin2(h2);
  EXPECT_EQ(lin2.chain_has_linearization(0), std::optional<bool>(true));
}

TEST(ChainLinearizer, ExtraEdgePinsOffChainUpdate) {
  // p1's update is forced after p0's query via an extra edge; the query
  // therefore cannot see it.
  HistoryBuilder<S> b{S{}, 2};
  b.query(0, S::read(), IntSet{2});
  const EventId q = b.last_id();
  b.update(1, S::insert(2));
  const EventId u = b.last_id();
  b.order_edge(u, q);  // I(2) ↦ R: the read can (must) see it
  const auto h = b.build();
  ChainLinearizer<S> lin(h);
  EXPECT_EQ(lin.chain_has_linearization(0), std::optional<bool>(true));

  HistoryBuilder<S> b2{S{}, 2};
  b2.query(0, S::read(), IntSet{2});
  const EventId q2 = b2.last_id();
  b2.update(1, S::insert(2));
  const EventId u2 = b2.last_id();
  b2.order_edge(q2, u2);  // R ↦ I(2): the read precedes the only I(2)
  const auto h2 = b2.build();
  ChainLinearizer<S> lin2(h2);
  EXPECT_EQ(lin2.chain_has_linearization(0), std::optional<bool>(false));
}

}  // namespace
}  // namespace ucw
