// Property-based end-to-end suites: randomized multi-process simulations
// validated against the paper's definitions.
//
//  * Proposition 4: every history Algorithm 1 produces is strong update
//    consistent — validated per-run via the certificate (polynomial) and
//    cross-validated on small runs with the exact SUC solver.
//  * The converged state is always explainable by a linearization of the
//    updates (UC), for every replay policy, latency model and seed.
//  * OR-Set runs always satisfy Definition 10 (SEC + insert-wins), and
//    measurably often converge to states *no* update linearization
//    explains — the Section VI separation.
//  * Proposition 2 inclusions on run-derived and mutated histories.
#include <gtest/gtest.h>

#include "criteria/all.hpp"
#include "crdt/all.hpp"
#include "history/builder.hpp"
#include "runtime/set_family.hpp"
#include "runtime/sim_harness.hpp"

namespace ucw {
namespace {

using S = SetAdt<int>;
using IntSet = std::set<int>;

struct SimCase {
  std::uint64_t seed;
  std::size_t n_processes;
  ReplayPolicy policy;
  bool fifo;

  friend std::ostream& operator<<(std::ostream& os, const SimCase& c) {
    std::string policy = to_string(c.policy);
    policy.erase(std::remove(policy.begin(), policy.end(), '-'),
                 policy.end());
    return os << "seed" << c.seed << "_n" << c.n_processes << "_" << policy
              << (c.fifo ? "_fifo" : "");
  }
};

std::vector<SimCase> sim_cases() {
  std::vector<SimCase> cases;
  std::uint64_t seed = 100;
  for (std::size_t n : {2, 3, 5}) {
    for (ReplayPolicy p : {ReplayPolicy::NaiveReplay,
                           ReplayPolicy::CachedPrefix,
                           ReplayPolicy::Snapshot}) {
      cases.push_back(SimCase{seed++, n, p, false});
    }
  }
  cases.push_back(SimCase{200, 4, ReplayPolicy::CachedPrefix, true});
  cases.push_back(SimCase{201, 6, ReplayPolicy::Snapshot, false});
  return cases;
}

class UcSimulation : public ::testing::TestWithParam<SimCase> {
 protected:
  RunConfig config() const {
    const SimCase& c = GetParam();
    RunConfig cfg;
    cfg.n_processes = c.n_processes;
    cfg.seed = c.seed;
    cfg.latency = LatencyModel::exponential(800.0);
    cfg.fifo_links = c.fifo;
    cfg.policy = c.policy;
    cfg.workload.ops_per_process = 30;
    cfg.workload.update_ratio = 0.7;
    cfg.workload.value_range = 6;
    return cfg;
  }
};

TEST_P(UcSimulation, ReplicasConverge) {
  auto out = run_uc_simulation(S{}, config(), [&](Rng& rng) {
    return random_set_update<int>(rng, config().workload);
  });
  EXPECT_TRUE(out.converged);
  EXPECT_GE(out.final_states.size(), 2u);
}

TEST_P(UcSimulation, CertificateSatisfiesDefinition9) {
  auto out = run_uc_simulation(S{}, config(), [&](Rng& rng) {
    return random_set_update<int>(rng, config().workload);
  });
  const auto result =
      validate_suc_certificate(out.history, out.certificate);
  EXPECT_EQ(result.verdict, Verdict::Yes) << result.explanation;
}

TEST_P(UcSimulation, ConvergedStateExplainedByUpdateLinearization) {
  // Smaller workload than the sibling tests: the downset DP is exact but
  // exponential in non-commuting updates, so keep |U| near 20.
  RunConfig cfg = config();
  cfg.workload.ops_per_process = std::max<std::size_t>(
      2, 20 / cfg.n_processes);
  cfg.workload.update_ratio = 0.5;
  auto out = run_uc_simulation(S{}, cfg, [&](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  ASSERT_LE(out.history.update_ids().size(), 24u);
  const auto result =
      check_uc_final_state(out.history, out.final_states.front());
  EXPECT_EQ(result.verdict, Verdict::Yes) << result.explanation;
}

INSTANTIATE_TEST_SUITE_P(Random, UcSimulation,
                         ::testing::ValuesIn(sim_cases()),
                         [](const auto& info) {
                           std::ostringstream os;
                           os << info.param;
                           return os.str();
                         });

TEST(UcSimulationSmall, ExactSolverConfirmsSuc) {
  // Small runs (few updates) are within reach of the exact SUC solver:
  // solver and certificate must agree.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunConfig cfg;
    cfg.n_processes = 2;
    cfg.seed = seed;
    cfg.latency = LatencyModel::exponential(500.0);
    cfg.workload.ops_per_process = 3;
    cfg.workload.update_ratio = 0.6;
    cfg.workload.value_range = 3;
    auto out = run_uc_simulation(S{}, cfg, [&](Rng& rng) {
      return random_set_update<int>(rng, cfg.workload);
    });
    const auto cert = validate_suc_certificate(out.history, out.certificate);
    ASSERT_EQ(cert.verdict, Verdict::Yes) << "seed " << seed;
    const auto solved = check_suc(out.history);
    EXPECT_EQ(solved.verdict, Verdict::Yes)
        << "seed " << seed << ": " << solved.explanation;
  }
}

TEST(UcSimulationCrash, SurvivorsStillConvergeAndStaySuc) {
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    RunConfig cfg;
    cfg.n_processes = 4;
    cfg.seed = seed;
    cfg.latency = LatencyModel::exponential(400.0);
    cfg.workload.ops_per_process = 20;
    cfg.crashes = {CrashPlan{1, 4'000.0}, CrashPlan{3, 9'000.0}};
    auto out = run_uc_simulation(S{}, cfg, [&](Rng& rng) {
      return random_set_update<int>(rng, cfg.workload);
    });
    EXPECT_TRUE(out.converged) << "seed " << seed;
    EXPECT_LE(out.final_states.size(), 2u);
    // Wait-freedom under crashes: survivors completed all their ops.
    EXPECT_GT(out.history.size(), 0u);
  }
}

TEST(UcSimulationHeavyTail, ConvergesUnderParetoDelays) {
  RunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = 77;
  cfg.latency = LatencyModel::pareto(200.0, 1.3);  // wild reordering
  cfg.workload.ops_per_process = 40;
  auto out = run_uc_simulation(S{}, cfg, [&](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  EXPECT_TRUE(out.converged);
  const auto cert = validate_suc_certificate(out.history, out.certificate);
  EXPECT_EQ(cert.verdict, Verdict::Yes) << cert.explanation;
  // Heavy tails make stragglers: late insertions must have occurred.
  std::uint64_t late = 0;
  for (const auto& st : out.replica_stats) late += st.late_insertions;
  EXPECT_GT(late, 0u);
}

TEST(UcSimulationGc, GarbageCollectionPreservesConvergence) {
  RunConfig cfg;
  cfg.n_processes = 3;
  cfg.seed = 55;
  cfg.latency = LatencyModel::uniform(50.0, 300.0);
  cfg.fifo_links = true;
  cfg.enable_gc = true;
  cfg.gc_period = 2'000.0;
  cfg.workload.ops_per_process = 50;
  auto out = run_uc_simulation(S{}, cfg, [&](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  EXPECT_TRUE(out.converged);
  std::uint64_t folded = 0;
  for (const auto& st : out.replica_stats) folded += st.gc_folded;
  EXPECT_GT(folded, 0u);
}

TEST(CounterSimulation, CommutingUpdatesAlwaysUc) {
  RunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = 13;
  cfg.workload.ops_per_process = 25;
  auto out = run_uc_simulation(CounterAdt{}, cfg, [](Rng& rng) {
    return random_counter_update(rng);
  });
  EXPECT_TRUE(out.converged);
  const auto cert = validate_suc_certificate(out.history, out.certificate);
  EXPECT_EQ(cert.verdict, Verdict::Yes) << cert.explanation;
}

// ---------------------------------------------------------------------
// OR-Set runs against Definition 10, and the UC/insert-wins separation.
// ---------------------------------------------------------------------

struct OrSetRun {
  History<S> history;
  RunCertificate certificate;
  IntSet final_state;
  bool converged;
};

/// Drives an OR-Set cluster with a recorded workload and assembles the
/// history + visibility certificate from actual deliveries. A small
/// value range plus latency well above the think time makes blind
/// cross-process deletes (the Fig. 1b shape) likely.
OrSetRun run_or_set(std::uint64_t seed, std::size_t n_processes,
                    std::size_t ops_per_process, int value_range = 5,
                    double latency_mean = 700.0) {
  SimScheduler scheduler;
  using R = OrSetReplica<int>;

  // Visibility bookkeeping: per replica, the stamps of updates applied.
  // Updates are stamped with a per-run Lamport clock for the certificate
  // (the OR-Set itself doesn't need stamps; the certificate's total
  // order does).
  std::vector<LamportClock> clocks;
  std::vector<std::vector<Stamp>> seen(n_processes);
  HistoryRecorder<S> recorder(S{}, n_processes);

  struct Tagged {
    R::Message inner;
    Stamp stamp;
    typename S::Update as_update;
  };
  SimNetwork<Tagged>::Config tcfg;
  tcfg.n_processes = n_processes;
  tcfg.latency = LatencyModel::exponential(latency_mean);
  tcfg.seed = seed;
  SimNetwork<Tagged> tagged_net(scheduler, tcfg);

  std::vector<std::unique_ptr<R>> replicas;
  for (ProcessId p = 0; p < n_processes; ++p) {
    clocks.emplace_back(p);
    replicas.push_back(std::make_unique<R>(p));
  }
  for (ProcessId p = 0; p < n_processes; ++p) {
    tagged_net.set_handler(p, [&, p](ProcessId from, const Tagged& m) {
      clocks[p].observe(m.stamp);
      replicas[p]->apply(from, m.inner);
      seen[p].push_back(m.stamp);
    });
  }

  Rng root(seed);
  for (std::size_t i = 0; i < ops_per_process * n_processes; ++i) {
    const ProcessId p =
        static_cast<ProcessId>(root.uniform_int(0, n_processes - 1));
    const int v = static_cast<int>(root.uniform_int(0, value_range - 1));
    const bool ins = root.chance(0.55);
    auto inner = ins ? replicas[p]->local_insert(v)
                     : replicas[p]->local_remove(v);
    const Stamp stamp = clocks[p].tick();
    const auto as_update = ins ? S::insert(v) : S::remove(v);
    recorder.record_update(p, stamp, as_update, [&] {
      auto vis = seen[p];
      vis.push_back(stamp);
      return vis;
    }());
    tagged_net.broadcast(p, Tagged{inner, stamp, as_update});
    scheduler.run_until(scheduler.now() +
                        root.uniform_real(10.0, 400.0));
  }
  scheduler.run();

  OrSetRun out{History<S>(S{}, {}, n_processes), {}, {}, true};
  for (ProcessId p = 0; p < n_processes; ++p) {
    const auto state = replicas[p]->read();
    recorder.record_query(p, clocks[p].tick(), S::read(), state, seen[p],
                          /*final_read=*/true);
    if (p == 0) out.final_state = state;
    if (!(state == replicas[0]->read())) out.converged = false;
  }
  auto rec = recorder.build();
  out.history = std::move(rec.history);
  out.certificate = std::move(rec.certificate);
  return out;
}

TEST(OrSetRuns, AlwaysInsertWinsConsistent) {
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    auto run = run_or_set(seed, 3, 6);
    EXPECT_TRUE(run.converged) << "seed " << seed;
    const auto iw =
        validate_insert_wins_certificate(run.history, run.certificate);
    EXPECT_EQ(iw.verdict, Verdict::Yes)
        << "seed " << seed << ": " << iw.explanation;
  }
}

TEST(OrSetRuns, SometimesNotExplainableByAnyLinearization) {
  // The Section VI separation, measured: across seeds, at least one run
  // must converge to a state outside the reachable set of every update
  // linearization (OR-Set is not update consistent).
  std::size_t unexplainable = 0;
  std::size_t total = 0;
  for (std::uint64_t seed = 400; seed < 440; ++seed) {
    auto run = run_or_set(seed, 2, 4, /*value_range=*/3,
                          /*latency_mean=*/3'000.0);
    if (!run.converged) continue;
    if (run.history.update_ids().size() > 18) continue;
    ++total;
    const auto uc = check_uc_final_state(run.history, run.final_state);
    if (uc.verdict == Verdict::No) ++unexplainable;
  }
  ASSERT_GT(total, 10u);
  EXPECT_GT(unexplainable, 0u)
      << "every OR-Set run was UC-explainable; expected at least one "
         "insert-wins anomaly";
}

// ---------------------------------------------------------------------
// Proposition 2 inclusions on mutated histories.
// ---------------------------------------------------------------------

TEST(Proposition2, InclusionsHoldOnRandomSmallHistories) {
  // Random small ω-tailed histories: whatever the classification, the
  // lattice SUC ⇒ SEC ∧ UC and UC ⇒ EC must hold.
  std::size_t checked = 0;
  for (std::uint64_t seed = 500; seed < 560; ++seed) {
    Rng rng(seed);
    HistoryBuilder<S> b{S{}, 2};
    for (ProcessId p = 0; p < 2; ++p) {
      const int n_ops = static_cast<int>(rng.uniform_int(1, 3));
      for (int i = 0; i < n_ops; ++i) {
        const int v = static_cast<int>(rng.uniform_int(1, 2));
        if (rng.chance(0.6)) {
          b.update(p, rng.chance(0.6) ? S::insert(v) : S::remove(v));
        } else {
          IntSet out;
          if (rng.chance(0.5)) out.insert(1);
          if (rng.chance(0.3)) out.insert(2);
          b.query(p, S::read(), out);
        }
      }
      IntSet final_out;
      if (rng.chance(0.6)) final_out.insert(1);
      if (rng.chance(0.4)) final_out.insert(2);
      b.query_omega(p, S::read(), final_out);
    }
    const auto h = b.build();
    const auto row = check_all_criteria(h);
    ASSERT_NE(row.suc.verdict, Verdict::Unknown);
    ASSERT_NE(row.uc.verdict, Verdict::Unknown);
    if (row.suc.yes()) {
      EXPECT_TRUE(row.sec.yes()) << "seed " << seed << "\n" << h.to_string();
      EXPECT_TRUE(row.uc.yes()) << "seed " << seed << "\n" << h.to_string();
    }
    if (row.uc.yes()) {
      EXPECT_TRUE(row.ec.yes()) << "seed " << seed << "\n" << h.to_string();
    }
    ++checked;
  }
  EXPECT_EQ(checked, 60u);
}

// ---------------------------------------------------------------------
// Set-family comparison plumbing (the E9 engine).
// ---------------------------------------------------------------------

TEST(SetFamily, AllImplementationsRunTheSameSchedule) {
  for (SetImplKind kind : kAllSetImpls) {
    SimScheduler scheduler;
    auto cluster = SetCluster::make(kind, scheduler, 3, 17,
                                    LatencyModel::exponential(200.0),
                                    kind == SetImplKind::Pipelined);
    Rng rng(17);
    for (int i = 0; i < 60; ++i) {
      const ProcessId p = static_cast<ProcessId>(rng.uniform_int(0, 2));
      const int v = static_cast<int>(rng.uniform_int(0, 5));
      if (rng.chance(0.6)) {
        cluster->node(p).insert(v);
      } else {
        cluster->node(p).remove(v);
      }
      scheduler.run_until(scheduler.now() + 40.0);
    }
    scheduler.run();
    if (kind != SetImplKind::Pipelined) {
      EXPECT_TRUE(cluster->converged()) << to_string(kind);
    }
    EXPECT_GT(cluster->net_stats().messages_delivered, 0u)
        << to_string(kind);
  }
}

TEST(SetFamily, UcSetFinalStateAlwaysExplainable_PipelinedDiverges) {
  // Run the Fig.1b-shaped schedule everywhere; UC-Set's result must be a
  // linearization outcome, Pipelined may diverge.
  SimScheduler s1;
  auto uc = SetCluster::make(SetImplKind::UcSet, s1, 2, 5,
                             LatencyModel::constant(1000.0));
  uc->node(0).insert(1);
  uc->node(0).remove(2);
  uc->node(1).insert(2);
  uc->node(1).remove(1);
  s1.run();
  EXPECT_TRUE(uc->converged());
  const IntSet uc_final = uc->node(0).read();
  // Paper: reachable finals of that update poset are ∅, {1}, {2}.
  EXPECT_TRUE(uc_final == IntSet{} || uc_final == IntSet{1} ||
              uc_final == IntSet{2})
      << format_value(uc_final);

  SimScheduler s2;
  auto orset = SetCluster::make(SetImplKind::OrSet, s2, 2, 5,
                                LatencyModel::constant(1000.0));
  orset->node(0).insert(1);
  orset->node(0).remove(2);
  orset->node(1).insert(2);
  orset->node(1).remove(1);
  s2.run();
  EXPECT_TRUE(orset->converged());
  // Insert-wins: both concurrent inserts survive — not a linearization
  // outcome.
  EXPECT_EQ(orset->node(0).read(), (IntSet{1, 2}));
}

}  // namespace
}  // namespace ucw
