#include <gtest/gtest.h>

#include <memory>

#include "crdt/all.hpp"
#include "net/scheduler.hpp"

namespace ucw {
namespace {

using IntSet = std::set<int>;

/// Builds n replicas of CRDT R on a fresh network.
template <typename R>
struct Cluster {
  SimScheduler scheduler;
  std::unique_ptr<SimNetwork<typename R::Message>> net;
  std::vector<std::unique_ptr<SimCrdtObject<R>>> nodes;

  explicit Cluster(std::size_t n,
                   LatencyModel latency = LatencyModel::exponential(100.0),
                   std::uint64_t seed = 1) {
    typename SimNetwork<typename R::Message>::Config cfg;
    cfg.n_processes = n;
    cfg.latency = latency;
    cfg.seed = seed;
    net = std::make_unique<SimNetwork<typename R::Message>>(scheduler, cfg);
    for (ProcessId p = 0; p < n; ++p) {
      nodes.push_back(std::make_unique<SimCrdtObject<R>>(*net, p));
    }
  }
};

TEST(GSet, InsertOnlyConverges) {
  Cluster<GSetReplica<int>> c(3);
  for (int i = 0; i < 20; ++i) {
    auto& n = *c.nodes[static_cast<std::size_t>(i % 3)];
    n.emit(n->local_insert(i));
  }
  c.scheduler.run();
  const auto expected = c.nodes[0]->replica().read();
  for (auto& n : c.nodes) EXPECT_EQ((*n)->read(), expected);
  EXPECT_EQ(expected.size(), 20u);
}

TEST(TwoPhaseSet, RemovedElementsNeverReturn) {
  Cluster<TwoPhaseSetReplica<int>> c(2);
  c.nodes[0]->emit(c.nodes[0]->replica().local_insert(1));
  c.scheduler.run();
  c.nodes[1]->emit(c.nodes[1]->replica().local_remove(1));
  c.scheduler.run();
  EXPECT_EQ(c.nodes[0]->replica().read(), IntSet{});
  // Re-insertion is permanently blocked: the black list wins.
  c.nodes[0]->emit(c.nodes[0]->replica().local_insert(1));
  c.scheduler.run();
  EXPECT_EQ(c.nodes[0]->replica().read(), IntSet{});
  EXPECT_EQ(c.nodes[1]->replica().read(), IntSet{});
}

TEST(PnSet, ConcurrentInsertsNeedMatchingDeletes) {
  Cluster<PnSetReplica<int>> c(2, LatencyModel::constant(100.0));
  // Both insert 5 concurrently: counter reaches 2.
  c.nodes[0]->emit(c.nodes[0]->replica().local_insert(5));
  c.nodes[1]->emit(c.nodes[1]->replica().local_insert(5));
  c.scheduler.run();
  // One delete is not enough — the Section VI anomaly.
  c.nodes[0]->emit(c.nodes[0]->replica().local_remove(5));
  c.scheduler.run();
  EXPECT_EQ(c.nodes[0]->replica().read(), IntSet{5});
  EXPECT_EQ(c.nodes[1]->replica().read(), IntSet{5});
  c.nodes[1]->emit(c.nodes[1]->replica().local_remove(5));
  c.scheduler.run();
  EXPECT_EQ(c.nodes[0]->replica().read(), IntSet{});
}

TEST(OrSet, InsertWinsAgainstConcurrentRemove) {
  Cluster<OrSetReplica<int>> c(2, LatencyModel::constant(100.0));
  c.nodes[0]->emit(c.nodes[0]->replica().local_insert(1));
  c.scheduler.run();
  // Concurrently: p0 removes 1 (observing its tag), p1 re-inserts 1.
  c.nodes[0]->emit(c.nodes[0]->replica().local_remove(1));
  c.nodes[1]->emit(c.nodes[1]->replica().local_insert(1));
  c.scheduler.run();
  // p1's fresh tag was not observed by the remove: the insert wins.
  EXPECT_EQ(c.nodes[0]->replica().read(), IntSet{1});
  EXPECT_EQ(c.nodes[1]->replica().read(), IntSet{1});
}

TEST(OrSet, Figure1bConvergesToBothElements) {
  // The run shape of Fig. 1b: p0 does I(1)·D(2), p1 does I(2)·D(1),
  // deliveries cross after both finished. The OR-Set keeps both — the
  // state no update linearization explains (not UC), yet SEC+insert-wins.
  Cluster<OrSetReplica<int>> c(2, LatencyModel::constant(1000.0));
  c.nodes[0]->emit(c.nodes[0]->replica().local_insert(1));
  c.nodes[0]->emit(c.nodes[0]->replica().local_remove(2));
  c.nodes[1]->emit(c.nodes[1]->replica().local_insert(2));
  c.nodes[1]->emit(c.nodes[1]->replica().local_remove(1));
  c.scheduler.run();
  EXPECT_EQ(c.nodes[0]->replica().read(), (IntSet{1, 2}));
  EXPECT_EQ(c.nodes[1]->replica().read(), (IntSet{1, 2}));
}

TEST(OrSet, RemoveDeliveredBeforeInsertStillRemoves) {
  // Tombstones make apply order-insensitive: feed the remove before the
  // insert it cancels (the network is not causal).
  OrSetReplica<int> a(0), b(1);
  auto ins = a.local_insert(3);
  OrSetReplica<int>::Message rem{true, 3, ins.tags};
  b.apply(0, rem);
  b.apply(0, ins);
  EXPECT_EQ(b.read(), IntSet{});
}

TEST(OrSet, TagCountTracksDistinctInserts) {
  OrSetReplica<int> a(0);
  auto m1 = a.local_insert(5);
  auto m2 = a.local_insert(5);
  a.apply(0, m1);
  a.apply(0, m2);
  EXPECT_EQ(a.tag_count(5), 2u);
  auto rem = a.local_remove(5);
  EXPECT_EQ(rem.tags.size(), 2u);
  a.apply(0, rem);
  EXPECT_EQ(a.read(), IntSet{});
}

TEST(LwwSet, LaterStampWinsRegardlessOfKind) {
  Cluster<LwwSetReplica<int>> c(2, LatencyModel::constant(100.0));
  c.nodes[0]->emit(c.nodes[0]->replica().local_insert(1));
  c.scheduler.run();
  // Remove stamped later than the insert: remove wins (no insert bias).
  c.nodes[1]->emit(c.nodes[1]->replica().local_remove(1));
  c.scheduler.run();
  EXPECT_EQ(c.nodes[0]->replica().read(), IntSet{});
  EXPECT_EQ(c.nodes[1]->replica().read(), IntSet{});
}

TEST(LwwSet, ConvergesUnderRandomTraffic) {
  Cluster<LwwSetReplica<int>> c(3, LatencyModel::exponential(150.0), 9);
  Rng rng(21);
  for (int i = 0; i < 150; ++i) {
    auto& n = *c.nodes[static_cast<std::size_t>(rng.uniform_int(0, 2))];
    const int v = static_cast<int>(rng.uniform_int(0, 6));
    if (rng.chance(0.6)) {
      n.emit(n->local_insert(v));
    } else {
      n.emit(n->local_remove(v));
    }
    c.scheduler.run_until(c.scheduler.now() + 30.0);
  }
  c.scheduler.run();
  const auto expected = c.nodes[0]->replica().read();
  for (auto& n : c.nodes) EXPECT_EQ((*n)->read(), expected);
}

TEST(LwwRegister, NewestStampDefinesValue) {
  LwwRegisterReplica<int> a(0, -1), b(1, -1);
  EXPECT_EQ(a.read(), -1);
  auto w1 = a.local_write(10);
  auto w2 = b.local_write(20);  // same clock 1, pid 1 > pid 0
  a.apply(0, w1);
  a.apply(1, w2);
  b.apply(1, w2);
  b.apply(0, w1);
  EXPECT_EQ(a.read(), 20);
  EXPECT_EQ(b.read(), 20);
}

TEST(CounterCrdt, DeltasCommute) {
  CounterCrdtReplica a(0), b(1);
  auto m1 = a.local_add(5);
  auto m2 = b.local_add(-2);
  a.apply(0, m1);
  a.apply(1, m2);
  b.apply(1, m2);
  b.apply(0, m1);
  EXPECT_EQ(a.read(), 3);
  EXPECT_EQ(b.read(), 3);
}

}  // namespace
}  // namespace ucw
