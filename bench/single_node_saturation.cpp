// E14 — single-node saturation: what the frontend rework buys when one
// box runs producers and workers flat out.
//
// Three arms over a `--workers=` sweep (default 1,2,4) at a fixed
// `--producers=` client-thread count (default 4), 2 processes on the
// thread transport, a mixed read/write workload over 512 zipfian keys:
// per process, all client threads but one issue set inserts while the
// last is a dedicated reader hammering hot-biased get()s — so the
// sweep saturates the update pipeline AND the read path the way a
// frontend actually runs them (read-serving threads segregated from
// writers):
//
//   router-locked   StoreConfig::router_delivery — the pre-rework
//                   frontend on the same binary: inbound envelopes fan
//                   out to worker rings UNDER the router mutex, workers
//                   pop one op per loop, and published get()s copy the
//                   state out of the seqlock before answering.
//   sharded         the default path: delivery partitions envelope
//                   entries straight into the owning workers' remote
//                   inboxes (a shard-index computation plus one multi-
//                   slot ring claim per worker — no lock, no copies),
//                   workers drain in blocks, and get() on a published
//                   key answers from the immutable shared snapshot
//                   (zero state copies — SetAdt makes that visible:
//                   the pre-rework path copies the whole node-based
//                   std::set out of the seqlock first). pin_workers is
//                   set, exercising the opt-in affinity knob wherever
//                   this bench runs.
//   sharded+batch   sharded plus update_batch(): producers hand the
//                   frontend 16 updates per call and each worker's
//                   group lands with one multi-slot ring CAS.
//
// Per arm the table reports cluster ops/sec (updates + gets), hot-key
// get() latency (p50/p99 over 20k post-drain samples), and ring CAS
// per update (singles pay one claim CAS each; a multi-slot claim
// amortizes one over the group — computed from the
// ring_batch_claims/ring_batch_ops counters). The headline number is
// the best sharded arm : router-locked ops/sec ratio at the largest
// worker count — the ISSUE acceptance bar is >= 1.3x with 4 workers +
// 4 producers. On a 1-core host the win is shed lock/CAS/copy work,
// not parallelism (the table prints the detected core count).
//
// `--json-out=` writes the machine-readable twin (BENCH_e14.json in
// CI); `--metrics-out=` exports a sharded run's metrics snapshot for
// tools/check_trace.py --require-counter. Exits nonzero when any arm
// diverges.
#include "bench_common.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/store_harness.hpp"
#include "util/mpsc_ring.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;
using TC = ThreadUcStore<S>;

constexpr std::size_t kProcs = 2;
constexpr std::size_t kKeys = 512;
constexpr std::size_t kValueRange = 64;  // sets saturate at 64 elements
constexpr std::size_t kBatch = 16;
constexpr std::size_t kGetSamples = 20'000;

struct ArmResult {
  std::string arm;
  std::size_t workers = 0;
  std::size_t producers = 0;
  std::uint64_t updates = 0;
  std::uint64_t gets = 0;
  double wall_seconds = 0.0;
  double ops_per_sec = 0.0;  // updates + gets, whole cluster
  double get_p50_ns = 0.0;
  double get_p99_ns = 0.0;
  double cas_per_update = 0.0;
  StoreStats stats;  // summed over both processes
  bool converged = false;
};

ArmResult run_arm(const std::string& arm, std::size_t workers,
                  std::size_t producers, std::size_t ops_per_process,
                  bool router_delivery, bool batched,
                  const std::string& metrics_out = {}) {
  ThreadNetwork<TC::Envelope> net(kProcs);
  StoreConfig cfg;
  cfg.workers = workers;
  cfg.batch_window = 64;
  cfg.shard_count = 16;
  cfg.router_delivery = router_delivery;
  // The sharded arms run with affinity pinning on, so the opt-in knob
  // is exercised by every CI smoke run (a no-op where it cannot bind).
  cfg.pin_workers = !router_delivery;
  std::vector<std::unique_ptr<TC>> stores;
  for (ProcessId p = 0; p < kProcs; ++p) {
    stores.push_back(std::make_unique<TC>(S{}, p, net, cfg));
  }
  std::atomic<std::uint64_t> updates_sent{0};
  std::atomic<std::uint64_t> gets_sent{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (ProcessId p = 0; p < kProcs; ++p) {
    for (std::size_t c = 0; c < producers; ++c) {
      // Role split: the last client thread per process is a dedicated
      // reader (gets only), the rest are writers — the shape frontends
      // actually run, with read-serving threads segregated from the
      // write path. A thread that interleaves get() between its own
      // updates pays the read-your-writes ring fallback on nearly
      // every read when the box has fewer cores than threads (its
      // ticket is always ahead of the worker); that cost is identical
      // in every arm and would bury the delivery/read-path
      // differential this bench exists to price. The RYW fallback
      // path has its own coverage in thread_store_test.
      const bool reader = workers > 1 && producers > 1 &&
                          c == producers - 1;
      clients.emplace_back([&, p, c, reader] {
        ZipfianKeys keyspace(kKeys, 0.99);
        Rng rng(40 + p * 31 + c);
        const std::size_t share =
            ops_per_process / producers +
            (c < ops_per_process % producers ? 1 : 0);
        std::uint64_t n_updates = 0, n_gets = 0;
        // update_batch consumes the elements but leaves the buffer's
        // capacity — one allocation for the whole run.
        std::vector<std::pair<std::string, S::Update>> ops;
        if (batched) ops.reserve(kBatch);
        for (std::size_t i = 0; i < share; ++i) {
          // Reader thread: every op is a hot-biased get — the zipfian
          // sample concentrates reads on keys whose views are (or on
          // first touch become) published. Unpooled (workers <= 1)
          // stores have a single mixed client instead: get() there is
          // a direct local read, so interleaving costs nothing.
          if (reader || (workers <= 1 && i % 4 == 3)) {
            benchmark::DoNotOptimize(
                stores[p]->get(keyspace.sample(rng), S::read()));
            ++n_gets;
            continue;
          }
          const int v =
              static_cast<int>(rng.uniform_int(0, kValueRange - 1));
          if (batched) {
            ops.emplace_back(keyspace.sample(rng), S::insert(v));
            if (ops.size() == kBatch) (void)stores[p]->update_batch(ops);
          } else {
            stores[p]->update(keyspace.sample(rng), S::insert(v));
          }
          ++n_updates;
        }
        if (batched && !ops.empty()) (void)stores[p]->update_batch(ops);
        stores[p]->flush();
        updates_sent.fetch_add(n_updates, std::memory_order_relaxed);
        gets_sent.fetch_add(n_gets, std::memory_order_relaxed);
      });
    }
  }
  for (auto& t : clients) t.join();
  const std::uint64_t total_updates =
      updates_sent.load(std::memory_order_relaxed);
  for (auto& s : stores) s->drain_until(total_updates);
  ArmResult r;
  r.arm = arm;
  r.workers = workers;
  r.producers = producers;
  r.updates = total_updates;
  r.gets = gets_sent.load(std::memory_order_relaxed);
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  r.ops_per_sec =
      r.wall_seconds > 0
          ? static_cast<double>(r.updates + r.gets) / r.wall_seconds
          : 0.0;
  r.converged = true;
  bool any_nonempty = false;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::string key = ZipfianKeys::key_name(k);
    const auto s0 = stores[0]->state_of(key);
    if (!s0.empty()) any_nonempty = true;
    if (stores[1]->state_of(key) != s0) r.converged = false;
  }
  if (!any_nonempty) r.converged = false;

  // Hot-key read latency, measured post-drain so the samples time the
  // read path itself: one output copy on the sharded arms, seqlock
  // copy-out *plus* the output copy on the comparison arm.
  const std::string hot = ZipfianKeys::key_name(0);
  (void)stores[0]->get(hot, S::read());  // cold get: promotes the key
  bench::LatencySummary get_ns;
  for (std::size_t i = 0; i < kGetSamples; ++i) {
    const auto s0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(stores[0]->get(hot, S::read()));
    get_ns.add(std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - s0)
                   .count());
  }
  r.get_p50_ns = get_ns.percentile(50);
  r.get_p99_ns = get_ns.percentile(99);
  for (const auto& s : stores) {
    const StoreStats ss = s->stats();
    r.stats.local_updates += ss.local_updates;
    r.stats.inbox_deliveries += ss.inbox_deliveries;
    r.stats.router_deliveries += ss.router_deliveries;
    r.stats.ring_batch_claims += ss.ring_batch_claims;
    r.stats.ring_batch_ops += ss.ring_batch_ops;
    r.stats.zero_copy_reads += ss.zero_copy_reads;
    r.stats.ryw_ring_fallbacks += ss.ryw_ring_fallbacks;
  }
  // Every update costs one ring push-CAS unless it rode a multi-slot
  // claim: ops that landed in batches are ring_batch_ops, paid for by
  // ring_batch_claims CASes instead of one each.
  const double singles =
      static_cast<double>(total_updates) -
      static_cast<double>(r.stats.ring_batch_ops);
  r.cas_per_update =
      total_updates > 0
          ? (singles + static_cast<double>(r.stats.ring_batch_claims)) /
                static_cast<double>(total_updates)
          : 0.0;
  if (!metrics_out.empty()) {
    obs::Report report;
    for (const auto& s : stores) {
      report.processes.push_back(obs::make_process_report(*s));
    }
    std::ofstream f(metrics_out);
    obs::export_metrics_json(f, report);
  }
  net.close_all();
  return r;
}

void append_json_arm(std::string& out, const ArmResult& r, bool last) {
  out += "    {\"arm\": \"" + r.arm + "\"";
  out += ", \"workers\": " + std::to_string(r.workers);
  out += ", \"producers\": " + std::to_string(r.producers);
  out += ", \"updates\": " + std::to_string(r.updates);
  out += ", \"gets\": " + std::to_string(r.gets);
  out += ", \"ops_per_sec\": " + std::to_string(r.ops_per_sec);
  out += ", \"get_p50_ns\": " + std::to_string(r.get_p50_ns);
  out += ", \"get_p99_ns\": " + std::to_string(r.get_p99_ns);
  out += ", \"ring_cas_per_update\": " + std::to_string(r.cas_per_update);
  out += ", \"inbox_deliveries\": " +
         std::to_string(r.stats.inbox_deliveries);
  out += ", \"router_deliveries\": " +
         std::to_string(r.stats.router_deliveries);
  out += ", \"ring_batch_claims\": " +
         std::to_string(r.stats.ring_batch_claims);
  out += ", \"ring_batch_ops\": " + std::to_string(r.stats.ring_batch_ops);
  out += ", \"zero_copy_reads\": " + std::to_string(r.stats.zero_copy_reads);
  out += ", \"ryw_ring_fallbacks\": " +
         std::to_string(r.stats.ryw_ring_fallbacks);
  out += std::string(", \"converged\": ") +
         (r.converged ? "true" : "false");
  out += last ? "}\n" : "},\n";
}

/// Runs the sweep, prints the table, writes the JSON/metrics artifacts.
/// Returns false when any arm diverged (the CI smoke step fails on it).
bool run_saturation_sweep(const std::vector<std::size_t>& worker_counts,
                          std::size_t producers,
                          std::size_t ops_per_process,
                          const std::string& json_out,
                          const std::string& metrics_out) {
  print_banner(std::cout,
               "E14: single-node saturation (2 processes, " +
                   std::to_string(producers) +
                   " clients each (last is a dedicated reader), zipf "
                   "0.99 set inserts + hot-biased gets over 512 keys, "
                   "window 64; batch arm = 16 updates/call)");
  std::cout << "hardware threads detected: "
            << std::thread::hardware_concurrency()
            << " (on few cores the sharded win is shed lock/CAS/copy "
               "work, not parallelism)\n";
  TextTable t({"workers", "producers", "arm", "updates", "gets",
               "best wall ms", "ops/sec", "get p50 ns", "get p99 ns",
               "CAS/update", "router dlvr", "inbox dlvr", "converged"});
  std::vector<ArmResult> results;
  bool all_converged = true;
  double router_at_max = 0.0, sharded_at_max = 0.0;
  const std::size_t max_workers =
      *std::max_element(worker_counts.begin(), worker_counts.end());
  constexpr int kReps = 3;  // best-of, arms interleaved per rep —
                            // scheduler noise must not read as speedup
  (void)run_arm("warmup", max_workers, producers, ops_per_process,
                /*router_delivery=*/false, /*batched=*/false);
  for (std::size_t w : worker_counts) {
    // workers <= 1 runs the unpooled single-owner store, which admits
    // exactly one client thread — the point is kept in the sweep as
    // the no-frontend baseline, clamped to 1 producer.
    const std::size_t prod = w > 1 ? producers : 1;
    std::vector<ArmResult> best(3);
    for (int rep = 0; rep < kReps; ++rep) {
      for (int arm = 0; arm < 3; ++arm) {
        const bool router = arm == 0;
        const bool batched = arm == 2;
        const char* name = router        ? "router-locked"
                           : batched     ? "sharded+batch"
                                         : "sharded";
        // The last batched rep at the top worker count exports the
        // metrics snapshot CI validates.
        const bool exports =
            batched && w == max_workers && rep == kReps - 1;
        ArmResult r =
            run_arm(name, w, prod, ops_per_process, router, batched,
                    exports ? metrics_out : std::string{});
        all_converged = all_converged && r.converged;
        if (!r.converged) best[arm].converged = false;
        if (best[arm].updates == 0 ||
            r.wall_seconds < best[arm].wall_seconds) {
          const bool diverged_before =
              best[arm].updates != 0 && !best[arm].converged;
          best[arm] = std::move(r);
          if (diverged_before) best[arm].converged = false;
        }
      }
    }
    for (int arm = 0; arm < 3; ++arm) {
      const ArmResult& r = best[arm];
      if (w == max_workers) {
        if (arm == 0) router_at_max = r.ops_per_sec;
        if (arm != 0) {
          sharded_at_max = std::max(sharded_at_max, r.ops_per_sec);
        }
      }
      t.add(w, prod, r.arm, r.updates, r.gets, r.wall_seconds * 1e3,
            r.ops_per_sec, r.get_p50_ns, r.get_p99_ns, r.cas_per_update,
            r.stats.router_deliveries, r.stats.inbox_deliveries,
            r.converged ? "yes" : "NO");
      results.push_back(r);
    }
  }
  t.print(std::cout);
  const double factor =
      router_at_max > 0 ? sharded_at_max / router_at_max : 0.0;
  std::cout << "\nbest sharded vs router-locked at " << max_workers
            << " workers: " << factor
            << "x (acceptance bar: >= 1.3x at 4 workers + 4 producers)\n"
            << "The rework removes per-op router locking (entries shard "
               "straight into worker inboxes; the router keeps its "
               "stability/GC duties via constant-size duty notes), "
               "amortizes ring CASes over multi-slot claims and block "
               "drains, and answers published get()s from the immutable "
               "shared snapshot instead of copying the state out of the "
               "seqlock — the CAS/update, get-latency, and "
               "delivery-counter columns show each effect directly.\n";
  if (!json_out.empty()) {
    std::string j = "{\n  \"experiment\": \"E14\",\n";
    j += "  \"producers\": " + std::to_string(producers) + ",\n";
    j += "  \"ops_per_process\": " + std::to_string(ops_per_process) +
         ",\n";
    j += "  \"hardware_threads\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
    j += "  \"sharded_vs_router_at_max_workers\": " +
         std::to_string(factor) + ",\n";
    j += "  \"acceptance_factor\": 1.3,\n";
    j += "  \"arms\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      append_json_arm(j, results[i], i + 1 == results.size());
    }
    j += "  ]\n}\n";
    std::ofstream f(json_out);
    f << j;
    std::cout << "json written to " << json_out << "\n";
  }
  return all_converged;
}

// Microbench: the producer-side ring claim itself — one try_push per
// op versus one multi-slot try_push_n per 16 — on an otherwise idle
// ring drained in blocks by this same thread (the consumer cost is
// identical across both arms, so the delta is the claim protocol).
void BM_RingPush(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  MpscRing<std::uint64_t> ring(1024);
  std::vector<std::uint64_t> vals(batch, 7);
  std::vector<std::uint64_t> out;
  out.reserve(1024);
  for (auto _ : state) {
    if (batch == 1) {
      while (!ring.try_push(std::uint64_t{7})) {
        (void)ring.try_pop_n(out, 1024);
        out.clear();
      }
    } else {
      while (!ring.try_push_n(vals.data(), batch)) {
        (void)ring.try_pop_n(out, 1024);
        out.clear();
      }
    }
  }
  (void)ring.try_pop_n(out, 1024);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_RingPush)->Arg(1)->Arg(16)->Unit(benchmark::kNanosecond);

/// Lenient "a,b,c" parse for --workers= (digits/commas only; empty
/// falls back).
std::vector<std::size_t> parse_counts(
    const std::string& s, const std::vector<std::size_t>& fallback) {
  std::vector<std::size_t> out;
  std::size_t v = 0;
  for (const char c : s) {
    if (c == ',') {
      if (v > 0) out.push_back(v);
      v = 0;
    } else if (c >= '0' && c <= '9') {
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
  }
  if (v > 0) out.push_back(v);
  return out.empty() ? fallback : out;
}

std::size_t parse_count(const std::string& s, std::size_t fallback) {
  std::size_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return fallback;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  return v > 0 ? v : fallback;
}

}  // namespace

// Custom main: `--workers=a,b,c` picks the sweep points,
// `--producers=N` the client threads per process, `--ops=N` the
// per-process op count (updates + gets), `--json-out=`/`--metrics-out=`
// the artifact paths. All are stripped before google-benchmark sees
// the arguments.
int main(int argc, char** argv) {
  std::vector<std::size_t> worker_counts = {1, 2, 4};
  std::size_t producers = 4;
  std::size_t ops = 40'000;
  std::string json_out, metrics_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      worker_counts = parse_counts(arg.substr(10), worker_counts);
    } else if (arg.rfind("--producers=", 0) == 0) {
      producers = parse_count(arg.substr(12), producers);
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops = parse_count(arg.substr(6), ops);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      json_out = arg.substr(11);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const bool converged =
      run_saturation_sweep(worker_counts, producers, ops, json_out,
                           metrics_out);
  int pargc = static_cast<int>(passthrough.size());
  ::benchmark::Initialize(&pargc, passthrough.data());
  if (::benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return converged ? 0 : 1;
}
