// E1 — Figure 1 (and Figure 2): the consistency-criteria matrix.
//
// Reproduces the paper's Figure 1 classification table: each of the five
// example histories checked against EC / SEC / PC / UC / SUC by the
// exact decision procedures, next to the classification the paper's
// captions state. The microbenchmarks time each checker on each figure —
// the cost of deciding a criterion on a figure-sized history.
#include "bench_common.hpp"

#include "criteria/all.hpp"
#include "history/figures.hpp"

namespace {

using namespace ucw;

void print_tables() {
  print_banner(std::cout, "E1: Figure 1 / Figure 2 criteria matrix "
                          "(computed vs paper)");
  TextTable table({"history", "caption", "EC", "SEC", "PC", "UC", "SUC",
                   "matches paper"});
  for (const auto& [h, expect] : paper_figures()) {
    const auto row = check_all_criteria(h);
    const bool match =
        row.ec.yes() == expect.ec && row.sec.yes() == expect.sec &&
        row.pc.yes() == expect.pc && row.uc.yes() == expect.uc &&
        row.suc.yes() == expect.suc;
    table.add(expect.label, expect.caption, to_string(row.ec.verdict),
              to_string(row.sec.verdict), to_string(row.pc.verdict),
              to_string(row.uc.verdict), to_string(row.suc.verdict),
              match ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: Figure 1 captions (a: EC only; b: +SEC; "
               "c: +UC; d: +SUC) and Figure 2 (PC but not EC).\n";
}

void BM_CheckCriterion(benchmark::State& state) {
  const auto figures = paper_figures();
  const auto& h = figures[static_cast<std::size_t>(state.range(0))].first;
  const auto criterion = kAllCriteria[static_cast<std::size_t>(state.range(1))];
  for (auto _ : state) {
    auto result = check_criterion(h, criterion);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(figures[static_cast<std::size_t>(state.range(0))]
                     .second.label +
                 "/" + to_string(criterion));
}
BENCHMARK(BM_CheckCriterion)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
