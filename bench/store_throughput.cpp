// E10 — UCStore throughput: what batching buys over one-broadcast-per-
// update on a multi-key workload.
//
// Sweeps key-count × batch-window × replica-count on a zipfian keyed
// set workload and reports, against the unbatched baseline (window 1):
// broadcasts per update, point-to-point messages per update, estimated
// wire bytes per update, mean batch occupancy, and wall-clock ops/sec
// of the whole simulated cluster. The acceptance bar for the subsystem
// is a ≥ 2x broadcast reduction at window ≥ 4 on the 1000-key workload;
// the table shows the measured factor explicitly.
#include "bench_common.hpp"

#include <chrono>

#include "runtime/store_harness.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

struct SweepResult {
  StoreRunOutput<S> out;
  double wall_seconds = 0.0;
};

SweepResult run_point(std::size_t n_keys, std::size_t window,
                      std::size_t replicas, std::size_t ops_per_process) {
  StoreRunConfig cfg;
  cfg.n_processes = replicas;
  cfg.seed = 42;
  cfg.n_keys = n_keys;
  cfg.skew = 0.99;
  cfg.ops_per_process = ops_per_process;
  cfg.update_ratio = 0.9;
  cfg.think_time = LatencyModel::exponential(200.0);
  cfg.store.batch_window = window;
  cfg.flush_period = 2'000.0;  // per-tick envelope for stragglers
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult r;
  r.out = run_store_simulation(S{}, cfg, [&](Rng& rng) {
    WorkloadConfig w;
    w.value_range = 64;
    return random_set_update(rng, w);
  });
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return r;
}

void print_tables() {
  print_banner(std::cout,
               "E10: UCStore batching sweep (zipf 0.99, 90% updates, "
               "exp(1ms) latency, flush tick 2ms)");
  TextTable t({"keys", "replicas", "window", "bcast/op", "p2p msgs/op",
               "bytes/op (est)", "occupancy", "reduction vs w=1",
               "ops/sec (wall)", "converged"});
  for (std::size_t n_keys : {10u, 100u, 1000u}) {
    for (std::size_t replicas : {4u, 8u}) {
      double baseline_bcast_per_op = 0.0;
      for (std::size_t window : {1u, 4u, 16u, 64u}) {
        const std::size_t ops_per_process = n_keys >= 1000 ? 250 : 125;
        const SweepResult r =
            run_point(n_keys, window, replicas, ops_per_process);
        const auto& out = r.out;
        const double ops = static_cast<double>(out.total_updates);
        const double bcast_per_op =
            ops > 0 ? static_cast<double>(out.net.broadcasts) / ops : 0.0;
        if (window == 1) baseline_bcast_per_op = bcast_per_op;
        // Aggregate occupancy, not a mean of per-process ratios (which
        // would understate it when a process sent little or nothing).
        StoreStats total;
        for (const auto& ss : out.store_stats) {
          total.bytes_batched += ss.bytes_batched;
          total.entries_sent += ss.entries_sent;
          total.envelopes_sent += ss.envelopes_sent;
        }
        const std::uint64_t bytes = total.bytes_batched;
        const double occupancy = total.batch_occupancy();
        const double total_ops =
            static_cast<double>(out.total_updates + out.total_queries);
        t.add(n_keys, replicas, window, bcast_per_op,
              ops > 0 ? static_cast<double>(out.net.messages_sent) / ops
                      : 0.0,
              ops > 0 ? static_cast<double>(bytes) / ops : 0.0, occupancy,
              bcast_per_op > 0 ? baseline_bcast_per_op / bcast_per_op : 0.0,
              r.wall_seconds > 0 ? total_ops / r.wall_seconds : 0.0,
              out.converged ? "yes" : "NO");
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nWindow w cuts broadcasts/op toward 1/w (the flush tick "
               "ships partial batches, so the measured factor is slightly "
               "below w at low op rates); p2p messages and frame bytes "
               "shrink by the same factor. Per-key arbitration stamps are "
               "assigned at update() time, so every window converges to "
               "the same per-key semantics.\n";
}

// Microbench: the local cost of a keyed update (stamp, self-apply,
// buffer) at varying live-key counts — the store's wait-free hot path.
void BM_StoreUpdate(benchmark::State& state) {
  const auto n_keys = static_cast<std::size_t>(state.range(0));
  SimScheduler scheduler;
  SimNetwork<SimUcStore<S>::Envelope>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<SimUcStore<S>::Envelope> net(scheduler, cfg);
  StoreConfig store_cfg;
  store_cfg.batch_window = 64;
  SimUcStore<S> store(S{}, 0, net, store_cfg);
  SimUcStore<S> peer(S{}, 1, net, store_cfg);
  ZipfianKeys keyspace(n_keys, 0.99);
  Rng rng(7);
  int v = 0;
  for (auto _ : state) {
    store.update(keyspace.sample(rng), S::insert(v++ % 64));
    if (scheduler.pending() > 4096) scheduler.run();
  }
  scheduler.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::to_string(store.keys_live()) + " keys live");
}
BENCHMARK(BM_StoreUpdate)->Arg(16)->Arg(1024)->Arg(65536)->Unit(
    benchmark::kMicrosecond);

// Microbench: zipfian sampling itself (binary search over the CDF).
void BM_ZipfSample(benchmark::State& state) {
  const auto n_keys = static_cast<std::size_t>(state.range(0));
  ZipfianKeys keyspace(n_keys, 0.99);
  Rng rng(7);
  std::size_t sink = 0;
  for (auto _ : state) {
    sink += keyspace.sample_index(rng);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(1'000'000);

}  // namespace

UCW_BENCH_MAIN(print_tables)
