// E10 — UCStore throughput: what batching buys over one-broadcast-per-
// update on a multi-key workload.
//
// Sweeps key-count × batch-window × replica-count on a zipfian keyed
// set workload and reports, against the unbatched baseline (window 1):
// broadcasts per update, point-to-point messages per update, estimated
// wire bytes per update, mean batch occupancy, and wall-clock ops/sec
// of the whole simulated cluster. The acceptance bar for the subsystem
// is a ≥ 2x broadcast reduction at window ≥ 4 on the 1000-key workload;
// the table shows the measured factor explicitly.
//
// E10b — worker-pool scaling: the same store on the thread transport
// with its shard engines spread across a worker pool (`--workers=` to
// choose the sweep points, default 1,2,4,8). Each process's owner
// thread issues a zipfian counter workload through the pooled API while
// remote envelopes are routed to the owning workers; the table reports
// cluster ops/sec and the speedup over the 1-worker single-owner store.
// The speedup needs real cores: on a 1-core host the sweep degenerates
// to context-switch overhead (the table prints the detected core count
// so the numbers read honestly).
//
// E10c — multi-producer frontend scaling: workers fixed at 4, client
// threads per store swept (`--producers=`, default 1,2,4). The MPSC
// rings and the atomic clock admit concurrent producers with no lock
// on the update path; the table reports cluster ops/sec and the
// speedup over the 1-producer point (same real-cores caveat).
//
// E10d — read-path latency: one hot key, `get()` answered from its
// seqlock-published view versus `query()` riding the worker ring round
// trip, reported as a latency histogram (p50/p90/p99/max). The
// published read never enqueues on a ring and never parks behind a
// worker tick — the histogram is the wait-free-read claim in numbers.
// E10e — tracing overhead: the E10b 4-worker point run tracing-off and
// tracing-on (default 1-in-16 sampling); the table prints the measured
// overhead against the < 5% acceptance budget, and `--trace-out=` /
// `--metrics-out=` export the tracing run's Chrome trace and metrics
// snapshot (the artifacts the CI smoke step validates).
#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <thread>

#include "runtime/store_harness.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

struct SweepResult {
  StoreRunOutput<S> out;
  double wall_seconds = 0.0;
};

SweepResult run_point(std::size_t n_keys, std::size_t window,
                      std::size_t replicas, std::size_t ops_per_process) {
  StoreRunConfig cfg;
  cfg.n_processes = replicas;
  cfg.seed = 42;
  cfg.n_keys = n_keys;
  cfg.skew = 0.99;
  cfg.ops_per_process = ops_per_process;
  cfg.update_ratio = 0.9;
  cfg.think_time = LatencyModel::exponential(200.0);
  cfg.store.batch_window = window;
  cfg.flush_period = 2'000.0;  // per-tick envelope for stragglers
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult r;
  r.out = run_store_simulation(S{}, cfg, [&](Rng& rng) {
    WorkloadConfig w;
    w.value_range = 64;
    return random_set_update(rng, w);
  });
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return r;
}

void print_tables() {
  print_banner(std::cout,
               "E10: UCStore batching sweep (zipf 0.99, 90% updates, "
               "exp(1ms) latency, flush tick 2ms)");
  TextTable t({"keys", "replicas", "window", "bcast/op", "p2p msgs/op",
               "bytes/op (est)", "occupancy", "reduction vs w=1",
               "ops/sec (wall)", "converged"});
  for (std::size_t n_keys : {10u, 100u, 1000u}) {
    for (std::size_t replicas : {4u, 8u}) {
      double baseline_bcast_per_op = 0.0;
      for (std::size_t window : {1u, 4u, 16u, 64u}) {
        const std::size_t ops_per_process = n_keys >= 1000 ? 250 : 125;
        const SweepResult r =
            run_point(n_keys, window, replicas, ops_per_process);
        const auto& out = r.out;
        const double ops = static_cast<double>(out.total_updates);
        const double bcast_per_op =
            ops > 0 ? static_cast<double>(out.net.broadcasts) / ops : 0.0;
        if (window == 1) baseline_bcast_per_op = bcast_per_op;
        // Aggregate occupancy, not a mean of per-process ratios (which
        // would understate it when a process sent little or nothing).
        StoreStats total;
        for (const auto& ss : out.store_stats) {
          total.bytes_batched += ss.bytes_batched;
          total.entries_sent += ss.entries_sent;
          total.envelopes_sent += ss.envelopes_sent;
        }
        const std::uint64_t bytes = total.bytes_batched;
        const double occupancy = total.batch_occupancy();
        const double total_ops =
            static_cast<double>(out.total_updates + out.total_queries);
        t.add(n_keys, replicas, window, bcast_per_op,
              ops > 0 ? static_cast<double>(out.net.messages_sent) / ops
                      : 0.0,
              ops > 0 ? static_cast<double>(bytes) / ops : 0.0, occupancy,
              bcast_per_op > 0 ? baseline_bcast_per_op / bcast_per_op : 0.0,
              r.wall_seconds > 0 ? total_ops / r.wall_seconds : 0.0,
              out.converged ? "yes" : "NO");
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nWindow w cuts broadcasts/op toward 1/w (the flush tick "
               "ships partial batches, so the measured factor is slightly "
               "below w at low op rates); p2p messages and frame bytes "
               "shrink by the same factor. Per-key arbitration stamps are "
               "assigned at update() time, so every window converges to "
               "the same per-key semantics.\n";
}

// E10b: one point of the worker-pool scaling sweep. Two processes on
// the thread transport, each with `workers` engine-owning workers; the
// two owner threads issue the keyed workload concurrently, then drain.
struct PoolPoint {
  std::uint64_t total_updates = 0;
  double wall_seconds = 0.0;
  bool converged = false;
};

PoolPoint run_pool_point(std::size_t workers, std::size_t ops_per_process,
                         std::size_t producers = 1, bool tracing = false,
                         const std::string& trace_out = {},
                         const std::string& metrics_out = {}) {
  using C = CounterAdt;
  using TC = ThreadUcStore<C>;
  constexpr std::size_t kProcs = 2;
  constexpr std::size_t kKeys = 512;
  ThreadNetwork<TC::Envelope> net(kProcs);
  StoreConfig cfg;
  cfg.workers = workers;
  cfg.batch_window = 32;
  cfg.shard_count = 16;
  std::vector<std::unique_ptr<obs::Tracer>> tracers;
  std::vector<std::unique_ptr<TC>> stores;
  for (ProcessId p = 0; p < kProcs; ++p) {
    StoreConfig sc = cfg;
    if (tracing) {
      tracers.push_back(std::make_unique<obs::Tracer>(
          static_cast<std::uint32_t>(p), /*tracks=*/workers + 1));
      sc.tracing = true;
      sc.tracer = tracers.back().get();
    }
    stores.push_back(std::make_unique<TC>(C{}, p, net, sc));
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> owners;
  for (ProcessId p = 0; p < kProcs; ++p) {
    // `producers` client threads split each process's ops — the
    // multi-producer frontend (MPSC rings + concurrent stamping).
    for (std::size_t c = 0; c < producers; ++c) {
      owners.emplace_back([&, p, c] {
        ZipfianKeys keyspace(kKeys, 0.99);
        Rng rng(40 + p * 31 + c);
        const std::size_t share =
            ops_per_process / producers +
            (c < ops_per_process % producers ? 1 : 0);
        for (std::size_t i = 0; i < share; ++i) {
          stores[p]->update(keyspace.sample(rng), C::add(1));
        }
        stores[p]->flush();
      });
    }
  }
  for (auto& t : owners) t.join();
  const std::uint64_t total = kProcs * ops_per_process;
  for (auto& s : stores) s->drain_until(total);
  PoolPoint r;
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  r.total_updates = total;
  r.converged = true;
  std::int64_t sum0 = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::string key = ZipfianKeys::key_name(k);
    sum0 += stores[0]->state_of(key);
    if (stores[1]->state_of(key) != stores[0]->state_of(key)) {
      r.converged = false;
    }
  }
  if (sum0 != static_cast<std::int64_t>(total)) r.converged = false;
  if (tracing && (!trace_out.empty() || !metrics_out.empty())) {
    // Post-drain, post-timing: the artifact export never sits inside
    // the measured window.
    obs::Report report;
    for (const auto& s : stores) {
      report.processes.push_back(obs::make_process_report(*s));
    }
    if (!metrics_out.empty()) {
      std::ofstream f(metrics_out);
      obs::export_metrics_json(f, report);
    }
    if (!trace_out.empty()) {
      std::vector<const obs::Tracer*> views;
      for (const auto& t : tracers) views.push_back(t.get());
      std::ofstream f(trace_out);
      obs::write_chrome_trace(f, views);
    }
  }
  net.close_all();
  return r;
}

/// Returns false when any sweep point diverged, so the CI smoke step
/// actually fails on a pooled-convergence regression.
bool print_worker_pool_sweep(const std::vector<std::size_t>& worker_counts,
                             std::size_t ops_per_process) {
  print_banner(std::cout,
               "E10b: ThreadUcStore worker-pool scaling (2 processes, "
               "zipf 0.99 over 512 keys, window 32, counter adds)");
  std::cout << "hardware threads detected: "
            << std::thread::hardware_concurrency()
            << " (speedup needs >= workers real cores)\n";
  // The baseline is the sweep's first point (the default sweep starts
  // at 1 worker, so "vs first" is "vs the single-owner store" there).
  TextTable t({"workers", "threads/proc", "updates", "wall ms", "ops/sec",
               "speedup vs first", "converged"});
  double base_ops_per_sec = 0.0;
  bool all_converged = true;
  for (std::size_t w : worker_counts) {
    const PoolPoint r = run_pool_point(w, ops_per_process);
    all_converged = all_converged && r.converged;
    const double ops_per_sec =
        r.wall_seconds > 0
            ? static_cast<double>(r.total_updates) / r.wall_seconds
            : 0.0;
    if (base_ops_per_sec == 0.0) base_ops_per_sec = ops_per_sec;
    t.add(w, w == 1 ? 1 : w + 1, r.total_updates, r.wall_seconds * 1e3,
          ops_per_sec,
          base_ops_per_sec > 0 ? ops_per_sec / base_ops_per_sec : 0.0,
          r.converged ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\nShards never coordinate (update consistency needs no "
               "cross-key arbitration), so engine ownership spreads "
               "across workers with no locks on the update path: client "
               "threads stamp from the atomic store clock and hand off "
               "over MPSC rings; each worker batches and broadcasts its "
               "own engines.\n";
  return all_converged;
}

/// E10c: client threads swept at a fixed 4-worker pool. Returns false
/// when any point diverged (CI smoke fails on it).
bool print_producer_sweep(const std::vector<std::size_t>& producer_counts,
                          std::size_t ops_per_process) {
  constexpr std::size_t kWorkers = 4;
  print_banner(std::cout,
               "E10c: ThreadUcStore multi-producer scaling (2 processes, "
               "4 workers each, zipf 0.99 over 512 keys, window 32, "
               "counter adds)");
  std::cout << "hardware threads detected: "
            << std::thread::hardware_concurrency()
            << " (speedup needs >= producers + workers real cores)\n";
  TextTable t({"producers", "threads/proc", "updates", "wall ms",
               "ops/sec", "speedup vs first", "converged"});
  double base_ops_per_sec = 0.0;
  bool all_converged = true;
  for (std::size_t c : producer_counts) {
    const PoolPoint r = run_pool_point(kWorkers, ops_per_process, c);
    all_converged = all_converged && r.converged;
    const double ops_per_sec =
        r.wall_seconds > 0
            ? static_cast<double>(r.total_updates) / r.wall_seconds
            : 0.0;
    if (base_ops_per_sec == 0.0) base_ops_per_sec = ops_per_sec;
    t.add(c, c + kWorkers, r.total_updates, r.wall_seconds * 1e3,
          ops_per_sec,
          base_ops_per_sec > 0 ? ops_per_sec / base_ops_per_sec : 0.0,
          r.converged ? "yes" : "NO");
  }
  t.print(std::cout);
  std::cout << "\nN client threads feed one store concurrently: stamps "
               "come off the shared atomic clock (fetch-add), updates "
               "race into the owning worker's MPSC ring, and per-key "
               "arbitration never notices — every point must converge "
               "to the same per-key sums.\n";
  return all_converged;
}

/// E10d: the read-path latency histogram — published-view get() versus
/// the ring round trip, one hot key, pooled store.
void print_read_latency_table(std::size_t samples) {
  using S2 = SetAdt<int>;
  using TSet = ThreadUcStore<S2>;
  print_banner(std::cout,
               "E10d: read-path latency, hot key (workers=2; published "
               "seqlock view vs worker-ring round trip)");
  ThreadNetwork<TSet::Envelope> net(1);
  StoreConfig cfg;
  cfg.workers = 2;
  cfg.batch_window = 64;
  TSet store(S2{}, 0, net, cfg);
  for (int i = 0; i < 64; ++i) store.update("hot", S2::insert(i));
  (void)store.get("hot", S2::read());  // cold get: the promoting trip
  bench::LatencySummary pub_ns, ring_ns;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(store.get("hot", S2::read()));
    pub_ns.add(std::chrono::duration<double, std::nano>(
                   std::chrono::steady_clock::now() - t0)
                   .count());
  }
  for (std::size_t i = 0; i < samples; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(store.query("hot", S2::read()));
    ring_ns.add(std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
  }
  const StoreStats st = store.stats();
  TextTable t({"read path", "samples", "p50 ns", "p90 ns", "p99 ns",
               "max ns"});
  bench::add_latency_row(t, "published get()", pub_ns);
  bench::add_latency_row(t, "ring query()", ring_ns);
  t.print(std::cout);
  std::cout << "published reads: " << st.published_reads
            << ", get() ring fallbacks: " << st.ring_reads
            << " (the one cold get() that promoted the key)\n"
            << "\nA published read is a registry snapshot + seqlock "
               "state copy — it never enqueues on a ring, so its tail "
               "does not include a worker tick; the ring round trip "
               "pays enqueue + worker dequeue + wakeup.\n";
  net.close_all();
}

/// E10e: tracing overhead on the E10b hot path — the 4-worker pooled
/// point run tracing-off and tracing-on (default 1-in-16 sampling).
/// One discarded warmup then best-of-5 per arm, arms interleaved, so
/// frequency ramp and scheduler noise don't masquerade as overhead.
/// The tracing runs export `trace_out`/`metrics_out` when given (the
/// artifacts the CI smoke step feeds to tools/check_trace.py). Returns
/// false when any run diverged.
bool print_tracing_overhead(std::size_t ops_per_process,
                            const std::string& trace_out,
                            const std::string& metrics_out) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kReps = 5;
  print_banner(std::cout,
               "E10e: tracing overhead (E10b point, 2 processes x 4 "
               "workers, 1-in-16 span sampling; budget < 5%)");
  bool all_converged = true;
  double best_off = 0.0, best_on = 0.0;
  std::uint64_t updates = 0;
  (void)run_pool_point(kWorkers, ops_per_process);  // warmup, discarded
  for (int rep = 0; rep < kReps; ++rep) {
    const PoolPoint off = run_pool_point(kWorkers, ops_per_process);
    const PoolPoint on = run_pool_point(kWorkers, ops_per_process,
                                        /*producers=*/1, /*tracing=*/true,
                                        trace_out, metrics_out);
    all_converged = all_converged && off.converged && on.converged;
    updates = off.total_updates;
    if (best_off == 0.0 || off.wall_seconds < best_off) {
      best_off = off.wall_seconds;
    }
    if (best_on == 0.0 || on.wall_seconds < best_on) {
      best_on = on.wall_seconds;
    }
  }
  TextTable t({"tracing", "updates", "best wall ms", "ops/sec",
               "overhead", "converged"});
  const double off_ops = best_off > 0 ? updates / best_off : 0.0;
  const double on_ops = best_on > 0 ? updates / best_on : 0.0;
  t.add("off", updates, best_off * 1e3, off_ops, "-",
        all_converged ? "yes" : "NO");
  const double overhead =
      best_off > 0 ? (best_on - best_off) / best_off * 100.0 : 0.0;
  t.add("on (1/16)", updates, best_on * 1e3, on_ops,
        std::to_string(overhead).substr(0, 5) + "%",
        all_converged ? "yes" : "NO");
  t.print(std::cout);
  std::cout << "\nA disabled hook is one branch on a null obs pointer; "
               "enabled, a sampled-out op pays one relaxed mask test and "
               "a sampled op one clock read + ring slot write. The "
               "overhead column is measured on this host, against the "
               "< 5% acceptance budget.\n";
  if (!trace_out.empty()) {
    std::cout << "chrome trace written to " << trace_out << "\n";
  }
  if (!metrics_out.empty()) {
    std::cout << "metrics snapshot written to " << metrics_out << "\n";
  }
  return all_converged;
}

// Microbench: the local cost of a keyed update (stamp, self-apply,
// buffer) at varying live-key counts — the store's wait-free hot path.
void BM_StoreUpdate(benchmark::State& state) {
  const auto n_keys = static_cast<std::size_t>(state.range(0));
  SimScheduler scheduler;
  SimNetwork<SimUcStore<S>::Envelope>::Config cfg;
  cfg.n_processes = 2;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<SimUcStore<S>::Envelope> net(scheduler, cfg);
  StoreConfig store_cfg;
  store_cfg.batch_window = 64;
  SimUcStore<S> store(S{}, 0, net, store_cfg);
  SimUcStore<S> peer(S{}, 1, net, store_cfg);
  ZipfianKeys keyspace(n_keys, 0.99);
  Rng rng(7);
  int v = 0;
  for (auto _ : state) {
    store.update(keyspace.sample(rng), S::insert(v++ % 64));
    if (scheduler.pending() > 4096) scheduler.run();
  }
  scheduler.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(std::to_string(store.keys_live()) + " keys live");
}
BENCHMARK(BM_StoreUpdate)->Arg(16)->Arg(1024)->Arg(65536)->Unit(
    benchmark::kMicrosecond);

// Microbench: zipfian sampling itself (binary search over the CDF).
void BM_ZipfSample(benchmark::State& state) {
  const auto n_keys = static_cast<std::size_t>(state.range(0));
  ZipfianKeys keyspace(n_keys, 0.99);
  Rng rng(7);
  std::size_t sink = 0;
  for (auto _ : state) {
    sink += keyspace.sample_index(rng);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(1'000'000);

}  // namespace

/// Lenient "a,b,c" list parse shared by --workers= / --producers=:
/// digits and commas only; empty result falls back to `fallback`.
std::vector<std::size_t> parse_count_list(
    const std::string& s, const std::vector<std::size_t>& fallback) {
  std::vector<std::size_t> out;
  std::size_t v = 0;
  for (const char c : s) {
    if (c == ',') {
      if (v > 0) out.push_back(v);
      v = 0;
    } else if (c >= '0' && c <= '9') {
      v = v * 10 + static_cast<std::size_t>(c - '0');
    }
  }
  if (v > 0) out.push_back(v);
  return out.empty() ? fallback : out;
}

// Custom main (instead of UCW_BENCH_MAIN): `--workers=a,b,c` picks the
// E10b pool sweep points, `--producers=a,b,c` the E10c client-thread
// sweep points, and `--workers-ops=N` the per-process op count both
// sweeps use; `--trace-out=`/`--metrics-out=` export the E10e tracing
// run's artifacts. All are stripped before google-benchmark sees the
// arguments. Bare `--workers` / `--producers` run the default sweeps
// explicitly.
int main(int argc, char** argv) {
  const std::vector<std::size_t> default_workers = {1, 2, 4, 8};
  const std::vector<std::size_t> default_producers = {1, 2, 4};
  std::vector<std::size_t> worker_counts = default_workers;
  std::vector<std::size_t> producer_counts = default_producers;
  std::size_t pool_ops = 30'000;
  std::string trace_out, metrics_out;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" || arg == "--producers") continue;
    if (arg.rfind("--workers=", 0) == 0) {
      worker_counts = parse_count_list(arg.substr(10), default_workers);
      continue;
    }
    if (arg.rfind("--producers=", 0) == 0) {
      producer_counts =
          parse_count_list(arg.substr(12), default_producers);
      continue;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(12);
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(14);
      continue;
    }
    if (arg.rfind("--workers-ops=", 0) == 0) {
      // Lenient like the lists: digits only, malformed input keeps the
      // default instead of throwing out of main.
      std::size_t v = 0;
      for (const char c : arg.substr(14)) {
        if (c < '0' || c > '9') {
          v = 0;
          break;
        }
        v = v * 10 + static_cast<std::size_t>(c - '0');
      }
      if (v > 0) pool_ops = v;
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  print_tables();
  bool converged = print_worker_pool_sweep(worker_counts, pool_ops);
  converged = print_producer_sweep(producer_counts, pool_ops) && converged;
  print_read_latency_table(/*samples=*/20'000);
  converged =
      print_tracing_overhead(pool_ops, trace_out, metrics_out) && converged;
  int pargc = static_cast<int>(passthrough.size());
  ::benchmark::Initialize(&pargc, passthrough.data());
  if (::benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return converged ? 0 : 1;
}
