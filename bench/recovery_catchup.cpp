// E11 — Recovery: catch-up cost scales with live state, not history.
//
// Sweeps history length on a fixed 1000-key zipfian keyspace and, for
// each history, crashes a replica mid-run and rejoins it near the end.
// With store-level GC + snapshot shipping the rejoin transfers the
// per-key base states plus the *unstable suffix* (bounded by the
// stability-floor lag — a few flush ticks of traffic), so the
// "catch-up entries" column stays flat as history grows. The control
// (GC off) replays the donor's entire resident logs: its column grows
// linearly with history, exactly the O(history) rejoin the recovery
// subsystem exists to remove. The resident-log columns show the same
// asymmetry cluster-wide (bounded unstable window vs full history per
// replica).
#include "bench_common.hpp"

#include <chrono>

#include "runtime/store_harness.hpp"
#include "store/all.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

struct SweepResult {
  StoreRunOutput<S> out;
  double wall_seconds = 0.0;
};

SweepResult run_point(std::size_t ops_per_process, bool gc) {
  StoreRunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = 7;
  cfg.fifo_links = true;
  cfg.n_keys = 1000;
  cfg.skew = 0.99;
  cfg.ops_per_process = ops_per_process;
  cfg.update_ratio = 1.0;
  cfg.think_time = LatencyModel::exponential(100.0);
  cfg.store.batch_window = 8;
  cfg.store.gc = gc;
  cfg.flush_period = 1'000.0;
  // Crash at ~60% of the expected run, rejoin at ~80%: the joiner must
  // cover the full pre-crash history plus everything it slept through.
  const SimTime span = static_cast<SimTime>(ops_per_process) * 115.0;
  cfg.crashes = {CrashPlan{3, 0.6 * span}};
  cfg.restarts = {RestartPlan{3, 0.8 * span, /*resume_ops=*/40}};
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult r;
  r.out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    w.value_range = 64;
    return random_set_update(rng, w);
  });
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

void print_tables() {
  print_banner(std::cout,
               "E11: crash-restart catch-up vs history length (4 procs, "
               "1000-key zipf 0.99, window 8, flush tick 1ms)");
  TextTable t({"history (updates)", "mode", "catchup entries",
               "catchup keys", "sync rounds", "resident log (alive)",
               "converged", "wall s"});
  SweepResult largest_gc;  // reused for E11b: the sweep already ran it
  for (std::size_t ops : {250u, 1'000u, 4'000u}) {
    for (const bool gc : {true, false}) {
      SweepResult r = run_point(ops, gc);
      const StoreStats& joiner = r.out.store_stats[3];
      t.add(r.out.total_updates, gc ? "gc+snapshot" : "full-replay",
            joiner.catchup_entries, joiner.catchup_keys,
            joiner.sync_requests_sent, r.out.log_entries_resident,
            r.out.converged ? "yes" : "NO", r.wall_seconds);
      if (gc) largest_gc = std::move(r);
    }
  }
  t.print(std::cout);
  std::cout << "\nWith GC on, catch-up ships per-key bases plus the "
               "unstable suffix (floor lag), so 'catchup entries' stays "
               "flat while history grows 16x; the full-replay control "
               "grows linearly. Resident logs show the same bound in "
               "steady state.\n\n";

  // The observability surface on the largest GC'd run from the sweep
  // above: one entry point renders every table the counters justify
  // (store, recovery activity, losses) instead of hand-picking.
  print_banner(std::cout, "E11b: observability report (largest gc run)");
  obs::print_observability(std::cout, largest_gc.out.report);
}

// Microbench: encoding one shard's snapshot (the donor-side cost of a
// sync) at varying live-key counts.
void BM_EncodeShardSnapshot(benchmark::State& state) {
  const auto n_keys = static_cast<std::size_t>(state.range(0));
  ReplayReplica<S>::Config rep_cfg;
  rep_cfg.absorb_below_floor = true;
  StoreShard<S> shard(S{}, 0, rep_cfg);
  Rng rng(11);
  for (std::size_t k = 0; k < n_keys; ++k) {
    const std::string key = ZipfianKeys::key_name(k);
    for (int i = 0; i < 4; ++i) {
      shard.replica(key).apply(
          1, UpdateMessage<S>{{static_cast<LogicalTime>(4 * k + i + 1), 1},
                              S::insert(i), {}});
    }
    // Fold half of each key's entries so the snapshot ships base+suffix.
    (void)shard.replica(key).fold_to(4 * k + 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_shard_snapshot(shard, 0, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_keys));
}
BENCHMARK(BM_EncodeShardSnapshot)->Arg(100)->Arg(1'000)->Arg(10'000);

// Microbench: the walk collect_garbage() pays whenever the stability
// floor advances — pushing a (here already-folded) floor through every
// live replica of the keyspace. The entries were folded in setup, so
// this prices the sweep itself, the recurring per-advance component;
// the no-advance tick is a cached floor comparison and costs nothing.
void BM_StoreGcSweep(benchmark::State& state) {
  const auto n_keys = static_cast<std::size_t>(state.range(0));
  SimScheduler scheduler;
  SimNetwork<SimUcStore<S>::Envelope>::Config net_cfg;
  net_cfg.n_processes = 2;
  net_cfg.latency = LatencyModel::constant(10.0);
  net_cfg.fifo_links = true;
  SimNetwork<SimUcStore<S>::Envelope> net(scheduler, net_cfg);
  StoreConfig cfg;
  cfg.gc = true;
  cfg.batch_window = 64;
  SimUcStore<S> store(S{}, 0, net, cfg);
  SimUcStore<S> peer(S{}, 1, net, cfg);
  for (std::size_t k = 0; k < n_keys; ++k) {
    store.update(ZipfianKeys::key_name(k), S::insert(static_cast<int>(k)));
  }
  (void)store.flush();
  scheduler.run();
  (void)peer.flush();  // ack heartbeat back to the updater
  scheduler.run();
  (void)store.flush();  // hears the ack; folds everything stable
  const LogicalTime floor = store.stats().stability_floor;
  for (auto _ : state) {
    std::size_t folded = 0;
    for (std::size_t i = 0; i < store.shard_count(); ++i) {
      store.shard(i).for_each([&](const std::string&, ReplayReplica<S>& r) {
        folded += r.fold_to(floor);
      });
    }
    benchmark::DoNotOptimize(folded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n_keys));
}
BENCHMARK(BM_StoreGcSweep)->Arg(100)->Arg(1'000)->Arg(10'000);

}  // namespace

UCW_BENCH_MAIN(print_tables)
