// E9 — Section VI case study: the replicated-set family compared.
//
// Three artifacts:
//  1. the Figure 1b schedule (concurrent I/D crossfire) on every
//     implementation: the converged state, and whether any linearization
//     of the four updates explains it (the UC litmus test);
//  2. random-workload sweep: convergence rate and "explainable final
//     state" rate per implementation — OR-Set/PN-Set/2P-Set converge to
//     unexplainable states in a measurable fraction of runs, the
//     Algorithm-1 set never does (Prop. 4), and LWW-Set's per-element
//     arbitration coincides with a linearization outcome;
//  3. per-replica space after the run (the cache-consistency remark at
//     the end of Section VI: the OR-Set may be cheaper in space).
#include "bench_common.hpp"

#include "criteria/all.hpp"
#include "history/builder.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;
using IntSet = std::set<int>;

/// Replays the operation schedule into a history (updates only) so the
/// downset DP can decide whether a final state is linearization-
/// reachable.
struct RecordedOp {
  ProcessId p;
  bool insert;
  int value;
};

bool explainable(const std::vector<RecordedOp>& ops, std::size_t n,
                 const IntSet& final_state) {
  HistoryBuilder<S> b{S{}, n};
  for (const auto& op : ops) {
    b.update(op.p, op.insert ? S::insert(op.value) : S::remove(op.value));
  }
  const auto h = b.build();
  if (h.update_ids().size() > 22) return true;  // out of DP range: skip
  const auto result = check_uc_final_state(h, final_state);
  return result.verdict != Verdict::No;
}

void print_tables() {
  print_banner(std::cout, "E9a: the Figure 1b crossfire on every set");
  {
    TextTable t({"implementation", "final state", "converged",
                 "explainable by a linearization"});
    for (SetImplKind kind : kAllSetImpls) {
      SimScheduler scheduler;
      auto cluster = SetCluster::make(kind, scheduler, 2, 1,
                                      LatencyModel::constant(1'000.0),
                                      /*fifo=*/true);
      cluster->node(0).insert(1);
      cluster->node(0).remove(2);
      cluster->node(1).insert(2);
      cluster->node(1).remove(1);
      scheduler.run();
      const std::vector<RecordedOp> ops = {
          {0, true, 1}, {0, false, 2}, {1, true, 2}, {1, false, 1}};
      const IntSet final_state = cluster->node(0).read();
      t.add(to_string(kind), format_value(final_state),
            cluster->converged() ? "yes" : "NO",
            explainable(ops, 2, final_state) ? "yes" : "no");
    }
    t.print(std::cout);
    std::cout << "Paper: the reachable linearization outcomes are {}, {1} "
                 "and {2}; the OR-Set's insert-wins answer {1, 2} is SEC "
                 "but not UC (Fig. 1b).\n";
  }

  print_banner(std::cout,
               "E9b: random workloads — convergence and explainability "
               "(60 seeds × 2 procs × 5 ops, small value range)");
  {
    TextTable t({"implementation", "converged", "final explainable",
                 "bytes/replica (mean)"});
    for (SetImplKind kind : kAllSetImpls) {
      int converged = 0, explainable_runs = 0, runs = 0;
      double bytes = 0.0;
      for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        SimScheduler scheduler;
        auto cluster = SetCluster::make(kind, scheduler, 2, seed,
                                        LatencyModel::exponential(2'500.0),
                                        kind == SetImplKind::Pipelined);
        Rng rng(seed);
        std::vector<RecordedOp> ops;
        for (int i = 0; i < 10; ++i) {
          const auto p = static_cast<ProcessId>(rng.uniform_int(0, 1));
          const int v = static_cast<int>(rng.uniform_int(1, 3));
          const bool ins = rng.chance(0.55);
          ops.push_back({p, ins, v});
          if (ins) {
            cluster->node(p).insert(v);
          } else {
            cluster->node(p).remove(v);
          }
          scheduler.run_until(scheduler.now() + rng.uniform_real(5, 300));
        }
        scheduler.run();
        ++runs;
        const bool conv = cluster->converged();
        if (conv) ++converged;
        if (conv && explainable(ops, 2, cluster->node(0).read())) {
          ++explainable_runs;
        }
        bytes += static_cast<double>(cluster->approx_bytes(0));
      }
      t.add(to_string(kind),
            std::to_string(converged) + "/" + std::to_string(runs),
            std::to_string(explainable_runs) + "/" +
                std::to_string(converged),
            bytes / runs);
    }
    t.print(std::cout);
    std::cout << "Paper: the Algorithm-1 set is always explainable "
                 "(update consistency); insert-wins/counter/black-list "
                 "semantics sometimes are not — they satisfy only their "
                 "concurrent specifications. The OR-Set buys that "
                 "weakness back as (sometimes) smaller state.\n";
  }
}

void BM_SetOpThroughput(benchmark::State& state) {
  const auto kind = kAllSetImpls[static_cast<std::size_t>(state.range(0))];
  SimScheduler scheduler;
  auto cluster = SetCluster::make(kind, scheduler, 3, 1,
                                  LatencyModel::constant(50.0));
  Rng rng(1);
  for (auto _ : state) {
    const int v = static_cast<int>(rng.uniform_int(0, 31));
    if (rng.chance(0.6)) {
      cluster->node(0).insert(v);
    } else {
      cluster->node(0).remove(v);
    }
    if (state.iterations() % 128 == 0) {
      state.PauseTiming();
      scheduler.run();
      state.ResumeTiming();
    }
  }
  scheduler.run();
  state.SetLabel(to_string(kind));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SetOpThroughput)->DenseRange(0, 5)->Unit(
    benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
