// E7 — Algorithm 2: update-consistent shared memory with constant-time
// operations and bounded memory.
//
// Contrasts Algorithm 2 (per-register last-writer-wins cells) with the
// generic Algorithm 1 run on the same MemoryAdt (full log, replay):
// identical converged semantics, asymptotically different costs. The
// paper: "This implementation only needs constant computation time for
// both the reads and the writes, and the complexity in memory only grows
// logarithmically with time and the number of participants."
#include "bench_common.hpp"

#include "core/all.hpp"

namespace {

using namespace ucw;
using Mem = MemoryAdt<std::string, int>;

void print_tables() {
  print_banner(std::cout,
               "E7: Algorithm 2 vs Algorithm 1 on the shared memory "
               "(2 procs, 8 registers)");
  TextTable t({"writes issued", "impl", "resident entries",
               "transitions total", "converged"});
  for (std::size_t writes : {100u, 1'000u, 10'000u}) {
    // Algorithm 2.
    {
      SimScheduler scheduler;
      SimNetwork<MemWriteMessage<std::string, int>>::Config cfg;
      cfg.n_processes = 2;
      cfg.latency = LatencyModel::exponential(200.0);
      cfg.seed = 3;
      SimNetwork<MemWriteMessage<std::string, int>> net(scheduler, cfg);
      SimUcMemory<std::string, int> a(0, 0, net), b(1, 0, net);
      Rng rng(3);
      for (std::size_t i = 0; i < writes; ++i) {
        auto& m = rng.chance(0.5) ? a : b;
        m.write("r" + std::to_string(rng.uniform_int(0, 7)),
                static_cast<int>(i));
        scheduler.run_until(scheduler.now() + 20.0);
      }
      scheduler.run();
      bool conv = true;
      for (int r = 0; r < 8; ++r) {
        conv &= a.read("r" + std::to_string(r)) ==
                b.read("r" + std::to_string(r));
      }
      t.add(writes, "Algorithm 2", a.replica().cell_count(),
            a.replica().stats().applied, conv ? "yes" : "NO");
    }
    // Algorithm 1 on MemoryAdt.
    {
      SimScheduler scheduler;
      SimNetwork<UpdateMessage<Mem>>::Config cfg;
      cfg.n_processes = 2;
      cfg.latency = LatencyModel::exponential(200.0);
      cfg.seed = 3;
      SimNetwork<UpdateMessage<Mem>> net(scheduler, cfg);
      SimUcObject<Mem> a(Mem{}, 0, net), b(Mem{}, 1, net);
      Rng rng(3);
      for (std::size_t i = 0; i < writes; ++i) {
        auto& m = rng.chance(0.5) ? a : b;
        m.update(Mem::write("r" + std::to_string(rng.uniform_int(0, 7)),
                            static_cast<int>(i)));
        scheduler.run_until(scheduler.now() + 20.0);
      }
      scheduler.run();
      bool conv = true;
      for (int r = 0; r < 8; ++r) {
        conv &= a.query(Mem::read("r" + std::to_string(r))) ==
                b.query(Mem::read("r" + std::to_string(r)));
      }
      t.add(writes, "Algorithm 1 (full log)", a.replica().log().size(),
            a.replica().stats().transitions, conv ? "yes" : "NO");
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: Algorithm 2 keeps one (stamp, value) cell per "
               "register — resident state bounded by |X| = 8 — while the "
               "generic construction's log grows with every write. Both "
               "converge to the same last-writer-wins memory.\n";
}

void BM_Alg2Write(benchmark::State& state) {
  MemoryReplica<std::string, int> replica(0, 0);
  Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    auto m = replica.local_write("r" + std::to_string(rng.uniform_int(0, 63)),
                                 i++);
    replica.apply(m);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Alg2Write);

void BM_Alg2Read(benchmark::State& state) {
  MemoryReplica<std::string, int> replica(0, 0);
  for (int i = 0; i < 64; ++i) {
    auto m = replica.local_write("r" + std::to_string(i), i);
    replica.apply(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(replica.read("r13"));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Alg2Read);

void BM_Alg1MemoryQuery(benchmark::State& state) {
  // The same read through the generic construction, log length as arg.
  const auto log_len = static_cast<std::size_t>(state.range(0));
  ReplayReplica<Mem> replica(Mem{}, 0, {ReplayPolicy::NaiveReplay, 64});
  Rng rng(1);
  for (std::size_t i = 1; i <= log_len; ++i) {
    replica.apply(
        1, UpdateMessage<Mem>{
               Stamp{i, 1},
               Mem::write("r" + std::to_string(rng.uniform_int(0, 63)),
                          static_cast<int>(i)),
               {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(replica.query(Mem::read("r13")));
  }
  state.SetLabel("naive replay over " + std::to_string(log_len));
}
BENCHMARK(BM_Alg1MemoryQuery)->Arg(1 << 8)->Arg(1 << 12)->Unit(
    benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
