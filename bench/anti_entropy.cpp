// E12 — Anti-entropy: heal-reconciliation cost vs partition duration,
// full-snapshot vs delta shipping.
//
// Sweeps how long a {0,1} / {2,3} split stays open on a fixed 500-key
// zipfian keyspace with both sides writing throughout, then heals and
// lets the anti-entropy machinery (heal-time representative pulls plus
// the flush-tick gap-triggered rounds) reconcile. Two arms per
// duration: incremental snapshots on (deltas against the requesters'
// echoed markers) and off (every exchange re-ships every shard in
// full). The headline columns: entries/bytes served by anti-entropy
// donors grow with the *divergence* (partition duration) in the delta
// arm, but with divergence *plus* the whole keyspace per round in the
// full arm — and the "keys skipped" column is exactly the wire traffic
// the dirty-sets saved. Reconciliation cost is what a capacity planner
// needs to budget for a heal storm; the delta codec is what keeps it
// proportional to the split, not the store.
#include "bench_common.hpp"

#include <chrono>

#include "runtime/store_harness.hpp"
#include "store/all.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

struct SweepResult {
  StoreRunOutput<S> out;
  double wall_seconds = 0.0;
};

SweepResult run_point(SimTime split_duration, bool incremental) {
  StoreRunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = 19;
  cfg.fifo_links = true;
  cfg.n_keys = 500;
  cfg.skew = 0.99;
  cfg.ops_per_process = 1'500;
  cfg.update_ratio = 1.0;
  cfg.think_time = LatencyModel::exponential(100.0);
  cfg.store.batch_window = 8;
  cfg.store.gc = true;
  cfg.store.incremental_snapshots = incremental;
  cfg.flush_period = 1'000.0;
  // Expected span ~150ms of virtual time; split opens at 20% and stays
  // open for the swept duration (both sides keep writing throughout).
  const SimTime split_at = 30'000.0;
  cfg.partitions = {
      PartitionPlan{split_at, {0, 0, 1, 1}},
      PartitionPlan{split_at + split_duration, {0, 0, 0, 0}},
  };
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult r;
  r.out = run_store_simulation(S{}, cfg, [](Rng& rng) {
    WorkloadConfig w;
    w.value_range = 64;
    return random_set_update(rng, w);
  });
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

void print_tables() {
  print_banner(std::cout,
               "E12: heal reconciliation vs partition duration (4 procs, "
               "500-key zipf 0.99, window 8, flush tick 1ms, split at "
               "30ms)");
  TextTable t({"split (virtual ms)", "mode", "dropped msgs", "ae rounds",
               "ae entries out", "ae bytes out", "keys served",
               "keys skipped", "converged", "wall s"});
  SweepResult largest_delta;
  for (const SimTime duration : {10'000.0, 40'000.0, 80'000.0}) {
    for (const bool incremental : {true, false}) {
      SweepResult r = run_point(duration, incremental);
      std::uint64_t rounds = 0, entries = 0, bytes = 0, served = 0,
                    skipped = 0;
      for (const auto& s : r.out.store_stats) {
        rounds += s.ae_rounds_completed;
        entries += s.ae_entries_served;
        bytes += s.ae_bytes_served;
        served += s.snapshot_keys_served;
        skipped += s.snapshot_keys_skipped_delta;
      }
      t.add(duration / 1'000.0, incremental ? "delta" : "full",
            r.out.net.messages_dropped_partition, rounds, entries, bytes,
            served, skipped, r.out.converged ? "yes" : "NO",
            r.wall_seconds);
      if (incremental) largest_delta = std::move(r);
    }
  }
  t.print(std::cout);
  std::cout << "\nBoth arms reconcile the same divergence; the delta arm "
               "ships only the keys whose logs advanced since each "
               "requester's last install ('keys skipped' never hit the "
               "wire), so its heal cost tracks the split duration while "
               "the full arm re-pays the whole keyspace every round.\n\n";

  print_banner(std::cout,
               "E12b: observability report (longest split, delta arm)");
  obs::print_observability(std::cout, largest_delta.out.report);
}

// Microbench: donor-side cost of cutting one shard's snapshot at
// varying dirty fractions — the serve-side win of the dirty-set: a
// delta encode touches every key's mark but copies only the dirty ones.
void BM_EncodeDeltaSnapshot(benchmark::State& state) {
  constexpr std::size_t kKeys = 4'096;
  const auto dirty_pct = static_cast<std::size_t>(state.range(0));
  StoreConfig cfg;
  cfg.shard_count = 1;
  ReplayReplica<S>::Config rep_cfg;
  rep_cfg.absorb_below_floor = true;
  ShardEngine<S> engine(S{}, 0, 0, cfg, rep_cfg);
  LogicalTime clock = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::string key = ZipfianKeys::key_name(k);
    for (int i = 0; i < 4; ++i) {
      (void)engine.apply_remote(
          1, key,
          UpdateMessage<S>{{++clock, 1}, S::insert(i), {}});
    }
  }
  // Baseline marker, then re-dirty the requested fraction.
  const std::uint64_t since = engine.dirty_marker();
  for (std::size_t k = 0; k < kKeys * dirty_pct / 100; ++k) {
    (void)engine.apply_remote(
        1, ZipfianKeys::key_name(k),
        UpdateMessage<S>{{++clock, 1}, S::insert(99), {}});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.encode_snapshot(1, since));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKeys));
}
BENCHMARK(BM_EncodeDeltaSnapshot)->Arg(0)->Arg(5)->Arg(25)->Arg(100);

}  // namespace

UCW_BENCH_MAIN(print_tables)
