// E4 — Section VII-C, query complexity: "this algorithm re-executes all
// past updates each time a new query is issued. In an effective
// implementation, a process can keep intermediate states [...]
// re-computed only if very late messages arrive."
//
// Two regimes over growing logs L:
//   in-order  — all messages arrive in stamp order (the steady state);
//   stragglers — a fraction of messages lands far back in the log.
// Policies: NaiveReplay (literal Algorithm 1, O(L) per query),
// CachedPrefix (O(1) amortized in-order, full replay after a straggler),
// Snapshot(K) (straggler cost bounded by K + distance).
//
// The table reports ADT transitions per query (the paper's unit of
// work); the microbenchmarks report wall-clock per query.
#include "bench_common.hpp"

#include <set>

#include "core/replica.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

/// Feeds `log_len` updates (optionally with stragglers) into a replica
/// and issues one query per update; returns transitions per query.
///
/// A straggler lands a bounded distance behind the log tail (a "very
/// late message" delayed by a few hundred stamps, not an archaeological
/// one) — the regime Section VII-C's intermediate-state remark targets.
double transitions_per_query(ReplayPolicy policy, std::size_t log_len,
                             double straggler_ratio, std::size_t snap_k) {
  ReplayReplica<S> replica(S{}, 0, {policy, snap_k});
  Rng rng(7);
  LogicalTime front = 1'000'000;  // in-order stream stamps, step 10
  std::set<LogicalTime> used;
  for (std::size_t i = 0; i < log_len; ++i) {
    Stamp stamp;
    if (i > 60 && rng.chance(straggler_ratio)) {
      LogicalTime clk;
      do {
        clk = front - 10 * static_cast<LogicalTime>(
                               rng.uniform_int(5, 50)) + 1;
      } while (!used.insert(clk).second);
      stamp = Stamp{clk, 2};
    } else {
      stamp = Stamp{front += 10, 1};
    }
    const int v = static_cast<int>(rng.uniform_int(0, 31));
    replica.apply(stamp.pid, UpdateMessage<S>{
                                 stamp,
                                 rng.chance(0.6) ? S::insert(v)
                                                 : S::remove(v),
                                 {}});
    benchmark::DoNotOptimize(replica.query(S::read()));
  }
  return static_cast<double>(replica.stats().transitions) /
         static_cast<double>(replica.stats().queries);
}

void print_tables() {
  print_banner(std::cout,
               "E4: transitions per query vs log length (query after "
               "every arrival)");
  TextTable t({"log length", "regime", "naive-replay", "cached-prefix",
               "snapshot(K=64)"});
  for (std::size_t len : {256u, 1024u, 4096u}) {
    for (double stragglers : {0.0, 0.05}) {
      t.add(len, stragglers == 0.0 ? "in-order" : "5% stragglers",
            transitions_per_query(ReplayPolicy::NaiveReplay, len,
                                  stragglers, 64),
            transitions_per_query(ReplayPolicy::CachedPrefix, len,
                                  stragglers, 64),
            transitions_per_query(ReplayPolicy::Snapshot, len, stragglers,
                                  64));
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: the literal algorithm replays the whole log per "
               "query (cost grows ~L/2 here since queries interleave "
               "arrivals); intermediate states make in-order queries O(1) "
               "and snapshots bound straggler damage.\n";

  print_banner(std::cout, "E4b: snapshot interval ablation (4096 updates, "
                          "5% stragglers)");
  TextTable t2({"K", "transitions/query"});
  for (std::size_t k : {8u, 32u, 128u, 512u}) {
    t2.add(k, transitions_per_query(ReplayPolicy::Snapshot, 4096, 0.05, k));
  }
  t2.print(std::cout);
}

void BM_QueryAfterAppend(benchmark::State& state) {
  const auto policy = static_cast<ReplayPolicy>(state.range(0));
  const auto log_len = static_cast<std::size_t>(state.range(1));
  ReplayReplica<S> replica(S{}, 0, {policy, 64});
  for (std::size_t i = 0; i < log_len; ++i) {
    replica.apply(1, UpdateMessage<S>{
                         Stamp{i + 1, 1},
                         S::insert(static_cast<int>(i % 64)),
                         {}});
  }
  (void)replica.query(S::read());  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(replica.query(S::read()));
  }
  state.SetLabel(to_string(policy) + " L=" + std::to_string(log_len));
}
BENCHMARK(BM_QueryAfterAppend)
    ->ArgsProduct({{0, 1, 2}, {1 << 8, 1 << 12, 1 << 14}})
    ->Unit(benchmark::kMicrosecond);

void BM_StragglerRecovery(benchmark::State& state) {
  // Cost of one straggler landing mid-log followed by a query.
  const auto policy = static_cast<ReplayPolicy>(state.range(0));
  const std::size_t log_len = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    ReplayReplica<S> replica(S{}, 0, {policy, 64});
    for (std::size_t i = 0; i < log_len; ++i) {
      replica.apply(1, UpdateMessage<S>{Stamp{10 * (i + 1), 1},
                                        S::insert(static_cast<int>(i % 64)),
                                        {}});
    }
    (void)replica.query(S::read());
    state.ResumeTiming();
    replica.apply(2, UpdateMessage<S>{Stamp{10 * (log_len / 2) + 1, 2},
                                      S::insert(4096), {}});
    benchmark::DoNotOptimize(replica.query(S::read()));
  }
  state.SetLabel(to_string(policy) + " straggler@mid, L=4096");
}
BENCHMARK(BM_StragglerRecovery)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
