// E5 — Section VII-C, network complexity: "a unique message is broadcast
// for each update and each message only contains the information to
// identify the update and a timestamp composed of two integer values".
//
// Compares, per update operation and process count: broadcasts,
// point-to-point transmissions and estimated payload bytes, for the
// Algorithm-1 set, the CRDT sets, and the quorum-linearizable register
// (which needs a round trip per operation rather than one one-way
// broadcast). Timestamp growth is reported separately: the stamp's clock
// value grows with operations (its *encoding* grows logarithmically, the
// paper's point).
#include "bench_common.hpp"

#include "core/all.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

void print_tables() {
  print_banner(std::cout,
               "E5: network cost per update (300 ops, exp(1ms) latency)");
  TextTable t({"implementation", "n", "broadcasts/op", "p2p msgs/op",
               "payload bytes/op (est)"});
  for (std::size_t n : {3u, 5u, 9u}) {
    for (SetImplKind kind :
         {SetImplKind::UcSet, SetImplKind::OrSet, SetImplKind::TwoPhaseSet,
          SetImplKind::LwwSet}) {
      SimScheduler scheduler;
      auto cluster = SetCluster::make(kind, scheduler, n, 5,
                                      LatencyModel::exponential(1'000.0));
      bench::drive_set_cluster(*cluster, scheduler, 5, 300);
      const auto stats = cluster->net_stats();
      const double ops = static_cast<double>(stats.broadcasts);
      // Payload estimate: stamp (12B) for UC/LWW; tag lists for OR-Set.
      double bytes = 0;
      switch (kind) {
        case SetImplKind::UcSet:
        case SetImplKind::LwwSet:
          bytes = 12.0 + 4.0;
          break;
        case SetImplKind::OrSet:
          bytes = 12.0 + 4.0 + 4.0;  // tag + value (removes: observed tags)
          break;
        default:
          bytes = 5.0;  // flag + value
      }
      t.add(to_string(kind), n, ops > 0 ? 1.0 : 0.0,
            ops > 0 ? static_cast<double>(stats.messages_sent) / ops : 0.0,
            bytes);
    }
    // Quorum register: ops wait for acks; count messages per op.
    {
      SimScheduler scheduler;
      SimNetwork<QuorumMessage<int>>::Config cfg;
      cfg.n_processes = n;
      cfg.latency = LatencyModel::exponential(1'000.0);
      cfg.seed = 5;
      SimNetwork<QuorumMessage<int>> net(scheduler, cfg);
      std::vector<std::unique_ptr<QuorumRegister<int>>> regs;
      for (ProcessId p = 0; p < n; ++p) {
        regs.push_back(std::make_unique<QuorumRegister<int>>(p, 0, net));
      }
      const int ops = 300;
      int done = 0;
      Rng rng(5);
      for (int i = 0; i < ops; ++i) {
        const auto p = static_cast<ProcessId>(
            rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        if (rng.chance(0.5)) {
          regs[p]->write(i, [&done] { ++done; });
        } else {
          regs[p]->read([&done](int) { ++done; });
        }
        scheduler.run();
      }
      t.add("Quorum register (ABD)", n,
            static_cast<double>(net.stats().broadcasts) / ops,
            static_cast<double>(net.stats().messages_sent) / ops, 16.0);
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: Algorithm 1 costs exactly one broadcast (n-1 "
               "point-to-point messages) per update and nothing per "
               "query; strong consistency pays request+reply rounds "
               "(~2-4x the messages here, plus waiting).\n";

  print_banner(std::cout, "E5b: timestamp growth (encoding is "
                          "logarithmic in ops × processes)");
  TextTable t2({"ops issued", "max clock value", "stamp bits needed"});
  for (std::size_t ops : {100u, 10'000u, 1'000'000u}) {
    // Worst case: every op observes every other, clock = ops.
    std::size_t bits = 1;
    while ((1ull << bits) < ops) ++bits;
    t2.add(ops, ops, bits + 20);  // +20 bits of pid space
  }
  t2.print(std::cout);
}

void BM_BroadcastFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  SimScheduler scheduler;
  SimNetwork<UpdateMessage<S>>::Config cfg;
  cfg.n_processes = n;
  cfg.latency = LatencyModel::constant(10.0);
  SimNetwork<UpdateMessage<S>> net(scheduler, cfg);
  std::vector<std::unique_ptr<SimUcObject<S>>> objs;
  for (ProcessId p = 0; p < n; ++p) {
    objs.push_back(std::make_unique<SimUcObject<S>>(S{}, p, net));
  }
  int v = 0;
  for (auto _ : state) {
    objs[0]->update(S::insert(v++ % 64));
    scheduler.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("fanout to " + std::to_string(n - 1) + " peers");
}
BENCHMARK(BM_BroadcastFanout)->Arg(2)->Arg(8)->Arg(32)->Unit(
    benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
