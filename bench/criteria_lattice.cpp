// E10 — Proposition 2: the criteria lattice SUC ⊊ SEC ∩ UC ⊊ ... ⊊ EC.
//
// Generates a population of random small ω-tailed set histories, runs
// all five checkers on each, and reports (a) the population count of
// every (EC, SEC, PC, UC, SUC) combination observed and (b) the number
// of inclusion violations — the paper proves there must be none:
// SUC ⇒ SEC, SUC ⇒ UC, UC ⇒ EC. The microbenchmarks time the exact
// checkers as history size grows (they are exponential small-model
// deciders; the growth curve is the point).
#include "bench_common.hpp"

#include <map>

#include "criteria/all.hpp"
#include "history/builder.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;
using IntSet = std::set<int>;

History<S> random_history(std::uint64_t seed, std::size_t procs,
                          int max_ops, int values) {
  Rng rng(seed);
  HistoryBuilder<S> b{S{}, procs};
  for (ProcessId p = 0; p < procs; ++p) {
    const int n_ops = static_cast<int>(rng.uniform_int(1, max_ops));
    for (int i = 0; i < n_ops; ++i) {
      const int v = static_cast<int>(rng.uniform_int(1, values));
      if (rng.chance(0.55)) {
        b.update(p, rng.chance(0.6) ? S::insert(v) : S::remove(v));
      } else {
        IntSet out;
        for (int x = 1; x <= values; ++x) {
          if (rng.chance(0.4)) out.insert(x);
        }
        b.query(p, S::read(), out);
      }
    }
    IntSet final_out;
    for (int x = 1; x <= values; ++x) {
      if (rng.chance(0.5)) final_out.insert(x);
    }
    b.query_omega(p, S::read(), final_out);
  }
  return b.build();
}

void print_tables() {
  print_banner(std::cout,
               "E10: criteria lattice over 400 random histories "
               "(2 procs, <=3 ops each, values {1,2})");
  std::map<std::string, int> population;
  int violations = 0;
  int unknowns = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    const auto h = random_history(seed, 2, 3, 2);
    const auto row = check_all_criteria(h);
    bool any_unknown = false;
    for (Criterion c : kAllCriteria) {
      if (row.get(c).verdict == Verdict::Unknown) any_unknown = true;
    }
    if (any_unknown) {
      ++unknowns;
      continue;
    }
    const auto sc = check_sc(h);
    if (sc.verdict == Verdict::Unknown) {
      ++unknowns;
      continue;
    }
    std::string key;
    for (Criterion c : kAllCriteria) {
      if (row.get(c).yes()) {
        if (!key.empty()) key += "+";
        key += to_string(c);
      }
    }
    if (sc.yes()) key += key.empty() ? "SC" : "+SC";
    if (key.empty()) key = "(none)";
    ++population[key];
    if (row.suc.yes() && (!row.sec.yes() || !row.uc.yes())) ++violations;
    if (row.uc.yes() && !row.ec.yes()) ++violations;
    if (sc.yes() && (!row.suc.yes() || !row.pc.yes())) ++violations;
  }
  TextTable t({"classification", "histories"});
  for (const auto& [key, count] : population) {
    t.add(key, count);
  }
  t.print(std::cout);
  std::cout << "\ninclusion violations (paper: must be 0): " << violations
            << "   unknown verdicts: " << unknowns << '\n';
  std::cout << "Every SUC history is also EC+SEC+UC; every UC history is "
               "EC (Prop. 2); every SC history is SUC and PC. PC is "
               "otherwise incomparable (Fig. 1d is SUC but not PC; "
               "Fig. 2 is PC but not EC).\n";
}

void BM_Checker(benchmark::State& state) {
  const auto criterion =
      kAllCriteria[static_cast<std::size_t>(state.range(0))];
  const auto ops = static_cast<int>(state.range(1));
  const auto h = random_history(13, 2, ops, 2);
  for (auto _ : state) {
    auto result = check_criterion(h, criterion);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(to_string(criterion) + " ops<=" + std::to_string(ops) +
                 "/proc, " + std::to_string(h.update_ids().size()) +
                 " updates");
}
BENCHMARK(BM_Checker)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {2, 4, 6}})
    ->Unit(benchmark::kMicrosecond);

void BM_DownsetExplorerScaling(benchmark::State& state) {
  // The UC engine on a pure-update history with n non-commuting updates
  // split over two chains.
  const auto n = static_cast<std::size_t>(state.range(0));
  HistoryBuilder<S> b{S{}, 2};
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = static_cast<ProcessId>(i % 2);
    const int v = static_cast<int>(rng.uniform_int(1, 4));
    b.update(p, rng.chance(0.5) ? S::insert(v) : S::remove(v));
  }
  const auto h = b.build();
  for (auto _ : state) {
    DownsetExplorer<S> explorer(h);
    benchmark::DoNotOptimize(explorer.final_states().size());
  }
  state.SetLabel(std::to_string(n) + " updates");
}
BENCHMARK(BM_DownsetExplorerScaling)
    ->Arg(8)
    ->Arg(16)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
