// E3 — Algorithm 1 / Proposition 4: the universal construction is strong
// update consistent, wait-free, for any number of crashes.
//
// Sweeps processes × latency models × crash plans; for every cell, many
// seeded runs are (a) checked for convergence of all surviving replicas
// and (b) certificate-validated against Definition 9. The paper proves
// 100% / 100%; the table reports the measured rates. Microbenchmarks
// time whole simulated runs (wall-clock of the simulation itself).
#include "bench_common.hpp"

#include "criteria/all.hpp"
#include "runtime/sim_harness.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

struct Cell {
  std::string label;
  std::size_t n;
  LatencyModel latency;
  std::vector<CrashPlan> crashes;
  double duplicates = 0.0;
};

std::vector<Cell> cells() {
  return {
      {"n=2 exp(1ms)", 2, LatencyModel::exponential(1'000.0), {}, 0.0},
      {"n=4 exp(1ms)", 4, LatencyModel::exponential(1'000.0), {}, 0.0},
      {"n=8 exp(1ms)", 8, LatencyModel::exponential(1'000.0), {}, 0.0},
      {"n=4 uniform(0.1,5ms)", 4, LatencyModel::uniform(100.0, 5'000.0),
       {}, 0.0},
      {"n=4 pareto heavy-tail", 4, LatencyModel::pareto(300.0, 1.2), {},
       0.0},
      {"n=4 exp(1ms) 1 crash", 4, LatencyModel::exponential(1'000.0),
       {CrashPlan{2, 6'000.0}}, 0.0},
      {"n=4 exp(1ms) 3 crash", 4, LatencyModel::exponential(1'000.0),
       {CrashPlan{1, 3'000.0}, CrashPlan{2, 6'000.0},
        CrashPlan{3, 9'000.0}}, 0.0},
      {"n=4 exp(1ms) 30% dup", 4, LatencyModel::exponential(1'000.0), {},
       0.3},
  };
}

RunConfig make_config(const Cell& cell, std::uint64_t seed) {
  RunConfig cfg;
  cfg.n_processes = cell.n;
  cfg.seed = seed;
  cfg.latency = cell.latency;
  cfg.crashes = cell.crashes;
  cfg.duplicate_probability = cell.duplicates;
  cfg.workload.ops_per_process = 25;
  cfg.workload.update_ratio = 0.7;
  cfg.workload.value_range = 6;
  return cfg;
}

void print_tables() {
  print_banner(std::cout,
               "E3: Algorithm 1 universality sweep (30 seeds per row)");
  TextTable t({"scenario", "converged", "SUC certificate", "msgs/update",
               "mean ops recorded"});
  for (const Cell& cell : cells()) {
    int converged = 0, valid = 0, runs = 30;
    double msgs_per_update = 0.0, events = 0.0;
    for (int s = 0; s < runs; ++s) {
      auto cfg = make_config(cell, static_cast<std::uint64_t>(s) + 1);
      auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
        return random_set_update<int>(rng, cfg.workload);
      });
      if (out.converged) ++converged;
      const auto cert =
          validate_suc_certificate(out.history, out.certificate);
      if (cert.verdict == Verdict::Yes) ++valid;
      if (out.net.broadcasts > 0) {
        msgs_per_update += static_cast<double>(out.net.messages_sent) /
                           static_cast<double>(out.net.broadcasts);
      }
      events += static_cast<double>(out.history.size());
    }
    t.add(cell.label,
          std::to_string(converged) + "/" + std::to_string(runs),
          std::to_string(valid) + "/" + std::to_string(runs),
          msgs_per_update / runs, events / runs);
  }
  t.print(std::cout);
  std::cout << "\nPaper (Prop. 4): every run of Algorithm 1 is SUC and "
               "replicas converge, with n-1 point-to-point messages per "
               "update (one broadcast), regardless of crashes.\n";
}

void BM_FullSimulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    RunConfig cfg;
    cfg.n_processes = n;
    cfg.seed = seed++;
    cfg.workload.ops_per_process = 25;
    auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
      return random_set_update<int>(rng, cfg.workload);
    });
    benchmark::DoNotOptimize(out.converged);
  }
  state.SetLabel(std::to_string(n) + " processes, 25 ops each");
}
BENCHMARK(BM_FullSimulation)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_CertificateValidation(benchmark::State& state) {
  RunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = 9;
  cfg.workload.ops_per_process =
      static_cast<std::size_t>(state.range(0));
  auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  for (auto _ : state) {
    auto result = validate_suc_certificate(out.history, out.certificate);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(out.history.size()) + " events");
}
BENCHMARK(BM_CertificateValidation)->Arg(10)->Arg(40)->Unit(
    benchmark::kMillisecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
