// E6 — Section VII-C, garbage collection: "after some time old messages
// can be garbage collected".
//
// Runs Algorithm-1 clusters with and without stability tracking (matrix
// clock over FIFO links) and reports peak and final log sizes, entries
// folded, and the effect of a crashed (and then administratively marked)
// process on the stability floor. The paper's claim: the log prefix that
// everyone provably holds can be folded into a base state without
// affecting convergence.
#include "bench_common.hpp"

#include "criteria/all.hpp"
#include "runtime/sim_harness.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

struct GcOutcome {
  bool converged = false;
  std::uint64_t folded = 0;
  std::size_t final_log_max = 0;
};

GcOutcome run(bool gc, std::size_t ops, std::uint64_t seed,
              std::vector<CrashPlan> crashes = {}) {
  RunConfig cfg;
  cfg.n_processes = 4;
  cfg.seed = seed;
  cfg.latency = LatencyModel::uniform(50.0, 400.0);
  cfg.fifo_links = true;
  cfg.enable_gc = gc;
  cfg.gc_period = 1'500.0;
  cfg.workload.ops_per_process = ops;
  cfg.workload.update_ratio = 0.9;
  cfg.crashes = std::move(crashes);
  auto out = run_uc_simulation(S{}, cfg, [&cfg](Rng& rng) {
    return random_set_update<int>(rng, cfg.workload);
  });
  GcOutcome o;
  o.converged = out.converged;
  for (const auto& st : out.replica_stats) {
    o.folded += st.gc_folded;
  }
  // Final log length proxy: local updates+remote minus folded.
  for (const auto& st : out.replica_stats) {
    const std::size_t live = static_cast<std::size_t>(
        st.local_updates + st.remote_updates - st.gc_folded);
    o.final_log_max = std::max(o.final_log_max, live);
  }
  return o;
}

void print_tables() {
  print_banner(std::cout,
               "E6: log size with/without stability GC (4 procs, FIFO)");
  TextTable t({"ops/proc", "GC", "converged", "entries folded",
               "max live log at end"});
  for (std::size_t ops : {25u, 100u, 400u}) {
    for (bool gc : {false, true}) {
      const auto o = run(gc, ops, 11);
      t.add(ops, gc ? "on" : "off", o.converged ? "yes" : "NO", o.folded,
            o.final_log_max);
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: without GC the log holds every update forever; "
               "with stability detection all but the in-flight suffix "
               "folds into the base state, and convergence is "
               "unaffected.\n";

  print_banner(std::cout, "E6b: a crashed process pins the floor");
  TextTable t2({"scenario", "entries folded", "converged"});
  {
    const auto normal = run(true, 100, 13);
    t2.add("no crash", normal.folded, normal.converged ? "yes" : "NO");
    const auto crashed =
        run(true, 100, 13, {CrashPlan{3, 2'000.0}});
    t2.add("p3 crashes at t=2ms (never marked)", crashed.folded,
           crashed.converged ? "yes" : "NO");
  }
  t2.print(std::cout);
  std::cout << "GC stalls at the crash point until the failure is "
               "administratively declared (MatrixClock::mark_crashed); "
               "correctness is never at risk, only space.\n";
}

void BM_GcSweep(benchmark::State& state) {
  // Cost of one collect_garbage() over a log of the given size where
  // everything is stable.
  const auto log_len = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ReplayReplica<S> replica(S{}, 0);
    replica.enable_stability(2);
    for (std::size_t i = 1; i <= log_len; ++i) {
      replica.apply(1, UpdateMessage<S>{Stamp{i, 1},
                                        S::insert(static_cast<int>(i % 64)),
                                        {}});
    }
    // Advance our own row past the peer's last stamp: one local update
    // (self-delivery included) makes the whole prefix stable.
    auto m = replica.local_update(S::insert(0));
    replica.apply(0, m);
    state.ResumeTiming();
    benchmark::DoNotOptimize(replica.collect_garbage());
  }
  state.SetLabel("fold " + std::to_string(log_len) + " entries");
}
BENCHMARK(BM_GcSweep)->Arg(1 << 10)->Arg(1 << 14)->Unit(
    benchmark::kMicrosecond);

}  // namespace

UCW_BENCH_MAIN(print_tables)
