// E15 — Wire transport: real UDP bytes/op and convergence drain vs the
// in-process transport, plus codec microbenchmarks.
//
// The batching benches charge kFrameOverheadBytes per envelope as an
// *estimate*; this experiment puts the same workload on a real socket
// and reports what the wire actually carried. Three arms, same seeded
// 3-node register workload: the in-process ThreadNetwork (estimated
// bytes only — objects move by pointer), UDP on a clean localhost
// loop, and UDP with 3% injected drop + 2% reorder. Headline columns:
// real bytes/op vs the estimator (how honest was the estimate), and
// the drain time — what loss does to time-to-converge when repair runs
// over the same socket it is repairing (gap detection + anti-entropy,
// the rotating rounds covering tail losses exactly as
// examples/cluster_node.cpp does).
//
// The microbenchmarks price the codec itself: envelope encode/decode
// per batch size, and the per-frame CRC32.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adt/register.hpp"
#include "net/thread_network.hpp"
#include "net/wire.hpp"
#include "store/thread_store.hpp"
#include "store/udp_store.hpp"

namespace {

using namespace ucw;
using Reg = RegisterAdt<std::int64_t>;

constexpr std::size_t kNodes = 3;
constexpr std::size_t kKeys = 64;
constexpr std::size_t kOpsPerNode = 1'000;

struct ArmResult {
  std::uint64_t real_dgrams = 0;
  std::uint64_t real_bytes = 0;   ///< from transport stats (0 = n/a)
  std::uint64_t est_bytes = 0;    ///< StoreStats bytes_batched
  std::uint64_t gaps = 0;
  std::uint64_t ae_completed = 0;
  std::uint64_t injected_drops = 0;
  double drain_ms = 0.0;
  bool converged = false;
};

StoreConfig store_config() {
  StoreConfig cfg;
  cfg.batch_window = 8;
  cfg.gc = true;
  cfg.auto_anti_entropy = true;
  return cfg;
}

/// Seeded interleaved write load, identical across arms.
template <typename Store>
void drive_load(std::vector<std::unique_ptr<Store>>& stores,
                std::uint64_t seed) {
  Rng rng(seed);
  for (std::size_t i = 0; i < kOpsPerNode; ++i) {
    for (std::size_t p = 0; p < stores.size(); ++p) {
      const std::string key = "k" + std::to_string(rng.uniform_int(
                                        0, static_cast<int>(kKeys) - 1));
      (void)stores[p]->update(
          key, Reg::write(static_cast<std::int64_t>((p + 1) * 1'000'000 + i)));
    }
    if (i % 8 == 7) {
      for (auto& s : stores) (void)s->flush();
    }
  }
  for (auto& s : stores) (void)s->flush();
}

/// Poll/flush (+ rotating anti-entropy for tail losses) until every
/// store agrees on every key, gap-free, nothing pending. Returns true
/// on convergence within the iteration budget.
template <typename Store>
bool drain(std::vector<std::unique_ptr<Store>>& stores, int max_iters) {
  const std::size_t n = stores.size();
  int stable = 0;
  std::vector<std::int64_t> last;
  for (int iter = 0; iter < max_iters; ++iter) {
    for (auto& s : stores) {
      (void)s->poll();
      (void)s->flush();
    }
    bool gapped = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = 0; q < n; ++q) {
        gapped = gapped || (q != p && stores[p]->stream_gapped(
                                          static_cast<ProcessId>(q)));
      }
    }
    if (iter % 20 == 19) {
      for (std::size_t p = 0; p < n; ++p) {
        std::size_t peer = (p + 1 + static_cast<std::size_t>(iter) / 20) % n;
        if (peer == p) peer = (p + 1) % n;
        (void)stores[p]->anti_entropy_round(static_cast<ProcessId>(peer),
                                            /*reciprocate=*/true);
      }
    }
    std::vector<std::int64_t> now;
    now.reserve(n * kKeys);
    bool agree = true;
    for (std::size_t k = 0; k < kKeys; ++k) {
      const std::string key = "k" + std::to_string(k);
      const std::int64_t v0 = stores[0]->state_of(key);
      now.push_back(v0);
      for (std::size_t p = 1; p < n; ++p) {
        const std::int64_t vp = stores[p]->state_of(key);
        now.push_back(vp);
        agree = agree && vp == v0;
      }
    }
    bool pending = false;
    for (auto& s : stores) pending = pending || s->pending() != 0;
    stable = (agree && !gapped && !pending && now == last) ? stable + 1 : 0;
    last = std::move(now);
    if (stable >= 5) return true;
  }
  return false;
}

template <typename Store>
void collect_store_stats(std::vector<std::unique_ptr<Store>>& stores,
                         ArmResult* r) {
  for (auto& s : stores) {
    const StoreStats ss = s->stats();
    r->est_bytes += ss.bytes_batched;
    r->gaps += ss.stream_gaps_detected;
    r->ae_completed += ss.ae_rounds_completed;
  }
}

ArmResult run_thread_arm(std::uint64_t seed) {
  using Store = ThreadUcStore<Reg>;
  ThreadNetwork<BatchEnvelope<Reg, std::string>> net(kNodes);
  std::vector<std::unique_ptr<Store>> stores;
  for (std::size_t p = 0; p < kNodes; ++p) {
    stores.push_back(std::make_unique<Store>(
        Reg{}, static_cast<ProcessId>(p), net, store_config()));
  }
  drive_load(stores, seed);
  ArmResult r;
  const auto t0 = std::chrono::steady_clock::now();
  r.converged = drain(stores, 4'000);
  r.drain_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  collect_store_stats(stores, &r);
  return r;
}

ArmResult run_udp_arm(std::uint64_t seed, double drop, double reorder) {
  using Store = UdpUcStore<Reg>;
  std::vector<std::unique_ptr<UdpTransport<Reg>>> nets;
  std::vector<UdpEndpoint> blank(kNodes);  // ephemeral ports
  for (std::size_t p = 0; p < kNodes; ++p) {
    UdpTransportOptions topt;
    topt.drop = drop;
    topt.reorder = reorder;
    topt.fault_seed = splitmix64(seed ^ (0xE15 + p));
    nets.push_back(std::make_unique<UdpTransport<Reg>>(
        static_cast<ProcessId>(p), blank, topt));
  }
  std::vector<UdpEndpoint> real(kNodes);
  for (std::size_t p = 0; p < kNodes; ++p) {
    real[p].port = nets[p]->local_port();
  }
  for (std::size_t p = 0; p < kNodes; ++p) {
    nets[p]->set_peers(real);
  }
  std::vector<std::unique_ptr<Store>> stores;
  for (std::size_t p = 0; p < kNodes; ++p) {
    stores.push_back(std::make_unique<Store>(
        Reg{}, static_cast<ProcessId>(p), *nets[p], store_config()));
  }
  drive_load(stores, seed);
  ArmResult r;
  const auto t0 = std::chrono::steady_clock::now();
  r.converged = drain(stores, 4'000);
  r.drain_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  collect_store_stats(stores, &r);
  for (auto& n : nets) {
    const UdpTransportStats ts = n->stats();
    r.real_dgrams += ts.datagrams_sent;
    r.real_bytes += ts.bytes_sent;
    r.injected_drops += ts.injected_drops;
  }
  for (auto& n : nets) n->close_all();
  return r;
}

void print_tables() {
  print_banner(
      std::cout,
      "E15: wire transport — real UDP bytes/op vs the in-process "
      "estimate, and drain time under injected loss (3 nodes, " +
          std::to_string(kOpsPerNode) + " ops/node, " +
          std::to_string(kKeys) + " keys, window 8)");
  TextTable t({"transport", "drop", "dgrams out", "real B out",
               "real B/op", "est B/op", "est/real", "gaps",
               "ae done", "drain ms", "converged"});
  const std::uint64_t seed = 29;
  const double total_ops = kNodes * kOpsPerNode;

  const ArmResult thread_arm = run_thread_arm(seed);
  t.add("thread (in-proc)", "-", "-", "-", "-",
        thread_arm.est_bytes / total_ops, "-", thread_arm.gaps,
        thread_arm.ae_completed, thread_arm.drain_ms,
        thread_arm.converged ? "yes" : "no");

  for (const double drop : {0.0, 0.03}) {
    const ArmResult r = run_udp_arm(seed, drop, drop > 0 ? 0.02 : 0.0);
    t.add("udp (localhost)", drop, r.real_dgrams, r.real_bytes,
          r.real_bytes / total_ops, r.est_bytes / total_ops,
          r.real_bytes == 0
              ? 0.0
              : static_cast<double>(r.est_bytes) /
                    static_cast<double>(r.real_bytes),
          r.gaps, r.ae_completed, r.drain_ms, r.converged ? "yes" : "no");
  }
  t.print(std::cout);
  std::cout << "\n(est = StoreStats bytes_batched, the per-envelope "
               "kFrameOverheadBytes model; real = sendto() bytes incl. "
               "per-fragment frame headers and repair traffic.)\n\n";
}

// ------------------------------------------------------- microbenches

BatchEnvelope<Reg, std::string> make_batch(std::size_t entries) {
  BatchEnvelope<Reg, std::string> e;
  e.kind = EnvelopeKind::kBatch;
  e.epoch = 1;
  e.seq = 7;
  e.ack_clock = 99;
  for (std::size_t i = 0; i < entries; ++i) {
    KeyedUpdate<Reg, std::string> ku;
    ku.key = "key-" + std::to_string(i % 64);
    ku.msg.stamp = Stamp{static_cast<LogicalTime>(1'000 + i),
                         static_cast<ProcessId>(i % 3)};
    ku.msg.update = Reg::write(static_cast<std::int64_t>(i) * 31);
    e.entries.push_back(std::move(ku));
  }
  return e;
}

void BM_EnvelopeEncode(benchmark::State& state) {
  const auto e = make_batch(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> bytes;
  for (auto _ : state) {
    bytes.clear();
    wire::encode_envelope(e, &bytes);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_EnvelopeEncode)->Arg(1)->Arg(8)->Arg(64);

void BM_EnvelopeDecode(benchmark::State& state) {
  const auto e = make_batch(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint8_t> bytes;
  wire::encode_envelope(e, &bytes);
  BatchEnvelope<Reg, std::string> out;
  for (auto _ : state) {
    const bool ok = wire::decode_envelope(bytes.data(), bytes.size(), &out);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_EnvelopeDecode)->Arg(1)->Arg(8)->Arg(64);

void BM_FrameCrc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  Rng rng(5);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::crc32(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameCrc32)->Arg(64)->Arg(1'024)->Arg(60'000);

}  // namespace

UCW_BENCH_MAIN(print_tables)
