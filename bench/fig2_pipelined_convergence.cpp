// E2 — Figure 2 / Proposition 1: pipelined convergence is impossible
// wait-free.
//
// Three artifacts:
//  1. the checker classification of the literal Figure 2 history
//     (PC yes, EC no);
//  2. a live DES replay of the Figure 2 scenario on the FIFO apply-on-
//     delivery baseline: both replicas end in *different* stable states,
//     exactly the ω-reads of the figure — while the same schedule on the
//     Algorithm-1 set converges;
//  3. divergence frequency under random workloads: how often pipelined
//     replicas fail to converge while UC replicas always do.
// The microbenchmarks compare per-delivery cost of the two designs (the
// price Algorithm 1 pays for convergence).
#include "bench_common.hpp"

#include "baselines/pipelined.hpp"
#include "criteria/all.hpp"
#include "history/figures.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

void print_tables() {
  print_banner(std::cout, "E2a: Figure 2 classification");
  {
    const auto h = figure_2();
    std::cout << h.to_string();
    TextTable t({"criterion", "verdict", "paper"});
    const auto row = check_all_criteria(h);
    t.add("PC", to_string(row.pc.verdict), "yes");
    t.add("EC", to_string(row.ec.verdict), "no");
    t.add("UC", to_string(row.uc.verdict), "no");
    t.print(std::cout);
  }

  print_banner(std::cout,
               "E2b: live replay of the Figure 2 schedule (stable reads)");
  {
    TextTable t({"implementation", "p0 reads", "p1 reads", "converged"});
    for (SetImplKind kind :
         {SetImplKind::Pipelined, SetImplKind::UcSet, SetImplKind::OrSet}) {
      SimScheduler scheduler;
      auto cluster = SetCluster::make(kind, scheduler, 2, 1,
                                      LatencyModel::constant(1'000.0),
                                      /*fifo=*/true);
      cluster->node(0).insert(1);
      cluster->node(0).insert(3);
      cluster->node(1).insert(2);
      cluster->node(1).remove(3);
      scheduler.run();
      t.add(to_string(kind), format_value(cluster->node(0).read()),
            format_value(cluster->node(1).read()),
            cluster->converged() ? "yes" : "NO");
    }
    t.print(std::cout);
    std::cout << "Paper: pipelined replicas stabilize on {1,2} vs {1,2,3} "
                 "(Fig. 2's ω-reads); Algorithm 1 converges.\n";
  }

  print_banner(std::cout,
               "E2c: divergence frequency, random workloads (100 seeds)");
  {
    TextTable t({"implementation", "diverged runs", "of"});
    for (SetImplKind kind : {SetImplKind::Pipelined, SetImplKind::UcSet}) {
      int diverged = 0;
      const int runs = 100;
      for (int seed = 0; seed < runs; ++seed) {
        SimScheduler scheduler;
        auto cluster = SetCluster::make(
            kind, scheduler, 3, static_cast<std::uint64_t>(seed) + 1,
            LatencyModel::exponential(900.0), /*fifo=*/true);
        bench::drive_set_cluster(*cluster, scheduler,
                                 static_cast<std::uint64_t>(seed) + 1, 45,
                                 /*value_range=*/5);
        if (!cluster->converged()) ++diverged;
      }
      t.add(to_string(kind), diverged, runs);
    }
    t.print(std::cout);
    std::cout << "Paper (Prop. 1): apply-on-delivery cannot be both "
                 "pipelined consistent and convergent; Algorithm 1 must "
                 "show 0 diverged runs.\n";
  }
}

void BM_PipelinedDelivery(benchmark::State& state) {
  PipelinedReplica<S> replica(S{}, 0);
  Rng rng(1);
  for (auto _ : state) {
    const int v = static_cast<int>(rng.uniform_int(0, 63));
    replica.apply(1, {rng.chance(0.6) ? S::insert(v) : S::remove(v)});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelinedDelivery);

void BM_UcReplicaDelivery(benchmark::State& state) {
  ReplayReplica<S> replica(S{}, 0, {ReplayPolicy::CachedPrefix, 64});
  Rng rng(1);
  LogicalTime clock = 0;
  for (auto _ : state) {
    const int v = static_cast<int>(rng.uniform_int(0, 63));
    replica.apply(
        1, UpdateMessage<S>{Stamp{++clock, 1},
                            rng.chance(0.6) ? S::insert(v) : S::remove(v),
                            {}});
    benchmark::DoNotOptimize(replica.query(S::read()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UcReplicaDelivery);

}  // namespace

UCW_BENCH_MAIN(print_tables)
