// E8 — the Attiya–Welch separation (paper §I): strongly consistent
// operations must wait for the network; update-consistent operations are
// wait-free (local).
//
// On the same simulated network, for a sweep of mean latencies λ:
//   * UC object: update = local apply + async broadcast, query = local
//     replay → 0 simulated wait regardless of λ;
//   * quorum-linearizable register (ABD): write waits one majority round
//     trip, read waits two → completion time proportional to λ.
// A second table runs the real std::thread transport: replicas exchange
// messages through inboxes while callers keep issuing wait-free ops; a
// mutex-protected set (the "one physical object" strawman) is shown for
// scale.
#include "bench_common.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "core/all.hpp"
#include "net/thread_network.hpp"
#include "util/stats.hpp"

namespace {

using namespace ucw;
using S = SetAdt<int>;

void print_des_table() {
  print_banner(std::cout,
               "E8: operation completion time vs network latency "
               "(virtual µs; 3 replicas, constant λ)");
  TextTable t({"mean latency λ", "UC update", "UC query", "quorum write",
               "quorum read"});
  for (double lambda : {100.0, 1'000.0, 10'000.0}) {
    SimScheduler scheduler;

    SimNetwork<UpdateMessage<S>>::Config ucfg;
    ucfg.n_processes = 3;
    ucfg.latency = LatencyModel::constant(lambda);
    SimNetwork<UpdateMessage<S>> unet(scheduler, ucfg);
    std::vector<std::unique_ptr<SimUcObject<S>>> uc;
    for (ProcessId p = 0; p < 3; ++p) {
      uc.push_back(std::make_unique<SimUcObject<S>>(S{}, p, unet));
    }
    const double t0 = scheduler.now();
    uc[0]->update(S::insert(1));
    const double uc_update = scheduler.now() - t0;  // returns immediately
    (void)uc[1]->query(S::read());
    const double uc_query = scheduler.now() - t0;

    SimNetwork<QuorumMessage<int>>::Config qcfg;
    qcfg.n_processes = 3;
    qcfg.latency = LatencyModel::constant(lambda);
    SimNetwork<QuorumMessage<int>> qnet(scheduler, qcfg);
    std::vector<std::unique_ptr<QuorumRegister<int>>> regs;
    for (ProcessId p = 0; p < 3; ++p) {
      regs.push_back(std::make_unique<QuorumRegister<int>>(p, 0, qnet));
    }
    double w_start = scheduler.now(), w_done = -1;
    regs[0]->write(1, [&] { w_done = scheduler.now() - w_start; });
    scheduler.run();
    double r_start = scheduler.now(), r_done = -1;
    regs[1]->read([&](int) { r_done = scheduler.now() - r_start; });
    scheduler.run();

    t.add(lambda, uc_update, uc_query, w_done, r_done);
  }
  t.print(std::cout);
  std::cout << "\nPaper (§I, Attiya–Welch): linearizable ops cost Ω(λ); "
               "Algorithm 1's ops finish without touching the scheduler — "
               "availability survives any latency (or partition).\n";
}

void print_thread_table() {
  print_banner(std::cout,
               "E8b: real-thread transport, 4 replicas × 20k updates "
               "each (wall clock)");
  TextTable t({"object", "total ops", "wall ms", "M ops/s"});

  // Wait-free UC counter over thread inboxes.
  {
    constexpr std::size_t kThreads = 4;
    constexpr int kOps = 20'000;
    using Msg = UpdateMessage<CounterAdt>;
    ThreadNetwork<Msg> net(kThreads);
    std::vector<std::unique_ptr<ReplayReplica<CounterAdt>>> replicas;
    for (ProcessId p = 0; p < kThreads; ++p) {
      replicas.push_back(std::make_unique<ReplayReplica<CounterAdt>>(
          CounterAdt{}, p));
    }
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (ProcessId p = 0; p < kThreads; ++p) {
      threads.emplace_back([&, p] {
        auto& replica = *replicas[p];
        for (int i = 0; i < kOps; ++i) {
          auto m = replica.local_update(CounterAdt::add(1));
          replica.apply(p, m);       // self-delivery
          net.broadcast_others(p, m);
          // Drain whatever peers sent meanwhile (wait-free: try_pop).
          while (auto env = net.inbox(p).try_pop()) {
            replica.apply(env->from, env->payload);
          }
        }
        // Final drain until everyone's updates arrived.
        while (replica.log().size() < kThreads * kOps) {
          if (auto env = net.inbox(p).pop_wait()) {
            replica.apply(env->from, env->payload);
          } else {
            break;
          }
        }
        net.inbox(p).close();
      });
    }
    for (auto& th : threads) th.join();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    bool ok = true;
    for (auto& r : replicas) {
      ok &= r->query(CounterAdt::read()) ==
            static_cast<std::int64_t>(kThreads * kOps);
    }
    t.add(std::string("UC counter (Algorithm 1)") + (ok ? "" : " [BUG]"),
          kThreads * kOps, ms, kThreads * kOps / ms / 1e3);
  }

  // Mutex-protected counter: the strongly consistent single object.
  {
    constexpr std::size_t kThreads = 4;
    constexpr int kOps = 20'000;
    std::mutex mu;
    std::int64_t value = 0;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < kThreads; ++p) {
      threads.emplace_back([&] {
        for (int i = 0; i < kOps; ++i) {
          std::lock_guard lock(mu);
          ++value;
        }
      });
    }
    for (auto& th : threads) th.join();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    t.add(value == kThreads * kOps ? "mutex counter (shared memory)"
                                   : "mutex counter [BUG]",
          kThreads * kOps, ms, kThreads * kOps / ms / 1e3);
  }
  t.print(std::cout);
  std::cout << "\nIn shared memory a mutex is cheap; the separation the "
               "paper targets is message-passing latency, which the table "
               "above (E8) makes explicit. This table shows the replicas "
               "run correctly under genuine concurrency.\n";
}

void print_tables() {
  print_des_table();
  print_thread_table();
}

void BM_UcUpdateLatency(benchmark::State& state) {
  SimScheduler scheduler;
  SimNetwork<UpdateMessage<S>>::Config cfg;
  cfg.n_processes = 3;
  cfg.latency = LatencyModel::constant(1'000.0);
  SimNetwork<UpdateMessage<S>> net(scheduler, cfg);
  std::vector<std::unique_ptr<SimUcObject<S>>> objs;
  for (ProcessId p = 0; p < 3; ++p) {
    objs.push_back(std::make_unique<SimUcObject<S>>(S{}, p, net));
  }
  int v = 0;
  for (auto _ : state) {
    objs[0]->update(S::insert(v++ % 16));
    if (v % 256 == 0) {
      state.PauseTiming();
      scheduler.run();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_UcUpdateLatency);

void BM_QuorumWriteLatency(benchmark::State& state) {
  // Wall time of driving one quorum write to completion (simulated
  // waiting included as scheduler work).
  SimScheduler scheduler;
  SimNetwork<QuorumMessage<int>>::Config cfg;
  cfg.n_processes = 3;
  cfg.latency = LatencyModel::constant(1'000.0);
  SimNetwork<QuorumMessage<int>> net(scheduler, cfg);
  std::vector<std::unique_ptr<QuorumRegister<int>>> regs;
  for (ProcessId p = 0; p < 3; ++p) {
    regs.push_back(std::make_unique<QuorumRegister<int>>(p, 0, net));
  }
  int v = 0;
  for (auto _ : state) {
    bool done = false;
    regs[0]->write(v++, [&done] { done = true; });
    scheduler.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuorumWriteLatency);

}  // namespace

UCW_BENCH_MAIN(print_tables)
