// Shared plumbing for the benchmark/reproduction binaries.
//
// Every bench binary prints its paper-shaped tables first (the rows the
// experiment index in DESIGN.md promises), then runs its google-benchmark
// microbenchmarks. UCW_BENCH_MAIN wires that order up.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "net/scheduler.hpp"
#include "runtime/set_family.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ucw::bench {

/// Runs `ops` random insert/remove operations against every node of a
/// cluster, spacing them `gap_us` apart in virtual time, then drains.
inline void drive_set_cluster(SetCluster& cluster, SimScheduler& scheduler,
                              std::uint64_t seed, std::size_t ops,
                              int value_range = 6, double gap_us = 40.0,
                              double insert_ratio = 0.55) {
  Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(cluster.size()) - 1));
    const int v = static_cast<int>(rng.uniform_int(0, value_range - 1));
    if (rng.chance(insert_ratio)) {
      cluster.node(p).insert(v);
    } else {
      cluster.node(p).remove(v);
    }
    scheduler.run_until(scheduler.now() + gap_us);
  }
  scheduler.run();
}

}  // namespace ucw::bench

/// Print the reproduction tables, then hand over to google-benchmark.
#define UCW_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                           \
    print_tables_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    return 0;                                                 \
  }
