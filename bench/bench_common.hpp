// Shared plumbing for the benchmark/reproduction binaries.
//
// Every bench binary prints its paper-shaped tables first (the rows the
// experiment index in DESIGN.md promises), then runs its google-benchmark
// microbenchmarks. UCW_BENCH_MAIN wires that order up.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "net/scheduler.hpp"
#include "obs/histogram.hpp"
#include "runtime/set_family.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ucw::bench {

/// The latency accumulator the bench tables share with the library:
/// obs::LatencySummary owns the sort-once/percentile machinery, so the
/// benches carry no private copies of it.
using LatencySummary = obs::LatencySummary;

/// One "name | n | p50 | p90 | p99 | max" row — the house shape for
/// latency tables (pair with a TextTable whose header matches).
inline void add_latency_row(TextTable& t, const std::string& name,
                            LatencySummary& s) {
  if (s.empty()) {
    t.add(name, 0, 0.0, 0.0, 0.0, 0.0);
    return;
  }
  t.add(name, s.count(), s.percentile(50), s.percentile(90),
        s.percentile(99), s.max());
}

/// Runs `ops` random insert/remove operations against every node of a
/// cluster, spacing them `gap_us` apart in virtual time, then drains.
inline void drive_set_cluster(SetCluster& cluster, SimScheduler& scheduler,
                              std::uint64_t seed, std::size_t ops,
                              int value_range = 6, double gap_us = 40.0,
                              double insert_ratio = 0.55) {
  Rng rng(seed);
  for (std::size_t i = 0; i < ops; ++i) {
    const auto p = static_cast<ProcessId>(
        rng.uniform_int(0, static_cast<std::int64_t>(cluster.size()) - 1));
    const int v = static_cast<int>(rng.uniform_int(0, value_range - 1));
    if (rng.chance(insert_ratio)) {
      cluster.node(p).insert(v);
    } else {
      cluster.node(p).remove(v);
    }
    scheduler.run_until(scheduler.now() + gap_us);
  }
  scheduler.run();
}

}  // namespace ucw::bench

/// Print the reproduction tables, then hand over to google-benchmark.
#define UCW_BENCH_MAIN(print_tables_fn)                       \
  int main(int argc, char** argv) {                           \
    print_tables_fn();                                        \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::benchmark::Shutdown();                                  \
    return 0;                                                 \
  }
