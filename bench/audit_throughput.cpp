// E13 — offline consistency auditing at scale: the per-key decomposed
// certifier must stay near-linear to millions of ops, and the whole
// pipeline (live multi-producer recording through faults, JSONL
// export, offline certification) must fit a CI budget.
//
// E13a — audit scaling: synthetic LWW-register histories at 10k, 100k
// and 1M ops (zipfian keys, 4 processes, ~10% queries, agreeing final
// reads) pushed through audit_history; the table reports wall time,
// ops/sec, and the us/op ratio between consecutive sizes — near-linear
// means the ratio stays flat while the size 10x's.
//
// E13b — the live acceptance run: a ≥1M-op pooled ThreadUcStore
// cluster (4 producer threads × 4 workers per process) recorded while
// hold-mode ThreadNetwork partitions blip the topology and one
// producer "crashes" (stops at half its quota), then drained, final-
// read, exported, and certified. The row is the acceptance criterion
// in numbers: record + audit wall time and the uc=yes verdict.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "adt/register.hpp"
#include "audit/auditor.hpp"
#include "audit/recorder.hpp"
#include "audit/scenario.hpp"
#include "faults/fault_spec.hpp"
#include "history/jsonl.hpp"
#include "runtime/keyspace.hpp"
#include "store/all.hpp"
#include "util/assert.hpp"

namespace {

using namespace ucw;
using Reg = RegisterAdt<std::int64_t>;

double wall_seconds(std::chrono::steady_clock::time_point a,
                    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// A certifiable synthetic history: stamps issued in one global order
/// (every chain monotone, LWW winner = last writer), finals agreeing
/// on each key's winner.
HistoryFile synthetic_history(std::size_t ops, std::size_t n_keys,
                              std::size_t n_processes, std::uint64_t seed) {
  HistoryFile h;
  h.meta.n_processes = n_processes;
  h.lines.reserve(ops + n_keys * n_processes);
  ZipfianKeys keyspace(n_keys, 0.9);
  Rng rng(seed);
  std::unordered_map<std::string, std::int64_t> winner;
  LogicalTime clock = 0;
  for (std::size_t i = 0; i < ops; ++i) {
    HistoryLine l;
    l.pid = static_cast<ProcessId>(rng.uniform_int(
        0, static_cast<std::int64_t>(n_processes) - 1));
    l.key = keyspace.sample(rng);
    l.clock = ++clock;
    if (rng.chance(0.9)) {
      l.op = 'u';
      l.value = rng.uniform_int(1, 1'000'000);
      winner[l.key] = l.value;
    } else {
      l.op = 'q';
      l.value = winner.count(l.key) ? winner[l.key] : 0;
    }
    h.lines.push_back(std::move(l));
  }
  for (const auto& [key, v] : winner) {
    for (ProcessId p = 0; p < n_processes; ++p) {
      HistoryLine f;
      f.pid = p;
      f.op = 'f';
      f.key = key;
      f.value = v;
      h.lines.push_back(std::move(f));
    }
  }
  h.meta.captured = h.lines.size();
  return h;
}

void print_audit_scaling_table() {
  std::cout << "\nE13a — offline audit scaling "
               "(4 processes, zipfian keys, agreeing finals)\n";
  TextTable t({"ops", "keys", "audit ms", "ops/sec", "us/op",
               "vs prev size", "uc"});
  double prev_us_per_op = 0.0;
  for (const std::size_t ops :
       {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000}}) {
    const std::size_t keys = ops / 100;  // keyspace grows with the load
    const HistoryFile h = synthetic_history(ops, keys, 4, 42);
    const auto t0 = std::chrono::steady_clock::now();
    const audit::AuditReport report = audit::audit_history(h);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = wall_seconds(t0, t1);
    const double us_per_op = secs * 1e6 / static_cast<double>(h.lines.size());
    t.add(h.lines.size(), keys, static_cast<std::uint64_t>(secs * 1e3),
          static_cast<std::uint64_t>(static_cast<double>(h.lines.size()) /
                                     secs),
          us_per_op,
          prev_us_per_op == 0.0
              ? std::string("-")
              : std::to_string(us_per_op / prev_us_per_op) + "x",
          to_string(report.uc));
    prev_us_per_op = us_per_op;
  }
  t.print(std::cout);
  std::cout << "(near-linear: us/op stays ~flat across 10x sizes)\n";
}

void print_live_million_op_table() {
  using TS = ThreadUcStore<Reg>;
  constexpr std::size_t kProcesses = 2;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kOpsPerProducer = 150'000;
  constexpr std::size_t kKeys = 512;
  // One producer of process 1 "crashes": it records only half its
  // quota, so the cluster total stays above 1M with headroom.
  constexpr std::size_t kCrashAt = kOpsPerProducer / 2;

  std::cout << "\nE13b — live 1M-op pooled recording + certification "
            << "(" << kProcesses << " processes x " << kProducers
            << " producers x 4 workers, partition blips, one producer "
               "crash)\n";

  ThreadNetwork<TS::Envelope> net(kProcesses);
  StoreConfig cfg;
  cfg.workers = 4;
  cfg.batch_window = 16;
  cfg.shard_count = 32;
  std::vector<std::unique_ptr<TS>> stores;
  std::vector<std::unique_ptr<audit::OpRecorder<Reg, std::string>>> recs;
  for (ProcessId p = 0; p < kProcesses; ++p) {
    stores.push_back(std::make_unique<TS>(Reg{}, p, net, cfg));
    recs.push_back(std::make_unique<audit::OpRecorder<Reg, std::string>>(
        p, kProducers, std::size_t{1} << 21));
    stores[p]->set_recorder(recs[p].get());
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<bool> stop_blips{false};
  std::thread blipper([&] {
    // Hold-mode partition blips while the producers hammer: traffic
    // buffers across the cut and releases in FIFO order on heal.
    while (!stop_blips.load(std::memory_order_acquire)) {
      net.partition({0, 1});
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      net.heal();
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  });
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> issued{0};
  for (ProcessId p = 0; p < kProcesses; ++p) {
    for (std::size_t c = 0; c < kProducers; ++c) {
      producers.emplace_back([&, p, c] {
        ZipfianKeys keyspace(kKeys, 0.9);
        Rng rng(1000 + p * kProducers + c);
        const bool crashes = (p == 1 && c == 0);
        for (std::size_t i = 0; i < kOpsPerProducer; ++i) {
          if (crashes && i == kCrashAt) return;  // mid-run producer death
          stores[p]->update(keyspace.sample(rng),
                            Reg::write(rng.uniform_int(1, 1'000'000)));
          issued.fetch_add(1, std::memory_order_relaxed);
        }
        stores[p]->flush();
      });
    }
  }
  for (auto& th : producers) th.join();
  stop_blips.store(true, std::memory_order_release);
  blipper.join();
  net.heal();
  for (auto& s : stores) (void)s->flush();
  for (auto& s : stores) {
    s->drain_until(issued.load(std::memory_order_relaxed));
  }
  const auto t_recorded = std::chrono::steady_clock::now();

  HistoryFile h;
  h.meta.n_processes = kProcesses;
  for (ProcessId p = 0; p < kProcesses; ++p) {
    for (std::size_t k = 0; k < kKeys; ++k) {
      const std::string key = "k" + std::to_string(k);
      recs[p]->record_final_read(
          key,
          stores[p]->adt().output(stores[p]->state_of(key), Reg::read()));
    }
    h.meta.captured += recs[p]->captured();
    h.meta.dropped += recs[p]->dropped();
    h.meta.final_reads += recs[p]->final_reads_recorded();
    append_history_lines(*recs[p], &h.lines);
  }
  net.close_all();

  const auto t_exported = std::chrono::steady_clock::now();
  const audit::AuditReport report = audit::audit_history(h);
  const auto t_audited = std::chrono::steady_clock::now();

  TextTable t({"recorded ops", "dropped", "record s", "export s",
               "audit s", "audit ops/sec", "uc", "ec"});
  const double audit_s = wall_seconds(t_exported, t_audited);
  t.add(h.lines.size(), h.meta.dropped,
        wall_seconds(t0, t_recorded), wall_seconds(t_recorded, t_exported),
        audit_s,
        static_cast<std::uint64_t>(static_cast<double>(h.lines.size()) /
                                   audit_s),
        to_string(report.uc), to_string(report.ec));
  t.print(std::cout);
  std::cout << report.summary() << "\n";
}

void print_mutation_detection_table() {
  // E13c — what detection costs, mutant by mutant: each corpus entry's
  // first gated seed run through record + certify, next to the clean
  // control on the same schedule. The verdict column is the campaign
  // gate in miniature (every mutant non-certified, the control never
  // refuted — an honest "unknown" is legal on both sides); the ms
  // columns price the record and audit halves.
  std::cout << "\nE13c — mutation-corpus detection cost "
               "(first gated seed per mutant, 3 processes x 120 ops)\n";
  TextTable t({"mutant", "seed", "ops", "record ms", "audit ms", "uc",
               "clean uc"});
  for (const FaultInfo& info : fault_corpus()) {
    if (info.gated_seeds.empty()) continue;
    const std::uint64_t seed = info.gated_seeds.front();
    audit::ScenarioShape shape;
    shape.fault = info.name;
    shape.force_crash_restart = info.wants_restart;
    shape.three_way = info.wants_three_way;
    audit::ScenarioSpec spec = audit::random_fault_scenario(seed, shape);

    const auto t0 = std::chrono::steady_clock::now();
    const audit::ScenarioResult r = audit::run_scenario(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const audit::AuditReport re = audit::audit_history(r.history);
    const auto t2 = std::chrono::steady_clock::now();

    spec.fault = "none";
    const audit::ScenarioResult clean = audit::run_scenario(spec);

    t.add(info.name, seed, r.history.lines.size(),
          static_cast<std::uint64_t>(wall_seconds(t0, t1) * 1e3),
          static_cast<std::uint64_t>(wall_seconds(t1, t2) * 1e3),
          to_string(re.uc), to_string(clean.audit.uc));
    UCW_CHECK_MSG(!r.audit.certified(),
                  "E13c: a corpus mutant certified on its gated seed");
    UCW_CHECK_MSG(!clean.audit.refuted(),
                  "E13c: clean control refuted — auditor false positive");
  }
  t.print(std::cout);
  std::cout << "(gate: no mutant row certifies, no clean column "
               "refutes)\n";
}

void print_tables() {
  print_audit_scaling_table();
  print_live_million_op_table();
  print_mutation_detection_table();
}

// Microbenchmark twin of E13a for the google-benchmark harness.
void BM_AuditHistory(benchmark::State& state) {
  const auto ops = static_cast<std::size_t>(state.range(0));
  const HistoryFile h = synthetic_history(ops, ops / 100 + 1, 4, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::audit_history(h));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.lines.size()));
}
BENCHMARK(BM_AuditHistory)->Arg(10'000)->Arg(100'000);

}  // namespace

UCW_BENCH_MAIN(print_tables)
