// Online statistics accumulator with exact percentiles.
//
// Thin alias over the observability layer's exact-sample summary
// (`obs::LatencySummary`) — kept so util-level callers don't need to
// know the obs layer exists, and so there is exactly one percentile
// implementation in the repo. Benchmarks report operation-latency
// distributions (mean / p50 / p99 / max); all samples are kept so
// percentiles are exact, which is fine at the sample counts our
// harnesses produce (≤ a few million).
#pragma once

#include "obs/histogram.hpp"

namespace ucw {

using StatsAccumulator = obs::LatencySummary;

}  // namespace ucw
