// Online statistics accumulator with exact percentiles.
//
// Benchmarks report operation-latency distributions (mean / p50 / p99 /
// max); the accumulator keeps all samples so percentiles are exact, which
// is fine at the sample counts our harnesses produce (≤ a few million).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ucw {

class StatsAccumulator {
 public:
  void add(double sample);
  void merge(const StatsAccumulator& other);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Exact percentile by nearest-rank; q in [0, 100].
  [[nodiscard]] double percentile(double q) const;

  /// "n=… mean=… p50=… p99=… max=…" one-liner for logs and tables.
  [[nodiscard]] std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
};

}  // namespace ucw
