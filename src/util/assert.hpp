// Lightweight contract-checking macros.
//
// UCW_CHECK is always on (it guards against API misuse and invalid input);
// UCW_DCHECK compiles away in NDEBUG builds and guards internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ucw {

/// Thrown when a UCW_CHECK contract is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "UCW_CHECK failed: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace ucw

#define UCW_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) ::ucw::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define UCW_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::ucw::detail::check_failed(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define UCW_DCHECK(cond) \
  do {                   \
  } while (false)
#else
#define UCW_DCHECK(cond) UCW_CHECK(cond)
#endif
