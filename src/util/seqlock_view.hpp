// Seqlock-versioned published value: the wait-free read side of a
// single-writer datum.
//
// A pooled store's shard engine is driven by exactly one worker thread,
// but `get()` wants to read a key's state from *any* client thread
// without riding the worker's ring (a ring round trip parks the reader
// behind the worker's current tick — wait-free in the paper's sense,
// since no *remote* process is waited on, but a real latency cliff).
// The view decouples them: the owner publishes a fresh snapshot of the
// state after each apply; readers take the latest snapshot with a
// bounded number of attempts and report failure past the budget, at
// which point the caller falls back to the ring round trip. The fast
// path is therefore bounded by construction — a reader never blocks on
// the writer, it gives up.
//
// Torn reads are impossible by design, not by luck: the payload is an
// immutable heap snapshot (shared_ptr<const T>), and a publish *swaps*
// the pointer — it never mutates a state a reader might hold. The swap
// itself is guarded by a micro-spinlock whose critical section is a
// bare shared_ptr copy (a refcount bump — tens of nanoseconds, no
// allocation, no state copy), so a "retry" here is the seqlock story
// with the collision window shrunk to that copy. Why a hand-rolled
// flag and not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic takes
// the same internal spin but with plain pointer writes TSan cannot see
// through, and the store's TSan CI job is load-bearing — every
// cross-thread access here goes through primitives the sanitizer
// understands.
//
// The seqlock version number on top is the observability half:
// publish #n leaves it at 2n (odd exactly while a publish is
// installing), it is monotone, and a reader that saw version v holds a
// state at least as new as publish v/2 — what the no-torn-read tests
// and the read-path stats lean on.
//
// Writer side is single-threaded by the engine-ownership discipline;
// readers are unrestricted.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

namespace ucw {

template <typename T>
class SeqlockView {
 public:
  /// Attempts a reader spends before giving up (each one a version
  /// check plus a try-lock whose holder is mid-refcount-bump). In
  /// practice the first succeeds; the budget makes the worst case
  /// bounded rather than probable.
  static constexpr std::size_t kReadRetries = 16;

  SeqlockView() = default;
  SeqlockView(const SeqlockView&) = delete;
  SeqlockView& operator=(const SeqlockView&) = delete;

  /// Single-writer publish (the engine's owner thread only): snapshot
  /// the value on the heap, bump to odd ("publish in progress"), swap
  /// the pointer, bump back to even. Never blocks on readers longer
  /// than one in-flight shared_ptr copy.
  void publish(T value) {
    auto next = std::make_shared<const T>(std::move(value));
    version_.fetch_add(1, std::memory_order_release);
    lock();
    snapshot_.swap(next);
    unlock();
    version_.fetch_add(1, std::memory_order_release);
    // `next` (the previous snapshot) releases outside the lock; if a
    // reader still holds it, the refcount keeps it alive — memory
    // safety never depends on reader timing.
  }

  /// Bounded-retry read from any thread: a copy of the latest
  /// snapshot, or nullopt when nothing was ever published or every
  /// attempt collided with a publish/another reader's copy window (the
  /// caller falls back to its slow path — for the store, a ring round
  /// trip). The state copy itself happens outside the lock: only the
  /// refcount bump is inside, so readers barely serialize.
  [[nodiscard]] std::optional<T> try_read() const {
    if (const std::shared_ptr<const T> p = try_read_shared()) return *p;
    return std::nullopt;
  }

  /// Same protocol, but hands back the immutable snapshot itself
  /// instead of copying it — for payloads read in place (the engine's
  /// view *registry* is one: a map loaded per get(), copied never).
  /// nullptr when unpublished or past the retry budget.
  [[nodiscard]] std::shared_ptr<const T> try_read_shared() const {
    for (std::size_t attempt = 0; attempt <= kReadRetries; ++attempt) {
      if (version_.load(std::memory_order_acquire) & 1) continue;
      if (!try_lock()) continue;
      std::shared_ptr<const T> p = snapshot_;
      unlock();
      return p;  // may be nullptr: never published
    }
    return nullptr;  // retry budget exhausted
  }

  /// Publish counter: even when stable, odd mid-publish; publish #n
  /// leaves it at 2n. Monotone — readers/tests use it as a freshness
  /// and progress signal. Any thread.
  [[nodiscard]] std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void lock() const {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      // Holder is mid-copy; a handful of cycles.
    }
  }
  [[nodiscard]] bool try_lock() const {
    return !flag_.test_and_set(std::memory_order_acquire);
  }
  void unlock() const { flag_.clear(std::memory_order_release); }

  std::atomic<std::uint64_t> version_{0};
  mutable std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  std::shared_ptr<const T> snapshot_;  ///< guarded by flag_
};

}  // namespace ucw
