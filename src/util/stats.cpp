#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace ucw {

void StatsAccumulator::add(double sample) {
  samples_.push_back(sample);
  sum_ += sample;
  sum_sq_ += sample * sample;
  sorted_valid_ = false;
}

void StatsAccumulator::merge(const StatsAccumulator& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  sorted_valid_ = false;
}

double StatsAccumulator::mean() const {
  UCW_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double StatsAccumulator::stddev() const {
  UCW_CHECK(!samples_.empty());
  const double n = static_cast<double>(samples_.size());
  const double m = sum_ / n;
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

void StatsAccumulator::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double StatsAccumulator::min() const {
  UCW_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double StatsAccumulator::max() const {
  UCW_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double StatsAccumulator::percentile(double q) const {
  UCW_CHECK(!samples_.empty());
  UCW_CHECK(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_.front();
  const double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string StatsAccumulator::summary() const {
  std::ostringstream os;
  if (samples_.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << count() << " mean=" << mean() << " p50=" << percentile(50)
     << " p99=" << percentile(99) << " max=" << max();
  return os.str();
}

}  // namespace ucw
