#include "util/flags.hpp"

#include <cstdlib>
#include <string_view>

namespace ucw {

Flags Flags::parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--benchmark", 0) == 0) continue;  // google-benchmark's
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

bool Flags::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace ucw
