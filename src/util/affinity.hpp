// Opt-in thread→core affinity pinning.
//
// Pinning matters for single-node saturation: the pooled store's hot
// paths are ring handoffs between producer and worker threads, and the
// scheduler migrating either side mid-run costs cache warmth and makes
// bench numbers noisy. `StoreConfig::pin_workers` pins pool workers via
// this helper; producer threads (owned by the application, not the
// store) can call it themselves — see bench/single_node_saturation.cpp.
//
// Only Linux exposes a portable-enough affinity call
// (`pthread_setaffinity_np`); elsewhere this is a no-op returning
// false, and pinning stays a pure hint — correctness never depends on
// where a thread runs.
#pragma once

#include <cstddef>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace ucw {

/// Pins the calling thread to core `core % hardware_concurrency()`.
/// Returns true iff the affinity mask was actually applied.
inline bool pin_current_thread_to_core(std::size_t core) {
#if defined(__linux__)
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % cores, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace ucw
