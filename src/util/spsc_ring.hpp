// Single-producer / single-consumer lock-free ring buffer.
//
// The handoff between a pooled store's API thread (the single producer:
// it routes updates, queries, and demultiplexed remote entries) and one
// worker thread (the single consumer: the owner of a disjoint set of
// shard engines). A Lamport ring: the producer owns `head_`, the
// consumer owns `tail_`, each reads the other's index with acquire and
// publishes its own with release, so the slot contents are synchronized
// without locks or CAS. Capacity is fixed (power of two); a full ring
// makes try_push return false and the producer decides how to back off
// — bounded buffering is deliberate back-pressure on the API thread,
// never on the network path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace ucw {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2 = 1024)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1) {
    UCW_CHECK_MSG(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0,
                  "SpscRing capacity must be a power of two >= 2");
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (nothing is consumed
  /// from `v` in that case); the producer spins/yields and retries.
  [[nodiscard]] bool try_push(T&& v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail == buf_.size()) return false;
    buf_[head & mask_] = std::move(v);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Batched producer push: writes up to `n` values and publishes the
  /// whole block with ONE release store on `head_` (vs one per op).
  /// Returns how many were consumed from `vals` — partial pushes are
  /// fine in SPSC, the block stays contiguous and in order.
  [[nodiscard]] std::size_t try_push_n(T* vals, std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t room = buf_.size() - static_cast<std::size_t>(head - tail);
    const std::size_t take = n < room ? n : room;
    for (std::size_t i = 0; i < take; ++i) {
      buf_[(head + i) & mask_] = std::move(vals[i]);
    }
    if (take > 0) head_.store(head + take, std::memory_order_release);
    return take;
  }

  /// Consumer side. Empty optional when nothing is queued.
  [[nodiscard]] std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return std::nullopt;
    std::optional<T> v(std::move(buf_[tail & mask_]));
    tail_.store(tail + 1, std::memory_order_release);
    return v;
  }

  /// Block drain: appends up to `max` queued values to `out`, returns
  /// how many were taken; one release store on `tail_` for the block.
  [[nodiscard]] std::size_t try_pop_n(std::vector<T>& out, std::size_t max) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t ready = static_cast<std::size_t>(head - tail);
    const std::size_t take = max < ready ? max : ready;
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(buf_[(tail + i) & mask_]));
    }
    if (take > 0) tail_.store(tail + take, std::memory_order_release);
    return take;
  }

  /// Racy-but-monotone emptiness hint (either side may call).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  // Separate cache lines: the producer hammers head_, the consumer
  // tail_; sharing a line would ping-pong it between cores per op.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace ucw
