// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports `--name=value`, `--name value` and boolean `--name`; anything
// else is collected as a positional argument. Unknown flags are kept so
// google-benchmark's own flags pass through untouched.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ucw {

class Flags {
 public:
  /// Parses argv; does not mutate it. Benchmark-style flags (starting
  /// with "--benchmark") are ignored here and left for the caller.
  static Flags parse(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ucw
