// Multi-producer / single-consumer lock-free ring buffer.
//
// The handoff between N client threads of a pooled store (producers:
// any thread may stamp an update and route it, and the router fans
// remote entries in from whichever thread holds the router lock) and
// one worker thread (the single consumer: the owner of a disjoint set
// of shard engines). Keeps spsc_ring.hpp's shape — bounded capacity,
// try_push back-pressure on the producer side, never on the network
// path — but admits concurrent producers via per-slot sequence numbers
// (Vyukov's bounded-queue scheme):
//
//   * every slot carries an atomic sequence number; a producer claims
//     slot `pos` by CAS on `head_` only after reading seq == pos
//     ("empty, yours to fill"), writes the value, then publishes
//     seq = pos + 1 ("filled"); the consumer reads under seq == pos + 1
//     and releases with seq = pos + capacity ("empty again, next lap");
//   * FIFO **per producer** is inherent: a producer's successive pushes
//     claim strictly increasing positions (each CAS happens in its
//     program order) and the consumer pops in position order, so one
//     sender's ops are never reordered — this is what keeps the stream
//     guard's FIFO-per-sender reasoning (and read-your-writes through
//     the ring) intact with many client threads. Cross-producer order
//     is whatever the CAS race decides, exactly like the network.
//   * `pushed()` exposes the claim counter — the total number of
//     successful pushes ever — so a quiesce barrier can snapshot it and
//     wait for the consumer's processed count to catch up without any
//     producer-side bookkeeping.
//
// A full ring makes try_push return false (nothing is consumed from the
// argument) and the producer spins/yields; a claimed-but-not-yet-
// published slot briefly head-of-line blocks the consumer, which simply
// sees "empty" until the writer's release store lands.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/assert.hpp"

namespace ucw {

template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity_pow2 = 1024)
      : buf_(capacity_pow2), mask_(capacity_pow2 - 1) {
    UCW_CHECK_MSG(capacity_pow2 >= 2 && (capacity_pow2 & mask_) == 0,
                  "MpscRing capacity must be a power of two >= 2");
    for (std::size_t i = 0; i < buf_.size(); ++i) {
      buf_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side; safe from any number of threads concurrently.
  /// False when the ring is full (nothing is consumed from `v` in that
  /// case); the producer spins/yields and retries. On success the
  /// claimed position is written through `pos_out` (when non-null):
  /// because the consumer pops strictly in position order and bumps its
  /// processed count once per op, "processed > position" is a precise
  /// this-op-was-consumed test — the ticket behind read-your-writes.
  [[nodiscard]] bool try_push(T&& v, std::uint64_t* pos_out = nullptr) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = buf_[pos & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos);
      if (dif == 0) {
        // Slot is empty for this lap: race other producers for it.
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          s.value = std::move(v);
          s.seq.store(pos + 1, std::memory_order_release);
          if (pos_out != nullptr) *pos_out = pos;
          return true;
        }
        // CAS reloaded `pos`; retry against the new position.
      } else if (dif < 0) {
        // The consumer has not released this slot for the current lap:
        // the ring is full (back-pressure, the caller backs off).
        return false;
      } else {
        // Another producer claimed `pos` already; chase the head.
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Batched producer push: claims `n` consecutive slots with ONE CAS
  /// on `head_` and publishes them in position order. All-or-nothing —
  /// false leaves `vals` untouched. Why checking only the LAST slot of
  /// the range suffices: the single consumer releases slots strictly in
  /// position order, so slot `pos + n - 1` being free for this lap
  /// implies every earlier slot of the range is too; and the CAS
  /// excludes other producers from the whole range at once. Per-
  /// producer FIFO is preserved exactly as for single pushes: the
  /// block occupies contiguous positions in the claimer's program
  /// order. `pos_out` (when non-null) receives the FIRST claimed
  /// position; the block spans [pos, pos + n).
  [[nodiscard]] bool try_push_n(T* vals, std::size_t n,
                                std::uint64_t* pos_out = nullptr) {
    if (n == 0) return true;
    if (n == 1) return try_push(std::move(vals[0]), pos_out);
    if (n > buf_.size()) return false;
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& last = buf_[(pos + n - 1) & mask_];
      const std::uint64_t seq = last.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq) -
                       static_cast<std::int64_t>(pos + n - 1);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + n,
                                        std::memory_order_relaxed)) {
          for (std::size_t i = 0; i < n; ++i) {
            Slot& s = buf_[(pos + i) & mask_];
            s.value = std::move(vals[i]);
            s.seq.store(pos + i + 1, std::memory_order_release);
          }
          if (pos_out != nullptr) *pos_out = pos;
          return true;
        }
        // CAS reloaded `pos`; retry against the new position.
      } else if (dif < 0) {
        // Not enough contiguous room this lap: back-pressure.
        return false;
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side (single thread only). Empty optional when nothing is
  /// ready — including the instant a producer has claimed the next slot
  /// but not yet published it.
  [[nodiscard]] std::optional<T> try_pop() {
    Slot& s = buf_[tail_ & mask_];
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(tail_ + 1) < 0) {
      return std::nullopt;
    }
    std::optional<T> v(std::move(s.value));
    s.value = T{};  // drop moved-from payload now, not one lap later
    s.seq.store(tail_ + buf_.size(), std::memory_order_release);
    ++tail_;
    popped_.store(tail_, std::memory_order_release);
    return v;
  }

  /// Block drain (single consumer only): appends up to `max` ready ops
  /// to `out` and returns how many were taken. Stops early at the first
  /// not-yet-published slot, exactly like repeated try_pop, but pays
  /// one `popped_` release store for the whole block.
  [[nodiscard]] std::size_t try_pop_n(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      Slot& s = buf_[tail_ & mask_];
      const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
      if (static_cast<std::int64_t>(seq) -
              static_cast<std::int64_t>(tail_ + 1) < 0) {
        break;
      }
      out.push_back(std::move(s.value));
      s.value = T{};
      s.seq.store(tail_ + buf_.size(), std::memory_order_release);
      ++tail_;
      ++n;
    }
    if (n > 0) popped_.store(tail_, std::memory_order_release);
    return n;
  }

  /// Total successful pushes ever (the claim counter). A quiesce
  /// barrier snapshots this, then waits for the consumer's processed
  /// count to reach it — no per-producer bookkeeping required.
  [[nodiscard]] std::uint64_t pushed() const {
    return head_.load(std::memory_order_acquire);
  }

  /// Racy-but-monotone emptiness hint (either side may call).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           popped_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> buf_;
  std::size_t mask_;
  // Separate cache lines: producers hammer head_, the consumer tail_.
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< producers' claims
  alignas(64) std::uint64_t tail_ = 0;              ///< consumer-owned
  alignas(64) std::atomic<std::uint64_t> popped_{0};  ///< tail_ mirror
};

}  // namespace ucw
