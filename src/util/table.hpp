// Plain-text table rendering for benchmark reports.
//
// Every bench binary prints the paper-shaped table (the rows/series the
// paper reports) before or alongside its google-benchmark timings; this
// helper keeps those tables aligned and uniform.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace ucw {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> cells);

  /// Convenience: stringifies arbitrary streamable cells.
  template <typename... Ts>
  void add(const Ts&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(Ts));
    (row.push_back(stringify(cells)), ...);
    add_row(std::move(row));
  }

  /// Renders with a rule under the header, columns padded to content.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string stringify(const T& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

template <typename T>
std::string TextTable::stringify(const T& v) {
  if constexpr (std::is_convertible_v<T, std::string>) {
    return std::string(v);
  } else {
    std::ostringstream os;
    os << v;
    return os.str();
  }
}

/// Prints a section banner ("== title ==") used between bench tables.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ucw
