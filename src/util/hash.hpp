// Hash combinators for composite value types.
//
// The consistency checkers memoize on composite keys (downset bitmask,
// ADT state, chain position); this header provides deterministic hashing
// for the std containers those states are built from. All hashes are
// stable within a process run, which is all memoization needs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <variant>
#include <vector>

namespace ucw {

/// Mixes `v` into the running seed (boost::hash_combine recipe, 64-bit).
inline void hash_combine(std::size_t& seed, std::size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

template <typename T>
std::size_t hash_value(const T& t);

namespace detail {

template <typename T, typename = void>
struct hasher {
  std::size_t operator()(const T& t) const { return std::hash<T>{}(t); }
};

template <typename A, typename B>
struct hasher<std::pair<A, B>> {
  std::size_t operator()(const std::pair<A, B>& p) const {
    std::size_t seed = hash_value(p.first);
    hash_combine(seed, hash_value(p.second));
    return seed;
  }
};

template <typename... Ts>
struct hasher<std::tuple<Ts...>> {
  std::size_t operator()(const std::tuple<Ts...>& t) const {
    std::size_t seed = 0x51ed2701;
    std::apply(
        [&seed](const auto&... elem) {
          (hash_combine(seed, hash_value(elem)), ...);
        },
        t);
    return seed;
  }
};

template <typename T>
struct hasher<std::vector<T>> {
  std::size_t operator()(const std::vector<T>& v) const {
    std::size_t seed = 0xa5a5a5a5;
    for (const auto& e : v) hash_combine(seed, hash_value(e));
    hash_combine(seed, v.size());
    return seed;
  }
};

template <typename T>
struct hasher<std::set<T>> {
  std::size_t operator()(const std::set<T>& s) const {
    std::size_t seed = 0x5e75e7;
    for (const auto& e : s) hash_combine(seed, hash_value(e));
    hash_combine(seed, s.size());
    return seed;
  }
};

template <typename K, typename V>
struct hasher<std::map<K, V>> {
  std::size_t operator()(const std::map<K, V>& m) const {
    std::size_t seed = 0x3a9d01;
    for (const auto& [k, v] : m) {
      hash_combine(seed, hash_value(k));
      hash_combine(seed, hash_value(v));
    }
    hash_combine(seed, m.size());
    return seed;
  }
};

template <typename T>
struct hasher<std::optional<T>> {
  std::size_t operator()(const std::optional<T>& o) const {
    return o ? hash_value(*o) + 1 : 0x0917;
  }
};

template <typename... Ts>
struct hasher<std::variant<Ts...>> {
  std::size_t operator()(const std::variant<Ts...>& v) const {
    std::size_t seed = v.index();
    std::visit([&seed](const auto& x) { hash_combine(seed, hash_value(x)); },
               v);
    return seed;
  }
};

struct hash_monostate_tag {};

}  // namespace detail

/// Entry point: hashes any supported composite or std::hash-able value.
template <typename T>
std::size_t hash_value(const T& t) {
  return detail::hasher<T>{}(t);
}

/// Functor usable as the Hash parameter of unordered containers.
struct ValueHash {
  template <typename T>
  std::size_t operator()(const T& t) const {
    return hash_value(t);
  }
};

}  // namespace ucw
