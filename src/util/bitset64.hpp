// Fixed-width bitset over a single 64-bit word.
//
// The linearization explorer and the visibility solvers index updates by
// position and manipulate *downsets* of the update poset as bitmasks.
// Histories with more than 64 updates are rejected by those solvers (the
// paper's figures have at most four updates; the solvers are exact small-
// model checkers, not scalable verifiers), so one word is enough and keeps
// the DP tables dense and hashable.
#pragma once

#include <bit>
#include <cstdint>

#include "util/assert.hpp"

namespace ucw {

/// Set of indices in [0, 64), value-semantic, ordered and hashable.
class Bitset64 {
 public:
  constexpr Bitset64() = default;
  constexpr explicit Bitset64(std::uint64_t bits) : bits_(bits) {}

  /// Set containing the single index i.
  [[nodiscard]] static constexpr Bitset64 single(unsigned i) {
    return Bitset64(1ULL << i);
  }

  /// Set containing all indices in [0, n).
  [[nodiscard]] static constexpr Bitset64 all(unsigned n) {
    return Bitset64(n >= 64 ? ~0ULL : (1ULL << n) - 1);
  }

  [[nodiscard]] constexpr bool test(unsigned i) const {
    return (bits_ >> i) & 1ULL;
  }
  constexpr void set(unsigned i) { bits_ |= (1ULL << i); }
  constexpr void reset(unsigned i) { bits_ &= ~(1ULL << i); }

  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr int count() const { return std::popcount(bits_); }
  [[nodiscard]] constexpr std::uint64_t raw() const { return bits_; }

  [[nodiscard]] constexpr bool contains(Bitset64 other) const {
    return (other.bits_ & ~bits_) == 0;
  }
  [[nodiscard]] constexpr bool intersects(Bitset64 other) const {
    return (bits_ & other.bits_) != 0;
  }

  [[nodiscard]] constexpr Bitset64 operator|(Bitset64 o) const {
    return Bitset64(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr Bitset64 operator&(Bitset64 o) const {
    return Bitset64(bits_ & o.bits_);
  }
  [[nodiscard]] constexpr Bitset64 operator~() const {
    return Bitset64(~bits_);
  }
  [[nodiscard]] constexpr Bitset64 minus(Bitset64 o) const {
    return Bitset64(bits_ & ~o.bits_);
  }
  constexpr Bitset64& operator|=(Bitset64 o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr Bitset64& operator&=(Bitset64 o) {
    bits_ &= o.bits_;
    return *this;
  }

  constexpr auto operator<=>(const Bitset64&) const = default;

  /// Index of the lowest set bit; undefined when empty.
  [[nodiscard]] constexpr unsigned lowest() const {
    UCW_DCHECK(bits_ != 0);
    return static_cast<unsigned>(std::countr_zero(bits_));
  }

  /// Iterates set indices in increasing order.
  template <typename Fn>
  constexpr void for_each(Fn&& fn) const {
    std::uint64_t b = bits_;
    while (b != 0) {
      unsigned i = static_cast<unsigned>(std::countr_zero(b));
      fn(i);
      b &= b - 1;
    }
  }

 private:
  std::uint64_t bits_ = 0;
};

inline std::size_t hash_value(const Bitset64& b) {
  return std::hash<std::uint64_t>{}(b.raw() * 0x9e3779b97f4a7c15ULL);
}

}  // namespace ucw

template <>
struct std::hash<ucw::Bitset64> {
  std::size_t operator()(const ucw::Bitset64& b) const {
    return ucw::hash_value(b);
  }
};
