// Deterministic random-number streams.
//
// Every randomized component in libucw (latency models, workloads, crash
// schedules, history mutators) draws from an Rng constructed from an
// explicit seed, so any simulation, test or benchmark can be replayed
// bit-for-bit from its seed. Substreams derived with `fork` are
// statistically independent, which lets a cluster hand each process its
// own stream without correlating their choices.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace ucw {

/// splitmix64 step; used both as a seed scrambler and for `fork`.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic RNG wrapper around std::mt19937_64 with forkable streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xC0FFEEULL)
      : seed_(seed), engine_(splitmix64(seed)) {}

  /// The seed this stream was constructed from (for reporting/replay).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Derives an independent substream; `salt` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    return Rng(splitmix64(seed_ ^ splitmix64(salt + 0x1234567ULL)));
  }

  /// Derives a substream keyed by a name (e.g. "latency", "workload").
  [[nodiscard]] Rng fork(std::string_view name) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
    for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    return fork(h);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Lognormal variate parameterized by the underlying normal (mu, sigma).
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto variate (heavy tail) with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) {
    double u = uniform_real(0.0, 1.0);
    // Inverse CDF; clamp u away from 1 to avoid infinity.
    if (u > 0.999999) u = 0.999999;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
    return d(engine_);
  }

  /// UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    std::shuffle(c.begin(), c.end(), engine_);
  }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace ucw
