// Minimal JSON value + recursive-descent parser and writer.
//
// The repo writes JSON in several places (Chrome traces, metrics
// snapshots) but until the audit pipeline nothing needed to *read* it
// back: scenario files (audit/scenario.hpp) and history meta lines
// (history/jsonl.hpp) do. This is deliberately a small, strict-enough
// subset — objects, arrays, strings (with \" \\ \n \t \r \u escapes),
// doubles, bools, null — with no streaming and no comments, sized for
// kilobyte-scale config documents, not bulk data (the per-op JSONL
// lines use a hand-rolled flat scanner for speed; see jsonl.hpp).
#pragma once

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace ucw {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : v_(nullptr) {}
  JsonValue(std::nullptr_t) : v_(nullptr) {}
  JsonValue(bool b) : v_(b) {}
  JsonValue(double d) : v_(d) {}
  JsonValue(std::int64_t i) : v_(static_cast<double>(i)) {}
  JsonValue(std::string s) : v_(std::move(s)) {}
  JsonValue(const char* s) : v_(std::string(s)) {}
  JsonValue(Array a) : v_(std::move(a)) {}
  JsonValue(Object o) : v_(std::move(o)) {}

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(v_);
  }
  [[nodiscard]] bool is_bool() const {
    return std::holds_alternative<bool>(v_);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v_);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v_);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<Array>(v_);
  }
  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<Object>(v_);
  }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? std::get<bool>(v_) : fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    return is_number() ? std::get<double>(v_) : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(std::get<double>(v_))
                       : fallback;
  }
  [[nodiscard]] const std::string& as_string() const {
    static const std::string kEmpty;
    return is_string() ? std::get<std::string>(v_) : kEmpty;
  }
  [[nodiscard]] const Array& as_array() const {
    static const Array kEmpty;
    return is_array() ? std::get<Array>(v_) : kEmpty;
  }
  [[nodiscard]] const Object& as_object() const {
    static const Object kEmpty;
    return is_object() ? std::get<Object>(v_) : kEmpty;
  }

  /// Object member lookup; a null value when absent or not an object.
  [[nodiscard]] const JsonValue& operator[](const std::string& key) const {
    static const JsonValue kNull;
    if (!is_object()) return kNull;
    const auto& o = std::get<Object>(v_);
    const auto it = o.find(key);
    return it == o.end() ? kNull : it->second;
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && std::get<Object>(v_).count(key) > 0;
  }

  /// Serializes (compact, no trailing newline).
  [[nodiscard]] std::string dump() const {
    std::ostringstream os;
    write(os);
    return os.str();
  }

  void write(std::ostream& os) const {
    if (is_null()) {
      os << "null";
    } else if (is_bool()) {
      os << (std::get<bool>(v_) ? "true" : "false");
    } else if (is_number()) {
      const double d = std::get<double>(v_);
      // Integers round-trip without a fraction; config files stay tidy.
      const auto i = static_cast<std::int64_t>(d);
      if (static_cast<double>(i) == d) {
        os << i;
      } else {
        os << d;
      }
    } else if (is_string()) {
      write_escaped(os, std::get<std::string>(v_));
    } else if (is_array()) {
      os << '[';
      const auto& a = std::get<Array>(v_);
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) os << ',';
        a[i].write(os);
      }
      os << ']';
    } else {
      os << '{';
      const auto& o = std::get<Object>(v_);
      bool first = true;
      for (const auto& [k, val] : o) {
        if (!first) os << ',';
        first = false;
        write_escaped(os, k);
        os << ':';
        val.write(os);
      }
      os << '}';
    }
  }

  static void write_escaped(std::ostream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        case '\r': os << "\\r"; break;
        default: os << c;
      }
    }
    os << '"';
  }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses one JSON document; returns nullopt-style failure via `ok`.
/// Trailing content after the document is an error (use for whole files
/// or single lines, not streams).
class JsonParser {
 public:
  static bool parse(const std::string& text, JsonValue* out,
                    std::string* err = nullptr) {
    JsonParser p(text);
    JsonValue v;
    if (!p.value(&v)) {
      if (err) *err = p.err_ + " at offset " + std::to_string(p.pos_);
      return false;
    }
    p.skip_ws();
    if (p.pos_ != text.size()) {
      if (err) *err = "trailing content at offset " + std::to_string(p.pos_);
      return false;
    }
    *out = std::move(v);
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    err_ = what;
    return false;
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      std::string str;
      if (!string(&str)) return false;
      *out = JsonValue(std::move(str));
      return true;
    }
    if (c == 't' || c == 'f' || c == 'n') return keyword(out);
    return number(out);
  }

  bool object(JsonValue* out) {
    ++pos_;  // '{'
    JsonValue::Object o;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      *out = JsonValue(std::move(o));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      JsonValue v;
      if (!value(&v)) return false;
      o.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        *out = JsonValue(std::move(o));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    ++pos_;  // '['
    JsonValue::Array a;
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      *out = JsonValue(std::move(a));
      return true;
    }
    while (true) {
      JsonValue v;
      if (!value(&v)) return false;
      a.push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        *out = JsonValue(std::move(a));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected string");
    ++pos_;
    std::string r;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') {
        *out = std::move(r);
        return true;
      }
      if (c != '\\') {
        r.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("bad escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': r.push_back('"'); break;
        case '\\': r.push_back('\\'); break;
        case '/': r.push_back('/'); break;
        case 'n': r.push_back('\n'); break;
        case 't': r.push_back('\t'); break;
        case 'r': r.push_back('\r'); break;
        case 'b': r.push_back('\b'); break;
        case 'f': r.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // ASCII only; anything wider encodes as UTF-8.
          if (code < 0x80) {
            r.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            r.push_back(static_cast<char>(0xC0 | (code >> 6)));
            r.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            r.push_back(static_cast<char>(0xE0 | (code >> 12)));
            r.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            r.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool keyword(JsonValue* out) {
    if (s_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = JsonValue(true);
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = JsonValue(false);
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = JsonValue(nullptr);
      return true;
    }
    return fail("bad keyword");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    try {
      *out = JsonValue(std::stod(s_.substr(start, pos_ - start)));
    } catch (...) {
      return fail("bad number");
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace ucw
