// Vector clocks.
//
// Algorithm 1 itself only needs Lamport stamps, but the test and analysis
// layers use vector clocks to (a) derive the happened-before relation of a
// recorded run and (b) check causal-delivery properties of the transports.
// The stability tracker (log GC, Section VII-C) builds on the matrix clock
// in matrix_clock.hpp, which is a vector of these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clock/timestamp.hpp"

namespace ucw {

/// Per-process event counters; component i counts events of process i.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n_processes) : counters_(n_processes, 0) {}

  [[nodiscard]] std::size_t size() const { return counters_.size(); }

  /// Grows the vector if a larger process id appears (dynamic membership).
  void ensure_size(std::size_t n);

  /// Increments the local component and returns its new value.
  LogicalTime tick(ProcessId pid);

  /// Component-wise maximum with a received clock.
  void merge(const VectorClock& other);

  [[nodiscard]] LogicalTime at(ProcessId pid) const;
  void set(ProcessId pid, LogicalTime value);

  /// True when every component of *this is <= the other's.
  [[nodiscard]] bool leq(const VectorClock& other) const;

  /// Strict happened-before: leq and at least one strictly smaller.
  [[nodiscard]] bool before(const VectorClock& other) const;

  /// Neither leq in either direction: the clocks are concurrent.
  [[nodiscard]] bool concurrent_with(const VectorClock& other) const;

  [[nodiscard]] bool operator==(const VectorClock& other) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<LogicalTime> counters_;
};

}  // namespace ucw
