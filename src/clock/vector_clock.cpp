#include "clock/vector_clock.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace ucw {

void VectorClock::ensure_size(std::size_t n) {
  if (counters_.size() < n) counters_.resize(n, 0);
}

LogicalTime VectorClock::tick(ProcessId pid) {
  ensure_size(pid + 1);
  return ++counters_[pid];
}

void VectorClock::merge(const VectorClock& other) {
  ensure_size(other.size());
  for (std::size_t i = 0; i < other.counters_.size(); ++i) {
    counters_[i] = std::max(counters_[i], other.counters_[i]);
  }
}

LogicalTime VectorClock::at(ProcessId pid) const {
  return pid < counters_.size() ? counters_[pid] : 0;
}

void VectorClock::set(ProcessId pid, LogicalTime value) {
  ensure_size(pid + 1);
  counters_[pid] = value;
}

bool VectorClock::leq(const VectorClock& other) const {
  const std::size_t n = std::max(counters_.size(), other.counters_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (at(static_cast<ProcessId>(i)) > other.at(static_cast<ProcessId>(i))) {
      return false;
    }
  }
  return true;
}

bool VectorClock::before(const VectorClock& other) const {
  return leq(other) && !(*this == other);
}

bool VectorClock::concurrent_with(const VectorClock& other) const {
  return !leq(other) && !other.leq(*this);
}

bool VectorClock::operator==(const VectorClock& other) const {
  const std::size_t n = std::max(counters_.size(), other.counters_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (at(static_cast<ProcessId>(i)) != other.at(static_cast<ProcessId>(i))) {
      return false;
    }
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i != 0) os << ',';
    os << counters_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace ucw
