// Convenience alias header: the Lamport clock lives with the timestamp
// definition it produces.
#pragma once

#include "clock/timestamp.hpp"  // IWYU pragma: export
