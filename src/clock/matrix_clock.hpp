// Matrix clock and stability detection (Section VII-C).
//
// Algorithm 1 keeps the whole update log. The paper observes that "after
// some time old messages can be garbage collected": once every process is
// known to have received all updates with Lamport time <= t, no message
// with a smaller stamp can ever arrive (messages carry the sender's clock,
// and clocks only move forward), so the log prefix up to t is *stable* and
// can be folded into a base state.
//
// A matrix clock provides exactly that knowledge: row j holds the latest
// Lamport time process i knows process j has reached. The stability floor
// is the minimum over rows — every update stamped <= floor has been seen
// by everyone (Wuu & Bernstein's replicated-log technique, the paper's
// reference [18]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "clock/timestamp.hpp"

namespace ucw {

class MatrixClock {
 public:
  MatrixClock(ProcessId self, std::size_t n_processes);

  [[nodiscard]] ProcessId self() const { return self_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Records that the local process reached logical time t.
  void advance_self(LogicalTime t);

  /// Records direct knowledge "process j has reached time t" (e.g. from a
  /// message or heartbeat j sent with its clock value t).
  void observe_direct(ProcessId j, LogicalTime t);

  /// Merges gossiped knowledge: a row vector of what the sender knew
  /// about every process. Component-wise maximum.
  void merge_rows(const std::vector<LogicalTime>& their_rows);

  /// This process's knowledge vector (what it would gossip).
  [[nodiscard]] const std::vector<LogicalTime>& rows() const { return rows_; }

  /// Largest logical time t such that, to this process's knowledge, every
  /// process has advanced past t. Every update with stamp.clock <= t is
  /// stable: it has been delivered everywhere and no smaller-stamped
  /// update can appear.
  [[nodiscard]] LogicalTime stability_floor() const;

  /// Treats crashed processes as having reached +infinity, so a crash does
  /// not freeze garbage collection forever (requires failure detection or
  /// an administrative decision; see DESIGN.md). Callers must only declare
  /// a crash once no message from the crashed process can still be in
  /// flight (failure-detection timeouts exceeding the maximum delay give
  /// exactly that), otherwise a straggler could land below the fold floor.
  void mark_crashed(ProcessId j);

  /// Reverses mark_crashed: a message from `j` (a restarted incarnation,
  /// or a suspicion that proved wrong) shows it is alive, so its row must
  /// count towards the floor again.
  void mark_alive(ProcessId j);
  [[nodiscard]] bool is_crashed(ProcessId j) const;

  [[nodiscard]] std::string to_string() const;

 private:
  ProcessId self_;
  std::vector<LogicalTime> rows_;
  std::vector<bool> crashed_;
};

}  // namespace ucw
