// Lamport timestamps: the total order on updates used by Algorithm 1.
//
// The paper timestamps every update with a pair (logical time, process id)
// and orders them lexicographically: (cl, j) < (cl', j') iff cl < cl' or
// (cl = cl' and j < j'). Because processes have unique ids and a process
// never reuses a logical time for two of its own updates, this order is
// total — it is the arbitration order all replicas converge on.
#pragma once

#include <atomic>
#include <compare>
#include <cstdint>
#include <ostream>
#include <string>

#include "util/hash.hpp"

namespace ucw {

using ProcessId = std::uint32_t;
using LogicalTime = std::uint64_t;

/// Pair (logical clock, process id), totally ordered lexicographically.
struct Stamp {
  LogicalTime clock = 0;
  ProcessId pid = 0;

  friend constexpr auto operator<=>(const Stamp&, const Stamp&) = default;

  [[nodiscard]] std::string to_string() const {
    return "(" + std::to_string(clock) + "," + std::to_string(pid) + ")";
  }
};

inline std::ostream& operator<<(std::ostream& os, const Stamp& s) {
  return os << s.to_string();
}

inline std::size_t hash_value(const Stamp& s) {
  std::size_t seed = std::hash<LogicalTime>{}(s.clock);
  hash_combine(seed, std::hash<ProcessId>{}(s.pid));
  return seed;
}

/// Lamport logical clock (one per process).
///
/// `tick()` stamps a local event; `observe(remote)` merges a received
/// timestamp ("clock_i <- max(clock_i, cl)" in Algorithm 1, line 9).
class LamportClock {
 public:
  explicit LamportClock(ProcessId pid) : pid_(pid) {}

  /// Advances the clock and returns the stamp for a new local event
  /// (Algorithm 1, lines 5-6: "clock_i <- clock_i + 1").
  [[nodiscard]] Stamp tick() {
    ++time_;
    return Stamp{time_, pid_};
  }

  /// Merges a remote logical time (Algorithm 1, line 9).
  void observe(LogicalTime remote) {
    if (remote > time_) time_ = remote;
  }
  void observe(const Stamp& remote) { observe(remote.clock); }

  [[nodiscard]] LogicalTime now() const { return time_; }
  [[nodiscard]] ProcessId pid() const { return pid_; }

 private:
  ProcessId pid_;
  LogicalTime time_ = 0;
};

/// Thread-safe Lamport clock: the store-wide clock every keyed replica
/// of a process stamps from, shareable across the shard engines of a
/// worker pool. `tick()` is a fetch-add (stamps stay unique and
/// monotone per process even when many client threads stamp while
/// worker threads merge remote clocks) and `observe()` is a CAS-max.
/// Default orderings are relaxed: the clock value itself is the only
/// datum, and per-key arbitration needs only uniqueness plus
/// per-process monotonicity of stamps, both of which the fetch-add
/// provides. The multi-producer frontend passes seq_cst explicitly on
/// its hot path: the ack-honesty barrier (ThreadUcStore::stamp_barrier)
/// reasons about the single total order of {claim-slot stores, ticks,
/// the router's clock read, claim-slot scans}, which only exists when
/// all four are seq_cst. Single-threaded use (the Sim transport)
/// behaves bit-for-bit like LamportClock.
class AtomicLamportClock {
 public:
  explicit AtomicLamportClock(ProcessId pid) : pid_(pid) {}

  /// Advances the clock and returns the stamp for a new local event.
  [[nodiscard]] Stamp tick(
      std::memory_order order = std::memory_order_relaxed) {
    return Stamp{time_.fetch_add(1, order) + 1, pid_};
  }

  /// Draws `n` consecutive stamps with one fetch-add and returns the
  /// FIRST; the caller owns clocks [first, first + n). Batch stamping
  /// for update_batch: uniqueness and per-process monotonicity hold
  /// exactly as for n single ticks, at 1/n the contended RMWs.
  [[nodiscard]] Stamp tick_n(
      LogicalTime n, std::memory_order order = std::memory_order_relaxed) {
    return Stamp{time_.fetch_add(n, order) + 1, pid_};
  }

  /// Merges a remote logical time (CAS-max).
  void observe(LogicalTime remote) {
    LogicalTime cur = time_.load(std::memory_order_relaxed);
    while (remote > cur && !time_.compare_exchange_weak(
                               cur, remote, std::memory_order_relaxed)) {
    }
  }
  void observe(const Stamp& remote) { observe(remote.clock); }

  [[nodiscard]] LogicalTime now(
      std::memory_order order = std::memory_order_relaxed) const {
    return time_.load(order);
  }
  [[nodiscard]] ProcessId pid() const { return pid_; }

 private:
  ProcessId pid_;
  std::atomic<LogicalTime> time_{0};
};

}  // namespace ucw

template <>
struct std::hash<ucw::Stamp> {
  std::size_t operator()(const ucw::Stamp& s) const {
    return ucw::hash_value(s);
  }
};
