#include "clock/matrix_clock.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/assert.hpp"

namespace ucw {

MatrixClock::MatrixClock(ProcessId self, std::size_t n_processes)
    : self_(self), rows_(n_processes, 0), crashed_(n_processes, false) {
  UCW_CHECK(self < n_processes);
}

void MatrixClock::advance_self(LogicalTime t) {
  rows_[self_] = std::max(rows_[self_], t);
}

void MatrixClock::observe_direct(ProcessId j, LogicalTime t) {
  UCW_CHECK(j < rows_.size());
  rows_[j] = std::max(rows_[j], t);
}

void MatrixClock::merge_rows(const std::vector<LogicalTime>& their_rows) {
  UCW_CHECK(their_rows.size() == rows_.size());
  for (std::size_t j = 0; j < rows_.size(); ++j) {
    rows_[j] = std::max(rows_[j], their_rows[j]);
  }
}

LogicalTime MatrixClock::stability_floor() const {
  LogicalTime floor = std::numeric_limits<LogicalTime>::max();
  bool any_alive = false;
  for (std::size_t j = 0; j < rows_.size(); ++j) {
    if (crashed_[j]) continue;
    any_alive = true;
    floor = std::min(floor, rows_[j]);
  }
  return any_alive ? floor : rows_[self_];
}

void MatrixClock::mark_crashed(ProcessId j) {
  UCW_CHECK(j < crashed_.size());
  UCW_CHECK_MSG(j != self_, "a process cannot declare itself crashed");
  crashed_[j] = true;
}

void MatrixClock::mark_alive(ProcessId j) {
  UCW_CHECK(j < crashed_.size());
  crashed_[j] = false;
}

bool MatrixClock::is_crashed(ProcessId j) const {
  UCW_CHECK(j < crashed_.size());
  return crashed_[j];
}

std::string MatrixClock::to_string() const {
  std::ostringstream os;
  os << "{self=" << self_ << " rows=[";
  for (std::size_t j = 0; j < rows_.size(); ++j) {
    if (j != 0) os << ',';
    os << rows_[j];
    if (crashed_[j]) os << "†";
  }
  os << "] floor=" << stability_floor() << '}';
  return os.str();
}

}  // namespace ucw
