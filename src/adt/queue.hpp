// FIFO queue UQ-ADT with the update/query split the paper mandates.
//
// A classical dequeue both mutates and returns — exactly the combination
// Definition 1 excludes. Following the paper's stack remark (Section I,
// "lookup top and delete top"), the queue is split into:
//   updates:  Enqueue(v), Dequeue()  (Dequeue on an empty queue is a no-op)
//   query:    Front() → optional<V>  (nullopt when empty)
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

template <typename V>
struct Enqueue {
  V value;
  friend bool operator==(const Enqueue&, const Enqueue&) = default;
};

struct Dequeue {
  friend bool operator==(const Dequeue&, const Dequeue&) = default;
};

struct QueueFront {
  friend bool operator==(const QueueFront&, const QueueFront&) = default;
};

template <typename V>
std::size_t hash_value(const Enqueue<V>& u) {
  std::size_t seed = 0xE19;
  hash_combine(seed, hash_value(u.value));
  return seed;
}
inline std::size_t hash_value(const Dequeue&) { return 0xD0; }
inline std::size_t hash_value(const QueueFront&) { return 0xF2; }

template <typename V = int>
struct QueueAdt {
  using Value = V;
  using State = std::vector<V>;  // front at index 0
  using Update = std::variant<Enqueue<V>, Dequeue>;
  using QueryIn = QueueFront;
  using QueryOut = std::optional<V>;

  [[nodiscard]] State initial() const { return {}; }

  [[nodiscard]] State transition(State s, const Update& u) const {
    if (const auto* e = std::get_if<Enqueue<V>>(&u)) {
      s.push_back(e->value);
    } else if (!s.empty()) {
      s.erase(s.begin());
    }
    return s;
  }

  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    if (s.empty()) return std::nullopt;
    return s.front();
  }

  /// Front observations are satisfiable by [v] (or the empty queue for
  /// nullopt) as long as they agree; used by the SEC/EC checkers.
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<QueueAdt>>& obs) const {
    if (obs.empty()) return State{};
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    if (!obs.front().second.has_value()) return State{};
    return State{*obs.front().second};
  }

  [[nodiscard]] std::string name() const { return "Queue"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    if (const auto* e = std::get_if<Enqueue<V>>(&u)) {
      return "Enq(" + format_value(e->value) + ")";
    }
    return "Deq()";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "Front/" + format_value(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  [[nodiscard]] static Update enqueue(V v) { return Enqueue<V>{std::move(v)}; }
  [[nodiscard]] static Update dequeue() { return Dequeue{}; }
  [[nodiscard]] static QueryIn front() { return QueueFront{}; }
};

static_assert(UqAdt<QueueAdt<int>>);

}  // namespace ucw
