// Append-only log UQ-ADT.
//
// Appends do not commute (the order of elements matters), yet every
// interleaving is a valid sequence — the log makes the *arbitration*
// aspect of update consistency visible: all replicas converge to the same
// total order of appended entries, the Lamport order of Algorithm 1.
// Used by the collaborative-editing example and the criteria tests.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

template <typename V>
struct LogAppend {
  V value;
  friend bool operator==(const LogAppend&, const LogAppend&) = default;
};

struct LogRead {
  friend bool operator==(const LogRead&, const LogRead&) = default;
};

template <typename V>
std::size_t hash_value(const LogAppend<V>& u) {
  std::size_t seed = 0xA99;
  hash_combine(seed, hash_value(u.value));
  return seed;
}
inline std::size_t hash_value(const LogRead&) { return 0x106; }

template <typename V = int>
struct AppendLogAdt {
  using Value = V;
  using State = std::vector<V>;
  using Update = LogAppend<V>;
  using QueryIn = LogRead;
  using QueryOut = std::vector<V>;

  [[nodiscard]] State initial() const { return {}; }
  [[nodiscard]] State transition(State s, const Update& u) const {
    s.push_back(u.value);
    return s;
  }
  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    return s;
  }
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<AppendLogAdt>>& obs) const {
    if (obs.empty()) return State{};
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    return obs.front().second;
  }

  [[nodiscard]] std::string name() const { return "AppendLog"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    return "App(" + format_value(u.value) + ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "R/" + format_value(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  [[nodiscard]] static Update append(V v) { return LogAppend<V>{std::move(v)}; }
  [[nodiscard]] static QueryIn read() { return LogRead{}; }
};

static_assert(UqAdt<AppendLogAdt<int>>);

}  // namespace ucw
