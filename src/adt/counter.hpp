// Shared counter UQ-ADT.
//
// Increments and decrements commute, so the counter is a pure CRDT: every
// linearization of a fixed multiset of updates reaches the same state.
// The paper (Section VII-C) notes that for such objects a naive
// apply-on-delivery implementation already achieves update consistency —
// our benchmarks use the counter to measure exactly that gap.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

struct CounterAdd {
  std::int64_t delta = 0;
  friend bool operator==(const CounterAdd&, const CounterAdd&) = default;
};

struct CounterRead {
  friend bool operator==(const CounterRead&, const CounterRead&) = default;
};

inline std::size_t hash_value(const CounterAdd& u) {
  return std::hash<std::int64_t>{}(u.delta) ^ 0xADD;
}
inline std::size_t hash_value(const CounterRead&) { return 0xC0; }

struct CounterAdt {
  using State = std::int64_t;
  using Update = CounterAdd;
  using QueryIn = CounterRead;
  using QueryOut = std::int64_t;

  [[nodiscard]] State initial() const { return 0; }
  [[nodiscard]] State transition(State s, const Update& u) const {
    return s + u.delta;
  }
  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    return s;
  }
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<CounterAdt>>& obs) const {
    if (obs.empty()) return 0;
    for (const auto& o : obs) {
      if (o.second != obs.front().second) return std::nullopt;
    }
    return obs.front().second;
  }

  [[nodiscard]] std::string name() const { return "Counter"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    return (u.delta >= 0 ? "Add(+" : "Add(") + std::to_string(u.delta) + ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "Read/" + std::to_string(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return std::to_string(s);
  }

  [[nodiscard]] static Update add(std::int64_t d) { return CounterAdd{d}; }
  [[nodiscard]] static QueryIn read() { return CounterRead{}; }
};

static_assert(UqAdt<CounterAdt>);
static_assert(HasSatisfyingState<CounterAdt>);

}  // namespace ucw
