// Umbrella header for the UQ-ADT library.
#pragma once

#include "adt/concepts.hpp"    // IWYU pragma: export
#include "adt/counter.hpp"     // IWYU pragma: export
#include "adt/document.hpp"    // IWYU pragma: export
#include "adt/format.hpp"      // IWYU pragma: export
#include "adt/log.hpp"         // IWYU pragma: export
#include "adt/queue.hpp"       // IWYU pragma: export
#include "adt/register.hpp"    // IWYU pragma: export
#include "adt/replayer.hpp"    // IWYU pragma: export
#include "adt/set.hpp"         // IWYU pragma: export
#include "adt/stack.hpp"       // IWYU pragma: export
