// Collaborative text document UQ-ADT.
//
// The paper motivates update consistency with collaborative editing
// (Section I's discussion of intention preservation). The document is a
// character sequence with positional insert/erase; positions are clamped
// so every update is total (T must be a function on all of S × U). Under
// update consistency all replicas converge to the document produced by
// the agreed linearization of edits — concurrent edits may interleave,
// but never diverge.
#pragma once

#include <algorithm>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

struct DocInsert {
  std::size_t pos = 0;
  std::string text;
  friend bool operator==(const DocInsert&, const DocInsert&) = default;
};

struct DocErase {
  std::size_t pos = 0;
  std::size_t count = 1;
  friend bool operator==(const DocErase&, const DocErase&) = default;
};

struct DocRead {
  friend bool operator==(const DocRead&, const DocRead&) = default;
};

inline std::size_t hash_value(const DocInsert& u) {
  std::size_t seed = std::hash<std::size_t>{}(u.pos);
  hash_combine(seed, std::hash<std::string>{}(u.text));
  return seed;
}
inline std::size_t hash_value(const DocErase& u) {
  std::size_t seed = std::hash<std::size_t>{}(u.pos) ^ 0xE3A5E;
  hash_combine(seed, std::hash<std::size_t>{}(u.count));
  return seed;
}
inline std::size_t hash_value(const DocRead&) { return 0xD0C; }

struct DocumentAdt {
  using State = std::string;
  using Update = std::variant<DocInsert, DocErase>;
  using QueryIn = DocRead;
  using QueryOut = std::string;

  [[nodiscard]] State initial() const { return {}; }

  [[nodiscard]] State transition(State s, const Update& u) const {
    if (const auto* ins = std::get_if<DocInsert>(&u)) {
      const std::size_t p = std::min(ins->pos, s.size());
      s.insert(p, ins->text);
    } else {
      const auto& er = std::get<DocErase>(u);
      const std::size_t p = std::min(er.pos, s.size());
      const std::size_t n = std::min(er.count, s.size() - p);
      s.erase(p, n);
    }
    return s;
  }

  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    return s;
  }

  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<DocumentAdt>>& obs) const {
    if (obs.empty()) return State{};
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    return obs.front().second;
  }

  [[nodiscard]] std::string name() const { return "Document"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    if (const auto* ins = std::get_if<DocInsert>(&u)) {
      return "Ins(" + std::to_string(ins->pos) + ",\"" + ins->text + "\")";
    }
    const auto& er = std::get<DocErase>(u);
    return "Del(" + std::to_string(er.pos) + "," + std::to_string(er.count) +
           ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "R/\"" + out + "\"";
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return "\"" + s + "\"";
  }

  [[nodiscard]] static Update insert_at(std::size_t pos, std::string text) {
    return DocInsert{pos, std::move(text)};
  }
  [[nodiscard]] static Update erase_at(std::size_t pos, std::size_t n = 1) {
    return DocErase{pos, n};
  }
  [[nodiscard]] static QueryIn read() { return DocRead{}; }
};

static_assert(UqAdt<DocumentAdt>);

}  // namespace ucw
