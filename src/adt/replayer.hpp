// Sequential replay: membership in L(O) for concrete words.
//
// A word w over U ∪ Q is recognized by the UQ-ADT (Definition 1) when the
// updates drive the transition system from s0 and every query q_i/q_o in
// the word satisfies G(s, q_i) = q_o at its position. The replayer decides
// recognition for concrete finite words and returns the reached state —
// it is both the reference oracle the checkers are tested against and the
// engine Algorithm 1 uses to rebuild a replica's state from its log.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "adt/concepts.hpp"

namespace ucw {

/// One letter of a sequential word: an update or a query observation.
template <UqAdt A>
using SeqOp = std::variant<typename A::Update, QueryObservation<A>>;

template <UqAdt A>
[[nodiscard]] bool is_update_op(const SeqOp<A>& op) {
  return op.index() == 0;
}

/// Result of replaying a word: the final state, or the index of the first
/// query whose recorded output contradicts the state reached.
template <UqAdt A>
struct ReplayResult {
  std::optional<typename A::State> final_state;  // nullopt on mismatch
  std::size_t failed_at = 0;                     // valid when mismatch

  [[nodiscard]] bool recognized() const { return final_state.has_value(); }
};

template <UqAdt A>
class SequentialReplayer {
 public:
  explicit SequentialReplayer(A adt) : adt_(std::move(adt)) {}

  [[nodiscard]] const A& adt() const { return adt_; }

  /// Replays `word` from s0; decides w ∈ L(O).
  [[nodiscard]] ReplayResult<A> replay(
      const std::vector<SeqOp<A>>& word) const {
    return replay_from(adt_.initial(), word);
  }

  /// Replays from an arbitrary start state (used by snapshot recovery).
  [[nodiscard]] ReplayResult<A> replay_from(
      typename A::State state, const std::vector<SeqOp<A>>& word) const {
    for (std::size_t i = 0; i < word.size(); ++i) {
      const auto& op = word[i];
      if (const auto* u = std::get_if<typename A::Update>(&op)) {
        state = adt_.transition(std::move(state), *u);
      } else {
        const auto& obs = std::get<QueryObservation<A>>(op);
        if (!(adt_.output(state, obs.first) == obs.second)) {
          return ReplayResult<A>{std::nullopt, i};
        }
      }
    }
    return ReplayResult<A>{std::move(state), word.size()};
  }

  /// Applies a pure update sequence (no queries to falsify).
  [[nodiscard]] typename A::State apply_updates(
      const std::vector<typename A::Update>& updates) const {
    auto state = adt_.initial();
    for (const auto& u : updates) {
      state = adt_.transition(std::move(state), u);
    }
    return state;
  }

  /// Renders a word as "I(1)·R/{1}·D(1)" for diagnostics.
  [[nodiscard]] std::string format_word(
      const std::vector<SeqOp<A>>& word) const {
    std::string out;
    for (std::size_t i = 0; i < word.size(); ++i) {
      if (i != 0) out += "·";
      if (const auto* u = std::get_if<typename A::Update>(&word[i])) {
        out += adt_.format_update(*u);
      } else {
        const auto& obs = std::get<QueryObservation<A>>(word[i]);
        out += adt_.format_query(obs.first, obs.second);
      }
    }
    return out;
  }

 private:
  A adt_;
};

}  // namespace ucw
