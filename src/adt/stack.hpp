// Stack UQ-ADT split into lookup-top / delete-top.
//
// This is the paper's own example of turning a combined update+query
// operation (pop) into a query (Top) and an update (Pop); Section I notes
// the split loses nothing because weak consistency cannot provide the
// atomicity a combined pop would need anyway.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

template <typename V>
struct Push {
  V value;
  friend bool operator==(const Push&, const Push&) = default;
};

struct Pop {  // delete-top; no-op on the empty stack
  friend bool operator==(const Pop&, const Pop&) = default;
};

struct StackTop {  // lookup-top
  friend bool operator==(const StackTop&, const StackTop&) = default;
};

template <typename V>
std::size_t hash_value(const Push<V>& u) {
  std::size_t seed = 0x9054;
  hash_combine(seed, hash_value(u.value));
  return seed;
}
inline std::size_t hash_value(const Pop&) { return 0x90b; }
inline std::size_t hash_value(const StackTop&) { return 0x702; }

template <typename V = int>
struct StackAdt {
  using Value = V;
  using State = std::vector<V>;  // top at the back
  using Update = std::variant<Push<V>, Pop>;
  using QueryIn = StackTop;
  using QueryOut = std::optional<V>;

  [[nodiscard]] State initial() const { return {}; }

  [[nodiscard]] State transition(State s, const Update& u) const {
    if (const auto* p = std::get_if<Push<V>>(&u)) {
      s.push_back(p->value);
    } else if (!s.empty()) {
      s.pop_back();
    }
    return s;
  }

  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    if (s.empty()) return std::nullopt;
    return s.back();
  }

  /// Top observations are satisfiable by [v] (or the empty stack for
  /// nullopt) as long as they agree; used by the SEC/EC checkers.
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<StackAdt>>& obs) const {
    if (obs.empty()) return State{};
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    if (!obs.front().second.has_value()) return State{};
    return State{*obs.front().second};
  }

  [[nodiscard]] std::string name() const { return "Stack"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    if (const auto* p = std::get_if<Push<V>>(&u)) {
      return "Push(" + format_value(p->value) + ")";
    }
    return "Pop()";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "Top/" + format_value(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  [[nodiscard]] static Update push(V v) { return Push<V>{std::move(v)}; }
  [[nodiscard]] static Update pop() { return Pop{}; }
  [[nodiscard]] static QueryIn top() { return StackTop{}; }
};

static_assert(UqAdt<StackAdt<int>>);

}  // namespace ucw
