// Formatting helpers shared by the ADT definitions.
//
// Keeps human-readable renderings of states and operations uniform across
// the library: sets as "{1, 2}", sequences as "[a, b]", optionals as
// "none"/value. Used by history dumps, checker diagnostics and examples.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace ucw {

inline std::string format_value(const std::string& s) { return s; }
inline std::string format_value(const char* s) { return s; }
inline std::string format_value(bool b) { return b ? "true" : "false"; }
inline std::string format_value(char c) { return std::string(1, c); }

template <typename T>
  requires std::is_arithmetic_v<T>
std::string format_value(T v) {
  return std::to_string(v);
}

template <typename T>
std::string format_value(const std::optional<T>& o) {
  return o ? format_value(*o) : std::string("none");
}

template <typename T>
std::string format_value(const std::set<T>& s) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& e : s) {
    if (!first) os << ", ";
    os << format_value(e);
    first = false;
  }
  os << '}';
  return os.str();
}

template <typename T>
std::string format_value(const std::vector<T>& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << format_value(v[i]);
  }
  os << ']';
  return os.str();
}

template <typename K, typename V>
std::string format_value(const std::map<K, V>& m) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [k, v] : m) {
    if (!first) os << ", ";
    os << format_value(k) << ":" << format_value(v);
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace ucw
