// Register and multi-register shared memory UQ-ADTs.
//
// RegisterAdt is a single read/write cell; MemoryAdt is the object of the
// paper's Algorithm 2: a set X of registers holding values from V, where
// read(x) returns the last written value or the initial value v0. Writes
// do not commute, so neither type is a CRDT — they are the canonical
// motivation for the last-writer-wins arbitration Algorithm 2 applies.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

template <typename V>
struct RegWrite {
  V value;
  friend bool operator==(const RegWrite&, const RegWrite&) = default;
};

struct RegRead {
  friend bool operator==(const RegRead&, const RegRead&) = default;
};

template <typename V>
std::size_t hash_value(const RegWrite<V>& u) {
  std::size_t seed = 0x3217;
  hash_combine(seed, hash_value(u.value));
  return seed;
}
inline std::size_t hash_value(const RegRead&) { return 0x4E6; }

/// Single register with initial value v0.
template <typename V = int>
struct RegisterAdt {
  using Value = V;
  using State = V;
  using Update = RegWrite<V>;
  using QueryIn = RegRead;
  using QueryOut = V;

  V v0{};

  [[nodiscard]] State initial() const { return v0; }
  [[nodiscard]] State transition(State, const Update& u) const {
    return u.value;
  }
  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    return s;
  }
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<RegisterAdt>>& obs) const {
    if (obs.empty()) return v0;
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    return obs.front().second;
  }

  [[nodiscard]] std::string name() const { return "Register"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    return "W(" + format_value(u.value) + ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "R/" + format_value(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  [[nodiscard]] static Update write(V v) { return RegWrite<V>{std::move(v)}; }
  [[nodiscard]] static QueryIn read() { return RegRead{}; }
};

template <typename K, typename V>
struct MemWrite {
  K reg;
  V value;
  friend bool operator==(const MemWrite&, const MemWrite&) = default;
};

template <typename K>
struct MemRead {
  K reg;
  friend bool operator==(const MemRead&, const MemRead&) = default;
};

template <typename K, typename V>
std::size_t hash_value(const MemWrite<K, V>& u) {
  std::size_t seed = 0x111E;
  hash_combine(seed, hash_value(u.reg));
  hash_combine(seed, hash_value(u.value));
  return seed;
}
template <typename K>
std::size_t hash_value(const MemRead<K>& q) {
  std::size_t seed = 0x22EA;
  hash_combine(seed, hash_value(q.reg));
  return seed;
}

/// Shared memory mem(X, V, v0): the object implemented by Algorithm 2.
///
/// State maps registers to values; absent keys hold the initial value, so
/// the state space stays finite for any finite execution.
template <typename K = std::string, typename V = int>
struct MemoryAdt {
  using Key = K;
  using Value = V;
  using State = std::map<K, V>;
  using Update = MemWrite<K, V>;
  using QueryIn = MemRead<K>;
  using QueryOut = V;

  V v0{};

  [[nodiscard]] State initial() const { return {}; }
  [[nodiscard]] State transition(State s, const Update& u) const {
    s[u.reg] = u.value;
    return s;
  }
  [[nodiscard]] QueryOut output(const State& s, const QueryIn& q) const {
    auto it = s.find(q.reg);
    return it == s.end() ? v0 : it->second;
  }

  /// Builds the partial assignment implied by the observations; reads of
  /// distinct registers never conflict, reads of the same register must
  /// agree (or equal v0, which the empty map also satisfies).
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<MemoryAdt>>& obs) const {
    State s;
    for (const auto& [qi, qo] : obs) {
      auto it = s.find(qi.reg);
      if (it != s.end()) {
        if (!(it->second == qo)) return std::nullopt;
      } else {
        s[qi.reg] = qo;
      }
    }
    return s;
  }

  [[nodiscard]] std::string name() const { return "Memory"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    return "write(" + format_value(u.reg) + "," + format_value(u.value) + ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn& qi,
                                         const QueryOut& qo) const {
    return "read(" + format_value(qi.reg) + ")/" + format_value(qo);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  [[nodiscard]] static Update write(K k, V v) {
    return MemWrite<K, V>{std::move(k), std::move(v)};
  }
  [[nodiscard]] static QueryIn read(K k) { return MemRead<K>{std::move(k)}; }
};

static_assert(UqAdt<RegisterAdt<int>>);
static_assert(UqAdt<MemoryAdt<std::string, int>>);
static_assert(HasSatisfyingState<MemoryAdt<std::string, int>>);

}  // namespace ucw
