// The replicated set (paper, Example 1) and the grow-only set (G-Set).
//
// SetAdt is the paper's running example S_Val: updates are I(v) and D(v),
// the single query R returns the whole content. GSetAdt is its restriction
// to insertions; since insertions commute it is a pure CRDT (Section VI)
// and a naive apply-on-delivery implementation is already update
// consistent (Section VII-C's remark on commuting updates).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "adt/concepts.hpp"
#include "adt/format.hpp"
#include "util/hash.hpp"

namespace ucw {

/// Insert(value) — T(s, I(v)) = s ∪ {v}.
template <typename V>
struct SetInsert {
  V value;
  friend bool operator==(const SetInsert&, const SetInsert&) = default;
};

/// Delete(value) — T(s, D(v)) = s \ {v}.
template <typename V>
struct SetDelete {
  V value;
  friend bool operator==(const SetDelete&, const SetDelete&) = default;
};

/// Read — G(s, R) = s.
struct SetRead {
  friend bool operator==(const SetRead&, const SetRead&) = default;
};

namespace detail {
template <typename V>
struct set_hash_help {};
}  // namespace detail

/// The set UQ-ADT S_Val of Example 1.
template <typename V = int>
struct SetAdt {
  using Value = V;
  using State = std::set<V>;
  using Update = std::variant<SetInsert<V>, SetDelete<V>>;
  using QueryIn = SetRead;
  using QueryOut = std::set<V>;

  [[nodiscard]] State initial() const { return {}; }

  [[nodiscard]] State transition(State s, const Update& u) const {
    if (const auto* ins = std::get_if<SetInsert<V>>(&u)) {
      s.insert(ins->value);
    } else {
      s.erase(std::get<SetDelete<V>>(u).value);
    }
    return s;
  }

  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    return s;
  }

  /// R returns the whole state, so the only satisfying state is the common
  /// output (all observations must agree).
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<SetAdt>>& obs) const {
    if (obs.empty()) return State{};
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    return obs.front().second;
  }

  [[nodiscard]] std::string name() const { return "Set"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    if (const auto* ins = std::get_if<SetInsert<V>>(&u)) {
      return "I(" + format_value(ins->value) + ")";
    }
    return "D(" + format_value(std::get<SetDelete<V>>(u).value) + ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "R/" + format_value(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  /// Convenience constructors for the operation alphabet.
  [[nodiscard]] static Update insert(V v) { return SetInsert<V>{std::move(v)}; }
  [[nodiscard]] static Update remove(V v) { return SetDelete<V>{std::move(v)}; }
  [[nodiscard]] static QueryIn read() { return SetRead{}; }
};

template <typename V>
std::size_t hash_value(const SetInsert<V>& u) {
  std::size_t seed = 0x1A5;
  hash_combine(seed, hash_value(u.value));
  return seed;
}
template <typename V>
std::size_t hash_value(const SetDelete<V>& u) {
  std::size_t seed = 0xDE1;
  hash_combine(seed, hash_value(u.value));
  return seed;
}
inline std::size_t hash_value(const SetRead&) { return 0x4EAD; }

/// Grow-only set: the deletion-free restriction of SetAdt.
template <typename V = int>
struct GSetAdt {
  using Value = V;
  using State = std::set<V>;
  using Update = SetInsert<V>;
  using QueryIn = SetRead;
  using QueryOut = std::set<V>;

  [[nodiscard]] State initial() const { return {}; }
  [[nodiscard]] State transition(State s, const Update& u) const {
    s.insert(u.value);
    return s;
  }
  [[nodiscard]] QueryOut output(const State& s, const QueryIn&) const {
    return s;
  }
  [[nodiscard]] std::optional<State> satisfying_state(
      const std::vector<QueryObservation<GSetAdt>>& obs) const {
    if (obs.empty()) return State{};
    for (const auto& o : obs) {
      if (!(o.second == obs.front().second)) return std::nullopt;
    }
    return obs.front().second;
  }

  [[nodiscard]] std::string name() const { return "GSet"; }
  [[nodiscard]] std::string format_update(const Update& u) const {
    return "I(" + format_value(u.value) + ")";
  }
  [[nodiscard]] std::string format_query(const QueryIn&,
                                         const QueryOut& out) const {
    return "R/" + format_value(out);
  }
  [[nodiscard]] std::string format_state(const State& s) const {
    return format_value(s);
  }

  [[nodiscard]] static Update insert(V v) { return SetInsert<V>{std::move(v)}; }
  [[nodiscard]] static QueryIn read() { return SetRead{}; }
};

static_assert(UqAdt<SetAdt<int>>);
static_assert(UqAdt<GSetAdt<int>>);
static_assert(HasSatisfyingState<SetAdt<int>>);

}  // namespace ucw
