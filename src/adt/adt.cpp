// Explicit instantiations of the common ADT configurations: catches
// template errors at library-build time rather than first use.
#include "adt/all.hpp"

namespace ucw {

template struct SetAdt<int>;
template struct SetAdt<std::string>;
template struct GSetAdt<int>;
template struct RegisterAdt<int>;
template struct MemoryAdt<std::string, int>;
template struct AppendLogAdt<int>;
template struct QueueAdt<int>;
template struct StackAdt<int>;
template class SequentialReplayer<SetAdt<int>>;
template class SequentialReplayer<CounterAdt>;
template class SequentialReplayer<DocumentAdt>;

}  // namespace ucw
