// UQ-ADT: update-query abstract data types (paper, Definition 1).
//
// An abstract data type O = (U, Qi, Qo, S, s0, T, G) is modeled as a small
// value type exposing:
//   State    — S, value-semantic, equality-comparable and hashable;
//   Update   — U, the update alphabet (usually a std::variant of ops);
//   QueryIn  — Qi, the query-input alphabet;
//   QueryOut — Qo, the query-output alphabet;
//   initial()            — s0;
//   transition(s, u)     — T : S × U → S;
//   output(s, qi)        — G : S × Qi → Qo.
//
// Updates return no value and queries are read-only, exactly the split the
// paper requires (operations like a classical pop are modeled as a
// lookup-query plus a delete-update; see StackAdt).
#pragma once

#include <concepts>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace ucw {

template <typename A>
concept UqAdt = requires(const A a, const typename A::State& s,
                         const typename A::Update& u,
                         const typename A::QueryIn& qi,
                         const typename A::QueryOut& qo) {
  typename A::State;
  typename A::Update;
  typename A::QueryIn;
  typename A::QueryOut;
  { a.initial() } -> std::convertible_to<typename A::State>;
  { a.transition(s, u) } -> std::convertible_to<typename A::State>;
  { a.output(s, qi) } -> std::convertible_to<typename A::QueryOut>;
  { s == s } -> std::convertible_to<bool>;
  { qo == qo } -> std::convertible_to<bool>;
  { a.name() } -> std::convertible_to<std::string>;
  { a.format_update(u) } -> std::convertible_to<std::string>;
  { a.format_query(qi, qo) } -> std::convertible_to<std::string>;
  { a.format_state(s) } -> std::convertible_to<std::string>;
};

/// One query observation: input together with the value it returned.
///
/// Deliberately unconstrained: ADT definitions mention it inside their own
/// class bodies (in satisfying_state), where the type is still incomplete
/// and a UqAdt<A> constraint would be self-referential.
template <typename A>
using QueryObservation =
    std::pair<typename A::QueryIn, typename A::QueryOut>;

/// Optional ADT capability used by the SEC/EC checkers: find *some* state
/// (any s ∈ S, not necessarily reachable) whose outputs match every
/// observation, or nullopt if the observations are jointly unsatisfiable.
///
/// Definition 6 (strong convergence) quantifies over arbitrary states, so
/// checkers cannot restrict themselves to reachable ones. For ADTs whose
/// single read query returns the whole state (set, counter, register, …)
/// this is a one-liner; ADTs without the capability fall back to the
/// reachable-state search in the checker, which is sound but may answer
/// Unknown.
template <typename A>
concept HasSatisfyingState = UqAdt<A> &&
    requires(const A a, const std::vector<QueryObservation<A>>& obs) {
      {
        a.satisfying_state(obs)
      } -> std::convertible_to<std::optional<typename A::State>>;
    };

/// Checks an observation against a concrete state.
template <UqAdt A>
[[nodiscard]] bool observation_holds(const A& adt,
                                     const typename A::State& s,
                                     const QueryObservation<A>& obs) {
  return adt.output(s, obs.first) == obs.second;
}

}  // namespace ucw
