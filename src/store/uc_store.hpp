// SimUcStore: a sharded, batched multi-object store over Algorithm 1.
//
// One store per process hosts an entire keyspace of independent UC
// objects behind a single network endpoint: key → lazily-instantiated
// ReplayReplica, partitioned into shards locally, with updates coalesced
// into BatchEnvelopes on the wire. The operation surface stays wait-free
// and update-consistent *per key*:
//
//   update(k, u) — stamps u with k's own Lamport clock, applies it to
//                  k's replica synchronously (self-delivery, exactly as
//                  the proof of Proposition 4 assumes), buffers the
//                  keyed message, and returns. When the buffer reaches
//                  `batch_window` entries it is flushed as one reliable
//                  broadcast; `batch_window == 1` degenerates to the
//                  paper's one-broadcast-per-update.
//   query(k, qi) — answered from k's local log replay; never blocks.
//   flush()      — ships any pending batch now. Drivers tick this on a
//                  period (the "per-tick envelope"); quiescence barriers
//                  call it before draining the network.
//
// Batching is invisible to per-key arbitration: stamps are assigned at
// update() time, delivery order within or across envelopes is already
// arbitrary in the model, and the per-key logs absorb duplicates. The
// store therefore inherits Theorem 2 key-by-key — see the convergence
// property test. All of that logic lives in the StoreCore router and
// its per-shard ShardEngines; this class only wires the core to the
// simulated network's delivery handler. Sim stores always run
// single-owner (`workers` is ignored): the DES is one logical thread,
// and determinism is the point of this frontend.
#pragma once

#include <string>

#include "net/sim_network.hpp"
#include "store/store_core.hpp"

namespace ucw {

template <UqAdt A, typename Key = std::string>
class SimUcStore
    : public StoreCore<A, SimNetwork<BatchEnvelope<A, Key>>, Key> {
  using Core = StoreCore<A, SimNetwork<BatchEnvelope<A, Key>>, Key>;

 public:
  using Envelope = typename Core::Envelope;

  /// Registers the store as `pid`'s delivery handler on the simulated
  /// network. Single-threaded by construction: the DES is one logical
  /// thread, and determinism is the point of this frontend.
  SimUcStore(A adt, ProcessId pid, SimNetwork<Envelope>& net,
             StoreConfig config = {})
      : Core(std::move(adt), pid, net, config) {
    net.set_handler(pid, [this](ProcessId from, const Envelope& e) {
      this->deliver(from, e);
    });
  }

  /// API parity with ThreadUcStore::get(): on the single-owner Sim
  /// store every local read is already wait-free (the local log replay,
  /// Proposition 4 — no ring exists to fall back to), so get() is
  /// exactly query(). Lets harness/bench code drive either frontend
  /// through one surface. Single-threaded, like everything here.
  [[nodiscard]] typename A::QueryOut get(const Key& key,
                                         const typename A::QueryIn& qi) {
    return Core::query(key, qi);
  }
};

}  // namespace ucw
