// Batch envelopes: the wire format of the UCStore.
//
// Algorithm 1 broadcasts one message per update; a store hosting
// thousands of independent UC objects behind one endpoint would pay that
// broadcast cost per key touched. The envelope amortizes it: one
// reliable broadcast carries many keyed updates, each still stamped by
// its own object's Lamport clock, so per-key arbitration (and therefore
// update consistency, Theorem 2 applied per key) is untouched — the
// network merely learns to carpool. Delivery demultiplexes the entries
// back into the per-key replicas in envelope order.
//
// Buffering never delays *local* visibility (the sender applies each
// update synchronously at update() time) and never blocks the caller, so
// the wait-freedom argument of Proposition 4 survives batching verbatim.
//
// The recovery subsystem rides the same wire type. Every broadcast
// envelope carries (epoch, seq) — the sender's incarnation and position
// in its own stream — and, when stability tracking is on, `ack_clock`,
// the sender's store clock: the envelope-level ack that feeds the
// store-level stability tracker. Four point-to-point kinds implement
// catch-up and anti-entropy: kSyncRequest asks a donor for the store's
// state, kShardSnapshot carries one shard's compacted base + unstable
// suffix (recovery/snapshot.hpp), and the kAntiEntropy pair runs the
// same exchange donor↔donor after a partition heals (request carries
// the caller's per-shard delta markers; the delta reply ships only the
// keys that advanced since). Only kBatch envelopes are part of the seq
// stream; the p2p kinds live outside it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "core/message.hpp"
#include "recovery/snapshot.hpp"

namespace ucw {

/// One update addressed to one object of the keyspace.
template <UqAdt A, typename Key = std::string>
struct KeyedUpdate {
  Key key;
  UpdateMessage<A> msg;
};

enum class EnvelopeKind : std::uint8_t {
  kBatch,               ///< broadcast: keyed updates + piggybacked ack
  kSyncRequest,         ///< p2p: "ship me your snapshots"
  kShardSnapshot,       ///< p2p: one shard's compacted state
  kAntiEntropyRequest,  ///< p2p: "ship me what moved since my markers"
  kAntiEntropyDelta,    ///< p2p: one shard's delta, heal-time exchange
};

/// A batch of keyed updates shipped as a single reliable broadcast —
/// and, via `kind`, the carrier of the catch-up protocol's p2p messages.
/// `(epoch, seq)` positions a kBatch envelope in its sender's stream:
/// correctness of *delivery* never depends on them (the per-key logs
/// absorb replays), but under FIFO links they are what lets a catching-up
/// replica prove a snapshot covered the prefix of a live stream.
template <UqAdt A, typename Key = std::string>
struct BatchEnvelope {
  EnvelopeKind kind = EnvelopeKind::kBatch;
  std::uint64_t epoch = 0;  ///< sender incarnation (bumped on restart)
  std::uint64_t seq = 0;    ///< sender's kBatch broadcast counter
  std::vector<KeyedUpdate<A, Key>> entries;
  /// Sender's store clock at send time; 0 when stability is off. An
  /// empty-entries kBatch envelope with a nonzero ack_clock is an ack
  /// heartbeat (sent so silent processes do not pin the GC floor).
  LogicalTime ack_clock = 0;
  /// kShardSnapshot / kAntiEntropyDelta payload. Shared: envelope
  /// copies (one per receiver in a broadcast transport, plus scheduler
  /// captures) must not deep-copy a whole shard's state.
  std::shared_ptr<const ShardSnapshot<A, Key>> snapshot;
  /// kSyncRequest / kAntiEntropyRequest: per-shard delta markers —
  /// "shard i of you I hold as of your marker sync_markers[i]" — valid
  /// for the donor incarnation `sync_markers_epoch`. Empty or
  /// stale-epoch markers make the donor serve full snapshots.
  std::vector<std::uint64_t> sync_markers;
  std::uint64_t sync_markers_epoch = 0;
  /// kAntiEntropyRequest: also serve yourself from me (one call heals
  /// both directions of a pair).
  bool ae_reciprocate = false;
  /// kAntiEntropyRequest: the requester's stability rows — per origin
  /// process, the largest stamp clock it provably received everything
  /// below (raised only by first-hand, gap-gated acks; see
  /// recovery/stability.hpp). A donor may skip any suffix entry with
  /// stamp.clock <= ae_floors[stamp.pid]: the requester already holds
  /// it live. Empty when the requester runs without stability tracking.
  std::vector<LogicalTime> ae_floors;
};

/// Fixed per-message framing cost assumed by the bytes-saved estimate:
/// transport header, sender id, length prefix. The exact constant only
/// scales the report; the *relative* saving comes from paying it once
/// per envelope instead of once per update.
inline constexpr std::size_t kFrameOverheadBytes = 24;

/// Envelope header past the frame: kind byte, epoch, seq, ack clock.
inline constexpr std::size_t kEnvelopeHeaderBytes =
    1 + sizeof(std::uint64_t) + sizeof(std::uint64_t) + sizeof(LogicalTime);

[[nodiscard]] inline std::size_t key_wire_bytes(const std::string& k) {
  return k.size() + 1;
}
template <typename K>
[[nodiscard]] std::size_t key_wire_bytes(const K&) {
  return sizeof(K);
}

/// Estimated wire size of one suffix entry: stamp + payload.
template <UqAdt A>
[[nodiscard]] std::size_t wire_size(const SnapshotLogEntry<A>& e) {
  return sizeof(e.stamp.clock) + sizeof(e.stamp.pid) +
         sizeof(typename A::Update);
}

/// Approximate serialized size of a base state. Containers count their
/// elements — a compacted base grows with *live state*, which is exactly
/// the component of catch-up cost the recovery subsystem claims to
/// bound, so a sizeof-only estimate would misreport it as constant.
template <typename State>
[[nodiscard]] std::size_t state_wire_bytes(const State& s) {
  if constexpr (requires { typename State::value_type; s.size(); }) {
    return sizeof(State) + s.size() * sizeof(typename State::value_type);
  } else {
    return sizeof(State);
  }
}

/// Estimated wire size of a shard snapshot: per-key base states plus
/// unstable suffixes plus the donor bookkeeping rows (and the delta
/// markers — three more fixed words).
template <UqAdt A, typename Key>
[[nodiscard]] std::size_t wire_size(const ShardSnapshot<A, Key>& s) {
  std::size_t bytes = 5 * sizeof(std::uint64_t) + sizeof(LogicalTime) +
                      s.donor_rows.size() * sizeof(LogicalTime) +
                      s.coverage.size() * (2 * sizeof(std::uint64_t) + 2);
  for (const auto& k : s.keys) {
    bytes += key_wire_bytes(k.key) + state_wire_bytes(k.base) +
             sizeof(LogicalTime);
    for (const auto& e : k.suffix) bytes += wire_size(e);
  }
  return bytes;
}

/// Estimated wire size of an envelope: one frame plus the header plus
/// the keyed payloads (and the snapshot / sync markers, per kind).
template <UqAdt A, typename Key>
[[nodiscard]] std::size_t wire_size(const BatchEnvelope<A, Key>& e) {
  std::size_t bytes = kFrameOverheadBytes + kEnvelopeHeaderBytes;
  for (const auto& entry : e.entries) {
    bytes += key_wire_bytes(entry.key) + wire_size(entry.msg);
  }
  if (e.snapshot) bytes += wire_size(*e.snapshot);
  bytes += e.sync_markers.size() * sizeof(std::uint64_t);
  bytes += e.ae_floors.size() * sizeof(LogicalTime);
  return bytes;
}

/// What the same entries would have cost as one broadcast per update
/// (the Algorithm-1 baseline the message-complexity bench measures).
template <UqAdt A, typename Key>
[[nodiscard]] std::size_t unbatched_wire_size(
    const BatchEnvelope<A, Key>& e) {
  std::size_t bytes = 0;
  for (const auto& entry : e.entries) {
    bytes +=
        kFrameOverheadBytes + key_wire_bytes(entry.key) + wire_size(entry.msg);
  }
  return bytes;
}

}  // namespace ucw
