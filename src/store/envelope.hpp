// Batch envelopes: the wire format of the UCStore.
//
// Algorithm 1 broadcasts one message per update; a store hosting
// thousands of independent UC objects behind one endpoint would pay that
// broadcast cost per key touched. The envelope amortizes it: one
// reliable broadcast carries many keyed updates, each still stamped by
// its own object's Lamport clock, so per-key arbitration (and therefore
// update consistency, Theorem 2 applied per key) is untouched — the
// network merely learns to carpool. Delivery demultiplexes the entries
// back into the per-key replicas in envelope order.
//
// Buffering never delays *local* visibility (the sender applies each
// update synchronously at update() time) and never blocks the caller, so
// the wait-freedom argument of Proposition 4 survives batching verbatim.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adt/concepts.hpp"
#include "core/message.hpp"

namespace ucw {

/// One update addressed to one object of the keyspace.
template <UqAdt A, typename Key = std::string>
struct KeyedUpdate {
  Key key;
  UpdateMessage<A> msg;
};

/// A batch of keyed updates shipped as a single reliable broadcast.
/// `seq` numbers the sender's envelopes (duplicate-delivery diagnostics;
/// correctness never depends on it — the per-key logs absorb replays).
template <UqAdt A, typename Key = std::string>
struct BatchEnvelope {
  std::uint64_t seq = 0;
  std::vector<KeyedUpdate<A, Key>> entries;
};

/// Fixed per-message framing cost assumed by the bytes-saved estimate:
/// transport header, sender id, length prefix. The exact constant only
/// scales the report; the *relative* saving comes from paying it once
/// per envelope instead of once per update.
inline constexpr std::size_t kFrameOverheadBytes = 24;

[[nodiscard]] inline std::size_t key_wire_bytes(const std::string& k) {
  return k.size() + 1;
}
template <typename K>
[[nodiscard]] std::size_t key_wire_bytes(const K&) {
  return sizeof(K);
}

/// Estimated wire size of an envelope: one frame plus the keyed payloads.
template <UqAdt A, typename Key>
[[nodiscard]] std::size_t wire_size(const BatchEnvelope<A, Key>& e) {
  std::size_t bytes = kFrameOverheadBytes + sizeof(e.seq);
  for (const auto& entry : e.entries) {
    bytes += key_wire_bytes(entry.key) + wire_size(entry.msg);
  }
  return bytes;
}

/// What the same entries would have cost as one broadcast per update
/// (the Algorithm-1 baseline the message-complexity bench measures).
template <UqAdt A, typename Key>
[[nodiscard]] std::size_t unbatched_wire_size(
    const BatchEnvelope<A, Key>& e) {
  std::size_t bytes = 0;
  for (const auto& entry : e.entries) {
    bytes +=
        kFrameOverheadBytes + key_wire_bytes(entry.key) + wire_size(entry.msg);
  }
  return bytes;
}

}  // namespace ucw
