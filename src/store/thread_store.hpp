// ThreadUcStore: the UCStore on the real-thread transport — a
// multi-client frontend with a wait-free read path.
//
// Unpooled (`workers == 1`, the default) this is the classic
// single-owner store: one thread calls update/query/flush freely and
// remote envelopes accumulate in the process inbox until poll() folds
// them in (update and query poll opportunistically). Batching works
// exactly as in SimUcStore — both share StoreCore — so wait-freedom is
// preserved under genuine concurrency: an update never waits on
// receivers, a flush only pays the per-peer enqueue.
//
// With `StoreConfig::workers > 1` the store becomes a real frontend:
//
//   * N *client threads* (up to `max_producers`) call update(), query()
//     and get() concurrently. update() stamps from the atomic store
//     clock (fetch-add: stamps stay unique and per-process monotone no
//     matter how many threads draw them) and enqueues to the owning
//     worker over an MPSC ring (util/mpsc_ring.hpp). FIFO per producer
//     through the ring preserves read-your-writes *per thread* via
//     query(); cross-thread interleaving is as arbitrary as network
//     delivery already is, and per-key arbitration never cared.
//   * M *worker threads* own disjoint shard-engine sets (shard → worker
//     by index mod M — stable across restarts) and apply, batch, flush,
//     and GC-fold their own engines only.
//   * get() is the wait-free read path: a hot key (any key get() has
//     read once) has a seqlock-published view the reading thread
//     copies with bounded retries — no ring, no parking behind a
//     worker tick, no locks. Cold keys fall back to the ring round
//     trip, which promotes them (query() never promotes — the hot set
//     grows only with keys actually read through get()). get() reads
//     a recent
//     *applied* state (own updates still queued in a ring may be
//     missing — the update/query split of Mostéfaoui et al.'s causal-
//     consistency work); use query() when per-thread read-your-writes
//     matters more than latency.
//   * one *router* role — whichever thread holds the router lock:
//     poll()/flush() take it, update()/query()/get() opportunistically
//     try it — drains the process inbox, observes store-wide
//     bookkeeping (stream positions, stability acks) and fans keyed
//     entries out to the owning workers' rings.
//
// Ack honesty under concurrent stamping: a pooled batch envelope ships
// ack_clock = 0 (one worker cannot vouch for the whole process stream),
// so the ack travels on the router's flush-time heartbeat. With client
// threads stamping *during* the flush, "my clock now" would overclaim —
// a thread may hold a freshly drawn stamp that no ring has seen. Each
// client thread therefore keeps a claim slot: kClaiming while it draws
// a stamp, the stamp value until the ring push lands, kIdle after. The
// router's stamp_barrier() = min(clock, oldest in-flight claim − 1):
// every stamp at or below it is provably in a ring, hence drained by
// the flush the router just ran, hence behind the heartbeat in every
// receiver's FIFO inbox. The same barrier bounds the GC self row (the
// fold rides the rings, so entries below the barrier are applied before
// their engine folds). Every participant of the protocol — producer
// registration, claim stores, the clock tick, the router's clock read,
// the scan bound and the claim scan — is seq_cst: the argument is
// about their single total order.
//
// What the pool still trades away is cross-object *causality* of
// stamps: a client thread stamps before workers finish merging remote
// clocks, so a stamp may not dominate a remote update whose entry is
// still in a ring. Update consistency never needed that dominance
// (arbitration only requires unique, per-process-monotone stamps), but
// sessions wanting causal stamps should run 1 worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/thread_network.hpp"
#include "store/store_core.hpp"
#include "store/worker_pool.hpp"

namespace ucw {

/// Process-wide id generator for ThreadUcStore instances: keys the
/// per-thread producer-slot cache, so a store reallocated at a dead
/// store's address can never inherit its slots.
inline std::uint64_t next_thread_store_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

template <UqAdt A, typename Key = std::string>
class ThreadUcStore
    : public StoreCore<A, ThreadNetwork<BatchEnvelope<A, Key>>, Key> {
  using Core = StoreCore<A, ThreadNetwork<BatchEnvelope<A, Key>>, Key>;
  using Pool = StoreWorkerPool<ThreadUcStore<A, Key>>;
  friend Pool;

 public:
  using Envelope = typename Core::Envelope;

  ThreadUcStore(A adt, ProcessId pid, ThreadNetwork<Envelope>& net,
                StoreConfig config = {})
      : Core(std::move(adt), pid, net, config), uid_(next_thread_store_uid()) {
    if (config.workers > 1) {
      UCW_CHECK(config.max_producers >= 1);
      claim_slots_ = std::make_unique<ClaimSlot[]>(config.max_producers);
      pool_ = std::make_unique<Pool>(*this, config.workers);
    }
  }

  // Derived members (the pool and its threads) are destroyed before the
  // Core base — workers stop and join while the engines still exist.
  // Caller contract: no client thread is still inside an operation.
  ~ThreadUcStore() {
    if (pool_) pool_->stop();
  }

  /// Which worker owns `key`'s shard engine (0 when unpooled). A pure
  /// function of key and config — stable across restarts. Any thread.
  [[nodiscard]] std::size_t worker_of(const Key& key) const {
    return pool_ ? pool_->worker_of(this->shard_index(key)) : 0;
  }
  /// Worker-thread count (1 when unpooled). Any thread.
  [[nodiscard]] std::size_t workers() const {
    return pool_ ? pool_->workers() : 1;
  }

  // ----- operation surface ---------------------------------------------
  // Unpooled: single owner thread, straight from StoreCore (the core
  // polls the inbox itself). Pooled: any client thread, concurrently.

  /// Wait-free keyed update. Stamps, applies (synchronously unpooled;
  /// via the owning worker's ring pooled), buffers for the next flush;
  /// returns the arbitration stamp. Never waits on any other process.
  /// Pooled: safe from up to `max_producers` concurrent client threads.
  Stamp update(const Key& key, typename A::Update u) {
    if (!pool_) return Core::update(key, u);
    (void)try_route_inbox();
    // The claim protocol around the tick (see file header): kClaiming
    // before drawing, the stamp until the ring push lands, kIdle after.
    // Everything seq_cst — stamp_barrier() reasons in the total order.
    const std::size_t producer = producer_index();
    ClaimSlot& slot = claim_slots_[producer];
    slot.claim.store(kClaiming, std::memory_order_seq_cst);
    const Stamp stamp = this->clock_.tick(std::memory_order_seq_cst);
    slot.claim.store(stamp.clock, std::memory_order_seq_cst);
    if (const auto& o = this->obs_;
        o && o->tracer && o->sampled(stamp.clock)) {
      o->tracer->instant(0, obs::TraceEventKind::kUpdateStamp, stamp.clock);
    }
    // Each client thread writes its own recorder ring (slot == producer
    // slot), so the captured per-(process, thread) chains really are
    // program order — the relation the offline auditor reasons over.
    if (this->recorder_) {
      this->recorder_->record_update(producer, key, stamp, u);
    }
    pool_->enqueue_update(this->shard_index(key), key,
                          UpdateMessage<A>{stamp, std::move(u), {}});
    slot.claim.store(kIdle, std::memory_order_release);
    return stamp;
  }

  /// Keyed query with per-thread read-your-writes: rides the owning
  /// worker's ring FIFO behind the calling thread's own updates, so the
  /// answer includes them. Blocks for the ring round trip (bounded by
  /// local work only — no remote process is waited on). Never promotes
  /// — a keyspace scan through query() must not inflate the hot set;
  /// only get() opts keys into published views. Pooled: safe from
  /// concurrent client threads.
  [[nodiscard]] typename A::QueryOut query(const Key& key,
                                           const typename A::QueryIn& qi) {
    if (!pool_) return Core::query(key, qi);
    (void)try_route_inbox();
    typename A::QueryOut out = pool_->run_query(this->shard_index(key), key,
                                                qi, /*promote=*/false);
    if (this->recorder_) {
      this->recorder_->record_query(producer_index(), key,
                                    this->clock_.now(), out);
    }
    return out;
  }

  /// The wait-free read path: a hot key answers from its seqlock-
  /// published view — bounded retries, no ring, no locks, never parks
  /// behind a worker tick. A cold key (or a view racing its publisher
  /// past the retry budget) falls back to the ring round trip, which
  /// promotes it. Reads a recent *applied* state: the calling thread's
  /// own updates still queued in a ring may be missing — use query()
  /// when read-your-writes matters more than latency. Unpooled this is
  /// exactly query(). Pooled: safe from concurrent client threads.
  [[nodiscard]] typename A::QueryOut get(const Key& key,
                                         const typename A::QueryIn& qi) {
    if (!pool_) return Core::query(key, qi);
    if (auto state = this->engine(this->shard_index(key))
                         .try_read_published(key)) {
      published_reads_.fetch_add(1, std::memory_order_relaxed);
      typename A::QueryOut out = this->adt().output(*state, qi);
      if (this->recorder_) {
        this->recorder_->record_query(producer_index(), key,
                                      this->clock_.now(), out);
      }
      return out;
    }
    ring_reads_.fetch_add(1, std::memory_order_relaxed);
    (void)try_route_inbox();
    typename A::QueryOut out = pool_->run_query(this->shard_index(key), key,
                                                qi, /*promote=*/true);
    if (this->recorder_) {
      this->recorder_->record_query(producer_index(), key,
                                    this->clock_.now(), out);
    }
    return out;
  }

  /// Drains the process inbox into the engines (via the rings, pooled).
  /// Returns envelopes folded in. Pooled: any thread (takes the router
  /// lock; concurrent callers serialize).
  std::size_t poll() {
    if (!pool_) return Core::poll();
    std::lock_guard lock(router_mutex_);
    return route_inbox_locked();
  }

  /// Ships every pending batch, heartbeats the stability ack, and runs
  /// the GC fold. Pooled: any thread, concurrently with client-thread
  /// updates — the tick serializes on the router lock, the honest-ack
  /// barrier and ring-riding fold keep it correct while updates race
  /// (see file header). Returns entries flushed.
  std::size_t flush() {
    if (!pool_) return Core::flush();
    std::lock_guard lock(router_mutex_);
    (void)route_inbox_locked();
    // The barrier *before* the flush ops: every stamp at or below it is
    // already in a ring, so the kFlush behind it drains it onto the
    // wire, and the heartbeat broadcast *after* flush_all is behind
    // those envelopes in every receiver's FIFO inbox — the ack is
    // honest. Stamps drawn after the barrier read are larger than it.
    const LogicalTime barrier = stamp_barrier();
    const std::size_t flushed = pool_->flush_all();
    this->maybe_send_ack(barrier);
    if (this->stability_) {
      // Router computes the floor (engine-free), workers fold their own
      // engines; the fold op rides the same rings as updates, so every
      // entry at or below the barrier is applied before its engine
      // folds — raising the self row to the barrier cannot fold over an
      // in-ring entry even in a 1-process cluster.
      const LogicalTime floor = this->refresh_stability_floor(barrier);
      if (floor > 0) {
        const std::size_t budget = this->config().gc_engines_per_sweep;
        const std::size_t per_worker =
            budget == 0 ? 0
                        : (budget + pool_->workers() - 1) / pool_->workers();
        (void)pool_->gc_all(floor, per_worker);
      }
    }
    // Reads only atomics (worker-side last-applied mirrors, the lag
    // histogram) plus router-guarded stats — safe while workers run.
    this->sample_convergence_obs(barrier);
    return flushed;
  }

  /// The converged state `key`'s replica currently holds. Pooled:
  /// requires external quiescence (no concurrent client ops) — it reads
  /// engine-owned state after a drain barrier. Use get() for a safe
  /// concurrent read.
  [[nodiscard]] typename A::State state_of(const Key& key) {
    sync_engines();
    return Core::state_of(key);
  }

  // Introspection below reads engine-owned state and therefore, like
  // state_of(), REQUIRES external quiescence: no client thread may be
  // inside an operation (workers keep mutating engine maps after a
  // quiesce taken mid-traffic, so "concurrent but stale" is not on
  // offer — it would race). The internal quiesce is what makes the
  // post-stop read sound: the workers' release on `processed` paired
  // with quiesce's acquire publishes the plain counters and maps to
  // this thread. For a safe concurrent read of a key, use get().
  [[nodiscard]] StoreStats stats() const {
    sync_engines();
    StoreStats s = Core::stats();
    if (pool_) pool_->merge_stats(s);
    s.published_reads = published_reads_.load(std::memory_order_relaxed);
    s.ring_reads = ring_reads_.load(std::memory_order_relaxed);
    return s;
  }
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    sync_engines();
    return Core::shard_stats();
  }
  [[nodiscard]] std::size_t pending() const {
    sync_engines();
    return Core::pending();
  }
  [[nodiscard]] std::size_t keys_live() const {
    sync_engines();
    return Core::keys_live();
  }
  [[nodiscard]] std::vector<Key> keys() const {
    sync_engines();
    return Core::keys();
  }
  [[nodiscard]] std::size_t approx_bytes() const {
    sync_engines();
    return Core::approx_bytes();
  }
  [[nodiscard]] std::uint64_t log_entries_resident() const {
    sync_engines();
    return Core::log_entries_resident();
  }

  /// Blocks until `total_entries` *distinct* keyed updates (local +
  /// remote, replays excluded) have been applied, or the inbox closes —
  /// the quiescence barrier the stress tests use. Callers must have
  /// flushed everywhere first and stopped their client threads.
  void drain_until(std::uint64_t total_entries) {
    if (!pool_) {
      (void)Core::poll();
      while (applied_entries() < total_entries) {
        auto env = this->net_->inbox(this->pid_).pop_wait();
        if (!env.has_value()) return;  // closed
        this->deliver(env->from, env->payload);
      }
      return;
    }
    for (;;) {
      {
        std::lock_guard lock(router_mutex_);
        (void)route_inbox_locked();
      }
      // The inbox is empty, but routed entries may still sit in worker
      // rings — wait them out before deciding we are short.
      pool_->quiesce();
      if (applied_entries() >= total_entries) return;
      auto env = this->net_->inbox(this->pid_).pop_wait();
      if (!env.has_value()) return;  // closed
      std::lock_guard lock(router_mutex_);
      route(env->from, env->payload);
    }
  }

  /// Distinct keyed updates this store has applied from any source;
  /// replays the per-key logs absorbed are not counted, so this reaches
  /// the global update count even under at-least-once delivery. Any
  /// thread (relaxed counters).
  [[nodiscard]] std::uint64_t applied_entries() const {
    std::uint64_t n = 0;
    for (const auto& e : this->engines_) n += e->applied_distinct();
    return n;
  }

 private:
  static constexpr std::uint64_t kIdle =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint64_t kClaiming = kIdle - 1;

  /// One client thread's stamp-in-flight slot (see file header).
  struct alignas(64) ClaimSlot {
    std::atomic<std::uint64_t> claim{kIdle};
  };

  void sync_engines() const {
    if (pool_) pool_->quiesce();
  }

  /// Lazily assigns the calling thread its claim slot, cached
  /// thread-locally and keyed by store uid (a store reallocated at a
  /// dead store's address cannot inherit entries). The common case — a
  /// thread talking to one store — hits the two-field fast path; the
  /// map only backs threads juggling several pooled stores. The
  /// registration fetch_add is seq_cst: it must precede this thread's
  /// first claim store in the single total order, or stamp_barrier()'s
  /// scan bound could miss the brand-new slot entirely (see there).
  [[nodiscard]] std::size_t producer_index() {
    thread_local std::uint64_t fast_uid = 0;  // 0 = no store cached
    thread_local std::size_t fast_slot = 0;
    if (fast_uid == uid_) return fast_slot;
    thread_local std::unordered_map<std::uint64_t, std::size_t> slots;
    const auto [it, fresh] = slots.try_emplace(uid_, 0);
    if (fresh) {
      const std::size_t i =
          producers_seen_.fetch_add(1, std::memory_order_seq_cst);
      UCW_CHECK_MSG(i < this->config().max_producers,
                    "more client threads than StoreConfig::max_producers");
      it->second = i;
    }
    fast_uid = uid_;
    fast_slot = it->second;
    return it->second;
  }

  /// The largest clock value every stamp at or below which is provably
  /// in a worker ring (or beyond). min(clock now, oldest in-flight
  /// claim − 1); spins out the (few-instruction) kClaiming windows.
  /// Router-lock holder. Everything seq_cst — see the file header for
  /// why the total order makes the scan exhaustive. That includes the
  /// scan *bound*: a producer registers (seq_cst fetch_add) before its
  /// first claim store, and claim-store <S tick <S our clock read <S
  /// this load, so a producer whose stamp the clock read covers is
  /// always inside `n` — a relaxed bound could return 0 and skip a
  /// brand-new producer's in-flight stamp.
  [[nodiscard]] LogicalTime stamp_barrier() const {
    for (;;) {
      const LogicalTime now = this->clock_.now(std::memory_order_seq_cst);
      LogicalTime barrier = now;
      bool claiming = false;
      const std::size_t n =
          std::min(producers_seen_.load(std::memory_order_seq_cst),
                   this->config().max_producers);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t c =
            claim_slots_[i].claim.load(std::memory_order_seq_cst);
        if (c == kClaiming) {
          claiming = true;
          break;
        }
        if (c != kIdle && c >= 1 && c - 1 < barrier) barrier = c - 1;
      }
      if (!claiming) return barrier;
      std::this_thread::yield();
    }
  }

  std::size_t try_route_inbox() {
    std::unique_lock lock(router_mutex_, std::try_to_lock);
    if (!lock.owns_lock()) return 0;  // someone else is routing
    return route_inbox_locked();
  }

  /// Router: drains the process inbox, observing store-wide bookkeeping
  /// (stream positions, stability acks) under the router lock, then
  /// fans the keyed entries out to their owning workers.
  std::size_t route_inbox_locked() {
    std::size_t routed = 0;
    while (auto env = this->net_->inbox(this->pid_).try_pop()) {
      route(env->from, env->payload);
      ++routed;
    }
    return routed;
  }

  void route(ProcessId from, const Envelope& e) {
    this->note_stream(from, e);
    // Router records delivery + replication lag; the owning workers
    // record the (sampled) apply events on their own tracks.
    if (const auto& o = this->obs_; o) {
      if (o->tracer && !e.entries.empty()) {
        o->tracer->instant(0, obs::TraceEventKind::kDeliver, from,
                           e.entries.size());
      }
      const LogicalTime now = this->clock_.now();
      for (const auto& entry : e.entries) {
        const LogicalTime sc = entry.msg.stamp.clock;
        if (o->sampled(sc)) {
          o->replication_lag.record(now > sc ? now - sc : 0);
        }
      }
    }
    for (const auto& entry : e.entries) {
      pool_->enqueue_remote(this->shard_index(entry.key), from, entry.key,
                            entry.msg);
    }
    // Same gap gate as the single-owner deliver() path: a gapped
    // stream's piggybacked ack proves nothing about what the partition
    // dropped (the thread transport's hold-mode partitions never drop,
    // so gaps cannot arise there today — but the gate is a soundness
    // invariant of ack observation, not a transport property).
    if (this->stability_ && e.ack_clock > 0 &&
        (this->config().unsafe_fold_acks_across_gaps ||
         !this->stream_gapped(from))) {
      this->stability_->observe_ack(from, e.ack_clock);
    }
  }

  std::uint64_t uid_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<ClaimSlot[]> claim_slots_;
  std::atomic<std::size_t> producers_seen_{0};
  /// Store-wide (not per-router) state below is guarded by this lock:
  /// peers_, stability_, stats_, gc_floor_ — everything route() and the
  /// flush tick touch outside the engines.
  mutable std::mutex router_mutex_;
  std::atomic<std::uint64_t> published_reads_{0};
  std::atomic<std::uint64_t> ring_reads_{0};
};

}  // namespace ucw
