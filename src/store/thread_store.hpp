// ThreadUcStore: the UCStore on the real-thread transport — a
// multi-client frontend with a wait-free read path.
//
// Unpooled (`workers == 1`, the default) this is the classic
// single-owner store: one thread calls update/query/flush freely and
// remote envelopes accumulate in the process inbox until poll() folds
// them in (update and query poll opportunistically). Batching works
// exactly as in SimUcStore — both share StoreCore — so wait-freedom is
// preserved under genuine concurrency: an update never waits on
// receivers, a flush only pays the per-peer enqueue.
//
// With `StoreConfig::workers > 1` the store becomes a real frontend:
//
//   * N *client threads* (up to `max_producers`) call update(), query()
//     and get() concurrently. update() stamps from the atomic store
//     clock (fetch-add: stamps stay unique and per-process monotone no
//     matter how many threads draw them) and enqueues to the owning
//     worker over an MPSC ring (util/mpsc_ring.hpp). FIFO per producer
//     through the ring preserves read-your-writes *per thread* via
//     query(); cross-thread interleaving is as arbitrary as network
//     delivery already is, and per-key arbitration never cared.
//   * M *worker threads* own disjoint shard-engine sets (shard → worker
//     by index mod M — stable across restarts) and apply, batch, flush,
//     and GC-fold their own engines only.
//   * get() is the wait-free read path: a hot key (any key get() has
//     read once) has a seqlock-published view the reading thread loads
//     as an immutable shared snapshot with bounded retries — ZERO state
//     copies, no ring, no parking behind a worker tick, no locks. Cold
//     keys fall back to the ring round trip, which promotes them
//     (query() never promotes — the hot set grows only with keys
//     actually read through get()). get() is also read-your-writes per
//     thread: every update() returns after recording a ring-position
//     ticket, and get() serves from the view only once the owning
//     worker's processed count passed the caller's last ticket for that
//     worker — otherwise it falls back to the ring (FIFO behind the
//     caller's own updates, counted in `ryw_ring_fallbacks`).
//   * network *delivery* is inbox-sharded: any thread that notices
//     inbound envelopes (update/query/get try, poll/flush insist)
//     drains the process inbox under a dedicated delivery spinlock — a
//     try-lock, never the router lock — and pushes each envelope's
//     entries straight into the owning workers' remote inboxes with
//     only a shard-index computation. The envelope *header* (epoch,
//     seq, ack clock) is queued on a small duty ring for the router.
//   * the *router* role — whichever thread holds the router lock:
//     poll()/flush() take it — is off the per-op hot path entirely: it
//     drains the duty ring (stream positions, stability acks), runs
//     the flush/heartbeat/GC tick, and owns recovery bookkeeping.
//     StoreConfig::router_delivery restores the old fan-out-under-the-
//     router-lock path as a measurable comparison arm (bench E14).
//
// Ack honesty under concurrent stamping: a pooled batch envelope ships
// ack_clock = 0 (one worker cannot vouch for the whole process stream),
// so the ack travels on the router's flush-time heartbeat. With client
// threads stamping *during* the flush, "my clock now" would overclaim —
// a thread may hold a freshly drawn stamp that no ring has seen. Each
// client thread therefore keeps a claim slot: kClaiming while it draws
// a stamp, the stamp value until the ring push lands, kIdle after. The
// router's stamp_barrier() = min(clock, oldest in-flight claim − 1):
// every stamp at or below it is provably in a ring, hence drained by
// the flush the router just ran, hence behind the heartbeat in every
// receiver's FIFO inbox. The same barrier bounds the GC self row (the
// fold rides the rings, so entries below the barrier are applied before
// their engine folds). Every participant of the protocol — producer
// registration, claim stores, the clock tick, the router's clock read,
// the scan bound and the claim scan — is seq_cst: the argument is
// about their single total order. update_batch() extends the protocol
// to multi-slot claims: one tick_n draws k consecutive stamps and the
// slot holds the SMALLEST of them until every multi-slot push lands, so
// the barrier stays below the whole batch while any of it is in flight.
//
// Ack honesty on the *receiving* side of sharded delivery: an
// envelope's entries are pushed into worker remote inboxes strictly
// before its header note is pushed onto the duty ring, so by the time
// the router observes the piggybacked ack, the entries it vouches for
// are already in inboxes — and a worker drains its remote inbox before
// every GC fold (worker_pool.hpp), so the floor that ack feeds can
// never fold over an entry still in flight.
//
// What the pool still trades away is cross-object *causality* of
// stamps: a client thread stamps before workers finish merging remote
// clocks, so a stamp may not dominate a remote update whose entry is
// still in a ring. Update consistency never needed that dominance
// (arbitration only requires unique, per-process-monotone stamps), but
// sessions wanting causal stamps should run 1 worker.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/thread_network.hpp"
#include "store/store_core.hpp"
#include "store/worker_pool.hpp"
#include "util/mpsc_ring.hpp"

namespace ucw {

/// Process-wide id generator for ThreadUcStore instances: keys the
/// per-thread producer-slot cache, so a store reallocated at a dead
/// store's address can never inherit its slots.
inline std::uint64_t next_thread_store_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The real-concurrency frontend, generic over the transport: `Net`
/// defaults to the in-process ThreadNetwork (the classic thread store),
/// and any transport exposing the same `inbox(pid)` pull surface — the
/// UDP socket transport in net/udp_transport.hpp — slots in unchanged.
/// StoreCore's concept detection does the rest: a transport that also
/// offers p2p sends and epochs (UDP does) lights up catch-up and
/// anti-entropy, one that offers partitions (ThreadNetwork) keeps its
/// hold-mode semantics.
template <UqAdt A, typename Key = std::string,
          typename Net = ThreadNetwork<BatchEnvelope<A, Key>>>
class ThreadUcStore : public StoreCore<A, Net, Key> {
  using Core = StoreCore<A, Net, Key>;
  using Pool = StoreWorkerPool<ThreadUcStore<A, Key, Net>>;
  friend Pool;

 public:
  using Envelope = typename Core::Envelope;

  ThreadUcStore(A adt, ProcessId pid, Net& net, StoreConfig config = {})
      : Core(std::move(adt), pid, net, config), uid_(next_thread_store_uid()) {
    if (config.workers > 1) {
      UCW_CHECK(config.max_producers >= 1);
      claim_slots_ = std::make_unique<ClaimSlot[]>(config.max_producers);
      for (std::size_t i = 0; i < config.max_producers; ++i) {
        claim_slots_[i].last_ticket =
            std::make_unique<std::uint64_t[]>(config.workers);
        for (std::size_t w = 0; w < config.workers; ++w) {
          claim_slots_[i].last_ticket[w] = Pool::kNoTicket;
        }
      }
      scratch_batches_.resize(config.workers);
      pool_ = std::make_unique<Pool>(*this, config.workers);
    }
  }

  // Derived members (the pool and its threads) are destroyed before the
  // Core base — workers stop and join while the engines still exist.
  // Caller contract: no client thread is still inside an operation.
  ~ThreadUcStore() {
    if (pool_) pool_->stop();
  }

  /// Which worker owns `key`'s shard engine (0 when unpooled). A pure
  /// function of key and config — stable across restarts. Any thread.
  [[nodiscard]] std::size_t worker_of(const Key& key) const {
    return pool_ ? pool_->worker_of(this->shard_index(key)) : 0;
  }
  /// Worker-thread count (1 when unpooled). Any thread.
  [[nodiscard]] std::size_t workers() const {
    return pool_ ? pool_->workers() : 1;
  }

  // ----- operation surface ---------------------------------------------
  // Unpooled: single owner thread, straight from StoreCore (the core
  // polls the inbox itself). Pooled: any client thread, concurrently.

  /// Wait-free keyed update. Stamps, applies (synchronously unpooled;
  /// via the owning worker's ring pooled), buffers for the next flush;
  /// returns the arbitration stamp. Never waits on any other process.
  /// Pooled: safe from up to `max_producers` concurrent client threads.
  Stamp update(const Key& key, typename A::Update u) {
    if (!pool_) return Core::update(key, u);
    (void)try_deliver_inbox();
    // The claim protocol around the tick (see file header): kClaiming
    // before drawing, the stamp until the ring push lands, kIdle after.
    // Everything seq_cst — stamp_barrier() reasons in the total order.
    const std::size_t producer = producer_index();
    ClaimSlot& slot = claim_slots_[producer];
    slot.claim.store(kClaiming, std::memory_order_seq_cst);
    const Stamp stamp = this->clock_.tick(std::memory_order_seq_cst);
    slot.claim.store(stamp.clock, std::memory_order_seq_cst);
    if (const auto& o = this->obs_;
        o && o->tracer && o->sampled(stamp.clock)) {
      o->tracer->instant(0, obs::TraceEventKind::kUpdateStamp, stamp.clock);
    }
    // Each client thread writes its own recorder ring (slot == producer
    // slot), so the captured per-(process, thread) chains really are
    // program order — the relation the offline auditor reasons over.
    if (this->recorder_) {
      this->recorder_->record_update(producer, key, stamp, u);
    }
    const std::size_t engine = this->shard_index(key);
    const std::uint64_t ticket = pool_->enqueue_update(
        engine, key, UpdateMessage<A>{stamp, std::move(u), {}});
    slot.claim.store(kIdle, std::memory_order_release);
    // The returned stamp doubles as this thread's session token: the
    // ticket recorded here is what get() checks to honor read-your-
    // writes automatically (no token passing needed).
    slot.last_ticket[pool_->worker_of(engine)] = ticket;
    return stamp;
  }

  /// Batched wait-free updates: stamps all k ops with ONE clock
  /// fetch-add (tick_n — op i gets clock first+i, so stamps stay unique
  /// and per-producer monotone) and enqueues each owning worker's group
  /// with one multi-slot ring claim (one CAS per worker touched, not
  /// per op). Returns the arbitration stamps in input order. Ack
  /// honesty under multi-slot claims: the claim slot holds the SMALLEST
  /// stamp of the batch from before the first push until the last one
  /// lands, so stamp_barrier() stays below the entire batch while any
  /// of it is in flight. FIFO per producer is preserved — each group
  /// occupies contiguous ring positions in input order. Consumes `ops`
  /// (elements are moved out; the vector is left cleared with its
  /// capacity intact, so a caller looping batches reuses one buffer
  /// allocation-free). Pooled: safe from concurrent client threads;
  /// unpooled it degenerates to a loop of plain updates.
  std::vector<Stamp> update_batch(
      std::vector<std::pair<Key, typename A::Update>>& ops) {
    std::vector<Stamp> stamps;
    if (ops.empty()) return stamps;
    stamps.reserve(ops.size());
    if (!pool_) {
      for (auto& [key, u] : ops) {
        stamps.push_back(Core::update(key, std::move(u)));
      }
      ops.clear();
      return stamps;
    }
    (void)try_deliver_inbox();
    const std::size_t producer = producer_index();
    ClaimSlot& slot = claim_slots_[producer];
    slot.claim.store(kClaiming, std::memory_order_seq_cst);
    const Stamp first =
        this->clock_.tick_n(ops.size(), std::memory_order_seq_cst);
    slot.claim.store(first.clock, std::memory_order_seq_cst);
    const std::size_t nw = pool_->workers();
    // Thread-local grouping scratch: cleared group-by-group after each
    // enqueue below, so steady-state batches allocate only the
    // returned stamps vector.
    static thread_local std::vector<
        std::vector<typename Pool::BatchUpdate>>
        groups;
    if (groups.size() < nw) groups.resize(nw);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const Stamp stamp{first.clock + i, first.pid};
      stamps.push_back(stamp);
      if (const auto& o = this->obs_;
          o && o->tracer && o->sampled(stamp.clock)) {
        o->tracer->instant(0, obs::TraceEventKind::kUpdateStamp,
                           stamp.clock);
      }
      if (this->recorder_) {
        this->recorder_->record_update(producer, ops[i].first, stamp,
                                       ops[i].second);
      }
      const std::size_t engine = this->shard_index(ops[i].first);
      groups[pool_->worker_of(engine)].push_back(
          {static_cast<std::uint32_t>(engine), std::move(ops[i].first),
           UpdateMessage<A>{stamp, std::move(ops[i].second), {}}});
    }
    for (std::size_t w = 0; w < nw; ++w) {
      if (groups[w].empty()) continue;
      const std::uint64_t group_ops = groups[w].size();
      std::uint64_t claims = 0;
      const std::uint64_t ticket =
          pool_->enqueue_update_batch(w, groups[w], &claims);
      slot.last_ticket[w] = ticket;
      if (group_ops > 1) {
        ring_batch_claims_.fetch_add(claims, std::memory_order_relaxed);
        ring_batch_ops_.fetch_add(group_ops, std::memory_order_relaxed);
      }
    }
    slot.claim.store(kIdle, std::memory_order_release);
    ops.clear();  // inputs were moved from; capacity stays for reuse
    return stamps;
  }

  /// Keyed query with per-thread read-your-writes: rides the owning
  /// worker's ring FIFO behind the calling thread's own updates, so the
  /// answer includes them. Blocks for the ring round trip (bounded by
  /// local work only — no remote process is waited on). Never promotes
  /// — a keyspace scan through query() must not inflate the hot set;
  /// only get() opts keys into published views. Pooled: safe from
  /// concurrent client threads.
  [[nodiscard]] typename A::QueryOut query(const Key& key,
                                           const typename A::QueryIn& qi) {
    if (!pool_) return Core::query(key, qi);
    (void)try_deliver_inbox();
    typename A::QueryOut out = pool_->run_query(this->shard_index(key), key,
                                                qi, /*promote=*/false);
    if (this->recorder_) {
      this->recorder_->record_query(producer_index(), key,
                                    this->clock_.now(), out);
    }
    return out;
  }

  /// The wait-free read path: a hot key answers from its seqlock-
  /// published view — an immutable shared snapshot, ZERO state copies,
  /// bounded retries, no ring, no locks, never parks behind a worker
  /// tick. A cold key (or a view racing its publisher past the retry
  /// budget) falls back to the ring round trip, which promotes it.
  /// Read-your-writes per thread: the view is served only when the
  /// owning worker's processed count passed the calling thread's last
  /// update ticket for that worker (the stamp update() returned doubles
  /// as the session token — tracked internally, nothing to pass).
  /// Otherwise get() takes the ring round trip, which dequeues FIFO
  /// behind the caller's own updates (`ryw_ring_fallbacks` counts
  /// these). Unpooled this is exactly query(). Pooled: safe from
  /// concurrent client threads.
  [[nodiscard]] typename A::QueryOut get(const Key& key,
                                         const typename A::QueryIn& qi) {
    if (!pool_) return Core::query(key, qi);
    const std::size_t engine = this->shard_index(key);
    const std::size_t w = pool_->worker_of(engine);
    const std::size_t producer = producer_index();
    const std::uint64_t ticket = claim_slots_[producer].last_ticket[w];
    // Ticket check BEFORE the view read: the worker publishes the view
    // during the apply and only then releases `processed`, so the
    // acquire load here passing the ticket orders the snapshot read
    // after this thread's own last write to that worker.
    const bool own_writes_visible =
        ticket == Pool::kNoTicket || pool_->worker_processed(w) > ticket;
    if (own_writes_visible) {
      if (auto state = this->engine(engine).try_read_published(key)) {
        published_reads_.fetch_add(1, std::memory_order_relaxed);
        typename A::QueryOut out;
        if (this->config().router_delivery) {
          // Comparison arm: the pre-rework read copied the state out
          // of the seqlock before producing the answer.
          const typename A::State copy = *state;
          out = this->adt().output(copy, qi);
        } else {
          zero_copy_reads_.fetch_add(1, std::memory_order_relaxed);
          out = this->adt().output(*state, qi);
        }
        if (this->recorder_) {
          this->recorder_->record_query(producer, key, this->clock_.now(),
                                        out);
        }
        return out;
      }
    } else {
      ryw_ring_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    }
    ring_reads_.fetch_add(1, std::memory_order_relaxed);
    (void)try_deliver_inbox();
    typename A::QueryOut out =
        pool_->run_query(engine, key, qi, /*promote=*/true);
    if (this->recorder_) {
      this->recorder_->record_query(producer, key, this->clock_.now(), out);
    }
    return out;
  }

  /// The raw zero-copy primitive behind get(): the immutable shared
  /// snapshot of a hot key's published state, or nullptr when the key
  /// is cold (never promoted through get()) or the store is unpooled.
  /// The pointee NEVER changes — later applies publish new snapshots;
  /// holding the pointer pins this version only. Any thread.
  [[nodiscard]] std::shared_ptr<const typename A::State> try_get_snapshot(
      const Key& key) {
    if (!pool_) return nullptr;
    return this->engine(this->shard_index(key)).try_read_published(key);
  }

  /// Drains the process inbox into the engines (via the rings, pooled).
  /// Returns envelopes folded in. Pooled: any thread; the duty-ring
  /// drain serializes on the router lock.
  std::size_t poll() {
    if (!pool_) return Core::poll();
    if (this->config().router_delivery) {
      std::lock_guard lock(router_mutex_);
      return route_inbox_locked();
    }
    const std::size_t delivered = try_deliver_inbox();
    std::lock_guard lock(router_mutex_);
    (void)drain_duty_locked();
    return delivered;
  }

  /// Ships every pending batch, heartbeats the stability ack, and runs
  /// the GC fold. Pooled: any thread, concurrently with client-thread
  /// updates — the tick serializes on the router lock, the honest-ack
  /// barrier and ring-riding fold keep it correct while updates race
  /// (see file header). Returns entries flushed.
  std::size_t flush() {
    if (!pool_) return Core::flush();
    std::lock_guard lock(router_mutex_);
    if (this->config().router_delivery) {
      (void)route_inbox_locked();
    } else {
      (void)try_deliver_inbox();
      (void)drain_duty_locked();
    }
    // The barrier *before* the flush ops: every stamp at or below it is
    // already in a ring, so the kFlush behind it drains it onto the
    // wire, and the heartbeat broadcast *after* flush_all is behind
    // those envelopes in every receiver's FIFO inbox — the ack is
    // honest. Stamps drawn after the barrier read are larger than it.
    const LogicalTime barrier = stamp_barrier();
    const std::size_t flushed = pool_->flush_all();
    this->maybe_send_ack(barrier);
    if (this->stability_) {
      // Router computes the floor (engine-free), workers fold their own
      // engines; the fold op rides the same rings as updates, so every
      // entry at or below the barrier is applied before its engine
      // folds — raising the self row to the barrier cannot fold over an
      // in-ring entry even in a 1-process cluster.
      const LogicalTime floor = this->refresh_stability_floor(barrier);
      if (floor > 0) {
        const std::size_t budget = this->config().gc_engines_per_sweep;
        const std::size_t per_worker =
            budget == 0 ? 0
                        : (budget + pool_->workers() - 1) / pool_->workers();
        (void)pool_->gc_all(floor, per_worker);
      }
    }
    // Reads only atomics (worker-side last-applied mirrors, the lag
    // histogram) plus router-guarded stats — safe while workers run.
    this->sample_convergence_obs(barrier);
    return flushed;
  }

  /// The converged state `key`'s replica currently holds. Pooled:
  /// requires external quiescence (no concurrent client ops) — it reads
  /// engine-owned state after a drain barrier. Use get() for a safe
  /// concurrent read.
  [[nodiscard]] typename A::State state_of(const Key& key) {
    sync_engines();
    return Core::state_of(key);
  }

  // Introspection below reads engine-owned state and therefore, like
  // state_of(), REQUIRES external quiescence: no client thread may be
  // inside an operation (workers keep mutating engine maps after a
  // quiesce taken mid-traffic, so "concurrent but stale" is not on
  // offer — it would race). The internal quiesce is what makes the
  // post-stop read sound: the workers' release on `processed` paired
  // with quiesce's acquire publishes the plain counters and maps to
  // this thread. For a safe concurrent read of a key, use get().
  [[nodiscard]] StoreStats stats() const {
    sync_engines();
    StoreStats s = Core::stats();
    if (pool_) pool_->merge_stats(s);
    s.published_reads = published_reads_.load(std::memory_order_relaxed);
    s.ring_reads = ring_reads_.load(std::memory_order_relaxed);
    s.inbox_deliveries = inbox_deliveries_.load(std::memory_order_relaxed);
    s.router_deliveries =
        router_deliveries_.load(std::memory_order_relaxed);
    s.ring_batch_claims =
        ring_batch_claims_.load(std::memory_order_relaxed);
    s.ring_batch_ops = ring_batch_ops_.load(std::memory_order_relaxed);
    s.zero_copy_reads = zero_copy_reads_.load(std::memory_order_relaxed);
    s.ryw_ring_fallbacks =
        ryw_ring_fallbacks_.load(std::memory_order_relaxed);
    return s;
  }
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    sync_engines();
    return Core::shard_stats();
  }
  [[nodiscard]] std::size_t pending() const {
    sync_engines();
    return Core::pending();
  }
  [[nodiscard]] std::size_t keys_live() const {
    sync_engines();
    return Core::keys_live();
  }
  [[nodiscard]] std::vector<Key> keys() const {
    sync_engines();
    return Core::keys();
  }
  [[nodiscard]] std::size_t approx_bytes() const {
    sync_engines();
    return Core::approx_bytes();
  }
  [[nodiscard]] std::uint64_t log_entries_resident() const {
    sync_engines();
    return Core::log_entries_resident();
  }

  /// Blocks until `total_entries` *distinct* keyed updates (local +
  /// remote, replays excluded) have been applied, or the inbox closes —
  /// the quiescence barrier the stress tests use. Callers must have
  /// flushed everywhere first and stopped their client threads.
  void drain_until(std::uint64_t total_entries) {
    if (!pool_) {
      (void)Core::poll();
      while (applied_entries() < total_entries) {
        auto env = this->net_->inbox(this->pid_).pop_wait();
        if (!env.has_value()) return;  // closed
        this->deliver(env->from, env->payload);
      }
      return;
    }
    for (;;) {
      if (this->config().router_delivery) {
        std::lock_guard lock(router_mutex_);
        (void)route_inbox_locked();
      } else {
        (void)try_deliver_inbox();
        std::lock_guard lock(router_mutex_);
        (void)drain_duty_locked();
      }
      // The inbox is empty, but delivered entries may still sit in
      // worker rings/inboxes — wait them out before deciding short.
      pool_->quiesce();
      if (applied_entries() >= total_entries) return;
      auto env = this->net_->inbox(this->pid_).pop_wait();
      if (!env.has_value()) return;  // closed
      if (this->config().router_delivery) {
        std::lock_guard lock(router_mutex_);
        route(env->from, env->payload);
      } else {
        while (deliver_lock_.test_and_set(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        deliver_sharded(env->from, std::move(env->payload));
        deliver_lock_.clear(std::memory_order_release);
      }
    }
  }

  /// Distinct keyed updates this store has applied from any source;
  /// replays the per-key logs absorbed are not counted, so this reaches
  /// the global update count even under at-least-once delivery. Any
  /// thread (relaxed counters).
  [[nodiscard]] std::uint64_t applied_entries() const {
    std::uint64_t n = 0;
    for (const auto& e : this->engines_) n += e->applied_distinct();
    return n;
  }

 private:
  static constexpr std::uint64_t kIdle =
      std::numeric_limits<std::uint64_t>::max();
  static constexpr std::uint64_t kClaiming = kIdle - 1;

  /// One client thread's stamp-in-flight slot (see file header), plus
  /// its read-your-writes tickets: `last_ticket[w]` is the ring
  /// position of this thread's newest update enqueued to worker w
  /// (Pool::kNoTicket = none yet). Plain storage — only the owning
  /// thread ever touches its own slot's tickets.
  struct alignas(64) ClaimSlot {
    std::atomic<std::uint64_t> claim{kIdle};
    std::unique_ptr<std::uint64_t[]> last_ticket;
  };

  /// A delivered envelope's header, queued for the router's stream/ack
  /// bookkeeping while its entries go straight to worker inboxes.
  struct StreamNote {
    ProcessId from = 0;
    std::uint64_t epoch = 0;
    std::uint64_t seq = 0;
    LogicalTime ack_clock = 0;
  };

  void sync_engines() const {
    if (pool_) pool_->quiesce();
  }

  /// Lazily assigns the calling thread its claim slot, cached
  /// thread-locally and keyed by store uid (a store reallocated at a
  /// dead store's address cannot inherit entries). The common case — a
  /// thread talking to one store — hits the two-field fast path; the
  /// map only backs threads juggling several pooled stores. The
  /// registration fetch_add is seq_cst: it must precede this thread's
  /// first claim store in the single total order, or stamp_barrier()'s
  /// scan bound could miss the brand-new slot entirely (see there).
  [[nodiscard]] std::size_t producer_index() {
    thread_local std::uint64_t fast_uid = 0;  // 0 = no store cached
    thread_local std::size_t fast_slot = 0;
    if (fast_uid == uid_) return fast_slot;
    thread_local std::unordered_map<std::uint64_t, std::size_t> slots;
    const auto [it, fresh] = slots.try_emplace(uid_, 0);
    if (fresh) {
      const std::size_t i =
          producers_seen_.fetch_add(1, std::memory_order_seq_cst);
      UCW_CHECK_MSG(i < this->config().max_producers,
                    "more client threads than StoreConfig::max_producers");
      it->second = i;
    }
    fast_uid = uid_;
    fast_slot = it->second;
    return it->second;
  }

  /// The largest clock value every stamp at or below which is provably
  /// in a worker ring (or beyond). min(clock now, oldest in-flight
  /// claim − 1); spins out the (few-instruction) kClaiming windows.
  /// Router-lock holder. Everything seq_cst — see the file header for
  /// why the total order makes the scan exhaustive. That includes the
  /// scan *bound*: a producer registers (seq_cst fetch_add) before its
  /// first claim store, and claim-store <S tick <S our clock read <S
  /// this load, so a producer whose stamp the clock read covers is
  /// always inside `n` — a relaxed bound could return 0 and skip a
  /// brand-new producer's in-flight stamp.
  [[nodiscard]] LogicalTime stamp_barrier() const {
    for (;;) {
      const LogicalTime now = this->clock_.now(std::memory_order_seq_cst);
      LogicalTime barrier = now;
      bool claiming = false;
      const std::size_t n =
          std::min(producers_seen_.load(std::memory_order_seq_cst),
                   this->config().max_producers);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t c =
            claim_slots_[i].claim.load(std::memory_order_seq_cst);
        if (c == kClaiming) {
          claiming = true;
          break;
        }
        if (c != kIdle && c >= 1 && c - 1 < barrier) barrier = c - 1;
      }
      if (!claiming) return barrier;
      std::this_thread::yield();
    }
  }

  /// The default delivery entry point (any thread, NO router lock):
  /// try-acquires the dedicated delivery spinlock — the serialization
  /// that keeps per-sender envelope order intact on the way into worker
  /// inboxes — and drains the process inbox. A losing thread returns
  /// immediately (someone else is delivering). With router_delivery set
  /// this degrades to the legacy router-locked fan-out.
  std::size_t try_deliver_inbox() {
    if (this->config().router_delivery) return try_route_inbox();
    if (deliver_lock_.test_and_set(std::memory_order_acquire)) return 0;
    std::size_t delivered = 0;
    while (auto env = this->net_->inbox(this->pid_).try_pop()) {
      deliver_sharded(env->from, std::move(env->payload));
      ++delivered;
    }
    deliver_lock_.clear(std::memory_order_release);
    return delivered;
  }

  /// Sharded delivery of one envelope (delivery-lock holder): partition
  /// its entries by owning worker with a shard-index computation each,
  /// push each touched worker's group straight into that worker's
  /// remote inbox (one multi-slot claim; no allocation — the scratch
  /// groups keep their capacity — and no key/payload copies: delivery
  /// owns the popped envelope, entries MOVE through the scratch into
  /// the ring slots), then queue the envelope header on the duty
  /// ring for the router's stream/ack bookkeeping. ORDER IS LOAD-
  /// BEARING: entries land in inboxes strictly before the header note
  /// is visible to the router, so an ack the router observes only ever
  /// vouches for entries already in worker inboxes — and workers drain
  /// those before any GC fold (see worker_pool.hpp).
  void deliver_sharded(ProcessId from, Envelope&& e) {
    if (const auto& o = this->obs_; o) {
      // Tracer rings are multi-writer safe (fetch_add slot claim) and
      // the lag histogram is atomic — safe without the router lock.
      if (o->tracer && !e.entries.empty()) {
        o->tracer->instant(0, obs::TraceEventKind::kDeliver, from,
                           e.entries.size());
      }
      const LogicalTime now = this->clock_.now();
      for (const auto& entry : e.entries) {
        const LogicalTime sc = entry.msg.stamp.clock;
        if (o->sampled(sc)) {
          o->replication_lag.record(now > sc ? now - sc : 0);
        }
      }
    }
    const std::size_t nw = pool_->workers();
    for (auto& entry : e.entries) {
      const std::size_t engine = this->shard_index(entry.key);
      scratch_batches_[pool_->worker_of(engine)].push_back(
          {static_cast<std::uint32_t>(engine), from, std::move(entry.key),
           std::move(entry.msg)});
    }
    for (std::size_t w = 0; w < nw; ++w) {
      if (scratch_batches_[w].empty()) continue;
      // Not counted in ring_batch_claims_: those meter producer-side
      // multi-slot claims on the worker op rings.
      pool_->deliver_remote(w, scratch_batches_[w]);
    }
    inbox_deliveries_.fetch_add(e.entries.size(),
                                std::memory_order_relaxed);
    StreamNote note{from, e.epoch, e.seq, e.ack_clock};
    while (!duty_ring_.try_push(std::move(note))) {
      // Duty ring full — the router has not ticked in a long while.
      // Become the router briefly if the lock is free; otherwise the
      // holder is draining right now, just wait it out.
      std::unique_lock lock(router_mutex_, std::try_to_lock);
      if (lock.owns_lock()) {
        (void)drain_duty_locked();
      } else {
        std::this_thread::yield();
      }
    }
  }

  /// Router duty (router-lock holder): folds queued envelope headers
  /// into the store-wide stream/stability bookkeeping. The duty ring's
  /// single consumer is whoever holds the router lock, so per-sender
  /// note order (the delivery lock serialized the pushes) is preserved
  /// into note_stream.
  std::size_t drain_duty_locked() {
    std::size_t drained = 0;
    while (auto note = duty_ring_.try_pop()) {
      Envelope header{};
      header.epoch = note->epoch;
      header.seq = note->seq;
      header.ack_clock = note->ack_clock;
      this->note_stream(note->from, header);
      // Same gap gate as route(): a gapped stream's piggybacked ack
      // proves nothing about what a partition dropped.
      if (this->stability_ && note->ack_clock > 0 &&
          (this->config().fault.is(Fault::kFoldAcksAcrossGaps) ||
           !this->stream_gapped(note->from))) {
        this->stability_->observe_ack(note->from, note->ack_clock);
      }
      ++drained;
    }
    return drained;
  }

  std::size_t try_route_inbox() {
    std::unique_lock lock(router_mutex_, std::try_to_lock);
    if (!lock.owns_lock()) return 0;  // someone else is routing
    return route_inbox_locked();
  }

  /// Router: drains the process inbox, observing store-wide bookkeeping
  /// (stream positions, stability acks) under the router lock, then
  /// fans the keyed entries out to their owning workers.
  std::size_t route_inbox_locked() {
    std::size_t routed = 0;
    while (auto env = this->net_->inbox(this->pid_).try_pop()) {
      route(env->from, env->payload);
      ++routed;
    }
    return routed;
  }

  void route(ProcessId from, const Envelope& e) {
    this->note_stream(from, e);
    // Router records delivery + replication lag; the owning workers
    // record the (sampled) apply events on their own tracks.
    if (const auto& o = this->obs_; o) {
      if (o->tracer && !e.entries.empty()) {
        o->tracer->instant(0, obs::TraceEventKind::kDeliver, from,
                           e.entries.size());
      }
      const LogicalTime now = this->clock_.now();
      for (const auto& entry : e.entries) {
        const LogicalTime sc = entry.msg.stamp.clock;
        if (o->sampled(sc)) {
          o->replication_lag.record(now > sc ? now - sc : 0);
        }
      }
    }
    for (const auto& entry : e.entries) {
      pool_->enqueue_remote(this->shard_index(entry.key), from, entry.key,
                            entry.msg);
    }
    router_deliveries_.fetch_add(e.entries.size(),
                                 std::memory_order_relaxed);
    // Same gap gate as the single-owner deliver() path: a gapped
    // stream's piggybacked ack proves nothing about what the partition
    // dropped (the thread transport's hold-mode partitions never drop,
    // so gaps cannot arise there today — but the gate is a soundness
    // invariant of ack observation, not a transport property).
    if (this->stability_ && e.ack_clock > 0 &&
        (this->config().fault.is(Fault::kFoldAcksAcrossGaps) ||
         !this->stream_gapped(from))) {
      this->stability_->observe_ack(from, e.ack_clock);
    }
  }

  std::uint64_t uid_;
  std::unique_ptr<Pool> pool_;
  std::unique_ptr<ClaimSlot[]> claim_slots_;
  std::atomic<std::size_t> producers_seen_{0};
  /// Store-wide (not per-router) state below is guarded by this lock:
  /// peers_, stability_, stats_, gc_floor_ — everything route() and the
  /// flush tick touch outside the engines.
  mutable std::mutex router_mutex_;
  /// Delivery spinlock: serializes sharded inbox drains (per-sender
  /// envelope order into worker inboxes) without ever touching the
  /// router lock. try-acquired from the op surface, spin-acquired only
  /// in drain_until.
  std::atomic_flag deliver_lock_ = ATOMIC_FLAG_INIT;
  /// Envelope headers awaiting the router (single consumer: whoever
  /// holds router_mutex_). Sized so even a long gap between router
  /// ticks cannot fill it under realistic envelope rates; when it does
  /// fill, the delivery path drains it itself under a try-lock.
  MpscRing<StreamNote> duty_ring_{4096};
  /// Per-worker envelope-slice assembly buffers; deliver-lock holder
  /// only (reused across envelopes to avoid per-delivery allocation).
  /// Per-worker grouping scratch for deliver_sharded (delivery-lock
  /// holder only); deliver_remote clears each group with capacity
  /// intact, so steady-state delivery allocates nothing.
  std::vector<std::vector<typename Pool::RemoteItem>> scratch_batches_;
  std::atomic<std::uint64_t> published_reads_{0};
  std::atomic<std::uint64_t> ring_reads_{0};
  std::atomic<std::uint64_t> inbox_deliveries_{0};
  std::atomic<std::uint64_t> router_deliveries_{0};
  std::atomic<std::uint64_t> ring_batch_claims_{0};
  std::atomic<std::uint64_t> ring_batch_ops_{0};
  std::atomic<std::uint64_t> zero_copy_reads_{0};
  std::atomic<std::uint64_t> ryw_ring_fallbacks_{0};
};

}  // namespace ucw
