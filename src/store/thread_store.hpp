// ThreadUcStore: the UCStore on the real-thread transport.
//
// One store per OS thread, same single-owner discipline as
// ThreadUcObject: the owning thread calls update/query/flush freely and
// remote envelopes accumulate in the process inbox until poll() folds
// them in (update and query poll opportunistically). Batching works
// exactly as in SimUcStore — both share StoreCore — so wait-freedom is
// preserved under genuine concurrency: an update never waits on
// receivers, a flush only pays the per-peer enqueue.
#pragma once

#include <cstdint>
#include <string>

#include "net/thread_network.hpp"
#include "store/store_core.hpp"

namespace ucw {

template <UqAdt A, typename Key = std::string>
class ThreadUcStore
    : public StoreCore<A, ThreadNetwork<BatchEnvelope<A, Key>>, Key> {
  using Core = StoreCore<A, ThreadNetwork<BatchEnvelope<A, Key>>, Key>;

 public:
  using Envelope = typename Core::Envelope;

  ThreadUcStore(A adt, ProcessId pid, ThreadNetwork<Envelope>& net,
                StoreConfig config = {})
      : Core(std::move(adt), pid, net, config) {}

  // update(), query() and poll() come from StoreCore — the core polls
  // the inbox itself on pollable transports, so access through a
  // StoreCore& behaves identically.

  /// Blocks until `total_entries` *distinct* keyed updates (local +
  /// remote, replays excluded) have been applied, or the inbox closes —
  /// the quiescence barrier the stress tests use. Callers must have
  /// flushed everywhere first.
  void drain_until(std::uint64_t total_entries) {
    this->poll();
    while (applied_entries() < total_entries) {
      auto env = this->net_->inbox(this->pid_).pop_wait();
      if (!env.has_value()) return;  // closed
      this->deliver(env->from, env->payload);
    }
  }

  /// Distinct keyed updates this store has applied from any source;
  /// replays the per-key logs absorbed are not counted, so this reaches
  /// the global update count even under at-least-once delivery.
  [[nodiscard]] std::uint64_t applied_entries() const {
    return this->stats().local_updates + this->stats().remote_entries -
           this->stats().duplicate_entries;
  }
};

}  // namespace ucw
