// ThreadUcStore: the UCStore on the real-thread transport.
//
// One store per *owner* thread, same single-owner discipline as
// ThreadUcObject: the owning thread calls update/query/flush freely and
// remote envelopes accumulate in the process inbox until poll() folds
// them in (update and query poll opportunistically). Batching works
// exactly as in SimUcStore — both share StoreCore — so wait-freedom is
// preserved under genuine concurrency: an update never waits on
// receivers, a flush only pays the per-peer enqueue.
//
// With `StoreConfig::workers > 1` the store scales across cores: a
// StoreWorkerPool gives each of N worker threads exclusive ownership of
// a disjoint set of shard engines (shard → worker by index modulo
// workers — stable across restarts). The owner thread becomes a router:
// update() stamps from the atomic store clock and enqueues to the
// owning worker over an SPSC ring; query() rides the same ring (FIFO
// per worker ⇒ a process still reads its own writes); incoming
// envelopes are split per worker after the router has observed their
// store-wide bookkeeping. Flush ticks fan out to every worker, each of
// which ships its own envelope. Per-key arbitration is untouched — the
// same key always lands in the same engine under the same owner — and
// convergence is byte-identical to the 1-worker and Sim stores (see
// tests/thread_store_test.cpp). What the pool *relaxes* is cross-object
// causality of stamps: the API thread stamps before workers finish
// merging remote clocks, so a stamp may not dominate a remote update
// whose entry is still in a ring. Update consistency never needed that
// dominance (arbitration only requires unique, per-process-monotone
// stamps), but sessions wanting causal stamps should run 1 worker.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/thread_network.hpp"
#include "store/store_core.hpp"
#include "store/worker_pool.hpp"

namespace ucw {

template <UqAdt A, typename Key = std::string>
class ThreadUcStore
    : public StoreCore<A, ThreadNetwork<BatchEnvelope<A, Key>>, Key> {
  using Core = StoreCore<A, ThreadNetwork<BatchEnvelope<A, Key>>, Key>;
  using Pool = StoreWorkerPool<ThreadUcStore<A, Key>>;
  friend Pool;

 public:
  using Envelope = typename Core::Envelope;

  ThreadUcStore(A adt, ProcessId pid, ThreadNetwork<Envelope>& net,
                StoreConfig config = {})
      : Core(std::move(adt), pid, net, config) {
    if (config.workers > 1) {
      pool_ = std::make_unique<Pool>(*this, config.workers);
    }
  }

  // Derived members (the pool and its threads) are destroyed before the
  // Core base — workers stop and join while the engines still exist.
  ~ThreadUcStore() {
    if (pool_) pool_->stop();
  }

  /// Which worker owns `key`'s shard engine (0 when unpooled). A pure
  /// function of key and config — stable across restarts.
  [[nodiscard]] std::size_t worker_of(const Key& key) const {
    return pool_ ? pool_->worker_of(this->shard_index(key)) : 0;
  }
  [[nodiscard]] std::size_t workers() const {
    return pool_ ? pool_->workers() : 1;
  }

  // ----- operation surface (single API/owner thread) -------------------
  // Unpooled, these come straight from StoreCore (the core polls the
  // inbox itself on pollable transports). Pooled, the owner routes.

  Stamp update(const Key& key, typename A::Update u) {
    if (!pool_) return Core::update(key, u);
    (void)route_inbox();
    const Stamp stamp = this->clock_.tick();
    pool_->enqueue_update(this->shard_index(key), key,
                          UpdateMessage<A>{stamp, std::move(u), {}});
    return stamp;
  }

  [[nodiscard]] typename A::QueryOut query(const Key& key,
                                           const typename A::QueryIn& qi) {
    if (!pool_) return Core::query(key, qi);
    (void)route_inbox();
    return pool_->run_query(this->shard_index(key), key, qi);
  }

  std::size_t poll() {
    if (!pool_) return Core::poll();
    return route_inbox();
  }

  std::size_t flush() {
    if (!pool_) return Core::flush();
    (void)route_inbox();
    const std::size_t flushed = pool_->flush_all();
    // The recovery tick is store-wide, so it stays on the router:
    // quiesce the rings (the engines are momentarily idle), then
    // heartbeat and fold. Worker ops enqueued afterwards happen-after
    // the fold via the ring handoff, so the single-owner discipline is
    // only *transferred*, never shared. The heartbeat runs even
    // without local stability: pooled batch envelopes carry no
    // piggybacked ack (a worker cannot vouch for the whole process
    // stream — see StoreCore::flush_engines), and after flush_all +
    // quiesce every stamp this store ever issued provably sits behind
    // the heartbeat in each receiver's FIFO inbox, so the router's
    // clock *is* an honest ack here.
    pool_->quiesce();
    this->maybe_send_ack();
    if (this->stability_) (void)this->collect_garbage();
    return flushed;
  }

  [[nodiscard]] typename A::State state_of(const Key& key) {
    sync_engines();
    return Core::state_of(key);
  }

  // Every introspection path that reads engine-owned state quiesces
  // first: the workers' release on `processed` paired with quiesce's
  // acquire is what makes the plain counters and maps safely readable
  // from the API thread.
  [[nodiscard]] StoreStats stats() const {
    sync_engines();
    StoreStats s = Core::stats();
    if (pool_) pool_->merge_stats(s);
    return s;
  }
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    sync_engines();
    return Core::shard_stats();
  }
  [[nodiscard]] std::size_t pending() const {
    sync_engines();
    return Core::pending();
  }
  [[nodiscard]] std::size_t keys_live() const {
    sync_engines();
    return Core::keys_live();
  }
  [[nodiscard]] std::vector<Key> keys() const {
    sync_engines();
    return Core::keys();
  }
  [[nodiscard]] std::size_t approx_bytes() const {
    sync_engines();
    return Core::approx_bytes();
  }
  [[nodiscard]] std::uint64_t log_entries_resident() const {
    sync_engines();
    return Core::log_entries_resident();
  }

  /// Blocks until `total_entries` *distinct* keyed updates (local +
  /// remote, replays excluded) have been applied, or the inbox closes —
  /// the quiescence barrier the stress tests use. Callers must have
  /// flushed everywhere first.
  void drain_until(std::uint64_t total_entries) {
    if (!pool_) {
      (void)Core::poll();
      while (applied_entries() < total_entries) {
        auto env = this->net_->inbox(this->pid_).pop_wait();
        if (!env.has_value()) return;  // closed
        this->deliver(env->from, env->payload);
      }
      return;
    }
    for (;;) {
      (void)route_inbox();
      // The inbox is empty, but routed entries may still sit in worker
      // rings — wait them out before deciding we are short.
      pool_->quiesce();
      if (applied_entries() >= total_entries) return;
      auto env = this->net_->inbox(this->pid_).pop_wait();
      if (!env.has_value()) return;  // closed
      route(env->from, env->payload);
    }
  }

  /// Distinct keyed updates this store has applied from any source;
  /// replays the per-key logs absorbed are not counted, so this reaches
  /// the global update count even under at-least-once delivery.
  [[nodiscard]] std::uint64_t applied_entries() const {
    std::uint64_t n = 0;
    for (const auto& e : this->engines_) n += e->applied_distinct();
    return n;
  }

 private:
  void sync_engines() const {
    if (pool_) pool_->quiesce();
  }

  /// Router: drains the process inbox, observing store-wide bookkeeping
  /// (stream positions, stability acks) on the owner thread, then fans
  /// the keyed entries out to their owning workers.
  std::size_t route_inbox() {
    std::size_t routed = 0;
    while (auto env = this->net_->inbox(this->pid_).try_pop()) {
      route(env->from, env->payload);
      ++routed;
    }
    return routed;
  }

  void route(ProcessId from, const Envelope& e) {
    this->note_stream(from, e);
    for (const auto& entry : e.entries) {
      pool_->enqueue_remote(this->shard_index(entry.key), from, entry.key,
                            entry.msg);
    }
    if (this->stability_ && e.ack_clock > 0) {
      this->stability_->observe_ack(from, e.ack_clock);
    }
  }

  std::unique_ptr<Pool> pool_;
};

}  // namespace ucw
