// StoreCore: the transport-independent *router* of the UCStore.
//
// Everything per-shard — key→replica maps, the batch buffer and flush
// window, the GC fold, snapshot serve/install — lives in ShardEngine
// (store/shard_engine.hpp); shards never coordinate, so engines are the
// unit of parallelism a ThreadUcStore worker pool spreads across cores.
// What remains here is exactly the genuinely store-wide state:
//
//   * the atomic store-wide Lamport clock every keyed replica stamps
//     from (what makes per-process stability sound — and what lets any
//     number of client threads stamp while workers merge remote
//     clocks);
//   * the StoreStabilityTracker and the GC sweep driver (the floor is
//     one number per store; engines only fold to it);
//   * the catch-up session, per-sender stream views, and the (epoch,
//     seq) envelope stream — seq is atomic so concurrent worker flushes
//     still draw unique positions;
//   * envelope assembly: a flush drains the pending buffers of a set of
//     engines (all of them here; one worker's subset in a pool) into a
//     single broadcast.
//
// Both frontends derive from this core; the only hard requirement on
// Net is `broadcast_others(from, envelope)` + `size()`. Optional
// capabilities are concept-detected and light up features:
//
//   crashed(pid)        — a crashed sender's buffered updates die
//                         silently (crash-stop) and are counted as
//                         dropped, not sent;
//   in_flight_from(pid) — failure-detector stand-in: lets GC declare a
//                         crashed process (unpinning the stability
//                         floor) only once nothing of it is in flight;
//   send(from,to,e) + epoch(pid)
//                       — the catch-up protocol (request_sync /
//                         ShardSnapshot / stream guarding), p2p + the
//                         incarnation counter rejoin needs — and the
//                         heal-time anti-entropy exchange built on it;
//   same_partition(a,b) — topology knowledge: a donor will not claim a
//                         currently-unreachable sender's stream is
//                         settled (its envelopes may be being dropped,
//                         not merely absent).
//
// Partitions: a drop-mode split discards cross-group envelopes, so each
// receiver's view of a sender's (epoch, seq) stream becomes a set of
// contiguous segments (SeqCoverage). The store tracks that per sender,
// and three things key off it: (1) piggybacked acks from a *gapped*
// stream are ignored — under drops, "I received an envelope with ack
// clock t" no longer proves FIFO coverage of everything below t, and
// folding to an over-claimed floor would silently diverge; (2) coverage
// rows served to joiners claim only the proven prefix; (3) after heal,
// anti_entropy_round(peer) exchanges per-shard delta markers and ships
// only the keys that advanced since the last serve — on completion the
// peers' coverage (and, when stability is on, their rows) are adopted,
// which both repairs the gap bookkeeping and un-freezes the GC floor.
//
// Recovery layering (src/recovery/): all per-key replicas stamp from the
// one store clock, so a StoreStabilityTracker — one knowledge vector per
// *process*, fed by envelope-level acks — yields a single stability
// floor that the GC sweep pushes down into the engines on the flush
// tick. The same compacted form (base + floor + unstable suffix) is what
// ShardSnapshot ships to a rejoining replica, making catch-up
// O(live state + unstable suffix) instead of O(history).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "audit/recorder.hpp"
#include "clock/timestamp.hpp"
#include "obs/store_obs.hpp"
#include "recovery/catchup.hpp"
#include "recovery/stability.hpp"
#include "store/envelope.hpp"
#include "store/shard.hpp"
#include "store/shard_engine.hpp"
#include "store/store_stats.hpp"

namespace ucw {

template <typename Store>
class StoreWorkerPool;  // drives per-worker flushes through the core

template <UqAdt A, typename Net, typename Key = std::string>
class StoreCore {
 public:
  using Adt = A;
  using KeyT = Key;
  using Entry = KeyedUpdate<A, Key>;
  using Envelope = BatchEnvelope<A, Key>;
  using Engine = ShardEngine<A, Key>;
  using Shard = StoreShard<A, Key>;
  using Snapshot = ShardSnapshot<A, Key>;

  enum class SyncState {
    kLive,       ///< normal operation (never synced, or sync retired)
    kSyncing,    ///< catch-up in progress: snapshots outstanding
    kGuarding,   ///< snapshots installed; live streams not yet verified
  };

  StoreCore(A adt, ProcessId pid, Net& net, StoreConfig config)
      : adt_(std::move(adt)),
        pid_(pid),
        config_(config),
        net_(&net),
        clock_(pid) {
    UCW_CHECK(config_.shard_count >= 1);
    UCW_CHECK(config_.batch_window >= 1);
    UCW_CHECK(config_.workers >= 1);
    if (config_.tracing) {
      obs_ = std::make_unique<obs::StoreObs>();
      obs_->tracer = config_.tracer;
      // Round the sampling period up to a power of two so the hot-path
      // "is this stamp sampled" test is a mask, not a division.
      std::uint64_t period = 1;
      while (period < std::max<std::uint64_t>(config_.trace_sample_every, 1))
        period <<= 1;
      obs_->sample_mask = period - 1;
    }
    if constexpr (kEpochAware) epoch_ = net_->epoch(pid_);
    peers_.resize(net_->size());
    snap_markers_.assign(net_->size(),
                         std::vector<std::uint64_t>(config_.shard_count, 0));
    snap_marker_epochs_.assign(net_->size(), 0);
    ae_.resize(net_->size());
    if (config_.gc) stability_.emplace(pid_, net_->size());
    typename ReplayReplica<A>::Config rep_cfg;
    rep_cfg.policy = config_.policy;
    rep_cfg.snapshot_interval = config_.snapshot_interval;
    // One clock across the keyspace: what makes per-process stability
    // (and snapshot floors) sound — see recovery/stability.hpp.
    rep_cfg.shared_clock = &clock_;
    // With store-level floors, a below-floor arrival is provably a
    // redelivery of a folded entry (at-least-once duplicates, or live
    // envelopes overlapping an installed snapshot), never a straggler.
    // Needed whenever a floor can rise above zero: GC folds, but also
    // catch-up alone — a gc=false store syncing from a compacted donor
    // installs bases with positive floors, and an overlapping live
    // envelope must be absorbed, not treated as a protocol violation.
    rep_cfg.absorb_below_floor = config_.gc || kCatchupCapable;
    // Mutation corpus (src/faults/): arbitration-order mutants live in
    // the log comparator. kMergeTiesByArrival perverts every replica the
    // same way (divergence needs ties to *arrive* in different orders);
    // kLwwTieSkew perverts only odd pids (mixed-version skew — replicas
    // disagree on the tie winner even for identical arrival orders).
    if (config_.fault.is(Fault::kMergeTiesByArrival)) {
      rep_cfg.stamp_order = StampOrder::kClockThenArrival;
    } else if (config_.fault.is(Fault::kLwwTieSkew) && pid_ % 2 == 1) {
      rep_cfg.stamp_order = StampOrder::kClockThenPidInverted;
    }
    engines_.reserve(config_.shard_count);
    engine_ptrs_.reserve(config_.shard_count);
    for (std::size_t i = 0; i < config_.shard_count; ++i) {
      engines_.push_back(
          std::make_unique<Engine>(adt_, pid, i, config_, rep_cfg));
      engine_ptrs_.push_back(engines_.back().get());
    }
  }

  StoreCore(const StoreCore&) = delete;
  StoreCore& operator=(const StoreCore&) = delete;

  // Thread-safety legend for this surface: "owner thread" = the single
  // thread driving an unpooled store (Sim's logical thread, or the one
  // client thread of a workers==1 ThreadUcStore); a pooled ThreadUcStore
  // shadows or re-documents every entry point whose contract widens.

  /// This process's id. Immutable — any thread.
  [[nodiscard]] ProcessId pid() const { return pid_; }
  /// The config the store was built with. Immutable — any thread.
  [[nodiscard]] const StoreConfig& config() const { return config_; }
  /// The ADT instance (pure functions only). Immutable — any thread.
  [[nodiscard]] const A& adt() const { return adt_; }
  /// Current store-wide Lamport clock value. Any thread (atomic read);
  /// instantly stale under concurrent stamping, like any clock read.
  [[nodiscard]] LogicalTime clock_now() const { return clock_.now(); }
  /// The stability tracker, or nullptr when `gc` is off. Owner thread
  /// (pooled stores mutate it under the router lock).
  [[nodiscard]] const StoreStabilityTracker* stability() const {
    return stability_ ? &*stability_ : nullptr;
  }

  /// Store-wide counters plus the per-engine operation counts, merged.
  /// Owner thread (a pooled ThreadUcStore shadows this to quiesce first
  /// and add its workers' flush/GC accounting and read-path counters).
  [[nodiscard]] StoreStats stats() const {
    StoreStats s = stats_;
    for (const auto& e : engines_) {
      s.local_updates += e->local_updates();
      s.remote_entries += e->remote_entries();
      s.duplicate_entries += e->duplicate_entries();
      s.queries += e->queries();
    }
    return s;
  }

  /// Derived-observability state when `tracing` is on, nullptr
  /// otherwise. Any thread — the contents are atomics and a wait-free
  /// histogram.
  [[nodiscard]] const obs::StoreObs* obs_state() const { return obs_.get(); }

  /// Attaches a caller-owned op-history recorder (audit pipeline), or
  /// detaches with nullptr. Same ownership discipline as the tracer:
  /// the store never owns it, recording-off costs one branch on a null
  /// pointer. Call before issuing ops (harness wiring time) — the
  /// pointer itself is not synchronized.
  void set_recorder(audit::OpRecorder<A, Key>* recorder) {
    recorder_ = recorder;
  }
  [[nodiscard]] audit::OpRecorder<A, Key>* recorder() const {
    return recorder_;
  }

  /// Wait-free keyed update: stamp from the store clock, apply to the
  /// owning engine's replica now (synchronous self-delivery), broadcast
  /// when the batch fills (or on the next flush tick). Returns the
  /// arbitration stamp. Never waits on any other process (Proposition
  /// 4 survives batching verbatim). Owner thread; the pooled frontend
  /// shadows it for concurrent client threads.
  Stamp update(const Key& key, typename A::Update u) {
    // A rejoining store may not stamp updates until its clock has been
    // re-based by the first installed snapshot: the fresh incarnation's
    // clock restarts at zero, and a reused (clock, pid) stamp would be
    // absorbed as a duplicate of a pre-crash update elsewhere. Reads
    // stay available throughout; updates resume right after bootstrap.
    UCW_CHECK_MSG(!bootstrapping_,
                  "update() on a store still bootstrapping from a "
                  "snapshot; wait for sync_state() to leave kSyncing");
    poll();
    const Stamp stamp = clock_.tick();
    if (obs_ && obs_->tracer && obs_->sampled(stamp.clock)) {
      obs_->tracer->instant(0, obs::TraceEventKind::kUpdateStamp,
                            stamp.clock);
    }
    if (recorder_) recorder_->record_update(0, key, stamp, u);
    Engine& eng = engine_of(key);
    eng.local_update(key, UpdateMessage<A>{stamp, std::move(u), {}});
    ++pending_total_;
    const bool full = config_.adaptive_window
                          ? eng.window_filled()
                          : pending_total_ >= config_.batch_window;
    if (full) flush_now(FlushCause::kWindowFull);
    return stamp;
  }

  /// Wait-free keyed query from the local replay; an untouched key
  /// answers from the ADT's initial state (and stays unmaterialized).
  /// Trivially reads-its-own-writes (self-delivery is synchronous).
  /// Owner thread; shadowed by the pooled frontend.
  [[nodiscard]] typename A::QueryOut query(const Key& key,
                                           const typename A::QueryIn& qi) {
    poll();
    typename A::QueryOut out = engine_of(key).query(key, qi);
    if (recorder_) recorder_->record_query(0, key, clock_.now(), out);
    return out;
  }

  /// Folds queued envelopes in when the transport has a pollable inbox
  /// (ThreadNetwork); a no-op on handler-driven transports (SimNetwork,
  /// whose deliveries arrive through the registered handler). Living
  /// here — not in the frontend — means update()/query() through a
  /// StoreCore& can never skip it. Owner thread; shadowed pooled.
  std::size_t poll() {
    std::size_t applied = 0;
    if constexpr (kPollableInbox) {
      while (auto env = net_->inbox(pid_).try_pop()) {
        deliver(env->from, env->payload);
        ++applied;
      }
    }
    return applied;
  }

  /// The converged state k's replica currently holds; initial() for keys
  /// never touched here. Owner thread (reads engine state directly).
  [[nodiscard]] typename A::State state_of(const Key& key) {
    return engine_of(key).state_of(key);
  }

  /// Ships the pending batch, if any, then runs the recovery tick:
  /// re-size adaptive windows, piggyback/heartbeat the stability ack,
  /// fold the stable prefix across the dirty engines, and retry a
  /// stalled catch-up. Returns entries flushed (dropped-on-crash entries
  /// are not "flushed"). Never waits on receivers — the cost is the
  /// per-peer enqueue. Owner thread; shadowed pooled.
  std::size_t flush() {
    for (auto& e : engines_) e->on_flush_tick();
    const std::size_t flushed = flush_now(FlushCause::kManual);
    if (stability_) {
      maybe_send_ack(clock_.now());
      (void)collect_garbage();
    }
    sync_housekeeping();
    ae_housekeeping();
    sample_convergence_obs(clock_.now());
    return flushed;
  }

  /// Buffered (not yet flushed) keyed updates across every engine. Any
  /// thread technically (relaxed mirrors), exact on the owner thread.
  [[nodiscard]] std::size_t pending() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->pending_size();
    return n;
  }

  // ----- recovery: stability GC ----------------------------------------

  /// Pushes the store-wide stability floor down into the engines
  /// (Section VII-C fold, hoisted to store level). Runs on the flush
  /// tick; callable directly. Incremental: each sweep folds at most
  /// `gc_engines_per_sweep` *dirty* engines (clean ones are skipped in
  /// O(1) via the engine's min-unfolded cursor), resuming round-robin
  /// where the previous sweep stopped. Returns entries folded. Owner
  /// thread — it touches engine state; the pooled flush instead splits
  /// this into the router-side floor refresh and worker-side folds.
  std::size_t collect_garbage() {
    const LogicalTime floor = refresh_stability_floor(clock_.now());
    if (floor == 0) return 0;
    return gc_sweep(floor, config_.gc_engines_per_sweep);
  }

  // ----- recovery: catch-up protocol -----------------------------------

  /// Asks `donor` to ship its snapshots (crash-restart or late join).
  /// Returns false on transports without p2p + epochs (ThreadNetwork).
  /// Owner thread.
  bool request_sync(ProcessId donor) {
    if constexpr (kCatchupCapable) {
      UCW_CHECK(donor != pid_ && donor < net_->size());
      send_sync_request(donor);
      // No snapshot yet → the clock is not re-based → no stamping.
      bootstrapping_ = !any_snapshot_installed_;
      return true;
    } else {
      (void)donor;
      return false;
    }
  }

  // ----- recovery: anti-entropy after a partition heals -----------------

  /// Heal-time reconciliation with `peer`: sends it this store's
  /// per-shard delta markers ("shard i of you I hold as of marker m_i");
  /// the peer replies with one delta snapshot per shard carrying only
  /// the keys that advanced since — including everything it learned
  /// second-hand from its partition side, so one exchange with a single
  /// representative of the other side reconciles the whole split. With
  /// `reciprocate` the peer also pulls from us, healing both directions
  /// in one call. On completing the delta batch, the peer's coverage
  /// rows are adopted (repairing this store's gapped view of every
  /// stream the peer can vouch for) and, when stability is on, its
  /// knowledge rows too — un-freezing the GC floor the partition pinned.
  ///
  /// Returns false on transports without p2p + epochs, while a catch-up
  /// session is open (the session's retry machinery owns recovery
  /// then), or when either end is crashed. Unlike request_sync this
  /// never pauses GC, never refuses updates, and has no retry loop: a
  /// round whose messages are lost (re-partition mid-exchange) is
  /// simply superseded by the next call. Owner thread.
  bool anti_entropy_round(ProcessId peer, bool reciprocate = true) {
    if constexpr (kCatchupCapable) {
      UCW_CHECK(peer != pid_ && peer < net_->size());
      if (session_.active()) return false;
      if constexpr (kCrashAware) {
        if (net_->crashed(pid_) || net_->crashed(peer)) return false;
      }
      ++stats_.ae_rounds_started;
      if (obs_ && obs_->tracer) {
        obs_->tracer->instant(0, obs::TraceEventKind::kAeRequest, peer,
                              ae_round_counter_ + 1);
      }
      AeRound& r = ae_[peer];
      r.active = true;
      r.round = ++ae_round_counter_;
      r.installed.assign(engines_.size(), false);
      r.installed_count = 0;
      r.sound = true;
      r.ticks_active = 0;
      Envelope req;
      req.kind = EnvelopeKind::kAntiEntropyRequest;
      req.epoch = epoch_;
      req.seq = r.round;  // p2p kinds reuse seq as the round token
      req.ae_reciprocate = reciprocate;
      if (config_.incremental_snapshots) {
        req.sync_markers = snap_markers_[peer];
        req.sync_markers_epoch = snap_marker_epochs_[peer];
      }
      // Coverage summary on the wire: ship our stability rows so the
      // donor can skip suffix entries we provably received live (rows
      // are raised only by gap-gated first-hand acks, so "stamp.clock
      // <= rows[origin]" really means "already held here" — even
      // across drops, because a gapped stream stops raising its row).
      if (stability_) req.ae_floors = stability_->rows();
      net_->send(pid_, peer, req);
      return true;
    } else {
      (void)peer;
      (void)reciprocate;
      return false;
    }
  }

  /// Whether the sender `q`'s live envelope stream currently has a gap
  /// here (cross-partition drops, or a mid-stream join not yet verified
  /// by catch-up). While gapped, q's piggybacked acks are ignored — see
  /// the header comment. Owner thread.
  [[nodiscard]] bool stream_gapped(ProcessId q) const {
    return q < peers_.size() && peers_[q].gapped;
  }

  /// Catch-up phase of this store (live / syncing / guarding). Owner
  /// thread.
  [[nodiscard]] SyncState sync_state() const {
    if (!session_.active()) return SyncState::kLive;
    return session_.awaiting() ? SyncState::kSyncing : SyncState::kGuarding;
  }
  /// True until the first snapshot re-bases the clock of a rejoining
  /// store; update() is refused while this holds (reads stay
  /// available). Owner thread.
  [[nodiscard]] bool bootstrapping() const { return bootstrapping_; }

  // ----- keyspace introspection ----------------------------------------
  // All owner-thread: these read engine-owned maps directly. The pooled
  // frontend shadows the commonly used ones behind a quiesce barrier.

  /// Number of shard engines (== StoreConfig::shard_count). Immutable —
  /// any thread.
  [[nodiscard]] std::size_t shard_count() const { return engines_.size(); }
  /// Direct access to shard i's key→replica map. Owner thread.
  [[nodiscard]] Shard& shard(std::size_t i) { return engines_[i]->shard(); }
  /// Which shard (engine) owns `key` — a pure function of key and
  /// config, identical on every replica. Any thread.
  [[nodiscard]] std::size_t shard_index(const Key& key) const {
    return hash_value(key) % engines_.size();
  }
  /// Direct access to `key`'s shard. Owner thread.
  [[nodiscard]] Shard& shard_of(const Key& key) {
    return engine_of(key).shard();
  }

  /// Replicas materialized across all shards. Owner thread.
  [[nodiscard]] std::size_t keys_live() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->shard().keys_live();
    return n;
  }

  /// Every key materialized here (order unspecified). Owner thread.
  [[nodiscard]] std::vector<Key> keys() const {
    std::vector<Key> out;
    for (const auto& e : engines_) {
      auto ks = e->shard().keys();
      out.insert(out.end(), ks.begin(), ks.end());
    }
    return out;
  }

  /// One aggregate row per shard (print_shard_table). Owner thread.
  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    std::vector<ShardStats> out;
    out.reserve(engines_.size());
    for (const auto& e : engines_) out.push_back(e->stats());
    return out;
  }

  /// Estimated resident bytes of live state + logs. Owner thread.
  [[nodiscard]] std::size_t approx_bytes() const {
    std::size_t n = 0;
    for (const auto& e : engines_) n += e->shard().stats().approx_bytes;
    return n;
  }

  /// Un-folded log entries resident across all keys. Owner thread.
  [[nodiscard]] std::uint64_t log_entries_resident() const {
    std::uint64_t n = 0;
    for (const auto& e : engines_) n += e->shard().stats().log_entries;
    return n;
  }

 protected:
  template <typename Store>
  friend class StoreWorkerPool;

  static constexpr bool kPollableInbox =
      requires(Net& net, ProcessId p) { net.inbox(p).try_pop(); };
  static constexpr bool kCrashAware = requires(const Net& net, ProcessId p) {
    { net.crashed(p) } -> std::convertible_to<bool>;
  };
  static constexpr bool kInFlightAware =
      requires(const Net& net, ProcessId p) {
        { net.in_flight_from(p) } -> std::convertible_to<std::uint64_t>;
      };
  static constexpr bool kPointToPoint =
      requires(Net& net, ProcessId a, ProcessId b, const Envelope& e) {
        net.send(a, b, e);
      };
  static constexpr bool kEpochAware = requires(const Net& net, ProcessId p) {
    { net.epoch(p) } -> std::convertible_to<std::uint64_t>;
  };
  static constexpr bool kCatchupCapable = kPointToPoint && kEpochAware;
  static constexpr bool kReachabilityAware =
      requires(const Net& net, ProcessId a, ProcessId b) {
        { net.same_partition(a, b) } -> std::convertible_to<bool>;
      };

  enum class FlushCause { kWindowFull, kManual };

  [[nodiscard]] Engine& engine(std::size_t i) { return *engines_[i]; }
  [[nodiscard]] Engine& engine_of(const Key& key) {
    return *engines_[shard_index(key)];
  }

  /// Ships one envelope carrying the pending batches of `engines` — all
  /// of them on the single-owner path, one worker's subset in a pool —
  /// charging the wire accounting to `st` (the router's stats here, a
  /// worker's slice in a pool; distinct slices keep concurrent flushes
  /// race-free). The (epoch, seq) stream position is drawn atomically.
  ///
  /// `piggyback_ack` is the FIFO-honesty switch. The ack contract is
  /// "everything this *process* ever broadcast with a stamp <= t has
  /// been shipped before this envelope" — true on the single-owner
  /// path, where one thread stamps and flushes in order. A pool worker
  /// cannot claim it: the store clock is global, so another worker may
  /// still be buffering an entry stamped *below* this worker's read of
  /// the clock, and a receiver folding to the overstated ack would
  /// absorb that in-flight entry as a below-floor duplicate — silent
  /// divergence. Pooled envelopes therefore ship ack_clock = 0 and the
  /// ack travels only on the router's flush-time heartbeat, clamped to
  /// the stamp *barrier* (ThreadUcStore::stamp_barrier): every stamp
  /// at or below it was in a ring before the flush ops, so after
  /// flush_all it provably sits behind the heartbeat in each
  /// receiver's FIFO inbox — even with client threads still stamping.
  /// `track` attributes the batch_flush span to the flushing thread's
  /// trace track (0 = router/single owner, w+1 = pool worker w).
  std::size_t flush_engines(const std::vector<Engine*>& engines,
                            FlushCause cause, StoreStats& st,
                            bool piggyback_ack = true,
                            std::uint16_t track = 0) {
    std::size_t n = 0;
    for (Engine* e : engines) n += e->pending_size();
    if (n == 0) return 0;
    if constexpr (kCrashAware) {
      if (net_->crashed(pid_)) {
        // Crash-stop: the buffered updates die with the sender. Counted
        // as dropped — not as sent, not as flushed — and the seq is not
        // consumed, so a restarted incarnation's stream starts clean and
        // nothing is double-counted in envelopes_sent.
        ++st.envelopes_dropped_crash;
        st.entries_dropped_crash += n;
        for (Engine* e : engines) (void)e->drop_pending();
        return 0;
      }
    }
    if (cause == FlushCause::kWindowFull) {
      ++st.flushes_full;
    } else {
      ++st.flushes_manual;
    }
    if (obs_ && obs_->tracer) {
      obs_->tracer->begin(track, obs::TraceEventKind::kBatchFlush, n);
    }
    Envelope env;
    env.epoch = epoch_;
    env.entries.reserve(n);
    for (Engine* e : engines) e->drain_pending(env.entries);
    env.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    if (piggyback_ack) {
      // Piggybacked on every single-owner envelope: the ack is
      // receiver-side knowledge ("under FIFO, I now hold everything
      // this sender stamped <= t"), so even a gc=false store must ship
      // it — otherwise one such store in a compacting cluster would
      // pin every peer's floor at zero. Pool workers pass false (see
      // above) and leave acks to the router heartbeat.
      env.ack_clock = clock_.now();
      // FAULT kAckOverstatesClock: vouch for one stamp beyond what this
      // store has broadcast. A peer that trusts the ack folds its floor
      // past an entry still in flight (or about to be stamped), then
      // absorbs the real delivery below the floor.
      if (config_.fault.is(Fault::kAckOverstatesClock)) env.ack_clock += 1;
      raise_last_ack(env.ack_clock);
    }
    st.envelopes_sent += 1;
    st.entries_sent += n;
    st.bytes_batched += wire_size(env);
    st.bytes_unbatched += unbatched_wire_size(env);
    net_->broadcast_others(pid_, env);
    if (obs_ && obs_->tracer) {
      obs_->tracer->end(track, obs::TraceEventKind::kBatchFlush, n, env.seq);
    }
    return n;
  }

  /// Single-owner flush: every engine into one envelope.
  std::size_t flush_now(FlushCause cause) {
    const std::size_t n = flush_engines(engine_ptrs_, cause, stats_);
    pending_total_ = 0;
    return n;
  }

  /// Refreshes the store-wide stability floor (router side, no engine
  /// access — safe while workers run): failure-detector knowledge, the
  /// self row advanced to `self_clock`, the fold floor re-derived and
  /// recorded in stats. Returns the floor to fold to, 0 when nothing is
  /// foldable yet (stability off, catch-up session open, floor at 0).
  ///
  /// `self_clock` is the largest own stamp this store can vouch it has
  /// locally applied-or-queued-behind-the-fold: clock_now() on the
  /// single-owner path (self-delivery is synchronous there); the stamp
  /// *barrier* on a pooled store, where a client thread may hold a
  /// freshly drawn stamp that no ring has seen yet — advancing the self
  /// row past it could, in a 1-process cluster, fold ahead of the
  /// in-flight entry.
  [[nodiscard]] LogicalTime refresh_stability_floor(LogicalTime self_clock) {
    if (!stability_) return 0;
    // No folding while a catch-up session is open. Two races hide here:
    // (1) awaiting — donor rows adopted from the first installed shard
    // would push keys of a *not yet installed* shard past the snapshot
    // floor on a sparse live-delivery log, and install_base would then
    // refuse the donor base as "already covered"; (2) guarding — a
    // direct ack from a sender whose stream is not yet verified gap-free
    // claims a prefix this store provably dropped while down, and
    // folding over it would make the retry snapshot refusable the same
    // way. Rows are trustworthy exactly when the session retires. The
    // pause is bounded by the same events that already pin GC globally:
    // a partitioned-away peer freezes everyone's floor (its rows stop
    // advancing cluster-wide), and on heal its first envelope — or one
    // gap retry — verifies its stream here and retires the session.
    // FAULT kGcDuringCatchupSession: skip the pause and fold mid-sync
    // on exactly the untrustworthy rows described above.
    if (session_.active() &&
        !config_.fault.is(Fault::kGcDuringCatchupSession)) {
      return 0;
    }
    refresh_crash_knowledge();
    // Without the self row a read-only replica (whose clock moves only
    // by observation) would pin its *own* floor at zero and never
    // compact, even while its heartbeats let everyone else fold.
    stability_->advance_self(self_clock);
    const LogicalTime floor = stability_->floor();
    stats_.stability_floor = floor;
    stats_.stability_floor_lag = stability_->lag();
    if (floor > gc_floor_) gc_floor_ = floor;
    return gc_floor_;
  }

  /// The incremental GC sweep: fold up to `budget` dirty engines to
  /// `floor`, round-robin from the cursor. 0 = every dirty engine.
  std::size_t gc_sweep(LogicalTime floor, std::size_t budget) {
    const std::size_t n = engines_.size();
    if (budget == 0 || budget > n) budget = n;
    std::size_t folded = 0;
    std::size_t visited = 0;
    std::size_t step = 0;
    for (; step < n && visited < budget; ++step) {
      Engine& e = *engines_[(gc_cursor_ + step) % n];
      if (!e.gc_pending(floor)) continue;
      folded += e.fold_to(floor);
      ++visited;
    }
    gc_cursor_ = (gc_cursor_ + step) % n;
    if (visited > 0) {
      ++stats_.gc_runs;
      stats_.gc_folded += folded;
    }
    if (obs_ && obs_->tracer && folded > 0) {
      obs_->tracer->instant(0, obs::TraceEventKind::kGcFold, folded, floor);
    }
    return folded;
  }

  void deliver(ProcessId from, const Envelope& e) {
    switch (e.kind) {
      case EnvelopeKind::kSyncRequest:
        // p2p kinds reuse `seq` as the sync round token (they are not
        // part of the sender's broadcast stream).
        if constexpr (kCatchupCapable) serve_sync(from, e);
        return;
      case EnvelopeKind::kShardSnapshot:
        if constexpr (kCatchupCapable) {
          if (e.snapshot) install_snapshot(from, e);
        }
        return;
      case EnvelopeKind::kAntiEntropyRequest:
        if constexpr (kCatchupCapable) serve_anti_entropy(from, e);
        return;
      case EnvelopeKind::kAntiEntropyDelta:
        if constexpr (kCatchupCapable) {
          if (e.snapshot) install_anti_entropy(from, e);
        }
        return;
      case EnvelopeKind::kBatch:
        break;
    }
    note_stream(from, e);
    if (obs_ && !e.entries.empty()) {
      if (obs_->tracer) {
        obs_->tracer->instant(0, obs::TraceEventKind::kDeliver, from,
                              e.entries.size());
      }
      // Replication lag: origin Lamport stamp vs the local clock at the
      // moment of apply, clamped at 0 (a stamp ahead of this clock is
      // about to advance it — the update arrived "early", not late).
      // Sampled like the other per-op hooks: a 1-in-N stamp-keyed
      // sample keeps the histogram representative at a fraction of the
      // per-entry cost (3 atomic RMWs), which is what holds the
      // tracing-on overhead inside the E10e budget.
      const LogicalTime now = clock_.now();
      for (const Entry& entry : e.entries) {
        const LogicalTime sc = entry.msg.stamp.clock;
        if (!obs_->sampled(sc)) continue;
        const std::uint64_t lag = now > sc ? now - sc : 0;
        obs_->replication_lag.record(lag);
        if (obs_->tracer) {
          obs_->tracer->instant(0, obs::TraceEventKind::kApplyRemote, sc,
                                lag);
        }
      }
    }
    for (const Entry& entry : e.entries) {
      (void)engine_of(entry.key).apply_remote(from, entry.key, entry.msg);
    }
    // A gapped stream's ack proves nothing: under FIFO *with drops*,
    // holding an envelope that carries ack clock t no longer implies
    // holding everything the sender stamped below t — the partition may
    // have discarded some of it, and anti-entropy will deliver it later
    // as genuinely-new below-floor entries. Observing such an ack would
    // let GC fold over them. The gap clears (and acks resume) when an
    // anti-entropy round or a catch-up session proves the prefix.
    // FAULT kFoldAcksAcrossGaps (the mutation corpus's founding member):
    // folding over a known gap lets GC absorb the floor past entries
    // anti-entropy has yet to redeliver, which the offline auditor must
    // catch as divergence.
    if (stability_ && e.ack_clock > 0 &&
        (config_.fault.is(Fault::kFoldAcksAcrossGaps) ||
         !(from < peers_.size() && peers_[from].gapped))) {
      stability_->observe_ack(from, e.ack_clock);
    }
  }

  // ----- recovery internals --------------------------------------------

  void send_sync_request(ProcessId donor) {
    if constexpr (kCatchupCapable) {
      const std::uint64_t round =
          session_.begin(donor, engines_.size(), net_->size());
      last_progress_mark_ = session_.progress();
      resync_needed_ = false;
      ++stats_.sync_requests_sent;
      Envelope req;
      req.kind = EnvelopeKind::kSyncRequest;
      req.epoch = epoch_;
      req.seq = round;  // echoed on every snapshot of the batch
      if (config_.incremental_snapshots) {
        // Echo what we already installed from this donor: a retry round
        // then ships only the keys that advanced since the previous
        // round, not every shard in full. A fresh store's markers are
        // all zero — the first round is always full.
        req.sync_markers = snap_markers_[donor];
        req.sync_markers_epoch = snap_marker_epochs_[donor];
      }
      net_->send(pid_, donor, req);
      if (obs_ && obs_->tracer) {
        obs_->tracer->instant(0, obs::TraceEventKind::kSyncRequest, donor,
                              round);
      }
    } else {
      (void)donor;
    }
  }

  /// Donor side of catch-up: compact, then ship one ShardSnapshot per
  /// engine (p2p), each echoing the requester's round token — as deltas
  /// against the markers the request carried, where valid.
  void serve_sync(ProcessId requester, const Envelope& req) {
    if constexpr (kCatchupCapable) {
      if (requester == pid_ || requester >= net_->size()) return;
      // A donor with an open catch-up session must not serve. Awaiting:
      // its bases are incomplete. Guarding is no better: build_coverage
      // advertises each sender's proven prefix, but a guarding store
      // has not yet *verified* that it holds the [0, first_seq) part of
      // those streams — serving would let a second joiner falsely
      // verify a stream whose gap entries this store is itself still
      // chasing, and retire into silent divergence. Defer; the
      // requester's stall retry rotates to another donor.
      if (session_.active()) return;
      ++stats_.sync_requests_served;
      if (obs_ && obs_->tracer) {
        obs_->tracer->instant(0, obs::TraceEventKind::kSyncServe, requester,
                              req.seq);
      }
      ship_snapshots(requester, req.seq, EnvelopeKind::kShardSnapshot,
                     req.sync_markers, req.sync_markers_epoch);
    }
  }

  /// Shared donor-side shipper for catch-up serves and anti-entropy
  /// replies: compact, build the honest coverage vector, then one
  /// snapshot per engine — full, or a delta from the requester's echoed
  /// markers when they are for this incarnation (a restarted donor's
  /// counters restart at zero, so stale-epoch markers must not be
  /// trusted) and incremental shipping is on.
  void ship_snapshots(ProcessId requester, std::uint64_t round,
                      EnvelopeKind kind,
                      const std::vector<std::uint64_t>& markers,
                      std::uint64_t markers_epoch,
                      const std::vector<LogicalTime>& requester_floors = {}) {
    if constexpr (kCatchupCapable) {
      // Snapshots ship base + unstable suffix: compact first, and fold
      // *every* dirty engine regardless of the incremental budget — a
      // half-folded engine would ship already-stable entries in its
      // suffix and re-inflate the receiver's install cost.
      (void)collect_garbage();
      if (gc_floor_ > 0) (void)gc_sweep(gc_floor_, 0);
      const bool deltas = config_.incremental_snapshots &&
                          markers_epoch == epoch_ &&
                          markers.size() == engines_.size();
      const auto coverage = build_coverage();
      for (std::size_t i = 0; i < engines_.size(); ++i) {
        auto snap = std::make_shared<Snapshot>(engines_[i]->encode_snapshot(
            engines_.size(), deltas ? markers[i] : 0, requester));
        // Entry-level dedup from the requester's coverage summary:
        // anything below its per-origin row rode a live envelope it
        // already delivered. Bases ship untouched — only the unstable
        // suffixes thin out.
        if (!requester_floors.empty()) {
          for (auto& ks : snap->keys) {
            const std::size_t before = ks.suffix.size();
            std::erase_if(ks.suffix, [&](const auto& entry) {
              return entry.stamp.pid < requester_floors.size() &&
                     entry.stamp.clock <= requester_floors[entry.stamp.pid];
            });
            stats_.ae_entries_skipped_covered += before - ks.suffix.size();
          }
        }
        snap->donor_clock = clock_.now();
        if (stability_) snap->donor_rows = stability_->rows();
        snap->coverage = coverage;
        stats_.snapshot_keys_served += snap->keys.size();
        stats_.snapshot_keys_skipped_delta +=
            snap->keys_total - snap->keys.size();
        Envelope env;
        env.kind = kind;
        env.epoch = epoch_;
        env.seq = round;
        env.snapshot = std::move(snap);
        const std::size_t bytes = wire_size(env);
        if (kind == EnvelopeKind::kShardSnapshot) {
          ++stats_.snapshots_served;
          stats_.snapshot_entries_served += env.snapshot->suffix_entries();
          stats_.snapshot_bytes_served += bytes;
        } else {
          stats_.ae_entries_served += env.snapshot->suffix_entries();
          stats_.ae_bytes_served += bytes;
        }
        net_->send(pid_, requester, env);
      }
    } else {
      (void)requester;
      (void)round;
      (void)kind;
      (void)markers;
      (void)markers_epoch;
      (void)requester_floors;
    }
  }

  /// Joiner side: adopt the donor's compacted state and bookkeeping.
  void install_snapshot(ProcessId from, const Envelope& e) {
    const Snapshot& snap = *e.snapshot;
    const std::uint64_t round = e.seq;
    UCW_CHECK_MSG(snap.shard_count == engines_.size(),
                  "snapshot from a store with a different shard_count");
    UCW_CHECK(snap.shard_index < engines_.size());
    ++stats_.snapshots_installed;
    if (obs_ && obs_->tracer) {
      obs_->tracer->instant(0, obs::TraceEventKind::kSnapshotInstall, from,
                            snap.shard_index);
    }
    (void)note_marker(from, e.epoch, snap);
    // Re-base the clock first: stamps issued from here on clear
    // everything the snapshot covers (including this process's own
    // pre-crash stream — the network model drains an incarnation before
    // its pid may restart, so the donor clock dominates it). The donor
    // *rows* must be observed too, not just its clock: the old
    // incarnation can have burned clock values no stamp ever used
    // (query ticks, ack heartbeats), and peers' fold floors track those
    // via rows[us] — a fresh stamp at or below such a floor would be
    // absorbed there as a folded-entry redelivery. Drain-before-restart
    // guarantees every old ack reached the donor, so its rows dominate
    // them; over-observing is always safe for a Lamport clock.
    clock_.observe(snap.donor_clock);
    for (const LogicalTime r : snap.donor_rows) clock_.observe(r);
    bootstrapping_ = false;
    any_snapshot_installed_ = true;
    for (const auto& ks : snap.keys) {
      bool floor_raised = false;
      stats_.catchup_entries +=
          engine_of(ks.key).install_key(ks, &floor_raised, from);
      if (floor_raised) ++stats_.catchup_keys;
    }
    engines_[snap.shard_index]->note_snapshot_installed();
    // Stale rounds (duplicates, batches overtaken by a retry) installed
    // their data above but must not satisfy the current round — retiring
    // on an old batch would let GC fold ahead of the fresh batch still
    // in flight and make its installs refusable.
    if (session_.active() && round == session_.round()) {
      session_.merge_coverage(snap.coverage);
      (void)session_.note_shard_installed(snap.shard_index);
      if (!session_.awaiting() && stability_ && !snap.donor_rows.empty()) {
        // Adopt the donor's stability rows only once this round's batch
        // is complete: the rows claim "everything below them is covered
        // here", which the round's snapshots only deliver in full. A
        // partial round's rows (donor crashed mid-batch) would raise
        // the floor past entries neither installed nor yet delivered
        // and GC would fold over them. Every snapshot of a round
        // carries the same rows, so adopting from the last-arriving one
        // is exactly the serve-time knowledge.
        stability_->adopt(snap.donor_rows);
        stability_->advance_self(clock_.now());
      }
      reevaluate_session();
    }
  }

  /// Donor side of anti-entropy: ship the delta batch, then pull back
  /// if the requester asked for a bidirectional heal. Refused while a
  /// catch-up session is open here — exactly the serve_sync reasons: an
  /// unverified store must not vouch for anyone's stream coverage.
  void serve_anti_entropy(ProcessId requester, const Envelope& req) {
    if constexpr (kCatchupCapable) {
      if (requester == pid_ || requester >= net_->size()) return;
      if (session_.active()) return;
      ++stats_.ae_rounds_served;
      if (obs_ && obs_->tracer) {
        obs_->tracer->instant(0, obs::TraceEventKind::kAeServe, requester,
                              req.seq);
      }
      ship_snapshots(requester, req.seq, EnvelopeKind::kAntiEntropyDelta,
                     req.sync_markers, req.sync_markers_epoch, req.ae_floors);
      if (req.ae_reciprocate) (void)anti_entropy_round(requester, false);
    }
  }

  /// Requester side of anti-entropy: install the delta (always safe —
  /// per-key logs are set-unions and bases install monotonically), and
  /// once the round's full batch has landed, adopt the peer's coverage
  /// rows (repairing gapped streams) and stability knowledge.
  void install_anti_entropy(ProcessId from, const Envelope& e) {
    const Snapshot& snap = *e.snapshot;
    UCW_CHECK_MSG(snap.shard_count == engines_.size(),
                  "anti-entropy with a store of a different shard_count");
    UCW_CHECK(snap.shard_index < engines_.size());
    ++stats_.ae_snapshots_installed;
    if (obs_ && obs_->tracer) {
      obs_->tracer->instant(0, obs::TraceEventKind::kAeInstall, from,
                            snap.shard_index);
    }
    for (const auto& ks : snap.keys) {
      bool floor_raised = false;
      stats_.ae_entries_installed +=
          engine_of(ks.key).install_key(ks, &floor_raised, from);
    }
    const bool marker_sound = note_marker(from, e.epoch, snap);
    if (from >= ae_.size()) return;
    AeRound& r = ae_[from];
    // Stale rounds (superseded exchanges, at-least-once duplicates)
    // installed their data above but must not complete the current
    // round — their coverage snapshot could predate a re-partition.
    if (!r.active || e.seq != r.round) return;
    if (!marker_sound) r.sound = false;
    if (!r.installed[snap.shard_index]) {
      r.installed[snap.shard_index] = true;
      ++r.installed_count;
    }
    r.coverage = snap.coverage;  // every snapshot of a round carries the same
    r.donor_rows = snap.donor_rows;
    // FAULT kAeAdoptOnFirstDelta: adopt the peer's coverage/stability
    // rows after the round's *first* installed delta instead of the
    // complete batch — vouching for data still riding in the round's
    // remaining shards. The gap clears early, acks resume, and GC can
    // fold over entries the unfinished deltas were about to deliver.
    if (r.installed_count < r.installed.size() &&
        !config_.fault.is(Fault::kAeAdoptOnFirstDelta)) {
      return;
    }
    r.active = false;
    ++stats_.ae_rounds_completed;
    if (obs_ && obs_->tracer) {
      obs_->tracer->instant(0, obs::TraceEventKind::kAeAdopt, from,
                            static_cast<std::uint64_t>(r.sound));
    }
    // A concurrently opened catch-up session owns stream trust now; its
    // own retire will seed coverage. And an unsound round (a delta
    // relative to a baseline we never installed — only possible across
    // interleaved restarts) must adopt nothing: the data helped, the
    // claims might not hold here.
    if (session_.active() || !r.sound) return;
    // Everything the peer held at serve time is now held here (previous
    // complete installs cover the clean keys, this batch the dirty
    // ones, and live arrivals only add), so its proven coverage of
    // *every* sender's stream — including its own — transfers verbatim.
    adopt_coverage(r.coverage);
    // Same argument makes the peer's stability rows direct knowledge
    // here: anything stamped below them is already installed, so a
    // later arrival below the resulting floor is provably a redelivery.
    if (stability_ && !r.donor_rows.empty()) {
      stability_->adopt(r.donor_rows);
      stability_->advance_self(clock_.now());
    }
  }

  /// Remembers the donor's delta marker for a shard we now hold — the
  /// value the next request echoes. Markers are per donor *incarnation*
  /// (a restarted donor's counters restart); a delta relative to a
  /// baseline we never installed returns false and advances nothing.
  bool note_marker(ProcessId from, std::uint64_t donor_epoch,
                   const Snapshot& snap) {
    if (from >= snap_markers_.size()) return false;
    auto& row = snap_markers_[from];
    if (snap_marker_epochs_[from] != donor_epoch) {
      row.assign(row.size(), 0);
      snap_marker_epochs_[from] = donor_epoch;
    }
    std::uint64_t& m = row[snap.shard_index];
    if (snap.delta_since > m) return false;
    if (snap.delta_marker > m) m = snap.delta_marker;
    return true;
  }

  /// Tracks each sender's live (epoch, seq) stream; a fresh incarnation
  /// or the first envelope after a (re)start re-arms the catch-up gap
  /// check for that sender. The per-epoch SeqCoverage records exactly
  /// which seqs are held — per-link FIFO makes live arrivals in-order,
  /// so a new segment boundary is a drop (partitioned away, or dropped
  /// while this store was down).
  void note_stream(ProcessId from, const Envelope& e) {
    if (from >= peers_.size()) return;
    PeerStream& ps = peers_[from];
    if (!ps.any || e.epoch > ps.epoch) {
      ps.any = true;
      ps.epoch = e.epoch;
      ps.first_seq = e.seq;
      ps.last_seq = e.seq;
      ps.recv.reset();
      ps.recv.add(e.seq);
      ps.gapped = false;
      refresh_gap(from);
      if (session_.active()) reevaluate_session();
    } else if (e.epoch == ps.epoch) {
      if (e.seq > ps.last_seq) ps.last_seq = e.seq;
      ps.recv.add(e.seq);
      refresh_gap(from);
    }
  }

  /// Re-derives the cached gap flag from the coverage segments; counts
  /// the intact→gapped transitions (one per drop episode per sender).
  void refresh_gap(ProcessId q) {
    PeerStream& ps = peers_[q];
    const bool intact = !ps.any || ps.recv.contiguous();
    if (intact) {
      ps.gapped = false;
    } else if (!ps.gapped) {
      ps.gapped = true;
      ++stats_.stream_gaps_detected;
    }
  }

  void reevaluate_session() {
    if constexpr (kCatchupCapable) {
      std::vector<PeerStreamView> views;
      views.reserve(peers_.size());
      for (const PeerStream& ps : peers_) {
        views.push_back(PeerStreamView{ps.any, ps.epoch, ps.first_seq});
      }
      if (session_.reevaluate(pid_, views)) resync_needed_ = true;
      if (session_.try_retire()) {
        // Retired: every stream verified, i.e. the installed snapshots
        // provably covered the [0, first live seq) prefix of each.
        ++stats_.syncs_completed;
        adopt_coverage(session_.coverage());
      }
    }
  }

  /// Folds a proven coverage vector (a retired session's merged donor
  /// coverage, or a completed anti-entropy round's) into the per-sender
  /// SeqCoverage, so mid-stream joins and partition drops stop reading
  /// as gaps (and those senders' acks resume feeding stability).
  /// Conservative: only same-epoch claims are adopted.
  void adopt_coverage(const std::vector<StreamCoverage>& cov) {
    for (ProcessId q = 0; q < cov.size() && q < peers_.size(); ++q) {
      if (q == pid_) continue;
      const StreamCoverage& c = cov[q];
      PeerStream& ps = peers_[q];
      if (!c.any || !ps.any || c.epoch != ps.epoch) continue;
      ps.recv.add_prefix(c.seq);
      refresh_gap(q);
    }
  }

  /// Flush-tick pacing of catch-up retries: a detected gap, or a session
  /// that made no progress since the last tick (lost request, crashed
  /// donor), re-requests — possibly from a new donor.
  void sync_housekeeping() {
    if constexpr (kCatchupCapable) {
      if (!session_.active()) return;
      // No progress for `sync_patience_ticks` re-requests. Awaiting:
      // the request or a snapshot was lost (crashed donor, or a donor
      // deferring because it is mid-sync itself). Guarding: some stream
      // is still unverified — usually its next live envelope settles it
      // within a tick, but a sender that went quiet (or crashed) after
      // an envelope of its was dropped here can only be resolved by a
      // re-serve with refreshed coverage, whose `drained` bit proves
      // the stream settled once nothing of it is in flight. Retries
      // therefore terminate: each re-serve either closes the gap or
      // the stream settles.
      if (session_.stalled_since(last_progress_mark_)) {
        ++stall_ticks_;
      } else {
        stall_ticks_ = 0;
      }
      last_progress_mark_ = session_.progress();
      const bool stalled = stall_ticks_ >= config_.sync_patience_ticks;
      if (!resync_needed_ && !stalled) return;
      // Gap retries go back to the same donor (it will have the missing
      // envelopes eventually). A stall rotates to the next live donor:
      // the current one may be crashed, or deferring because it is
      // mid-sync itself — two concurrently recovering stores must not
      // retry into each other forever.
      ProcessId donor = session_.donor();
      if (stalled) {
        bool found = false;
        for (std::size_t step = 1; step <= net_->size(); ++step) {
          const auto q = static_cast<ProcessId>(
              (session_.donor() + step) % net_->size());
          if (q == pid_) continue;
          if constexpr (kCrashAware) {
            if (net_->crashed(q)) continue;
          }
          donor = q;
          found = true;
          break;
        }
        if (!found) {
          session_.abandon();  // nobody left to sync from
          bootstrapping_ = false;
          return;
        }
      }
      stall_ticks_ = 0;
      ++stats_.sync_retries;
      send_sync_request(donor);  // opens the next round
    }
  }

  /// Flush-tick pacing of gap-triggered anti-entropy: every sender
  /// whose stream has a detected gap — and is reachable, alive, and not
  /// already mid-round — gets a pull from its origin (which trivially
  /// holds its own entries, so origin-alive gaps always close). A round
  /// whose messages were lost (re-split mid-exchange, crashed peer) is
  /// re-issued after `ae_patience_ticks` ticks rather than wedging.
  /// Skipped entirely while a catch-up session owns recovery.
  void ae_housekeeping() {
    if constexpr (kCatchupCapable) {
      if (!config_.auto_anti_entropy || session_.active()) return;
      for (ProcessId q = 0; q < peers_.size(); ++q) {
        if (q == pid_) continue;
        AeRound& r = ae_[q];
        if (r.active) {
          if (++r.ticks_active < config_.ae_patience_ticks) continue;
        } else if (!peers_[q].gapped) {
          continue;
        }
        if constexpr (kCrashAware) {
          if (net_->crashed(q)) continue;
        }
        if constexpr (kReachabilityAware) {
          if (!net_->same_partition(pid_, q)) continue;
        }
        (void)anti_entropy_round(q, /*reciprocate=*/false);
      }
    }
  }

  /// Ack heartbeat: without one, a process that updates rarely (or only
  /// reads) would pin everyone's stability floor. Sent only when
  /// `ack_clock` moved past the last ack this store shipped. Callers
  /// gate on stability where piggybacked acks already flow
  /// (single-owner envelopes, which pass clock_now()); a pooled store
  /// calls it unconditionally — its batch envelopes carry no ack (see
  /// flush_engines), so the heartbeat is the only thing keeping it from
  /// pinning compacting peers' floors — and passes its stamp *barrier*,
  /// the largest clock it can honestly vouch for with client threads
  /// stamping concurrently (see ThreadUcStore::stamp_barrier).
  void maybe_send_ack(LogicalTime ack_clock) {
    if (ack_clock == 0 ||
        ack_clock <= last_ack_clock_.load(std::memory_order_relaxed)) {
      return;
    }
    if constexpr (kCrashAware) {
      if (net_->crashed(pid_)) {
        // Crash-stop mirror of the flush path: the heartbeat dies with
        // the sender and is counted as dropped — and the seq is *not*
        // consumed, so a restarted incarnation's stream starts clean on
        // the heartbeat path too.
        ++stats_.acks_dropped_crash;
        return;
      }
    }
    Envelope ack;
    ack.kind = EnvelopeKind::kBatch;
    ack.epoch = epoch_;
    ack.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    ack.ack_clock = ack_clock;
    // FAULT kAckOverstatesClock: heartbeat twin of the flush-path
    // perversion — vouch for a stamp not yet broadcast.
    if (config_.fault.is(Fault::kAckOverstatesClock)) ack.ack_clock += 1;
    raise_last_ack(ack.ack_clock);
    ++stats_.acks_sent;
    net_->broadcast_others(pid_, ack);
    if (obs_ && obs_->tracer) {
      obs_->tracer->instant(0, obs::TraceEventKind::kAckHeartbeat, ack_clock);
    }
  }

  /// Mirrors the transport's failure knowledge into the tracker. A
  /// crashed process is only declared once nothing of it can still be
  /// in flight (otherwise a straggler could land below the fold floor);
  /// hearing that a pid is back (restart) re-arms its row.
  void refresh_crash_knowledge() {
    if constexpr (kCrashAware) {
      for (ProcessId q = 0; q < net_->size(); ++q) {
        if (q == pid_) continue;
        if (!net_->crashed(q)) {
          stability_->set_crashed(q, false);
        } else if constexpr (kInFlightAware) {
          if (net_->in_flight_from(q) == 0) {
            stability_->set_crashed(q, true);
          }
        }
      }
    }
  }

  [[nodiscard]] std::vector<StreamCoverage> build_coverage() const {
    std::vector<StreamCoverage> cov(peers_.size());
    const std::uint64_t sent = next_seq_.load(std::memory_order_relaxed);
    for (ProcessId q = 0; q < peers_.size(); ++q) {
      if (q == pid_) {
        cov[q].any = sent > 0;
        cov[q].epoch = epoch_;
        cov[q].seq = sent > 0 ? sent - 1 : 0;
        // Our own stream is trivially complete here: the local log holds
        // everything we ever broadcast, so the snapshot covers it, and
        // anything of ours still in flight reaches the (alive) requester
        // directly. Without this, a joiner in a quiet cluster could
        // never verify its donor's stream and would re-request forever.
        cov[q].drained = true;
        continue;
      }
      const PeerStream& ps = peers_[q];
      // Claim only the *proven* prefix. `last_seq` was a valid FIFO
      // shortcut before drop-mode partitions existed; with drops it
      // over-claims — the segments beyond the first hole were received,
      // but nothing proves the hole's envelopes are held here.
      // FAULT kCoverageClaimsLastSeq: resurrect exactly that shortcut —
      // claim through the last seq seen and call gapped streams drained,
      // so a joiner "verifies" streams whose hole entries nobody ships.
      const bool claim_last =
          config_.fault.is(Fault::kCoverageClaimsLastSeq);
      cov[q].any = claim_last ? ps.any : ps.any && ps.recv.has_prefix();
      cov[q].epoch = ps.epoch;
      cov[q].seq = !cov[q].any ? 0
                   : claim_last ? ps.recv.last()
                                : ps.recv.prefix();
      if constexpr (kInFlightAware) {
        // Settled stream (crashed or merely silent): with nothing of q
        // in flight, this store's prefix is q's complete output so far.
        // Unless the stream has a gap (the hole's envelopes are gone,
        // not in flight), or q is currently partitioned away (its sends
        // are being dropped before they ever count as in flight).
        bool reachable = true;
        if constexpr (kReachabilityAware) {
          reachable = net_->same_partition(pid_, q);
        }
        cov[q].drained = net_->in_flight_from(q) == 0 &&
                         (claim_last || !ps.gapped) && reachable;
      }
    }
    return cov;
  }

  /// Flush-tick sampling of the derived convergence gauges: floor lag
  /// (clock − stability floor), published-view staleness (clock − the
  /// stalest engine's last applied stamp), and the replication-lag p99
  /// so far — stored for the metrics snapshot and, with a tracer,
  /// emitted as counter-track events. Reads only atomics, so a pooled
  /// router may call it while workers run. No-op when obs is off.
  void sample_convergence_obs(LogicalTime now) {
    if (!obs_) return;
    obs_->floor_lag.store(stats_.stability_floor_lag,
                          std::memory_order_relaxed);
    LogicalTime oldest = 0;
    bool any = false;
    for (const auto& e : engines_) {
      const LogicalTime a = e->last_applied_clock();
      if (a == 0) continue;
      if (!any || a < oldest) {
        oldest = a;
        any = true;
      }
    }
    const std::uint64_t stale = any && now > oldest ? now - oldest : 0;
    obs_->view_staleness.store(stale, std::memory_order_relaxed);
    if (obs_->tracer) {
      obs_->tracer->counter(0, obs::TraceEventKind::kFloorLag,
                            stats_.stability_floor_lag);
      obs_->tracer->counter(0, obs::TraceEventKind::kViewStaleness, stale);
      if (!obs_->replication_lag.empty()) {
        obs_->tracer->counter(
            0, obs::TraceEventKind::kReplicationLag,
            static_cast<std::uint64_t>(obs_->replication_lag.percentile(99)));
      }
    }
  }

  /// Monotone max on the last-shipped ack clock (concurrent worker
  /// flushes may race the heartbeat path; the max is the honest value).
  void raise_last_ack(LogicalTime t) {
    LogicalTime cur = last_ack_clock_.load(std::memory_order_relaxed);
    while (t > cur && !last_ack_clock_.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }

  /// One sender's live stream as observed here since (re)start.
  struct PeerStream {
    bool any = false;
    std::uint64_t epoch = 0;
    std::uint64_t first_seq = 0;
    std::uint64_t last_seq = 0;
    /// Proven-held seqs of the current epoch: live arrivals plus the
    /// prefixes proven by snapshot installs / anti-entropy completions.
    SeqCoverage recv;
    /// Cached "recv is not a contiguous prefix" — the ack-gating bit.
    bool gapped = false;
  };

  /// One in-flight anti-entropy exchange with a peer (requester side).
  struct AeRound {
    bool active = false;
    std::uint64_t round = 0;
    std::vector<bool> installed;
    std::size_t installed_count = 0;
    bool sound = true;
    std::size_t ticks_active = 0;  ///< re-issue pacing (ae_housekeeping)
    std::vector<StreamCoverage> coverage;
    std::vector<LogicalTime> donor_rows;
  };

  A adt_;
  ProcessId pid_;
  StoreConfig config_;
  Net* net_;
  /// Store-wide atomic Lamport clock; shared by every keyed replica of
  /// every engine (see AtomicLamportClock).
  AtomicLamportClock clock_;
  std::optional<StoreStabilityTracker> stability_;
  CatchupSession session_;
  std::vector<PeerStream> peers_;
  /// Per donor, per shard: the delta marker of the last snapshot batch
  /// installed from it (echoed on requests), and the donor incarnation
  /// the markers belong to.
  std::vector<std::vector<std::uint64_t>> snap_markers_;
  std::vector<std::uint64_t> snap_marker_epochs_;
  std::vector<AeRound> ae_;  ///< per peer
  std::uint64_t ae_round_counter_ = 0;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Engine*> engine_ptrs_;  ///< the all-engines flush set
  std::uint64_t epoch_ = 0;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<LogicalTime> last_ack_clock_{0};
  std::size_t pending_total_ = 0;  ///< single-owner path's buffered count
  LogicalTime gc_floor_ = 0;
  std::size_t gc_cursor_ = 0;  ///< incremental sweep resume point
  std::uint64_t last_progress_mark_ = 0;
  std::size_t stall_ticks_ = 0;
  bool resync_needed_ = false;
  bool bootstrapping_ = false;
  bool any_snapshot_installed_ = false;
  /// Store-wide counters only (wire, GC, catch-up); the per-engine
  /// operation counts are merged in by stats().
  StoreStats stats_;
  /// Allocated iff config_.tracing — the "off ≈ one branch" gate every
  /// instrumentation hook tests.
  std::unique_ptr<obs::StoreObs> obs_;
  /// Caller-owned op-history recorder, null when auditing is off (same
  /// lifetime discipline as the tracer). Protected like the rest: the
  /// pooled frontend records through it with real producer slots
  /// instead of thread 0.
  audit::OpRecorder<A, Key>* recorder_ = nullptr;
};

}  // namespace ucw
