// StoreCore: the transport-independent engine of the UCStore.
//
// Everything batching actually does — per-key stamping, synchronous
// self-delivery, the pending envelope, flush accounting, delivery
// demultiplexing, keyspace introspection — is identical whether the
// envelopes travel over the deterministic SimNetwork or the real-thread
// ThreadNetwork. Both frontends derive from this core; the only
// requirements on Net are `broadcast_others(from, envelope)` and,
// optionally, `crashed(pid)` (a crashed sender's buffered updates die
// silently, matching crash-stop, and are not counted as sent).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "store/envelope.hpp"
#include "store/shard.hpp"
#include "store/store_stats.hpp"

namespace ucw {

template <UqAdt A, typename Net, typename Key = std::string>
class StoreCore {
 public:
  using Entry = KeyedUpdate<A, Key>;
  using Envelope = BatchEnvelope<A, Key>;
  using Shard = StoreShard<A, Key>;

  StoreCore(A adt, ProcessId pid, Net& net, StoreConfig config)
      : adt_(std::move(adt)), pid_(pid), config_(config), net_(&net) {
    UCW_CHECK(config_.shard_count >= 1);
    UCW_CHECK(config_.batch_window >= 1);
    typename ReplayReplica<A>::Config rep_cfg;
    rep_cfg.policy = config_.policy;
    rep_cfg.snapshot_interval = config_.snapshot_interval;
    shards_.reserve(config_.shard_count);
    for (std::size_t i = 0; i < config_.shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(adt_, pid, rep_cfg));
    }
  }

  StoreCore(const StoreCore&) = delete;
  StoreCore& operator=(const StoreCore&) = delete;

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] const StoreConfig& config() const { return config_; }
  [[nodiscard]] const StoreStats& stats() const { return stats_; }
  [[nodiscard]] const A& adt() const { return adt_; }

  /// Wait-free keyed update: local apply now, broadcast when the batch
  /// fills (or on the next flush tick). Returns the arbitration stamp.
  Stamp update(const Key& key, typename A::Update u) {
    poll();
    ++stats_.local_updates;
    auto& rep = shard_of(key).replica(key);
    auto msg = rep.local_update(std::move(u));
    const Stamp stamp = msg.stamp;
    rep.apply(pid_, msg);  // synchronous self-delivery
    pending_.entries.push_back(Entry{key, std::move(msg)});
    if (pending_.entries.size() >= config_.batch_window) {
      flush_now(FlushCause::kWindowFull);
    }
    return stamp;
  }

  /// Wait-free keyed query from the local replay; an untouched key
  /// answers from the ADT's initial state (and stays unmaterialized).
  [[nodiscard]] typename A::QueryOut query(const Key& key,
                                           const typename A::QueryIn& qi) {
    poll();
    ++stats_.queries;
    if (auto* rep = shard_of(key).find(key)) return rep->query(qi);
    return adt_.output(adt_.initial(), qi);
  }

  /// Folds queued envelopes in when the transport has a pollable inbox
  /// (ThreadNetwork); a no-op on handler-driven transports (SimNetwork,
  /// whose deliveries arrive through the registered handler). Living
  /// here — not in the frontend — means update()/query() through a
  /// StoreCore& can never skip it.
  std::size_t poll() {
    std::size_t applied = 0;
    if constexpr (kPollableInbox) {
      while (auto env = net_->inbox(pid_).try_pop()) {
        deliver(env->from, env->payload);
        ++applied;
      }
    }
    return applied;
  }

  /// The converged state k's replica currently holds; initial() for keys
  /// never touched here.
  [[nodiscard]] typename A::State state_of(const Key& key) {
    if (auto* rep = shard_of(key).find(key)) return rep->current_state();
    return adt_.initial();
  }

  /// Ships the pending batch, if any. Returns entries flushed.
  std::size_t flush() {
    if (pending_.entries.empty()) return 0;
    return flush_now(FlushCause::kManual);
  }

  [[nodiscard]] std::size_t pending() const {
    return pending_.entries.size();
  }

  // ----- keyspace introspection ----------------------------------------

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] Shard& shard(std::size_t i) { return *shards_[i]; }
  [[nodiscard]] std::size_t shard_index(const Key& key) const {
    return hash_value(key) % shards_.size();
  }
  [[nodiscard]] Shard& shard_of(const Key& key) {
    return *shards_[shard_index(key)];
  }

  [[nodiscard]] std::size_t keys_live() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->keys_live();
    return n;
  }

  [[nodiscard]] std::vector<Key> keys() const {
    std::vector<Key> out;
    for (const auto& s : shards_) {
      auto ks = s->keys();
      out.insert(out.end(), ks.begin(), ks.end());
    }
    return out;
  }

  [[nodiscard]] std::vector<ShardStats> shard_stats() const {
    std::vector<ShardStats> out;
    out.reserve(shards_.size());
    for (const auto& s : shards_) out.push_back(s->stats());
    return out;
  }

  [[nodiscard]] std::size_t approx_bytes() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->stats().approx_bytes;
    return n;
  }

 protected:
  static constexpr bool kPollableInbox =
      requires(Net& net, ProcessId p) { net.inbox(p).try_pop(); };
  static constexpr bool kCrashAware = requires(const Net& net, ProcessId p) {
    { net.crashed(p) } -> std::convertible_to<bool>;
  };

  enum class FlushCause { kWindowFull, kManual };

  std::size_t flush_now(FlushCause cause) {
    const std::size_t n = pending_.entries.size();
    if constexpr (kCrashAware) {
      if (net_->crashed(pid_)) {
        // Crash-stop: the buffered updates die with the sender; neither
        // the flush nor its bytes are counted (nothing hit the wire).
        pending_ = Envelope{};
        return n;
      }
    }
    if (cause == FlushCause::kWindowFull) {
      ++stats_.flushes_full;
    } else {
      ++stats_.flushes_manual;
    }
    pending_.seq = next_seq_++;
    stats_.envelopes_sent += 1;
    stats_.entries_sent += n;
    stats_.bytes_batched += wire_size(pending_);
    stats_.bytes_unbatched += unbatched_wire_size(pending_);
    net_->broadcast_others(pid_, pending_);
    pending_ = Envelope{};
    return n;
  }

  void deliver(ProcessId from, const Envelope& e) {
    for (const Entry& entry : e.entries) {
      auto& rep = shard_of(entry.key).replica(entry.key);
      const std::uint64_t dups_before = rep.stats().duplicate_updates;
      rep.apply(from, entry.msg);
      ++stats_.remote_entries;
      if (rep.stats().duplicate_updates != dups_before) {
        ++stats_.duplicate_entries;
      }
    }
  }

  A adt_;
  ProcessId pid_;
  StoreConfig config_;
  Net* net_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Envelope pending_;
  std::uint64_t next_seq_ = 0;
  StoreStats stats_;
};

}  // namespace ucw
