// Umbrella header for the UCStore subsystem.
#pragma once

#include "store/envelope.hpp"
#include "store/shard.hpp"
#include "store/shard_engine.hpp"
#include "store/store_stats.hpp"
#include "store/thread_store.hpp"
#include "store/uc_store.hpp"
#include "store/worker_pool.hpp"
