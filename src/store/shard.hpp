// One shard of the UCStore keyspace: key → lazily-instantiated replica.
//
// Every key is an independent Algorithm-1 object (the per-key logs never
// interact — Mostéfaoui–Perrin–Raynal's observation that the log-replay
// machinery generalizes object-by-object). A shard owns the replicas for
// the keys that hash into it, creating each one on first touch so a
// billion-key keyspace costs memory only for the keys actually used.
// Sharding keeps the per-key lookup maps small and gives the stats a
// natural aggregation unit; it is purely local structure — nothing on
// the wire knows shard boundaries.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/replica.hpp"
#include "faults/fault_spec.hpp"
#include "store/envelope.hpp"
#include "util/hash.hpp"

namespace ucw {

namespace obs {
class Tracer;  // see obs/trace.hpp; StoreConfig carries only a pointer
}  // namespace obs

/// Store-level tuning shared by the Sim and Thread frontends.
struct StoreConfig {
  std::size_t shard_count = 16;
  /// Keyed updates buffered before an automatic flush; 1 = unbatched.
  /// With `adaptive_window` this is the *cap* the per-engine windows
  /// adapt under.
  std::size_t batch_window = 8;
  /// Worker threads a pooled ThreadUcStore spreads its shard engines
  /// across (shard → worker by index modulo workers, so the assignment
  /// is a pure function of key and config — stable across restarts).
  /// 1 = the classic single-owner store; Sim stores are always 1.
  std::size_t workers = 1;
  /// Distinct client threads a pooled ThreadUcStore accepts on its
  /// update()/query()/get() surface. Each thread is lazily assigned one
  /// stamp-claim slot (the per-producer bookkeeping behind the honest
  /// flush-time ack — see ThreadUcStore::stamp_barrier); exceeding the
  /// cap is a programming error and CHECK-fails. Irrelevant unpooled
  /// (workers == 1 keeps the classic one-owner-thread contract).
  std::size_t max_producers = 64;
  /// Nagle-style adaptive batch windows: each shard engine sizes its
  /// flush window from an EWMA of the updates it observed per flush
  /// tick, clamped to [1, batch_window]. The flush tick is the latency
  /// bound — a window larger than one tick's traffic cannot fill before
  /// the tick ships it anyway, so a cold engine shrinks toward 1 (its
  /// lone update ships immediately instead of waiting out the tick)
  /// while a hot engine grows back toward the cap.
  bool adaptive_window = false;
  /// Shard engines folded per GC sweep — the incremental cursor that
  /// replaces the O(all keys) walk: each flush tick folds at most this
  /// many *dirty* engines (engines holding entries at or below the
  /// stability floor), resuming round-robin where the last sweep
  /// stopped. 0 = fold every dirty engine each sweep. Clean engines are
  /// skipped in O(1) either way.
  std::size_t gc_engines_per_sweep = 0;
  ReplayPolicy policy = ReplayPolicy::CachedPrefix;
  std::size_t snapshot_interval = 64;
  /// Store-level stability tracking + log compaction: folds the
  /// store-wide stability floor into every live per-key log on the
  /// flush tick, and sends ack heartbeats so silent processes do not
  /// pin the floor. Requires FIFO links (see recovery/stability.hpp).
  /// Mixed clusters work: every store piggybacks its clock on each
  /// envelope regardless of this flag (so compacting peers can fold),
  /// but a gc=false store sends no heartbeats — if it also goes quiet,
  /// it pins the cluster floor exactly like any silent process.
  bool gc = false;
  /// Flush ticks a catch-up session waits without progress before
  /// re-requesting the sync. Must exceed the request → last-snapshot
  /// round trip in ticks, or the joiner opens a new round before the
  /// previous batch can land and spins; 1 retries on the very next tick
  /// (unit tests with drained networks).
  std::size_t sync_patience_ticks = 6;
  /// Incremental snapshot shipping: when a requester echoes the delta
  /// markers it installed before (catch-up retry, anti-entropy round),
  /// serve only the keys whose log advanced since — instead of every
  /// shard in full, every round. Off forces full snapshots always (the
  /// control arm of the delta benches/tests). Never changes *what* the
  /// receiver ends up holding, only how much of it rides the wire.
  bool incremental_snapshots = true;
  /// Gap-triggered anti-entropy on the flush tick: a sender's stream
  /// with a detected gap (drop-mode partition) that is reachable and
  /// alive gets one anti_entropy_round() pull, re-issued every
  /// `ae_patience_ticks` ticks until the round completes and clears the
  /// gap. This is what makes a heal self-repairing: envelopes still in
  /// flight *inside* a group when the heal-time exchange served are
  /// caught by the next tick's pull from their origin, instead of
  /// leaking as permanent divergence. Off = anti-entropy only when the
  /// application calls anti_entropy_round() itself.
  bool auto_anti_entropy = true;
  /// Like sync_patience_ticks: must exceed the request → last-delta
  /// round trip in flush ticks, or rounds are superseded before they
  /// can complete.
  std::size_t ae_patience_ticks = 6;
  /// Opt-in core affinity: worker w of a pooled ThreadUcStore pins
  /// itself to core w mod hardware_concurrency() on startup (Linux
  /// only; a no-op hint elsewhere — see util/affinity.hpp). Producer
  /// threads belong to the application and pin themselves via
  /// pin_current_thread_to_core() when they care.
  bool pin_workers = false;
  /// COMPARISON ARM: restore the pre-saturation-rework frontend on the
  /// same binary — remote envelopes fanned out to worker rings by
  /// whichever thread holds the router lock (instead of sharded
  /// straight into per-worker remote inboxes with no lock), workers
  /// popping one op per loop (instead of block drains), and published
  /// get()s copying the state out of the seqlock (instead of answering
  /// from the immutable shared snapshot). Kept so the E14 saturation
  /// bench can price the rework end to end; not intended for
  /// production use.
  bool router_delivery = false;

  // ----- observability (src/obs/) --------------------------------------
  /// Master switch for the tracing + derived-metrics hooks. Always
  /// compiled in; off costs one branch on a pointer that stays null
  /// for the store's lifetime.
  bool tracing = false;
  /// Span sink for life-of-an-update events. Owned by the *caller*,
  /// never the store: a tracer that outlives the store lets a
  /// crash-restarted incarnation keep appending to the same
  /// per-process tracks, so one trace holds the whole timeline. Null
  /// with tracing=true = derived metrics only, no spans.
  obs::Tracer* tracer = nullptr;
  /// Per-op span events (update stamp, local/remote apply) are
  /// recorded for 1 in this many stamps (rounded up to a power of two;
  /// keyed on the stamp clock, so the same update is sampled
  /// consistently at origin and replicas). Batch, recovery,
  /// anti-entropy, partition, and gauge events are never sampled out.
  /// 1 = full fidelity; the default keeps the hot path inside the
  /// tracing-overhead budget.
  std::size_t trace_sample_every = 16;
  /// TEST-ONLY consistency-bug injection for the audit/fuzz pipeline:
  /// selects one mutant from the mutation corpus (src/faults/) — a
  /// deliberately broken merge/GC/ack/recovery variant the black-box
  /// auditor must catch. Fault::kNone (the default) is the clean store.
  /// Never set a fault outside the audit/fuzz tests.
  FaultSpec fault{};
};

/// Per-shard aggregate view (rendered by print_shard_table in
/// store_stats.hpp).
struct ShardStats {
  std::size_t keys_live = 0;         ///< replicas instantiated
  /// The engine's current flush window (== StoreConfig::batch_window
  /// unless adaptive windows chose a smaller one). 0 when the stats
  /// come from a bare StoreShard with no engine above it.
  std::size_t batch_window = 0;
  std::uint64_t local_updates = 0;   ///< across all keys in the shard
  std::uint64_t remote_updates = 0;
  std::uint64_t duplicate_updates = 0;
  std::uint64_t queries = 0;
  /// Keys with a live published read view (promoted hot keys); 0 on Sim
  /// stores and bare shards — only pooled ThreadUcStore queries promote.
  std::size_t published_keys = 0;
  std::uint64_t log_entries = 0;     ///< resident log length, summed
  std::uint64_t gc_folded = 0;       ///< log entries folded by GC
  std::uint64_t snapshots_exported = 0;  ///< served to catching-up peers
  std::uint64_t snapshots_installed = 0; ///< installed during catch-up
  std::size_t approx_bytes = 0;
  /// Read-view registry copy accounting (pooled stores only). Promotion
  /// publishes an immutable snapshot of the key→view registry map;
  /// `view_registry_keys_copied` is the total keys copied across all
  /// such publishes. The geometric republish schedule keeps this O(live
  /// views) even under a cold-key get() scan — the regression test in
  /// store_read_path_test.cpp pins that bound.
  std::uint64_t view_registry_publishes = 0;
  std::uint64_t view_registry_keys_copied = 0;
};

template <UqAdt A, typename Key = std::string>
class StoreShard {
 public:
  using Replica = ReplayReplica<A>;

  StoreShard(A adt, ProcessId pid, typename Replica::Config config)
      : adt_(std::move(adt)), pid_(pid), config_(config) {}

  /// The replica for `key`, instantiated on first touch.
  [[nodiscard]] Replica& replica(const Key& key) {
    auto it = replicas_.find(key);
    if (it == replicas_.end()) {
      it = replicas_.emplace(key, Replica(adt_, pid_, config_)).first;
    }
    return it->second;
  }

  /// The replica for `key` if it was ever touched, else nullptr.
  [[nodiscard]] const Replica* find(const Key& key) const {
    auto it = replicas_.find(key);
    return it == replicas_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] Replica* find(const Key& key) {
    auto it = replicas_.find(key);
    return it == replicas_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t keys_live() const { return replicas_.size(); }

  /// Every key this shard has materialized (deterministic order not
  /// guaranteed; callers sort when reporting).
  [[nodiscard]] std::vector<Key> keys() const {
    std::vector<Key> out;
    out.reserve(replicas_.size());
    for (const auto& [k, _] : replicas_) out.push_back(k);
    return out;
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& [k, r] : replicas_) fn(k, r);
  }

  // Snapshot traffic accounting (bumped by the catch-up codec/installer).
  void note_snapshot_exported() { ++snapshots_exported_; }
  void note_snapshot_installed() { ++snapshots_installed_; }

  [[nodiscard]] ShardStats stats() const {
    ShardStats s;
    s.keys_live = replicas_.size();
    s.snapshots_exported = snapshots_exported_;
    s.snapshots_installed = snapshots_installed_;
    for (const auto& [k, r] : replicas_) {
      const ReplicaStats& rs = r.stats();
      s.local_updates += rs.local_updates;
      s.remote_updates += rs.remote_updates;
      s.duplicate_updates += rs.duplicate_updates;
      s.queries += rs.queries;
      s.log_entries += r.log().size();
      s.gc_folded += rs.gc_folded;
      s.approx_bytes += key_wire_bytes(k) + r.approx_bytes();
    }
    return s;
  }

 private:
  A adt_;
  ProcessId pid_;
  typename Replica::Config config_;
  std::unordered_map<Key, Replica, ValueHash> replicas_;
  std::uint64_t snapshots_exported_ = 0;
  std::uint64_t snapshots_installed_ = 0;
};

}  // namespace ucw
