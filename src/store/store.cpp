// Explicit instantiations of the common store configurations: catches
// template errors at library-build time rather than first use.
#include "store/all.hpp"

#include "adt/all.hpp"

#include "recovery/all.hpp"
#include "util/spsc_ring.hpp"

namespace ucw {

template struct KeyedUpdate<SetAdt<int>>;
template struct BatchEnvelope<SetAdt<int>>;
template struct KeySnapshot<SetAdt<int>>;
template struct ShardSnapshot<SetAdt<int>>;
template ShardSnapshot<SetAdt<int>, std::string> encode_shard_snapshot(
    StoreShard<SetAdt<int>>&, std::size_t, std::size_t);
template class StoreShard<SetAdt<int>>;
template class ShardEngine<SetAdt<int>>;
template class ShardEngine<CounterAdt>;
template class SimUcStore<SetAdt<int>>;
template class SimUcStore<CounterAdt>;
template class SimUcStore<RegisterAdt<std::string>>;
template class ThreadUcStore<SetAdt<int>>;
template class ThreadUcStore<CounterAdt>;
template class StoreWorkerPool<ThreadUcStore<SetAdt<int>>>;
template class StoreWorkerPool<ThreadUcStore<CounterAdt>>;
template class SpscRing<int>;
template class MpscRing<int>;
template class SeqlockView<std::set<int>>;
template class SimNetwork<BatchEnvelope<SetAdt<int>>>;
template class ThreadNetwork<BatchEnvelope<CounterAdt>>;

}  // namespace ucw
