// StoreWorkerPool: shard engines spread across N single-owner workers,
// fed by any number of client threads.
//
// Update consistency needs no cross-key arbitration, so the store's
// shard engines are embarrassingly parallel — the only reason one
// thread ever owned them all was the monolithic StoreCore. The pool
// restores multi-core scaling while preserving the single-owner
// discipline *per shard*:
//
//   * worker w owns every engine with index ≡ w (mod workers) — a pure
//     function of key and config, so shard→worker assignment is stable
//     across restarts and identical on every replica of a config;
//   * the frontend is multi-producer: every client thread of the store
//     enqueues to the owning worker over an MPSC ring
//     (util/mpsc_ring.hpp). The ring keeps FIFO *per producer* — a
//     thread's query dequeues behind its own updates, preserving
//     read-your-writes per thread without blocking anyone — while
//     cross-thread interleaving is as arbitrary as the network already
//     makes delivery. Batches of updates ride multi-slot claims
//     (try_push_n: one CAS for k contiguous ops, still FIFO per
//     producer) and workers drain in blocks (try_pop_n);
//   * every worker also owns a *remote inbox*: a second MPSC ring of
//     pre-sharded entries that network delivery fills with only a
//     shard-index computation — the router lock is no longer on the
//     delivery path at all (see ThreadUcStore::deliver_sharded). The
//     worker drains it opportunistically every loop, and *always*
//     before folding in a GC op: fold ops ride the op ring behind the
//     router's floor computation, and the floor only covers entries
//     whose envelopes were delivered (hence pushed to remote inboxes)
//     before it was computed — draining the inbox first preserves
//     "every entry at or below the floor is applied before the fold";
//   * flush, GC-fold, and heartbeat ticks run per worker: each worker
//     drains its own engines into one envelope (seq drawn from the
//     router's atomic stream counter), folds its own engines to the
//     router-computed floor, and charges a private StoreStats slice, so
//     concurrent ticks never share a cache line, let alone a lock.
//
// Store-wide concerns stay behind the router lock (ThreadUcStore): the
// stability tracker is fed by envelope-header notes queued at delivery
// time and folded in on the router's tick, and the GC floor is computed
// there and handed to workers as a ring op — engine state is touched by
// its owner only, always. A get() that falls back to the ring promotes
// its key to a published read view (shard_engine.hpp), which is what
// lets the *next* get() of that key skip the ring entirely.
//
// Synchronization contract (what TSan checks): every engine is touched
// by exactly one worker; other threads observe worker effects only
// through `processed` (release) after `quiesce()` (acquire) — which
// makes post-drain reads of engine state and stats slices sound once
// producers have stopped — or through the seqlock views, which are safe
// under full concurrency.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/store_obs.hpp"
#include "store/shard_engine.hpp"
#include "store/store_stats.hpp"
#include "util/affinity.hpp"
#include "util/mpsc_ring.hpp"

namespace ucw {

template <typename Store>
class StoreWorkerPool {
  using A = typename Store::Adt;
  using Key = typename Store::KeyT;
  using Engine = typename Store::Engine;
  using FlushCause = typename Store::FlushCause;

 public:
  /// One pre-sharded remote entry: the owning engine plus the keyed
  /// update itself (already stamped by the sender). What the network
  /// delivery path pushes into worker remote inboxes — by value, one
  /// ring slot per entry, a whole per-worker group under one multi-
  /// slot claim (no allocation on the delivery path).
  struct RemoteItem {
    std::uint32_t engine = 0;
    ProcessId from = 0;
    Key key{};
    UpdateMessage<A> msg{};
  };
  /// One element of a client-side update batch (enqueue_update_batch).
  struct BatchUpdate {
    std::uint32_t engine = 0;
    Key key{};
    UpdateMessage<A> msg{};
  };

 private:
  struct Op {
    enum class Kind : std::uint8_t {
      kUpdate,
      kRemote,
      kQuery,
      kFlush,
      kGc,
      kStop,
    };
    Kind kind = Kind::kStop;
    std::uint32_t engine = 0;
    ProcessId from = 0;
    Key key{};
    UpdateMessage<A> msg{};
    LogicalTime gc_floor = 0;
    bool promote_key = false;  ///< kQuery: publish a view for this key
    const typename A::QueryIn* query_in = nullptr;
    typename A::QueryOut* query_out = nullptr;
    std::atomic<std::uint32_t>* done = nullptr;
    std::atomic<std::size_t>* counted = nullptr;  ///< flushed / folded
  };

  struct Worker {
    MpscRing<Op> ring{kRingCapacity};
    /// Remote inbox: pre-sharded entries pushed straight from the
    /// network delivery path (no router lock), one envelope-slice per
    /// multi-slot claim. Sized in entries, to ride out router-tick
    /// gaps a few thousand deliveries long.
    MpscRing<RemoteItem> remote{kRemoteRingCapacity};
    std::vector<Engine*> engines;  ///< this worker's disjoint subset
    StoreStats stats;              ///< private flush/GC accounting slice
    std::vector<Op> block;         ///< reusable try_pop_n drain buffer
    std::vector<RemoteItem> rblock;  ///< reusable remote drain buffer
    std::uint16_t track = 0;       ///< trace track (worker w → track w+1)
    std::size_t pending = 0;       ///< buffered entries across its engines
    std::size_t gc_cursor = 0;     ///< incremental-fold resume point
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> remote_processed{0};  ///< entries applied
    // Idle parking: after a spin budget the worker sleeps on the cv
    // (bounded by a timeout, so a lost wake costs a millisecond, never
    // liveness); producers only take the lock when `sleeping` says
    // someone is actually parked, keeping the push fast path lock-free.
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> sleeping{false};
    std::thread thread;
  };

 public:
  static constexpr std::size_t kRingCapacity = 4096;
  static constexpr std::size_t kRemoteRingCapacity = 4096;
  /// Ops a worker takes from its ring per try_pop_n block.
  static constexpr std::size_t kDrainBlock = 64;
  /// "No writes yet" ticket sentinel (see enqueue_update).
  static constexpr std::uint64_t kNoTicket =
      std::numeric_limits<std::uint64_t>::max();

  StoreWorkerPool(Store& store, std::size_t n_workers) : store_(store) {
    UCW_CHECK(n_workers >= 1);
    workers_.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      workers_.push_back(std::make_unique<Worker>());
      workers_.back()->track = static_cast<std::uint16_t>(w + 1);
    }
    for (std::size_t i = 0; i < store_.shard_count(); ++i) {
      workers_[i % n_workers]->engines.push_back(&store_.engine(i));
    }
    for (auto& w : workers_) {
      w->thread = std::thread([this, wk = w.get()] { worker_main(*wk); });
    }
  }

  ~StoreWorkerPool() { stop(); }
  StoreWorkerPool(const StoreWorkerPool&) = delete;
  StoreWorkerPool& operator=(const StoreWorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t worker_of(std::size_t engine_index) const {
    return engine_index % workers_.size();
  }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& w : workers_) {
      Op op;
      op.kind = Op::Kind::kStop;
      push(*w, std::move(op));
    }
    for (auto& w : workers_) w->thread.join();
  }

  /// Any client thread; FIFO with that thread's other ops only.
  /// Returns the op's ring-position *ticket*: the consumer pops in
  /// position order and bumps `processed` once per op, so
  /// `worker_processed(w) > ticket` is a precise "my update has been
  /// applied" test — the read-your-writes check behind get().
  std::uint64_t enqueue_update(std::size_t engine_index, const Key& key,
                               UpdateMessage<A> msg) {
    Op op;
    op.kind = Op::Kind::kUpdate;
    op.engine = static_cast<std::uint32_t>(engine_index);
    op.key = key;
    op.msg = std::move(msg);
    return push(*workers_[worker_of(engine_index)], std::move(op));
  }

  /// Batched enqueue: every element must belong to `worker` (the caller
  /// grouped by worker_of already). One multi-slot ring claim per chunk
  /// — a single CAS covers up to kRingCapacity/2 ops — and the block
  /// occupies contiguous positions, so per-producer FIFO is exactly as
  /// for singles. Returns the LAST claimed position (the batch's
  /// read-your-writes ticket) and reports claims made via `claims_out`.
  std::uint64_t enqueue_update_batch(std::size_t worker,
                                     std::vector<BatchUpdate>& ops,
                                     std::uint64_t* claims_out = nullptr) {
    UCW_CHECK(!ops.empty());
    Worker& w = *workers_[worker];
    // Thread-local staging keeps the batch path allocation-free in
    // steady state (the buffer is private to one call at a time —
    // cleared on entry, never used across calls).
    static thread_local std::vector<Op> block;
    block.clear();
    block.reserve(ops.size());
    for (BatchUpdate& u : ops) {
      Op op;
      op.kind = Op::Kind::kUpdate;
      op.engine = u.engine;
      op.key = std::move(u.key);
      op.msg = std::move(u.msg);
      block.push_back(std::move(op));
    }
    ops.clear();  // elements were moved from; capacity stays for reuse
    std::uint64_t last_pos = 0;
    std::uint64_t claims = 0;
    std::size_t off = 0;
    while (off < block.size()) {
      // Chunk at half the ring so a large batch cannot deadlock against
      // a full ring (the consumer is guaranteed to free slots).
      const std::size_t n =
          std::min(block.size() - off, kRingCapacity / 2);
      std::uint64_t pos = 0;
      while (!w.ring.try_push_n(block.data() + off, n, &pos)) {
        std::this_thread::yield();
      }
      ++claims;
      last_pos = pos + n - 1;
      off += n;
      wake(w);
    }
    if (claims_out != nullptr) *claims_out = claims;
    return last_pos;
  }

  /// Network delivery path (any thread, NO router lock): moves one
  /// envelope's pre-sharded slice into `worker`'s remote inbox — one
  /// multi-slot claim per chunk, one wake — and clears `items` with
  /// its capacity intact, so a reused scratch group allocates nothing
  /// in steady state.
  void deliver_remote(std::size_t worker, std::vector<RemoteItem>& items) {
    Worker& w = *workers_[worker];
    std::size_t off = 0;
    while (off < items.size()) {
      const std::size_t n =
          std::min(items.size() - off, kRemoteRingCapacity / 2);
      while (!w.remote.try_push_n(items.data() + off, n)) {
        wake(w);  // full ring: the owner is behind, get it moving
        std::this_thread::yield();
      }
      off += n;
    }
    items.clear();
    wake(w);
  }

  /// Acquire-load of worker `w`'s processed-op count (ticket check).
  [[nodiscard]] std::uint64_t worker_processed(std::size_t w) const {
    return workers_[w]->processed.load(std::memory_order_acquire);
  }

  /// Any thread (in practice: whichever one holds the router lock).
  void enqueue_remote(std::size_t engine_index, ProcessId from,
                      const Key& key, const UpdateMessage<A>& msg) {
    Op op;
    op.kind = Op::Kind::kRemote;
    op.engine = static_cast<std::uint32_t>(engine_index);
    op.from = from;
    op.key = key;
    op.msg = msg;
    push(*workers_[worker_of(engine_index)], std::move(op));
  }

  /// Runs the query on the owning worker and waits for the answer —
  /// ring FIFO behind any update the calling thread already enqueued,
  /// so every client thread reads its own writes. With `promote` (a
  /// get() fallback) the worker also publishes a view for the key, so
  /// subsequent get()s of it skip the ring; plain query() passes false
  /// — promotion is opt-in by read path, a keyspace scan through
  /// query() must not inflate the hot set. Any client thread.
  [[nodiscard]] typename A::QueryOut run_query(
      std::size_t engine_index, const Key& key,
      const typename A::QueryIn& qi, bool promote) {
    typename A::QueryOut out{};
    std::atomic<std::uint32_t> done{0};
    Op op;
    op.kind = Op::Kind::kQuery;
    op.engine = static_cast<std::uint32_t>(engine_index);
    op.key = key;
    op.promote_key = promote;
    op.query_in = &qi;
    op.query_out = &out;
    op.done = &done;
    push(*workers_[worker_of(engine_index)], std::move(op));
    while (done.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    return out;
  }

  /// Synchronous flush tick across every worker: each drains its own
  /// engines into one envelope and re-sizes its adaptive windows.
  /// Returns total entries flushed. Router-lock holder only.
  std::size_t flush_all() {
    std::atomic<std::uint32_t> done{0};
    std::atomic<std::size_t> flushed{0};
    for (auto& w : workers_) {
      Op op;
      op.kind = Op::Kind::kFlush;
      op.done = &done;
      op.counted = &flushed;
      push(*w, std::move(op));
    }
    while (done.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
    return flushed.load(std::memory_order_relaxed);
  }

  /// Synchronous GC tick: every worker folds its own dirty engines to
  /// `floor`, spending at most `budget_per_worker` engines (0 = all of
  /// them), resuming round-robin where its previous fold stopped.
  /// Returns entries folded. Router-lock holder only. Because the fold
  /// rides the same rings as updates, every entry enqueued before this
  /// call is applied before its engine folds — which is what lets the
  /// router raise the floor up to the stamp barrier (see
  /// ThreadUcStore::flush) without folding over an in-ring entry.
  std::size_t gc_all(LogicalTime floor, std::size_t budget_per_worker) {
    std::atomic<std::uint32_t> done{0};
    std::atomic<std::size_t> folded{0};
    for (auto& w : workers_) {
      Op op;
      op.kind = Op::Kind::kGc;
      op.gc_floor = floor;
      op.engine = static_cast<std::uint32_t>(budget_per_worker);
      op.done = &done;
      op.counted = &folded;
      push(*w, std::move(op));
    }
    while (done.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
    return folded.load(std::memory_order_relaxed);
  }

  /// Blocks until every op pushed before this call has been processed.
  /// With producers stopped, engine state (drain barriers, state_of,
  /// stats) is then safely readable from the calling thread; with
  /// producers still running it is only a point-in-time drain barrier.
  void quiesce() const {
    for (const auto& w : workers_) {
      const std::uint64_t remote_target = w->remote.pushed();
      while (w->remote_processed.load(std::memory_order_acquire) <
             remote_target) {
        std::this_thread::yield();
      }
      const std::uint64_t target = w->ring.pushed();
      while (w->processed.load(std::memory_order_acquire) < target) {
        std::this_thread::yield();
      }
    }
  }

  /// Folds the workers' private flush/GC accounting slices into `s`.
  /// Callers quiesce first.
  void merge_stats(StoreStats& s) const {
    for (const auto& w : workers_) merge_wire_counters(s, w->stats);
  }

 private:
  std::uint64_t push(Worker& w, Op&& op) {
    std::uint64_t pos = 0;
    while (!w.ring.try_push(std::move(op), &pos)) std::this_thread::yield();
    wake(w);
    return pos;
  }

  void wake(Worker& w) {
    if (w.sleeping.load(std::memory_order_seq_cst)) {
      // Parked consumer: the lock pairs the notify with its wait-check
      // so the wake cannot slip between "ring empty" and "sleep".
      std::lock_guard lock(w.mutex);
      w.cv.notify_one();
    }
  }

  /// Applies every remote entry currently in `w`'s inbox (owner thread
  /// only), block-draining into the reusable buffer. Called
  /// opportunistically each loop iteration and — load-bearing for GC
  /// soundness — at the top of every kGc op: the floor the fold
  /// carries only covers entries delivered (pushed here) before it was
  /// computed, so draining first guarantees no fold over an entry
  /// still in the inbox.
  void drain_remote(Worker& w) {
    for (;;) {
      w.rblock.clear();
      const std::size_t got = w.remote.try_pop_n(w.rblock, kDrainBlock);
      if (got == 0) return;
      for (RemoteItem& item : w.rblock) {
        (void)store_.engine(item.engine)
            .apply_remote(item.from, item.key, item.msg);
        if (const auto& o = store_.obs_;
            o && o->tracer && o->sampled(item.msg.stamp.clock)) {
          o->tracer->instant(w.track, obs::TraceEventKind::kApplyRemote,
                             item.msg.stamp.clock);
        }
      }
      w.remote_processed.fetch_add(got, std::memory_order_release);
    }
  }

  void worker_main(Worker& w) {
    if (store_.config().pin_workers) {
      (void)pin_current_thread_to_core(static_cast<std::size_t>(w.track) - 1);
    }
    std::size_t idle = 0;
    w.block.reserve(kDrainBlock);
    w.rblock.reserve(kDrainBlock);
    // The comparison arm (StoreConfig::router_delivery) restores the
    // pre-rework consumer too: one pop per loop, no block drains — so
    // a benchmark flipping the flag measures the whole saturation
    // rework, not just where delivery entries land.
    const bool legacy_pops = store_.config().router_delivery;
    for (;;) {
      drain_remote(w);
      w.block.clear();
      std::size_t got = 0;
      if (legacy_pops) {
        if (auto op = w.ring.try_pop()) {
          w.block.push_back(std::move(*op));
          got = 1;
        }
      } else {
        got = w.ring.try_pop_n(w.block, kDrainBlock);
      }
      if (got == 0) {
        // Brief spin for the common back-to-back case, a yield phase so
        // an oversubscribed host (or a producer on a single core) runs,
        // then park — an idle pool must not burn a core per worker. The
        // timed wait bounds any lost-wake window at 1 ms.
        ++idle;
        if (idle > 64 && idle <= 4096) {
          std::this_thread::yield();
        } else if (idle > 4096) {
          std::unique_lock lock(w.mutex);
          w.sleeping.store(true, std::memory_order_seq_cst);
          w.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
            return !w.ring.empty() || !w.remote.empty();
          });
          w.sleeping.store(false, std::memory_order_relaxed);
          idle = 65;  // back to the yield phase, not the hot spin
        }
        continue;
      }
      idle = 0;
      bool stop = false;
      for (Op& popped : w.block) {
        Op* op = &popped;
        switch (op->kind) {
          case Op::Kind::kUpdate: {
            Engine& e = store_.engine(op->engine);
            const LogicalTime sc = op->msg.stamp.clock;
            e.local_update(op->key, std::move(op->msg));
            if (const auto& o = store_.obs_;
                o && o->tracer && o->sampled(sc)) {
              o->tracer->instant(w.track, obs::TraceEventKind::kApplyLocal,
                                 sc);
            }
            ++w.pending;
            const bool full =
                store_.config().adaptive_window
                    ? e.window_filled()
                    : w.pending >= store_.config().batch_window;
            if (full) {
              (void)store_.flush_engines(w.engines, FlushCause::kWindowFull,
                                         w.stats, /*piggyback_ack=*/false,
                                         w.track);
              w.pending = 0;
            }
            break;
          }
          case Op::Kind::kRemote:
            // Legacy router-fanned delivery (StoreConfig::router_delivery).
            (void)store_.engine(op->engine).apply_remote(op->from, op->key,
                                                         op->msg);
            if (const auto& o = store_.obs_;
                o && o->tracer && o->sampled(op->msg.stamp.clock)) {
              o->tracer->instant(w.track, obs::TraceEventKind::kApplyRemote,
                                 op->msg.stamp.clock);
            }
            break;
          case Op::Kind::kQuery: {
            Engine& e = store_.engine(op->engine);
            *op->query_out = e.query(op->key, *op->query_in);
            // A get() fallback promotes: from here on this key answers
            // get() from its published view, no ring round trip.
            if (op->promote_key) e.promote(op->key);
            op->done->store(1, std::memory_order_release);
            break;
          }
          case Op::Kind::kFlush: {
            for (Engine* e : w.engines) e->on_flush_tick();
            const std::size_t n = store_.flush_engines(
                w.engines, FlushCause::kManual, w.stats,
                /*piggyback_ack=*/false, w.track);
            w.pending = 0;
            op->counted->fetch_add(n, std::memory_order_relaxed);
            op->done->fetch_add(1, std::memory_order_release);
            break;
          }
          case Op::Kind::kGc: {
            // Entries the floor covers may still sit in the remote
            // inbox (they were pushed there before the floor was
            // computed): apply them before folding.
            drain_remote(w);
            // op->engine carries the per-worker budget (0 = every dirty
            // engine); the dirty-cursor skip keeps clean engines O(1).
            std::size_t budget = op->engine;
            const std::size_t n = w.engines.size();
            if (budget == 0 || budget > n) budget = n;
            std::size_t folded = 0;
            std::size_t visited = 0;
            std::size_t step = 0;
            for (; step < n && visited < budget; ++step) {
              Engine& e = *w.engines[(w.gc_cursor + step) % n];
              if (!e.gc_pending(op->gc_floor)) continue;
              folded += e.fold_to(op->gc_floor);
              ++visited;
            }
            w.gc_cursor = n == 0 ? 0 : (w.gc_cursor + step) % n;
            if (visited > 0) {
              ++w.stats.gc_runs;
              w.stats.gc_folded += folded;
            }
            if (const auto& o = store_.obs_; o && o->tracer && folded > 0) {
              o->tracer->instant(w.track, obs::TraceEventKind::kGcFold,
                                 folded, op->gc_floor);
            }
            op->counted->fetch_add(folded, std::memory_order_relaxed);
            op->done->fetch_add(1, std::memory_order_release);
            break;
          }
          case Op::Kind::kStop:
            stop = true;
            break;
        }
        w.processed.fetch_add(1, std::memory_order_release);
      }
      if (stop) return;
    }
  }

  Store& store_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;
};

}  // namespace ucw
