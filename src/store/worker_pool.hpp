// StoreWorkerPool: shard engines spread across N single-owner workers,
// fed by any number of client threads.
//
// Update consistency needs no cross-key arbitration, so the store's
// shard engines are embarrassingly parallel — the only reason one
// thread ever owned them all was the monolithic StoreCore. The pool
// restores multi-core scaling while preserving the single-owner
// discipline *per shard*:
//
//   * worker w owns every engine with index ≡ w (mod workers) — a pure
//     function of key and config, so shard→worker assignment is stable
//     across restarts and identical on every replica of a config;
//   * the frontend is multi-producer: every client thread of the store
//     (plus whichever thread holds the router lock and fans remote
//     entries in) enqueues to the owning worker over an MPSC ring
//     (util/mpsc_ring.hpp). The ring keeps FIFO *per producer* — a
//     thread's query dequeues behind its own updates, preserving
//     read-your-writes per thread without blocking anyone — while
//     cross-thread interleaving is as arbitrary as the network already
//     makes delivery;
//   * flush, GC-fold, and heartbeat ticks run per worker: each worker
//     drains its own engines into one envelope (seq drawn from the
//     router's atomic stream counter), folds its own engines to the
//     router-computed floor, and charges a private StoreStats slice, so
//     concurrent ticks never share a cache line, let alone a lock.
//
// Store-wide concerns stay behind the router lock (ThreadUcStore): the
// stability tracker is fed by envelope-level acks the routing thread
// observes *before* fanning entries out, and the GC floor is computed
// there and handed to workers as a ring op — engine state is touched by
// its owner only, always. A get() that falls back to the ring promotes
// its key to a published read view (shard_engine.hpp), which is what
// lets the *next* get() of that key skip the ring entirely.
//
// Synchronization contract (what TSan checks): every engine is touched
// by exactly one worker; other threads observe worker effects only
// through `processed` (release) after `quiesce()` (acquire) — which
// makes post-drain reads of engine state and stats slices sound once
// producers have stopped — or through the seqlock views, which are safe
// under full concurrency.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/store_obs.hpp"
#include "store/shard_engine.hpp"
#include "store/store_stats.hpp"
#include "util/mpsc_ring.hpp"

namespace ucw {

template <typename Store>
class StoreWorkerPool {
  using A = typename Store::Adt;
  using Key = typename Store::KeyT;
  using Engine = typename Store::Engine;
  using FlushCause = typename Store::FlushCause;

  struct Op {
    enum class Kind : std::uint8_t {
      kUpdate,
      kRemote,
      kQuery,
      kFlush,
      kGc,
      kStop,
    };
    Kind kind = Kind::kStop;
    std::uint32_t engine = 0;
    ProcessId from = 0;
    Key key{};
    UpdateMessage<A> msg{};
    LogicalTime gc_floor = 0;
    bool promote_key = false;  ///< kQuery: publish a view for this key
    const typename A::QueryIn* query_in = nullptr;
    typename A::QueryOut* query_out = nullptr;
    std::atomic<std::uint32_t>* done = nullptr;
    std::atomic<std::size_t>* counted = nullptr;  ///< flushed / folded
  };

  struct Worker {
    MpscRing<Op> ring{kRingCapacity};
    std::vector<Engine*> engines;  ///< this worker's disjoint subset
    StoreStats stats;              ///< private flush/GC accounting slice
    std::uint16_t track = 0;       ///< trace track (worker w → track w+1)
    std::size_t pending = 0;       ///< buffered entries across its engines
    std::size_t gc_cursor = 0;     ///< incremental-fold resume point
    std::atomic<std::uint64_t> processed{0};
    // Idle parking: after a spin budget the worker sleeps on the cv
    // (bounded by a timeout, so a lost wake costs a millisecond, never
    // liveness); producers only take the lock when `sleeping` says
    // someone is actually parked, keeping the push fast path lock-free.
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> sleeping{false};
    std::thread thread;
  };

 public:
  static constexpr std::size_t kRingCapacity = 4096;

  StoreWorkerPool(Store& store, std::size_t n_workers) : store_(store) {
    UCW_CHECK(n_workers >= 1);
    workers_.reserve(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) {
      workers_.push_back(std::make_unique<Worker>());
      workers_.back()->track = static_cast<std::uint16_t>(w + 1);
    }
    for (std::size_t i = 0; i < store_.shard_count(); ++i) {
      workers_[i % n_workers]->engines.push_back(&store_.engine(i));
    }
    for (auto& w : workers_) {
      w->thread = std::thread([this, wk = w.get()] { worker_main(*wk); });
    }
  }

  ~StoreWorkerPool() { stop(); }
  StoreWorkerPool(const StoreWorkerPool&) = delete;
  StoreWorkerPool& operator=(const StoreWorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return workers_.size(); }
  [[nodiscard]] std::size_t worker_of(std::size_t engine_index) const {
    return engine_index % workers_.size();
  }

  void stop() {
    if (stopped_) return;
    stopped_ = true;
    for (auto& w : workers_) {
      Op op;
      op.kind = Op::Kind::kStop;
      push(*w, std::move(op));
    }
    for (auto& w : workers_) w->thread.join();
  }

  /// Any client thread; FIFO with that thread's other ops only.
  void enqueue_update(std::size_t engine_index, const Key& key,
                      UpdateMessage<A> msg) {
    Op op;
    op.kind = Op::Kind::kUpdate;
    op.engine = static_cast<std::uint32_t>(engine_index);
    op.key = key;
    op.msg = std::move(msg);
    push(*workers_[worker_of(engine_index)], std::move(op));
  }

  /// Any thread (in practice: whichever one holds the router lock).
  void enqueue_remote(std::size_t engine_index, ProcessId from,
                      const Key& key, const UpdateMessage<A>& msg) {
    Op op;
    op.kind = Op::Kind::kRemote;
    op.engine = static_cast<std::uint32_t>(engine_index);
    op.from = from;
    op.key = key;
    op.msg = msg;
    push(*workers_[worker_of(engine_index)], std::move(op));
  }

  /// Runs the query on the owning worker and waits for the answer —
  /// ring FIFO behind any update the calling thread already enqueued,
  /// so every client thread reads its own writes. With `promote` (a
  /// get() fallback) the worker also publishes a view for the key, so
  /// subsequent get()s of it skip the ring; plain query() passes false
  /// — promotion is opt-in by read path, a keyspace scan through
  /// query() must not inflate the hot set. Any client thread.
  [[nodiscard]] typename A::QueryOut run_query(
      std::size_t engine_index, const Key& key,
      const typename A::QueryIn& qi, bool promote) {
    typename A::QueryOut out{};
    std::atomic<std::uint32_t> done{0};
    Op op;
    op.kind = Op::Kind::kQuery;
    op.engine = static_cast<std::uint32_t>(engine_index);
    op.key = key;
    op.promote_key = promote;
    op.query_in = &qi;
    op.query_out = &out;
    op.done = &done;
    push(*workers_[worker_of(engine_index)], std::move(op));
    while (done.load(std::memory_order_acquire) == 0) {
      std::this_thread::yield();
    }
    return out;
  }

  /// Synchronous flush tick across every worker: each drains its own
  /// engines into one envelope and re-sizes its adaptive windows.
  /// Returns total entries flushed. Router-lock holder only.
  std::size_t flush_all() {
    std::atomic<std::uint32_t> done{0};
    std::atomic<std::size_t> flushed{0};
    for (auto& w : workers_) {
      Op op;
      op.kind = Op::Kind::kFlush;
      op.done = &done;
      op.counted = &flushed;
      push(*w, std::move(op));
    }
    while (done.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
    return flushed.load(std::memory_order_relaxed);
  }

  /// Synchronous GC tick: every worker folds its own dirty engines to
  /// `floor`, spending at most `budget_per_worker` engines (0 = all of
  /// them), resuming round-robin where its previous fold stopped.
  /// Returns entries folded. Router-lock holder only. Because the fold
  /// rides the same rings as updates, every entry enqueued before this
  /// call is applied before its engine folds — which is what lets the
  /// router raise the floor up to the stamp barrier (see
  /// ThreadUcStore::flush) without folding over an in-ring entry.
  std::size_t gc_all(LogicalTime floor, std::size_t budget_per_worker) {
    std::atomic<std::uint32_t> done{0};
    std::atomic<std::size_t> folded{0};
    for (auto& w : workers_) {
      Op op;
      op.kind = Op::Kind::kGc;
      op.gc_floor = floor;
      op.engine = static_cast<std::uint32_t>(budget_per_worker);
      op.done = &done;
      op.counted = &folded;
      push(*w, std::move(op));
    }
    while (done.load(std::memory_order_acquire) < workers_.size()) {
      std::this_thread::yield();
    }
    return folded.load(std::memory_order_relaxed);
  }

  /// Blocks until every op pushed before this call has been processed.
  /// With producers stopped, engine state (drain barriers, state_of,
  /// stats) is then safely readable from the calling thread; with
  /// producers still running it is only a point-in-time drain barrier.
  void quiesce() const {
    for (const auto& w : workers_) {
      const std::uint64_t target = w->ring.pushed();
      while (w->processed.load(std::memory_order_acquire) < target) {
        std::this_thread::yield();
      }
    }
  }

  /// Folds the workers' private flush/GC accounting slices into `s`.
  /// Callers quiesce first.
  void merge_stats(StoreStats& s) const {
    for (const auto& w : workers_) merge_wire_counters(s, w->stats);
  }

 private:
  void push(Worker& w, Op&& op) {
    while (!w.ring.try_push(std::move(op))) std::this_thread::yield();
    if (w.sleeping.load(std::memory_order_seq_cst)) {
      // Parked consumer: the lock pairs the notify with its wait-check
      // so the wake cannot slip between "ring empty" and "sleep".
      std::lock_guard lock(w.mutex);
      w.cv.notify_one();
    }
  }

  void worker_main(Worker& w) {
    std::size_t idle = 0;
    for (;;) {
      auto op = w.ring.try_pop();
      if (!op) {
        // Brief spin for the common back-to-back case, a yield phase so
        // an oversubscribed host (or a producer on a single core) runs,
        // then park — an idle pool must not burn a core per worker. The
        // timed wait bounds any lost-wake window at 1 ms.
        ++idle;
        if (idle > 64 && idle <= 4096) {
          std::this_thread::yield();
        } else if (idle > 4096) {
          std::unique_lock lock(w.mutex);
          w.sleeping.store(true, std::memory_order_seq_cst);
          w.cv.wait_for(lock, std::chrono::milliseconds(1),
                        [&] { return !w.ring.empty(); });
          w.sleeping.store(false, std::memory_order_relaxed);
          idle = 65;  // back to the yield phase, not the hot spin
        }
        continue;
      }
      idle = 0;
      bool stop = false;
      switch (op->kind) {
        case Op::Kind::kUpdate: {
          Engine& e = store_.engine(op->engine);
          const LogicalTime sc = op->msg.stamp.clock;
          e.local_update(op->key, std::move(op->msg));
          if (const auto& o = store_.obs_;
              o && o->tracer && o->sampled(sc)) {
            o->tracer->instant(w.track, obs::TraceEventKind::kApplyLocal, sc);
          }
          ++w.pending;
          const bool full =
              store_.config().adaptive_window
                  ? e.window_filled()
                  : w.pending >= store_.config().batch_window;
          if (full) {
            (void)store_.flush_engines(w.engines, FlushCause::kWindowFull,
                                       w.stats, /*piggyback_ack=*/false,
                                       w.track);
            w.pending = 0;
          }
          break;
        }
        case Op::Kind::kRemote:
          (void)store_.engine(op->engine).apply_remote(op->from, op->key,
                                                       op->msg);
          if (const auto& o = store_.obs_;
              o && o->tracer && o->sampled(op->msg.stamp.clock)) {
            o->tracer->instant(w.track, obs::TraceEventKind::kApplyRemote,
                               op->msg.stamp.clock);
          }
          break;
        case Op::Kind::kQuery: {
          Engine& e = store_.engine(op->engine);
          *op->query_out = e.query(op->key, *op->query_in);
          // A get() fallback promotes: from here on this key answers
          // get() from its published view, no ring round trip.
          if (op->promote_key) e.promote(op->key);
          op->done->store(1, std::memory_order_release);
          break;
        }
        case Op::Kind::kFlush: {
          for (Engine* e : w.engines) e->on_flush_tick();
          const std::size_t n = store_.flush_engines(
              w.engines, FlushCause::kManual, w.stats,
              /*piggyback_ack=*/false, w.track);
          w.pending = 0;
          op->counted->fetch_add(n, std::memory_order_relaxed);
          op->done->fetch_add(1, std::memory_order_release);
          break;
        }
        case Op::Kind::kGc: {
          // op->engine carries the per-worker budget (0 = every dirty
          // engine); the dirty-cursor skip keeps clean engines O(1).
          std::size_t budget = op->engine;
          const std::size_t n = w.engines.size();
          if (budget == 0 || budget > n) budget = n;
          std::size_t folded = 0;
          std::size_t visited = 0;
          std::size_t step = 0;
          for (; step < n && visited < budget; ++step) {
            Engine& e = *w.engines[(w.gc_cursor + step) % n];
            if (!e.gc_pending(op->gc_floor)) continue;
            folded += e.fold_to(op->gc_floor);
            ++visited;
          }
          w.gc_cursor = n == 0 ? 0 : (w.gc_cursor + step) % n;
          if (visited > 0) {
            ++w.stats.gc_runs;
            w.stats.gc_folded += folded;
          }
          if (const auto& o = store_.obs_; o && o->tracer && folded > 0) {
            o->tracer->instant(w.track, obs::TraceEventKind::kGcFold, folded,
                               op->gc_floor);
          }
          op->counted->fetch_add(folded, std::memory_order_relaxed);
          op->done->fetch_add(1, std::memory_order_release);
          break;
        }
        case Op::Kind::kStop:
          stop = true;
          break;
      }
      w.processed.fetch_add(1, std::memory_order_release);
      if (stop) return;
    }
  }

  Store& store_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool stopped_ = false;
};

}  // namespace ucw
