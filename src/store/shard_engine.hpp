// ShardEngine: everything the store owns *per shard*, behind one owner.
//
// Algorithm 1's wait-freedom means per-key replicas never coordinate,
// and nothing in update consistency arbitrates across keys — shards are
// embarrassingly parallel. The engine is the unit that exploits that:
// it owns the shard's key→replica map, its batch buffer and flush
// window, its slice of the GC fold, and snapshot serve/install for its
// keys. One *owner* (the Sim store's single thread, or one worker of a
// ThreadUcStore pool) drives an engine at a time; the only state shared
// across owners is the atomic store clock the replicas stamp from, two
// relaxed mirror counters (pending size, distinct applies) that other
// threads may read, and the router-held stability tracker the engine
// never touches — per-engine output (batches, fold results) is drained
// by whoever owns the flush, which is what keeps the single-owner
// discipline intact while engines spread across cores.
//
// The engine also hosts the two per-shard optimizations the monolithic
// StoreCore could not express:
//
//   * adaptive batch windows — a Nagle-style EWMA of updates observed
//     per flush tick sizes the window under the configured cap, so a
//     cold shard ships its lone update immediately instead of waiting
//     out the tick while a hot shard batches to the cap;
//   * the GC dirty cursor — the engine tracks the minimum stamp of any
//     entry it holds that has not been folded, so a sweep can skip
//     clean engines in O(1) instead of walking every key of the store;
//   * published read views — per *hot* key, a seqlock-versioned
//     snapshot of the replica state (util/seqlock_view.hpp) that any
//     client thread reads wait-free, without riding the owner's ring.
//     A key turns hot the first time a get() falls back to the engine
//     through the ring (`promote`; plain query() never promotes, so
//     only keys actually read through get() pay the republish cost);
//     from then on every apply republishes. The
//     view registry is itself published as an immutable snapshot map
//     through its own SeqlockView, so the read side is bounded end to
//     end: registry snapshot → hash lookup → seqlock read, each a
//     bounded-retry step. The owner reads its plain master registry
//     directly, so the apply path pays one local hash probe, not a
//     snapshot load.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/replica.hpp"
#include "recovery/catchup.hpp"
#include "store/envelope.hpp"
#include "store/shard.hpp"
#include "util/seqlock_view.hpp"

namespace ucw {

template <UqAdt A, typename Key = std::string>
class ShardEngine {
 public:
  using Entry = KeyedUpdate<A, Key>;
  using Shard = StoreShard<A, Key>;
  using Snapshot = ShardSnapshot<A, Key>;
  using View = SeqlockView<typename A::State>;
  using ViewMap =
      std::unordered_map<Key, std::shared_ptr<View>, ValueHash>;

  /// Sentinel "no install provenance" pid for the dirty marks (live
  /// traffic, or an install whose donor should not be credited).
  static constexpr ProcessId kNoDonor = static_cast<ProcessId>(-1);

  ShardEngine(const A& adt, ProcessId pid, std::size_t index,
              const StoreConfig& config,
              const typename ReplayReplica<A>::Config& rep_cfg)
      : adt_(adt),
        index_(index),
        window_(config.batch_window),
        window_cap_(config.batch_window),
        adaptive_(config.adaptive_window),
        fault_(config.fault),
        shard_(adt, pid, rep_cfg) {}

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] Shard& shard() { return shard_; }
  [[nodiscard]] const Shard& shard() const { return shard_; }

  // ----- operation surface (owner thread only) -------------------------

  /// Applies a locally issued, pre-stamped update to its replica
  /// (synchronous self-delivery) and buffers it for the next flush.
  void local_update(const Key& key, UpdateMessage<A> msg) {
    note_stamp(msg.stamp.clock);
    mark_dirty(key);
    auto& rep = shard_.replica(key);
    rep.apply_local(msg);
    ++local_updates_;
    ++updates_this_tick_;
    pending_.push_back(Entry{key, std::move(msg)});
    pending_count_.store(pending_.size(), std::memory_order_relaxed);
    applied_distinct_.fetch_add(1, std::memory_order_release);
    maybe_republish(key, rep);
  }

  /// Applies one keyed update from a remote envelope; returns true when
  /// the per-key log absorbed it as a replay.
  bool apply_remote(ProcessId from, const Key& key,
                    const UpdateMessage<A>& msg) {
    auto& rep = shard_.replica(key);
    const std::uint64_t dups_before = rep.stats().duplicate_updates;
    rep.apply(from, msg);
    ++remote_entries_;
    if (rep.stats().duplicate_updates != dups_before) {
      ++duplicate_entries_;
      return true;
    }
    note_stamp(msg.stamp.clock);
    mark_dirty(key);
    applied_distinct_.fetch_add(1, std::memory_order_release);
    maybe_republish(key, rep);
    return false;
  }

  [[nodiscard]] typename A::QueryOut query(const Key& key,
                                           const typename A::QueryIn& qi) {
    ++queries_;
    if (auto* rep = shard_.find(key)) return rep->query(qi);
    return adt_.output(adt_.initial(), qi);
  }

  [[nodiscard]] typename A::State state_of(const Key& key) {
    if (auto* rep = shard_.find(key)) return rep->current_state();
    return adt_.initial();
  }

  // ----- published read views (the wait-free read path) ----------------

  /// Marks `key` hot (owner thread only; idempotent): creates its view
  /// and publishes the current state. The *registry* snapshot readers
  /// navigate by is NOT republished per promotion — that made a get()
  /// scan over N cold keys cost O(N²) map copies. Instead the republish
  /// is amortized geometrically: ship a fresh registry only once the
  /// hot set has doubled since the last one (total copy work across N
  /// promotions: 1+2+4+…≈2N = O(N)), plus once per flush tick whenever
  /// promotions are pending (bounded staleness — an unlisted hot key
  /// just keeps falling back to the ring until the next tick, which is
  /// correct, merely not yet fast).
  void promote(const Key& key) {
    if (views_owner_.count(key) > 0) return;
    auto view = std::make_shared<View>();
    view->publish(state_of(key));
    views_owner_.emplace(key, std::move(view));
    ++pending_promotions_;
    if (views_owner_.size() >= 2 * last_registry_size_) {
      republish_registry();
    }
  }

  /// Wait-free read of `key`'s published state from *any* thread:
  /// immutable registry-snapshot load → hash lookup → bounded-retry
  /// seqlock read. The returned pointer is an immutable shared snapshot
  /// — ZERO state copies on this path; later applies publish new
  /// snapshots and never mutate this one. Null when the key is cold
  /// (never promoted, or promoted but not yet listed in the registry
  /// snapshot) or a racing publish exhausted the retry budget — the
  /// caller falls back to the ring round trip (which promotes).
  [[nodiscard]] std::shared_ptr<const typename A::State> try_read_published(
      const Key& key) const {
    const std::shared_ptr<const ViewMap> views = views_.try_read_shared();
    if (!views) return nullptr;
    const auto it = views->find(key);
    if (it == views->end()) return nullptr;
    return it->second->try_read_shared();
  }

  /// Live published views (hot keys) of this engine. Owner thread.
  [[nodiscard]] std::size_t published_keys() const {
    return views_owner_.size();
  }

  // ----- batch buffer --------------------------------------------------

  /// Mirror of the buffer size; readable from any thread (relaxed).
  [[nodiscard]] std::size_t pending_size() const {
    return pending_count_.load(std::memory_order_relaxed);
  }

  /// Whether this engine's buffer reached its (possibly adapted) window.
  [[nodiscard]] bool window_filled() const {
    return pending_.size() >= window_;
  }

  /// Moves the buffered entries into `out` (envelope assembly — the
  /// flush owner carpools every engine it owns into one envelope).
  void drain_pending(std::vector<Entry>& out) {
    for (auto& e : pending_) out.push_back(std::move(e));
    pending_.clear();
    pending_count_.store(0, std::memory_order_relaxed);
  }

  /// Crash-stop: the buffered updates die with the sender.
  std::size_t drop_pending() {
    const std::size_t n = pending_.size();
    pending_.clear();
    pending_count_.store(0, std::memory_order_relaxed);
    return n;
  }

  /// Flush tick: re-sizes the adaptive window from the updates observed
  /// since the last tick (EWMA, clamped to [1, cap]; the tick period is
  /// the implicit latency bound).
  void on_flush_tick() {
    if (pending_promotions_ > 0) republish_registry();
    if (adaptive_) {
      const double observed = static_cast<double>(updates_this_tick_);
      ewma_per_tick_ = ewma_per_tick_ < 0.0
                           ? observed
                           : 0.75 * ewma_per_tick_ + 0.25 * observed;
      const auto target =
          static_cast<std::size_t>(ewma_per_tick_ + 0.5);
      window_ = target < 1 ? 1 : (target > window_cap_ ? window_cap_ : target);
    }
    updates_this_tick_ = 0;
  }

  [[nodiscard]] std::size_t window() const { return window_; }

  // ----- GC (store-wide floor, engine-local fold) ----------------------

  /// Whether this engine holds any unfolded entry at or below `floor` —
  /// the dirty check that lets a sweep skip clean engines in O(1).
  [[nodiscard]] bool gc_pending(LogicalTime floor) const {
    return min_unfolded_ <= floor;
  }

  /// Folds every replica of this shard to `floor` and re-anchors the
  /// dirty cursor at the smallest entry still resident.
  std::size_t fold_to(LogicalTime floor) {
    std::size_t folded = 0;
    LogicalTime min_left = kNoUnfolded;
    shard_.for_each([&](const Key&, ReplayReplica<A>& r) {
      folded += r.fold_to(floor);
      if (r.log().size() > 0) {
        const LogicalTime head = r.log().at(0).stamp.clock;
        if (head < min_left) min_left = head;
      }
    });
    min_unfolded_ = min_left;
    return folded;
  }

  // ----- snapshot serve / install --------------------------------------

  /// Encodes this shard's snapshot. `since_marker == 0` ships every
  /// live key (full); otherwise only the keys whose advance mark is
  /// newer — the dirty-set — which is a complete statement relative to
  /// a receiver already holding this shard's state as of that marker.
  /// `requester` enables echo suppression: a key whose every advance
  /// since the marker was an install of *that requester's own served
  /// content* is skipped too — the requester holds it by construction,
  /// and without this a bidirectional heal would bounce the whole first
  /// sync back on the second round.
  [[nodiscard]] Snapshot encode_snapshot(std::size_t shard_count,
                                         std::uint64_t since_marker = 0,
                                         ProcessId requester = kNoDonor) {
    Snapshot snap = encode_shard_snapshot(
        shard_, index_, shard_count, [&](const Key& k) {
          if (since_marker == 0) return true;
          const auto it = dirty_marks_.find(k);
          if (it == dirty_marks_.end()) return false;
          const DirtyMark& d = it->second;
          // FAULT kEchoSuppressThirdParty: suppress on last-donor alone,
          // ignoring the non_donor_mark anchor — third-party content
          // that rode in since the requester's baseline is dropped too,
          // and the heal-time relay silently loses it.
          const std::uint64_t effective =
              d.donor != requester ? d.mark
              : fault_.is(Fault::kEchoSuppressThirdParty)
                  ? 0
                  : d.non_donor_mark;
          return effective > since_marker;
        });
    snap.delta_marker = advance_marker_;
    snap.delta_since = since_marker;
    return snap;
  }

  /// The engine's advance counter (== the `delta_marker` the next
  /// encode_snapshot would stamp).
  [[nodiscard]] std::uint64_t dirty_marker() const { return advance_marker_; }

  /// Installs one key of a catch-up snapshot; returns suffix entries
  /// replayed and reports via `floor_raised` whether the key's compacted
  /// prefix actually grew (the transfer-volume stat). `donor` is the
  /// provenance recorded on the dirty mark: installed knowledge dirties
  /// the key here too — a later delta served *from* this store must
  /// relay what it learned second-hand (that transitivity is what lets
  /// one representative per partition side reconcile a whole split) —
  /// but a delta back to the donor itself may skip it.
  std::size_t install_key(const KeySnapshot<A, Key>& ks, bool* floor_raised,
                          ProcessId donor = kNoDonor) {
    auto& rep = shard_.replica(ks.key);
    const LogicalTime floor_before = rep.log().floor();
    const std::size_t log_before = rep.log().size();
    std::size_t replayed = 0;
    if (fault_.is(Fault::kInstallSkipsSuffix)) {
      // FAULT: adopt the donor's compacted base but never replay the
      // unstable suffix — every entry only this snapshot could deliver
      // is silently lost, and nothing ever redelivers it (the donor
      // thinks it shipped).
      (void)rep.install_base(ks.base, ks.floor);
    } else {
      replayed = install_key_snapshot(rep, ks);
    }
    *floor_raised = rep.log().floor() > floor_before;
    if (*floor_raised || rep.log().size() > log_before) {
      // FAULT kInstallSkipsDirtyMark: installed knowledge never joins
      // the dirty set, so deltas served from this store omit everything
      // it learned second-hand and relays stop at one hop.
      if (!fault_.is(Fault::kInstallSkipsDirtyMark)) {
        mark_dirty_from(ks.key, donor);
      }
    }
    if (!fault_.is(Fault::kInstallSkipsSuffix)) {
      for (const auto& e : ks.suffix) note_stamp(e.stamp.clock);
    }
    maybe_republish(ks.key, rep);
    return replayed;
  }

  void note_snapshot_installed() { shard_.note_snapshot_installed(); }

  // ----- accounting ----------------------------------------------------

  [[nodiscard]] std::uint64_t local_updates() const { return local_updates_; }
  [[nodiscard]] std::uint64_t remote_entries() const {
    return remote_entries_;
  }
  [[nodiscard]] std::uint64_t duplicate_entries() const {
    return duplicate_entries_;
  }
  [[nodiscard]] std::uint64_t queries() const { return queries_; }

  /// Distinct keyed updates applied from any source (replays excluded);
  /// readable from any thread — the release pairs with the acquire in
  /// drain barriers, so a reader that observed the count also observes
  /// the replica state behind it.
  [[nodiscard]] std::uint64_t applied_distinct() const {
    return applied_distinct_.load(std::memory_order_acquire);
  }

  /// Lamport clock of the newest entry this engine has applied (local,
  /// remote, or snapshot suffix). A relaxed mirror like pending_count_:
  /// the router's flush-tick staleness sampler (obs layer) reads it
  /// while the owning worker applies — approximate by design.
  [[nodiscard]] LogicalTime last_applied_clock() const {
    return last_applied_clock_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ShardStats stats() const {
    ShardStats s = shard_.stats();
    s.batch_window = window_;
    s.published_keys = views_owner_.size();
    s.view_registry_publishes = registry_publishes_;
    s.view_registry_keys_copied = registry_keys_copied_;
    return s;
  }

 private:
  static constexpr LogicalTime kNoUnfolded =
      std::numeric_limits<LogicalTime>::max();

  void note_stamp(LogicalTime t) {
    if (t < min_unfolded_) min_unfolded_ = t;
    // Owner-thread-only writer, so load+store (no CAS) keeps the mirror
    // monotone.
    if (t > last_applied_clock_.load(std::memory_order_relaxed)) {
      last_applied_clock_.store(t, std::memory_order_relaxed);
    }
  }

  /// The key's log gained information from live traffic (a distinct
  /// local or remote entry): stamp it with the next advance mark, so a
  /// delta snapshot relative to an older mark ships it. GC folds are
  /// *not* advances — they move entries into the base without new
  /// information, and dirtying on fold would re-ship the whole keyspace
  /// every sweep.
  void mark_dirty(const Key& key) {
    DirtyMark& d = dirty_marks_[key];
    d.mark = ++advance_marker_;
    d.donor = kNoDonor;
    d.non_donor_mark = d.mark;
  }

  /// As mark_dirty, but the information arrived as an installed
  /// snapshot from `donor`: remember the provenance, and keep
  /// `non_donor_mark` anchored at the last advance that did NOT come
  /// from this donor — the echo-suppression invariant is "if
  /// non_donor_mark <= the requester's baseline and the last donor is
  /// the requester, every advance since the baseline was its own
  /// content".
  void mark_dirty_from(const Key& key, ProcessId donor) {
    if (donor == kNoDonor) {
      mark_dirty(key);
      return;
    }
    DirtyMark& d = dirty_marks_[key];
    if (d.donor != donor) d.non_donor_mark = d.mark;
    d.donor = donor;
    d.mark = ++advance_marker_;
  }

  /// Republishes `key`'s view after an apply, if the key is hot. One
  /// local hash probe on the cold path; a state copy onto the heap on
  /// the hot one (the price of giving readers a lock-free snapshot).
  void maybe_republish(const Key& key, ReplayReplica<A>& rep) {
    if (views_owner_.empty()) return;
    const auto it = views_owner_.find(key);
    if (it == views_owner_.end()) return;
    it->second->publish(rep.current_state());
  }

  /// Ships a fresh immutable registry snapshot to readers and resets
  /// the amortization bookkeeping. O(hot set) per call — the geometric
  /// schedule in promote() bounds the total to O(hot set), not O(N²).
  void republish_registry() {
    views_.publish(views_owner_);
    ++registry_publishes_;
    registry_keys_copied_ += views_owner_.size();
    last_registry_size_ = views_owner_.size();
    pending_promotions_ = 0;
  }

  A adt_;
  std::size_t index_;
  std::size_t window_;      ///< current flush window (adapted)
  std::size_t window_cap_;  ///< == StoreConfig::batch_window
  bool adaptive_;
  FaultSpec fault_;  ///< mutation-corpus switch (src/faults/)
  double ewma_per_tick_ = -1.0;  ///< updates/tick EWMA; <0 = unseeded
  std::uint64_t updates_this_tick_ = 0;
  Shard shard_;
  std::vector<Entry> pending_;
  std::atomic<std::size_t> pending_count_{0};
  /// Owner-side master registry — the hot set (which keys republish on
  /// apply) and the source each promotion snapshots into views_.
  ViewMap views_owner_;
  /// Reader-side registry: an immutable snapshot map, republished on
  /// promotion (rare once the hot set stabilizes), so the get() path
  /// never sees a rehashing map — registry load, hash lookup, view
  /// read, all bounded.
  SeqlockView<ViewMap> views_;
  /// Registry-republish amortization (see promote()).
  std::size_t last_registry_size_ = 0;   ///< hot-set size at last publish
  std::size_t pending_promotions_ = 0;   ///< views not yet in a snapshot
  std::uint64_t registry_publishes_ = 0;
  std::uint64_t registry_keys_copied_ = 0;
  LogicalTime min_unfolded_ = kNoUnfolded;  ///< GC dirty cursor anchor
  /// Delta-snapshot dirty-set entry: the advance mark of the key's last
  /// log-growing apply/install, plus install provenance for echo
  /// suppression (three words per live key).
  struct DirtyMark {
    std::uint64_t mark = 0;
    std::uint64_t non_donor_mark = 0;
    ProcessId donor = kNoDonor;
  };
  std::unordered_map<Key, DirtyMark, ValueHash> dirty_marks_;
  std::uint64_t advance_marker_ = 0;
  std::uint64_t local_updates_ = 0;
  std::uint64_t remote_entries_ = 0;
  std::uint64_t duplicate_entries_ = 0;
  std::uint64_t queries_ = 0;
  std::atomic<std::uint64_t> applied_distinct_{0};
  std::atomic<LogicalTime> last_applied_clock_{0};
};

}  // namespace ucw
