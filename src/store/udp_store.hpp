// UdpUcStore: a ThreadUcStore whose transport is a real UDP socket.
//
// One OS process = one store = one UdpTransport; N of them on localhost
// form a real multi-process cluster (examples/cluster_node.cpp). The
// alias exists so callers name the pairing once — everything else is
// the generic frontend over the generic core: the transport's pull
// inbox satisfies kPollableInbox, its p2p send + epoch light up
// catch-up and anti-entropy, and its *absent* crash/topology oracles
// gate those simulator-only features off.
#pragma once

#include "net/udp_transport.hpp"
#include "store/thread_store.hpp"

namespace ucw {

template <UqAdt A, typename Key = std::string>
using UdpUcStore = ThreadUcStore<A, Key, UdpTransport<A, Key>>;

}  // namespace ucw
