// Aggregate statistics for the UCStore, in the house table format.
//
// The batching counters answer the question the store exists to answer:
// how many broadcasts (and estimated wire bytes) did coalescing save
// versus Algorithm 1's one-broadcast-per-update baseline? `entries_sent`
// is exactly the broadcast count the unbatched store would have issued,
// so `entries_sent / envelopes_sent` is both the mean batch occupancy
// and the broadcast-reduction factor.
//
// The recovery counters answer the subsystem's two questions: how much
// log did store-level stability fold (gc_*, stability_floor_lag — the
// unstable window a snapshot would have to ship), and how much did a
// catch-up actually transfer (catchup_* / snapshot_*) versus the full
// history a log-replay rejoin would replay.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/sim_network.hpp"
#include "store/shard.hpp"
#include "util/table.hpp"

namespace ucw {

struct StoreStats {
  std::uint64_t local_updates = 0;
  std::uint64_t remote_entries = 0;   ///< keyed updates applied on delivery
  std::uint64_t duplicate_entries = 0;  ///< of those, log-absorbed replays
  std::uint64_t queries = 0;

  // -- the pooled read path (ThreadUcStore::get()). Together they split
  //    every get() by how it was answered; `queries` above counts the
  //    reads that reached an engine (query() calls plus the ring_reads
  //    fallbacks), so published_reads is exactly the engine work the
  //    seqlock views absorbed.
  std::uint64_t published_reads = 0;  ///< answered from a seqlock view,
                                      ///< no ring enqueue at all
  std::uint64_t ring_reads = 0;       ///< get() fell back to a ring
                                      ///< round trip (cold key/racing
                                      ///< publisher); promotes the key

  // -- single-node saturation (pooled ThreadUcStore hot paths).
  /// Remote entries shipped straight into worker remote inboxes by the
  /// sharded delivery path (no router lock) vs fanned out under the
  /// router lock (the legacy StoreConfig::router_delivery arm). During
  /// steady state on the default path, router_deliveries stays 0.
  std::uint64_t inbox_deliveries = 0;
  std::uint64_t router_deliveries = 0;
  /// Producer-side multi-slot ring claims (one CAS covering >1 op) and
  /// the logical ops they carried — update_batch's per-worker groups.
  /// ring_batch_ops / ring_batch_claims is the mean ops amortized per
  /// CAS; singles (plain update()) pay one CAS each on top of these.
  std::uint64_t ring_batch_claims = 0;
  std::uint64_t ring_batch_ops = 0;
  /// get()s answered from the immutable shared snapshot — zero state
  /// copies (a subset split-out of published_reads; equal to it unless
  /// a future read path copies).
  std::uint64_t zero_copy_reads = 0;
  /// get()s that took the ring because the caller's own last write to
  /// the owning worker was not yet applied (read-your-writes fallback).
  std::uint64_t ryw_ring_fallbacks = 0;
  std::uint64_t envelopes_sent = 0;   ///< reliable broadcasts issued
  std::uint64_t entries_sent = 0;     ///< keyed updates those carried
  std::uint64_t flushes_full = 0;     ///< batch window filled
  std::uint64_t flushes_manual = 0;   ///< explicit flush()/tick
  std::uint64_t bytes_batched = 0;    ///< est. wire bytes actually sent
  std::uint64_t bytes_unbatched = 0;  ///< est. bytes one-per-update would cost

  // -- crash accounting (crash-stop: buffered updates die, uncounted
  //    above — nothing hit the wire, nothing double-counts on restart).
  std::uint64_t envelopes_dropped_crash = 0;
  std::uint64_t entries_dropped_crash = 0;
  /// Ack heartbeats a crashed sender would have shipped — dropped like
  /// the flush path (and the seq is not consumed), so a restarted
  /// incarnation's stream starts clean on the heartbeat path too.
  std::uint64_t acks_dropped_crash = 0;

  // -- store-level stability / GC.
  std::uint64_t gc_runs = 0;          ///< sweeps that folded something
  std::uint64_t gc_folded = 0;        ///< log entries folded, all keys
  std::uint64_t acks_sent = 0;        ///< ack heartbeats (no entries)
  LogicalTime stability_floor = 0;    ///< last pushed-down fold floor
  LogicalTime stability_floor_lag = 0;  ///< own clock − floor (unstable window)

  // -- catch-up / snapshot shipping.
  std::uint64_t sync_requests_sent = 0;
  std::uint64_t sync_requests_served = 0;
  std::uint64_t sync_retries = 0;       ///< gap or stall re-requests
  std::uint64_t syncs_completed = 0;    ///< sessions verified + retired
  std::uint64_t snapshots_served = 0;   ///< ShardSnapshots shipped out
  std::uint64_t snapshots_installed = 0;
  std::uint64_t snapshot_entries_served = 0;  ///< suffix entries shipped
  /// Est. wire bytes of served snapshots (bases sized by live-state
  /// element count + suffixes) — the transfer cost of playing donor.
  std::uint64_t snapshot_bytes_served = 0;
  /// Key installs that raised a per-key floor — cumulative across sync
  /// rounds, so a key re-shipped by a retry counts again (this measures
  /// transfer volume, not distinct keys; it can exceed the keyspace).
  std::uint64_t catchup_keys = 0;
  std::uint64_t catchup_entries = 0;  ///< suffix entries replayed on install
  /// Keyed snapshots shipped while playing donor (catch-up + AE), and
  /// how many live keys the delta codec *skipped* as clean — together
  /// they are the incremental-snapshot win: skipped / (served + skipped)
  /// of the keyspace never hit the wire on retries and AE rounds.
  std::uint64_t snapshot_keys_served = 0;
  std::uint64_t snapshot_keys_skipped_delta = 0;

  // -- partitions / anti-entropy. A drop-mode partition discards
  //    cross-group envelopes, so a sender's (epoch, seq) stream grows a
  //    gap at the receiver; gapped streams stop feeding the stability
  //    floor (their acks no longer prove FIFO coverage) until a heal-
  //    time anti-entropy round re-proves coverage and ships the missing
  //    state as delta snapshots.
  std::uint64_t stream_gaps_detected = 0;  ///< intact→gapped transitions
  std::uint64_t ae_rounds_started = 0;     ///< anti_entropy_round() calls
  std::uint64_t ae_rounds_served = 0;      ///< requests served as donor
  std::uint64_t ae_rounds_completed = 0;   ///< full delta batch installed
  std::uint64_t ae_snapshots_installed = 0;
  std::uint64_t ae_entries_installed = 0;  ///< suffix entries via AE
  std::uint64_t ae_entries_served = 0;     ///< suffix entries shipped as donor
  std::uint64_t ae_bytes_served = 0;       ///< est. wire bytes, AE serves
  /// Suffix entries a donor did NOT ship because the requester's AE
  /// request carried stability rows proving it received them live
  /// (coverage summaries on the wire — entry-level dedup on top of the
  /// per-key delta codec).
  std::uint64_t ae_entries_skipped_covered = 0;

  /// Mean keyed updates per envelope (== broadcast-reduction factor).
  [[nodiscard]] double batch_occupancy() const {
    return envelopes_sent == 0
               ? 0.0
               : static_cast<double>(entries_sent) /
                     static_cast<double>(envelopes_sent);
  }

  /// Fraction of the unbatched wire bytes that batching avoided.
  [[nodiscard]] double bytes_saved_ratio() const {
    return bytes_unbatched == 0
               ? 0.0
               : 1.0 - static_cast<double>(bytes_batched) /
                           static_cast<double>(bytes_unbatched);
  }
};

/// Renders one row per process plus the cluster-wide network totals, in
/// the house table format the bench binaries use.
inline void print_store_table(std::ostream& os,
                              const std::vector<StoreStats>& per_process,
                              const NetworkStats& net) {
  TextTable t({"process", "updates", "queries", "pub reads", "ring reads",
               "envelopes", "entries", "occupancy", "bytes sent (est)",
               "bytes saved"});
  // Signed: an envelope carrying a single entry costs a few bytes *more*
  // than a bare message (the header fields), so low-occupancy rows go
  // slightly negative instead of wrapping.
  const auto saved = [](const StoreStats& s) {
    return static_cast<std::int64_t>(s.bytes_unbatched) -
           static_cast<std::int64_t>(s.bytes_batched);
  };
  StoreStats total;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    const StoreStats& s = per_process[p];
    t.add(p, s.local_updates, s.queries, s.published_reads, s.ring_reads,
          s.envelopes_sent, s.entries_sent, s.batch_occupancy(),
          s.bytes_batched, saved(s));
    total.local_updates += s.local_updates;
    total.queries += s.queries;
    total.published_reads += s.published_reads;
    total.ring_reads += s.ring_reads;
    total.envelopes_sent += s.envelopes_sent;
    total.entries_sent += s.entries_sent;
    total.bytes_batched += s.bytes_batched;
    total.bytes_unbatched += s.bytes_unbatched;
  }
  t.add("total", total.local_updates, total.queries, total.published_reads,
        total.ring_reads, total.envelopes_sent, total.entries_sent,
        total.batch_occupancy(), total.bytes_batched, saved(total));
  t.print(os);
  os << "network: " << net.broadcasts << " broadcasts, "
     << net.messages_sent << " p2p messages, " << net.messages_delivered
     << " delivered, " << net.messages_duplicated << " duplicated, "
     << net.restarts << " restarts\n";
}

/// One line of cluster-wide single-node-saturation counters: how remote
/// entries were delivered (sharded inboxes vs the legacy router lock),
/// how well ring CAS claims amortized, and how the read path split
/// between zero-copy snapshots and read-your-writes fallbacks. Printed
/// by print_observability whenever any of them is nonzero.
inline void print_saturation_line(
    std::ostream& os, const std::vector<StoreStats>& per_process) {
  StoreStats t;
  for (const StoreStats& s : per_process) {
    t.inbox_deliveries += s.inbox_deliveries;
    t.router_deliveries += s.router_deliveries;
    t.ring_batch_claims += s.ring_batch_claims;
    t.ring_batch_ops += s.ring_batch_ops;
    t.zero_copy_reads += s.zero_copy_reads;
    t.ryw_ring_fallbacks += s.ryw_ring_fallbacks;
  }
  if (t.inbox_deliveries + t.router_deliveries + t.ring_batch_claims +
          t.zero_copy_reads + t.ryw_ring_fallbacks ==
      0) {
    return;
  }
  const double ops_per_claim =
      t.ring_batch_claims == 0
          ? 0.0
          : static_cast<double>(t.ring_batch_ops) /
                static_cast<double>(t.ring_batch_claims);
  os << "saturation: " << t.inbox_deliveries << " inbox deliveries, "
     << t.router_deliveries << " router deliveries, "
     << t.ring_batch_claims << " batch claims (" << ops_per_claim
     << " ops/claim), " << t.zero_copy_reads << " zero-copy reads, "
     << t.ryw_ring_fallbacks << " ryw fallbacks\n";
}

/// One row per process of recovery activity: GC folds, the stability
/// floor and its lag (the unstable window), ack heartbeats, and the
/// catch-up traffic in both roles (donor / joiner).
inline void print_recovery_table(
    std::ostream& os, const std::vector<StoreStats>& per_process) {
  TextTable t({"process", "gc folded", "floor", "floor lag", "acks",
               "acks drop", "sync req", "sync served", "retries",
               "snaps out", "snap bytes", "snaps in", "catchup keys",
               "catchup entries", "dropped@crash"});
  StoreStats total;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    const StoreStats& s = per_process[p];
    t.add(p, s.gc_folded, s.stability_floor, s.stability_floor_lag,
          s.acks_sent, s.acks_dropped_crash, s.sync_requests_sent,
          s.sync_requests_served, s.sync_retries, s.snapshots_served,
          s.snapshot_bytes_served, s.snapshots_installed, s.catchup_keys,
          s.catchup_entries, s.entries_dropped_crash);
    total.gc_folded += s.gc_folded;
    total.acks_sent += s.acks_sent;
    total.acks_dropped_crash += s.acks_dropped_crash;
    total.sync_requests_sent += s.sync_requests_sent;
    total.sync_requests_served += s.sync_requests_served;
    total.sync_retries += s.sync_retries;
    total.snapshots_served += s.snapshots_served;
    total.snapshot_bytes_served += s.snapshot_bytes_served;
    total.snapshots_installed += s.snapshots_installed;
    total.catchup_keys += s.catchup_keys;
    total.catchup_entries += s.catchup_entries;
    total.entries_dropped_crash += s.entries_dropped_crash;
  }
  t.add("total", total.gc_folded, "-", "-", total.acks_sent,
        total.acks_dropped_crash, total.sync_requests_sent,
        total.sync_requests_served, total.sync_retries,
        total.snapshots_served, total.snapshot_bytes_served,
        total.snapshots_installed, total.catchup_keys,
        total.catchup_entries, total.entries_dropped_crash);
  t.print(os);
}

/// One row per process of partition/anti-entropy activity: stream gaps
/// observed, AE rounds in both roles, and the delta-codec economics
/// (keys shipped vs skipped as clean, entries and bytes served).
inline void print_anti_entropy_table(
    std::ostream& os, const std::vector<StoreStats>& per_process) {
  TextTable t({"process", "gaps", "ae started", "ae served", "ae done",
               "ae snaps in", "ae entries in", "ae entries out",
               "ae skip covered", "ae bytes out", "keys served",
               "keys skipped"});
  StoreStats total;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    const StoreStats& s = per_process[p];
    t.add(p, s.stream_gaps_detected, s.ae_rounds_started, s.ae_rounds_served,
          s.ae_rounds_completed, s.ae_snapshots_installed,
          s.ae_entries_installed, s.ae_entries_served,
          s.ae_entries_skipped_covered, s.ae_bytes_served,
          s.snapshot_keys_served, s.snapshot_keys_skipped_delta);
    total.stream_gaps_detected += s.stream_gaps_detected;
    total.ae_rounds_started += s.ae_rounds_started;
    total.ae_rounds_served += s.ae_rounds_served;
    total.ae_rounds_completed += s.ae_rounds_completed;
    total.ae_snapshots_installed += s.ae_snapshots_installed;
    total.ae_entries_installed += s.ae_entries_installed;
    total.ae_entries_served += s.ae_entries_served;
    total.ae_entries_skipped_covered += s.ae_entries_skipped_covered;
    total.ae_bytes_served += s.ae_bytes_served;
    total.snapshot_keys_served += s.snapshot_keys_served;
    total.snapshot_keys_skipped_delta += s.snapshot_keys_skipped_delta;
  }
  t.add("total", total.stream_gaps_detected, total.ae_rounds_started,
        total.ae_rounds_served, total.ae_rounds_completed,
        total.ae_snapshots_installed, total.ae_entries_installed,
        total.ae_entries_served, total.ae_entries_skipped_covered,
        total.ae_bytes_served, total.snapshot_keys_served,
        total.snapshot_keys_skipped_delta);
  t.print(os);
}

/// Folds one flush-owner's accounting (a pool worker's slice) into an
/// aggregate — exactly the counters flush_engines/heartbeats charge,
/// plus the GC fold counters a pooled store's workers charge when the
/// router hands them the floor (StoreWorkerPool::gc_all).
inline void merge_wire_counters(StoreStats& into, const StoreStats& slice) {
  into.envelopes_sent += slice.envelopes_sent;
  into.entries_sent += slice.entries_sent;
  into.flushes_full += slice.flushes_full;
  into.flushes_manual += slice.flushes_manual;
  into.bytes_batched += slice.bytes_batched;
  into.bytes_unbatched += slice.bytes_unbatched;
  into.envelopes_dropped_crash += slice.envelopes_dropped_crash;
  into.entries_dropped_crash += slice.entries_dropped_crash;
  into.acks_sent += slice.acks_sent;
  into.acks_dropped_crash += slice.acks_dropped_crash;
  into.gc_runs += slice.gc_runs;
  into.gc_folded += slice.gc_folded;
}

/// Renders one row per shard plus a totals row, matching the table style
/// of the bench binaries.
inline void print_shard_table(std::ostream& os,
                              const std::vector<ShardStats>& shards) {
  TextTable t({"shard", "keys", "window", "views", "local", "remote",
               "dup", "queries", "log entries", "gc folded", "snap out",
               "snap in", "~bytes"});
  ShardStats total;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    t.add(i, s.keys_live, s.batch_window, s.published_keys,
          s.local_updates, s.remote_updates, s.duplicate_updates,
          s.queries, s.log_entries, s.gc_folded, s.snapshots_exported,
          s.snapshots_installed, s.approx_bytes);
    total.keys_live += s.keys_live;
    total.published_keys += s.published_keys;
    total.local_updates += s.local_updates;
    total.remote_updates += s.remote_updates;
    total.duplicate_updates += s.duplicate_updates;
    total.queries += s.queries;
    total.log_entries += s.log_entries;
    total.gc_folded += s.gc_folded;
    total.snapshots_exported += s.snapshots_exported;
    total.snapshots_installed += s.snapshots_installed;
    total.approx_bytes += s.approx_bytes;
  }
  t.add("total", total.keys_live, "-", total.published_keys,
        total.local_updates, total.remote_updates, total.duplicate_updates,
        total.queries, total.log_entries, total.gc_folded,
        total.snapshots_exported, total.snapshots_installed,
        total.approx_bytes);
  t.print(os);
}

}  // namespace ucw
