// Aggregate statistics for the UCStore, in the house table format.
//
// The batching counters answer the question the store exists to answer:
// how many broadcasts (and estimated wire bytes) did coalescing save
// versus Algorithm 1's one-broadcast-per-update baseline? `entries_sent`
// is exactly the broadcast count the unbatched store would have issued,
// so `entries_sent / envelopes_sent` is both the mean batch occupancy
// and the broadcast-reduction factor.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "net/sim_network.hpp"
#include "store/shard.hpp"
#include "util/table.hpp"

namespace ucw {

struct StoreStats {
  std::uint64_t local_updates = 0;
  std::uint64_t remote_entries = 0;   ///< keyed updates applied on delivery
  std::uint64_t duplicate_entries = 0;  ///< of those, log-absorbed replays
  std::uint64_t queries = 0;
  std::uint64_t envelopes_sent = 0;   ///< reliable broadcasts issued
  std::uint64_t entries_sent = 0;     ///< keyed updates those carried
  std::uint64_t flushes_full = 0;     ///< batch window filled
  std::uint64_t flushes_manual = 0;   ///< explicit flush()/tick
  std::uint64_t bytes_batched = 0;    ///< est. wire bytes actually sent
  std::uint64_t bytes_unbatched = 0;  ///< est. bytes one-per-update would cost

  /// Mean keyed updates per envelope (== broadcast-reduction factor).
  [[nodiscard]] double batch_occupancy() const {
    return envelopes_sent == 0
               ? 0.0
               : static_cast<double>(entries_sent) /
                     static_cast<double>(envelopes_sent);
  }

  /// Fraction of the unbatched wire bytes that batching avoided.
  [[nodiscard]] double bytes_saved_ratio() const {
    return bytes_unbatched == 0
               ? 0.0
               : 1.0 - static_cast<double>(bytes_batched) /
                           static_cast<double>(bytes_unbatched);
  }
};

/// Renders one row per process plus the cluster-wide network totals, in
/// the house table format the bench binaries use.
inline void print_store_table(std::ostream& os,
                              const std::vector<StoreStats>& per_process,
                              const NetworkStats& net) {
  TextTable t({"process", "updates", "queries", "envelopes", "entries",
               "occupancy", "bytes sent (est)", "bytes saved"});
  // Signed: an envelope carrying a single entry costs a few bytes *more*
  // than a bare message (the seq field), so low-occupancy rows go
  // slightly negative instead of wrapping.
  const auto saved = [](const StoreStats& s) {
    return static_cast<std::int64_t>(s.bytes_unbatched) -
           static_cast<std::int64_t>(s.bytes_batched);
  };
  StoreStats total;
  for (std::size_t p = 0; p < per_process.size(); ++p) {
    const StoreStats& s = per_process[p];
    t.add(p, s.local_updates, s.queries, s.envelopes_sent, s.entries_sent,
          s.batch_occupancy(), s.bytes_batched, saved(s));
    total.local_updates += s.local_updates;
    total.queries += s.queries;
    total.envelopes_sent += s.envelopes_sent;
    total.entries_sent += s.entries_sent;
    total.bytes_batched += s.bytes_batched;
    total.bytes_unbatched += s.bytes_unbatched;
  }
  t.add("total", total.local_updates, total.queries, total.envelopes_sent,
        total.entries_sent, total.batch_occupancy(), total.bytes_batched,
        saved(total));
  t.print(os);
  os << "network: " << net.broadcasts << " broadcasts, "
     << net.messages_sent << " p2p messages, " << net.messages_delivered
     << " delivered, " << net.messages_duplicated << " duplicated\n";
}

/// Renders one row per shard plus a totals row, matching the table style
/// of the bench binaries.
inline void print_shard_table(std::ostream& os,
                              const std::vector<ShardStats>& shards) {
  TextTable t({"shard", "keys", "local", "remote", "dup", "queries",
               "log entries", "~bytes"});
  ShardStats total;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardStats& s = shards[i];
    t.add(i, s.keys_live, s.local_updates, s.remote_updates,
          s.duplicate_updates, s.queries, s.log_entries, s.approx_bytes);
    total.keys_live += s.keys_live;
    total.local_updates += s.local_updates;
    total.remote_updates += s.remote_updates;
    total.duplicate_updates += s.duplicate_updates;
    total.queries += s.queries;
    total.log_entries += s.log_entries;
    total.approx_bytes += s.approx_bytes;
  }
  t.add("total", total.keys_live, total.local_updates, total.remote_updates,
        total.duplicate_updates, total.queries, total.log_entries,
        total.approx_bytes);
  t.print(os);
}

}  // namespace ucw
