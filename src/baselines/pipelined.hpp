// Pipelined-consistency baseline (paper, Section IV).
//
// The cheapest meaningful implementation: apply every update the moment
// it is delivered, in delivery order. Over FIFO links this yields
// pipelined consistency (PRAM generalized to UQ-ADTs): each process's
// view is a valid interleaving of its own operations with everybody's
// updates. It does *not* converge — replicas that receive concurrent
// non-commuting updates in different orders keep different states forever
// (Figure 2), and Proposition 1 shows no wait-free implementation can fix
// that while staying pipelined consistent. The E2 bench replays exactly
// that scenario.
#pragma once

#include "adt/concepts.hpp"
#include "clock/timestamp.hpp"
#include "net/sim_network.hpp"

namespace ucw {

template <UqAdt A>
class PipelinedReplica {
 public:
  struct Message {
    typename A::Update update;
  };

  PipelinedReplica(A adt, ProcessId pid)
      : adt_(std::move(adt)), pid_(pid), state_(adt_.initial()) {}

  [[nodiscard]] ProcessId pid() const { return pid_; }
  [[nodiscard]] const A& adt() const { return adt_; }

  [[nodiscard]] Message local_update(typename A::Update u) {
    return Message{std::move(u)};
  }

  /// Applies in delivery order — no reordering, no log.
  void apply(ProcessId /*from*/, const Message& m) {
    state_ = adt_.transition(std::move(state_), m.update);
    ++applied_;
  }

  [[nodiscard]] typename A::QueryOut query(
      const typename A::QueryIn& qi) const {
    return adt_.output(state_, qi);
  }
  [[nodiscard]] const typename A::State& state() const { return state_; }
  [[nodiscard]] std::uint64_t applied() const { return applied_; }

 private:
  A adt_;
  ProcessId pid_;
  typename A::State state_;
  std::uint64_t applied_ = 0;
};

}  // namespace ucw
