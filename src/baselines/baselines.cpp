// Explicit instantiations of the common configurations.
#include "baselines/pipelined.hpp"

#include "adt/all.hpp"

namespace ucw {

template class PipelinedReplica<SetAdt<int>>;
template class PipelinedReplica<CounterAdt>;

}  // namespace ucw
