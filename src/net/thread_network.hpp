// Real-thread transport: one inbox per process, mutex + condition
// variable MPSC queues.
//
// The DES makes every experiment deterministic; this transport runs the
// same replicas under genuine concurrency (std::thread, real memory
// reordering in the queue handoff) for the throughput benchmarks and the
// stress tests. Operations on replicas remain wait-free: an update
// enqueues into every peer inbox and returns — it never waits for
// receivers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "clock/timestamp.hpp"
#include "util/assert.hpp"

namespace ucw {

/// Unbounded thread-safe queue. Bounded-ness is deliberately not imposed:
/// the paper's model has no back-pressure, and blocking a sender would
/// break wait-freedom.
template <typename T>
class Inbox {
 public:
  void push(T value) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Blocking pop; returns nullopt when closed and drained.
  [[nodiscard]] std::optional<T> pop_wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// N processes' inboxes plus broadcast; message = (from, payload).
template <typename Payload>
class ThreadNetwork {
 public:
  struct Envelope {
    ProcessId from;
    Payload payload;
  };

  explicit ThreadNetwork(std::size_t n_processes)
      : inboxes_(n_processes) {}

  [[nodiscard]] std::size_t size() const { return inboxes_.size(); }

  /// Enqueues to every *other* process. Local delivery is the caller's
  /// synchronous responsibility (matching SimNetwork's self-delivery).
  void broadcast_others(ProcessId from, const Payload& payload) {
    for (ProcessId to = 0; to < inboxes_.size(); ++to) {
      if (to != from) inboxes_[to].push(Envelope{from, payload});
    }
  }

  [[nodiscard]] Inbox<Envelope>& inbox(ProcessId p) {
    UCW_CHECK(p < inboxes_.size());
    return inboxes_[p];
  }

  void close_all() {
    for (auto& inbox : inboxes_) inbox.close();
  }

 private:
  std::vector<Inbox<Envelope>> inboxes_;
};

}  // namespace ucw
