// Real-thread transport: one inbox per process, mutex + condition
// variable MPSC queues.
//
// The DES makes every experiment deterministic; this transport runs the
// same replicas under genuine concurrency (std::thread, real memory
// reordering in the queue handoff) for the throughput benchmarks and the
// stress tests. Operations on replicas remain wait-free: an update
// enqueues into every peer inbox and returns — it never waits for
// receivers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "clock/timestamp.hpp"
#include "util/assert.hpp"

namespace ucw {

/// Unbounded thread-safe queue. Bounded-ness is deliberately not imposed:
/// the paper's model has no back-pressure, and blocking a sender would
/// break wait-freedom.
template <typename T>
class Inbox {
 public:
  void push(T value) {
    {
      std::lock_guard lock(mutex_);
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Non-blocking pop.
  [[nodiscard]] std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Blocking pop; returns nullopt when closed and drained.
  [[nodiscard]] std::optional<T> pop_wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

/// N processes' inboxes plus broadcast; message = (from, payload).
///
/// Partition injection is *hold-mode only*: a split buffers cross-group
/// messages per link (in send order) and heal() releases them, again in
/// send order, so every per-link FIFO stream stays gap-free — delayed,
/// never dropped. That is the deliberate scope: this transport has no
/// epochs or point-to-point sends, so the stores on it are not
/// catch-up-capable and a *dropping* partition would diverge them with
/// no anti-entropy to repair it. Hold-mode gives the stress tests and
/// the audit pipeline real partition blips under genuine concurrency
/// while keeping reliable-broadcast semantics intact.
template <typename Payload>
class ThreadNetwork {
 public:
  struct Envelope {
    ProcessId from;
    Payload payload;
  };

  explicit ThreadNetwork(std::size_t n_processes)
      : inboxes_(n_processes), group_of_(n_processes, 0) {}

  [[nodiscard]] std::size_t size() const { return inboxes_.size(); }

  /// Enqueues to every *other* process. Local delivery is the caller's
  /// synchronous responsibility (matching SimNetwork's self-delivery).
  /// Under a split, cross-group messages are buffered until heal().
  void broadcast_others(ProcessId from, const Payload& payload) {
    if (!partitioned_.load(std::memory_order_acquire)) {
      // Fast path: no split in force. A message that raced a concurrent
      // partition() through here behaves like one already in flight at
      // cut time — delivered, and ordered before anything the same
      // sender buffers afterwards.
      for (ProcessId to = 0; to < inboxes_.size(); ++to) {
        if (to != from) inboxes_[to].push(Envelope{from, payload});
      }
      return;
    }
    std::lock_guard lock(topology_mutex_);
    for (ProcessId to = 0; to < inboxes_.size(); ++to) {
      if (to == from) continue;
      if (group_of_[from] == group_of_[to]) {
        inboxes_[to].push(Envelope{from, payload});
      } else {
        held_[link(from, to)].push_back(payload);
        held_count_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  /// Splits the processes into groups; cross-group messages buffer
  /// until the groups rejoin. Any thread.
  void partition(const std::vector<std::size_t>& group_of) {
    std::lock_guard lock(topology_mutex_);
    UCW_CHECK(group_of.size() == inboxes_.size());
    group_of_ = group_of;
    bool split = false;
    for (const std::size_t g : group_of_) split = split || g != group_of_[0];
    if (held_count_.load(std::memory_order_relaxed) > 0) {
      release_connected_locked();
    }
    // Flag last: a fast-path sender that loads `false` is ordered after
    // this store, hence after the release above — it cannot push a
    // fresh message ahead of a still-buffered older one on any link.
    partitioned_.store(split, std::memory_order_release);
  }

  /// Reconnects everyone and releases every buffered message, per link
  /// in send order (FIFO per link is preserved end-to-end). Any thread.
  void heal() { partition(std::vector<std::size_t>(inboxes_.size(), 0)); }

  /// Whether `a` and `b` can currently exchange messages directly.
  [[nodiscard]] bool same_partition(ProcessId a, ProcessId b) const {
    UCW_CHECK(a < size() && b < size());
    if (!partitioned_.load(std::memory_order_acquire)) return true;
    std::lock_guard lock(topology_mutex_);
    return group_of_[a] == group_of_[b];
  }

  /// Cross-group messages currently buffered awaiting heal().
  [[nodiscard]] std::size_t held_messages() const {
    return held_count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Inbox<Envelope>& inbox(ProcessId p) {
    UCW_CHECK(p < inboxes_.size());
    return inboxes_[p];
  }

  void close_all() {
    for (auto& inbox : inboxes_) inbox.close();
  }

 private:
  [[nodiscard]] std::size_t link(ProcessId from, ProcessId to) const {
    return static_cast<std::size_t>(from) * inboxes_.size() + to;
  }

  /// Pushes every buffered message whose endpoints can talk again, per
  /// link in send order. topology_mutex_ holder only.
  void release_connected_locked() {
    for (ProcessId from = 0; from < inboxes_.size(); ++from) {
      for (ProcessId to = 0; to < inboxes_.size(); ++to) {
        if (from == to || group_of_[from] != group_of_[to]) continue;
        const auto it = held_.find(link(from, to));
        if (it == held_.end()) continue;
        for (auto& payload : it->second) {
          inboxes_[to].push(Envelope{from, std::move(payload)});
          held_count_.fetch_sub(1, std::memory_order_relaxed);
        }
        held_.erase(it);
      }
    }
  }

  std::vector<Inbox<Envelope>> inboxes_;
  /// Split state: the atomic flag is the hot-path gate, everything else
  /// (groups, held buffers) is guarded by the mutex.
  std::atomic<bool> partitioned_{false};
  mutable std::mutex topology_mutex_;
  std::vector<std::size_t> group_of_;
  std::unordered_map<std::size_t, std::deque<Payload>> held_;
  std::atomic<std::size_t> held_count_{0};
};

}  // namespace ucw
