// UdpTransport: real sockets under the same store contract as the
// in-process transports.
//
// One transport per OS process, one UDP socket bound to 127.0.0.1, a
// static peer table (index = pid), and a receiver thread that turns
// datagrams back into envelopes and queues them on the same Inbox type
// ThreadNetwork uses — so a ThreadUcStore runs over it unchanged. The
// capability surface it exposes to StoreCore's concept detection:
//
//   broadcast_others / size   — the required minimum;
//   inbox(pid)                — kPollableInbox (the store polls);
//   send(from, to, e)         — kPointToPoint;
//   epoch(p)                  — kEpochAware, so kCatchupCapable holds
//                               and catch-up + anti-entropy light up.
//
// Deliberately NOT exposed: crashed / in_flight_from / same_partition.
// A real network has no failure oracle — those features concept-gate
// off, which is the honest posture: gaps are detected from the (epoch,
// seq) stream itself and repaired by anti-entropy, not by asking an
// omniscient simulator.
//
// UDP gives no delivery, no ordering, and ~64 KiB per datagram. The
// wire codec's frames carry (msg id, fragment index/count), and the
// receiver reassembles multi-fragment messages per (sender, msg id)
// with a bounded table — an incomplete reassembly is evicted, which
// converts fragment loss into whole-envelope loss, which the store
// already repairs (SeqCoverage gap -> auto anti-entropy). All receive-
// side input is untrusted: a frame that fails validation increments a
// counter and is dropped; nothing a peer sends can crash this process.
//
// Test-only fault injection: sender-side drop/reorder filters (seeded,
// deterministic given a single sending thread) create real loss and
// real inversions on a real socket, so the loss-repair tests exercise
// the exact code path production losses would.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/thread_network.hpp"
#include "net/wire.hpp"
#include "store/envelope.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ucw {

/// One peer's address. Port 0 in this process's own entry = bind an
/// ephemeral port (tests); peers must then learn it out of band.
struct UdpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct UdpTransportOptions {
  /// This process's incarnation (StoreCore reads it at construction;
  /// bump it when re-binding after a restart).
  std::uint64_t epoch = 1;
  /// Largest payload slice per datagram; snapshots beyond it fragment.
  std::size_t max_frame_payload = wire::kDefaultMaxFramePayload;
  /// In-progress multi-fragment reassemblies kept per transport before
  /// the oldest is evicted (fragment loss must not leak memory).
  std::size_t reassembly_slots = 64;
  /// TEST-ONLY sender-side fault injection: each outgoing datagram is
  /// independently dropped with probability `drop`; with probability
  /// `reorder` it is held and shipped after the next datagram (a real
  /// adjacent-pair inversion on the wire). Deterministic per seed when
  /// one thread sends.
  double drop = 0.0;
  double reorder = 0.0;
  std::uint64_t fault_seed = 1;
};

struct UdpTransportStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t envelopes_sent = 0;      ///< per destination
  std::uint64_t envelopes_received = 0;  ///< decoded + queued
  std::uint64_t send_errors = 0;         ///< sendto() failures
  std::uint64_t frames_rejected = 0;     ///< bad magic/version/len/CRC
  std::uint64_t envelopes_rejected = 0;  ///< frame ok, payload malformed
  std::uint64_t bad_sender = 0;          ///< sender pid outside the table
  std::uint64_t reassemblies_completed = 0;
  std::uint64_t reassemblies_evicted = 0;
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_reorders = 0;
};

/// Socket transport for `BatchEnvelope<A, Key>` payloads.
template <UqAdt A, typename Key = std::string>
class UdpTransport {
 public:
  using Payload = BatchEnvelope<A, Key>;
  struct Envelope {
    ProcessId from;
    Payload payload;
  };

  /// Binds peers[pid] and starts the receiver. CHECK-fails on bad
  /// arguments; socket/bind failure is reported via bound() instead of
  /// a crash — a cluster launcher retries with fresh ports.
  UdpTransport(ProcessId pid, std::vector<UdpEndpoint> peers,
               UdpTransportOptions opts = {})
      : pid_(pid), peers_(std::move(peers)), opts_(opts) {
    UCW_CHECK(pid_ < peers_.size());
    UCW_CHECK(peers_.size() <= 0xFFFF);  // sender pid is u16 on the wire
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) return;
    // Generous receive buffer: a flush broadcasts to every peer at
    // once and the receiver thread may be mid-reassembly.
    int rcvbuf = 1 << 21;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    // Poll-with-timeout so the receiver thread can notice stop().
    timeval tv{};
    tv.tv_usec = 50 * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in self{};
    if (!to_sockaddr(peers_[pid_], &self)) {
      close_fd();
      return;
    }
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&self), sizeof(self)) != 0) {
      close_fd();
      return;
    }
    if (peers_[pid_].port == 0) {
      sockaddr_in bound_addr{};
      socklen_t len = sizeof(bound_addr);
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound_addr),
                        &len) == 0) {
        peers_[pid_].port = ntohs(bound_addr.sin_port);
      }
    }
    bound_ = true;
    receiver_ = std::thread([this] { receive_loop(); });
  }

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  ~UdpTransport() { close_all(); }

  /// Whether the socket bound successfully (false: port in use — the
  /// caller picks new ports and retries).
  [[nodiscard]] bool bound() const { return bound_; }
  /// The locally bound port (resolves port-0 ephemeral binds).
  [[nodiscard]] std::uint16_t local_port() const { return peers_[pid_].port; }

  /// Replaces the peer table (two-phase test setup: bind everyone on
  /// ephemeral ports first, then exchange the learned addresses). Call
  /// before any store sends; own entry must keep the bound port.
  void set_peers(std::vector<UdpEndpoint> peers) {
    UCW_CHECK(peers.size() == peers_.size());
    UCW_CHECK(peers[pid_].port == peers_[pid_].port);
    peers_ = std::move(peers);
  }

  [[nodiscard]] std::size_t size() const { return peers_.size(); }
  /// This process's incarnation; StoreCore only asks about itself.
  [[nodiscard]] std::uint64_t epoch(ProcessId) const { return opts_.epoch; }

  /// Sends one envelope to every other peer (wait-free for the caller:
  /// encode + per-peer sendto, never blocks on receivers).
  void broadcast_others(ProcessId from, const Payload& payload) {
    UCW_CHECK(from == pid_);
    std::vector<std::vector<std::uint8_t>> frames;
    encode_to_frames(payload, &frames);
    std::lock_guard lock(send_mutex_);
    for (ProcessId to = 0; to < peers_.size(); ++to) {
      if (to == from) continue;
      send_frames_locked(to, frames);
      stats_.envelopes_sent.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Point-to-point send (catch-up requests, snapshots, anti-entropy).
  void send(ProcessId from, ProcessId to, const Payload& payload) {
    UCW_CHECK(from == pid_ && to < peers_.size() && to != pid_);
    std::vector<std::vector<std::uint8_t>> frames;
    encode_to_frames(payload, &frames);
    std::lock_guard lock(send_mutex_);
    send_frames_locked(to, frames);
    stats_.envelopes_sent.fetch_add(1, std::memory_order_relaxed);
  }

  /// The local inbox the store polls; only this process's exists here.
  [[nodiscard]] Inbox<Envelope>& inbox(ProcessId p) {
    UCW_CHECK(p == pid_);
    return inbox_;
  }

  /// Stops the receiver, flushes any reorder-held datagram, closes the
  /// socket and the inbox. Idempotent.
  void close_all() {
    bool expected = false;
    if (!stop_.compare_exchange_strong(expected, true)) {
      if (receiver_.joinable()) receiver_.join();
      return;
    }
    {
      // A held (reorder-injected) datagram is in flight, not dropped —
      // release it so shutdown never manufactures phantom loss.
      std::lock_guard lock(send_mutex_);
      flush_held_locked();
    }
    if (receiver_.joinable()) receiver_.join();
    close_fd();
    inbox_.close();
  }

  [[nodiscard]] UdpTransportStats stats() const {
    UdpTransportStats s;
    s.datagrams_sent = stats_.datagrams_sent.load(std::memory_order_relaxed);
    s.datagrams_received =
        stats_.datagrams_received.load(std::memory_order_relaxed);
    s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
    s.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
    s.envelopes_sent = stats_.envelopes_sent.load(std::memory_order_relaxed);
    s.envelopes_received =
        stats_.envelopes_received.load(std::memory_order_relaxed);
    s.send_errors = stats_.send_errors.load(std::memory_order_relaxed);
    s.frames_rejected =
        stats_.frames_rejected.load(std::memory_order_relaxed);
    s.envelopes_rejected =
        stats_.envelopes_rejected.load(std::memory_order_relaxed);
    s.bad_sender = stats_.bad_sender.load(std::memory_order_relaxed);
    s.reassemblies_completed =
        stats_.reassemblies_completed.load(std::memory_order_relaxed);
    s.reassemblies_evicted =
        stats_.reassemblies_evicted.load(std::memory_order_relaxed);
    s.injected_drops = stats_.injected_drops.load(std::memory_order_relaxed);
    s.injected_reorders =
        stats_.injected_reorders.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct AtomicStats {
    std::atomic<std::uint64_t> datagrams_sent{0};
    std::atomic<std::uint64_t> datagrams_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> envelopes_sent{0};
    std::atomic<std::uint64_t> envelopes_received{0};
    std::atomic<std::uint64_t> send_errors{0};
    std::atomic<std::uint64_t> frames_rejected{0};
    std::atomic<std::uint64_t> envelopes_rejected{0};
    std::atomic<std::uint64_t> bad_sender{0};
    std::atomic<std::uint64_t> reassemblies_completed{0};
    std::atomic<std::uint64_t> reassemblies_evicted{0};
    std::atomic<std::uint64_t> injected_drops{0};
    std::atomic<std::uint64_t> injected_reorders{0};
  };

  struct Reassembly {
    std::uint16_t frag_count = 0;
    std::size_t received = 0;
    std::uint64_t admitted_at = 0;  ///< insertion order, for eviction
    std::vector<std::vector<std::uint8_t>> chunks;
    std::vector<bool> have;  ///< per fragment (a chunk may be empty)
  };

  static bool to_sockaddr(const UdpEndpoint& ep, sockaddr_in* out) {
    std::memset(out, 0, sizeof(*out));
    out->sin_family = AF_INET;
    out->sin_port = htons(ep.port);
    return ::inet_pton(AF_INET, ep.host.c_str(), &out->sin_addr) == 1;
  }

  void close_fd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void encode_to_frames(const Payload& payload,
                        std::vector<std::vector<std::uint8_t>>* frames) {
    std::vector<std::uint8_t> bytes;
    wire::encode_envelope(payload, &bytes);
    const std::uint32_t msg_id =
        next_msg_id_.fetch_add(1, std::memory_order_relaxed);
    wire::encode_frames(bytes.data(), bytes.size(),
                        static_cast<std::uint16_t>(pid_), msg_id, frames,
                        opts_.max_frame_payload);
  }

  // ----- send side (send_mutex_ held) ----------------------------------

  void send_frames_locked(ProcessId to,
                          const std::vector<std::vector<std::uint8_t>>& frames) {
    for (const auto& frame : frames) send_datagram_locked(to, frame);
  }

  void send_datagram_locked(ProcessId to,
                            const std::vector<std::uint8_t>& frame) {
    if (opts_.drop > 0.0 && fault_rng_.chance(opts_.drop)) {
      stats_.injected_drops.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (held_) {
      // A held datagram ships AFTER the current one: the adjacent pair
      // arrives inverted on the wire.
      const auto [held_to, held_frame] = std::move(*held_);
      held_.reset();
      raw_send(to, frame);
      raw_send(held_to, held_frame);
      return;
    }
    if (opts_.reorder > 0.0 && fault_rng_.chance(opts_.reorder)) {
      stats_.injected_reorders.fetch_add(1, std::memory_order_relaxed);
      held_.emplace(to, frame);
      return;
    }
    raw_send(to, frame);
  }

  void flush_held_locked() {
    if (!held_) return;
    const auto [to, frame] = std::move(*held_);
    held_.reset();
    raw_send(to, frame);
  }

  void raw_send(ProcessId to, const std::vector<std::uint8_t>& frame) {
    sockaddr_in dst{};
    if (fd_ < 0 || !to_sockaddr(peers_[to], &dst)) {
      stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const ssize_t n =
        ::sendto(fd_, frame.data(), frame.size(), 0,
                 reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
    if (n != static_cast<ssize_t>(frame.size())) {
      stats_.send_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stats_.datagrams_sent.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_sent.fetch_add(frame.size(), std::memory_order_relaxed);
  }

  // ----- receive side (receiver thread only) ---------------------------

  void receive_loop() {
    std::vector<std::uint8_t> buf(1 << 16);
    while (!stop_.load(std::memory_order_acquire)) {
      const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0, nullptr,
                                   nullptr);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        break;  // socket closed underneath us
      }
      stats_.datagrams_received.fetch_add(1, std::memory_order_relaxed);
      stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                      std::memory_order_relaxed);
      handle_datagram(buf.data(), static_cast<std::size_t>(n));
    }
  }

  void handle_datagram(const std::uint8_t* data, std::size_t len) {
    wire::FrameHeader h;
    const std::uint8_t* payload = nullptr;
    if (!wire::decode_frame(data, len, &h, &payload)) {
      stats_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (h.sender >= peers_.size() || h.sender == pid_) {
      stats_.bad_sender.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (h.frag_count == 1) {
      decode_and_deliver(h.sender, payload, h.payload_len);
      return;
    }
    reassemble(h, payload);
  }

  void reassemble(const wire::FrameHeader& h, const std::uint8_t* payload) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(h.sender) << 32) | h.msg_id;
    auto it = partial_.find(key);
    if (it == partial_.end()) {
      if (partial_.size() >= opts_.reassembly_slots) evict_oldest();
      Reassembly fresh;
      fresh.frag_count = h.frag_count;
      fresh.admitted_at = admit_counter_++;
      fresh.chunks.resize(h.frag_count);
      fresh.have.assign(h.frag_count, false);
      it = partial_.emplace(key, std::move(fresh)).first;
    }
    Reassembly& re = it->second;
    if (h.frag_count != re.frag_count || h.frag_index >= re.frag_count) {
      // Inconsistent with the first fragment seen: garbage or replayed
      // msg id. Drop the whole reassembly rather than mix payloads.
      partial_.erase(it);
      stats_.frames_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (re.have[h.frag_index]) return;  // duplicate fragment
    re.have[h.frag_index] = true;
    re.chunks[h.frag_index].assign(payload, payload + h.payload_len);
    if (++re.received < re.frag_count) return;
    std::vector<std::uint8_t> whole;
    for (const auto& chunk : re.chunks) {
      whole.insert(whole.end(), chunk.begin(), chunk.end());
    }
    const ProcessId from = h.sender;
    partial_.erase(it);
    stats_.reassemblies_completed.fetch_add(1, std::memory_order_relaxed);
    decode_and_deliver(from, whole.data(), whole.size());
  }

  void evict_oldest() {
    auto oldest = partial_.begin();
    for (auto it = partial_.begin(); it != partial_.end(); ++it) {
      if (it->second.admitted_at < oldest->second.admitted_at) oldest = it;
    }
    if (oldest != partial_.end()) {
      partial_.erase(oldest);
      stats_.reassemblies_evicted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void decode_and_deliver(ProcessId from, const std::uint8_t* payload,
                          std::size_t len) {
    Payload env;
    if (!wire::decode_envelope<A, Key>(payload, len, &env)) {
      stats_.envelopes_rejected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    stats_.envelopes_received.fetch_add(1, std::memory_order_relaxed);
    inbox_.push(Envelope{from, std::move(env)});
  }

  ProcessId pid_;
  std::vector<UdpEndpoint> peers_;
  UdpTransportOptions opts_;
  int fd_ = -1;
  bool bound_ = false;
  Inbox<Envelope> inbox_;
  std::atomic<bool> stop_{false};
  std::thread receiver_;
  std::atomic<std::uint32_t> next_msg_id_{1};

  // Send-side state (serialized: flushes can come from several threads).
  std::mutex send_mutex_;
  Rng fault_rng_{opts_.fault_seed};
  std::optional<std::pair<ProcessId, std::vector<std::uint8_t>>> held_;

  // Receiver-thread-only state.
  std::map<std::uint64_t, Reassembly> partial_;
  std::uint64_t admit_counter_ = 0;

  AtomicStats stats_;
};

}  // namespace ucw
