// Per-message latency models for the simulated asynchronous network.
//
// The paper's system model only assumes delays are finite and unbounded;
// the simulator makes them concrete and seedable so every experiment can
// sweep the delay distribution (uniform LAN jitter, exponential WAN,
// lognormal tail, Pareto heavy tail) while staying exactly reproducible.
// Times are virtual microseconds.
#pragma once

#include <string>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace ucw {

using SimTime = double;  ///< virtual microseconds

class LatencyModel {
 public:
  enum class Kind { Constant, Uniform, Exponential, LogNormal, Pareto };

  [[nodiscard]] static LatencyModel constant(SimTime value) {
    return LatencyModel(Kind::Constant, value, 0.0);
  }
  [[nodiscard]] static LatencyModel uniform(SimTime lo, SimTime hi) {
    UCW_CHECK(lo <= hi);
    return LatencyModel(Kind::Uniform, lo, hi);
  }
  [[nodiscard]] static LatencyModel exponential(SimTime mean) {
    UCW_CHECK(mean > 0);
    return LatencyModel(Kind::Exponential, mean, 0.0);
  }
  [[nodiscard]] static LatencyModel lognormal(double mu, double sigma) {
    return LatencyModel(Kind::LogNormal, mu, sigma);
  }
  [[nodiscard]] static LatencyModel pareto(SimTime scale, double shape) {
    UCW_CHECK(scale > 0 && shape > 0);
    return LatencyModel(Kind::Pareto, scale, shape);
  }

  [[nodiscard]] SimTime sample(Rng& rng) const {
    switch (kind_) {
      case Kind::Constant:
        return a_;
      case Kind::Uniform:
        return rng.uniform_real(a_, b_);
      case Kind::Exponential:
        return rng.exponential(a_);
      case Kind::LogNormal:
        return rng.lognormal(a_, b_);
      case Kind::Pareto:
        return rng.pareto(a_, b_);
    }
    return a_;
  }

  /// Mean of the distribution (Pareto with shape <= 1 reported as inf).
  [[nodiscard]] double mean() const {
    switch (kind_) {
      case Kind::Constant:
        return a_;
      case Kind::Uniform:
        return (a_ + b_) / 2.0;
      case Kind::Exponential:
        return a_;
      case Kind::LogNormal:
        return std::exp(a_ + b_ * b_ / 2.0);
      case Kind::Pareto:
        return b_ > 1.0 ? b_ * a_ / (b_ - 1.0)
                        : std::numeric_limits<double>::infinity();
    }
    return a_;
  }

  [[nodiscard]] std::string to_string() const {
    switch (kind_) {
      case Kind::Constant:
        return "constant(" + std::to_string(a_) + ")";
      case Kind::Uniform:
        return "uniform(" + std::to_string(a_) + "," + std::to_string(b_) +
               ")";
      case Kind::Exponential:
        return "exp(mean=" + std::to_string(a_) + ")";
      case Kind::LogNormal:
        return "lognormal(" + std::to_string(a_) + "," + std::to_string(b_) +
               ")";
      case Kind::Pareto:
        return "pareto(" + std::to_string(a_) + "," + std::to_string(b_) +
               ")";
    }
    return "?";
  }

 private:
  LatencyModel(Kind k, double a, double b) : kind_(k), a_(a), b_(b) {}
  Kind kind_;
  double a_, b_;
};

}  // namespace ucw
