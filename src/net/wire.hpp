// Versioned binary envelope codec: BatchEnvelope <-> untrusted bytes.
//
// Everything before this layer moves envelopes as C++ objects between
// in-process transports; a real socket moves bytes, and bytes are
// hostile. The codec therefore has one asymmetric contract:
//
//   * encode is total — any well-formed envelope serializes;
//   * decode is defensive — its input is an UNTRUSTED byte string
//     (truncated datagrams, bit flips, stale versions, deliberate
//     garbage), and it must return an error, never crash, never throw,
//     and never silently accept a frame whose checksum does not match.
//
// Every read is bounds-checked, every count is sanity-capped against
// the bytes that could possibly back it (a 32-bit length prefix must
// not become a 4 GiB allocation), and a payload that decodes but
// leaves trailing bytes is rejected — trailing garbage means a framing
// bug or an attack, not padding.
//
// Frame layout (little-endian, 24 bytes — matching the
// kFrameOverheadBytes estimate the batching benches already charge):
//
//   offset size field
//        0    4 magic "UCW1" (0x31574355 LE)
//        4    2 version (kWireVersion)
//        6    2 sender pid
//        8    4 msg id (per-sender counter; keys fragment reassembly)
//       12    2 fragment index
//       14    2 fragment count
//       16    4 payload length of THIS frame
//       20    4 CRC32 (IEEE) of this frame's payload bytes
//       24      payload...
//
// One envelope = one message = `frag_count` frames. Snapshots (catch-up
// and anti-entropy deltas) routinely exceed a UDP datagram, so the
// frame carries fragmentation fields and the transport reassembles by
// (sender, msg id). The CRC is per frame: a corrupted fragment is
// dropped before it can poison a reassembly.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "adt/register.hpp"
#include "store/envelope.hpp"

namespace ucw::wire {

inline constexpr std::uint32_t kMagic = 0x31574355u;  // "UCW1" in LE bytes
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;
static_assert(kFrameHeaderBytes == kFrameOverheadBytes,
              "the bench estimate and the real frame header agree");

/// Largest payload slice per frame: localhost UDP tops out near 64 KiB
/// per datagram; leave headroom for the header and kernel padding.
inline constexpr std::size_t kDefaultMaxFramePayload = 60000;

// ----------------------------------------------------------------- CRC32

/// CRC32 (IEEE 802.3, reflected) over a byte range.
[[nodiscard]] inline std::uint32_t crc32(const std::uint8_t* data,
                                         std::size_t len) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --------------------------------------------- bounded writer / reader

/// Append-only little-endian byte writer (encode side; total).
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { put_le(v, 2); }
  void u32(std::uint32_t v) { put_le(v, 4); }
  void u64(std::uint64_t v) { put_le(v, 8); }
  void bytes(const std::uint8_t* p, std::size_t n) {
    out_->insert(out_->end(), p, p + n);
  }

 private:
  void put_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian reader (decode side; every get returns
/// false on underrun and the caller propagates — no read ever touches
/// bytes past `len`).
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len)
      : p_(data), len_(len), i_(0) {}

  [[nodiscard]] std::size_t remaining() const { return len_ - i_; }
  [[nodiscard]] bool done() const { return i_ == len_; }

  [[nodiscard]] bool u8(std::uint8_t* v) {
    if (remaining() < 1) return false;
    *v = p_[i_++];
    return true;
  }
  [[nodiscard]] bool u16(std::uint16_t* v) { return get_le(v, 2); }
  [[nodiscard]] bool u32(std::uint32_t* v) { return get_le(v, 4); }
  [[nodiscard]] bool u64(std::uint64_t* v) { return get_le(v, 8); }
  [[nodiscard]] bool bytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, p_ + i_, n);
    i_ += n;
    return true;
  }
  [[nodiscard]] bool skip(std::size_t n) {
    if (remaining() < n) return false;
    i_ += n;
    return true;
  }

  /// Sanity cap for length prefixes: a claimed element count can be
  /// honest only if at least `min_bytes_each` bytes per element remain.
  /// Rejecting here keeps a flipped length byte from turning into a
  /// multi-gigabyte reserve before the per-element reads would fail.
  [[nodiscard]] bool fits(std::uint64_t count, std::size_t min_bytes_each) {
    return min_bytes_each == 0 || count <= remaining() / min_bytes_each;
  }

 private:
  template <typename T>
  [[nodiscard]] bool get_le(T* v, int n) {
    if (remaining() < static_cast<std::size_t>(n)) return false;
    std::uint64_t acc = 0;
    for (int k = 0; k < n; ++k) {
      acc |= static_cast<std::uint64_t>(p_[i_ + k]) << (8 * k);
    }
    i_ += n;
    *v = static_cast<T>(acc);
    return true;
  }

  const std::uint8_t* p_;
  std::size_t len_;
  std::size_t i_;
};

// -------------------------------------------------- value (de)serializers
//
// The envelope is generic over the ADT's Update/State and the key type;
// ValueCodec<T> is the customization point that pins each leaf type to
// bytes. Integral leaves are fixed-width LE; strings are u32-length-
// prefixed; RegWrite wraps its value. A new ADT going on the wire adds
// one specialization here (or next to its own definition).

template <typename T>
struct ValueCodec;  // no primary definition: unsupported leaf = compile error

template <typename T>
  requires std::is_integral_v<T>
struct ValueCodec<T> {
  static constexpr std::size_t kMinBytes = sizeof(T);
  static void encode(const T& v, Writer* w) {
    if constexpr (sizeof(T) == 1) {
      w->u8(static_cast<std::uint8_t>(v));
    } else if constexpr (sizeof(T) == 2) {
      w->u16(static_cast<std::uint16_t>(v));
    } else if constexpr (sizeof(T) == 4) {
      w->u32(static_cast<std::uint32_t>(v));
    } else {
      w->u64(static_cast<std::uint64_t>(v));
    }
  }
  [[nodiscard]] static bool decode(Reader* r, T* v) {
    if constexpr (sizeof(T) == 1) {
      std::uint8_t x;
      if (!r->u8(&x)) return false;
      *v = static_cast<T>(x);
    } else if constexpr (sizeof(T) == 2) {
      std::uint16_t x;
      if (!r->u16(&x)) return false;
      *v = static_cast<T>(x);
    } else if constexpr (sizeof(T) == 4) {
      std::uint32_t x;
      if (!r->u32(&x)) return false;
      *v = static_cast<T>(x);
    } else {
      std::uint64_t x;
      if (!r->u64(&x)) return false;
      *v = static_cast<T>(x);
    }
    return true;
  }
};

template <>
struct ValueCodec<std::string> {
  static constexpr std::size_t kMinBytes = 4;  // the length prefix
  static void encode(const std::string& v, Writer* w) {
    w->u32(static_cast<std::uint32_t>(v.size()));
    w->bytes(reinterpret_cast<const std::uint8_t*>(v.data()), v.size());
  }
  [[nodiscard]] static bool decode(Reader* r, std::string* v) {
    std::uint32_t n;
    if (!r->u32(&n) || n > r->remaining()) return false;
    v->resize(n);
    return n == 0 ||
           r->bytes(reinterpret_cast<std::uint8_t*>(v->data()), n);
  }
};

template <typename V>
struct ValueCodec<RegWrite<V>> {
  static constexpr std::size_t kMinBytes = ValueCodec<V>::kMinBytes;
  static void encode(const RegWrite<V>& u, Writer* w) {
    ValueCodec<V>::encode(u.value, w);
  }
  [[nodiscard]] static bool decode(Reader* r, RegWrite<V>* u) {
    return ValueCodec<V>::decode(r, &u->value);
  }
};

// ------------------------------------------------------ envelope payload

namespace detail {

inline constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(EnvelopeKind::kAntiEntropyDelta);

inline void put_u64_vec(const std::vector<std::uint64_t>& v, Writer* w) {
  w->u32(static_cast<std::uint32_t>(v.size()));
  for (const std::uint64_t x : v) w->u64(x);
}

[[nodiscard]] inline bool get_u64_vec(Reader* r,
                                      std::vector<std::uint64_t>* v) {
  std::uint32_t n;
  if (!r->u32(&n) || !r->fits(n, 8)) return false;
  v->resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!r->u64(&(*v)[i])) return false;
  }
  return true;
}

template <UqAdt A>
void put_stamped_update(const Stamp& stamp, const typename A::Update& u,
                        Writer* w) {
  w->u64(stamp.clock);
  w->u32(stamp.pid);
  ValueCodec<typename A::Update>::encode(u, w);
}

template <UqAdt A>
[[nodiscard]] bool get_stamped_update(Reader* r, Stamp* stamp,
                                      typename A::Update* u) {
  return r->u64(&stamp->clock) && r->u32(&stamp->pid) &&
         ValueCodec<typename A::Update>::decode(r, u);
}

template <UqAdt A, typename Key>
void put_snapshot(const ShardSnapshot<A, Key>& s, Writer* w) {
  w->u64(s.shard_index);
  w->u64(s.shard_count);
  w->u64(s.donor_clock);
  w->u64(s.delta_marker);
  w->u64(s.delta_since);
  w->u64(s.keys_total);
  put_u64_vec(s.donor_rows, w);
  w->u32(static_cast<std::uint32_t>(s.coverage.size()));
  for (const StreamCoverage& c : s.coverage) {
    w->u8(c.any ? 1 : 0);
    w->u64(c.epoch);
    w->u64(c.seq);
    w->u8(c.drained ? 1 : 0);
  }
  w->u32(static_cast<std::uint32_t>(s.keys.size()));
  for (const KeySnapshot<A, Key>& k : s.keys) {
    ValueCodec<Key>::encode(k.key, w);
    ValueCodec<typename A::State>::encode(k.base, w);
    w->u64(k.floor);
    w->u32(static_cast<std::uint32_t>(k.suffix.size()));
    for (const SnapshotLogEntry<A>& e : k.suffix) {
      put_stamped_update<A>(e.stamp, e.update, w);
    }
  }
}

template <UqAdt A, typename Key>
[[nodiscard]] bool get_snapshot(Reader* r, ShardSnapshot<A, Key>* s) {
  std::uint64_t shard_index, shard_count, keys_total;
  if (!r->u64(&shard_index) || !r->u64(&shard_count) ||
      !r->u64(&s->donor_clock) || !r->u64(&s->delta_marker) ||
      !r->u64(&s->delta_since) || !r->u64(&keys_total)) {
    return false;
  }
  s->shard_index = static_cast<std::size_t>(shard_index);
  s->shard_count = static_cast<std::size_t>(shard_count);
  s->keys_total = static_cast<std::size_t>(keys_total);
  if (!get_u64_vec(r, &s->donor_rows)) return false;
  std::uint32_t n_cov;
  if (!r->u32(&n_cov) || !r->fits(n_cov, 18)) return false;
  s->coverage.resize(n_cov);
  for (std::uint32_t i = 0; i < n_cov; ++i) {
    StreamCoverage& c = s->coverage[i];
    std::uint8_t any, drained;
    if (!r->u8(&any) || !r->u64(&c.epoch) || !r->u64(&c.seq) ||
        !r->u8(&drained) || any > 1 || drained > 1) {
      return false;
    }
    c.any = any != 0;
    c.drained = drained != 0;
  }
  std::uint32_t n_keys;
  if (!r->u32(&n_keys) ||
      !r->fits(n_keys, ValueCodec<Key>::kMinBytes +
                           ValueCodec<typename A::State>::kMinBytes + 12)) {
    return false;
  }
  s->keys.resize(n_keys);
  for (std::uint32_t i = 0; i < n_keys; ++i) {
    KeySnapshot<A, Key>& k = s->keys[i];
    if (!ValueCodec<Key>::decode(r, &k.key) ||
        !ValueCodec<typename A::State>::decode(r, &k.base) ||
        !r->u64(&k.floor)) {
      return false;
    }
    std::uint32_t n_suffix;
    if (!r->u32(&n_suffix) ||
        !r->fits(n_suffix,
                 12 + ValueCodec<typename A::Update>::kMinBytes)) {
      return false;
    }
    k.suffix.resize(n_suffix);
    for (std::uint32_t j = 0; j < n_suffix; ++j) {
      SnapshotLogEntry<A>& e = k.suffix[j];
      if (!get_stamped_update<A>(r, &e.stamp, &e.update)) return false;
    }
  }
  return true;
}

}  // namespace detail

/// Serializes one envelope (any kind) into `out` (appended). Total.
template <UqAdt A, typename Key>
void encode_envelope(const BatchEnvelope<A, Key>& e,
                     std::vector<std::uint8_t>* out) {
  Writer w(out);
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u64(e.epoch);
  w.u64(e.seq);
  w.u64(e.ack_clock);
  w.u32(static_cast<std::uint32_t>(e.entries.size()));
  for (const KeyedUpdate<A, Key>& entry : e.entries) {
    ValueCodec<Key>::encode(entry.key, &w);
    detail::put_stamped_update<A>(entry.msg.stamp, entry.msg.update, &w);
    detail::put_u64_vec(entry.msg.known, &w);
  }
  w.u8(e.snapshot ? 1 : 0);
  if (e.snapshot) detail::put_snapshot(*e.snapshot, &w);
  detail::put_u64_vec(e.sync_markers, &w);
  w.u64(e.sync_markers_epoch);
  w.u8(e.ae_reciprocate ? 1 : 0);
  detail::put_u64_vec(e.ae_floors, &w);
}

/// Parses an envelope payload from untrusted bytes. On any violation —
/// underrun, over-claimed count, invalid kind or flag byte, trailing
/// garbage — returns false with `*err` naming the first failure; `*out`
/// is then unspecified but always a valid object.
template <UqAdt A, typename Key>
[[nodiscard]] bool decode_envelope(const std::uint8_t* data, std::size_t len,
                                   BatchEnvelope<A, Key>* out,
                                   const char** err = nullptr) {
  const auto fail = [&](const char* what) {
    if (err) *err = what;
    return false;
  };
  *out = BatchEnvelope<A, Key>{};
  Reader r(data, len);
  std::uint8_t kind;
  if (!r.u8(&kind)) return fail("short read: kind");
  if (kind > detail::kMaxKind) return fail("invalid envelope kind");
  out->kind = static_cast<EnvelopeKind>(kind);
  if (!r.u64(&out->epoch) || !r.u64(&out->seq) || !r.u64(&out->ack_clock)) {
    return fail("short read: envelope header");
  }
  std::uint32_t n_entries;
  if (!r.u32(&n_entries) ||
      !r.fits(n_entries, ValueCodec<Key>::kMinBytes + 12 +
                             ValueCodec<typename A::Update>::kMinBytes + 4)) {
    return fail("entry count exceeds payload");
  }
  out->entries.resize(n_entries);
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    KeyedUpdate<A, Key>& entry = out->entries[i];
    if (!ValueCodec<Key>::decode(&r, &entry.key)) {
      return fail("short read: entry key");
    }
    if (!detail::get_stamped_update<A>(&r, &entry.msg.stamp,
                                       &entry.msg.update)) {
      return fail("short read: entry update");
    }
    if (!detail::get_u64_vec(&r, &entry.msg.known)) {
      return fail("short read: entry known rows");
    }
  }
  std::uint8_t has_snapshot;
  if (!r.u8(&has_snapshot) || has_snapshot > 1) {
    return fail("invalid snapshot flag");
  }
  if (has_snapshot != 0) {
    auto snap = std::make_shared<ShardSnapshot<A, Key>>();
    if (!detail::get_snapshot(&r, snap.get())) {
      return fail("malformed snapshot");
    }
    out->snapshot = std::move(snap);
  }
  if (!detail::get_u64_vec(&r, &out->sync_markers)) {
    return fail("short read: sync markers");
  }
  if (!r.u64(&out->sync_markers_epoch)) {
    return fail("short read: sync markers epoch");
  }
  std::uint8_t reciprocate;
  if (!r.u8(&reciprocate) || reciprocate > 1) {
    return fail("invalid reciprocate flag");
  }
  out->ae_reciprocate = reciprocate != 0;
  if (!detail::get_u64_vec(&r, &out->ae_floors)) {
    return fail("short read: ae floors");
  }
  if (!r.done()) return fail("trailing bytes after envelope");
  return true;
}

// ----------------------------------------------------------------- frames

struct FrameHeader {
  std::uint16_t version = 0;
  std::uint16_t sender = 0;
  std::uint32_t msg_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};

/// Splits `payload` into CRC'd frames of at most `max_payload` payload
/// bytes each, all tagged (sender, msg_id). An empty payload still
/// produces one frame (frag 0/1) — heartbeat envelopes are near-empty
/// but never zero-length, so this is belt and braces.
inline void encode_frames(const std::uint8_t* payload, std::size_t len,
                          std::uint16_t sender, std::uint32_t msg_id,
                          std::vector<std::vector<std::uint8_t>>* frames,
                          std::size_t max_payload = kDefaultMaxFramePayload) {
  if (max_payload == 0) max_payload = 1;
  const std::size_t n_frags = len == 0 ? 1 : (len + max_payload - 1) / max_payload;
  frames->clear();
  frames->reserve(n_frags);
  for (std::size_t f = 0; f < n_frags; ++f) {
    const std::size_t off = f * max_payload;
    const std::size_t n = std::min(max_payload, len - off);
    std::vector<std::uint8_t> frame;
    frame.reserve(kFrameHeaderBytes + n);
    Writer w(&frame);
    w.u32(kMagic);
    w.u16(kWireVersion);
    w.u16(sender);
    w.u32(msg_id);
    w.u16(static_cast<std::uint16_t>(f));
    w.u16(static_cast<std::uint16_t>(n_frags));
    w.u32(static_cast<std::uint32_t>(n));
    w.u32(crc32(payload + off, n));
    w.bytes(payload + off, n);
    frames->push_back(std::move(frame));
  }
}

/// Validates one datagram as a frame: magic, version, exact length
/// match, fragment-field sanity, CRC. On success `*payload` points into
/// `data` (zero-copy view; valid while `data` is). Untrusted input.
[[nodiscard]] inline bool decode_frame(const std::uint8_t* data,
                                       std::size_t len, FrameHeader* h,
                                       const std::uint8_t** payload,
                                       const char** err = nullptr) {
  const auto fail = [&](const char* what) {
    if (err) *err = what;
    return false;
  };
  if (len < kFrameHeaderBytes) return fail("short frame");
  Reader r(data, len);
  std::uint32_t magic;
  if (!r.u32(&magic)) return fail("short frame");
  if (magic != kMagic) return fail("bad magic");
  if (!r.u16(&h->version) || !r.u16(&h->sender) || !r.u32(&h->msg_id) ||
      !r.u16(&h->frag_index) || !r.u16(&h->frag_count) ||
      !r.u32(&h->payload_len) || !r.u32(&h->crc)) {
    return fail("short frame header");
  }
  if (h->version != kWireVersion) return fail("unsupported version");
  if (h->frag_count == 0 || h->frag_index >= h->frag_count) {
    return fail("invalid fragment fields");
  }
  if (h->payload_len != len - kFrameHeaderBytes) {
    return fail("length mismatch");
  }
  *payload = data + kFrameHeaderBytes;
  if (crc32(*payload, h->payload_len) != h->crc) return fail("bad checksum");
  return true;
}

}  // namespace ucw::wire
