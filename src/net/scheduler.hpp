// Discrete-event scheduler: the clock of the simulated world.
//
// A single-threaded priority queue of (time, sequence, action); equal
// times break ties by insertion order so runs are fully deterministic.
// Everything in the simulated substrate — message deliveries, workload
// think-times, crash injections, partition healing — is an action on
// this queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/latency.hpp"
#include "util/assert.hpp"

namespace ucw {

class SimScheduler {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void at(SimTime t, Action fn) {
    UCW_CHECK_MSG(t >= now_, "cannot schedule into the past");
    queue_.push(Entry{t, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a (non-negative) delay from now.
  void after(SimTime delay, Action fn) {
    UCW_CHECK(delay >= 0);
    at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `max_events` executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t n = 0;
    while (!queue_.empty() && n < max_events) {
      step();
      ++n;
    }
    return n;
  }

  /// Runs events with time <= t; leaves later events queued and advances
  /// the clock to exactly t.
  std::size_t run_until(SimTime t) {
    std::size_t n = 0;
    while (!queue_.empty() && queue_.top().at <= t) {
      step();
      ++n;
    }
    now_ = std::max(now_, t);
    return n;
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action fn;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  void step() {
    // Move out before popping: the action may schedule new events.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    UCW_DCHECK(e.at >= now_);
    now_ = e.at;
    ++executed_;
    e.fn();
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ucw
