// Simulated asynchronous reliable message-passing network.
//
// Implements the paper's system model (Section VII-A): a complete,
// reliable network between sequential crash-prone processes, with no
// bound on transfer delays. Broadcast from a correct process is
// eventually received by every correct process; a message the sender
// broadcasts is "received instantaneously by the sender" (the proof of
// Proposition 4 relies on this), so self-delivery is synchronous.
//
// Failure and topology injection:
//  * crash(p): p stops acting; queued deliveries to p are discarded at
//    delivery time, and p's future sends are dropped (crash-stop);
//  * partition(groups, heal_at): cross-group messages are withheld until
//    the heal time, then released with a fresh latency sample — the
//    "partitions do occur" scenario of the introduction, for short
//    blips a transport-level retry would ride out;
//  * partition(groups) / heal(): a *long-lived* split. Cross-group
//    messages are dropped outright (a real transport gives up long
//    before a multi-minute partition heals), so the two sides genuinely
//    diverge — per-sender (epoch, seq) streams grow gaps — and
//    reconciliation after heal() is the anti-entropy protocol's job,
//    exactly the companion brief announcement's scenario (update
//    consistency as the criterion that survives partitions);
//  * fifo_links: per-link FIFO delivery (needed by the pipelined
//    baseline; Algorithm 1 works with or without it).
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "clock/timestamp.hpp"
#include "net/latency.hpp"
#include "net/scheduler.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ucw {

struct NetworkStats {
  std::uint64_t messages_sent = 0;       ///< point-to-point transmissions
  std::uint64_t broadcasts = 0;          ///< broadcast invocations
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped_crash = 0;
  std::uint64_t messages_held_partition = 0;     ///< timed (hold) splits
  std::uint64_t messages_dropped_partition = 0;  ///< explicit (drop) splits
  /// Of messages_dropped_partition: held by an escalating split for the
  /// grace window, then dropped because the split outlived it.
  std::uint64_t messages_dropped_escalation = 0;
  std::uint64_t messages_duplicated = 0;  ///< at-least-once injections
  std::uint64_t restarts = 0;             ///< crash-recover rejoins
};

template <typename Payload>
class SimNetwork {
 public:
  using Handler = std::function<void(ProcessId from, const Payload&)>;

  struct Config {
    std::size_t n_processes = 2;
    LatencyModel latency = LatencyModel::exponential(1000.0);  // 1 ms mean
    bool fifo_links = false;
    /// At-least-once delivery: probability that a point-to-point message
    /// is delivered twice (independent latency for the duplicate).
    /// Algorithm 1 absorbs duplicates (its log is a set keyed by stamp);
    /// non-idempotent op-based replicas (e.g. PN-Set) visibly do not —
    /// see the failure-injection tests.
    double duplicate_probability = 0.0;
    std::uint64_t seed = 1;
  };

  SimNetwork(SimScheduler& scheduler, Config config)
      : scheduler_(&scheduler),
        config_(config),
        rng_(Rng(config.seed).fork("net-latency")),
        handlers_(config.n_processes),
        crashed_(config.n_processes, false),
        epochs_(config.n_processes, 0),
        in_flight_from_(config.n_processes, 0),
        group_of_(config.n_processes, 0),
        last_delivery_(config.n_processes,
                       std::vector<SimTime>(config.n_processes, 0.0)) {}

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  [[nodiscard]] std::size_t size() const { return config_.n_processes; }
  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] SimScheduler& scheduler() { return *scheduler_; }

  void set_handler(ProcessId p, Handler h) {
    UCW_CHECK(p < handlers_.size());
    handlers_[p] = std::move(h);
  }

  /// Per-process tracers (caller-owned, index = pid; nullptr entries and
  /// a short vector are fine). The network records partition topology
  /// events — cut, per-message drop, heal — on the affected process's
  /// own track-0 timeline, so a Chrome trace shows *why* a replica's
  /// stream gapped right next to the applies that stalled.
  void set_tracers(std::vector<obs::Tracer*> tracers) {
    tracers_ = std::move(tracers);
  }

  /// Reliable broadcast from `from` to every process. Self-delivery is
  /// synchronous (before this call returns); remote deliveries are
  /// scheduled per-receiver with independent latency samples.
  void broadcast(ProcessId from, const Payload& payload) {
    UCW_CHECK(from < size());
    if (crashed_[from]) return;
    if (handlers_[from]) {
      ++stats_.messages_delivered;
      handlers_[from](from, payload);
    }
    broadcast_others(from, payload);
  }

  /// Reliable broadcast to every *other* process — for senders that have
  /// already applied the payload locally (UCStore self-delivers at update
  /// time, then flushes batch envelopes through here). Counts as one
  /// broadcast in the stats regardless of how many updates the payload
  /// carries.
  void broadcast_others(ProcessId from, const Payload& payload) {
    UCW_CHECK(from < size());
    if (crashed_[from]) return;
    ++stats_.broadcasts;
    for (ProcessId to = 0; to < size(); ++to) {
      if (to == from) continue;
      send(from, to, payload);
    }
  }

  /// Point-to-point send with a fresh latency sample.
  void send(ProcessId from, ProcessId to, const Payload& payload) {
    transmit(from, to, payload);
    if (config_.duplicate_probability > 0.0 &&
        rng_.chance(config_.duplicate_probability)) {
      ++stats_.messages_duplicated;
      transmit(from, to, payload);
    }
  }

 private:
  void transmit(ProcessId from, ProcessId to, const Payload& payload) {
    UCW_CHECK(from < size() && to < size());
    if (crashed_[from]) return;
    if (group_of_[from] != group_of_[to] && mode_ == PartitionMode::kDrop) {
      // A long-lived split: the message is lost, not delayed. Dropping
      // at send time keeps the link FIFO-per-segment (everything that
      // *is* delivered arrives in send order), so the receiver's view
      // of the sender's (epoch, seq) stream is a set of contiguous
      // segments — exactly what the store's coverage tracking models.
      ++stats_.messages_dropped_partition;
      net_trace(from, obs::TraceEventKind::kPartitionDrop, to);
      return;
    }
    if (group_of_[from] != group_of_[to] &&
        mode_ == PartitionMode::kEscalate) {
      // Escalating split: buffered like a transport retrying the link,
      // for at most the grace window from *this message's* send time. A
      // heal inside the window releases it (see release_held_connected);
      // the deadline event below drops it if the sides are still split —
      // only then does the stream grow a real gap.
      ++stats_.messages_sent;
      ++stats_.messages_held_partition;
      ++in_flight_from_[from];
      const std::uint64_t id = ++next_held_id_;
      held_.push_back(HeldMsg{id, from, to, payload});
      scheduler_->at(scheduler_->now() + escalation_grace_,
                     [this, id]() { expire_held(id); });
      return;
    }
    ++stats_.messages_sent;
    ++in_flight_from_[from];
    SimTime deliver_at = scheduler_->now() + config_.latency.sample(rng_);
    if (group_of_[from] != group_of_[to]) {
      // Held by the partition: released at heal time plus fresh latency.
      ++stats_.messages_held_partition;
      deliver_at =
          std::max(deliver_at, heal_at_ + config_.latency.sample(rng_));
    }
    if (config_.fifo_links) {
      deliver_at = std::max(deliver_at,
                            last_delivery_[from][to] + kFifoEpsilon);
      last_delivery_[from][to] = deliver_at;
    }
    scheduler_->at(deliver_at, [this, from, to, payload]() {
      deliver(from, to, payload);
    });
  }

 public:
  /// Crash-stop failure: `p` neither sends nor receives from now on.
  void crash(ProcessId p) {
    UCW_CHECK(p < size());
    crashed_[p] = true;
  }
  [[nodiscard]] bool crashed(ProcessId p) const { return crashed_[p]; }
  [[nodiscard]] std::size_t crashed_count() const {
    std::size_t n = 0;
    for (bool c : crashed_) n += c ? 1 : 0;
    return n;
  }

  /// Messages sent by `p` still scheduled for delivery somewhere. The
  /// failure-detector stand-in: once a crashed process's count reaches
  /// zero, nothing of it is in flight — safe to declare it for GC, and
  /// safe to restart it (same guarantee the matrix-clock docs demand of
  /// mark_crashed).
  [[nodiscard]] std::uint64_t in_flight_from(ProcessId p) const {
    UCW_CHECK(p < size());
    return in_flight_from_[p];
  }

  /// Incarnation counter: bumped on every restart. Envelopes carry it so
  /// receivers can tell a rejoined process's fresh seq stream from its
  /// pre-crash one.
  [[nodiscard]] std::uint64_t epoch(ProcessId p) const {
    UCW_CHECK(p < size());
    return epochs_[p];
  }

  [[nodiscard]] bool can_restart(ProcessId p) const {
    return p < size() && crashed_[p] && in_flight_from_[p] == 0;
  }

  /// Crash-recover rejoin: `p` comes back (with empty state — the caller
  /// builds a fresh store and runs catch-up) under a new incarnation.
  /// Only legal once the old incarnation's messages have drained — a
  /// failure-detection timeout exceeding the maximum transfer delay —
  /// otherwise a pre-crash straggler could collide with the fresh seq
  /// stream and evade the catch-up gap detection.
  void restart(ProcessId p) {
    UCW_CHECK(p < size());
    UCW_CHECK_MSG(crashed_[p], "restart of a process that is not crashed");
    UCW_CHECK_MSG(in_flight_from_[p] == 0,
                  "restart before the old incarnation's messages drained");
    crashed_[p] = false;
    ++epochs_[p];
    ++stats_.restarts;
  }

  /// Splits processes into groups; cross-group traffic is withheld until
  /// `heal_at` (virtual time). Pass group 0 for everyone to heal early.
  void partition(const std::vector<std::size_t>& group_of, SimTime heal_at) {
    UCW_CHECK(group_of.size() == size());
    group_of_ = group_of;
    mode_ = PartitionMode::kHold;
    heal_at_ = heal_at;
    scheduler_->at(heal_at, [this]() {
      if (mode_ != PartitionMode::kHold) return;  // re-partitioned since
      std::fill(group_of_.begin(), group_of_.end(), 0);
      mode_ = PartitionMode::kNone;
      release_held_connected();
    });
    release_held_connected();
  }

  /// Hold→drop escalation, the way a real transport degrades: for the
  /// first `grace` of virtual time after each cross-group send the
  /// message sits in a retry buffer (a heal inside the window releases
  /// it in send order with a fresh latency sample — a blip costs only
  /// delay, like TCP riding out a short outage); once a message's
  /// window expires with the split still in force, it is dropped and
  /// the sender's (epoch, seq) stream grows a genuine gap for
  /// anti-entropy to repair. Heal via heal() or a re-partition().
  void partition_escalating(const std::vector<std::size_t>& group_of,
                            SimTime grace) {
    UCW_CHECK(group_of.size() == size());
    UCW_CHECK(grace >= 0.0);
    group_of_ = group_of;
    escalation_grace_ = grace;
    bool split = false;
    for (const std::size_t g : group_of_) split = split || g != group_of_[0];
    const PartitionMode was = mode_;
    mode_ = split ? PartitionMode::kEscalate : PartitionMode::kNone;
    if (mode_ == PartitionMode::kEscalate && was != PartitionMode::kEscalate) {
      for (ProcessId p = 0; p < size(); ++p) {
        net_trace(p, obs::TraceEventKind::kPartitionCut, group_of_[p]);
      }
    }
    release_held_connected();
  }

  /// True while an escalating (hold→drop) split is in force.
  [[nodiscard]] bool escalating() const {
    return mode_ == PartitionMode::kEscalate;
  }
  /// Escalation-held messages currently buffered awaiting heal-or-drop.
  [[nodiscard]] std::size_t held_messages() const { return held_.size(); }

  /// First-class long-lived split: cross-group traffic is *dropped* from
  /// now until the topology changes (heal(), or another partition()
  /// call merging/re-cutting groups — an asymmetric heal is just a
  /// partition() whose map joins two former groups while a third stays
  /// out). Both sides keep operating; divergence is repaired by the
  /// store-level anti-entropy exchange after connectivity returns.
  void partition(const std::vector<std::size_t>& group_of) {
    UCW_CHECK(group_of.size() == size());
    const PartitionMode was = mode_;
    group_of_ = group_of;
    bool split = false;
    for (const std::size_t g : group_of_) split = split || g != group_of_[0];
    mode_ = split ? PartitionMode::kDrop : PartitionMode::kNone;
    if (mode_ == PartitionMode::kDrop && was != PartitionMode::kDrop) {
      for (ProcessId p = 0; p < size(); ++p) {
        net_trace(p, obs::TraceEventKind::kPartitionCut, group_of_[p]);
      }
    } else if (mode_ == PartitionMode::kNone && was == PartitionMode::kDrop) {
      for (ProcessId p = 0; p < size(); ++p) {
        net_trace(p, obs::TraceEventKind::kPartitionHeal);
      }
    }
    release_held_connected();
  }

  /// Reconnects everyone (drops nothing thereafter). Messages dropped
  /// while split stay lost — catch-up is the stores' anti-entropy job.
  void heal() {
    const bool was_split =
        mode_ == PartitionMode::kDrop || mode_ == PartitionMode::kEscalate;
    std::fill(group_of_.begin(), group_of_.end(), 0);
    mode_ = PartitionMode::kNone;
    if (was_split) {
      for (ProcessId p = 0; p < size(); ++p) {
        net_trace(p, obs::TraceEventKind::kPartitionHeal);
      }
    }
    release_held_connected();
  }

  /// Whether `a` and `b` can currently exchange messages directly.
  [[nodiscard]] bool same_partition(ProcessId a, ProcessId b) const {
    UCW_CHECK(a < size() && b < size());
    return mode_ == PartitionMode::kNone || group_of_[a] == group_of_[b];
  }

  /// True while an explicit (drop-mode) split is in force.
  [[nodiscard]] bool partitioned() const {
    return mode_ == PartitionMode::kDrop;
  }

 private:
  enum class PartitionMode { kNone, kHold, kDrop, kEscalate };

  static constexpr SimTime kFifoEpsilon = 1e-6;

  /// One cross-group message buffered by an escalating split.
  struct HeldMsg {
    std::uint64_t id = 0;
    ProcessId from = 0;
    ProcessId to = 0;
    Payload payload;
  };

  /// Schedules a (previously held) message for delivery now + fresh
  /// latency, keeping the per-link FIFO clamp honest. The in-flight
  /// count was charged when the message was buffered.
  void schedule_delivery(ProcessId from, ProcessId to,
                         const Payload& payload) {
    SimTime deliver_at = scheduler_->now() + config_.latency.sample(rng_);
    if (config_.fifo_links) {
      deliver_at =
          std::max(deliver_at, last_delivery_[from][to] + kFifoEpsilon);
      last_delivery_[from][to] = deliver_at;
    }
    scheduler_->at(deliver_at, [this, from, to, payload]() {
      deliver(from, to, payload);
    });
  }

  /// Releases every buffered message whose endpoints can talk again, in
  /// send order (so the FIFO clamp reconstructs the original link
  /// order). Called on every topology change.
  void release_held_connected() {
    if (held_.empty()) return;
    std::vector<HeldMsg> still;
    still.reserve(held_.size());
    for (auto& m : held_) {
      if (same_partition(m.from, m.to)) {
        schedule_delivery(m.from, m.to, m.payload);
      } else {
        still.push_back(std::move(m));
      }
    }
    held_ = std::move(still);
  }

  /// Deadline event for one buffered message: still split → the hold
  /// escalates to a drop; healed (race with the release scan) → deliver.
  void expire_held(std::uint64_t id) {
    const auto it = std::find_if(held_.begin(), held_.end(),
                                 [id](const HeldMsg& m) { return m.id == id; });
    if (it == held_.end()) return;  // released by a heal inside the window
    const HeldMsg m = std::move(*it);
    held_.erase(it);
    if (same_partition(m.from, m.to)) {
      schedule_delivery(m.from, m.to, m.payload);
      return;
    }
    UCW_CHECK(in_flight_from_[m.from] > 0);
    --in_flight_from_[m.from];
    ++stats_.messages_dropped_partition;
    ++stats_.messages_dropped_escalation;
    net_trace(m.from, obs::TraceEventKind::kPartitionDrop, m.to);
  }

  /// Thread-scoped instant on `p`'s router track, if `p` has a tracer.
  void net_trace(ProcessId p, obs::TraceEventKind kind, std::uint64_t a = 0,
                 std::uint64_t b = 0) {
    if (p < tracers_.size() && tracers_[p] != nullptr) {
      tracers_[p]->instant(0, kind, a, b);
    }
  }

  void deliver(ProcessId from, ProcessId to, const Payload& payload) {
    UCW_CHECK(in_flight_from_[from] > 0);
    --in_flight_from_[from];
    if (crashed_[to]) {
      // Crash-stop: a crashed process receives nothing. Messages already
      // in flight *from* a process that crashed later are still
      // delivered — a crash happens between operations, so a broadcast
      // is all-or-nothing and reliable broadcast (every correct process
      // receives what any correct process received) is preserved.
      ++stats_.messages_dropped_crash;
      return;
    }
    ++stats_.messages_delivered;
    if (handlers_[to]) handlers_[to](from, payload);
  }

  SimScheduler* scheduler_;
  Config config_;
  Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> crashed_;
  std::vector<std::uint64_t> epochs_;
  std::vector<std::uint64_t> in_flight_from_;
  std::vector<std::size_t> group_of_;
  PartitionMode mode_ = PartitionMode::kNone;
  SimTime heal_at_ = 0.0;
  SimTime escalation_grace_ = 0.0;
  std::uint64_t next_held_id_ = 0;
  std::vector<HeldMsg> held_;
  std::vector<std::vector<SimTime>> last_delivery_;
  std::vector<obs::Tracer*> tracers_;
  NetworkStats stats_;
};

}  // namespace ucw
