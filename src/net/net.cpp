// Explicit instantiations of the common payload configurations.
#include "net/sim_network.hpp"
#include "net/thread_network.hpp"

#include <cstdint>
#include <string>

namespace ucw {

template class SimNetwork<std::uint64_t>;
template class SimNetwork<std::string>;
template class Inbox<std::uint64_t>;
template class ThreadNetwork<std::uint64_t>;

}  // namespace ucw
