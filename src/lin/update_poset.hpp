// View of a history's updates as a partial order (U_H, ↦|U).
//
// The checkers reason about linearizations of the updates (Definition 8
// imposes a total order on updates containing the program order). Updates
// are numbered densely into *slots* so downsets of the poset fit in a
// 64-bit mask; histories with more than 64 updates are rejected — the
// exact checkers are small-model deciders (the paper's figures have ≤ 5
// updates), while run-scale validation uses certificates instead.
#pragma once

#include <vector>

#include "history/history.hpp"
#include "util/bitset64.hpp"

namespace ucw {

inline constexpr std::size_t kMaxPosetUpdates = 64;

template <UqAdt A>
class UpdatePoset {
 public:
  UpdatePoset(const History<A>&&) = delete;  // views must outlive temporaries
  explicit UpdatePoset(const History<A>& h) : history_(&h) {
    const auto& ids = h.update_ids();
    UCW_CHECK_MSG(ids.size() <= kMaxPosetUpdates,
                  "exact checkers support at most 64 updates; got "
                      << ids.size());
    slots_.assign(ids.begin(), ids.end());
    pred_.assign(slots_.size(), Bitset64{});
    for (std::size_t b = 0; b < slots_.size(); ++b) {
      for (std::size_t a = 0; a < slots_.size(); ++a) {
        if (a != b && h.prog_before(slots_[a], slots_[b])) {
          pred_[b].set(static_cast<unsigned>(a));
        }
      }
    }
  }

  [[nodiscard]] std::size_t count() const { return slots_.size(); }
  [[nodiscard]] Bitset64 full() const {
    return Bitset64::all(static_cast<unsigned>(slots_.size()));
  }

  /// Mask of updates that must precede slot k (transitively closed,
  /// because program order itself is transitive).
  [[nodiscard]] Bitset64 pred_mask(std::size_t k) const { return pred_[k]; }

  [[nodiscard]] EventId event_id(std::size_t k) const { return slots_[k]; }

  [[nodiscard]] const typename A::Update& update(std::size_t k) const {
    return history_->event(slots_[k]).update();
  }

  /// Updates executable next given that `done` are already executed.
  [[nodiscard]] Bitset64 enabled(Bitset64 done) const {
    Bitset64 e;
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      if (!done.test(static_cast<unsigned>(k)) &&
          done.contains(pred_[k])) {
        e.set(static_cast<unsigned>(k));
      }
    }
    return e;
  }

 private:
  const History<A>* history_;
  std::vector<EventId> slots_;
  std::vector<Bitset64> pred_;
};

}  // namespace ucw
