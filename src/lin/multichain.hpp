// Whole-history linearization over per-process chains.
//
// Decides lin(H) ∩ L(O) ≠ ∅ for a complete history — *no* query removed
// — which is the sequential-consistency question the paper positions
// update consistency against ("stronger than eventual consistency and
// weaker than sequential consistency", §VIII).
//
// For a history whose program order is a union of k chains (plus
// optional cross edges), a downset is exactly a tuple of per-chain
// positions; the DP walks position tuples and memoizes the distinct ADT
// states reachable at each, filtering through query observations as they
// are consumed. Complexity ∏(L_i + 1) tuples times distinct states —
// exact and fast for checker-scale histories, budget-guarded beyond.
//
// ω-queries are, as everywhere in this library, final-state conditions:
// all but finitely many of their copies follow every finite event.
#pragma once

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adt/concepts.hpp"
#include "history/history.hpp"
#include "lin/downset.hpp"

namespace ucw {

template <UqAdt A>
class MultiChainLinearizer {
 public:
  using State = typename A::State;

  MultiChainLinearizer(const History<A>&&, ExploreBudget = {}) = delete;
  explicit MultiChainLinearizer(const History<A>& h,
                                ExploreBudget budget = {})
      : history_(&h), budget_(budget) {}

  /// Does some linearization of the *whole* history belong to L(O)?
  /// nullopt = budget exceeded.
  [[nodiscard]] std::optional<bool> whole_history_linearizes() {
    stats_ = ExploreStats{};
    build_chains();

    std::unordered_map<Key, StateSet, KeyHash> seen;
    std::vector<Key> frontier;
    auto add = [&](Key key, State s) -> bool {
      auto [it, fresh] = seen.try_emplace(key);
      if (fresh) frontier.push_back(key);
      if (it->second.insert(std::move(s)).second) {
        if (++stats_.states_stored > budget_.max_states) {
          stats_.budget_exceeded = true;
          return false;
        }
      }
      return true;
    };

    if (!add(Key{}, history_->adt().initial())) return std::nullopt;

    const Key goal = goal_key();
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const Key key = frontier[i];
      const StateSet states = seen.at(key);  // copy: `seen` may rehash
      ++stats_.downsets_visited;

      for (std::size_t c = 0; c < chains_.size(); ++c) {
        const std::size_t pos = position(key, c);
        if (pos >= chains_[c].size()) continue;
        const EventId e = chains_[c][pos];
        if (!enabled(key, e)) continue;
        const Key next = advanced(key, c);
        const auto& ev = history_->event(e);
        for (const State& s : states) {
          ++stats_.transitions;
          if (ev.is_update()) {
            auto out = history_->adt().transition(s, ev.update());
            if (!add(next, std::move(out))) return std::nullopt;
          } else if (history_->adt().output(s, ev.query().first) ==
                     ev.query().second) {
            if (!add(next, s)) return std::nullopt;
          }
        }
      }
    }

    auto it = seen.find(goal);
    if (it != seen.end()) {
      for (const State& s : it->second) {
        if (omega_holds(s)) return true;
      }
    }
    if (stats_.budget_exceeded) return std::nullopt;
    return false;
  }

  [[nodiscard]] const ExploreStats& stats() const { return stats_; }

 private:
  // Position tuple packed into 64 bits: 8 bits per chain, ≤ 8 chains of
  // length ≤ 255 (checker-scale; enforced in build_chains).
  using Key = std::uint64_t;
  struct KeyHash {
    std::size_t operator()(Key k) const {
      return std::hash<std::uint64_t>{}(k * 0x9e3779b97f4a7c15ULL);
    }
  };
  using StateSet = std::unordered_set<State, ValueHash>;

  void build_chains() {
    chains_.clear();
    omega_obs_.clear();
    for (ProcessId p = 0; p < history_->process_count(); ++p) {
      std::vector<EventId> finite;
      for (EventId id : history_->chain(p)) {
        if (history_->event(id).omega) {
          omega_obs_.push_back(&history_->event(id).query());
        } else {
          finite.push_back(id);
        }
      }
      if (!finite.empty() || true) chains_.push_back(std::move(finite));
    }
    UCW_CHECK_MSG(chains_.size() <= 8,
                  "whole-history linearizer supports <= 8 processes");
    for (const auto& chain : chains_) {
      UCW_CHECK_MSG(chain.size() <= 255,
                    "whole-history linearizer supports chains <= 255");
    }
  }

  [[nodiscard]] static std::size_t position(Key key, std::size_t chain) {
    return (key >> (8 * chain)) & 0xFF;
  }
  [[nodiscard]] static Key advanced(Key key, std::size_t chain) {
    return key + (Key{1} << (8 * chain));
  }
  [[nodiscard]] Key goal_key() const {
    Key k = 0;
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      k |= static_cast<Key>(chains_[c].size()) << (8 * c);
    }
    return k;
  }

  /// Cross-chain program-order predecessors (extra edges) consumed?
  [[nodiscard]] bool enabled(Key key, EventId e) const {
    if (history_->extra_edges().empty()) return true;
    for (std::size_t c = 0; c < chains_.size(); ++c) {
      const std::size_t pos = position(key, c);
      for (std::size_t i = pos; i < chains_[c].size(); ++i) {
        const EventId pending = chains_[c][i];
        if (pending != e && history_->prog_before(pending, e)) return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool omega_holds(const State& s) const {
    for (const QueryObservation<A>* obs : omega_obs_) {
      if (!(history_->adt().output(s, obs->first) == obs->second)) {
        return false;
      }
    }
    return true;
  }

  const History<A>* history_;
  ExploreBudget budget_;
  ExploreStats stats_;
  std::vector<std::vector<EventId>> chains_;
  std::vector<const QueryObservation<A>*> omega_obs_;
};

}  // namespace ucw
