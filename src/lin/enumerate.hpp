// Brute-force linearization enumeration (Definition 3).
//
// Enumerates every linearization of a (small, ω-free) history in
// lexicographic-by-event-id order, invoking a callback with each word.
// Exponential by nature — it exists to cross-validate the DP-based
// checkers on tiny histories in the property tests, not for production
// checking.
#pragma once

#include <functional>
#include <vector>

#include "adt/replayer.hpp"
#include "history/history.hpp"

namespace ucw {

/// Calls `fn` with each linearization (as a vector of event ids); `fn`
/// returns false to stop early. Returns false when stopped early.
template <UqAdt A>
bool for_each_linearization(
    const History<A>& h,
    const std::function<bool(const std::vector<EventId>&)>& fn) {
  UCW_CHECK_MSG(!h.has_omega(),
                "brute-force enumeration handles finite histories only");
  const std::size_t n = h.size();
  std::vector<bool> used(n, false);
  std::vector<EventId> word;
  word.reserve(n);

  std::function<bool()> rec = [&]() -> bool {
    if (word.size() == n) return fn(word);
    for (EventId e = 0; e < n; ++e) {
      if (used[e]) continue;
      bool enabled = true;
      for (EventId d = 0; d < n; ++d) {
        if (!used[d] && d != e && h.prog_before(d, e)) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      used[e] = true;
      word.push_back(e);
      const bool keep_going = rec();
      word.pop_back();
      used[e] = false;
      if (!keep_going) return false;
    }
    return true;
  };
  return rec();
}

/// Counts the linearizations of a small history (test helper).
template <UqAdt A>
std::size_t count_linearizations(const History<A>& h) {
  std::size_t n = 0;
  for_each_linearization(h, [&](const std::vector<EventId>&) {
    ++n;
    return true;
  });
  return n;
}

/// Brute-force recognition: does some linearization of the *whole*
/// history (no query removed) belong to L(O)?
template <UqAdt A>
bool exists_recognized_linearization(const History<A>& h) {
  const SequentialReplayer<A> replayer(h.adt());
  bool found = false;
  for_each_linearization(h, [&](const std::vector<EventId>& word) {
    std::vector<SeqOp<A>> ops;
    ops.reserve(word.size());
    for (EventId id : word) {
      const auto& e = h.event(id);
      if (e.is_update()) {
        ops.emplace_back(std::in_place_index<0>, e.update());
      } else {
        ops.emplace_back(std::in_place_index<1>, e.query());
      }
    }
    if (replayer.replay(ops).recognized()) {
      found = true;
      return false;  // stop
    }
    return true;
  });
  return found;
}

}  // namespace ucw
