// Reachable-state computation over the downset lattice of the update poset.
//
// For a downset D of (U_H, ↦|U), states(D) is the set of distinct ADT
// states reachable by executing the updates of D in *some* linearization
// consistent with the program order. The recurrence
//
//     states(∅)       = { s0 }
//     states(D ∪ {u}) ⊇ T(states(D), u)        for u maximal in D ∪ {u}
//
// is evaluated level by level (downsets of equal size), memoizing distinct
// states only — this collapses the n! linearizations into at most
// 2^n · |distinct states| work, which in practice is tiny because most
// ADTs' states collide massively (a set forgets the order of commuting
// inserts, a register keeps only the last write, …).
//
// This single primitive decides UC (Definition 8: some linearization of
// the updates explains the converged state) and underpins the PC chain
// checker.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lin/update_poset.hpp"
#include "util/hash.hpp"

namespace ucw {

/// Work/quality report of an exploration; `budget_exceeded` means the
/// caller must treat the answer as Unknown, never as No.
struct ExploreStats {
  std::size_t downsets_visited = 0;
  std::size_t states_stored = 0;
  std::size_t transitions = 0;
  bool budget_exceeded = false;
};

/// Exploration limits; generous defaults handle every figure instantly
/// and random histories with ~16 non-commuting updates in milliseconds.
struct ExploreBudget {
  std::size_t max_states = 4'000'000;
};

template <UqAdt A>
class DownsetExplorer {
 public:
  using State = typename A::State;
  using StateSet = std::unordered_set<State, ValueHash>;

  DownsetExplorer(const History<A>&&, ExploreBudget = {}) = delete;
  explicit DownsetExplorer(const History<A>& h, ExploreBudget budget = {})
      : history_(&h), poset_(h), budget_(budget) {}

  [[nodiscard]] const UpdatePoset<A>& poset() const { return poset_; }
  [[nodiscard]] const ExploreStats& stats() const { return stats_; }

  /// Distinct states reachable by linearizing all updates; empty result
  /// with stats().budget_exceeded set means "ran out of budget".
  [[nodiscard]] const StateSet& final_states() {
    return states_for(poset_.full());
  }

  /// Distinct states reachable after executing exactly downset D.
  [[nodiscard]] const StateSet& states_for(Bitset64 target) {
    auto it = memo_.find(target);
    if (it != memo_.end()) return it->second;
    if (stats_.budget_exceeded) return empty_;

    if (target.empty()) {
      StateSet base;
      base.insert(history_->adt().initial());
      ++stats_.downsets_visited;
      ++stats_.states_stored;
      return memo_.emplace(target, std::move(base)).first->second;
    }

    // A state reaching D last executed some maximal element u of D.
    StateSet result;
    target.for_each([&](unsigned k) {
      if (stats_.budget_exceeded) return;
      Bitset64 without = target;
      without.reset(k);
      // u=k must be maximal in D: no successor of k inside D. Successor
      // test via pred masks: j in D has k among its predecessors?
      bool maximal = true;
      without.for_each([&](unsigned j) {
        if (poset_.pred_mask(j).test(k)) maximal = false;
      });
      if (!maximal) return;
      if (!without.contains(poset_.pred_mask(k))) return;  // D not a downset
      const StateSet& prior = states_for(without);
      for (const auto& s : prior) {
        ++stats_.transitions;
        auto next = history_->adt().transition(s, poset_.update(k));
        if (result.insert(std::move(next)).second) {
          if (++stats_.states_stored > budget_.max_states) {
            stats_.budget_exceeded = true;
            return;
          }
        }
      }
    });
    ++stats_.downsets_visited;
    if (stats_.budget_exceeded) return empty_;
    return memo_.emplace(target, std::move(result)).first->second;
  }

 private:
  const History<A>* history_;
  UpdatePoset<A> poset_;
  ExploreBudget budget_;
  ExploreStats stats_;
  std::unordered_map<Bitset64, StateSet> memo_;
  StateSet empty_;
};

}  // namespace ucw
